package dtbgc

import (
	"io"

	"github.com/dtbgc/dtbgc/internal/fault"
)

// Fault-injection facade: deterministic scheduled faults for testing
// how a replay pipeline behaves when its I/O misbehaves. See
// internal/fault for the model; examples/faultinjection walks through
// composing it with RecoveringSource and ReplayAllResumable.

// FaultPlan is a schedule of deterministic faults shared by the
// wrappers derived from it. A nil *FaultPlan injects nothing, so call
// sites can thread an optional -inject flag unconditionally.
type FaultPlan = fault.Plan

// ErrInjected is the sentinel wrapped by every injected failure;
// distinguish scheduled faults from real ones with errors.Is.
var ErrInjected = fault.ErrInjected

// ParseFaultSpec parses the -inject grammar ("read-err@4096,close-err")
// into a plan. See internal/fault.ParseSpec for the grammar.
func ParseFaultSpec(spec string) (*FaultPlan, error) { return fault.ParseSpec(spec) }

// FaultReader wraps r with the plan's read-side faults (read errors
// and truncation at exact byte offsets).
func FaultReader(p *FaultPlan, r io.Reader) io.Reader { return p.Reader(r) }

// FaultWriter wraps w with the plan's write-side faults (write/close
// errors, short writes). The returned writer's Close applies only the
// injected close fault; the underlying writer stays the caller's to
// close.
func FaultWriter(p *FaultPlan, w io.Writer) io.WriteCloser { return p.Writer(w) }

// FaultSource wraps an event source with the plan's event-indexed
// faults: a source error after N events, or an injected cancellation
// (cancel is invoked at the scheduled event; nil is fine when no
// cancel fault is scheduled).
func FaultSource(p *FaultPlan, src EventSource, cancel func()) EventSource {
	return EventSource(p.Source(fault.EventStream(src), cancel))
}
