package dtbgc

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the experiment end to end — workload traces,
// all collectors, aggregation — at a reduced scale (the full-size runs
// are what cmd/dtbtables and EXPERIMENTS.md use). Custom metrics
// surface the experiment's own numbers alongside the harness cost.

import (
	"strings"
	"testing"
	"time"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/gc"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

// benchOptions is the reduced-scale configuration the table benches
// share: ~1/20th-size workloads with proportionally scaled trigger and
// budgets, preserving each experiment's shape.
func benchOptions() EvalOptions {
	return EvalOptions{
		Scale:         0.05,
		TriggerBytes:  51 * 1024,
		MemMaxBytes:   150 * 1024,
		TraceMaxBytes: 10 * 1024,
	}
}

func runBenchEval(b *testing.B, opts EvalOptions) *Evaluation {
	b.Helper()
	ev, err := RunPaperEvaluation(opts)
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

func BenchmarkTable2Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := runBenchEval(b, benchOptions())
		tab := ev.Table2()
		if len(tab.Rows) != 8 {
			b.Fatalf("table 2 has %d rows", len(tab.Rows))
		}
		// Surface one representative cell: Full's mean memory on GHOST(1).
		b.ReportMetric(ev.Runs[0].Results["Full"].MemMeanBytes/1024, "ghost1-full-memKB")
	}
}

func BenchmarkTable3Pauses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := runBenchEval(b, benchOptions())
		tab := ev.Table3()
		if len(tab.Rows) != 6 {
			b.Fatalf("table 3 has %d rows", len(tab.Rows))
		}
		b.ReportMetric(ev.Runs[0].Results["DtbFM"].MedianPauseSeconds()*1000, "ghost1-dtbfm-p50ms")
	}
}

func BenchmarkTable4Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := runBenchEval(b, benchOptions())
		tab := ev.Table4()
		if len(tab.Rows) != 6 {
			b.Fatalf("table 4 has %d rows", len(tab.Rows))
		}
		b.ReportMetric(ev.Runs[0].Results["Full"].OverheadPct, "ghost1-full-overhead%")
	}
}

func BenchmarkTable6Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := runBenchEval(b, benchOptions())
		tab := ev.Table6()
		if len(tab.Rows) != 6 {
			b.Fatalf("table 6 has %d rows", len(tab.Rows))
		}
		if !strings.Contains(tab.String(), "GHOST(1)") {
			b.Fatal("table 6 missing workloads")
		}
	}
}

func BenchmarkFigure1Scenario(b *testing.B) {
	// The reachability collector executing the Figure 1 object graph:
	// two scavenges, nepotism and untenuring included.
	for i := 0; i < b.N; i++ {
		h := mheap.New()
		c, err := gc.New(h, gc.Options{Policy: core.Full{}})
		if err != nil {
			b.Fatal(err)
		}
		g := c.Alloc(1, 32)
		c.SetGlobal("G", g)
		iObj := c.Alloc(1, 32)
		j := c.Alloc(1, 32)
		h.SetPtr(iObj, 0, j)
		k := c.Alloc(0, 32)
		h.SetPtr(g, 0, k)
		tbMin := h.Clock()
		f := c.Alloc(0, 32)
		h.SetPtr(j, 0, f)
		c.Alloc(0, 32) // B
		a := c.Alloc(1, 32)
		c.SetGlobal("A", a)
		c.Alloc(0, 32) // E
		s1 := c.CollectAt(tbMin)
		s2 := c.CollectAt(0)
		if s1.Reclaimed == 0 || s2.Reclaimed == 0 {
			b.Fatal("figure 1 scenario did not reclaim")
		}
	}
}

func BenchmarkFigure2Curve(b *testing.B) {
	opts := benchOptions()
	opts.Profiles = []Workload{WorkloadByName("GHOST(1)")}
	opts.RecordCurves = true
	opts.CurvePoints = 500
	for i := 0; i < b.N; i++ {
		ev := runBenchEval(b, opts)
		csv, err := ev.Figure2("GHOST(1)", "DtbMem")
		if err != nil {
			b.Fatal(err)
		}
		if len(csv) < 100 {
			b.Fatal("figure 2 CSV suspiciously short")
		}
	}
}

// BenchmarkAblationTriggerGranularity sweeps the scavenge trigger — a
// design choice DESIGN.md calls out: finer triggers cut memory but
// multiply trace work.
func BenchmarkAblationTriggerGranularity(b *testing.B) {
	events := WorkloadByName("GHOST(1)").Scale(0.05).MustGenerate()
	for _, trigger := range []uint64{16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024} {
		b.Run(byteString(trigger), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Simulate(events, SimOptions{Policy: FullPolicy(), TriggerBytes: trigger})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MemMeanBytes/1024, "memKB")
				b.ReportMetric(float64(res.TracedTotalBytes)/1024, "tracedKB")
			}
		})
	}
}

// BenchmarkAblationLEstimator compares DTBMEM's live-volume estimators
// (paper: the midpoint of [Trace, S]) on a workload where the budget
// binds: the aggressive estimator trades memory for trace work.
func BenchmarkAblationLEstimator(b *testing.B) {
	events := WorkloadByName("GHOST(2)").Scale(0.1).MustGenerate()
	for _, est := range []core.LEstMode{core.LEstMidpoint, core.LEstSurviving, core.LEstTraced} {
		b.Run(est.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Simulate(events, SimOptions{
					Policy:       core.DtbMemAblation{MemMax: 300 * 1024, Est: est},
					TriggerBytes: 100 * 1024,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MemMaxBytes/1024, "memMaxKB")
				b.ReportMetric(float64(res.TracedTotalBytes)/1024, "tracedKB")
			}
		})
	}
}

// BenchmarkAblationWidening compares DTBFM's under-budget widening
// rules: proportional (the paper's) reclaims stranded garbage much
// faster than additive when traces run small.
func BenchmarkAblationWidening(b *testing.B) {
	events := WorkloadByName("ESPRESSO(2)").Scale(0.1).MustGenerate()
	for _, additive := range []bool{false, true} {
		name := "proportional"
		if additive {
			name = "additive"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Simulate(events, SimOptions{
					Policy:       core.DtbFMAblation{TraceMax: 10 * 1024, Additive: additive},
					TriggerBytes: 100 * 1024,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MemMeanBytes/1024, "memMeanKB")
				b.ReportMetric(res.MedianPauseSeconds()*1000, "p50ms")
			}
		})
	}
}

// BenchmarkAblationRememberedFilter measures the remembered-set size
// with and without the TB_min write-barrier filter (§4's "pointer a
// need never be recorded") on an allocation-heavy mutator.
func BenchmarkAblationRememberedFilter(b *testing.B) {
	for _, filter := range []bool{false, true} {
		name := "record-all"
		if filter {
			name = "tbmin-filter"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := mheap.New()
				c, err := gc.New(h, gc.Options{
					Policy: core.Fixed{K: 1}, TriggerBytes: 64 * 1024,
					AutoCollect: true, FilterRecent: filter,
				})
				if err != nil {
					b.Fatal(err)
				}
				// Build short-lived linked chains and drop them: the
				// eager barrier records every link until the next
				// scavenge prunes, the filtered barrier records none
				// of these young-source stores.
				maxSet := 0
				for chain := 0; chain < 400; chain++ {
					head := c.Alloc(1, 16)
					c.SetGlobal("chain", head)
					prev := head
					for j := 0; j < 50; j++ {
						next := c.Alloc(1, 16)
						c.PushRoot(next)
						h.SetPtr(prev, 0, next)
						c.PopRoot()
						prev = next
					}
					c.SetGlobal("chain", mheap.Nil) // whole chain dies
					if s := c.RememberedSize(); s > maxSet {
						maxSet = s
					}
				}
				b.ReportMetric(float64(maxSet), "maxRememberedEntries")
			}
		})
	}
}

// BenchmarkPageFaultsByCollector measures the §2 locality claim: page
// faults per collector under a constrained resident set.
func BenchmarkPageFaultsByCollector(b *testing.B) {
	events := WorkloadByName("GHOST(1)").Scale(0.1).MustGenerate()
	for _, p := range []Policy{FullPolicy(), FixedPolicy(1), FixedPolicy(4), DtbFMPolicy(10 * 1024)} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Simulate(events, SimOptions{
					Policy: p, TriggerBytes: 100 * 1024, PageFrames: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.PageFaults), "faults")
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw event-processing speed of
// the trace-driven simulator (events/sec via b.ReportMetric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	events := WorkloadByName("ESPRESSO(1)").Scale(0.2).MustGenerate()
	b.ResetTimer()
	start := time.Now()
	n := 0
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(events, SimOptions{Policy: FixedPolicy(1), TriggerBytes: 256 * 1024}); err != nil {
			b.Fatal(err)
		}
		n += len(events)
	}
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(n)/sec/1e6, "Mevents/s")
	}
}

func byteString(n uint64) string {
	switch {
	case n >= 1<<20:
		return "1MB"
	case n >= 1<<18:
		return "256KB"
	case n >= 1<<16:
		return "64KB"
	default:
		return "16KB"
	}
}
