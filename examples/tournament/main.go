// Tournament: pit the adaptive policies — an ε-greedy bandit over
// candidate boundaries and an online gradient controller — against
// the paper's stock roster in a paired mini-tournament, then print
// the ranked leaderboard with significance annotations.
//
// Every (workload, seed) cell replays ONE shared trace through all
// policies, so each comparison is paired: cost differences within a
// cell are policy behaviour, not trace luck. The full-size tournament
// (13 policies × 6 workloads × 8 seeds) is `go run ./cmd/dtbtournament`.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	dtbgc "github.com/dtbgc/dtbgc"
)

func main() {
	res, err := dtbgc.RunTournament(context.Background(), dtbgc.TournamentOptions{
		// A representative slice of the default roster: the two tuned
		// DTB policies, the classic fixed collectors, and the three
		// adaptive entrants.
		Policies: []string{
			"full", "fixed1", "fixed4", "dtbfm:50k", "dtbmem:3000k",
			"bandit:eps=0.1", "bandit:ucb=1.5", "grad",
		},
		Workloads: []dtbgc.Workload{
			dtbgc.WorkloadByName("GHOST(1)"),
			dtbgc.WorkloadByName("ESPRESSO(1)"),
			dtbgc.WorkloadByName("CFRAC"),
		},
		// Eight seeds is the floor for p < 0.05 from the exhaustive
		// paired permutation test (the smallest reachable p is 2/2^8).
		Seeds: nil, // nil = the default 8-seed sweep
		Scale: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := dtbgc.WriteTournamentMarkdown(os.Stdout, res); err != nil {
		log.Fatal(err)
	}

	// The report is deterministic: same options, bit-identical output —
	// including the learned policies, whose per-run state is seeded
	// from the sweep seed. The split-half check guards against reading
	// a noise ranking as signal.
	if ok, leader, _ := res.SplitHalfStable(); ok {
		fmt.Printf("\nStable ranking: both halves of the seed sweep crown %s.\n", leader)
	} else {
		fmt.Println("\nRanking is not split-half stable at this sweep size; add seeds before drawing conclusions.")
	}
}
