// Quickstart: simulate the paper's pause-time-constrained collector
// (DTBFM) on the GHOST(1) workload and print the headline metrics.
package main

import (
	"fmt"
	"log"
	"time"

	dtbgc "github.com/dtbgc/dtbgc"
)

func main() {
	// The six calibrated workloads of the paper's evaluation are
	// built in; generate GHOST(1) at quarter scale for a fast demo.
	workload := dtbgc.WorkloadByName("GHOST(1)").Scale(0.25)
	events, err := workload.Generate()
	if err != nil {
		log.Fatal(err)
	}

	// A single, directly meaningful tuning knob: the maximum pause.
	// 100 ms at the paper machine's 500 KB/s trace rate is a 50 KB
	// per-scavenge budget.
	policy := dtbgc.PausePolicy(100 * time.Millisecond)

	res, err := dtbgc.Simulate(events, dtbgc.SimOptions{Policy: policy})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:        %s (%.0f KB allocated)\n", workload.Name, float64(res.TotalAlloc)/1024)
	fmt.Printf("collector:       %s\n", res.Collector)
	fmt.Printf("collections:     %d\n", res.Collections)
	fmt.Printf("median pause:    %.0f ms (target 100 ms)\n", res.MedianPauseSeconds()*1000)
	fmt.Printf("90th pct pause:  %.0f ms\n", res.P90PauseSeconds()*1000)
	fmt.Printf("memory mean/max: %.0f / %.0f KB (live floor %.0f / %.0f KB)\n",
		res.MemMeanBytes/1024, res.MemMaxBytes/1024, res.LiveMeanBytes/1024, res.LiveMaxBytes/1024)
	fmt.Printf("CPU overhead:    %.1f%%\n", res.OverheadPct)
}
