// App-driven simulation: the full pipeline of the paper's methodology.
// A real program (the CFRAC mini-application) runs on the simulated
// managed heap, its malloc/free events are recorded — the QPT-
// instrumentation stand-in — and the recorded trace then drives all
// the collectors for comparison.
package main

import (
	"fmt"
	"log"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/apps/cfrac"
)

func main() {
	// Step 1: run the instrumented program.
	n := "998244359987710471" // 1000000007 * 998244353
	f1, f2, events, err := cfrac.Factor(n, cfrac.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s = %s * %s\n", n, f1, f2)
	fmt.Printf("trace:          %d events\n\n", len(events))

	// Step 2: replay the trace under each collector.
	policies := []dtbgc.Policy{
		dtbgc.FullPolicy(),
		dtbgc.FixedPolicy(1),
		dtbgc.FixedPolicy(4),
		dtbgc.MemoryPolicy(256 * 1024),
		dtbgc.FeedMedPolicy(8 * 1024),
		dtbgc.DtbFMPolicy(8 * 1024),
	}
	fmt.Println("collector  mem-mean  mem-max    p50    traced")
	for _, p := range policies {
		res, err := dtbgc.Simulate(events, dtbgc.SimOptions{Policy: p, TriggerBytes: 256 * 1024})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %5.0f KB  %5.0f KB  %3.0f ms  %6.0f KB\n",
			res.Collector, res.MemMeanBytes/1024, res.MemMaxBytes/1024,
			res.MedianPauseSeconds()*1000, float64(res.TracedTotalBytes)/1024)
	}
	fmt.Println("\n(CFRAC retains almost nothing, so — as in the paper's Table 2 — the collectors barely differ)")
}
