// Pause-time tuning: sweep the pause budget and watch DTBFM hold its
// median pause at the target while FeedMed undershoots and strands
// tenured garbage — the §6.2 comparison, on the ESPRESSO(2) workload
// whose pass-structured lifetimes make the difference visible.
package main

import (
	"fmt"
	"log"

	dtbgc "github.com/dtbgc/dtbgc"
)

func main() {
	events, err := dtbgc.WorkloadByName("ESPRESSO(2)").Scale(0.25).Generate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("budget    collector   p50      p90      mem-mean  traced")
	for _, budgetKB := range []uint64{6, 12, 25, 50} {
		for _, mk := range []struct {
			name string
			mk   func(uint64) dtbgc.Policy
		}{
			{"FeedMed", dtbgc.FeedMedPolicy},
			{"DtbFM  ", dtbgc.DtbFMPolicy},
		} {
			// The workload runs at quarter scale, so the scavenge
			// trigger shrinks proportionally (paper: 1 MB).
			res, err := dtbgc.Simulate(events, dtbgc.SimOptions{
				Policy:       mk.mk(budgetKB * 1024),
				TriggerBytes: 256 * 1024,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%3d KB    %s   %4.0f ms  %4.0f ms  %6.0f KB  %6.0f KB\n",
				budgetKB, mk.name,
				res.MedianPauseSeconds()*1000, res.P90PauseSeconds()*1000,
				res.MemMeanBytes/1024, float64(res.TracedTotalBytes)/1024)
		}
	}
	fmt.Println("\n(100 ms at 500 KB/s = a 50 KB budget; both hold the median near the")
	fmt.Println("target — run `go run ./cmd/dtbtables` for the full-scale runs where")
	fmt.Println("FeedMed's stranded tenured garbage costs it ~10% more memory)")
}
