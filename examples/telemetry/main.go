// Telemetry: watch a collector make its per-scavenge decisions.
//
// The dynamic-threatening-boundary collectors are feedback systems —
// they react to what they measure — and a dtbgc.Probe is the window
// onto those measurements. This example attaches two probes to one
// DTBFM run: a custom one that prints how each boundary decision
// relates to its trace budget, and the stock JSON-lines sink whose
// output drives dashboards or cmd/dtbtelemetrycheck.
package main

import (
	"fmt"
	"log"
	"os"

	dtbgc "github.com/dtbgc/dtbgc"
)

// boundaryWatcher is a custom Probe: it prints, for every scavenge,
// where the policy put the threatening boundary and whether the pause
// stayed under budget. The other events are deliberately ignored —
// a Probe implements all five methods but cares about what it cares
// about.
type boundaryWatcher struct {
	budgetBytes uint64
}

func (w *boundaryWatcher) RunStart(e dtbgc.RunStart) {
	fmt.Printf("run: %s collector, scavenge every %d KB\n", e.Collector, e.TriggerBytes/1024)
}

func (w *boundaryWatcher) Decision(e dtbgc.Decision) {
	// The threatened window is (TB, now]: everything allocated after
	// the boundary gets traced. Candidates are the ages the Table-1
	// policies pick among (0 = full collection).
	window := e.Now.Sub(e.TB)
	fmt.Printf("  decision %2d (%s): window %4d KB of %4d KB heap, %d candidates\n",
		e.N, e.Trigger, window/1024, e.MemBefore/1024, len(e.Candidates))
}

func (w *boundaryWatcher) Scavenge(e dtbgc.ScavengeEvent) {
	verdict := "within budget"
	if e.Traced > w.budgetBytes {
		verdict = "OVER budget"
	}
	fmt.Printf("  scavenge %2d: traced %4d KB (%s), reclaimed %4d KB, tenured garbage %4d KB\n",
		e.N, e.Traced/1024, verdict, e.Reclaimed/1024, e.TenuredGarbage/1024)
}

func (w *boundaryWatcher) Progress(dtbgc.Progress)   {}
func (w *boundaryWatcher) RunFinish(dtbgc.RunFinish) {}

// fanout forwards every event to several probes — SimOptions takes
// one Probe, and composing sinks is a three-line type.
type fanout []dtbgc.Probe

func (f fanout) RunStart(e dtbgc.RunStart) {
	for _, p := range f {
		p.RunStart(e)
	}
}
func (f fanout) Decision(e dtbgc.Decision) {
	for _, p := range f {
		p.Decision(e)
	}
}
func (f fanout) Scavenge(e dtbgc.ScavengeEvent) {
	for _, p := range f {
		p.Scavenge(e)
	}
}
func (f fanout) Progress(e dtbgc.Progress) {
	for _, p := range f {
		p.Progress(e)
	}
}
func (f fanout) RunFinish(e dtbgc.RunFinish) {
	for _, p := range f {
		p.RunFinish(e)
	}
}

func main() {
	events, err := dtbgc.WorkloadByName("ESPRESSO(1)").Scale(0.25).Generate()
	if err != nil {
		log.Fatal(err)
	}

	const budget = 50 * 1024 // 100 ms of tracing on the paper machine

	// Machine-readable stream alongside the human one: every event as
	// one JSON object per line.
	f, err := os.CreateTemp("", "dtbgc-telemetry-*.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	// The telemetry stream is WRITTEN through f, so its Close error is
	// where a failed final flush surfaces — a bare deferred Close would
	// exit 0 on a truncated file.
	defer func() {
		if cerr := f.Close(); cerr != nil {
			log.Fatal(cerr)
		}
	}()
	tw := dtbgc.NewTelemetryWriter(f)

	res, err := dtbgc.Simulate(events, dtbgc.SimOptions{
		Policy:       dtbgc.DtbFMPolicy(budget),
		TriggerBytes: 256 * 1024,
		Probe:        fanout{&boundaryWatcher{budgetBytes: budget}, tw},
		Label:        "ESPRESSO(1)/DtbFM",
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tw.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("done: %d collections, median pause %.0f ms, mean memory %.0f KB\n",
		res.Collections, res.MedianPauseSeconds()*1000, res.MemMeanBytes/1024)
	fmt.Printf("JSON telemetry written to %s (validate with: go run ./cmd/dtbtelemetrycheck %[1]s)\n", f.Name())
}
