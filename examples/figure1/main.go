// Figure 1, executed: the reachability-based dynamic-threatening-
// boundary collector (write barrier, single remembered set) walks
// through the paper's introductory scenario — tenured garbage,
// nepotism, and untenuring when the boundary moves back.
package main

import (
	"fmt"
	"log"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/gc"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

func main() {
	h := mheap.New()
	c, err := gc.New(h, gc.Options{Policy: core.Full{}})
	if err != nil {
		log.Fatal(err)
	}

	alive := func(name string, r mheap.Ref) string {
		if h.Contains(r) {
			return name
		}
		return "(" + name + " reclaimed)"
	}

	// Old space, oldest first (paper Figure 1, bottom of the page).
	G := c.Alloc(1, 32) // live old data
	c.SetGlobal("G", G)
	I := c.Alloc(1, 32) // garbage chain: I -> J -> F
	J := c.Alloc(1, 32)
	h.SetPtr(I, 0, J)
	K := c.Alloc(0, 32) // kept alive only by pointer k
	h.SetPtr(G, 0, K)   // pointer k (forward in time: remembered)

	tbMin := h.Clock()

	// Young space.
	F := c.Alloc(0, 32)
	h.SetPtr(J, 0, F) // pointer f (forward in time: remembered)
	B := c.Alloc(0, 32)
	A := c.Alloc(1, 32)
	c.SetGlobal("A", A)
	E := c.Alloc(0, 32)

	fmt.Printf("remembered set holds %d forward-in-time pointers (I->J, G->K, J->F)\n\n", c.RememberedSize())

	fmt.Println("scavenge 1: threatening boundary at TB_min (young space only)")
	s1 := c.CollectAt(tbMin)
	fmt.Printf("  traced %d bytes, reclaimed %d bytes\n", s1.Traced, s1.Reclaimed)
	fmt.Printf("  young garbage: %s, %s\n", alive("B", B), alive("E", E))
	fmt.Printf("  tenured garbage: %s, %s\n", alive("I", I), alive("J", J))
	fmt.Printf("  nepotism victim: %s (dead, but remembered pointer f from dead-immune J keeps it)\n", alive("F", F))
	fmt.Printf("  live data: %s, %s, %s\n\n", alive("G", G), alive("K", K), alive("A", A))

	fmt.Println("scavenge 2: boundary moved back to program start (the DTB capability)")
	s2 := c.CollectAt(0)
	fmt.Printf("  traced %d bytes, reclaimed %d bytes\n", s2.Traced, s2.Reclaimed)
	fmt.Printf("  untenured and reclaimed: %s, %s, %s\n", alive("I", I), alive("J", J), alive("F", F))
	fmt.Printf("  still alive: %s, %s, %s\n", alive("G", G), alive("K", K), alive("A", A))

	if err := h.CheckIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nheap integrity verified")
}
