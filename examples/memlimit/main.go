// Memory-constraint tuning: give DTBMEM a range of budgets on the
// GHOST(2) workload and watch it use exactly the memory it is allowed
// — spending the slack to cut CPU overhead, degrading toward the Full
// collector when over-constrained (§6.1).
package main

import (
	"fmt"
	"log"

	dtbgc "github.com/dtbgc/dtbgc"
)

func main() {
	events, err := dtbgc.WorkloadByName("GHOST(2)").Scale(0.25).Generate()
	if err != nil {
		log.Fatal(err)
	}

	full, err := dtbgc.Simulate(events, dtbgc.SimOptions{Policy: dtbgc.FullPolicy()})
	if err != nil {
		log.Fatal(err)
	}
	fixed1, err := dtbgc.Simulate(events, dtbgc.SimOptions{Policy: dtbgc.FixedPolicy(1)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: Full   max %5.0f KB, overhead %6.1f%%\n", full.MemMaxBytes/1024, full.OverheadPct)
	fmt.Printf("reference: Fixed1 max %5.0f KB, overhead %6.1f%%\n\n", fixed1.MemMaxBytes/1024, fixed1.OverheadPct)

	fmt.Println("budget     mem-max    within?   overhead")
	for _, budgetKB := range []uint64{500, 750, 1000, 1500, 2500, 4000} {
		res, err := dtbgc.Simulate(events, dtbgc.SimOptions{Policy: dtbgc.MemoryPolicy(budgetKB * 1024)})
		if err != nil {
			log.Fatal(err)
		}
		within := "yes"
		if res.MemMaxBytes > float64(budgetKB*1024) {
			within = "over-constrained"
		}
		fmt.Printf("%5d KB   %5.0f KB   %-16s %6.1f%%\n",
			budgetKB, res.MemMaxBytes/1024, within, res.OverheadPct)
	}
	fmt.Println("\n(an infeasible budget degrades gracefully toward Full's memory and cost)")
}
