// Fault injection: prove the replay pipeline survives bad I/O — on
// purpose, deterministically, before a full disk proves it for you.
//
// The paper's collectors are feedback systems evaluated by replaying
// recorded allocation traces. That replay pipeline has seams the real
// world frays: the trace file tears mid-record, the disk dies
// mid-read, the run is cancelled mid-replay. This example walks the
// three robustness layers the harness provides:
//
//  1. a FaultPlan schedules faults at exact offsets, so a failure
//     scenario is a reproducible test case, not a flaky one;
//  2. RecoveringSource decodes a damaged trace by resyncing past the
//     damage, with every dropped byte counted and disclosed;
//  3. ReplayAllResumable checkpoints a replay interrupted between
//     events, and Resume finishes it bit-identically to an
//     uninterrupted run.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"reflect"

	dtbgc "github.com/dtbgc/dtbgc"
)

func main() {
	// Record a small trace: the CFRAC workload at 1% scale, encoded
	// into the binary trace format — the file a real pipeline would
	// have on disk.
	events, err := dtbgc.WorkloadByName("CFRAC").Scale(0.01).Generate()
	if err != nil {
		log.Fatal(err)
	}
	var clean bytes.Buffer
	if err := dtbgc.WriteTrace(&clean, events); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d events in %d bytes\n\n", len(events), clean.Len())

	opts := []dtbgc.SimOptions{{Policy: dtbgc.DtbFMPolicy(4 * 1024), TriggerBytes: 8 * 1024}}
	baseline, err := dtbgc.ReplayAll(context.Background(), dtbgc.StreamSource(bytes.NewReader(clean.Bytes())), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline replay: %d collections, mem max %.0f KB\n\n",
		baseline[0].Collections, baseline[0].MemMaxBytes/1024)

	// --- Layer 1: scheduled faults ------------------------------------
	//
	// A plan parsed from the -inject grammar injects exactly these
	// faults at exactly these offsets, every run. Here: the "file"
	// tears 200 bytes before its end — a crashed recorder's torn tail.
	tearAt := clean.Len() - 200
	plan, err := dtbgc.ParseFaultSpec(fmt.Sprintf("trunc@%d", tearAt))
	if err != nil {
		log.Fatal(err)
	}
	torn := dtbgc.FaultReader(plan, bytes.NewReader(clean.Bytes()))

	// A strict decode refuses the damage loudly — exactly what dtbsim
	// does (and exits 1) without -recover.
	if _, err := dtbgc.ReplayAll(context.Background(), dtbgc.StreamSource(torn), opts); err != nil {
		fmt.Printf("strict decode of the torn trace: %v\n\n", err)
	}

	// --- Layer 2: recovery with accounted drops -----------------------
	//
	// The recovering decoder absorbs the tear and reports exactly what
	// it cost. Nothing is silent: the drops are data, to be disclosed
	// on stderr, in telemetry ("drops" lines) and to the auditor.
	plan, _ = dtbgc.ParseFaultSpec(fmt.Sprintf("trunc@%d", tearAt))
	src, drops := dtbgc.RecoveringSource(dtbgc.FaultReader(plan, bytes.NewReader(clean.Bytes())))
	recovered, err := dtbgc.ReplayAll(context.Background(), src, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered replay: %d collections, drops: %s\n\n", recovered[0].Collections, drops())

	// --- Layer 3: checkpoint and resume -------------------------------
	//
	// A transient failure between events — a dying NFS mount, a
	// cancellation storm — interrupts the replay with a checkpoint.
	// Reopening the source and resuming completes the run; the results
	// are bit-identical to the baseline, so a resumed experiment is
	// still the same experiment.
	plan, _ = dtbgc.ParseFaultSpec(fmt.Sprintf("source-err@%d", len(events)/2))
	interrupted := dtbgc.FaultSource(plan, dtbgc.StreamSource(bytes.NewReader(clean.Bytes())), nil)

	_, cp, err := dtbgc.ReplayAllResumable(context.Background(), interrupted, opts)
	if !errors.Is(err, dtbgc.ErrInjected) || cp == nil {
		log.Fatalf("expected an injected interrupt with a checkpoint, got %v (cp %v)", err, cp)
	}
	fmt.Printf("interrupted at event %d: %v\n", cp.Events(), err)

	// The fault was one-shot (a transient), so the reopened source
	// reads cleanly; Resume skips to the checkpoint and finishes.
	reopened := dtbgc.FaultSource(plan, dtbgc.StreamSource(bytes.NewReader(clean.Bytes())), nil)
	results, cp, err := cp.Resume(context.Background(), reopened)
	if err != nil || cp != nil {
		log.Fatalf("resume: %v (cp %v)", err, cp)
	}
	if !reflect.DeepEqual(results, baseline) {
		log.Fatal("resumed results differ from the baseline — they must be bit-identical")
	}
	fmt.Println("resumed to completion: results bit-identical to the uninterrupted baseline")
}
