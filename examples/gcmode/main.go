// GC-mode execution: a garbage-collected program (the classic
// binary-trees benchmark) running directly on the reachability-based
// dynamic-threatening-boundary collector — no explicit frees anywhere;
// each policy decides what to reclaim and when.
package main

import (
	"fmt"
	"log"

	"github.com/dtbgc/dtbgc/internal/apps/gcbench"
	"github.com/dtbgc/dtbgc/internal/core"
)

func main() {
	policies := []core.Policy{
		core.Full{},
		core.Fixed{K: 1},
		core.Fixed{K: 4},
		core.DtbFM{TraceMax: 48 * 1024},
		core.DtbMem{MemMax: 1024 * 1024},
	}
	fmt.Println("collector   collections  tracedKB  reclaimedKB  finalKB  remembered")
	var checksum int64
	for i, p := range policies {
		res, err := gcbench.Run(gcbench.Config{
			Policy:       p,
			TriggerBytes: 128 * 1024,
			MaxDepth:     10,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			checksum = res.Checksum
		} else if res.Checksum != checksum {
			log.Fatalf("%s corrupted the computation: checksum %d != %d", p.Name(), res.Checksum, checksum)
		}
		fmt.Printf("%-10s  %11d  %8d  %11d  %7d  %10d\n",
			p.Name(), res.Collections, res.TracedBytes/1024, res.Reclaimed/1024,
			res.FinalBytes/1024, res.MaxRemember)
	}
	fmt.Printf("\nall policies computed the same checksum (%d): no live object was ever reclaimed\n", checksum)
}
