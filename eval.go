package dtbgc

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/stats"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// CollectorOrder is the row order of the paper's Tables 2-4.
var CollectorOrder = []string{"Full", "Fixed1", "Fixed4", "DtbMem", "FeedMed", "DtbFM"}

// EvalOptions parameterizes a full paper evaluation.
type EvalOptions struct {
	// Scale multiplies every workload's length; 1.0 reproduces the
	// paper-size runs (tens of megabytes each), smaller values give
	// fast approximate runs. Zero means 1.0.
	Scale float64
	// TriggerBytes is the scavenge interval (paper: 1 MB). It is NOT
	// scaled automatically; scale it alongside Scale when you want the
	// same number of collections on a shorter run.
	TriggerBytes uint64
	// MemMaxBytes is DTBMEM's constraint (paper: 3000 KB).
	MemMaxBytes uint64
	// TraceMaxBytes is FEEDMED's and DTBFM's per-scavenge budget
	// (paper: 50 KB, i.e. 100 ms at 500 KB/s).
	TraceMaxBytes uint64
	// Profiles defaults to the six paper runs.
	Profiles []Workload
	// RecordCurves retains memory series for Figure 2.
	RecordCurves bool
	// CurvePoints caps retained curve lengths (0 = keep all).
	CurvePoints int
	// Probe, when non-nil, receives telemetry from every run of the
	// evaluation, each labelled "workload/collector". Workloads run
	// concurrently, so the Probe must be safe for concurrent use —
	// the stock sinks (NewTelemetryWriter, NewProgressReporter) are.
	Probe Probe
	// Workers bounds how many workloads replay concurrently; zero
	// means GOMAXPROCS. Each workload is one job — a single trace
	// pass fanned out to all collectors — so results never depend on
	// the worker count or scheduling.
	Workers int
}

func (o EvalOptions) withDefaults() EvalOptions {
	if o.Scale == 0 { //dtbvet:ignore floatexact -- exact zero is the unset-option sentinel; no arithmetic feeds it
		o.Scale = 1
	}
	if o.TriggerBytes == 0 {
		o.TriggerBytes = 1 << 20
	}
	if o.MemMaxBytes == 0 {
		o.MemMaxBytes = 3000 * 1024
	}
	if o.TraceMaxBytes == 0 {
		o.TraceMaxBytes = 50 * 1024
	}
	if o.Profiles == nil {
		o.Profiles = workload.PaperProfiles()
	}
	return o
}

// RunSet holds every collector's result on one workload.
type RunSet struct {
	Workload Workload
	// Results is keyed by collector name, including "NoGC" and "Live".
	Results map[string]*Result
}

// Evaluation is the complete reproduction of the paper's §6.
type Evaluation struct {
	Options EvalOptions
	Runs    []RunSet
}

// RunPaperEvaluation executes the full experiment matrix: each
// workload trace is generated once — streamed, never materialized —
// and fed in a single pass to all six collectors plus the NoGC and
// Live baselines (internal/engine). Workloads run concurrently on a
// bounded pool (each run is single-threaded and deterministic, so the
// evaluation's results do not depend on scheduling). It is
// RunPaperEvaluationContext without cancellation.
func RunPaperEvaluation(opts EvalOptions) (*Evaluation, error) {
	return RunPaperEvaluationContext(context.Background(), opts)
}

// RunPaperEvaluationContext is RunPaperEvaluation under a context:
// cancelling ctx aborts every in-flight replay at its next event
// boundary and returns ctx's error. A workload's hard failure
// likewise cancels the remaining work (fail-fast), while the errors
// of every workload that did fail are joined — a scaled-down run that
// breaks two workloads says so in one pass.
func RunPaperEvaluationContext(ctx context.Context, opts EvalOptions) (*Evaluation, error) {
	// A non-nil empty profile list would "succeed" with zero runs —
	// every Table accessor would render headers over no data, which
	// reads like a passing evaluation. Refuse it up front; leave
	// Profiles nil to get the six paper runs.
	if opts.Profiles != nil && len(opts.Profiles) == 0 {
		return nil, errors.New("dtbgc: EvalOptions.Profiles is empty: an evaluation over zero workloads would masquerade as success (leave it nil for the paper profiles)")
	}
	opts = opts.withDefaults()
	ev := &Evaluation{Options: opts, Runs: make([]RunSet, len(opts.Profiles))}
	jobs := make([]engine.Job, len(opts.Profiles))
	for i, w := range opts.Profiles {
		jobs[i] = func(ctx context.Context) error {
			rs, err := runWorkloadSet(ctx, w, opts)
			ev.Runs[i] = rs
			return err
		}
	}
	if err := engine.RunJobs(ctx, opts.Workers, jobs); err != nil {
		return nil, err
	}
	return ev, nil
}

// collectorMatrix is the paper's run set over one trace: the six
// Table-1 policies plus the NoGC and Live baselines, labelled
// "name/collector". The trigger applies to the policy runs only (the
// baselines never scavenge); curve recording and the probe apply to
// every run.
func collectorMatrix(name string, trigger, memMax, traceMax uint64, curves bool, curvePoints int, probe Probe) []SimOptions {
	policies := []Policy{
		FullPolicy(), FixedPolicy(1), FixedPolicy(4),
		MemoryPolicy(memMax),
		FeedMedPolicy(traceMax),
		DtbFMPolicy(traceMax),
	}
	sims := make([]SimOptions, 0, len(policies)+2)
	for _, p := range policies {
		sims = append(sims, SimOptions{Policy: p, TriggerBytes: trigger, Label: name + "/" + p.Name()})
	}
	sims = append(sims,
		SimOptions{NoGC: true, Label: name + "/NoGC"},
		SimOptions{LiveOracle: true, Label: name + "/Live"})
	for i := range sims {
		sims[i].RecordCurve = curves
		sims[i].CurvePoints = curvePoints
		sims[i].Probe = probe
	}
	return sims
}

// replayMatrix feeds one pass of the source to the whole matrix and
// keys the results by collector name.
func replayMatrix(ctx context.Context, src EventSource, sims []SimOptions) (map[string]*Result, error) {
	results, err := ReplayAll(ctx, src, sims)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*Result, len(results))
	for _, res := range results {
		byName[res.Collector] = res
	}
	return byName, nil
}

func runWorkloadSet(ctx context.Context, w Workload, opts EvalOptions) (RunSet, error) {
	scaled := w.Scale(opts.Scale)
	sims := collectorMatrix(scaled.Name, opts.TriggerBytes, opts.MemMaxBytes,
		opts.TraceMaxBytes, opts.RecordCurves, opts.CurvePoints, opts.Probe)
	results, err := replayMatrix(ctx, EventSource(scaled.GenerateTo), sims)
	if err != nil {
		return RunSet{}, fmt.Errorf("dtbgc: %s: %w", scaled.Name, err)
	}
	return RunSet{Workload: scaled, Results: results}, nil
}

// Table is a rendered experiment table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func (ev *Evaluation) header() []string {
	h := []string{"Collector"}
	for _, rs := range ev.Runs {
		h = append(h, rs.Workload.Name)
	}
	return h
}

func kbStr(bytes float64) string { return fmt.Sprintf("%.0f", bytes/1024) }

// naCell is rendered where a collector's result is absent from a
// RunSet (a hand-assembled or partially failed evaluation): an "n/a"
// cell is honest where dereferencing a nil *Result would panic and a
// fabricated 0 would read as a measurement.
const naCell = "n/a"

// Table2 reproduces "Mean and Maximum Memory Allocated (Kilobytes)":
// one cell per collector×workload holding "mean/max".
func (ev *Evaluation) Table2() *Table {
	t := &Table{
		Title:  "Table 2: Mean and Maximum Memory Allocated (Kilobytes, mean/max)",
		Header: ev.header(),
	}
	for _, name := range append(append([]string{}, CollectorOrder...), "NoGC", "Live") {
		row := []string{name}
		for _, rs := range ev.Runs {
			r := rs.Results[name]
			if r == nil {
				row = append(row, naCell)
				continue
			}
			row = append(row, kbStr(r.MemMeanBytes)+"/"+kbStr(r.MemMaxBytes))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table3 reproduces "Median and 90th Percentile Pause Times
// (Milliseconds)" as "p50/p90" cells.
func (ev *Evaluation) Table3() *Table {
	t := &Table{
		Title:  "Table 3: Median and 90th Percentile Pause Times (Milliseconds, p50/p90)",
		Header: ev.header(),
	}
	for _, name := range CollectorOrder {
		row := []string{name}
		for _, rs := range ev.Runs {
			r := rs.Results[name]
			if r == nil {
				row = append(row, naCell)
				continue
			}
			row = append(row, fmt.Sprintf("%.0f/%.0f",
				r.MedianPauseSeconds()*1000, r.P90PauseSeconds()*1000))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table4 reproduces "Total Bytes Traced (Kilobytes) and Estimated CPU
// Overhead (%)" as "traced/overhead" cells.
func (ev *Evaluation) Table4() *Table {
	t := &Table{
		Title:  "Table 4: Total Bytes Traced (Kilobytes) and Estimated CPU Overhead (%)",
		Header: ev.header(),
	}
	for _, name := range CollectorOrder {
		row := []string{name}
		for _, rs := range ev.Runs {
			r := rs.Results[name]
			if r == nil {
				row = append(row, naCell)
				continue
			}
			row = append(row, fmt.Sprintf("%.0f/%.1f",
				float64(r.TracedTotalBytes)/1024, r.OverheadPct))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table5 reproduces "General information about the test programs":
// the workload descriptions, drawn from the profiles' metadata.
func (ev *Evaluation) Table5() *Table {
	t := &Table{
		Title:  "Table 5: General information about the test programs",
		Header: []string{"Program", "Description"},
	}
	for _, rs := range ev.Runs {
		t.Rows = append(t.Rows, []string{rs.Workload.Name, rs.Workload.Description})
	}
	return t
}

// Table6 reproduces "Allocation Behavior of Programs Measured" from
// the measured runs: execution time, total allocation, allocation
// rate, and number of collections (under the Full collector, as any
// policy collects on the same trigger).
func (ev *Evaluation) Table6() *Table {
	t := &Table{
		Title: "Table 6: Allocation Behavior of Programs Measured",
		Header: []string{"Program", "Lines", "Exec (sec)", "Alloc (MB)",
			"Rate (KB/s)", "Collections"},
	}
	for _, rs := range ev.Runs {
		r := rs.Results["Full"]
		if r == nil {
			t.Rows = append(t.Rows, []string{
				rs.Workload.Name,
				fmt.Sprintf("%d", rs.Workload.SourceLines),
				naCell, naCell, naCell, naCell,
			})
			continue
		}
		rate := 0.0
		if r.ExecSeconds > 0 {
			rate = float64(r.TotalAlloc) / 1024 / r.ExecSeconds
		}
		t.Rows = append(t.Rows, []string{
			rs.Workload.Name,
			fmt.Sprintf("%d", rs.Workload.SourceLines),
			fmt.Sprintf("%.0f", r.ExecSeconds),
			fmt.Sprintf("%.0f", float64(r.TotalAlloc)/(1024*1024)),
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%d", r.Collections),
		})
	}
	return t
}

// Figure2 returns the memory-over-allocation-time series of the given
// collector on the given workload, plus the live floor, as CSV with
// one row per sampled point: clockKB,collectorKB,liveKB. The
// evaluation must have been run with RecordCurves.
func (ev *Evaluation) Figure2(workloadName, collector string) (string, error) {
	for _, rs := range ev.Runs {
		if rs.Workload.Name != workloadName {
			continue
		}
		r, ok := rs.Results[collector]
		if !ok {
			return "", fmt.Errorf("dtbgc: no collector %q in evaluation", collector)
		}
		if r.Curve == nil {
			return "", fmt.Errorf("dtbgc: evaluation ran without RecordCurves")
		}
		live := rs.Results["Live"]
		if live == nil || live.Curve == nil {
			return "", fmt.Errorf("dtbgc: no Live baseline curve for %q in evaluation", workloadName)
		}
		var b strings.Builder
		b.WriteString("allocatedKB,memKB,liveKB\n")
		for _, p := range r.Curve.Points {
			fmt.Fprintf(&b, "%.1f,%.1f,%.1f\n", p.T/1024, p.V/1024, live.Curve.At(p.T)/1024)
		}
		return b.String(), nil
	}
	return "", fmt.Errorf("dtbgc: no workload %q in evaluation", workloadName)
}

// Figure2Ascii renders the Figure 2 curves — the collector's memory
// in use over the allocation clock above the live floor — as a text
// chart labelled in kilobytes.
func (ev *Evaluation) Figure2Ascii(workloadName, collector string, width, height int) (string, error) {
	mem, live, err := ev.Figure2Series(workloadName, collector)
	if err != nil {
		return "", err
	}
	memNamed := &stats.Series{Name: collector + " memory", Points: mem.Points}
	liveNamed := &stats.Series{Name: "live bytes", Points: live.Points}
	return stats.AsciiPlot([]*stats.Series{memNamed, liveNamed}, width, height, 1024), nil
}

// Figure2Series returns the raw series for programmatic use (the
// collector's memory curve and the live floor).
func (ev *Evaluation) Figure2Series(workloadName, collector string) (mem, live *stats.Series, err error) {
	for _, rs := range ev.Runs {
		if rs.Workload.Name != workloadName {
			continue
		}
		r, ok := rs.Results[collector]
		if !ok {
			return nil, nil, fmt.Errorf("dtbgc: no collector %q in evaluation", collector)
		}
		if r.Curve == nil {
			return nil, nil, fmt.Errorf("dtbgc: evaluation ran without RecordCurves")
		}
		liveRes := rs.Results["Live"]
		if liveRes == nil || liveRes.Curve == nil {
			return nil, nil, fmt.Errorf("dtbgc: no Live baseline curve for %q in evaluation", workloadName)
		}
		return r.Curve, liveRes.Curve, nil
	}
	return nil, nil, fmt.Errorf("dtbgc: no workload %q in evaluation", workloadName)
}

// Ensure the sim package's result type remains the one we document.
var _ = sim.Config{}
