package dtbgc

import (
	"context"
	"testing"
)

// The audit facade end to end: an Auditor attached through the public
// API must come back clean on a paper evaluation, and the combined
// probe must not disturb it.
func TestAuditorThroughFacade(t *testing.T) {
	aud := NewAuditor()
	_, err := RunPaperEvaluation(EvalOptions{
		Scale:        0.01,
		TriggerBytes: 64 * 1024,
		Probe:        CombineProbes(nil, aud),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("paper evaluation violated its own invariants: %v", err)
	}
}

func TestAuditPaperWorkloadFacade(t *testing.T) {
	rep, err := AuditPaperWorkload(context.Background(), WorkloadByName("CFRAC"), AuditOptions{
		Scale:        0.02,
		TriggerBytes: 64 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("audit found problems: %v", rep.Err())
	}
}

func TestCombineProbesNilIsFree(t *testing.T) {
	if CombineProbes() != nil || CombineProbes(nil) != nil {
		t.Fatal("combining no probes must yield the free nil probe")
	}
}
