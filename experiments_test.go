package dtbgc

import "testing"

func TestMemoryFloorBrackets(t *testing.T) {
	events := WorkloadByName("GHOST(1)").Scale(0.1).MustGenerate()
	trigger := uint64(100 * 1024)
	floor, err := MemoryFloor(events, trigger, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	live, err := Simulate(events, SimOptions{LiveOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	if floor < uint64(live.LiveMaxBytes) {
		t.Fatalf("floor %d below the live peak %d: impossible", floor, uint64(live.LiveMaxBytes))
	}
	if floor > live.TotalAlloc {
		t.Fatalf("floor %d above total allocation %d: useless", floor, live.TotalAlloc)
	}
	// The floor is actually feasible...
	res, err := Simulate(events, SimOptions{Policy: MemoryPolicy(floor), TriggerBytes: trigger})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemMaxBytes > float64(floor+trigger) {
		t.Fatalf("reported floor %d is infeasible: max %.0f", floor, res.MemMaxBytes)
	}
	// ...and within a few percent of Full's max memory, the memory-
	// optimal collector (§6.1: over-constrained DTBMEM degrades to
	// FULL, so the floor cannot be far above it).
	full, err := Simulate(events, SimOptions{Policy: FullPolicy(), TriggerBytes: trigger})
	if err != nil {
		t.Fatal(err)
	}
	if float64(floor) > full.MemMaxBytes*1.25 {
		t.Fatalf("floor %d far above Full's max %.0f", floor, full.MemMaxBytes)
	}
}

func TestMemoryFloorEmptyTrace(t *testing.T) {
	if _, err := MemoryFloor(nil, 0, 0); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestMemoryFloorTolerance(t *testing.T) {
	events := WorkloadByName("CFRAC").Scale(0.2).MustGenerate()
	coarse, err := MemoryFloor(events, 64*1024, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := MemoryFloor(events, 64*1024, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The fine search cannot end above the coarse one by more than the
	// coarse tolerance.
	if float64(fine) > float64(coarse)*1.11 {
		t.Fatalf("fine floor %d vs coarse %d", fine, coarse)
	}
}
