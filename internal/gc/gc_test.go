package gc

import (
	"testing"
	"testing/quick"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

func newFull(t *testing.T) (*Collector, *mheap.Heap) {
	t.Helper()
	h := mheap.New()
	c, err := New(h, Options{Policy: core.Full{}})
	if err != nil {
		t.Fatal(err)
	}
	return c, h
}

func TestNewRequiresPolicy(t *testing.T) {
	if _, err := New(mheap.New(), Options{}); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestCollectReclaimsUnreachable(t *testing.T) {
	c, h := newFull(t)
	kept := c.Alloc(0, 100)
	c.SetGlobal("kept", kept)
	doomed := c.Alloc(0, 100)
	_ = doomed
	s := c.Collect()
	if !h.Contains(kept) {
		t.Fatal("rooted object reclaimed")
	}
	if h.Contains(doomed) {
		t.Fatal("garbage survived a full collection")
	}
	if s.Reclaimed != uint64(116) {
		t.Errorf("reclaimed %d bytes", s.Reclaimed)
	}
	if s.Traced != uint64(116) {
		t.Errorf("traced %d bytes", s.Traced)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectFollowsPointerChains(t *testing.T) {
	c, h := newFull(t)
	// root -> a -> b -> c, plus unreachable d.
	a := c.Alloc(1, 0)
	c.SetGlobal("a", a)
	b := c.Alloc(1, 0)
	h.SetPtr(a, 0, b)
	cc := c.Alloc(0, 8)
	h.SetPtr(b, 0, cc)
	d := c.Alloc(0, 8)
	_ = d
	c.Collect()
	for _, r := range []mheap.Ref{a, b, cc} {
		if !h.Contains(r) {
			t.Fatalf("reachable object %d reclaimed", r)
		}
	}
	if h.Contains(d) {
		t.Fatal("unreachable object survived")
	}
}

func TestRootStackProtectsTemporaries(t *testing.T) {
	c, h := newFull(t)
	tmp := c.Alloc(0, 8)
	c.PushRoot(tmp)
	c.Collect()
	if !h.Contains(tmp) {
		t.Fatal("stack-rooted temporary reclaimed")
	}
	if got := c.PopRoot(); got != tmp {
		t.Fatalf("PopRoot = %d", got)
	}
	c.Collect()
	if h.Contains(tmp) {
		t.Fatal("unrooted temporary survived full collection")
	}
}

func TestPopRootEmptyPanics(t *testing.T) {
	c, _ := newFull(t)
	defer func() {
		if recover() == nil {
			t.Fatal("PopRoot on empty stack did not panic")
		}
	}()
	c.PopRoot()
}

func TestSetGlobalClear(t *testing.T) {
	c, h := newFull(t)
	a := c.Alloc(0, 8)
	c.SetGlobal("x", a)
	if c.Global("x") != a || c.RootCount() != 1 {
		t.Fatal("global not registered")
	}
	c.SetGlobal("x", mheap.Nil)
	if c.Global("x") != mheap.Nil || c.RootCount() != 0 {
		t.Fatal("global not cleared")
	}
	c.Collect()
	if h.Contains(a) {
		t.Fatal("object survived after its only root was cleared")
	}
}

func TestBoundaryProtectsImmuneGarbage(t *testing.T) {
	// Objects born before the boundary are immune even when
	// unreachable — that is the whole point of partial collection.
	c, h := newFull(t)
	oldGarbage := c.Alloc(0, 64)
	cut := h.Clock()
	youngGarbage := c.Alloc(0, 64)
	s := c.CollectAt(cut)
	if !h.Contains(oldGarbage) {
		t.Fatal("immune garbage reclaimed")
	}
	if h.Contains(youngGarbage) {
		t.Fatal("threatened garbage survived")
	}
	if s.TB != cut {
		t.Fatalf("recorded TB %d", s.TB)
	}
}

func TestRememberedSetKeepsCrossBoundaryTarget(t *testing.T) {
	// An old object points forward at a young one; with no other
	// reference, only the remembered set keeps the young one alive.
	c, h := newFull(t)
	old := c.Alloc(1, 0)
	c.SetGlobal("old", old)
	cut := h.Clock()
	young := c.Alloc(0, 8)
	h.SetPtr(old, 0, young)
	c.CollectAt(cut)
	if !h.Contains(young) {
		t.Fatal("remembered-set-referenced object reclaimed")
	}
}

func TestWriteBarrierOnlyRecordsForwardPointers(t *testing.T) {
	c, h := newFull(t)
	old := c.Alloc(1, 0)
	young := c.Alloc(1, 0)
	// young -> old is backward in time: not remembered.
	h.SetPtr(young, 0, old)
	if c.RememberedSize() != 0 {
		t.Fatalf("backward pointer remembered (%d entries)", c.RememberedSize())
	}
	// old -> young is forward: remembered.
	h.SetPtr(old, 0, young)
	if c.RememberedSize() != 1 {
		t.Fatalf("forward pointer not remembered (%d entries)", c.RememberedSize())
	}
}

func TestWriteBarrierRetiresOverwrittenEntries(t *testing.T) {
	c, h := newFull(t)
	old := c.Alloc(1, 0)
	young := c.Alloc(0, 0)
	h.SetPtr(old, 0, young)
	if c.RememberedSize() != 1 {
		t.Fatal("entry missing")
	}
	h.SetPtr(old, 0, mheap.Nil)
	if c.RememberedSize() != 0 {
		t.Fatal("nil overwrite did not retire entry")
	}
}

func TestNepotism(t *testing.T) {
	// A dead immune object's remembered pointer keeps a dead
	// threatened object alive (Figure 1's object F).
	c, h := newFull(t)
	deadOld := c.Alloc(1, 0) // never rooted: immune garbage
	cut := h.Clock()
	victim := c.Alloc(0, 8)
	h.SetPtr(deadOld, 0, victim)
	c.CollectAt(cut)
	if !h.Contains(victim) {
		t.Fatal("nepotism victim reclaimed despite remembered pointer from immune garbage")
	}
	// A full collection reclaims both.
	c.CollectAt(0)
	if h.Contains(deadOld) || h.Contains(victim) {
		t.Fatal("full collection left nepotism pair alive")
	}
}

func TestUntenuring(t *testing.T) {
	// Garbage tenured by an early young-only scavenge is reclaimed
	// when a later scavenge moves the boundary back — the capability
	// fixed generations lack.
	c, h := newFull(t)
	g1 := c.Alloc(0, 128)
	g2 := c.Alloc(0, 128)
	cut := h.Clock()
	c.Alloc(0, 8) // young survivor fodder
	c.CollectAt(cut)
	if !h.Contains(g1) || !h.Contains(g2) {
		t.Fatal("immune garbage should survive the young scavenge")
	}
	s := c.CollectAt(0)
	if h.Contains(g1) || h.Contains(g2) {
		t.Fatal("boundary moved back but tenured garbage survived")
	}
	if s.Reclaimed < 256 {
		t.Fatalf("reclaimed only %d bytes", s.Reclaimed)
	}
}

func TestTracedCountsOnlyThreatened(t *testing.T) {
	c, h := newFull(t)
	old := c.Alloc(0, 1000)
	c.SetGlobal("old", old)
	cut := h.Clock()
	young := c.Alloc(0, 100)
	c.SetGlobal("young", young)
	s := c.CollectAt(cut)
	if s.Traced != uint64(h.TotalSize(young)) {
		t.Fatalf("traced %d, want only the young object (%d)", s.Traced, h.TotalSize(young))
	}
}

func TestPointersIntoImmuneAreNotTraced(t *testing.T) {
	// Tracing must stop at the boundary: a threatened object pointing
	// at an immune one does not add the immune one's bytes.
	c, h := newFull(t)
	old := c.Alloc(0, 500)
	cut := h.Clock()
	young := c.Alloc(1, 0)
	c.SetGlobal("young", young)
	h.SetPtr(young, 0, old)
	s := c.CollectAt(cut)
	if s.Traced != uint64(h.TotalSize(young)) {
		t.Fatalf("traced %d bytes; immune referent must not be traced", s.Traced)
	}
	if !h.Contains(old) {
		t.Fatal("immune object vanished")
	}
}

func TestAutoCollectTriggers(t *testing.T) {
	h := mheap.New()
	c, err := New(h, Options{Policy: core.Full{}, TriggerBytes: 4096, AutoCollect: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Alloc(0, 100) // unrooted garbage
	}
	if c.Collections() == 0 {
		t.Fatal("auto-collect never triggered")
	}
	if h.BytesInUse() > 8192 {
		t.Fatalf("garbage accumulated to %d bytes despite auto-collect", h.BytesInUse())
	}
}

func TestHistoryRecorded(t *testing.T) {
	c, _ := newFull(t)
	c.Alloc(0, 100)
	c.Collect()
	c.Alloc(0, 100)
	c.Collect()
	if c.History().Len() != 2 || c.Collections() != 2 {
		t.Fatalf("history %d, collections %d", c.History().Len(), c.Collections())
	}
	if c.History().Scavenges[0].N != 1 || c.History().Scavenges[1].N != 2 {
		t.Fatal("scavenge indices wrong")
	}
}

func TestPolicyDrivenCollect(t *testing.T) {
	// With Fixed{K:1} the second collection threatens only objects
	// born after the first collection.
	h := mheap.New()
	c, err := New(h, Options{Policy: core.Fixed{K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	oldGarbage := c.Alloc(0, 64)
	c.Collect() // full (first), reclaims oldGarbage
	if h.Contains(oldGarbage) {
		t.Fatal("first collection should be full")
	}
	tenured := c.Alloc(0, 64)
	c.Collect() // TB = t_1 < birth(tenured): still threatened, reclaimed
	if h.Contains(tenured) {
		t.Fatal("object born after t_1 was immune under Fixed1")
	}
	survivor := c.Alloc(0, 64)
	c.PushRoot(survivor)
	c.Collect()
	c.PopRoot()
	garbage := survivor // drop the root: now garbage, but born before t_3
	c.Collect()         // TB = t_3 > birth(garbage): immune, tenured garbage
	if !h.Contains(garbage) {
		t.Fatal("Fixed1 reclaimed a tenured object")
	}
}

func TestRememberedInvariantAfterRandomMutation(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		h := mheap.New()
		c, err := New(h, Options{Policy: core.Full{}})
		if err != nil {
			return false
		}
		var live []mheap.Ref
		for i := 0; i < 400; i++ {
			switch {
			case len(live) > 1 && r.Bool(0.5):
				src := live[r.Intn(len(live))]
				if n := h.NumPtrs(src); n > 0 {
					h.SetPtr(src, r.Intn(n), live[r.Intn(len(live))])
				}
			default:
				ref := c.Alloc(1+r.Intn(3), r.Intn(64))
				live = append(live, ref)
				if r.Bool(0.3) {
					c.PushRoot(ref)
				}
			}
		}
		return c.CheckRememberedInvariant() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNoLiveObjectEverReclaimed(t *testing.T) {
	// Property: after any sequence of mutations and scavenges at
	// random boundaries, every object reachable from the roots is
	// still in the heap, and the heap passes its integrity check
	// (no dangling pointers created by reclamation).
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		h := mheap.New()
		c, err := New(h, Options{Policy: core.Full{}})
		if err != nil {
			return false
		}
		var rooted []mheap.Ref
		for i := 0; i < 300; i++ {
			switch {
			case len(rooted) > 1 && r.Bool(0.35):
				src := rooted[r.Intn(len(rooted))]
				if n := h.NumPtrs(src); n > 0 {
					h.SetPtr(src, r.Intn(n), rooted[r.Intn(len(rooted))])
				}
			case r.Bool(0.1):
				// Scavenge at a random boundary.
				now := h.Clock()
				tb := core.Time(r.Int63n(int64(now) + 1))
				before := c.ReachableBytes()
				c.CollectAt(tb)
				if c.ReachableBytes() != before {
					return false
				}
				if h.CheckIntegrity() != nil {
					return false
				}
			default:
				ref := c.Alloc(r.Intn(3), r.Intn(128))
				if r.Bool(0.5) {
					c.SetGlobal(string(rune('a'+r.Intn(20))), ref)
				}
				if r.Bool(0.3) {
					rooted = append(rooted, ref)
					c.PushRoot(ref)
				}
			}
		}
		c.CollectAt(0)
		return c.ReachableBytes() == h.BytesInUse() && h.CheckIntegrity() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFullCollectionLeavesOnlyReachable(t *testing.T) {
	c, h := newFull(t)
	r := xrand.New(99)
	var keep []mheap.Ref
	for i := 0; i < 200; i++ {
		ref := c.Alloc(r.Intn(2), r.Intn(64))
		if r.Bool(0.25) {
			keep = append(keep, ref)
			c.PushRoot(ref)
		}
	}
	c.Collect()
	if h.BytesInUse() != c.ReachableBytes() {
		t.Fatalf("after full collection in-use %d != reachable %d", h.BytesInUse(), c.ReachableBytes())
	}
	for _, ref := range keep {
		if !h.Contains(ref) {
			t.Fatal("rooted object lost")
		}
	}
}

func TestPausesFromHistory(t *testing.T) {
	c, _ := newFull(t)
	c.Alloc(0, 100*1024)
	c.Collect() // everything garbage: traced 0
	keep := c.Alloc(0, 512000)
	c.PushRoot(keep)
	c.Collect() // traces 512016 bytes
	pauses := c.Pauses(512000)
	if len(pauses) != 2 {
		t.Fatalf("%d pauses", len(pauses))
	}
	if pauses[0] != 0 {
		t.Fatalf("first pause %v, want 0", pauses[0])
	}
	if pauses[1] < 1.0 || pauses[1] > 1.01 {
		t.Fatalf("second pause %v, want ~1s", pauses[1])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive rate did not panic")
		}
	}()
	c.Pauses(0)
}

// TestCollectAtSteadyStateAllocs pins the //dtbvet:hotpath contract on
// the mark/sweep walk: once the scratch buffers (mark stack, sweep
// list, visited set, root snapshot) have grown to the heap's
// high-water mark, a collection over an unchanged heap allocates a
// near-constant amount, not O(live objects). Before the scratch
// buffers this averaged hundreds of allocations per call on a
// thousand-object heap.
func TestCollectAtSteadyStateAllocs(t *testing.T) {
	c, h := newFull(t)
	head := c.Alloc(1, 8)
	c.SetGlobal("head", head)
	prev := head
	for i := 0; i < 1000; i++ {
		n := c.Alloc(1, 8)
		h.SetPtr(prev, 0, n)
		prev = n
	}
	for i := 0; i < 3; i++ {
		c.CollectAt(0) // grow the scratch buffers to steady state
	}
	avg := testing.AllocsPerRun(50, func() {
		c.CollectAt(0)
	})
	// The slack covers the amortized history append and closure
	// headers; the live graph alone is 1000+ objects, so a regression
	// to per-object allocation clears this bound by two orders.
	if avg > 20 {
		t.Errorf("CollectAt averages %.1f allocations per call in steady state; scratch buffers are not being reused", avg)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
