package gc

// The invariant auditor's pure history checks applied to the
// reachability collector: internal/audit was written against the
// simulator's free-event oracle, but the paper identities it encodes
// (Mem = S + reclaimed, monotone times, boundaries in the past) are
// engine-independent, so histories produced by real tracing over a
// linked heap must pass them too.

import (
	"fmt"
	"testing"

	"github.com/dtbgc/dtbgc/internal/audit"
	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// churnCollector drives a collector through a randomized linked-heap
// workload — allocations with pointers into earlier survivors, root
// turnover, and policy-triggered scavenges — and returns it for
// inspection.
func churnCollector(t *testing.T, policy core.Policy, seed uint64) *Collector {
	t.Helper()
	h := mheap.New()
	c, err := New(h, Options{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(seed)
	const trigger = 24 * 1024
	type rooted struct {
		idx int
		ref mheap.Ref
	}
	var roots []rooted // rooted objects are reachable, so always safe pointer targets
	var since uint64
	for i := 0; i < 500; i++ {
		nptrs := r.Intn(3)
		ref := c.Alloc(nptrs, r.Range(16, 384))
		c.SetGlobal(fmt.Sprintf("g%d", i), ref)
		roots = append(roots, rooted{i, ref})
		for p := 0; p < nptrs && len(roots) > 1; p++ {
			h.SetPtr(ref, p, roots[r.Intn(len(roots)-1)].ref)
		}
		// Drop roots at random so the heap churns rather than grows.
		if r.Bool(0.45) && len(roots) > 1 {
			k := r.Intn(len(roots) - 1) // keep the newest rooted
			c.SetGlobal(fmt.Sprintf("g%d", roots[k].idx), mheap.Nil)
			roots = append(roots[:k], roots[k+1:]...)
		}
		since += uint64(h.TotalSize(ref))
		if since >= trigger {
			c.Collect()
			since = 0
		}
	}
	return c
}

func TestReachabilityHistoriesPassAudit(t *testing.T) {
	policies := []core.Policy{
		core.Full{},
		core.Fixed{K: 1},
		core.Fixed{K: 4},
		core.FeedMed{TraceMax: 16 * 1024},
		core.DtbFM{TraceMax: 16 * 1024},
		core.DtbMem{MemMax: 64 * 1024},
	}
	for _, p := range policies {
		t.Run(p.Name(), func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				c := churnCollector(t, p, seed)
				hist := c.History()
				if hist.Len() < 2 {
					t.Fatalf("seed %d: only %d scavenges; workload too small to audit", seed, hist.Len())
				}
				label := fmt.Sprintf("gc/%s/seed%d", p.Name(), seed)
				for _, v := range audit.CheckHistory(label, hist) {
					t.Errorf("%v", v)
				}
				for _, v := range audit.CheckBoundaryDiscipline(label, hist) {
					t.Errorf("%v", v)
				}
			}
		})
	}
}

// CollectAt with an explicit boundary past the previous scavenge time
// is legal for experiments but outside the Table 1 discipline — the
// boundary check must flag it while the per-entry identities still
// hold.
func TestExplicitFutureBoundaryTripsDiscipline(t *testing.T) {
	h := mheap.New()
	c, err := New(h, Options{Policy: core.Full{}})
	if err != nil {
		t.Fatal(err)
	}
	keep := c.Alloc(0, 64)
	c.SetGlobal("keep", keep)
	c.Collect()
	c.Alloc(0, 64)
	c.CollectAt(h.Clock()) // everything immune: boundary at "now"
	hist := c.History()
	if got := audit.CheckHistory("gc/explicit", hist); len(got) != 0 {
		t.Fatalf("per-entry identities should still hold: %v", got)
	}
	vs := audit.CheckBoundaryDiscipline("gc/explicit", hist)
	if len(vs) == 0 {
		t.Fatal("boundary beyond t_{n-1} not flagged")
	}
	for _, v := range vs {
		if v.Rule != "boundary-above-prev" {
			t.Errorf("unexpected rule %q in %v", v.Rule, v)
		}
	}
}
