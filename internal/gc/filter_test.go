package gc

// Differential tests for the FilterRecent remembered-set optimization:
// the filtered collector must reclaim exactly what the eager one does
// on any mutation/scavenge schedule, while recording fewer barrier
// entries.

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// twin drives one scripted mutator against eager and filtered
// collectors in lockstep.
type twin struct {
	hE, hF *mheap.Heap
	cE, cF *Collector
	// Parallel object handles: refs[i] on each heap.
	refsE, refsF []mheap.Ref
}

func newTwin() *twin {
	tw := &twin{hE: mheap.New(), hF: mheap.New()}
	var err error
	tw.cE, err = New(tw.hE, Options{Policy: core.Full{}})
	if err != nil {
		panic(err)
	}
	tw.cF, err = New(tw.hF, Options{Policy: core.Full{}, FilterRecent: true})
	if err != nil {
		panic(err)
	}
	return tw
}

func (tw *twin) alloc(nptrs, data int) int {
	tw.refsE = append(tw.refsE, tw.cE.Alloc(nptrs, data))
	tw.refsF = append(tw.refsF, tw.cF.Alloc(nptrs, data))
	return len(tw.refsE) - 1
}

func (tw *twin) setPtr(src, field, dst int) {
	var dE, dF mheap.Ref
	if dst >= 0 {
		dE, dF = tw.refsE[dst], tw.refsF[dst]
	}
	tw.hE.SetPtr(tw.refsE[src], field, dE)
	tw.hF.SetPtr(tw.refsF[src], field, dF)
}

func (tw *twin) root(i int, name string) {
	tw.cE.SetGlobal(name, tw.refsE[i])
	tw.cF.SetGlobal(name, tw.refsF[i])
}

func (tw *twin) collectAt(tbE, tbF core.Time) (core.Scavenge, core.Scavenge) {
	return tw.cE.CollectAt(tbE), tw.cF.CollectAt(tbF)
}

// agree verifies both heaps contain exactly the same object indices.
func (tw *twin) agree(t *testing.T) {
	t.Helper()
	for i := range tw.refsE {
		e := tw.hE.Contains(tw.refsE[i])
		f := tw.hF.Contains(tw.refsF[i])
		if e != f {
			t.Fatalf("object %d: eager alive=%v filtered alive=%v", i, e, f)
		}
	}
}

func TestFilterRecentSameOutcomesScripted(t *testing.T) {
	tw := newTwin()
	// Old live root, old garbage chain, remembered-pointer target.
	g := tw.alloc(1, 16)
	tw.root(g, "G")
	i1 := tw.alloc(1, 16)
	j := tw.alloc(1, 16)
	tw.setPtr(i1, 0, j)
	k := tw.alloc(0, 16)
	tw.setPtr(g, 0, k)
	cutE, cutF := tw.hE.Clock(), tw.hF.Clock()
	f := tw.alloc(0, 16)
	tw.setPtr(j, 0, f)
	tw.alloc(0, 16) // young garbage
	a := tw.alloc(1, 16)
	tw.root(a, "A")

	s1e, s1f := tw.collectAt(core.Time(cutE), core.Time(cutF))
	if s1e.Reclaimed != s1f.Reclaimed || s1e.Traced != s1f.Traced {
		t.Fatalf("scavenge 1 differs: eager %+v filtered %+v", s1e, s1f)
	}
	tw.agree(t)

	s2e, s2f := tw.collectAt(0, 0)
	if s2e.Reclaimed != s2f.Reclaimed {
		t.Fatalf("scavenge 2 differs: %d vs %d", s2e.Reclaimed, s2f.Reclaimed)
	}
	tw.agree(t)
}

func TestFilterRecentSameOutcomesRandom(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		tw := newTwin()
		var rooted []int
		for step := 0; step < 250; step++ {
			switch {
			case len(rooted) > 1 && r.Bool(0.35):
				src := rooted[r.Intn(len(rooted))]
				if n := tw.hE.NumPtrs(tw.refsE[src]); n > 0 {
					tw.setPtr(src, r.Intn(n), rooted[r.Intn(len(rooted))])
				}
			case r.Bool(0.12):
				// Scavenge both at the same boundary fraction of
				// their (identical) clocks.
				now := tw.hE.Clock()
				if tw.hF.Clock() != now {
					return false // clocks must stay in lockstep
				}
				tb := core.Time(r.Int63n(int64(now) + 1))
				se, sf := tw.collectAt(tb, tb)
				if se.Traced != sf.Traced || se.Reclaimed != sf.Reclaimed {
					return false
				}
				if tw.cE.CheckRememberedInvariant() != nil || tw.cF.CheckRememberedInvariant() != nil {
					return false
				}
			default:
				i := tw.alloc(r.Intn(3), r.Intn(96))
				if r.Bool(0.4) {
					// Unique root names: an overwritten global would
					// silently unroot an earlier object the script
					// still mutates.
					tw.root(i, fmt.Sprintf("g%d", i))
					rooted = append(rooted, i)
				}
			}
		}
		se, sf := tw.collectAt(0, 0)
		if se.Reclaimed != sf.Reclaimed {
			return false
		}
		for i := range tw.refsE {
			if tw.hE.Contains(tw.refsE[i]) != tw.hF.Contains(tw.refsF[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterRecentShrinksRememberedSet(t *testing.T) {
	build := func(filter bool) *Collector {
		h := mheap.New()
		c, err := New(h, Options{Policy: core.Fixed{K: 1}, FilterRecent: filter})
		if err != nil {
			t.Fatal(err)
		}
		// Allocation-heavy mutator: lots of young-to-younger stores
		// that die before any scavenge.
		prev := c.Alloc(1, 16)
		c.PushRoot(prev)
		for i := 0; i < 500; i++ {
			next := c.Alloc(1, 16)
			h.SetPtr(prev, 0, next) // forward pointer, young source
			prev = next
		}
		return c
	}
	eager := build(false)
	filtered := build(true)
	if filtered.RememberedSize() >= eager.RememberedSize() {
		t.Fatalf("filter did not shrink set: %d vs %d", filtered.RememberedSize(), eager.RememberedSize())
	}
	if filtered.BarrierSkips() == 0 {
		t.Fatal("no barrier skips counted")
	}
	if eager.BarrierSkips() != 0 {
		t.Fatal("eager collector reported skips")
	}
}

func TestFilterRecentRebuildsEntriesForSurvivors(t *testing.T) {
	h := mheap.New()
	c, err := New(h, Options{Policy: core.Full{}, FilterRecent: true})
	if err != nil {
		t.Fatal(err)
	}
	// Young chain root -> a -> b created entirely after "last
	// scavenge" (time 0): the a->b store is skipped by the barrier.
	a := c.Alloc(1, 16)
	c.SetGlobal("a", a)
	b := c.Alloc(0, 16)
	h.SetPtr(a, 0, b)
	if c.RememberedSize() != 0 {
		t.Fatalf("young store recorded eagerly: %d entries", c.RememberedSize())
	}
	// Scavenge 1 (full): both survive; the a->b forward pointer must
	// now be re-recorded, because at scavenge 2 a may be immune.
	c.CollectAt(0)
	if c.RememberedSize() != 1 {
		t.Fatalf("trace-time re-record missing: %d entries", c.RememberedSize())
	}
	// Scavenge 2 with a immune, b threatened: only the remembered
	// entry keeps b alive.
	cut := h.Birth(a)
	c.CollectAt(cut)
	if !h.Contains(b) {
		t.Fatal("filtered remembered set lost a live object")
	}
}
