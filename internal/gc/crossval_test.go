package gc

// Differential validation of the two engines: for a workload without
// inter-object pointers, liveness-by-reachability (this package)
// coincides with the free-event oracle (internal/sim), so running the
// same schedule through both with the same policy and trigger must
// produce the same scavenge history, byte for byte.
//
// Policies that consult LiveBytesBornAfter are excluded: the real
// collector cannot see that an unreachable-but-uncollected object is
// dead, while the oracle can, so FEEDMED-family boundaries legitimately
// differ between the engines.

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// schedule is one allocation plan: sizes in allocation order, and for
// each object the index of the allocation after which it dies (-1 =
// never).
type schedule struct {
	dataBytes []int
	deathAt   []int
}

func randomSchedule(r *xrand.Rand, n int) schedule {
	s := schedule{dataBytes: make([]int, n), deathAt: make([]int, n)}
	for i := 0; i < n; i++ {
		s.dataBytes[i] = r.Range(8, 512)
		if r.Bool(0.15) {
			s.deathAt[i] = -1 // permanent
		} else {
			s.deathAt[i] = i + 1 + r.Intn(n/4+1)
		}
	}
	return s
}

// runGC executes the schedule on the reachability collector with
// manual triggering matching the simulator's (scavenge after the
// allocation that crosses the trigger).
func runGC(s schedule, policy core.Policy, trigger uint64) ([]core.Scavenge, error) {
	h := mheap.New()
	c, err := New(h, Options{Policy: policy})
	if err != nil {
		return nil, err
	}
	var since uint64
	for i, data := range s.dataBytes {
		ref := c.Alloc(0, data)
		c.SetGlobal(fmt.Sprintf("o%d", i), ref)
		since += uint64(h.TotalSize(ref))
		// Trigger check first: the simulator scavenges while
		// processing the allocation event, before this step's frees.
		if since >= trigger {
			since = 0
			c.Collect()
		}
		// Deaths scheduled at this index: drop the roots.
		for j := 0; j <= i; j++ {
			if s.deathAt[j] == i {
				c.SetGlobal(fmt.Sprintf("o%d", j), mheap.Nil)
			}
		}
	}
	return c.History().Scavenges, nil
}

// runSim executes the same schedule through the oracle simulator.
// Event sizes use the heap's total object size (header included) so
// both engines see identical byte streams.
func runSim(s schedule, policy core.Policy, trigger uint64) ([]core.Scavenge, error) {
	// Determine each object's total size the same way mheap does:
	// header (16) + payload, rounded to the allocation class. The
	// birth clock in mheap advances by header+payload (unrounded), so
	// use that for event sizes.
	b := trace.NewBuilder()
	ids := make([]trace.ObjectID, len(s.dataBytes))
	for i, data := range s.dataBytes {
		b.Advance(10)
		ids[i] = b.Alloc(uint64(16 + data))
		for j := 0; j <= i; j++ {
			if s.deathAt[j] == i {
				b.Free(ids[j])
			}
		}
	}
	res, err := sim.Run(b.Events(), sim.Config{Policy: policy, TriggerBytes: trigger})
	if err != nil {
		return nil, err
	}
	return res.History.Scavenges, nil
}

func policiesUnderTest() []core.Policy {
	return []core.Policy{
		core.Full{},
		core.Fixed{K: 1},
		core.Fixed{K: 3},
		core.DtbMem{MemMax: 24 * 1024},
		core.DtbMem{MemMax: 1 << 30},
	}
}

func TestEnginesAgreeScripted(t *testing.T) {
	r := xrand.New(2718)
	s := randomSchedule(r, 400)
	for _, p := range policiesUnderTest() {
		gcHist, err := runGC(s, p, 8*1024)
		if err != nil {
			t.Fatal(err)
		}
		simHist, err := runSim(s, p, 8*1024)
		if err != nil {
			t.Fatal(err)
		}
		if len(gcHist) != len(simHist) {
			t.Fatalf("%s: %d gc scavenges vs %d sim scavenges", p.Name(), len(gcHist), len(simHist))
		}
		for i := range gcHist {
			g, m := gcHist[i], simHist[i]
			if g.T != m.T || g.TB != m.TB || g.Traced != m.Traced ||
				g.Reclaimed != m.Reclaimed || g.Surviving != m.Surviving {
				t.Fatalf("%s scavenge %d:\n gc  %+v\n sim %+v", p.Name(), i+1, g, m)
			}
		}
	}
}

func TestEnginesAgreeProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		s := randomSchedule(r, 150+r.Intn(150))
		for _, p := range policiesUnderTest() {
			gcHist, err := runGC(s, p, 4*1024)
			if err != nil {
				return false
			}
			simHist, err := runSim(s, p, 4*1024)
			if err != nil {
				return false
			}
			if len(gcHist) != len(simHist) {
				return false
			}
			for i := range gcHist {
				if gcHist[i] != simHist[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
