// Package gc implements the dynamic-threatening-boundary collector as
// a real reachability-based collector over the byte-array heap of
// internal/mheap — the mechanism the paper's §4.2 describes, as
// opposed to the oracle-driven simulation in internal/sim.
//
// The collector keeps:
//
//   - a root set (program globals and a root stack standing in for
//     machine registers and the call stack);
//   - a single remembered set holding the locations of ALL
//     forward-in-time pointers (stores where the source object is
//     older than the referent), maintained by the heap's write
//     barrier. A classic generational collector records only stores
//     that cross generation boundaries; because our boundary moves,
//     every old-to-young edge may cross some future boundary and must
//     be remembered (paper §4.2).
//
// A scavenge at boundary TB threatens every object born after TB. Its
// roots are the program roots that are threatened plus the remembered
// locations whose source is immune and whose current referent is
// threatened. Tracing proceeds only through threatened objects;
// everything threatened and unreached is reclaimed in bulk.
//
// This faithfully reproduces the paper's Figure 1 semantics, including
// nepotism (a dead immune object whose remembered pointer keeps a dead
// threatened object alive) and untenuring (moving the boundary back on
// a later scavenge reclaims previously immune garbage).
package gc

import (
	"fmt"
	"sort"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

// ptrLoc names one pointer slot in the heap.
type ptrLoc struct {
	src   mheap.Ref
	field int
}

// Collector drives threatening-boundary collection over a heap.
type Collector struct {
	heap   *mheap.Heap
	policy core.Policy

	globals    map[string]mheap.Ref
	rootStack  []mheap.Ref
	remembered map[ptrLoc]struct{}

	hist         core.History
	triggerBytes uint64
	sinceTrigger uint64
	autoCollect  bool

	// Remembered-set filtering (Options.FilterRecent): stores whose
	// source was born after the last scavenge are not recorded at
	// store time — the source is guaranteed to be threatened at the
	// next scavenge (every policy keeps TB <= t_{n-1}), and tracing
	// re-records its surviving forward pointers then.
	filterRecent bool
	lastScavenge core.Time
	barrierSkips uint64

	// Scratch buffers reused across collections: the mark stack, the
	// sweep list, the visited set and the root snapshot grow to the
	// heap's high-water mark once and then stop allocating per call
	// (the //dtbvet:hotpath contract, pinned by
	// TestCollectAtSteadyStateAllocs).
	grayScratch    []mheap.Ref
	deadScratch    []mheap.Ref
	visitedScratch map[mheap.Ref]bool
	nameScratch    []string
	rootScratch    []mheap.Ref
	ptrScratch     []mheap.Ref

	// Accumulated metrics.
	tracedTotal    uint64
	reclaimedTotal uint64
	collections    int

	// Telemetry counters, mirroring the observables the simulator's
	// Probe reports (write-barrier traffic, remembered-set pressure,
	// untenuring) for the real collector.
	barrierHits    uint64
	rememberedPeak int
	untenuredTotal uint64
	untenuredLast  uint64
}

// Options configures a Collector.
type Options struct {
	// Policy selects the threatening boundary (required).
	Policy core.Policy
	// TriggerBytes scavenges after this much allocation when
	// AutoCollect is set; defaults to 1 MB.
	TriggerBytes uint64
	// AutoCollect runs scavenges automatically from Alloc. When false
	// the program calls Collect explicitly.
	AutoCollect bool
	// FilterRecent enables the TB_min write-barrier optimization of
	// §4 ("pointer a need never be recorded"): stores from objects
	// born after the last scavenge are not remembered eagerly; the
	// next scavenge re-records the survivors' forward pointers while
	// tracing them. Shrinks the remembered set on allocation-heavy
	// mutators at no soundness cost (see the differential tests).
	FilterRecent bool
}

// New creates a collector managing the given heap. It installs the
// heap's write barrier; the heap must not have another barrier user.
func New(h *mheap.Heap, opts Options) (*Collector, error) {
	if opts.Policy == nil {
		return nil, fmt.Errorf("gc: Options.Policy is required")
	}
	if opts.TriggerBytes == 0 {
		opts.TriggerBytes = 1 << 20
	}
	c := &Collector{
		heap:         h,
		policy:       opts.Policy,
		globals:      make(map[string]mheap.Ref),
		remembered:   make(map[ptrLoc]struct{}),
		triggerBytes: opts.TriggerBytes,
		autoCollect:  opts.AutoCollect,
		filterRecent: opts.FilterRecent,
	}
	h.SetWriteBarrier(c.writeBarrier)
	return c, nil
}

// writeBarrier records forward-in-time pointer stores: the remembered
// set must contain every location where an older object points at a
// younger one.
//
//dtbvet:hotpath fires on every pointer store the mutator makes
func (c *Collector) writeBarrier(src mheap.Ref, field int, _, target mheap.Ref) {
	c.barrierHits++
	loc := ptrLoc{src, field}
	if target == mheap.Nil {
		// Overwriting with nil retires the location lazily; it is
		// pruned at the next scavenge. Deleting here is also correct
		// and keeps the set tight.
		delete(c.remembered, loc)
		return
	}
	if c.heap.Birth(src) < c.heap.Birth(target) {
		if c.filterRecent && c.heap.Birth(src) > c.lastScavenge {
			// The source is younger than the last scavenge: it will
			// be threatened (and traced or reclaimed) next time, so
			// the entry can be deferred to the trace-time re-record.
			c.barrierSkips++
			delete(c.remembered, loc)
			return
		}
		c.remembered[loc] = struct{}{}
		if len(c.remembered) > c.rememberedPeak {
			c.rememberedPeak = len(c.remembered)
		}
	} else {
		// The location now holds a backward-in-time pointer; any
		// earlier forward entry for it is stale.
		delete(c.remembered, loc)
	}
}

// Heap returns the managed heap.
func (c *Collector) Heap() *mheap.Heap { return c.heap }

// History returns the record of completed scavenges.
func (c *Collector) History() *core.History { return &c.hist }

// Collections returns the number of scavenges run.
func (c *Collector) Collections() int { return c.collections }

// TracedBytes returns the cumulative bytes traced.
func (c *Collector) TracedBytes() uint64 { return c.tracedTotal }

// ReclaimedBytes returns the cumulative bytes reclaimed.
func (c *Collector) ReclaimedBytes() uint64 { return c.reclaimedTotal }

// RememberedSize returns the current remembered-set cardinality
// (locations, not bytes) — the §4.2 space-cost observable.
func (c *Collector) RememberedSize() int { return len(c.remembered) }

// Pauses converts the scavenge history into pause times (seconds)
// under a machine model tracing the given bytes per second, the same
// proportionality the simulator uses (paper: 500 KB/s).
func (c *Collector) Pauses(traceBytesPerSecond float64) []float64 {
	if traceBytesPerSecond <= 0 {
		panic("gc: Pauses requires a positive trace rate")
	}
	out := make([]float64, 0, c.hist.Len())
	for _, s := range c.hist.Scavenges {
		out = append(out, float64(s.Traced)/traceBytesPerSecond)
	}
	return out
}

// SetGlobal binds a named program global to an object (or Nil to
// clear). Globals are part of the root set.
func (c *Collector) SetGlobal(name string, r mheap.Ref) {
	if r == mheap.Nil {
		delete(c.globals, name)
		return
	}
	c.globals[name] = r
}

// Global returns the named global, or Nil.
func (c *Collector) Global(name string) mheap.Ref { return c.globals[name] }

// globalRoots returns the global references in name order, so marking
// visits roots in the same order every run. The returned slice aliases
// a scratch buffer valid until the next call.
func (c *Collector) globalRoots() []mheap.Ref {
	names := c.nameScratch[:0]
	for name := range c.globals { //dtbvet:ignore determinism -- keys are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	refs := c.rootScratch[:0]
	for _, name := range names {
		refs = append(refs, c.globals[name])
	}
	c.nameScratch, c.rootScratch = names, refs
	return refs
}

// PushRoot registers a temporary root (a stack slot or register).
func (c *Collector) PushRoot(r mheap.Ref) { c.rootStack = append(c.rootStack, r) }

// PopRoot unregisters the most recent temporary root and returns it.
func (c *Collector) PopRoot() mheap.Ref {
	if len(c.rootStack) == 0 {
		panic("gc: PopRoot on empty root stack")
	}
	r := c.rootStack[len(c.rootStack)-1]
	c.rootStack = c.rootStack[:len(c.rootStack)-1]
	return r
}

// RootCount returns the current number of registered roots.
func (c *Collector) RootCount() int { return len(c.globals) + len(c.rootStack) }

// Alloc allocates through the collector, possibly running a scavenge
// first (AutoCollect). All live temporaries must be rooted across any
// Alloc call, exactly like a real GC'd runtime.
func (c *Collector) Alloc(nptrs, dataBytes int) mheap.Ref {
	if c.autoCollect {
		sz := uint64(16 + nptrs*8 + dataBytes)
		c.sinceTrigger += sz
		if c.sinceTrigger >= c.triggerBytes {
			c.sinceTrigger = 0
			c.Collect()
		}
	}
	return c.heap.Alloc(nptrs, dataBytes)
}

// Collect runs one scavenge: the policy picks the boundary from the
// history and the heap's current state. It returns the completed
// scavenge record.
func (c *Collector) Collect() core.Scavenge {
	now := c.heap.Clock()
	tb := core.ClampBoundary(c.policy.Boundary(now, &c.hist, c.heap), now)
	return c.CollectAt(tb)
}

// CollectAt runs one scavenge with an explicit threatening boundary,
// bypassing the policy (used by tests and the Figure 1 example).
//
//dtbvet:hotpath the mark/sweep walk: one call per collection, touches every live object
func (c *Collector) CollectAt(tb core.Time) core.Scavenge {
	now := c.heap.Clock()
	memBefore := c.heap.BytesInUse()

	// The FilterRecent barrier only skips stores whose source will be
	// threatened at the next scavenge, which holds when TB stays at or
	// before the previous scavenge time — true for every Table 1
	// policy. An explicit boundary beyond that (tests, experiments)
	// needs the skipped entries rebuilt first: scan the objects born
	// in (lastScavenge, tb] — about to become immune — and record
	// their forward pointers.
	if c.filterRecent && tb > c.lastScavenge {
		for _, r := range c.heap.Refs() { // birth-ordered
			b := c.heap.Birth(r)
			if b <= c.lastScavenge {
				continue
			}
			if b > tb {
				break // younger objects stay threatened
			}
			c.ptrScratch = c.heap.AppendPtrs(c.ptrScratch[:0], r)
			for i, target := range c.ptrScratch {
				if target != mheap.Nil && c.heap.Contains(target) && b < c.heap.Birth(target) {
					c.remembered[ptrLoc{r, i}] = struct{}{}
				}
			}
		}
	}

	threatened := func(r mheap.Ref) bool { return c.heap.Birth(r) > tb }

	// Gray set: threatened program roots...
	gray := c.grayScratch[:0]
	visited := c.visitedScratch
	if visited == nil {
		visited = make(map[mheap.Ref]bool)
		c.visitedScratch = visited
	} else {
		clear(visited)
	}
	addGray := func(r mheap.Ref) {
		if r != mheap.Nil && !visited[r] && c.heap.Contains(r) && threatened(r) {
			visited[r] = true
			gray = append(gray, r)
		}
	}
	for _, r := range c.globalRoots() {
		addGray(r)
	}
	for _, r := range c.rootStack {
		addGray(r)
	}
	// ...plus remembered locations crossing the boundary. Entries
	// whose source has been reclaimed, or which no longer hold a
	// forward-in-time pointer, are pruned as we go.
	for loc := range c.remembered { //dtbvet:ignore determinism -- pruning and gray-set insertion are order-insensitive (sets and sums only)
		if !c.heap.Contains(loc.src) {
			delete(c.remembered, loc)
			continue
		}
		target := c.heap.Ptr(loc.src, loc.field)
		if target == mheap.Nil || c.heap.Birth(loc.src) >= c.heap.Birth(target) {
			delete(c.remembered, loc)
			continue
		}
		// The source may itself be garbage — if it is immune we must
		// still honour the pointer (nepotism); if it is threatened,
		// tracing decides its fate and this entry contributes nothing.
		if !threatened(loc.src) {
			addGray(target)
		}
	}

	// Trace through threatened objects only. Under FilterRecent,
	// tracing doubles as the deferred remembered-set rebuild: each
	// survivor's forward-in-time pointers are (re-)recorded here.
	var traced uint64
	for len(gray) > 0 {
		r := gray[len(gray)-1]
		gray = gray[:len(gray)-1]
		traced += uint64(c.heap.TotalSize(r))
		c.ptrScratch = c.heap.AppendPtrs(c.ptrScratch[:0], r)
		for i, target := range c.ptrScratch {
			addGray(target)
			if c.filterRecent && target != mheap.Nil && c.heap.Contains(target) &&
				c.heap.Birth(r) < c.heap.Birth(target) {
				c.remembered[ptrLoc{r, i}] = struct{}{}
			}
		}
	}

	// Reclaim the unreached threatened objects. Objects that were
	// immune at the previous scavenge (born at or before its boundary)
	// but die now are untenured storage — the reclamation a
	// boundary-moving policy wins back and a fixed one never can
	// (paper §3's tenured-garbage argument).
	prevTB, hasPrev := core.Time(0), false
	if last, ok := c.hist.Last(); ok {
		prevTB, hasPrev = last.TB, true
	}
	dead := c.deadScratch[:0]
	var untenured uint64
	for _, r := range c.heap.Refs() {
		if threatened(r) && !visited[r] {
			dead = append(dead, r)
			if hasPrev && c.heap.Birth(r) <= prevTB {
				untenured += uint64(c.heap.TotalSize(r))
			}
		}
	}
	reclaimed := c.heap.Reclaim(dead)
	c.grayScratch, c.deadScratch = gray[:0], dead[:0]
	c.untenuredLast = untenured
	c.untenuredTotal += untenured
	if len(c.remembered) > c.rememberedPeak {
		c.rememberedPeak = len(c.remembered)
	}

	c.lastScavenge = now
	s := core.Scavenge{
		T:         now,
		TB:        tb,
		MemBefore: memBefore,
		Traced:    traced,
		Reclaimed: reclaimed,
		Surviving: c.heap.BytesInUse(),
	}
	c.hist.Record(s)
	s.N = c.hist.Len()
	c.collections++
	c.tracedTotal += traced
	c.reclaimedTotal += reclaimed
	return s
}

// BarrierSkips returns how many barrier hits the FilterRecent
// optimization elided (0 when the filter is off).
func (c *Collector) BarrierSkips() uint64 { return c.barrierSkips }

// BarrierHits returns how many pointer stores reached the write
// barrier — the §4.2 mutator-overhead observable.
func (c *Collector) BarrierHits() uint64 { return c.barrierHits }

// RememberedPeak returns the largest remembered-set cardinality seen
// so far (locations, not bytes).
func (c *Collector) RememberedPeak() int { return c.rememberedPeak }

// UntenuredBytes returns the cumulative bytes of previously immune
// storage reclaimed by later scavenges whose boundary moved back —
// the untenuring the dynamic policies exist to enable. A classic
// generational collector (FIXED-k) keeps this at zero forever.
func (c *Collector) UntenuredBytes() uint64 { return c.untenuredTotal }

// LastUntenuredBytes returns the untenured bytes of the most recent
// scavenge only.
func (c *Collector) LastUntenuredBytes() uint64 { return c.untenuredLast }

// CheckRememberedInvariant verifies remembered-set soundness: every
// forward-in-time pointer currently stored in the heap is covered by a
// remembered entry — except, under FilterRecent, pointers whose source
// was born after the last scavenge, which are covered by the
// trace-time re-record instead. Tests call it after mutation
// sequences; a miss here is the kind of bug that silently frees live
// objects.
func (c *Collector) CheckRememberedInvariant() error {
	for _, src := range c.heap.Refs() {
		if c.filterRecent && c.heap.Birth(src) > c.lastScavenge {
			continue
		}
		for i, n := 0, c.heap.NumPtrs(src); i < n; i++ {
			target := c.heap.Ptr(src, i)
			if target == mheap.Nil || !c.heap.Contains(target) {
				continue
			}
			if c.heap.Birth(src) < c.heap.Birth(target) {
				if _, ok := c.remembered[ptrLoc{src, i}]; !ok {
					return fmt.Errorf("gc: forward pointer %d.%d -> %d missing from remembered set", src, i, target)
				}
			}
		}
	}
	return nil
}

// ReachableBytes computes the bytes reachable from the full root set
// ignoring the boundary (a whole-heap oracle for tests).
func (c *Collector) ReachableBytes() uint64 {
	visited := make(map[mheap.Ref]bool)
	var stack []mheap.Ref
	add := func(r mheap.Ref) {
		if r != mheap.Nil && !visited[r] && c.heap.Contains(r) {
			visited[r] = true
			stack = append(stack, r)
		}
	}
	for _, r := range c.globalRoots() {
		add(r)
	}
	for _, r := range c.rootStack {
		add(r)
	}
	var sum uint64
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sum += uint64(c.heap.TotalSize(r))
		for i, n := 0, c.heap.NumPtrs(r); i < n; i++ {
			add(c.heap.Ptr(r, i))
		}
	}
	return sum
}
