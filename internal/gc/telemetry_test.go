package gc

// Tests for the collector's telemetry counters: write-barrier hits,
// remembered-set peak, and untenured-byte accounting. They reuse the
// Figure 1 scenario, whose second scavenge is the paper's canonical
// untenuring moment.

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

func TestBarrierHitCounter(t *testing.T) {
	f := buildFigure1(t)
	// buildFigure1 performs exactly three pointer stores (I->J, G->K,
	// J->F); every store must reach the barrier.
	if got := f.c.BarrierHits(); got != 3 {
		t.Fatalf("BarrierHits = %d, want 3", got)
	}
	// A backward store still hits the barrier but is not remembered.
	before := f.c.RememberedSize()
	f.h.SetPtr(f.A, 0, f.G)
	if got := f.c.BarrierHits(); got != 4 {
		t.Fatalf("BarrierHits after backward store = %d, want 4", got)
	}
	if got := f.c.RememberedSize(); got != before {
		t.Fatalf("backward store changed remembered set: %d -> %d", before, got)
	}
}

func TestRememberedPeakSurvivesPruning(t *testing.T) {
	f := buildFigure1(t)
	peak := f.c.RememberedPeak()
	if peak != 3 {
		t.Fatalf("RememberedPeak = %d, want 3 (stores I->J, G->K, J->F)", peak)
	}
	// A full collection reclaims the garbage chain; the following
	// scavenge prunes the dead-source remembered entries (pruning is
	// lazy). The peak must not move backwards.
	f.c.CollectAt(0)
	f.c.CollectAt(0)
	if got := f.c.RememberedSize(); got >= peak {
		t.Fatalf("full collection left remembered set at %d, want < %d", got, peak)
	}
	if got := f.c.RememberedPeak(); got != peak {
		t.Fatalf("RememberedPeak after pruning = %d, want %d", got, peak)
	}
}

func TestUntenuredBytesAccounting(t *testing.T) {
	f := buildFigure1(t)

	// First scavenge at TB_min: nothing was immune before, so nothing
	// can be untenured.
	f.c.CollectAt(f.tbMin)
	if got := f.c.UntenuredBytes(); got != 0 {
		t.Fatalf("UntenuredBytes after first scavenge = %d, want 0", got)
	}

	// Second scavenge at 0 moves the boundary back: I and J (immune
	// tenured garbage of scavenge 1) are untenured and reclaimed,
	// taking their nepotism victim F with them. F was born after
	// TB_min — threatened both times — so only I and J count as
	// untenured, while Reclaimed covers all three.
	sizeIJ := uint64(f.h.TotalSize(f.I) + f.h.TotalSize(f.J))
	sizeF := uint64(f.h.TotalSize(f.F))
	s := f.c.CollectAt(0)
	if want := sizeIJ + sizeF; s.Reclaimed != want {
		t.Fatalf("second scavenge reclaimed %d bytes, want %d (I+J+F)", s.Reclaimed, want)
	}
	if got := f.c.LastUntenuredBytes(); got != sizeIJ {
		t.Fatalf("LastUntenuredBytes = %d, want %d (I+J)", got, sizeIJ)
	}
	if got := f.c.UntenuredBytes(); got != sizeIJ {
		t.Fatalf("UntenuredBytes = %d, want %d", got, sizeIJ)
	}

	// A FIXED-style collector that never moves the boundary back can
	// never untenure: scavenging again at the last scavenge time finds
	// no immune-then, threatened-now storage.
	f.c.CollectAt(f.c.History().TimeOfPrevious(1))
	if got := f.c.LastUntenuredBytes(); got != 0 {
		t.Fatalf("LastUntenuredBytes with a non-regressing boundary = %d, want 0", got)
	}
}

func TestUntenuredZeroUnderFixedPolicy(t *testing.T) {
	h := mheap.New()
	c, err := New(h, Options{Policy: core.Fixed{K: 1}, TriggerBytes: 4096, AutoCollect: true})
	if err != nil {
		t.Fatal(err)
	}
	// Allocate-and-drop churn with a rooted spine; FIXED1 never moves
	// the boundary back, so untenured bytes must stay zero.
	spine := c.Alloc(1, 64)
	c.SetGlobal("spine", spine)
	for i := 0; i < 400; i++ {
		c.PushRoot(spine)
		r := c.Alloc(1, 128)
		c.PopRoot()
		if i%3 == 0 {
			h.SetPtr(spine, 0, r) // keep one young object reachable
		}
	}
	if c.Collections() == 0 {
		t.Fatal("auto-collect never triggered")
	}
	if got := c.UntenuredBytes(); got != 0 {
		t.Fatalf("FIXED1 untenured %d bytes; fixed boundaries cannot untenure", got)
	}
	if c.BarrierHits() == 0 {
		t.Fatal("pointer stores never reached the barrier")
	}
}
