package gc

// This file reproduces the paper's Figure 1 ("Dynamic Threatening
// Boundary vs Generations") as an executable scenario.
//
// The figure's memory space, oldest first: old live data G (stands in
// for the rooted old structure), garbage chain I -> J -> f -> F, a
// remembered-pointer target K, the boundary TB_min, then young objects
// including garbage B and E and live data A.
//
// Claims encoded below, quoting §4:
//
//  1. Scavenging at TB_min: "the garbage objects B and E would be
//     scavenged, objects I, J, and F would not; they are tenured
//     garbage. Object F ... remains alive even though it is threatened
//     and unreachable because the tenured garbage points to it"
//     (nepotism via the remembered set).
//  2. "On a later scavenging, the collector is free to choose a
//     different threatening boundary ... objects I, J and F become
//     untenured, and will be reclaimed. Object K remains alive because
//     pointer k references it from the remembered set."

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

type figure1 struct {
	c             *Collector
	h             *mheap.Heap
	G, I, J, K, F mheap.Ref
	A, B, E       mheap.Ref
	tbMin         core.Time
}

func buildFigure1(t *testing.T) *figure1 {
	t.Helper()
	h := mheap.New()
	c, err := New(h, Options{Policy: core.Full{}})
	if err != nil {
		t.Fatal(err)
	}
	f := &figure1{c: c, h: h}

	// Old space, allocated oldest-first.
	f.G = c.Alloc(1, 32) // live old data, rooted
	c.SetGlobal("G", f.G)
	f.I = c.Alloc(1, 32) // garbage chain head (unreachable)
	f.J = c.Alloc(1, 32)
	h.SetPtr(f.I, 0, f.J) // pointer I -> J (forward in time, remembered)
	f.K = c.Alloc(0, 32)  // kept alive only by pointer k
	h.SetPtr(f.G, 0, f.K) // pointer k: G -> K (forward, remembered)

	f.tbMin = h.Clock() // TB_min: boundary between old and young space

	// Young space.
	f.F = c.Alloc(0, 32)  // threatened but referenced by tenured garbage
	h.SetPtr(f.J, 0, f.F) // pointer f: J -> F (forward, remembered)
	f.B = c.Alloc(0, 32)  // young garbage
	f.A = c.Alloc(1, 32)  // young live data, rooted
	c.SetGlobal("A", f.A)
	f.E = c.Alloc(0, 32) // young garbage
	return f
}

func TestFigure1ScavengeAtTBMin(t *testing.T) {
	f := buildFigure1(t)
	s := f.c.CollectAt(f.tbMin)

	// B and E are scavenged.
	if f.h.Contains(f.B) || f.h.Contains(f.E) {
		t.Error("young garbage B/E survived the TB_min scavenge")
	}
	// I and J are immune tenured garbage.
	if !f.h.Contains(f.I) || !f.h.Contains(f.J) {
		t.Error("immune garbage I/J reclaimed by a young-only scavenge")
	}
	// F survives by nepotism: threatened, unreachable, but pointed at
	// by the remembered pointer f from tenured garbage J.
	if !f.h.Contains(f.F) {
		t.Error("nepotism victim F reclaimed")
	}
	// Live data survives.
	for name, r := range map[string]mheap.Ref{"G": f.G, "K": f.K, "A": f.A} {
		if !f.h.Contains(r) {
			t.Errorf("live object %s reclaimed", name)
		}
	}
	// Only threatened storage was traced: F (nepotism) + A (root).
	want := uint64(f.h.TotalSize(f.F) + f.h.TotalSize(f.A))
	if s.Traced != want {
		t.Errorf("traced %d bytes, want %d (F+A only)", s.Traced, want)
	}
}

func TestFigure1LaterScavengeUntenures(t *testing.T) {
	f := buildFigure1(t)
	f.c.CollectAt(f.tbMin)

	// Later scavenge with the boundary moved back to program start
	// (the figure's TB placed above the whole old space).
	f.c.CollectAt(0)

	// I, J and F become untenured and are reclaimed.
	for name, r := range map[string]mheap.Ref{"I": f.I, "J": f.J, "F": f.F} {
		if f.h.Contains(r) {
			t.Errorf("tenured garbage %s survived the moved-back boundary", name)
		}
	}
	// K remains alive through remembered pointer k (G is rooted, so K
	// is in fact reachable; the remembered entry also covers it when G
	// is immune).
	if !f.h.Contains(f.K) {
		t.Error("K reclaimed despite pointer k")
	}
	for name, r := range map[string]mheap.Ref{"G": f.G, "A": f.A} {
		if !f.h.Contains(r) {
			t.Errorf("live object %s reclaimed", name)
		}
	}
	if err := f.h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1GenerationalComparison(t *testing.T) {
	// A fixed-boundary collector (never moving the boundary back past
	// TB_min) can never reclaim I, J or F — they are tenured garbage
	// forever. This is the contrast the figure draws.
	f := buildFigure1(t)
	for i := 0; i < 5; i++ {
		f.c.CollectAt(f.tbMin)
	}
	for name, r := range map[string]mheap.Ref{"I": f.I, "J": f.J, "F": f.F} {
		if !f.h.Contains(r) {
			t.Errorf("fixed boundary unexpectedly reclaimed %s", name)
		}
	}
	tenuredGarbage := f.h.BytesInUse() - f.c.ReachableBytes()
	if tenuredGarbage == 0 {
		t.Error("expected non-zero tenured garbage under the fixed boundary")
	}
	// The dynamic collector reclaims it in one boundary move.
	f.c.CollectAt(0)
	if got := f.h.BytesInUse() - f.c.ReachableBytes(); got != 0 {
		t.Errorf("full boundary move left %d bytes of garbage", got)
	}
}

func TestFigure1RememberedSetContents(t *testing.T) {
	// The DTB collector records ALL forward-in-time pointers (d, k, f
	// in the figure; here I->J, G->K, J->F). A generational collector
	// would record only the one crossing its fixed generation boundary
	// (J->F, the figure's f).
	f := buildFigure1(t)
	if got := f.c.RememberedSize(); got != 3 {
		t.Errorf("remembered set has %d entries, want 3 (I->J, G->K, J->F)", got)
	}
	if err := f.c.CheckRememberedInvariant(); err != nil {
		t.Fatal(err)
	}
}
