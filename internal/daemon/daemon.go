package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dtbgc/dtbgc/internal/trace"
)

// Config parameterizes a Server. The zero value serves with sensible
// defaults (see withDefaults).
type Config struct {
	// Workers bounds concurrent evaluations; 0 = GOMAXPROCS. Memo
	// hits, uploads and metrics never consume a worker slot.
	Workers int
	// QueueDepth bounds evaluations waiting for a worker slot beyond
	// the ones running; past it the server answers 429 immediately.
	// 0 = 2×Workers.
	QueueDepth int
	// TapeCacheBytes budgets the decoded-tape LRU; 0 = 256 MB.
	TapeCacheBytes int64
	// MemoEntries bounds the result memo table; 0 = 4096.
	MemoEntries int
	// MaxTraceBytes bounds one trace upload; 0 = 1 GB.
	MaxTraceBytes int64
	// RetryAfter is the hint sent with 429 responses; 0 = 1s.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.TapeCacheBytes <= 0 {
		c.TapeCacheBytes = 256 << 20
	}
	if c.MemoEntries <= 0 {
		c.MemoEntries = 4096
	}
	if c.MaxTraceBytes <= 0 {
		c.MaxTraceBytes = 1 << 30
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the dtbd daemon: caches, admission state and HTTP
// handlers. Create with NewServer, serve with Start (or mount
// Handler on a server of your own), stop with Shutdown.
type Server struct {
	cfg   Config
	tapes *tapeCache
	memo  *memoCache
	met   *metrics

	slots   chan struct{} // worker slots; a send acquires
	waiting atomic.Int64  // evaluations queued for a slot

	mu       sync.Mutex
	hs       *http.Server
	serveErr error
	wg       sync.WaitGroup
}

// NewServer builds a Server from cfg.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		tapes: newTapeCache(cfg.TapeCacheBytes),
		memo:  newMemoCache(cfg.MemoEntries),
		met:   newMetrics(time.Now()),
		slots: make(chan struct{}, cfg.Workers),
	}
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/eval     evaluate (EvalRequest -> EvalResponse)
//	POST /v1/traces   upload a binary trace -> {digest, events, bytes}
//	GET  /v1/metrics  MetricsSnapshot
//	GET  /v1/healthz  {"ok":true}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/eval", s.handleEval)
	mux.HandleFunc("POST /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// Start serves the API on ln in a background goroutine until Shutdown
// (or a listener error). It returns immediately.
func (s *Server) Start(ln net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hs != nil {
		panic("daemon: Start called twice")
	}
	s.hs = &http.Server{Handler: s.Handler()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		err := s.hs.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil // orderly Shutdown
		}
		s.mu.Lock()
		s.serveErr = err
		s.mu.Unlock()
	}()
}

// Shutdown drains the server: the listener closes immediately, every
// in-flight request (evaluations included) runs to completion, and
// only then does Shutdown return — the graceful-exit half of the
// admission story. ctx bounds the drain; past it, remaining requests
// are abandoned and ctx's error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	hs := s.hs
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	err := hs.Shutdown(ctx)
	s.wg.Wait() // join the Serve goroutine: no daemon goroutine outlives Shutdown
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		err = s.serveErr
	}
	return err
}

// Metrics returns the current serving snapshot.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.met.snapshot(time.Now())
	snap.Workers = s.cfg.Workers
	snap.QueueDepth = s.cfg.QueueDepth
	snap.TapeCacheTraces, snap.TapeCacheBytes = s.tapes.stats()
	snap.MemoEntries = s.memo.len()
	return snap
}

// errOverloaded is the admission-control rejection (HTTP 429).
var errOverloaded = errors.New("daemon: overloaded: worker slots and queue are full")

// admit acquires a worker slot, waiting in the bounded queue if all
// slots are busy. It returns the release function, or errOverloaded
// when the queue is full — the backpressure signal, sent before any
// work is sunk into the request. In-flight evaluations are never
// affected by rejections; they hold their slots until done.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	release = func() {
		<-s.slots
		s.met.done1()
	}
	select {
	case s.slots <- struct{}{}:
		s.met.started1()
		return release, nil
	default:
	}
	if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		return nil, errOverloaded
	}
	s.met.enqueue()
	defer func() {
		s.waiting.Add(-1)
		s.met.dequeue()
	}()
	select {
	case s.slots <- struct{}{}:
		s.met.started1()
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req EvalRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.normalize(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key := req.memoKey()
	if payload, ok := s.memo.get(key); ok {
		ms := msSince(start)
		s.met.servedMemo(ms)
		s.writePayload(w, "memo", ms, payload)
		return
	}

	release, err := s.admit(r.Context())
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.met.rejectedOne()
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			s.writeError(w, http.StatusTooManyRequests, err)
			return
		}
		s.writeError(w, statusClientGone, err) // client cancelled while queued
		return
	}
	payload, tapeHit, err := s.evaluate(r.Context(), &req)
	release()
	if err != nil {
		s.met.failedOne()
		switch {
		case isBadRequest(err):
			s.writeError(w, http.StatusBadRequest, err)
		case isUnknownTrace(err):
			s.writeError(w, http.StatusNotFound, err)
		case isDeadline(err):
			s.writeError(w, http.StatusGatewayTimeout, fmt.Errorf("evaluation deadline exceeded: %w", err))
		case errors.Is(err, context.Canceled):
			s.writeError(w, statusClientGone, err)
		default:
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.memo.put(key, payload)
	ms := msSince(start)
	s.met.servedCold(tapeHit, ms)
	source := "cold"
	if tapeHit {
		source = "tape"
	}
	s.writePayload(w, source, ms, payload)
}

// TraceInfo is the POST /v1/traces response.
type TraceInfo struct {
	Digest string `json:"digest"`
	Events int    `json:"events"`
	Bytes  int64  `json:"bytes"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	dr := trace.NewDigestingReader(body)
	events, err := trace.NewReader(dr).ReadAll()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding trace: %w", err))
		return
	}
	// The stream decoded to a clean EOF, so the digest covers the
	// whole canonical encoding — the same value DigestEvents computes.
	d := dr.Sum()
	s.tapes.put(d, events)
	s.met.uploadedOne()
	s.writeJSON(w, http.StatusOK, TraceInfo{
		Digest: d.String(),
		Events: len(events),
		Bytes:  tapeCost(events),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// statusClientGone is 499 (nginx convention): the client cancelled;
// nothing was wrong server-side.
const statusClientGone = 499

// errorBody is the JSON error envelope every non-2xx response uses.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// A failed response write means the client is gone; there is no
	// one left to tell, so the encode error is deliberately dropped.
	json.NewEncoder(w).Encode(v)
}

// writePayload assembles an EvalResponse around the memoized payload
// without re-marshaling the result bytes.
func (s *Server) writePayload(w http.ResponseWriter, source string, serviceMs float64, payload []byte) {
	var p evalPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("corrupt memo payload: %w", err))
		return
	}
	s.writeJSON(w, http.StatusOK, EvalResponse{
		Source:    source,
		ServiceMs: serviceMs,
		Result:    p.Result,
		Telemetry: p.Telemetry,
	})
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

func isBadRequest(err error) bool {
	var br *errBadRequest
	return errors.As(err, &br)
}

func isUnknownTrace(err error) bool {
	var ut *ErrUnknownTrace
	return errors.As(err, &ut)
}
