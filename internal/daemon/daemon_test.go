package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/audit"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// directEval runs req through the library the way dtbsim would —
// no daemon, no pool, no caches — and returns the result plus the
// telemetry lines. This is the oracle the daemon must match bit for
// bit.
func directEval(t *testing.T, req EvalRequest) (*dtbgc.Result, string) {
	t.Helper()
	if err := req.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	var telBuf bytes.Buffer
	var tw *dtbgc.TelemetryWriter
	var probe dtbgc.Probe
	if req.Telemetry {
		tw = dtbgc.NewTelemetryWriter(&telBuf)
		probe = tw
	}
	opts, err := req.options(probe)
	if err != nil {
		t.Fatalf("options: %v", err)
	}
	var results []*dtbgc.Result
	if req.TraceDigest != "" {
		t.Fatalf("directEval drives workloads; replay traces inline")
	}
	w, err := dtbgc.LookupWorkload(req.Workload)
	if err != nil {
		t.Fatalf("LookupWorkload: %v", err)
	}
	results, err = dtbgc.ReplayAll(context.Background(), dtbgc.EventSource(w.Scale(req.Scale).GenerateTo), []dtbgc.SimOptions{opts})
	if err != nil {
		t.Fatalf("ReplayAll: %v", err)
	}
	if tw != nil && tw.Err() != nil {
		t.Fatalf("telemetry: %v", tw.Err())
	}
	return results[0], telBuf.String()
}

func decodeResult(t *testing.T, resp *EvalResponse) *dtbgc.Result {
	t.Helper()
	var got dtbgc.Result
	if err := json.Unmarshal(resp.Result, &got); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	return &got
}

func telemetryLines(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

func newTestDaemon(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := NewServer(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, NewClient(hs.URL)
}

// TestEvalWorkloadBitIdentity is the core serving guarantee: the
// daemon's cold answer equals a direct library run field for field and
// telemetry line for line, and the memo-warm answer re-serves the
// identical bytes.
func TestEvalWorkloadBitIdentity(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 2})
	req := EvalRequest{
		Workload:  "CFRAC",
		Scale:     0.1,
		Policy:    "dtbfm:50k",
		Label:     "e2e/cfrac",
		Telemetry: true,
	}
	want, wantTel := directEval(t, req)

	cold, err := c.Eval(context.Background(), &req)
	if err != nil {
		t.Fatalf("cold eval: %v", err)
	}
	if cold.Source != "cold" {
		t.Fatalf("first eval Source = %q, want cold", cold.Source)
	}
	if diffs := audit.DiffResults(decodeResult(t, cold), want); len(diffs) > 0 {
		t.Fatalf("cold result differs from direct run:\n%s", strings.Join(diffs, "\n"))
	}
	if diffs := audit.DiffTelemetry(telemetryLines(cold.Telemetry), telemetryLines(wantTel)); len(diffs) > 0 {
		t.Fatalf("cold telemetry differs from direct run:\n%s", strings.Join(diffs, "\n"))
	}

	warm, err := c.Eval(context.Background(), &req)
	if err != nil {
		t.Fatalf("warm eval: %v", err)
	}
	if warm.Source != "memo" {
		t.Fatalf("second eval Source = %q, want memo", warm.Source)
	}
	if !bytes.Equal(warm.Result, cold.Result) {
		t.Fatalf("memo result bytes differ from cold:\ncold: %s\nwarm: %s", cold.Result, warm.Result)
	}
	if warm.Telemetry != cold.Telemetry {
		t.Fatalf("memo telemetry differs from cold")
	}
}

// TestEvalTraceBitIdentity covers the uploaded-trace path: unknown
// digest is a typed 404, an upload fixes it, the replay over the
// cached tape equals simulating the events directly, and a repeat is
// a memo hit.
func TestEvalTraceBitIdentity(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 2})
	events := dtbgc.WorkloadByName("GHOST(1)").Scale(0.05).MustGenerate()
	var enc bytes.Buffer
	if err := dtbgc.WriteTrace(&enc, events); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	d, err := trace.DigestEvents(events)
	if err != nil {
		t.Fatalf("DigestEvents: %v", err)
	}
	digest := d.String()

	req := EvalRequest{TraceDigest: digest, Policy: "full", Label: "e2e/ghost1"}
	if _, err := c.Eval(context.Background(), &req); err == nil {
		t.Fatalf("eval before upload succeeded; want unknown-trace error")
	} else {
		var ut *UnknownTraceError
		if !errors.As(err, &ut) {
			t.Fatalf("eval before upload: error = %v, want *UnknownTraceError", err)
		}
		if ut.Digest != digest {
			t.Fatalf("UnknownTraceError.Digest = %s, want %s", ut.Digest, digest)
		}
	}

	info, err := c.UploadTrace(context.Background(), bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatalf("UploadTrace: %v", err)
	}
	if info.Digest != digest {
		t.Fatalf("upload digest = %s, want %s (stream digest must equal DigestEvents)", info.Digest, digest)
	}
	if info.Events != len(events) {
		t.Fatalf("upload events = %d, want %d", info.Events, len(events))
	}

	resp, err := c.Eval(context.Background(), &req)
	if err != nil {
		t.Fatalf("eval after upload: %v", err)
	}
	if resp.Source != "tape" {
		t.Fatalf("trace eval Source = %q, want tape", resp.Source)
	}
	want, err := dtbgc.Simulate(events, mustOptions(t, req))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if diffs := audit.DiffResults(decodeResult(t, resp), want); len(diffs) > 0 {
		t.Fatalf("trace eval differs from direct Simulate:\n%s", strings.Join(diffs, "\n"))
	}

	again, err := c.Eval(context.Background(), &req)
	if err != nil {
		t.Fatalf("repeat eval: %v", err)
	}
	if again.Source != "memo" {
		t.Fatalf("repeat eval Source = %q, want memo", again.Source)
	}
	if !bytes.Equal(again.Result, resp.Result) {
		t.Fatalf("memo trace result differs from tape result")
	}
}

func mustOptions(t *testing.T, req EvalRequest) dtbgc.SimOptions {
	t.Helper()
	if err := req.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	opts, err := req.options(nil)
	if err != nil {
		t.Fatalf("options: %v", err)
	}
	return opts
}

// TestEvalConcurrentBitIdentity hammers the daemon with distinct
// concurrent requests and checks every response against its serial
// oracle — concurrency must not leak state between evaluations (the
// per-request-sink discipline and the pool fix both under load).
func TestEvalConcurrentBitIdentity(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 4, QueueDepth: 64})
	reqs := []EvalRequest{
		{Workload: "CFRAC", Scale: 0.1, Policy: "full", Label: "cc/full", Telemetry: true},
		{Workload: "CFRAC", Scale: 0.1, Policy: "dtbfm:50k", Label: "cc/dtbfm", Telemetry: true},
		{Workload: "GHOST(1)", Scale: 0.05, Policy: "fixed4", Label: "cc/ghost", Telemetry: true},
		{Workload: "ESPRESSO(1)", Scale: 0.1, Baseline: "live", Label: "cc/live", Telemetry: true},
		{Workload: "CFRAC", Scale: 0.1, Policy: "full", TriggerBytes: 2 << 20, Label: "cc/trig", Telemetry: true},
		{Workload: "GHOST(2)", Scale: 0.05, Baseline: "nogc", Label: "cc/nogc", Telemetry: true},
	}
	type oracle struct {
		result *dtbgc.Result
		tel    string
	}
	oracles := make([]oracle, len(reqs))
	for i, r := range reqs {
		res, tel := directEval(t, r)
		oracles[i] = oracle{result: res, tel: tel}
	}

	const rounds = 3 // repeats exercise memo hits racing cold evals
	errs := make([]error, len(reqs)*rounds)
	resps := make([]*EvalResponse, len(reqs)*rounds)
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		for i := range reqs {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				r := reqs[i]
				resps[slot], errs[slot] = c.Eval(context.Background(), &r)
			}(round*len(reqs)+i, i)
		}
	}
	wg.Wait()

	for slot, err := range errs {
		i := slot % len(reqs)
		if err != nil {
			t.Fatalf("concurrent eval %s: %v", reqs[i].Label, err)
		}
		if diffs := audit.DiffResults(decodeResult(t, resps[slot]), oracles[i].result); len(diffs) > 0 {
			t.Errorf("concurrent eval %s differs from serial oracle:\n%s", reqs[i].Label, strings.Join(diffs, "\n"))
		}
		if diffs := audit.DiffTelemetry(telemetryLines(resps[slot].Telemetry), telemetryLines(oracles[i].tel)); len(diffs) > 0 {
			t.Errorf("concurrent telemetry %s differs from serial oracle:\n%s", reqs[i].Label, strings.Join(diffs, "\n"))
		}
	}
}

// TestWarmCacheSpeedup pins the serving economics: a memo hit must be
// at least 5× faster than the cold evaluation it replaces (the ISSUE's
// acceptance floor; in practice it is orders of magnitude).
func TestWarmCacheSpeedup(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 1})
	req := EvalRequest{Workload: "CFRAC", Policy: "full", Label: "speedup"}
	cold, err := c.Eval(context.Background(), &req)
	if err != nil {
		t.Fatalf("cold eval: %v", err)
	}
	if cold.Source != "cold" {
		t.Fatalf("first eval Source = %q, want cold", cold.Source)
	}
	// Best warm time of a few tries, vs the single cold run: scheduler
	// noise can slow one warm hit, but cannot speed up the cold replay.
	warm := cold.ServiceMs
	for i := 0; i < 5; i++ {
		resp, err := c.Eval(context.Background(), &req)
		if err != nil {
			t.Fatalf("warm eval: %v", err)
		}
		if resp.Source != "memo" {
			t.Fatalf("warm eval Source = %q, want memo", resp.Source)
		}
		if resp.ServiceMs < warm {
			warm = resp.ServiceMs
		}
	}
	if warm*5 > cold.ServiceMs {
		t.Fatalf("warm cache speedup below 5x: cold %.3fms, best warm %.3fms", cold.ServiceMs, warm)
	}
}

// TestAdmissionBackpressure saturates a 1-worker, 1-deep daemon and
// checks the contract: the overflow request gets a typed 429 with a
// Retry-After hint, while the queued request is admitted and completes
// normally once the slot frees — rejections never corrupt in-flight
// work.
func TestAdmissionBackpressure(t *testing.T) {
	s, c := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})

	// Occupy the only worker slot directly, so admission state is
	// deterministic without timing a slow evaluation.
	s.slots <- struct{}{}

	queued := EvalRequest{Workload: "CFRAC", Scale: 0.1, Policy: "full", Label: "bp/queued"}
	var queuedResp *EvalResponse
	var queuedErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		queuedResp, queuedErr = c.Eval(context.Background(), &queued)
	}()
	waitFor(t, "request queued", func() bool { return s.waiting.Load() == 1 })

	over := EvalRequest{Workload: "CFRAC", Scale: 0.1, Policy: "full", Label: "bp/overflow"}
	_, err := c.Eval(context.Background(), &over)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("overflow eval: error = %v, want *OverloadedError", err)
	}
	if oe.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After = %v, want 2s", oe.RetryAfter)
	}

	<-s.slots // free the slot; the queued request proceeds
	wg.Wait()
	if queuedErr != nil {
		t.Fatalf("queued eval failed after rejection: %v", queuedErr)
	}
	if queuedResp.Source != "cold" {
		t.Fatalf("queued eval Source = %q, want cold", queuedResp.Source)
	}

	snap := s.Metrics()
	if snap.Rejected != 1 {
		t.Fatalf("metrics Rejected = %d, want 1", snap.Rejected)
	}
	if snap.MemoHits+snap.ColdEvals != snap.EvalsServed {
		t.Fatalf("serving identity broken: memo %d + cold %d != served %d",
			snap.MemoHits, snap.ColdEvals, snap.EvalsServed)
	}
}

// TestEvalDeadline504 runs an unscaled evaluation under a 1ms
// deadline: the job-originated expiry must surface as a 504 — on the
// old pool classification it was swallowed and the daemon would have
// served a nil result as success.
func TestEvalDeadline504(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 1})
	req := EvalRequest{Workload: "GHOST(2)", Policy: "full", DeadlineMs: 1, Label: "deadline"}
	_, err := c.Eval(context.Background(), &req)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("deadline eval: error = %v, want *StatusError", err)
	}
	if se.Status != http.StatusGatewayTimeout {
		t.Fatalf("deadline eval status = %d, want 504", se.Status)
	}
}

// TestShutdownDrains pins graceful termination: Shutdown closes the
// listener but waits for the queued evaluation to finish, and the
// client still receives its full 200 response.
func TestShutdownDrains(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s.Start(ln)
	c := NewClient(ln.Addr().String())
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	s.slots <- struct{}{} // hold the worker so the eval stays queued
	req := EvalRequest{Workload: "CFRAC", Scale: 0.1, Policy: "full", Label: "drain"}
	var resp *EvalResponse
	var evalErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, evalErr = c.Eval(context.Background(), &req)
	}()
	waitFor(t, "request queued", func() bool { return s.waiting.Load() == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Give Shutdown a moment to close the listener, then release the
	// slot; the in-flight request must still run to completion.
	waitFor(t, "listener closed", func() bool {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		if err != nil {
			return true
		}
		//dtbvet:ignore errsink -- probe connection: the dial succeeding is the signal, the close result is noise
		conn.Close()
		return false
	})
	<-s.slots
	wg.Wait()
	if evalErr != nil {
		t.Fatalf("in-flight eval failed during drain: %v", evalErr)
	}
	if resp.Source != "cold" {
		t.Fatalf("in-flight eval Source = %q, want cold", resp.Source)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestEvalBadRequests spot-checks the 400 surface.
func TestEvalBadRequests(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 1})
	cases := []EvalRequest{
		{},                                     // no source
		{Workload: "CFRAC", TraceDigest: "ab"}, // both sources
		{Workload: "NOSUCH", Policy: "full"},
		{Workload: "CFRAC", Policy: "full", Baseline: "live"},
		{Workload: "CFRAC", Baseline: "bogus"},
		{Workload: "CFRAC", Policy: "notapolicy:xyz"},
		{TraceDigest: "zz", Policy: "full"},
		{Workload: "CFRAC", Policy: "full", Scale: -1},
		{Workload: "CFRAC", Policy: "full", PageFrames: -1},
		{Workload: "CFRAC", Policy: "full", DeadlineMs: -5},
	}
	for i, req := range cases {
		_, err := c.Eval(context.Background(), &req)
		var se *StatusError
		if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
			t.Errorf("case %d (%+v): error = %v, want 400 StatusError", i, req, err)
		}
	}
}

// TestMemoKeyDistinguishesKnobs: requests differing in any
// result-affecting knob must not collide in the memo table.
func TestMemoKeyDistinguishesKnobs(t *testing.T) {
	base := EvalRequest{Workload: "CFRAC", Policy: "full"}
	variants := []func(*EvalRequest){
		func(r *EvalRequest) { r.Workload = "GHOST(1)" },
		func(r *EvalRequest) { r.Scale = 0.5 },
		func(r *EvalRequest) { r.Policy = "dtbfm:50k" },
		func(r *EvalRequest) { r.Policy = ""; r.Baseline = "nogc" },
		func(r *EvalRequest) { r.Machine = &MachineSpec{MIPS: 25, TraceBytesPer: 8e6} },
		func(r *EvalRequest) { r.TriggerBytes = 2 << 20 },
		func(r *EvalRequest) { r.PolicySeed = 7 },
		func(r *EvalRequest) { r.Opportunistic = true },
		func(r *EvalRequest) { r.PageFrames = 64 },
		func(r *EvalRequest) { r.Label = "other" },
		func(r *EvalRequest) { r.Telemetry = true },
	}
	canon := base
	if err := canon.normalize(); err != nil {
		t.Fatalf("normalize base: %v", err)
	}
	baseKey := canon.memoKey()
	seen := map[string]int{baseKey: -1}
	for i, mutate := range variants {
		r := base
		mutate(&r)
		if err := r.normalize(); err != nil {
			t.Fatalf("normalize variant %d: %v", i, err)
		}
		key := r.memoKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("variant %d collides with %d: key %q", i, prev, key)
		}
		seen[key] = i
	}
	// And the serving knob must NOT split the key: a deadline-bounded
	// request may reuse the unbounded result.
	r := base
	r.DeadlineMs = 5000
	if err := r.normalize(); err != nil {
		t.Fatalf("normalize deadline variant: %v", err)
	}
	if r.memoKey() != baseKey {
		t.Errorf("DeadlineMs changed the memo key; it is a serving knob, not a result knob")
	}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
