package daemon

import (
	"sync"
	"time"

	"github.com/dtbgc/dtbgc/internal/stats"
)

// serviceSamples bounds the service-time reservoir the percentiles
// are computed over: the last serviceSamples completed evaluations.
const serviceSamples = 1024

// MetricsSnapshot is the GET /v1/metrics payload: a consistent
// point-in-time view of the daemon's serving counters. Counters are
// cumulative since process start; gauges are instantaneous. The
// schema is validated in CI by dtbtelemetrycheck -metrics, including
// the serving identity memo_hits + cold_evals == evals_served.
type MetricsSnapshot struct {
	// Serving counters.
	EvalsServed  uint64 `json:"evals_served"` // responses sent with a result
	MemoHits     uint64 `json:"memo_hits"`    // served straight from the memo table
	ColdEvals    uint64 `json:"cold_evals"`   // actually replayed
	TapeHits     uint64 `json:"tape_hits"`    // cold evals that reused a decoded tape
	Rejected     uint64 `json:"rejected"`     // 429 admission rejections
	Failed       uint64 `json:"failed"`       // evaluations that returned an error
	TraceUploads uint64 `json:"trace_uploads"`

	// Instantaneous load.
	InFlight int64 `json:"in_flight"` // evaluations holding a worker slot
	Queued   int64 `json:"queued"`    // admitted, waiting for a slot

	// Configuration echoes, so a scraper can normalize load.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`

	// Cache occupancy.
	TapeCacheTraces int   `json:"tape_cache_traces"`
	TapeCacheBytes  int64 `json:"tape_cache_bytes"`
	MemoEntries     int   `json:"memo_entries"`

	// Service-time distribution over the last up-to-1024 served
	// evaluations (memo hits included — the speedup is the point).
	ServiceP50Ms float64 `json:"service_p50_ms"`
	ServiceP99Ms float64 `json:"service_p99_ms"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}

// metrics is the mutable counter state behind MetricsSnapshot. One
// mutex covers every field: the counters are touched a handful of
// times per request, so contention is irrelevant next to a replay,
// and a single lock keeps the snapshot internally consistent (the
// identity checks in CI would catch torn reads).
type metrics struct {
	mu      sync.Mutex
	started time.Time

	evalsServed  uint64
	memoHits     uint64
	coldEvals    uint64
	tapeHits     uint64
	rejected     uint64
	failed       uint64
	traceUploads uint64

	inFlight int64
	queued   int64

	service [serviceSamples]float64 // ring of service times in ms
	n       int                     // samples written (monotonic)
}

func newMetrics(now time.Time) *metrics {
	return &metrics{started: now}
}

func (m *metrics) lockAdd(f func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f()
}

func (m *metrics) servedMemo(serviceMs float64) {
	m.lockAdd(func() { m.evalsServed++; m.memoHits++; m.sample(serviceMs) })
}

func (m *metrics) servedCold(tapeHit bool, serviceMs float64) {
	m.lockAdd(func() {
		m.evalsServed++
		m.coldEvals++
		if tapeHit {
			m.tapeHits++
		}
		m.sample(serviceMs)
	})
}

func (m *metrics) sample(ms float64) {
	m.service[m.n%serviceSamples] = ms
	m.n++
}

func (m *metrics) rejectedOne() { m.lockAdd(func() { m.rejected++ }) }
func (m *metrics) failedOne()   { m.lockAdd(func() { m.failed++ }) }
func (m *metrics) uploadedOne() { m.lockAdd(func() { m.traceUploads++ }) }

func (m *metrics) enqueue()  { m.lockAdd(func() { m.queued++ }) }
func (m *metrics) dequeue()  { m.lockAdd(func() { m.queued-- }) }
func (m *metrics) started1() { m.lockAdd(func() { m.inFlight++ }) }
func (m *metrics) done1()    { m.lockAdd(func() { m.inFlight-- }) }

// snapshot assembles the exported view; cache occupancy and the
// config echoes are the server's to fill in.
func (m *metrics) snapshot(now time.Time) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	filled := m.n
	if filled > serviceSamples {
		filled = serviceSamples
	}
	samples := make([]float64, filled)
	copy(samples, m.service[:filled])
	return MetricsSnapshot{
		EvalsServed:   m.evalsServed,
		MemoHits:      m.memoHits,
		ColdEvals:     m.coldEvals,
		TapeHits:      m.tapeHits,
		Rejected:      m.rejected,
		Failed:        m.failed,
		TraceUploads:  m.traceUploads,
		InFlight:      m.inFlight,
		Queued:        m.queued,
		ServiceP50Ms:  stats.Percentile(samples, 50),
		ServiceP99Ms:  stats.Percentile(samples, 99),
		UptimeSeconds: now.Sub(m.started).Seconds(),
	}
}
