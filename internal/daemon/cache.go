package daemon

import (
	"container/list"
	"sync"

	"github.com/dtbgc/dtbgc/internal/trace"
)

// The daemon's two caches, both keyed off the trace content digest
// (internal/trace.Digest):
//
//   - tapeCache holds decoded event tapes so a hot trace is decoded
//     once and replayed many times. Bounded by an approximate byte
//     budget, evicting least-recently-used whole tapes.
//   - memoCache maps a complete evaluation key — trace identity ×
//     policy spec × machine model × seed × every result-affecting
//     knob — to the marshaled response already served for it, so a
//     repeated evaluation is O(lookup) and byte-identical to the
//     first. Bounded by entry count.
//
// Both are plain mutex-guarded LRUs: eviction order is deterministic
// given the request order, and nothing here influences simulation
// results — a cache miss and a cache hit serve the same bytes, which
// the bit-identity tests prove.

// eventCost approximates the in-memory bytes of one decoded
// trace.Event (struct fields plus slice header overhead); label bytes
// are charged separately. The budget bounds growth, it does not
// meter the allocator exactly.
const eventCost = 64

// tapeCost is the charge for one decoded tape.
func tapeCost(events []trace.Event) int64 {
	cost := int64(len(events)) * eventCost
	for i := range events {
		cost += int64(len(events[i].Label))
	}
	return cost
}

// tapeCache is the bounded LRU of decoded tapes.
type tapeCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recently used; values are *tapeEntry
	byKey  map[trace.Digest]*list.Element
}

type tapeEntry struct {
	key    trace.Digest
	events []trace.Event
	cost   int64
}

func newTapeCache(budgetBytes int64) *tapeCache {
	return &tapeCache{
		budget: budgetBytes,
		order:  list.New(),
		byKey:  make(map[trace.Digest]*list.Element),
	}
}

// get returns the decoded tape and marks it most recently used.
func (c *tapeCache) get(key trace.Digest) ([]trace.Event, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*tapeEntry).events, true
}

// put stores a decoded tape, evicting LRU tapes to fit the budget. A
// tape larger than the whole budget is still stored alone — refusing
// it would make the one trace a client just uploaded unservable.
func (c *tapeCache) put(key trace.Digest, events []trace.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		return // same digest = same content; nothing to update
	}
	e := &tapeEntry{key: key, events: events, cost: tapeCost(events)}
	c.byKey[key] = c.order.PushFront(e)
	c.used += e.cost
	for c.used > c.budget && c.order.Len() > 1 {
		c.evictOldest()
	}
}

func (c *tapeCache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	e := el.Value.(*tapeEntry)
	c.order.Remove(el)
	delete(c.byKey, e.key)
	c.used -= e.cost
}

// stats reports current occupancy.
func (c *tapeCache) stats() (traces int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.used
}

// memoCache is the bounded LRU memo table. Values are opaque
// marshaled response payloads: re-serving the stored bytes verbatim
// is what makes a warm hit trivially byte-identical to the cold run
// that populated it.
type memoCache struct {
	mu      sync.Mutex
	entries int
	order   *list.List // values are *memoEntry
	byKey   map[string]*list.Element
}

type memoEntry struct {
	key     string
	payload []byte
}

func newMemoCache(entries int) *memoCache {
	return &memoCache{
		entries: entries,
		order:   list.New(),
		byKey:   make(map[string]*list.Element),
	}
}

func (c *memoCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*memoEntry).payload, true
}

func (c *memoCache) put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Deterministic evaluation: a re-computed payload for the same
		// key is the same bytes. Keep the original, refresh recency.
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&memoEntry{key: key, payload: payload})
	for c.order.Len() > c.entries {
		el := c.order.Back()
		e := el.Value.(*memoEntry)
		c.order.Remove(el)
		delete(c.byKey, e.key)
	}
}

func (c *memoCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
