package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is a thin typed client for the dtbd HTTP API. It speaks to a
// TCP address ("host:port" or "http://host:port") or, with a "unix:"
// prefix, to a unix-domain socket path.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for addr. Accepted forms:
//
//	"127.0.0.1:7341"          TCP
//	"http://127.0.0.1:7341"   TCP
//	"unix:/run/dtbd.sock"     unix-domain socket
func NewClient(addr string) *Client {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		tr := &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", path)
			},
		}
		// The URL host is vestigial over a unix socket; "dtbd" keeps
		// Host headers and error messages readable.
		return &Client{base: "http://dtbd", hc: &http.Client{Transport: tr}}
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
}

// OverloadedError is the typed form of a 429 admission rejection.
type OverloadedError struct {
	RetryAfter time.Duration
	Message    string
}

func (e *OverloadedError) Error() string { return e.Message }

// UnknownTraceError is the typed form of a 404 for an unuploaded
// trace digest; callers upload and retry (dtbd eval does).
type UnknownTraceError struct {
	Digest  string
	Message string
}

func (e *UnknownTraceError) Error() string { return e.Message }

// StatusError is any other non-2xx response.
type StatusError struct {
	Status  int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("daemon: HTTP %d: %s", e.Status, e.Message)
}

// Eval runs one evaluation on the daemon.
func (c *Client) Eval(ctx context.Context, req *EvalRequest) (*EvalResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encoding request: %w", err)
	}
	var resp EvalResponse
	if err := c.do(ctx, http.MethodPost, "/v1/eval", "application/json", bytes.NewReader(body), &resp, req.TraceDigest); err != nil {
		return nil, err
	}
	return &resp, nil
}

// UploadTrace streams a binary trace to the daemon and returns the
// daemon's digest and event count for it.
func (c *Client) UploadTrace(ctx context.Context, r io.Reader) (*TraceInfo, error) {
	var info TraceInfo
	if err := c.do(ctx, http.MethodPost, "/v1/traces", "application/octet-stream", r, &info, ""); err != nil {
		return nil, err
	}
	return &info, nil
}

// Metrics fetches the serving snapshot.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	var snap MetricsSnapshot
	if err := c.do(ctx, http.MethodGet, "/v1/metrics", "", nil, &snap, ""); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Health probes /v1/healthz.
func (c *Client) Health(ctx context.Context) error {
	var ok struct {
		OK bool `json:"ok"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", "", nil, &ok, ""); err != nil {
		return err
	}
	if !ok.OK {
		return fmt.Errorf("daemon: health check returned ok=false")
	}
	return nil
}

// do issues one request and decodes the JSON response into out,
// translating error statuses into the typed errors above. digest
// contextualizes 404s from /v1/eval.
func (c *Client) do(ctx context.Context, method, path, contentType string, body io.Reader, out any, digest string) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	//dtbvet:ignore errsink -- response body close: the decode below already surfaces any transport truncation
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.statusError(resp, digest)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return nil
}

func (c *Client) statusError(resp *http.Response, digest string) error {
	msg := "(unreadable error body)"
	var eb errorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil && eb.Error != "" {
		msg = eb.Error
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		retry := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		return &OverloadedError{RetryAfter: retry, Message: msg}
	case http.StatusNotFound:
		if digest != "" {
			return &UnknownTraceError{Digest: digest, Message: msg}
		}
	}
	return &StatusError{Status: resp.StatusCode, Message: msg}
}
