// Package daemon is the simulation-as-a-service layer: a long-running
// HTTP/JSON server (dtbd) that accepts policy-evaluation requests —
// a workload or an uploaded trace × a policy spec × a machine model —
// schedules them on the engine's bounded cancellable pool, and
// returns results bit-identical to the CLI path over the same inputs.
//
// The serving economics rest on two content-addressed caches (see
// cache.go): uploaded traces are stream-hashed at decode time into a
// trace.Digest that keys a decoded-tape LRU, and every complete
// evaluation key memoizes its marshaled response, so one warm process
// answers a repeated request in a table lookup instead of a cold CLI
// start that re-decodes and re-simulates everything. Admission
// control (a bounded worker pool plus a bounded wait queue, 429 +
// Retry-After on overflow) keeps thousands of concurrent clients
// degrading gracefully instead of piling unbounded replays onto the
// box; SIGTERM drains in-flight evaluations before exit.
//
// Everything here observes the repo's determinism discipline except
// wall-clock metrics: serving latencies are real time by nature, and
// internal/daemon + cmd/dtbd carry dtbvet's serving-package exemption
// for exactly that — simulation results never depend on the clock.
package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	dtbgc "github.com/dtbgc/dtbgc"
	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// MachineSpec is the wire form of the simulated machine model.
type MachineSpec struct {
	MIPS          float64 `json:"mips"`
	TraceBytesPer float64 `json:"trace_bytes_per_sec"`
}

// EvalRequest asks for one collector evaluation. Exactly one of
// Workload/TraceDigest selects the event source, and at most one of
// Policy/Baseline selects the collector (an empty Baseline means
// Policy, mirroring dtbsim's flags). Zero-valued knobs take the same
// defaults the CLIs use, and the normalized form — not the raw
// request — is the memo key, so "-trigger 1048576" and the default
// hit the same entry.
type EvalRequest struct {
	// Workload names a paper workload ("CFRAC", "GHOST(1)", ...);
	// Scale shrinks it (0 = 1.0). Scale conflicts with TraceDigest for
	// the same reason dtbsim rejects -scale with -trace.
	Workload string  `json:"workload,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	// TraceDigest is the hex content digest of a previously uploaded
	// trace (POST /v1/traces). An unknown digest fails with 404 and
	// ErrUnknownTrace so clients can upload and retry.
	TraceDigest string `json:"trace,omitempty"`

	// Policy is a spec for dtbgc.ParsePolicy ("full", "dtbfm:50k",
	// ...); Baseline is "nogc" or "live".
	Policy   string `json:"policy,omitempty"`
	Baseline string `json:"baseline,omitempty"`

	Machine       *MachineSpec `json:"machine,omitempty"`
	TriggerBytes  uint64       `json:"trigger_bytes,omitempty"`
	PolicySeed    uint64       `json:"policy_seed,omitempty"`
	Opportunistic bool         `json:"opportunistic,omitempty"`
	PageFrames    int          `json:"page_frames,omitempty"`
	PageBytes     uint64       `json:"page_bytes,omitempty"`

	// Label tags the run exactly as SimOptions.Label does: it feeds
	// adaptive-policy seed derivation and every telemetry line, so it
	// is part of the memo key. Leave "" to match dtbsim's no-telemetry
	// invocation.
	Label string `json:"label,omitempty"`
	// Telemetry requests the run's JSON-lines telemetry stream in the
	// response, captured by a per-request sink (never shared between
	// requests — see the sharing contract on sim.TelemetryWriter).
	Telemetry bool `json:"telemetry,omitempty"`

	// DeadlineMs bounds the evaluation itself; past it the replay
	// aborts at its next batch boundary and the request fails with
	// 504. It is a serving knob, not a result-affecting one, so it is
	// NOT part of the memo key.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// evalPayload is the memoized portion of an eval response: everything
// deterministic for the key. The memo stores these marshaled bytes
// verbatim, so a warm hit re-serves byte-identical JSON.
type evalPayload struct {
	Result    json.RawMessage `json:"result"`
	Telemetry string          `json:"telemetry,omitempty"`
}

// EvalResponse is the POST /v1/eval payload.
type EvalResponse struct {
	// Source says how the evaluation was served: "memo" (table
	// lookup), "tape" (replayed over a cached decoded tape) or "cold"
	// (replayed from scratch).
	Source string `json:"source"`
	// ServiceMs is the server-side wall time for this request.
	ServiceMs float64 `json:"service_ms"`
	// Result is the marshaled dtbgc.Result, bit-identical across
	// memo/tape/cold for the same key.
	Result json.RawMessage `json:"result"`
	// Telemetry carries the run's JSON-lines stream when requested.
	Telemetry string `json:"telemetry,omitempty"`
}

// ErrUnknownTrace reports an eval against a digest the daemon does
// not hold (never uploaded, or evicted): upload the trace and retry.
type ErrUnknownTrace struct{ Digest string }

func (e *ErrUnknownTrace) Error() string {
	return fmt.Sprintf("daemon: unknown trace %s: upload it (POST /v1/traces) and retry", e.Digest)
}

// errBadRequest marks a request the server refuses on sight (HTTP
// 400), as opposed to one that failed while evaluating.
type errBadRequest struct{ err error }

func (e *errBadRequest) Error() string { return e.err.Error() }
func (e *errBadRequest) Unwrap() error { return e.err }

func badRequestf(format string, args ...any) error {
	return &errBadRequest{err: fmt.Errorf(format, args...)}
}

// normalize validates the request and applies the CLI-equivalent
// defaults in place, so the memo key is canonical.
func (r *EvalRequest) normalize() error {
	if (r.Workload == "") == (r.TraceDigest == "") {
		return badRequestf("exactly one of workload or trace must be set")
	}
	if r.Policy != "" && r.Baseline != "" {
		return badRequestf("policy %q conflicts with baseline %q: a run is driven by one or the other", r.Policy, r.Baseline)
	}
	switch r.Baseline {
	case "", "nogc", "live":
	default:
		return badRequestf("unknown baseline %q (nogc or live)", r.Baseline)
	}
	if r.Baseline == "" {
		if _, err := dtbgc.ParsePolicy(r.Policy); err != nil {
			return &errBadRequest{err: err}
		}
	}
	if r.TraceDigest != "" {
		if r.Scale != 0 { //dtbvet:ignore floatexact -- exact zero is the unset-option sentinel; no arithmetic feeds it
			return badRequestf("scale applies to generated workloads and cannot rescale a recorded trace")
		}
		d, err := trace.ParseDigest(r.TraceDigest)
		if err != nil {
			return &errBadRequest{err: err}
		}
		r.TraceDigest = d.String() // canonical lowercase hex
	} else {
		if _, err := dtbgc.LookupWorkload(r.Workload); err != nil {
			return &errBadRequest{err: err}
		}
		if r.Scale == 0 { //dtbvet:ignore floatexact -- exact zero is the unset-option sentinel; no arithmetic feeds it
			r.Scale = 1
		}
		if r.Scale < 0 {
			return badRequestf("scale %v must be positive", r.Scale)
		}
	}
	if r.Machine == nil {
		m := dtbgc.PaperMachine()
		r.Machine = &MachineSpec{MIPS: m.MIPS, TraceBytesPer: m.TraceBytesPer}
	}
	if err := (dtbgc.Machine{MIPS: r.Machine.MIPS, TraceBytesPer: r.Machine.TraceBytesPer}).Validate(); err != nil {
		return &errBadRequest{err: err}
	}
	if r.TriggerBytes == 0 {
		r.TriggerBytes = 1 << 20 // the simulator's own default
	}
	if r.PageFrames < 0 {
		return badRequestf("page_frames %d cannot be negative", r.PageFrames)
	}
	if r.PageFrames > 0 && r.PageBytes == 0 {
		r.PageBytes = 4096
	}
	if r.DeadlineMs < 0 {
		return badRequestf("deadline_ms %d cannot be negative", r.DeadlineMs)
	}
	return nil
}

// memoKey is the canonical serialization of everything that can
// change the response bytes. Field order is fixed by the struct, and
// floats render shortest-round-trip, so equal requests always collide
// and unequal ones never do.
func (r *EvalRequest) memoKey() string {
	var b bytes.Buffer
	b.WriteString("w=")
	b.WriteString(r.Workload)
	b.WriteString(";s=")
	b.WriteString(strconv.FormatFloat(r.Scale, 'g', -1, 64))
	b.WriteString(";t=")
	b.WriteString(r.TraceDigest)
	b.WriteString(";p=")
	b.WriteString(r.Policy)
	b.WriteString(";b=")
	b.WriteString(r.Baseline)
	b.WriteString(";m=")
	b.WriteString(strconv.FormatFloat(r.Machine.MIPS, 'g', -1, 64))
	b.WriteString(",")
	b.WriteString(strconv.FormatFloat(r.Machine.TraceBytesPer, 'g', -1, 64))
	b.WriteString(";tr=")
	b.WriteString(strconv.FormatUint(r.TriggerBytes, 10))
	b.WriteString(";seed=")
	b.WriteString(strconv.FormatUint(r.PolicySeed, 10))
	b.WriteString(";opp=")
	b.WriteString(strconv.FormatBool(r.Opportunistic))
	b.WriteString(";pf=")
	b.WriteString(strconv.Itoa(r.PageFrames))
	b.WriteString(";pb=")
	b.WriteString(strconv.FormatUint(r.PageBytes, 10))
	b.WriteString(";l=")
	b.WriteString(strconv.Quote(r.Label))
	b.WriteString(";tel=")
	b.WriteString(strconv.FormatBool(r.Telemetry))
	return b.String()
}

// options maps the normalized request onto the same SimOptions dtbsim
// builds — the single place the daemon's and the CLI's configuration
// can agree or drift, pinned by the bit-identity tests.
func (r *EvalRequest) options(probe dtbgc.Probe) (dtbgc.SimOptions, error) {
	opts := dtbgc.SimOptions{
		PolicySeed:    r.PolicySeed,
		Machine:       dtbgc.Machine{MIPS: r.Machine.MIPS, TraceBytesPer: r.Machine.TraceBytesPer},
		TriggerBytes:  r.TriggerBytes,
		Opportunistic: r.Opportunistic,
		PageFrames:    r.PageFrames,
		PageBytes:     r.PageBytes,
		Probe:         probe,
		Label:         r.Label,
	}
	switch r.Baseline {
	case "nogc":
		opts.NoGC = true
	case "live":
		opts.LiveOracle = true
	default:
		p, err := dtbgc.ParsePolicy(r.Policy)
		if err != nil {
			return dtbgc.SimOptions{}, &errBadRequest{err: err}
		}
		opts.Policy = p
	}
	return opts, nil
}

// evaluate runs one cold evaluation on the bounded pool and returns
// the marshaled memo payload. The request must be normalized. The
// caller holds a worker slot.
//
// The per-request deadline is created INSIDE the pool job: when it
// expires, the job returns its own context.DeadlineExceeded while the
// pool's context is still live — exactly the job-originated
// cancellation the fixed engine.RunJobs classification surfaces. (On
// the old pool code that expiry was swallowed and the daemon would
// have served a nil result as success.)
func (s *Server) evaluate(ctx context.Context, req *EvalRequest) (payload []byte, tapeHit bool, err error) {
	var telBuf bytes.Buffer
	var tw *dtbgc.TelemetryWriter
	var probe dtbgc.Probe
	if req.Telemetry {
		// Per-request sink over a per-request buffer: the enforced
		// pattern. A shared sink would interleave concurrent requests'
		// streams and let one request's sticky write error silence
		// another's telemetry.
		tw = dtbgc.NewTelemetryWriter(&telBuf)
		probe = tw
	}
	opts, err := req.options(probe)
	if err != nil {
		return nil, false, err
	}

	var results []*dtbgc.Result
	job := func(jctx context.Context) error {
		if req.DeadlineMs > 0 {
			var cancel context.CancelFunc
			jctx, cancel = context.WithTimeout(jctx, time.Duration(req.DeadlineMs)*time.Millisecond)
			defer cancel()
		}
		var rerr error
		if req.TraceDigest != "" {
			d, derr := trace.ParseDigest(req.TraceDigest)
			if derr != nil {
				return derr
			}
			events, ok := s.tapes.get(d)
			if !ok {
				return &ErrUnknownTrace{Digest: req.TraceDigest}
			}
			tapeHit = true
			results, rerr = dtbgc.ReplayAllBatches(jctx, dtbgc.SliceBatchSource(events), []dtbgc.SimOptions{opts})
			return rerr
		}
		w, lerr := dtbgc.LookupWorkload(req.Workload)
		if lerr != nil {
			return lerr
		}
		results, rerr = dtbgc.ReplayAll(jctx, dtbgc.EventSource(w.Scale(req.Scale).GenerateTo), []dtbgc.SimOptions{opts})
		return rerr
	}
	if err := engine.RunJobs(ctx, 1, []engine.Job{job}); err != nil {
		return nil, tapeHit, err
	}
	if tw != nil {
		if werr := tw.Err(); werr != nil {
			return nil, tapeHit, fmt.Errorf("capturing telemetry: %w", werr)
		}
	}
	raw, err := json.Marshal(results[0])
	if err != nil {
		return nil, tapeHit, err
	}
	payload, err = json.Marshal(evalPayload{Result: raw, Telemetry: telBuf.String()})
	return payload, tapeHit, err
}

// isDeadline reports a job-originated evaluation timeout (as opposed
// to the client going away, which cancels the request context).
func isDeadline(err error) bool { return errors.Is(err, context.DeadlineExceeded) }
