package daemon

import (
	"fmt"
	"testing"

	"github.com/dtbgc/dtbgc/internal/trace"
)

func testTape(label string, n int) []trace.Event {
	events := make([]trace.Event, n)
	for i := range events {
		events[i] = trace.Mark(label, uint64(i))
	}
	return events
}

func testDigest(t *testing.T, label string, n int) trace.Digest {
	t.Helper()
	d, err := trace.DigestEvents(testTape(label, n))
	if err != nil {
		t.Fatalf("DigestEvents: %v", err)
	}
	return d
}

func TestTapeCacheEvictsLRU(t *testing.T) {
	tape := testTape("x", 10) // cost 640 + 10 label bytes = 650
	cost := tapeCost(tape)
	c := newTapeCache(2*cost + cost/2) // room for two tapes, not three

	keys := make([]trace.Digest, 3)
	for i := range keys {
		keys[i] = testDigest(t, fmt.Sprintf("k%d", i), 10+i)
	}
	c.put(keys[0], tape)
	c.put(keys[1], tape)
	if _, ok := c.get(keys[0]); !ok {
		t.Fatalf("key 0 evicted while under budget")
	}
	// 0 is now most recently used; inserting 2 must evict 1.
	c.put(keys[2], tape)
	if _, ok := c.get(keys[1]); ok {
		t.Fatalf("LRU key 1 survived eviction")
	}
	for _, k := range []trace.Digest{keys[0], keys[2]} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("key %s evicted out of LRU order", k)
		}
	}
	traces, bytes := c.stats()
	if traces != 2 {
		t.Fatalf("stats traces = %d, want 2", traces)
	}
	if bytes <= 0 || bytes > 2*cost+cost/2 {
		t.Fatalf("stats bytes = %d, outside (0, budget]", bytes)
	}
}

func TestTapeCacheKeepsOversizedTape(t *testing.T) {
	c := newTapeCache(1) // budget smaller than any tape
	key := testDigest(t, "big", 100)
	c.put(key, testTape("big", 100))
	if _, ok := c.get(key); !ok {
		t.Fatalf("oversized tape rejected; the just-uploaded trace must stay servable")
	}
	traces, _ := c.stats()
	if traces != 1 {
		t.Fatalf("stats traces = %d, want 1", traces)
	}
}

func TestTapeCachePutSameDigestKeepsEntry(t *testing.T) {
	c := newTapeCache(1 << 20)
	key := testDigest(t, "dup", 5)
	first := testTape("dup", 5)
	c.put(key, first)
	c.put(key, testTape("dup", 5)) // same digest, different slice
	got, ok := c.get(key)
	if !ok {
		t.Fatalf("entry missing after duplicate put")
	}
	if &got[0] != &first[0] {
		t.Fatalf("duplicate put replaced the stored tape; same digest means same content")
	}
	if _, bytes := c.stats(); bytes != tapeCost(first) {
		t.Fatalf("duplicate put double-charged the budget: %d", bytes)
	}
}

func TestMemoCacheEvictionAndDuplicates(t *testing.T) {
	c := newMemoCache(2)
	c.put("a", []byte("A1"))
	c.put("b", []byte("B"))
	// Duplicate put must keep the original bytes (determinism: same
	// key, same payload — the first answer is THE answer).
	c.put("a", []byte("A2"))
	if got, _ := c.get("a"); string(got) != "A1" {
		t.Fatalf("memo duplicate put replaced payload: %q", got)
	}
	// "a" was just refreshed; inserting "c" evicts "b".
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Fatalf("LRU memo entry survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatalf("recently used memo entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}
