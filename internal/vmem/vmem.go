// Package vmem models a virtual-memory resident set with LRU
// replacement, the page-fault axis on which generational collection
// was originally sold ("Generational algorithms have proven successful
// at reducing the pause times and page fault rate of garbage
// collection" — the paper's §2, citing Zorn and Ungar).
//
// The simulator drives it with byte-range touches: the mutator touches
// objects as it allocates and frees them, the collector touches every
// object it traces and writes survivors to fresh addresses (copying
// semantics). Faults count the touched pages absent from the resident
// set.
package vmem

// Model is an LRU page cache over a flat address space.
// The zero value is not usable; call New.
type Model struct {
	pageBytes uint64
	frames    int

	// LRU bookkeeping: a doubly linked list of resident pages with a
	// map index. list uses sentinel-free head/tail indices into nodes.
	nodes map[uint64]*node // page number -> node
	head  *node            // most recently used
	tail  *node            // least recently used

	faults   uint64
	accesses uint64
}

type node struct {
	page       uint64
	prev, next *node
}

// New returns a model with the given page size and resident-set
// capacity in frames. It panics on non-positive arguments.
func New(pageBytes uint64, frames int) *Model {
	if pageBytes == 0 || frames <= 0 {
		panic("vmem: New requires positive page size and frame count")
	}
	return &Model{
		pageBytes: pageBytes,
		frames:    frames,
		nodes:     make(map[uint64]*node, frames+1),
	}
}

// Touch accesses the byte range [addr, addr+size), faulting in any
// non-resident pages. A zero-size touch accesses nothing.
func (m *Model) Touch(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr / m.pageBytes
	last := (addr + size - 1) / m.pageBytes
	for p := first; p <= last; p++ {
		m.touchPage(p)
	}
}

func (m *Model) touchPage(p uint64) {
	m.accesses++
	if n, ok := m.nodes[p]; ok {
		m.moveToFront(n)
		return
	}
	m.faults++
	n := &node{page: p}
	m.nodes[p] = n
	m.pushFront(n)
	if len(m.nodes) > m.frames {
		evict := m.tail
		m.unlink(evict)
		delete(m.nodes, evict.page)
	}
}

func (m *Model) pushFront(n *node) {
	n.prev = nil
	n.next = m.head
	if m.head != nil {
		m.head.prev = n
	}
	m.head = n
	if m.tail == nil {
		m.tail = n
	}
}

func (m *Model) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		m.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		m.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (m *Model) moveToFront(n *node) {
	if m.head == n {
		return
	}
	m.unlink(n)
	m.pushFront(n)
}

// Faults returns the number of page faults so far.
func (m *Model) Faults() uint64 { return m.faults }

// Accesses returns the number of page accesses so far.
func (m *Model) Accesses() uint64 { return m.accesses }

// Resident returns the current resident-set size in pages.
func (m *Model) Resident() int { return len(m.nodes) }

// FaultRate returns faults per access (0 when nothing was accessed).
func (m *Model) FaultRate() float64 {
	if m.accesses == 0 {
		return 0
	}
	return float64(m.faults) / float64(m.accesses)
}
