package vmem

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/xrand"
)

func TestColdFaults(t *testing.T) {
	m := New(4096, 8)
	m.Touch(0, 4096)
	if m.Faults() != 1 || m.Accesses() != 1 {
		t.Fatalf("faults=%d accesses=%d", m.Faults(), m.Accesses())
	}
	// Re-touch: hit, no new fault.
	m.Touch(100, 8)
	if m.Faults() != 1 || m.Accesses() != 2 {
		t.Fatalf("re-touch faulted: %d", m.Faults())
	}
}

func TestRangeSpansPages(t *testing.T) {
	m := New(4096, 8)
	m.Touch(4090, 10) // crosses a page boundary
	if m.Faults() != 2 {
		t.Fatalf("boundary-crossing touch faulted %d pages, want 2", m.Faults())
	}
	m.Touch(0, 3*4096) // pages 0,1,2; 0 and 1 already resident
	if m.Faults() != 3 {
		t.Fatalf("faults=%d, want 3", m.Faults())
	}
}

func TestZeroSizeTouch(t *testing.T) {
	m := New(4096, 4)
	m.Touch(12345, 0)
	if m.Accesses() != 0 {
		t.Fatal("zero-size touch accessed pages")
	}
}

func TestLRUEviction(t *testing.T) {
	m := New(100, 2)
	m.Touch(0, 1)   // page 0
	m.Touch(100, 1) // page 1
	m.Touch(0, 1)   // hit page 0, now MRU
	m.Touch(200, 1) // page 2 evicts page 1 (LRU)
	if m.Faults() != 3 {
		t.Fatalf("faults=%d", m.Faults())
	}
	m.Touch(0, 1) // page 0 still resident
	if m.Faults() != 3 {
		t.Fatal("page 0 was wrongly evicted")
	}
	m.Touch(100, 1) // page 1 was evicted: fault
	if m.Faults() != 4 {
		t.Fatal("page 1 should have been evicted")
	}
	if m.Resident() != 2 {
		t.Fatalf("resident=%d", m.Resident())
	}
}

func TestSequentialScanOverCapacityAlwaysFaults(t *testing.T) {
	m := New(4096, 4)
	for pass := 0; pass < 3; pass++ {
		for p := uint64(0); p < 8; p++ {
			m.Touch(p*4096, 1)
		}
	}
	// Classic LRU worst case: every access of a cyclic over-capacity
	// scan misses.
	if m.Faults() != m.Accesses() {
		t.Fatalf("faults=%d accesses=%d; cyclic scan should always miss", m.Faults(), m.Accesses())
	}
}

func TestWorkingSetWithinCapacityStopsFaulting(t *testing.T) {
	m := New(4096, 16)
	r := xrand.New(3)
	for i := 0; i < 1000; i++ {
		m.Touch(uint64(r.Intn(8))*4096, 1)
	}
	if m.Faults() != 8 {
		t.Fatalf("faults=%d, want 8 cold faults only", m.Faults())
	}
	if m.FaultRate() >= 0.01 {
		t.Fatalf("fault rate %v too high", m.FaultRate())
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 4) },
		func() { New(4096, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad New accepted")
				}
			}()
			f()
		}()
	}
}

func TestFaultRateEmpty(t *testing.T) {
	if New(4096, 4).FaultRate() != 0 {
		t.Fatal("empty model fault rate nonzero")
	}
}
