package mheap

import (
	"testing"
	"testing/quick"

	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

func TestAllocBasics(t *testing.T) {
	h := New()
	r := h.Alloc(2, 24)
	if r == Nil {
		t.Fatal("Alloc returned Nil")
	}
	if h.Size(r) != 2*8+24 {
		t.Errorf("Size = %d, want 40", h.Size(r))
	}
	if h.NumPtrs(r) != 2 {
		t.Errorf("NumPtrs = %d", h.NumPtrs(r))
	}
	if h.TotalSize(r) != 40+16 {
		t.Errorf("TotalSize = %d", h.TotalSize(r))
	}
	if !h.Contains(r) {
		t.Error("Contains false for live object")
	}
	if h.NumObjects() != 1 {
		t.Errorf("NumObjects = %d", h.NumObjects())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocZeroSized(t *testing.T) {
	h := New()
	r := h.Alloc(0, 0)
	if h.Size(r) != 0 || h.NumPtrs(r) != 0 {
		t.Fatal("zero-payload object misreported")
	}
	if len(h.Data(r)) != 0 {
		t.Fatal("zero-payload object has data")
	}
}

func TestAllocPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative alloc did not panic")
		}
	}()
	New().Alloc(-1, 0)
}

func TestPointerSlotsInitializedNil(t *testing.T) {
	h := New()
	r := h.Alloc(4, 0)
	for i := 0; i < 4; i++ {
		if h.Ptr(r, i) != Nil {
			t.Fatalf("slot %d not Nil", i)
		}
	}
}

func TestSetPtrAndPtr(t *testing.T) {
	h := New()
	a := h.Alloc(1, 0)
	b := h.Alloc(0, 8)
	h.SetPtr(a, 0, b)
	if h.Ptr(a, 0) != b {
		t.Fatalf("Ptr = %d, want %d", h.Ptr(a, 0), b)
	}
	h.SetPtr(a, 0, Nil)
	if h.Ptr(a, 0) != Nil {
		t.Fatal("null store not visible")
	}
}

func TestSetPtrRejectsDangling(t *testing.T) {
	h := New()
	a := h.Alloc(1, 0)
	b := h.Alloc(0, 0)
	h.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("dangling store did not panic")
		}
	}()
	h.SetPtr(a, 0, b)
}

func TestPtrSlotBounds(t *testing.T) {
	h := New()
	a := h.Alloc(1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slot did not panic")
		}
	}()
	h.Ptr(a, 1)
}

func TestDataReadWrite(t *testing.T) {
	h := New()
	r := h.Alloc(1, 10)
	d := h.Data(r)
	if len(d) != 10 {
		t.Fatalf("data len %d", len(d))
	}
	copy(d, "helloworld")
	if string(h.Data(r)) != "helloworld" {
		t.Fatal("data write not visible")
	}
	// Data writes must not clobber the pointer slot.
	if h.Ptr(r, 0) != Nil {
		t.Fatal("data overlapped pointer slot")
	}
}

func TestDataDoesNotOverlapBetweenObjects(t *testing.T) {
	h := New()
	a := h.Alloc(0, 16)
	b := h.Alloc(0, 16)
	for i := range h.Data(a) {
		h.Data(a)[i] = 0xAA
	}
	for _, x := range h.Data(b) {
		if x != 0 {
			t.Fatal("neighbouring object corrupted")
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	h := New()
	a := h.Alloc(0, 100)
	before := h.BytesInUse()
	h.Free(a)
	if h.BytesInUse() != before-116 {
		t.Errorf("BytesInUse after free = %d", h.BytesInUse())
	}
	if h.Contains(a) {
		t.Error("freed object still contained")
	}
	space := h.SpaceBytes()
	// Same-class allocation reuses the freed block: no growth.
	b := h.Alloc(0, 100)
	if h.SpaceBytes() != space {
		t.Errorf("free block not reused: space grew %d -> %d", space, h.SpaceBytes())
	}
	// Reused block must be zeroed.
	for _, x := range h.Data(b) {
		if x != 0 {
			t.Fatal("reused block not zeroed")
		}
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeNilIsNoOp(t *testing.T) {
	h := New()
	h.Free(Nil) // must not panic
}

func TestDoubleFreePanics(t *testing.T) {
	h := New()
	a := h.Alloc(0, 8)
	h.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	h.Free(a)
}

func TestBirthTimesMonotone(t *testing.T) {
	h := New()
	var last uint64
	for i := 0; i < 100; i++ {
		r := h.Alloc(0, 8)
		b := uint64(h.Birth(r))
		if b <= last {
			t.Fatalf("birth %d not after %d", b, last)
		}
		last = b
	}
}

func TestRefsSortedByBirth(t *testing.T) {
	h := New()
	for i := 0; i < 50; i++ {
		r := h.Alloc(0, 8)
		if i%3 == 0 {
			h.Free(r)
		}
	}
	refs := h.Refs()
	for i := 1; i < len(refs); i++ {
		if h.Birth(refs[i]) < h.Birth(refs[i-1]) {
			t.Fatal("Refs not birth-ordered")
		}
	}
}

func TestLiveBytesBornAfter(t *testing.T) {
	h := New()
	a := h.Alloc(0, 16)
	cut := h.Clock()
	b := h.Alloc(0, 16)
	c := h.Alloc(0, 16)
	want := uint64(h.TotalSize(b) + h.TotalSize(c))
	if got := h.LiveBytesBornAfter(cut); got != want {
		t.Fatalf("LiveBytesBornAfter = %d, want %d", got, want)
	}
	if got := h.LiveBytesBornAfter(0); got != want+uint64(h.TotalSize(a)) {
		t.Fatalf("LiveBytesBornAfter(0) = %d", got)
	}
	if got := h.LiveBytesBornAfter(h.Clock()); got != 0 {
		t.Fatalf("LiveBytesBornAfter(now) = %d", got)
	}
}

func TestReclaimBulk(t *testing.T) {
	h := New()
	var refs []Ref
	for i := 0; i < 10; i++ {
		refs = append(refs, h.Alloc(0, 48))
	}
	n := h.Reclaim(refs[2:5])
	if n != 3*64 {
		t.Fatalf("Reclaim returned %d bytes, want %d", n, 3*64)
	}
	if h.NumObjects() != 7 {
		t.Fatalf("NumObjects = %d", h.NumObjects())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderEmitsValidTrace(t *testing.T) {
	h := New()
	var events []trace.Event
	h.SetRecorder(func(e trace.Event) { events = append(events, e) })
	a := h.Alloc(1, 8)
	h.Tick(100)
	b := h.Alloc(0, 8)
	h.SetPtr(a, 0, b)
	h.Tick(50)
	h.Free(a)
	if err := trace.Validate(events); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("%d events", len(events))
	}
	if events[1].Instr != 100 || events[3].Instr != 150 {
		t.Fatalf("instruction stamps wrong: %v", events)
	}
	if events[2].Kind != trace.KindPtrWrite || events[2].Target != b {
		t.Fatalf("ptr write event wrong: %v", events[2])
	}
}

func TestWriteBarrierSeesOldAndNew(t *testing.T) {
	h := New()
	type store struct {
		src      Ref
		field    int
		old, new Ref
	}
	var stores []store
	h.SetWriteBarrier(func(src Ref, field int, old, new Ref) {
		stores = append(stores, store{src, field, old, new})
	})
	a := h.Alloc(1, 0)
	b := h.Alloc(0, 0)
	c := h.Alloc(0, 0)
	h.SetPtr(a, 0, b)
	h.SetPtr(a, 0, c)
	if len(stores) != 2 {
		t.Fatalf("%d barrier hits", len(stores))
	}
	if stores[0] != (store{a, 0, Nil, b}) {
		t.Fatalf("first store %+v", stores[0])
	}
	if stores[1] != (store{a, 0, b, c}) {
		t.Fatalf("second store %+v", stores[1])
	}
}

func TestAccessToFreedPanics(t *testing.T) {
	h := New()
	a := h.Alloc(0, 8)
	h.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("access to freed object did not panic")
		}
	}()
	h.Size(a)
}

func TestSizeClassRounding(t *testing.T) {
	cases := []struct{ in, want uint32 }{
		{1, 16}, {16, 16}, {17, 32}, {255, 256}, {256, 256},
		{257, 512}, {513, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := sizeClass(c.in); got != c.want {
			t.Errorf("sizeClass(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIntegrityUnderRandomWorkload(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		h := New()
		var live []Ref
		for i := 0; i < 500; i++ {
			switch {
			case len(live) > 0 && r.Bool(0.3):
				k := r.Intn(len(live))
				victim := live[k]
				// A correct program nils its references before
				// freeing; otherwise the integrity checker would
				// (rightly) report dangling pointers.
				for _, src := range live {
					for s := 0; s < h.NumPtrs(src); s++ {
						if h.Ptr(src, s) == victim {
							h.SetPtr(src, s, Nil)
						}
					}
				}
				h.Free(victim)
				live = append(live[:k], live[k+1:]...)
			case len(live) > 1 && r.Bool(0.3):
				src := live[r.Intn(len(live))]
				if n := h.NumPtrs(src); n > 0 {
					h.SetPtr(src, r.Intn(n), live[r.Intn(len(live))])
				}
			default:
				live = append(live, h.Alloc(r.Intn(4), r.Intn(300)))
			}
		}
		// Clear any pointers into objects we are about to free, then
		// verify full integrity.
		return h.CheckIntegrity() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeClearsDanglingCheck(t *testing.T) {
	// Freeing an object that is still referenced leaves a dangling ref
	// that CheckIntegrity must detect (malloc/free programs can do
	// this; the checker is how tests catch it).
	h := New()
	a := h.Alloc(1, 0)
	b := h.Alloc(0, 0)
	h.SetPtr(a, 0, b)
	h.Free(b)
	if err := h.CheckIntegrity(); err == nil {
		t.Fatal("dangling reference not detected")
	}
}

func TestSpaceGrowth(t *testing.T) {
	h := New()
	for i := 0; i < 1000; i++ {
		h.Alloc(0, 1000)
	}
	if h.SpaceBytes() < 1000*1016 {
		t.Fatalf("space %d too small for contents", h.SpaceBytes())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := h.Alloc(2, 32)
		h.Free(r)
	}
}

func BenchmarkSetPtr(b *testing.B) {
	h := New()
	a := h.Alloc(1, 0)
	c := h.Alloc(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SetPtr(a, 0, c)
	}
}

func TestAppendPtrsMatchesPtr(t *testing.T) {
	h := New()
	targets := []Ref{h.Alloc(0, 8), h.Alloc(0, 8), h.Alloc(0, 8)}
	src := h.Alloc(4, 16)
	h.SetPtr(src, 0, targets[2])
	h.SetPtr(src, 2, targets[0])
	h.SetPtr(src, 3, targets[1])

	got := h.AppendPtrs(nil, src)
	if len(got) != h.NumPtrs(src) {
		t.Fatalf("AppendPtrs returned %d slots, NumPtrs says %d", len(got), h.NumPtrs(src))
	}
	for i, target := range got {
		if want := h.Ptr(src, i); target != want {
			t.Errorf("slot %d: AppendPtrs %d, Ptr %d", i, target, want)
		}
	}

	// Appends to the tail, preserving existing elements.
	prefix := []Ref{src}
	both := h.AppendPtrs(prefix, src)
	if both[0] != src || len(both) != 1+len(got) {
		t.Errorf("AppendPtrs clobbered the existing prefix: %v", both)
	}

	// A pointer-free object contributes nothing.
	if ptrs := h.AppendPtrs(nil, targets[0]); len(ptrs) != 0 {
		t.Errorf("pointer-free object yielded %d slots", len(ptrs))
	}
}

func TestAppendPtrsSteadyStateAllocs(t *testing.T) {
	h := New()
	src := h.Alloc(8, 0)
	scratch := make([]Ref, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = h.AppendPtrs(scratch[:0], src)
	})
	if allocs != 0 {
		t.Errorf("AppendPtrs into a pre-grown scratch allocates %v times, want 0", allocs)
	}
}
