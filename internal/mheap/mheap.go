// Package mheap is the simulated managed heap the mini-applications
// and the reachability collector run on.
//
// Object payloads live inside plain []byte segments and references
// between objects are object IDs encoded with encoding/binary — never
// Go pointers — so Go's own garbage collector sees only a handful of
// flat allocations and cannot interfere with the experiments (the
// reason the reproduction uses byte arrays in the first place).
//
// Each object is laid out in the byte array as
//
//	[ size uint32 | nptrs uint32 | birth uint64 | ptr slots | data ]
//
// where the pointer slots hold 8-byte object IDs. The heap offers two
// reclamation styles: explicit Free (malloc/free programs — the
// mini-apps) backed by segregated free lists, and bulk Reclaim (used
// by the collector in internal/gc after it computes reachability).
// Because references are IDs, reclamation needs no pointer forwarding.
//
// A heap can record every allocation, free and pointer store as a
// trace event (SetRecorder), which is how the mini-applications
// produce the malloc/free traces that drive the simulator — the
// QPT-instrumentation stand-in.
package mheap

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// Ref names a heap object. The zero Ref is the nil reference.
type Ref = trace.ObjectID

// Nil is the null reference.
const Nil Ref = 0

const (
	headerBytes = 16 // size + nptrs + birth
	ptrBytes    = 8
)

type entry struct {
	addr  uint64 // offset of the header in the space
	total uint32 // header + payload bytes
	birth core.Time
	dead  bool
}

// Heap is a byte-array-backed object heap. It is not safe for
// concurrent use; the simulated programs are single-threaded like the
// paper's.
type Heap struct {
	space   []byte
	next    uint64 // bump pointer
	objects map[Ref]entry
	nextID  Ref

	// Segregated free lists: freeLists[c] holds addresses of freed
	// blocks whose total size is exactly classSize[c]. Blocks are
	// rounded up to a class at allocation so reuse is exact-fit.
	freeLists map[uint32][]uint64

	inUseBytes uint64    // bytes occupied by non-dead objects (payload+header)
	allocClock core.Time // cumulative payload bytes allocated
	instr      uint64    // instruction clock for trace stamps

	recorder   func(trace.Event)
	onPtrWrite func(src Ref, field int, old, new Ref)
}

// New returns an empty heap.
func New() *Heap {
	return &Heap{
		objects:   make(map[Ref]entry),
		nextID:    1,
		freeLists: make(map[uint32][]uint64),
	}
}

// SetRecorder installs a sink receiving one trace event per
// allocation, free and pointer store. Pass nil to stop recording.
func (h *Heap) SetRecorder(rec func(trace.Event)) { h.recorder = rec }

// SetWriteBarrier installs the pointer-store hook the collector uses
// to maintain its remembered set. It fires after the store, with both
// the overwritten and the new referent.
func (h *Heap) SetWriteBarrier(wb func(src Ref, field int, old, new Ref)) { h.onPtrWrite = wb }

// Tick advances the instruction clock used to stamp recorded events,
// modelling program work between heap operations.
func (h *Heap) Tick(instrs uint64) { h.instr += instrs }

// Now returns the instruction clock.
func (h *Heap) Now() uint64 { return h.instr }

// Clock returns the allocation clock (cumulative payload bytes).
func (h *Heap) Clock() core.Time { return h.allocClock }

// BytesInUse returns the bytes currently occupied by objects,
// including headers.
func (h *Heap) BytesInUse() uint64 { return h.inUseBytes }

// NumObjects returns the number of live objects.
func (h *Heap) NumObjects() int { return len(h.objects) }

// SpaceBytes returns the size of the backing byte array — the
// footprint a real process would occupy, including fragmentation.
func (h *Heap) SpaceBytes() int { return len(h.space) }

// sizeClass rounds a block size up to its allocation class: 16-byte
// granules up to 256 bytes, then powers of two.
func sizeClass(n uint32) uint32 {
	if n <= 256 {
		return (n + 15) &^ 15
	}
	c := uint32(256)
	for c < n {
		c *= 2
	}
	return c
}

func (h *Heap) grow(n uint64) uint64 {
	addr := h.next
	need := int(h.next + n)
	if need > len(h.space) {
		grown := make([]byte, max(need, 2*len(h.space)+4096))
		copy(grown, h.space)
		h.space = grown
	}
	h.next += n
	return addr
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Alloc creates an object with nptrs pointer slots (initialized to
// Nil) and dataBytes bytes of raw data (zeroed), returning its Ref.
// It panics on negative arguments — always a program bug.
//
//dtbvet:hotpath one call per object the mutator allocates
func (h *Heap) Alloc(nptrs, dataBytes int) Ref {
	if nptrs < 0 || dataBytes < 0 {
		panic("mheap: negative allocation request")
	}
	payload := uint32(nptrs*ptrBytes + dataBytes)
	total := sizeClass(headerBytes + payload)

	var addr uint64
	if list := h.freeLists[total]; len(list) > 0 {
		addr = list[len(list)-1]
		h.freeLists[total] = list[:len(list)-1]
		// Zero the reused block.
		clear(h.space[addr : addr+uint64(total)])
	} else {
		addr = h.grow(uint64(total))
	}

	id := h.nextID
	h.nextID++
	h.allocClock = h.allocClock.Add(uint64(headerBytes + payload))
	binary.LittleEndian.PutUint32(h.space[addr:], payload)
	binary.LittleEndian.PutUint32(h.space[addr+4:], uint32(nptrs))
	binary.LittleEndian.PutUint64(h.space[addr+8:], h.allocClock.Bytes())
	h.objects[id] = entry{addr: addr, total: total, birth: h.allocClock}
	h.inUseBytes += uint64(headerBytes + payload)

	if h.recorder != nil {
		h.recorder(trace.Alloc(id, uint64(headerBytes+payload), h.instr))
	}
	return id
}

func (h *Heap) lookup(r Ref) entry {
	e, ok := h.objects[r]
	if !ok {
		panic(fmt.Sprintf("mheap: access to unknown or freed object %d", r))
	}
	return e
}

// Free explicitly deallocates an object (malloc/free style). Freeing
// Nil is a no-op, matching free(NULL); freeing an unknown or
// already-freed object panics.
//
//dtbvet:hotpath one call per object the mutator frees
func (h *Heap) Free(r Ref) {
	if r == Nil {
		return
	}
	e := h.lookup(r)
	delete(h.objects, r)
	h.freeLists[e.total] = append(h.freeLists[e.total], e.addr)
	payload := binary.LittleEndian.Uint32(h.space[e.addr:])
	h.inUseBytes -= uint64(headerBytes + payload)
	if h.recorder != nil {
		h.recorder(trace.Free(r, h.instr))
	}
}

// Reclaim bulk-frees objects the collector proved unreachable. It does
// not emit Free events (the death was already implied by the program's
// pointer structure, and the simulator's oracle comes from explicit
// frees only).
func (h *Heap) Reclaim(refs []Ref) (bytes uint64) {
	for _, r := range refs {
		e := h.lookup(r)
		delete(h.objects, r)
		h.freeLists[e.total] = append(h.freeLists[e.total], e.addr)
		payload := binary.LittleEndian.Uint32(h.space[e.addr:])
		n := uint64(headerBytes + payload)
		h.inUseBytes -= n
		bytes += n
	}
	return bytes
}

// Contains reports whether r names a live (not freed) object.
func (h *Heap) Contains(r Ref) bool {
	_, ok := h.objects[r]
	return ok
}

// Birth returns the object's allocation-clock birth time.
func (h *Heap) Birth(r Ref) core.Time { return h.lookup(r).birth }

// Size returns the object's payload size in bytes (pointer slots plus
// data), excluding the header.
func (h *Heap) Size(r Ref) int {
	e := h.lookup(r)
	return int(binary.LittleEndian.Uint32(h.space[e.addr:]))
}

// TotalSize returns the object's footprint including its header.
func (h *Heap) TotalSize(r Ref) int { return h.Size(r) + headerBytes }

// NumPtrs returns the number of pointer slots.
func (h *Heap) NumPtrs(r Ref) int {
	e := h.lookup(r)
	return int(binary.LittleEndian.Uint32(h.space[e.addr+4:]))
}

func (h *Heap) ptrOff(r Ref, i int) uint64 {
	e := h.lookup(r)
	n := int(binary.LittleEndian.Uint32(h.space[e.addr+4:]))
	if i < 0 || i >= n {
		panic(fmt.Sprintf("mheap: pointer slot %d out of range [0,%d) in object %d", i, n, r))
	}
	return e.addr + headerBytes + uint64(i*ptrBytes)
}

// Ptr reads pointer slot i of object r.
//
//dtbvet:hotpath one call per pointer slot the collector traces
func (h *Heap) Ptr(r Ref, i int) Ref {
	return Ref(binary.LittleEndian.Uint64(h.space[h.ptrOff(r, i):]))
}

// AppendPtrs appends every pointer slot of object r to dst in slot
// order and returns the extended slice. One lookup serves the whole
// object — the collector's trace loop reads pointers through this
// with a reused scratch slice instead of paying a map lookup per Ptr
// call.
//
//dtbvet:hotpath one call per object the collector traces
func (h *Heap) AppendPtrs(dst []Ref, r Ref) []Ref {
	e := h.lookup(r)
	n := uint64(binary.LittleEndian.Uint32(h.space[e.addr+4:]))
	base := e.addr + headerBytes
	for i := uint64(0); i < n; i++ {
		dst = append(dst, Ref(binary.LittleEndian.Uint64(h.space[base+i*ptrBytes:]))) //dtbvet:ignore hotalloc -- dst is the caller's reused scratch slice; it grows to the widest object once and then appends stay in capacity (pinned by TestAppendPtrsSteadyStateAllocs)
	}
	return dst
}

// SetPtr stores target into pointer slot i of object r, firing the
// write barrier and the trace recorder. target must be Nil or live.
//
//dtbvet:hotpath one call per pointer store the mutator makes
func (h *Heap) SetPtr(r Ref, i int, target Ref) {
	if target != Nil && !h.Contains(target) {
		panic(fmt.Sprintf("mheap: store of dangling reference %d", target))
	}
	off := h.ptrOff(r, i)
	old := Ref(binary.LittleEndian.Uint64(h.space[off:]))
	binary.LittleEndian.PutUint64(h.space[off:], uint64(target))
	if h.recorder != nil {
		h.recorder(trace.PtrWrite(r, uint32(i), target, h.instr))
	}
	if h.onPtrWrite != nil {
		h.onPtrWrite(r, i, old, target)
	}
}

// Data returns the raw-data region of object r (the payload beyond the
// pointer slots) as a slice aliasing the heap's backing array. The
// slice is invalidated by the next Alloc; callers must not retain it.
func (h *Heap) Data(r Ref) []byte {
	e := h.lookup(r)
	payload := binary.LittleEndian.Uint32(h.space[e.addr:])
	nptrs := binary.LittleEndian.Uint32(h.space[e.addr+4:])
	start := e.addr + headerBytes + uint64(nptrs)*ptrBytes
	end := e.addr + headerBytes + uint64(payload)
	return h.space[start:end]
}

// Refs returns the live object IDs sorted by birth time (oldest
// first), the order the threatening boundary partitions.
func (h *Heap) Refs() []Ref {
	refs := make([]Ref, 0, len(h.objects))
	for r := range h.objects { //dtbvet:ignore determinism -- refs are sorted by birth time below
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool {
		bi, bj := h.objects[refs[i]].birth, h.objects[refs[j]].birth
		if bi != bj {
			return bi < bj
		}
		return refs[i] < refs[j]
	})
	return refs
}

// LiveBytesBornAfter sums the footprints of live objects born strictly
// after t (part of the core.Heap view for boundary policies; here
// "live" means not yet freed or reclaimed).
func (h *Heap) LiveBytesBornAfter(t core.Time) uint64 {
	var sum uint64
	for r, e := range h.objects { //dtbvet:ignore determinism -- order-insensitive sum of live bytes
		if e.birth > t {
			sum += uint64(h.TotalSize(r))
		}
	}
	return sum
}

// Compact repacks all live objects into a fresh byte array in birth
// order, eliminating fragmentation: afterwards SpaceBytes equals the
// sum of live block sizes. Because references are object IDs rather
// than addresses, no pointer forwarding is needed — this is the
// "copying collector for free" the ID indirection buys. Data slices
// previously returned by Data are invalidated.
func (h *Heap) Compact() {
	refs := h.Refs() // birth order keeps older objects lower in memory
	var total uint64
	for _, r := range refs {
		total += uint64(h.objects[r].total)
	}
	space := make([]byte, total)
	var next uint64
	for _, r := range refs {
		e := h.objects[r]
		copy(space[next:], h.space[e.addr:e.addr+uint64(e.total)])
		e.addr = next
		h.objects[r] = e
		next += uint64(e.total)
	}
	h.space = space
	h.next = next
	h.freeLists = make(map[uint32][]uint64)
}

// Fragmentation returns the fraction of the bump-allocated region not
// occupied by live objects' blocks (0 on a freshly compacted heap).
func (h *Heap) Fragmentation() float64 {
	if h.next == 0 {
		return 0
	}
	var used uint64
	for _, e := range h.objects { //dtbvet:ignore determinism -- order-insensitive sum of block sizes
		used += uint64(e.total)
	}
	return 1 - float64(used)/float64(h.next)
}

// CheckIntegrity validates the heap's internal invariants: byte
// accounting, header consistency and free-list disjointness. Tests
// call it after every mutation sequence.
func (h *Heap) CheckIntegrity() error {
	var sum uint64
	seen := make(map[uint64]Ref)
	for r, e := range h.objects { //dtbvet:ignore determinism -- diagnostic-only: which of several invariant breaks is reported first may vary
		if e.addr+uint64(e.total) > h.next {
			return fmt.Errorf("mheap: object %d extends past bump pointer", r)
		}
		payload := binary.LittleEndian.Uint32(h.space[e.addr:])
		if headerBytes+payload > e.total {
			return fmt.Errorf("mheap: object %d payload %d exceeds block %d", r, payload, e.total)
		}
		nptrs := binary.LittleEndian.Uint32(h.space[e.addr+4:])
		if uint64(nptrs)*ptrBytes > uint64(payload) {
			return fmt.Errorf("mheap: object %d pointer slots exceed payload", r)
		}
		if prev, dup := seen[e.addr]; dup {
			return fmt.Errorf("mheap: objects %d and %d share address %d", prev, r, e.addr)
		}
		seen[e.addr] = r
		sum += uint64(headerBytes + payload)
		for i := 0; i < int(nptrs); i++ {
			p := h.Ptr(r, i)
			if p != Nil && !h.Contains(p) {
				return fmt.Errorf("mheap: object %d slot %d holds dangling ref %d", r, i, p)
			}
		}
	}
	if sum != h.inUseBytes {
		return fmt.Errorf("mheap: inUseBytes %d != recomputed %d", h.inUseBytes, sum)
	}
	for class, list := range h.freeLists { //dtbvet:ignore determinism -- diagnostic-only: which aliasing free block is reported first may vary
		for _, addr := range list {
			if owner, live := seen[addr]; live {
				return fmt.Errorf("mheap: free block %d (class %d) aliases live object %d", addr, class, owner)
			}
		}
	}
	return nil
}

var _ core.Heap = (*Heap)(nil)
