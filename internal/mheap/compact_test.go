package mheap

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/xrand"
)

func TestCompactPreservesContents(t *testing.T) {
	h := New()
	a := h.Alloc(1, 16)
	copy(h.Data(a), "hello compaction")
	b := h.Alloc(0, 8)
	copy(h.Data(b), "worldly!")
	c := h.Alloc(2, 0)
	h.SetPtr(a, 0, b)
	h.SetPtr(c, 0, a)
	h.SetPtr(c, 1, b)
	// Punch holes.
	for i := 0; i < 20; i++ {
		h.Free(h.Alloc(0, 100))
	}
	before := h.BytesInUse()
	h.Compact()
	if h.BytesInUse() != before {
		t.Fatalf("compaction changed accounting: %d -> %d", before, h.BytesInUse())
	}
	if string(h.Data(a)) != "hello compaction" || string(h.Data(b)) != "worldly!" {
		t.Fatal("compaction corrupted data")
	}
	if h.Ptr(a, 0) != b || h.Ptr(c, 0) != a || h.Ptr(c, 1) != b {
		t.Fatal("compaction broke references")
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactEliminatesFragmentation(t *testing.T) {
	h := New()
	var keep []Ref
	for i := 0; i < 200; i++ {
		r := h.Alloc(0, 64)
		if i%2 == 0 {
			keep = append(keep, r)
		}
	}
	for i := 1; i < 200; i += 2 {
		// Free the odd-indexed objects (the second allocation of each
		// pair): ids are 1-based and sequential.
		h.Free(Ref(i + 1))
	}
	if h.Fragmentation() < 0.3 {
		t.Fatalf("expected heavy fragmentation, got %.2f", h.Fragmentation())
	}
	spaceBefore := h.SpaceBytes()
	h.Compact()
	if h.Fragmentation() != 0 {
		t.Fatalf("fragmentation after compact = %.3f", h.Fragmentation())
	}
	if h.SpaceBytes() >= spaceBefore {
		t.Fatalf("space did not shrink: %d -> %d", spaceBefore, h.SpaceBytes())
	}
	for _, r := range keep {
		if !h.Contains(r) {
			t.Fatal("live object lost in compaction")
		}
	}
}

func TestCompactEmptyHeap(t *testing.T) {
	h := New()
	h.Compact()
	if h.SpaceBytes() != 0 || h.Fragmentation() != 0 {
		t.Fatal("empty compaction misbehaved")
	}
	// Heap remains usable.
	r := h.Alloc(1, 32)
	if !h.Contains(r) {
		t.Fatal("allocation after empty compact failed")
	}
}

func TestCompactKeepsBirthOrder(t *testing.T) {
	h := New()
	var refs []Ref
	for i := 0; i < 50; i++ {
		refs = append(refs, h.Alloc(0, 32))
	}
	for i := 0; i < 50; i += 3 {
		h.Free(refs[i])
	}
	births := map[Ref]uint64{}
	for _, r := range h.Refs() {
		births[r] = uint64(h.Birth(r))
	}
	h.Compact()
	for _, r := range h.Refs() {
		if uint64(h.Birth(r)) != births[r] {
			t.Fatal("compaction changed a birth time")
		}
	}
}

func TestCompactUnderRandomWorkloadProperty(t *testing.T) {
	r := xrand.New(404)
	for trial := 0; trial < 20; trial++ {
		h := New()
		type obj struct {
			ref  Ref
			data byte
		}
		var live []obj
		for i := 0; i < 300; i++ {
			switch {
			case len(live) > 0 && r.Bool(0.4):
				k := r.Intn(len(live))
				h.Free(live[k].ref)
				live = append(live[:k], live[k+1:]...)
			default:
				ref := h.Alloc(0, r.Range(1, 200))
				fill := byte(r.Intn(256))
				d := h.Data(ref)
				for j := range d {
					d[j] = fill
				}
				live = append(live, obj{ref, fill})
			}
			if r.Bool(0.05) {
				h.Compact()
			}
		}
		h.Compact()
		for _, o := range live {
			for _, v := range h.Data(o.ref) {
				if v != o.data {
					t.Fatalf("trial %d: payload corrupted", trial)
				}
			}
		}
		if err := h.CheckIntegrity(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
