// Package sim implements the paper's trace-driven garbage-collection
// simulation (Barrett & Zorn §5): allocation and deallocation events
// drive a model heap, scavenges are triggered at fixed allocation
// intervals, a threatening-boundary policy from internal/core chooses
// what to collect, and the free events serve as the liveness oracle.
//
// The machine model matches the paper's: a CPU executing a fixed
// number of instructions per second and a collector tracing a fixed
// number of bytes per second, so pause times are proportional to bytes
// traced and CPU overhead is total trace time over program run time.
//
// Run simulates an in-memory trace; RunReader streams events from a
// decoder so arbitrarily long traces simulate in constant memory; and
// NewRunner exposes the incremental interface both are built on.
package sim

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/stats"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/vmem"
)

// Machine is the paper's simulated hardware: 10 MIPS, tracing
// 500 kilobytes per second.
type Machine struct {
	MIPS          float64 // millions of instructions per second
	TraceBytesPer float64 // bytes the collector traces per second
}

// PaperMachine returns the machine model used throughout the paper's
// evaluation.
func PaperMachine() Machine {
	return Machine{MIPS: 10, TraceBytesPer: 500 * 1024}
}

// isZero reports whether the machine model was left unset. The bit
// test (not ==) keeps the sentinel exact: struct equality on float
// fields would also match -0 and miss nothing here today, but the
// module-wide rule is that float equality goes through Float64bits.
func (m Machine) isZero() bool {
	return math.Float64bits(m.MIPS) == 0 && math.Float64bits(m.TraceBytesPer) == 0
}

// Validate reports why the machine model is unusable, or nil. Both
// rates divide measurements (Seconds, PauseSeconds), so a zero,
// negative or non-finite rate would silently turn every derived
// metric into Inf or NaN; the zero Machine is exempt because
// Config.withDefaults replaces it with PaperMachine before any
// division happens.
func (m Machine) Validate() error {
	if !(m.MIPS > 0) || math.IsInf(m.MIPS, 0) {
		return fmt.Errorf("sim: Machine.MIPS must be positive and finite, got %v", m.MIPS)
	}
	if !(m.TraceBytesPer > 0) || math.IsInf(m.TraceBytesPer, 0) {
		return fmt.Errorf("sim: Machine.TraceBytesPer must be positive and finite, got %v", m.TraceBytesPer)
	}
	return nil
}

// Seconds converts an instruction count to wall time on this machine.
func (m Machine) Seconds(instrs uint64) float64 {
	return float64(instrs) / (m.MIPS * 1e6)
}

// PauseSeconds converts traced bytes to a collection pause.
func (m Machine) PauseSeconds(tracedBytes uint64) float64 {
	return float64(tracedBytes) / m.TraceBytesPer
}

// Mode selects what the run measures.
type Mode int

const (
	// ModePolicy runs a collector driven by Config.Policy.
	ModePolicy Mode = iota
	// ModeNoGC never collects: memory is cumulative allocation (the
	// paper's "No GC" row).
	ModeNoGC
	// ModeLive reclaims at the moment of death: memory is the exact
	// live-byte curve (the paper's "Live" row).
	ModeLive
)

// Config parameterizes one simulation run.
type Config struct {
	Mode         Mode
	Policy       core.Policy // required for ModePolicy
	Machine      Machine     // zero value replaced by PaperMachine
	TriggerBytes uint64      // scavenge interval; zero value = 1 MB
	RecordCurve  bool        // retain the Figure-2 memory series
	CurvePoints  int         // downsample limit for curves (0 = keep all)

	// PageFrames, when non-zero, enables the virtual-memory model: an
	// LRU resident set of that many PageBytes-sized frames is driven
	// by mutator and collector touches, and the Result reports fault
	// counts — the locality axis generational collection was built
	// for. Objects are placed at bump addresses; scavenge survivors
	// are rewritten to fresh addresses (copying semantics), which is
	// what gives partial collection its locality advantage.
	PageFrames int
	// PageBytes defaults to 4096 when PageFrames is set.
	PageBytes uint64

	// ReferenceScan routes every boundary query (LiveBytesBornAfter)
	// through the O(live objects) reference tail scan instead of the
	// birth-epoch bucket accounting. The two are identical by
	// construction — the differential oracle (internal/audit) replays
	// one side of its comparison on this path to keep them provably
	// so. Queries run only at policy decisions, so even the naive scan
	// costs little; leave this off outside audits and debugging.
	ReferenceScan bool

	// Opportunistic enables Wilson & Moher-style scheduling on the
	// "when to collect" axis the paper contrasts with its own "what
	// to collect" contribution (§4): a Mark event in the trace — a
	// program quiescent point such as the end of a compilation pass
	// or a showpage — triggers a scavenge early, once at least half
	// the byte trigger has accumulated. The byte trigger still fires
	// as a backstop, so memory stays bounded on mark-free traces.
	Opportunistic bool

	// Probe, when non-nil, receives the run's telemetry events (see
	// Probe). Telemetry observes, never influences: a run's result is
	// identical with or without a probe attached, and a nil probe
	// costs the hot path nothing.
	Probe Probe
	// Label tags every event this run emits, so one sink can demux
	// several concurrent runs. Empty is fine for single runs.
	Label string
	// ProgressBytes sets the allocation interval between Progress
	// events; zero means 4 MB. Progress events are only produced when
	// a Probe is attached.
	ProgressBytes uint64
}

func (c Config) withDefaults() Config {
	if c.Machine.isZero() {
		c.Machine = PaperMachine()
	}
	if c.TriggerBytes == 0 {
		c.TriggerBytes = 1 << 20
	}
	if c.PageFrames > 0 && c.PageBytes == 0 {
		c.PageBytes = 4096
	}
	if c.ProgressBytes == 0 {
		c.ProgressBytes = 4 << 20
	}
	return c
}

// Validate reports why the configuration cannot run, or nil. It
// checks the post-default view of the config, so a zero Machine (to
// be replaced by PaperMachine) is valid while a half-filled one is
// not. NewRunner validates implicitly; replay harnesses call this to
// reject a whole config set before any runner has emitted telemetry.
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	switch c.Mode {
	case ModePolicy:
		if c.Policy == nil {
			return errors.New("sim: ModePolicy requires a Policy")
		}
	case ModeNoGC, ModeLive:
	default:
		return fmt.Errorf("sim: unknown mode %d", c.Mode)
	}
	return nil
}

// Result reports everything the paper's tables and figures need from
// one run.
type Result struct {
	Collector string // policy name, "NoGC" or "Live"

	// Table 2: memory (bytes; time-weighted mean over the run and max).
	MemMeanBytes float64
	MemMaxBytes  float64

	// Oracle live-byte statistics for the same run (the "Live" row and
	// tenured-garbage analysis).
	LiveMeanBytes float64
	LiveMaxBytes  float64

	// Table 3: pause times, seconds, one per scavenge.
	Pauses []float64

	// Table 4: total bytes traced and estimated CPU overhead.
	TracedTotalBytes uint64
	OverheadPct      float64

	Collections int
	TotalAlloc  uint64  // total bytes allocated by the program
	ExecSeconds float64 // program execution time on the machine model

	// Figure 2: memory-in-use and live-bytes series over the
	// allocation clock (nil unless Config.RecordCurve).
	Curve     *stats.Series
	LiveCurve *stats.Series

	// Virtual-memory model results (zero unless Config.PageFrames).
	PageFaults   uint64
	PageAccesses uint64

	// Full per-scavenge history (boundaries, traced, survivors).
	History core.History
}

// MedianPauseSeconds returns the median pause, 0 if no collections ran.
func (r *Result) MedianPauseSeconds() float64 { return stats.Percentile(r.Pauses, 50) }

// P90PauseSeconds returns the 90th-percentile pause.
func (r *Result) P90PauseSeconds() float64 { return stats.Percentile(r.Pauses, 90) }

// TenuredGarbageMeanBytes is the time-weighted mean of dead storage
// held in memory: what the collector's policy left unreclaimed above
// the oracle live floor.
func (r *Result) TenuredGarbageMeanBytes() float64 { return r.MemMeanBytes - r.LiveMeanBytes }

// object is one heap cell in the model.
type object struct {
	id    trace.ObjectID
	birth core.Time
	size  uint64
	addr  uint64 // placement for the virtual-memory model
	dead  bool   // freed by the program but not yet reclaimed
}

// birthBucketShift sizes the birth-epoch buckets behind
// LiveBytesBornAfter: 64 KB of allocation clock per bucket. Wider
// buckets shrink the bucket array but lengthen the partial scan at
// the boundary's own bucket; 64 KB keeps both small for paper-scale
// runs (a 100 MB trace is ~1600 buckets).
const birthBucketShift = 16

// birthBucket maps a clock reading to its birth-epoch bucket.
func birthBucket(t core.Time) int { return int(t.Bytes() >> birthBucketShift) }

// heapModel is the simulated heap: objects ordered by birth time, with
// incremental byte accounting. It implements core.Heap for policies.
type heapModel struct {
	objs  []object // birth-ordered; reclaimed objects are removed
	index map[trace.ObjectID]int
	inUse uint64 // live + dead-but-unreclaimed bytes
	live  uint64 // live bytes only (the oracle)
	// liveByBirth[b] is the live bytes of objects born in clock bucket
	// b, maintained on every alloc and free. It makes boundary queries
	// (LiveBytesBornAfter, executed on every policy decision and for
	// every FEEDMED advance candidate) a partial scan of one bucket
	// plus a bucket-suffix sum instead of a tail scan over all live
	// objects.
	liveByBirth []uint64
	// naive routes LiveBytesBornAfter through the reference tail scan
	// (Config.ReferenceScan) — the audit oracle's comparison path.
	naive bool
}

func newHeapModel() *heapModel {
	return &heapModel{index: make(map[trace.ObjectID]int)}
}

// BytesInUse implements core.Heap.
func (h *heapModel) BytesInUse() uint64 { return h.inUse }

// LiveBytesBornAfter implements core.Heap.
//
//dtbvet:hotpath consulted by every policy Boundary() call during replay
func (h *heapModel) LiveBytesBornAfter(t core.Time) uint64 {
	if h.naive {
		return h.liveBytesBornAfterNaive(t)
	}
	i := sort.Search(len(h.objs), func(i int) bool { return h.objs[i].birth > t })
	b := birthBucket(t)
	// Births sharing t's bucket need individual comparison — the
	// bucket sums only cover whole buckets. Later buckets hold only
	// births strictly after t, so their sums apply wholesale.
	var sum uint64
	bucketEnd := core.TimeAt(uint64(b+1) << birthBucketShift)
	for ; i < len(h.objs) && h.objs[i].birth < bucketEnd; i++ {
		if !h.objs[i].dead {
			sum += h.objs[i].size
		}
	}
	for j := b + 1; j < len(h.liveByBirth); j++ {
		sum += h.liveByBirth[j]
	}
	return sum
}

// liveBytesBornAfterNaive is the reference tail scan the bucket
// accounting replaced; the equivalence test pins the two together,
// and Config.ReferenceScan runs whole simulations on this path so the
// audit oracle can diff the results.
func (h *heapModel) liveBytesBornAfterNaive(t core.Time) uint64 {
	i := sort.Search(len(h.objs), func(i int) bool { return h.objs[i].birth > t })
	var sum uint64
	for ; i < len(h.objs); i++ {
		if !h.objs[i].dead {
			sum += h.objs[i].size
		}
	}
	return sum
}

//dtbvet:hotpath one call per allocation event in the trace
func (h *heapModel) alloc(id trace.ObjectID, size uint64, birth core.Time, addr uint64) error {
	if _, dup := h.index[id]; dup {
		return fmt.Errorf("sim: duplicate allocation of object %d", id)
	}
	h.index[id] = len(h.objs)
	h.objs = append(h.objs, object{id: id, birth: birth, size: size, addr: addr})
	h.inUse += size
	h.live += size
	b := birthBucket(birth)
	for len(h.liveByBirth) <= b {
		h.liveByBirth = append(h.liveByBirth, 0)
	}
	h.liveByBirth[b] += size
	return nil
}

//dtbvet:hotpath one call per free event in the trace
func (h *heapModel) free(id trace.ObjectID) error {
	i, ok := h.index[id]
	if !ok {
		return fmt.Errorf("sim: free of unknown object %d", id)
	}
	if h.objs[i].dead {
		return fmt.Errorf("sim: double free of object %d", id)
	}
	h.objs[i].dead = true
	h.live -= h.objs[i].size
	h.liveByBirth[birthBucket(h.objs[i].birth)] -= h.objs[i].size
	return nil
}

// scavenge collects with the given boundary: every dead object born
// after tb is reclaimed, every live object born after tb is traced.
// It returns the bytes traced and reclaimed.
//
//dtbvet:hotpath walks the whole object table on every collection
func (h *heapModel) scavenge(tb core.Time) (traced, reclaimed uint64) {
	start := sort.Search(len(h.objs), func(i int) bool { return h.objs[i].birth > tb })
	w := start
	for r := start; r < len(h.objs); r++ {
		o := h.objs[r]
		if o.dead {
			reclaimed += o.size
			h.inUse -= o.size
			delete(h.index, o.id)
			continue
		}
		traced += o.size
		h.objs[w] = o
		h.index[o.id] = w
		w++
	}
	h.objs = h.objs[:w]
	return traced, reclaimed
}

// Runner is the incremental simulation interface: feed events in trace
// order, then Finish. Run and RunReader are thin wrappers around it.
type Runner struct {
	cfg  Config
	res  *Result
	heap *heapModel

	clock         core.Time
	sinceTrigger  uint64
	sinceProgress uint64
	memStat       stats.Weighted
	liveStat      stats.Weighted
	lastInstr     uint64
	nEvents       int
	curve         *stats.Series
	liveCurve     *stats.Series
	finished      bool

	// Virtual-memory model (nil unless configured).
	pages    *vmem.Model
	nextAddr uint64
}

// NewRunner validates the configuration and returns a Runner ready for
// events. The probe's RunStart fires only after validation succeeds,
// so a rejected config never opens a telemetry stream it cannot close.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	switch cfg.Mode {
	case ModePolicy:
		res.Collector = cfg.Policy.Name()
	case ModeNoGC:
		res.Collector = "NoGC"
	case ModeLive:
		res.Collector = "Live"
	}
	r := &Runner{cfg: cfg, res: res, heap: newHeapModel()}
	r.heap.naive = cfg.ReferenceScan
	if cfg.RecordCurve {
		r.curve = &stats.Series{Name: res.Collector}
		r.liveCurve = &stats.Series{Name: "Live"}
	}
	if cfg.PageFrames > 0 {
		r.pages = vmem.New(cfg.PageBytes, cfg.PageFrames)
	}
	if p := cfg.Probe; p != nil {
		p.RunStart(RunStart{
			Label:         cfg.Label,
			Collector:     res.Collector,
			Machine:       cfg.Machine,
			TriggerBytes:  cfg.TriggerBytes,
			ProgressBytes: cfg.ProgressBytes,
			Opportunistic: cfg.Opportunistic,
		})
	}
	return r, nil
}

// Collector returns the name the run's Result will carry ("Full",
// "DtbFM", "NoGC", ...). It is available from construction, so replay
// harnesses can label per-runner errors before Finish.
func (r *Runner) Collector() string { return r.res.Collector }

func (r *Runner) memInUse() uint64 {
	switch r.cfg.Mode {
	case ModeNoGC:
		return r.clock.Bytes() // cumulative allocation, frees ignored
	case ModeLive:
		return r.heap.live
	default:
		return r.heap.inUse
	}
}

func (r *Runner) sample(instr uint64) {
	m := r.memInUse()
	r.memStat.Observe(float64(instr), float64(m))
	r.liveStat.Observe(float64(instr), float64(r.heap.live))
	if r.cfg.RecordCurve {
		r.curve.Append(float64(r.clock), float64(m))
		r.liveCurve.Append(float64(r.clock), float64(r.heap.live))
	}
}

// Feed processes one event. Events must arrive in trace order.
//
//dtbvet:hotpath the per-event dispatch of every replay
func (r *Runner) Feed(e trace.Event) error {
	if r.finished {
		return errors.New("sim: Feed after Finish")
	}
	i := r.nEvents
	r.nEvents++
	if e.Instr < r.lastInstr {
		return fmt.Errorf("sim: event %d: clock regressed", i)
	}
	r.lastInstr = e.Instr
	switch e.Kind {
	case trace.KindAlloc:
		r.clock = r.clock.Add(e.Size)
		addr := r.nextAddr
		r.nextAddr += e.Size
		if err := r.heap.alloc(e.ID, e.Size, r.clock, addr); err != nil {
			return fmt.Errorf("sim: event %d: %w", i, err)
		}
		if r.pages != nil {
			r.pages.Touch(addr, e.Size) // the mutator initializes it
		}
		r.sinceTrigger += e.Size
		r.sinceProgress += e.Size
		r.sample(e.Instr)
		if r.cfg.Mode == ModePolicy && r.sinceTrigger >= r.cfg.TriggerBytes {
			r.sinceTrigger = 0
			r.scavenge(TriggerByteBudget)
			r.sample(e.Instr)
		}
		if r.cfg.Probe != nil && r.sinceProgress >= r.cfg.ProgressBytes {
			r.sinceProgress = 0
			r.cfg.Probe.Progress(Progress{
				Label:       r.cfg.Label,
				Events:      r.nEvents,
				Instr:       e.Instr,
				Clock:       r.clock,
				InUse:       r.memInUse(),
				Live:        r.heap.live,
				Collections: r.res.Collections,
			})
		}
	case trace.KindFree:
		if r.pages != nil {
			if idx, ok := r.heap.index[e.ID]; ok {
				o := r.heap.objs[idx]
				r.pages.Touch(o.addr, o.size) // last mutator access
			}
		}
		if err := r.heap.free(e.ID); err != nil {
			return fmt.Errorf("sim: event %d: %w", i, err)
		}
		r.sample(e.Instr)
	case trace.KindMark:
		if r.cfg.Mode == ModePolicy && r.cfg.Opportunistic &&
			r.sinceTrigger >= r.cfg.TriggerBytes/2 {
			r.sinceTrigger = 0
			r.scavenge(TriggerMark)
			r.sample(e.Instr)
		}
	case trace.KindPtrWrite:
		// Pointer stores do not affect the oracle liveness, but they
		// do touch memory for the virtual-memory model.
		if r.pages != nil {
			if idx, ok := r.heap.index[e.ID]; ok {
				o := r.heap.objs[idx]
				r.pages.Touch(o.addr, 8)
			}
		}
	default:
		return fmt.Errorf("sim: event %d: unknown kind %d", i, e.Kind)
	}
	return nil
}

//dtbvet:hotpath one call per simulated collection
func (r *Runner) scavenge(reason TriggerReason) {
	heap, cfg, res := r.heap, r.cfg, r.res
	memBefore := heap.inUse
	tb := core.ClampBoundary(cfg.Policy.Boundary(r.clock, &res.History, heap), r.clock)
	if p := cfg.Probe; p != nil {
		p.Decision(Decision{
			Label:      cfg.Label,
			N:          res.Collections + 1,
			Trigger:    reason,
			Now:        r.clock,
			TB:         tb,
			Candidates: boundaryCandidates(&res.History),
			MemBefore:  memBefore,
			LiveBefore: heap.live,
		})
	}
	traced, reclaimed := heap.scavenge(tb)
	if r.pages != nil {
		// Copying semantics: every survivor of the threatened region
		// is read at its old address and written to a fresh one; the
		// collector never touches garbage.
		start := sort.Search(len(heap.objs), func(i int) bool { return heap.objs[i].birth > tb })
		for j := start; j < len(heap.objs); j++ {
			o := &heap.objs[j]
			r.pages.Touch(o.addr, o.size)
			o.addr = r.nextAddr
			r.nextAddr += o.size
			r.pages.Touch(o.addr, o.size)
		}
	}
	res.History.Record(core.Scavenge{
		T:         r.clock,
		TB:        tb,
		MemBefore: memBefore,
		Traced:    traced,
		Reclaimed: reclaimed,
		Surviving: heap.inUse,
	})
	res.Collections++
	res.TracedTotalBytes += traced
	pause := cfg.Machine.PauseSeconds(traced)
	res.Pauses = append(res.Pauses, pause)
	if p := cfg.Probe; p != nil {
		p.Scavenge(ScavengeEvent{
			Label:          cfg.Label,
			N:              res.Collections,
			Trigger:        reason,
			T:              r.clock,
			TB:             tb,
			MemBefore:      memBefore,
			Traced:         traced,
			Reclaimed:      reclaimed,
			Surviving:      heap.inUse,
			Live:           heap.live,
			TenuredGarbage: heap.inUse - heap.live,
			PauseSeconds:   pause,
		})
	}
}

// Finish closes the run and returns the Result. It is idempotent.
func (r *Runner) Finish() *Result {
	if r.finished {
		return r.res
	}
	r.finished = true
	r.memStat.Finish(float64(r.lastInstr))
	r.liveStat.Finish(float64(r.lastInstr))
	res := r.res
	res.MemMeanBytes = r.memStat.Mean()
	res.MemMaxBytes = r.memStat.Max()
	res.LiveMeanBytes = r.liveStat.Mean()
	res.LiveMaxBytes = r.liveStat.Max()
	res.TotalAlloc = r.clock.Bytes()
	res.ExecSeconds = r.cfg.Machine.Seconds(r.lastInstr)
	if res.ExecSeconds > 0 {
		res.OverheadPct = 100 * r.cfg.Machine.PauseSeconds(res.TracedTotalBytes) / res.ExecSeconds
	}
	if r.pages != nil {
		res.PageFaults = r.pages.Faults()
		res.PageAccesses = r.pages.Accesses()
	}
	if r.cfg.RecordCurve {
		curve, liveCurve := r.curve, r.liveCurve
		if r.cfg.CurvePoints > 0 {
			curve = curve.Downsample(r.cfg.CurvePoints)
			liveCurve = liveCurve.Downsample(r.cfg.CurvePoints)
		}
		res.Curve = curve
		res.LiveCurve = liveCurve
	}
	if p := r.cfg.Probe; p != nil {
		p.RunFinish(RunFinish{Label: r.cfg.Label, Result: res})
	}
	return res
}

// Run simulates one collector over a complete in-memory trace. The
// trace must be well-formed; Run reports the first inconsistency it
// hits as an error.
func Run(events []trace.Event, cfg Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		if err := r.Feed(e); err != nil {
			return nil, err
		}
	}
	return r.Finish(), nil
}

// RunReader simulates a collector over a streamed trace, decoding
// events one at a time: memory use is bounded by the heap model, not
// the trace length.
func RunReader(rd *trace.Reader, cfg Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	for {
		e, err := rd.Read()
		if err == io.EOF {
			return r.Finish(), nil
		}
		if err != nil {
			return nil, err
		}
		if err := r.Feed(e); err != nil {
			return nil, err
		}
	}
}
