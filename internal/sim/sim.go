// Package sim implements the paper's trace-driven garbage-collection
// simulation (Barrett & Zorn §5): allocation and deallocation events
// drive a model heap, scavenges are triggered at fixed allocation
// intervals, a threatening-boundary policy from internal/core chooses
// what to collect, and the free events serve as the liveness oracle.
//
// The machine model matches the paper's: a CPU executing a fixed
// number of instructions per second and a collector tracing a fixed
// number of bytes per second, so pause times are proportional to bytes
// traced and CPU overhead is total trace time over program run time.
//
// Run simulates an in-memory trace; RunReader streams events from a
// decoder so arbitrarily long traces simulate in constant memory;
// NewRunner exposes the incremental interface both are built on; and
// NewFleet shares the collector-independent trace bookkeeping (the
// "tape") across many runners so a fan-out replay pays for decoding,
// validation and liveness accounting once instead of once per
// collector.
package sim

import (
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/stats"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/vmem"
)

// Machine is the paper's simulated hardware: 10 MIPS, tracing
// 500 kilobytes per second.
type Machine struct {
	MIPS          float64 // millions of instructions per second
	TraceBytesPer float64 // bytes the collector traces per second
}

// PaperMachine returns the machine model used throughout the paper's
// evaluation.
func PaperMachine() Machine {
	return Machine{MIPS: 10, TraceBytesPer: 500 * 1024}
}

// isZero reports whether the machine model was left unset. The bit
// test (not ==) keeps the sentinel exact: struct equality on float
// fields would also match -0 and miss nothing here today, but the
// module-wide rule is that float equality goes through Float64bits.
func (m Machine) isZero() bool {
	return math.Float64bits(m.MIPS) == 0 && math.Float64bits(m.TraceBytesPer) == 0
}

// Validate reports why the machine model is unusable, or nil. Both
// rates divide measurements (Seconds, PauseSeconds), so a zero,
// negative or non-finite rate would silently turn every derived
// metric into Inf or NaN; the zero Machine is exempt because
// Config.withDefaults replaces it with PaperMachine before any
// division happens.
func (m Machine) Validate() error {
	if !(m.MIPS > 0) || math.IsInf(m.MIPS, 0) {
		return fmt.Errorf("sim: Machine.MIPS must be positive and finite, got %v", m.MIPS)
	}
	if !(m.TraceBytesPer > 0) || math.IsInf(m.TraceBytesPer, 0) {
		return fmt.Errorf("sim: Machine.TraceBytesPer must be positive and finite, got %v", m.TraceBytesPer)
	}
	return nil
}

// Seconds converts an instruction count to wall time on this machine.
func (m Machine) Seconds(instrs uint64) float64 {
	return float64(instrs) / (m.MIPS * 1e6)
}

// PauseSeconds converts traced bytes to a collection pause.
func (m Machine) PauseSeconds(tracedBytes uint64) float64 {
	return float64(tracedBytes) / m.TraceBytesPer
}

// Mode selects what the run measures.
type Mode int

const (
	// ModePolicy runs a collector driven by Config.Policy.
	ModePolicy Mode = iota
	// ModeNoGC never collects: memory is cumulative allocation (the
	// paper's "No GC" row).
	ModeNoGC
	// ModeLive reclaims at the moment of death: memory is the exact
	// live-byte curve (the paper's "Live" row).
	ModeLive
)

// Config parameterizes one simulation run.
type Config struct {
	Mode         Mode
	Policy       core.Policy // required for ModePolicy
	Machine      Machine     // zero value replaced by PaperMachine
	TriggerBytes uint64      // scavenge interval; zero value = 1 MB
	RecordCurve  bool        // retain the Figure-2 memory series
	CurvePoints  int         // downsample limit for curves (0 = keep all)

	// PolicySeed seeds adaptive policies (core.AdaptivePolicy): the
	// per-run instance seed is derived deterministically from this
	// value, Label and the collector name, so every replay path —
	// solo, fleet fan-out, streamed, checkpoint/resume — instantiates
	// identical state for the same configuration. Zero is a valid
	// seed. Pure policies ignore it.
	PolicySeed uint64

	// PageFrames, when non-zero, enables the virtual-memory model: an
	// LRU resident set of that many PageBytes-sized frames is driven
	// by mutator and collector touches, and the Result reports fault
	// counts — the locality axis generational collection was built
	// for. Objects are placed at bump addresses; scavenge survivors
	// are rewritten to fresh addresses (copying semantics), which is
	// what gives partial collection its locality advantage.
	PageFrames int
	// PageBytes defaults to 4096 when PageFrames is set.
	PageBytes uint64

	// ReferenceScan routes every boundary query (LiveBytesBornAfter)
	// through the O(live objects) reference tail scan instead of the
	// birth-epoch bucket accounting. The two are identical by
	// construction — the differential oracle (internal/audit) replays
	// one side of its comparison on this path to keep them provably
	// so. Queries run only at policy decisions, so even the naive scan
	// costs little; leave this off outside audits and debugging.
	ReferenceScan bool

	// UncompactedTape disables epoch-based compaction of dead tape
	// prefixes (see compact.go), pinning every object the trace ever
	// allocated in the tape for the whole run — the pre-compaction
	// memory profile. Compaction is invisible by construction; the
	// audit oracle replays its reference leg on this path to keep it
	// provably so. In a Fleet the tape is shared, so one config with
	// this set disables compaction for every runner in the fleet.
	UncompactedTape bool

	// Opportunistic enables Wilson & Moher-style scheduling on the
	// "when to collect" axis the paper contrasts with its own "what
	// to collect" contribution (§4): a Mark event in the trace — a
	// program quiescent point such as the end of a compilation pass
	// or a showpage — triggers a scavenge early, once at least half
	// the byte trigger has accumulated. The byte trigger still fires
	// as a backstop, so memory stays bounded on mark-free traces.
	Opportunistic bool

	// Probe, when non-nil, receives the run's telemetry events (see
	// Probe). Telemetry observes, never influences: a run's result is
	// identical with or without a probe attached, and a nil probe
	// costs the hot path nothing.
	Probe Probe
	// Label tags every event this run emits, so one sink can demux
	// several concurrent runs. Empty is fine for single runs.
	Label string
	// ProgressBytes sets the allocation interval between Progress
	// events; zero means 4 MB. Progress events are only produced when
	// a Probe is attached.
	ProgressBytes uint64
}

func (c Config) withDefaults() Config {
	if c.Machine.isZero() {
		c.Machine = PaperMachine()
	}
	if c.TriggerBytes == 0 {
		c.TriggerBytes = 1 << 20
	}
	if c.PageFrames > 0 && c.PageBytes == 0 {
		c.PageBytes = 4096
	}
	if c.ProgressBytes == 0 {
		c.ProgressBytes = 4 << 20
	}
	return c
}

// Validate reports why the configuration cannot run, or nil. It
// checks the post-default view of the config, so a zero Machine (to
// be replaced by PaperMachine) is valid while a half-filled one is
// not. NewRunner validates implicitly; replay harnesses call this to
// reject a whole config set before any runner has emitted telemetry.
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	switch c.Mode {
	case ModePolicy:
		if c.Policy == nil {
			return errors.New("sim: ModePolicy requires a Policy")
		}
	case ModeNoGC, ModeLive:
	default:
		return fmt.Errorf("sim: unknown mode %d", c.Mode)
	}
	return nil
}

// Result reports everything the paper's tables and figures need from
// one run.
type Result struct {
	Collector string // policy name, "NoGC" or "Live"

	// Table 2: memory (bytes; time-weighted mean over the run and max).
	MemMeanBytes float64
	MemMaxBytes  float64

	// Oracle live-byte statistics for the same run (the "Live" row and
	// tenured-garbage analysis).
	LiveMeanBytes float64
	LiveMaxBytes  float64

	// Table 3: pause times, seconds, one per scavenge.
	Pauses []float64

	// Table 4: total bytes traced and estimated CPU overhead.
	TracedTotalBytes uint64
	OverheadPct      float64

	Collections int
	TotalAlloc  uint64  // total bytes allocated by the program
	ExecSeconds float64 // program execution time on the machine model

	// Figure 2: memory-in-use and live-bytes series over the
	// allocation clock (nil unless Config.RecordCurve).
	Curve     *stats.Series
	LiveCurve *stats.Series

	// Virtual-memory model results (zero unless Config.PageFrames).
	PageFaults   uint64
	PageAccesses uint64

	// Full per-scavenge history (boundaries, traced, survivors).
	History core.History
}

// MedianPauseSeconds returns the median pause, 0 if no collections ran.
func (r *Result) MedianPauseSeconds() float64 { return stats.Percentile(r.Pauses, 50) }

// P90PauseSeconds returns the 90th-percentile pause.
func (r *Result) P90PauseSeconds() float64 { return stats.Percentile(r.Pauses, 90) }

// TenuredGarbageMeanBytes is the time-weighted mean of dead storage
// held in memory: what the collector's policy left unreclaimed above
// the oracle live floor.
func (r *Result) TenuredGarbageMeanBytes() float64 { return r.MemMeanBytes - r.LiveMeanBytes }

// birthBucketShift sizes the birth-epoch buckets behind
// LiveBytesBornAfter: 64 KB of allocation clock per bucket. Wider
// buckets shrink the bucket array but lengthen the partial scan at
// the boundary's own bucket; 64 KB keeps both small for paper-scale
// runs (a 100 MB trace is ~1600 buckets).
const birthBucketShift = 16

// birthBucket maps a clock reading to its birth-epoch bucket. The
// bucket index stays uint64 end to end: converting to int here would
// silently truncate on 32-bit platforms for clocks past 256 GB.
// Conversion to a slice index happens only after subtracting the
// tape's bucketBase and checking the result against maxBuckets.
func birthBucket(t core.Time) uint64 { return t.Bytes() >> birthBucketShift }

// resolved is one trace event after tape resolution: object identity
// replaced by a dense ordinal, sizes and the allocation clock already
// computed, validation already done. Applying a resolved event to a
// runner touches no maps and cannot fail, which is what makes the
// fan-out apply loop tight.
type resolved struct {
	kind  trace.Kind
	ord   int32 // alloc: new ordinal; free/ptrwrite: target (-1 if unknown)
	size  uint64
	instr uint64
	clock core.Time // allocation clock after this event
}

// tape is the collector-independent view of a replayed trace: every
// fact that is identical no matter which policy is running — object
// identity, sizes, birth times, the program's free oracle, the
// allocation clock, event validation, and the live-byte accounting
// behind boundary queries. A Fleet shares one tape across all of its
// runners so this work happens once per trace instead of once per
// collector; a solo Runner owns a private tape.
//
// Objects are numbered by dense ordinals in allocation order,
// relative to a sliding base: epoch-based compaction (see compact.go)
// retires the prefix of ordinals whose whole birth cohort is dead and
// no runner can address again, shifting the per-ordinal arrays down
// and rebasing every retained ordinal, so the tape's footprint tracks
// the live set plus one birth epoch instead of the total number of
// objects the trace ever allocated. Retired trace IDs leave the index
// but stay summarized in a merged span set, so the validation
// contract survives compaction intact: trace IDs are unique for the
// lifetime of a trace (see trace.Validate), and an ID that reuses a
// retired object's number is still rejected as a duplicate
// allocation.
type tape struct {
	index  map[trace.ObjectID]int32
	ids    []trace.ObjectID // per ordinal: reverse of index, so retiring a prefix can delete its entries
	sizes  []uint64         // per ordinal
	births []core.Time      // per ordinal, nondecreasing
	dead   []bool           // per ordinal: freed by the program

	live uint64 // live bytes (the oracle)
	// liveByBirth[b-bucketBase] is the live bytes of objects born in
	// clock bucket b, maintained on every alloc and free. It makes
	// boundary queries (LiveBytesBornAfter, executed on every policy
	// decision and for every FEEDMED advance candidate) a partial scan
	// of one bucket plus a bucket-suffix sum instead of a tail scan
	// over all live objects. Compaction trims the all-dead prefix and
	// advances bucketBase; bucketBase never exceeds the clock's own
	// bucket, so the next alloc always lands at a valid index.
	liveByBirth []uint64
	bucketBase  uint64

	// Compaction state: whether it is enabled for this tape (off for
	// raw tapes, Config.UncompactedTape, and fleets whose vmem
	// baselines address every ordinal forever), the count of ordinals
	// retired behind the sliding base, the retired-ID summary, and the
	// event count at the last cadence check.
	compact          bool
	retiredOrds      uint64
	retired          idSpans
	trimmedBuckets   uint64
	lastCompactCheck int

	// Compaction tunables, fields so tests can tighten them; newTape
	// sets the package defaults. ordLimit caps the ordinals retained
	// at once (the int32 ordinal encoding's real limit — total objects
	// are unbounded once compaction slides the base); maxBuckets caps
	// the bucket span so the relative index always fits an int.
	checkEvery     int
	minRetire      int
	minTrimBuckets int
	ordLimit       int
	maxBuckets     uint64

	clock     core.Time
	lastInstr uint64
	events    int
}

func newTape() *tape {
	return &tape{
		index:          make(map[trace.ObjectID]int32),
		checkEvery:     compactCheckEvery,
		minRetire:      compactMinRetire,
		minTrimBuckets: compactMinTrimBuckets,
		ordLimit:       math.MaxInt32,
		maxBuckets:     1 << 31,
	}
}

// resolve validates one event against the tape and advances the shared
// state, filling out with the collector-independent facts runners need
// to apply it. A failed resolve leaves the tape untouched, so feeding
// can stop exactly at the offending event.
//
//dtbvet:hotpath one call per trace event, shared by every runner on the tape
func (tp *tape) resolve(e trace.Event, out *resolved) error {
	i := tp.events
	if e.Instr < tp.lastInstr {
		return fmt.Errorf("sim: event %d: clock regressed", i)
	}
	switch e.Kind {
	case trace.KindAlloc:
		if _, dup := tp.index[e.ID]; dup {
			return fmt.Errorf("sim: event %d: duplicate allocation of object %d", i, e.ID)
		}
		// An ID missing from the index may still have been seen and
		// retired by compaction; reusing it is the same trace defect.
		if len(tp.retired) > 0 && tp.retired.contains(e.ID) {
			return fmt.Errorf("sim: event %d: duplicate allocation of object %d", i, e.ID)
		}
		if len(tp.sizes) >= tp.ordLimit {
			return fmt.Errorf("sim: event %d: tape ordinal limit: %d objects retained at once", i, len(tp.sizes))
		}
		clock := tp.clock.Add(e.Size)
		b := birthBucket(clock)
		if b-tp.bucketBase >= tp.maxBuckets {
			return fmt.Errorf("sim: event %d: birth bucket %d out of range (base %d, limit %d buckets)", i, b, tp.bucketBase, tp.maxBuckets)
		}
		ord := int32(len(tp.sizes))
		tp.index[e.ID] = ord
		tp.clock = clock
		tp.ids = append(tp.ids, e.ID)
		tp.sizes = append(tp.sizes, e.Size)
		tp.births = append(tp.births, clock)
		tp.dead = append(tp.dead, false)
		tp.live += e.Size
		rb := int(b - tp.bucketBase)
		if rb >= len(tp.liveByBirth) {
			tp.liveByBirth = growBuckets(tp.liveByBirth, rb+1)
		}
		tp.liveByBirth[rb] += e.Size
		*out = resolved{kind: trace.KindAlloc, ord: ord, size: e.Size, instr: e.Instr, clock: clock}
	case trace.KindFree:
		ord, ok := tp.index[e.ID]
		if !ok {
			// A retired object was dead when it left the tape, so a free
			// of its ID is the double free it would have been before
			// compaction — same defect, same error.
			if len(tp.retired) > 0 && tp.retired.contains(e.ID) {
				return fmt.Errorf("sim: event %d: double free of object %d", i, e.ID)
			}
			return fmt.Errorf("sim: event %d: free of unknown object %d", i, e.ID)
		}
		if tp.dead[ord] {
			return fmt.Errorf("sim: event %d: double free of object %d", i, e.ID)
		}
		tp.dead[ord] = true
		size := tp.sizes[ord]
		tp.live -= size
		// A live object's bucket holds at least its own size, so it can
		// never be part of a trimmed (all-dead) prefix: the subtraction
		// index is always in range.
		tp.liveByBirth[birthBucket(tp.births[ord])-tp.bucketBase] -= size
		*out = resolved{kind: trace.KindFree, ord: ord, size: size, instr: e.Instr, clock: tp.clock}
	case trace.KindPtrWrite:
		// Pointer stores do not affect the oracle liveness; the target
		// ordinal is resolved here so the virtual-memory model can
		// touch it without a map lookup per runner. A retired ID misses
		// the index and resolves to unknown (-1) — observably identical
		// to the uncompacted tape, because retirement requires every
		// runner to have reclaimed the object already, and reclaimed
		// objects are not touched either way.
		ord, ok := tp.index[e.ID]
		if !ok {
			ord = -1
		}
		*out = resolved{kind: trace.KindPtrWrite, ord: ord, instr: e.Instr, clock: tp.clock}
	case trace.KindMark:
		*out = resolved{kind: trace.KindMark, ord: -1, instr: e.Instr, clock: tp.clock}
	default:
		return fmt.Errorf("sim: event %d: unknown kind %d", i, e.Kind)
	}
	tp.lastInstr = e.Instr
	tp.events++
	return nil
}

// liveBytesBornAfter is the bucketed boundary query over the tape.
// Reclaimed objects stay in the ordinal arrays with dead=true, which
// cannot change the sum — only live bytes count — so the query is
// identical for every runner sharing the tape regardless of how much
// each one has scavenged.
//
//dtbvet:hotpath consulted by every policy Boundary() call during replay
func (tp *tape) liveBytesBornAfter(t core.Time) uint64 {
	births := tp.births
	i := sort.Search(len(births), func(i int) bool { return births[i] > t })
	b := birthBucket(t)
	// Births sharing t's bucket need individual comparison — the
	// bucket sums only cover whole buckets. Later buckets hold only
	// births strictly after t, so their sums apply wholesale. The scan
	// ends on bucket identity, not a computed bucket-end clock: for
	// the final bucket of the clock space that end value would wrap
	// to zero and the scan would run over every retained birth.
	var sum uint64
	for ; i < len(births) && birthBucket(births[i]) == b; i++ {
		if !tp.dead[i] {
			sum += tp.sizes[i]
		}
	}
	// Bucket sums are stored relative to bucketBase. A query at or
	// below the trimmed prefix starts the suffix at the base: the
	// trimmed buckets hold no live bytes by construction.
	j := uint64(0)
	if b+1 > tp.bucketBase {
		j = b + 1 - tp.bucketBase
	}
	for ; j < uint64(len(tp.liveByBirth)); j++ {
		sum += tp.liveByBirth[j]
	}
	return sum
}

// growBuckets extends the bucket slice to length n in one sized step,
// zeroing any cells reused from capacity left behind by a prefix trim
// (the copy-down leaves stale sums past the new length).
func growBuckets(s []uint64, n int) []uint64 {
	if n <= cap(s) {
		old := len(s)
		s = s[:n]
		for i := old; i < n; i++ {
			s[i] = 0
		}
		return s
	}
	t := make([]uint64, n, max(n, 2*cap(s)))
	copy(t, s)
	return t
}

// liveBytesBornAfterNaive is the reference tail scan the bucket
// accounting replaced; the equivalence test pins the two together,
// and Config.ReferenceScan runs whole simulations on this path so the
// audit oracle can diff the results.
func (tp *tape) liveBytesBornAfterNaive(t core.Time) uint64 {
	births := tp.births
	i := sort.Search(len(births), func(i int) bool { return births[i] > t })
	var sum uint64
	for ; i < len(births); i++ {
		if !tp.dead[i] {
			sum += tp.sizes[i]
		}
	}
	return sum
}

// policyHeap is the core.Heap view a policy sees at a decision point:
// bytes-in-use are this runner's (reclamation timing is policy
// dependent) while live-byte queries come from the shared tape (the
// free oracle is policy independent).
type policyHeap struct{ r *Runner }

// BytesInUse implements core.Heap.
func (h policyHeap) BytesInUse() uint64 { return h.r.inUse }

// LiveBytesBornAfter implements core.Heap.
func (h policyHeap) LiveBytesBornAfter(t core.Time) uint64 {
	if h.r.cfg.ReferenceScan {
		return h.r.tape.liveBytesBornAfterNaive(t)
	}
	return h.r.tape.liveBytesBornAfter(t)
}

// Runner is the incremental simulation interface: feed events in trace
// order, then Finish. Run and RunReader are thin wrappers around it;
// Fleet drives many runners off one shared tape.
type Runner struct {
	cfg  Config
	res  *Result
	tape *tape
	view core.Heap // policyHeap, boxed once at construction
	// fleet marks a runner constructed by NewFleet: its tape is shared,
	// so events must arrive through Fleet.FeedBatch (a direct Feed
	// would advance the tape ahead of the sibling runners).
	fleet bool
	// tapeRunners is the runner set compaction must consult before
	// retiring tape prefixes: just this runner for a solo tape (set by
	// NewRunner), nil for fleet runners (the fleet drives compaction).
	tapeRunners []*Runner

	// Per-collector heap state. objs holds the ordinals of objects
	// present in this runner's heap (live or dead-but-unreclaimed), in
	// birth order; scavenge compacts it. Sizes, births and deadness
	// live on the tape.
	objs  []int32
	inUse uint64 // live + dead-but-unreclaimed bytes

	// instance is the per-run state of an adaptive policy, minted by
	// newRunner from the config-derived seed; nil for pure policies
	// and the NoGC/Live baselines. explain is the same instance's
	// optional telemetry view.
	instance core.PolicyInstance
	explain  core.DecisionExplainer

	// isPolicy/opportunistic/hasProbe cache config tests so the batch
	// apply loop branches on booleans instead of chasing cfg fields.
	isPolicy      bool
	opportunistic bool
	hasProbe      bool

	clock         core.Time
	sinceTrigger  uint64
	sinceProgress uint64
	memStat       stats.Weighted
	liveStat      stats.Weighted
	lastInstr     uint64
	nEvents       int
	curve         *stats.Series
	liveCurve     *stats.Series
	finished      bool

	// Virtual-memory model (nil unless configured). Placement is per
	// runner: survivors relocate at scavenges, so addresses diverge
	// between collectors after the first collection. present tracks
	// which ordinals are still in this runner's heap (pointer stores
	// to reclaimed objects touch nothing).
	pages    *vmem.Model
	nextAddr uint64
	addrs    []uint64
	present  []bool
}

// NewRunner validates the configuration and returns a Runner with a
// private tape, ready for events. The probe's RunStart fires only
// after validation succeeds, so a rejected config never opens a
// telemetry stream it cannot close.
func NewRunner(cfg Config) (*Runner, error) {
	tp := newTape()
	r, err := newRunner(tp, cfg, false)
	if err != nil {
		return nil, err
	}
	r.tapeRunners = []*Runner{r}
	tp.compact = tapeCompactionAllowed(r.tapeRunners)
	return r, nil
}

func newRunner(tp *tape, cfg Config, fleet bool) (*Runner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	switch cfg.Mode {
	case ModePolicy:
		res.Collector = cfg.Policy.Name()
	case ModeNoGC:
		res.Collector = "NoGC"
	case ModeLive:
		res.Collector = "Live"
	}
	r := &Runner{cfg: cfg, res: res, tape: tp, fleet: fleet}
	r.view = policyHeap{r}
	r.isPolicy = cfg.Mode == ModePolicy
	if r.isPolicy {
		if ap, ok := cfg.Policy.(core.AdaptivePolicy); ok {
			r.instance = ap.NewRun(derivePolicySeed(cfg.PolicySeed, cfg.Label, res.Collector))
			r.explain, _ = r.instance.(core.DecisionExplainer)
		}
	}
	r.opportunistic = r.isPolicy && cfg.Opportunistic
	r.hasProbe = cfg.Probe != nil
	if cfg.RecordCurve {
		r.curve = &stats.Series{Name: res.Collector}
		r.liveCurve = &stats.Series{Name: "Live"}
	}
	if cfg.PageFrames > 0 {
		r.pages = vmem.New(cfg.PageBytes, cfg.PageFrames)
	}
	if p := cfg.Probe; p != nil {
		p.RunStart(RunStart{
			Label:         cfg.Label,
			Collector:     res.Collector,
			Machine:       cfg.Machine,
			TriggerBytes:  cfg.TriggerBytes,
			ProgressBytes: cfg.ProgressBytes,
			Opportunistic: cfg.Opportunistic,
		})
	}
	return r, nil
}

// Collector returns the name the run's Result will carry ("Full",
// "DtbFM", "NoGC", ...). It is available from construction, so replay
// harnesses can label per-runner errors before Finish.
func (r *Runner) Collector() string { return r.res.Collector }

// PolicyInstance returns the runner's adaptive-policy state, or nil
// for pure policies and the baselines. It is exposed for checkpoint
// tooling and tests; mutating it mid-run breaks replay bit-identity
// unless the state is restored before feeding resumes, which is
// exactly what engine.Checkpoint does.
func (r *Runner) PolicyInstance() core.PolicyInstance { return r.instance }

// derivePolicySeed turns the user-facing PolicySeed into the per-run
// instance seed: FNV-1a over the label and collector name, folded
// with the user seed through a splitmix64 finalizer. Deriving from
// the config alone (never from run order or wall time) is what lets
// every replay path mint bit-identical instances.
func derivePolicySeed(userSeed uint64, label, collector string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	h *= prime // separator so ("ab","c") and ("a","bc") differ
	for i := 0; i < len(collector); i++ {
		h ^= uint64(collector[i])
		h *= prime
	}
	z := h ^ (userSeed + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *Runner) memInUse() uint64 {
	switch r.cfg.Mode {
	case ModeNoGC:
		return r.clock.Bytes() // cumulative allocation, frees ignored
	case ModeLive:
		return r.tape.live
	default:
		return r.inUse
	}
}

func (r *Runner) sample(instr uint64) {
	m := r.memInUse()
	r.memStat.Observe(float64(instr), float64(m))
	r.liveStat.Observe(float64(instr), float64(r.tape.live))
	if r.curve != nil {
		r.curve.Append(float64(r.clock), float64(m))
		r.liveCurve.Append(float64(r.clock), float64(r.tape.live))
	}
}

// errFeedAfterFinish and errFleetFeed are allocated once so the hot
// entry points return them without formatting.
var (
	errFeedAfterFinish = errors.New("sim: Feed after Finish")
	errFleetFeed       = errors.New("sim: Feed on a fleet runner (events arrive via Fleet.FeedBatch)")
)

// Feed processes one event. Events must arrive in trace order.
func (r *Runner) Feed(e trace.Event) error {
	if r.finished {
		return errFeedAfterFinish
	}
	if r.fleet {
		return errFleetFeed
	}
	var one [1]resolved
	if err := r.tape.resolve(e, &one[0]); err != nil {
		return err
	}
	r.apply(one[:])
	if tp := r.tape; tp.compact && tp.events-tp.lastCompactCheck >= tp.checkEvery {
		tp.maybeCompact(r.tapeRunners)
	}
	return nil
}

// FeedBatch processes a batch of events in trace order: the same
// observable behavior as calling Feed once per event, with the
// finished/ownership checks hoisted out of the per-event path. On
// error, events before the offending one have been applied.
func (r *Runner) FeedBatch(events []trace.Event) error {
	if r.finished {
		return errFeedAfterFinish
	}
	if r.fleet {
		return errFleetFeed
	}
	var one [1]resolved
	tp := r.tape
	for i := range events {
		if err := tp.resolve(events[i], &one[0]); err != nil {
			return err
		}
		r.apply(one[:])
		// The cadence gate keys on the event count alone, so compaction
		// points — and the checkpoint watermark — are independent of
		// how callers batch the stream.
		if tp.compact && tp.events-tp.lastCompactCheck >= tp.checkEvery {
			tp.maybeCompact(r.tapeRunners)
		}
	}
	return nil
}

// apply runs resolved events through this runner's collector. The
// events were validated by the tape, so apply cannot fail; everything
// per event here is per-collector work (memory accounting, trigger
// bookkeeping, sampling, scavenges).
//
//dtbvet:hotpath the per-runner batch apply loop of every replay
func (r *Runner) apply(batch []resolved) {
	for k := range batch {
		ev := &batch[k]
		r.nEvents++
		r.lastInstr = ev.instr
		switch ev.kind {
		case trace.KindAlloc:
			r.clock = ev.clock
			r.inUse += ev.size
			if r.isPolicy {
				r.objs = append(r.objs, ev.ord)
			}
			if r.pages != nil {
				addr := r.nextAddr
				r.nextAddr += ev.size
				r.addrs = append(r.addrs, addr)
				r.present = append(r.present, true)
				r.pages.Touch(addr, ev.size) // the mutator initializes it
			}
			r.sinceTrigger += ev.size
			r.sample(ev.instr)
			if r.isPolicy && r.sinceTrigger >= r.cfg.TriggerBytes {
				r.sinceTrigger = 0
				r.scavenge(TriggerByteBudget)
				r.sample(ev.instr)
			}
			if r.hasProbe {
				r.sinceProgress += ev.size
				if r.sinceProgress >= r.cfg.ProgressBytes {
					r.sinceProgress = 0
					r.cfg.Probe.Progress(Progress{
						Label:       r.cfg.Label,
						Events:      r.nEvents,
						Instr:       ev.instr,
						Clock:       r.clock,
						InUse:       r.memInUse(),
						Live:        r.tape.live,
						Collections: r.res.Collections,
					})
				}
			}
		case trace.KindFree:
			if r.pages != nil {
				// The object is necessarily still present: only dead
				// objects are reclaimed, and this one was live until
				// this very event.
				r.pages.Touch(r.addrs[ev.ord], ev.size) // last mutator access
			}
			r.sample(ev.instr)
		case trace.KindMark:
			if r.opportunistic && r.sinceTrigger >= r.cfg.TriggerBytes/2 {
				r.sinceTrigger = 0
				r.scavenge(TriggerMark)
				r.sample(ev.instr)
			}
		case trace.KindPtrWrite:
			// Pointer stores do not affect the oracle liveness, but they
			// do touch memory for the virtual-memory model.
			if r.pages != nil && ev.ord >= 0 && r.present[ev.ord] {
				r.pages.Touch(r.addrs[ev.ord], 8)
			}
		default:
			// Unreachable: resolve rejects unknown kinds.
		}
	}
}

//dtbvet:hotpath one call per simulated collection
func (r *Runner) scavenge(reason TriggerReason) {
	tp, cfg, res := r.tape, r.cfg, r.res
	memBefore := r.inUse
	var tb core.Time
	if r.instance != nil {
		tb = core.ClampBoundary(r.instance.Boundary(r.clock, &res.History, r.view), r.clock)
	} else {
		tb = core.ClampBoundary(cfg.Policy.Boundary(r.clock, &res.History, r.view), r.clock)
	}
	if p := cfg.Probe; p != nil {
		d := Decision{
			Label:      cfg.Label,
			N:          res.Collections + 1,
			Trigger:    reason,
			Now:        r.clock,
			TB:         tb,
			Candidates: boundaryCandidates(&res.History),
			MemBefore:  memBefore,
			LiveBefore: tp.live,
		}
		if r.explain != nil {
			if info, ok := r.explain.LastDecision(); ok {
				d.Adaptive = &AdaptiveDecision{Arm: info.Arm, FeatureDigest: info.FeatureDigest} //dtbvet:ignore hotalloc -- one tiny allocation per *collection* (not per event), only on adaptive runs with a probe; a scratch field would alias runner state into probes
			}
		}
		p.Decision(d)
	}
	// Collect with boundary tb: every dead object born after tb is
	// reclaimed, every live one born after tb is traced. objs is birth
	// ordered, so the threatened region is a suffix.
	births := tp.births
	objs := r.objs
	start := sort.Search(len(objs), func(i int) bool { return births[objs[i]] > tb })
	var traced, reclaimed uint64
	w := start
	for i := start; i < len(objs); i++ {
		ord := objs[i]
		size := tp.sizes[ord]
		if tp.dead[ord] {
			reclaimed += size
			r.inUse -= size
			if r.present != nil {
				r.present[ord] = false
			}
			continue
		}
		traced += size
		objs[w] = ord
		w++
	}
	r.objs = objs[:w]
	if r.pages != nil {
		// Copying semantics: every survivor of the threatened region
		// is read at its old address and written to a fresh one; the
		// collector never touches garbage.
		for i := start; i < len(r.objs); i++ {
			ord := r.objs[i]
			size := tp.sizes[ord]
			r.pages.Touch(r.addrs[ord], size)
			r.addrs[ord] = r.nextAddr
			r.nextAddr += size
			r.pages.Touch(r.addrs[ord], size)
		}
	}
	res.History.Record(core.Scavenge{
		T:         r.clock,
		TB:        tb,
		MemBefore: memBefore,
		Traced:    traced,
		Reclaimed: reclaimed,
		Surviving: r.inUse,
	})
	res.Collections++
	res.TracedTotalBytes += traced
	pause := cfg.Machine.PauseSeconds(traced)
	res.Pauses = append(res.Pauses, pause)
	if p := cfg.Probe; p != nil {
		p.Scavenge(ScavengeEvent{
			Label:          cfg.Label,
			N:              res.Collections,
			Trigger:        reason,
			T:              r.clock,
			TB:             tb,
			MemBefore:      memBefore,
			Traced:         traced,
			Reclaimed:      reclaimed,
			Surviving:      r.inUse,
			Live:           tp.live,
			TenuredGarbage: r.inUse - tp.live,
			PauseSeconds:   pause,
		})
	}
	if r.instance != nil {
		r.instance.Observe(core.ScavengeFacts{
			Scavenge:      res.History.Scavenges[len(res.History.Scavenges)-1],
			Live:          tp.live,
			MarkTriggered: reason == TriggerMark,
		})
	}
}

// Finish closes the run and returns the Result. It is idempotent.
func (r *Runner) Finish() *Result {
	if r.finished {
		return r.res
	}
	r.finished = true
	r.memStat.Finish(float64(r.lastInstr))
	r.liveStat.Finish(float64(r.lastInstr))
	res := r.res
	res.MemMeanBytes = r.memStat.Mean()
	res.MemMaxBytes = r.memStat.Max()
	res.LiveMeanBytes = r.liveStat.Mean()
	res.LiveMaxBytes = r.liveStat.Max()
	res.TotalAlloc = r.clock.Bytes()
	res.ExecSeconds = r.cfg.Machine.Seconds(r.lastInstr)
	if res.ExecSeconds > 0 {
		res.OverheadPct = 100 * r.cfg.Machine.PauseSeconds(res.TracedTotalBytes) / res.ExecSeconds
	}
	if r.pages != nil {
		res.PageFaults = r.pages.Faults()
		res.PageAccesses = r.pages.Accesses()
	}
	if r.cfg.RecordCurve {
		curve, liveCurve := r.curve, r.liveCurve
		if r.cfg.CurvePoints > 0 {
			curve = curve.Downsample(r.cfg.CurvePoints)
			liveCurve = liveCurve.Downsample(r.cfg.CurvePoints)
		}
		res.Curve = curve
		res.LiveCurve = liveCurve
	}
	if p := r.cfg.Probe; p != nil {
		p.RunFinish(RunFinish{Label: r.cfg.Label, Result: res})
	}
	return res
}

// Fleet runs many collectors over one trace, sharing the tape — the
// id→ordinal index, validation, the free oracle and the live-byte
// accounting — across all of them. Each batch is resolved once and
// then applied to every runner in a tight per-collector loop, so the
// per-event map and validation cost is paid once per trace instead of
// once per collector. Every runner's Result, History and telemetry
// sequence is bit-identical to a solo run over the same events.
type Fleet struct {
	tape     *tape
	runners  []*Runner
	finished bool
}

// NewFleet validates every config before constructing any runner (a
// bad config halfway through the set would otherwise leave earlier
// runners' telemetry streams opened but never finished), then builds
// the runners in config order on one shared tape.
func NewFleet(cfgs []Config) (*Fleet, error) {
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sim: config %d: %w", i, err)
		}
	}
	tp := newTape()
	f := &Fleet{tape: tp, runners: make([]*Runner, 0, len(cfgs))}
	seen := make(map[core.PolicyInstance]int)
	for i, cfg := range cfgs {
		r, err := newRunner(tp, cfg, true)
		if err != nil {
			return nil, err
		}
		if inst := r.instance; inst != nil && reflect.TypeOf(inst).Comparable() {
			// A shared instance would let one runner's learning leak into
			// another's decisions — the exact hazard the per-run contract
			// exists to prevent. NewRun must mint fresh state every call.
			if j, dup := seen[inst]; dup {
				return nil, fmt.Errorf("sim: configs %d and %d share one adaptive policy instance (%T): NewRun must mint a fresh instance per run", j, i, inst)
			}
			seen[inst] = i
		}
		f.runners = append(f.runners, r)
	}
	tp.compact = tapeCompactionAllowed(f.runners)
	return f, nil
}

// Runners returns the fleet's runners in config order. They are owned
// by the fleet: feed events through FeedBatch, not Runner.Feed.
func (f *Fleet) Runners() []*Runner { return f.runners }

// SnapshotPolicyState captures the adaptive-policy state of every
// runner, in config order: one opaque snapshot per runner, nil for
// runners whose policy is pure (or whose mode is not ModePolicy). The
// engine's checkpoints store these alongside the event count so a
// resumed replay restores the learned state the checkpoint saw rather
// than trusting whatever mutated in memory since.
func (f *Fleet) SnapshotPolicyState() [][]byte {
	out := make([][]byte, len(f.runners))
	for i, r := range f.runners {
		if r.instance != nil {
			out[i] = r.instance.Snapshot()
		}
	}
	return out
}

// RestorePolicyState restores the per-runner adaptive state captured
// by SnapshotPolicyState on the same fleet shape: the slice length and
// the nil/non-nil pattern must match the fleet's runners exactly. A
// failed restore leaves earlier runners restored — callers treat any
// error as fatal for the replay, so partial application is harmless.
func (f *Fleet) RestorePolicyState(snaps [][]byte) error {
	if len(snaps) != len(f.runners) {
		return fmt.Errorf("sim: policy state for %d runners cannot restore a fleet of %d", len(snaps), len(f.runners))
	}
	for i, snap := range snaps {
		inst := f.runners[i].instance
		switch {
		case snap == nil && inst == nil:
			// pure policy on both sides
		case snap == nil:
			return fmt.Errorf("sim: runner %d (%s) has adaptive state but the snapshot recorded none", i, f.runners[i].res.Collector)
		case inst == nil:
			return fmt.Errorf("sim: snapshot carries adaptive state for runner %d (%s) but its policy is pure", i, f.runners[i].res.Collector)
		default:
			if err := inst.Restore(snap); err != nil {
				return fmt.Errorf("sim: runner %d (%s): restore policy state: %w", i, f.runners[i].res.Collector, err)
			}
		}
	}
	return nil
}

// Events returns the number of events the fleet has processed.
func (f *Fleet) Events() int { return f.tape.events }

// FeedBatch resolves each event once against the shared tape and
// applies it to every runner in lockstep before resolving the next, so
// a runner's policy queries and samples see the tape exactly at the
// event being applied — the same state a solo run would see, which is
// what keeps fleet results bit-identical to per-event replays. The
// per-event map lookups and validation still happen once per event
// instead of once per runner, and the batch boundary hoists the
// finished check and the caller's cancellation check off the per-event
// path. On a validation error, every runner has applied exactly the
// events before the offending one — the fleet stays consistent, and
// the error is what Runner.Feed would have returned for that event.
//
//dtbvet:hotpath one call per replay batch: resolve once, apply N times
func (f *Fleet) FeedBatch(events []trace.Event) error {
	if f.finished {
		return errFeedAfterFinish
	}
	if len(f.runners) == 0 {
		return nil
	}
	var one [1]resolved
	tp := f.tape
	for i := range events {
		if err := tp.resolve(events[i], &one[0]); err != nil {
			return err
		}
		for _, r := range f.runners {
			r.apply(one[:])
		}
		// Event-count cadence, checked only after every runner applied
		// the event: compaction never moves ordinals between a resolve
		// and its applies, and the compaction schedule — hence the
		// checkpoint watermark — is independent of batch boundaries.
		if tp.compact && tp.events-tp.lastCompactCheck >= tp.checkEvery {
			tp.maybeCompact(f.runners)
		}
	}
	return nil
}

// Finish closes every runner and returns their Results in config
// order. It is idempotent.
func (f *Fleet) Finish() []*Result {
	f.finished = true
	results := make([]*Result, len(f.runners))
	for i, r := range f.runners {
		results[i] = r.Finish()
	}
	return results
}

// Run simulates one collector over a complete in-memory trace, feeding
// one event at a time — the per-event reference path the batched fleet
// is diffed against. The trace must be well-formed; Run reports the
// first inconsistency it hits as an error.
func Run(events []trace.Event, cfg Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		if err := r.Feed(e); err != nil {
			return nil, err
		}
	}
	return r.Finish(), nil
}

// RunReader simulates a collector over a streamed trace, decoding
// events one at a time: memory use is bounded by the heap model and
// the tape's per-object bookkeeping, not the trace length.
func RunReader(rd *trace.Reader, cfg Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	for {
		e, err := rd.Read()
		if err == io.EOF {
			return r.Finish(), nil
		}
		if err != nil {
			return nil, err
		}
		if err := r.Feed(e); err != nil {
			return nil, err
		}
	}
}
