package sim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// kb builds sizes in kilobytes for readability.
const kb = 1024

// tinyConfig scavenges every 10 KB so small hand-built traces trigger
// collections.
func tinyConfig(p core.Policy) Config {
	return Config{Policy: p, TriggerBytes: 10 * kb}
}

// churnTrace allocates n objects of size sz, freeing each after `hold`
// further allocations; a fraction survive forever.
func churnTrace(n int, sz uint64, hold int, permEvery int) []trace.Event {
	b := trace.NewBuilder()
	var pending []trace.ObjectID
	for i := 0; i < n; i++ {
		b.Advance(100)
		id := b.Alloc(sz)
		perm := permEvery > 0 && i%permEvery == 0
		if !perm {
			pending = append(pending, id)
		}
		if len(pending) > hold {
			b.Free(pending[0])
			pending = pending[1:]
		}
	}
	return b.Events()
}

func mustRun(t *testing.T, events []trace.Event, cfg Config) *Result {
	t.Helper()
	res, err := Run(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunRequiresPolicy(t *testing.T) {
	if _, err := Run(nil, Config{Mode: ModePolicy}); err == nil {
		t.Fatal("ModePolicy without policy accepted")
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	if _, err := Run(nil, Config{Mode: Mode(42)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunRejectsMalformedTraces(t *testing.T) {
	cases := [][]trace.Event{
		{trace.Alloc(1, 8, 0), trace.Alloc(1, 8, 1)},               // dup alloc
		{trace.Free(9, 0)},                                         // free unknown
		{trace.Alloc(1, 8, 0), trace.Free(1, 1), trace.Free(1, 2)}, // double free
		{trace.Alloc(1, 8, 10), trace.Alloc(2, 8, 5)},              // clock regression
		{{Kind: trace.Kind(99)}},                                   // unknown kind
	}
	for i, events := range cases {
		if _, err := Run(events, tinyConfig(core.Full{})); err == nil {
			t.Errorf("case %d: malformed trace accepted", i)
		}
	}
}

func TestNoGCMemoryIsCumulativeAllocation(t *testing.T) {
	events := churnTrace(100, kb, 2, 0)
	res := mustRun(t, events, Config{Mode: ModeNoGC})
	if res.Collector != "NoGC" {
		t.Errorf("collector name %q", res.Collector)
	}
	if res.MemMaxBytes != float64(100*kb) {
		t.Errorf("NoGC max = %v, want %v", res.MemMaxBytes, 100*kb)
	}
	if res.Collections != 0 || len(res.Pauses) != 0 {
		t.Error("NoGC ran collections")
	}
	// Linear growth: mean should be close to half the max.
	if res.MemMeanBytes < 0.4*res.MemMaxBytes || res.MemMeanBytes > 0.6*res.MemMaxBytes {
		t.Errorf("NoGC mean %v vs max %v: expected ~half", res.MemMeanBytes, res.MemMaxBytes)
	}
}

func TestLiveModeTracksOracle(t *testing.T) {
	// Hold 3 objects of 1 KB: steady-state live is ~4 KB (3 pending + the new one).
	events := churnTrace(200, kb, 3, 0)
	res := mustRun(t, events, Config{Mode: ModeLive})
	if res.MemMaxBytes != res.LiveMaxBytes || res.MemMeanBytes != res.LiveMeanBytes {
		t.Errorf("Live mode memory (%v/%v) should equal oracle (%v/%v)",
			res.MemMeanBytes, res.MemMaxBytes, res.LiveMeanBytes, res.LiveMaxBytes)
	}
	if res.MemMaxBytes > float64(5*kb) {
		t.Errorf("Live max = %v, want <= 5KB", res.MemMaxBytes)
	}
}

func TestFullCollectorReclaimsAllGarbage(t *testing.T) {
	events := churnTrace(300, kb, 2, 0)
	res := mustRun(t, events, tinyConfig(core.Full{}))
	if res.Collections == 0 {
		t.Fatal("no collections ran")
	}
	for _, s := range res.History.Scavenges {
		if s.TB != 0 {
			t.Fatalf("Full used boundary %d", s.TB)
		}
		// After a full scavenge nothing dead remains: surviving ==
		// live == traced.
		if s.Surviving != s.Traced {
			t.Fatalf("scavenge %d: surviving %d != traced %d after full collection", s.N, s.Surviving, s.Traced)
		}
	}
}

func TestCollectionCountMatchesTrigger(t *testing.T) {
	// 300 KB allocated, trigger every 10 KB => exactly 30 scavenges.
	events := churnTrace(300, kb, 2, 0)
	res := mustRun(t, events, tinyConfig(core.Full{}))
	if res.Collections != 30 {
		t.Fatalf("collections = %d, want 30", res.Collections)
	}
	if len(res.Pauses) != 30 {
		t.Fatalf("pauses = %d, want 30", len(res.Pauses))
	}
	if res.TotalAlloc != 300*kb {
		t.Fatalf("TotalAlloc = %d", res.TotalAlloc)
	}
}

func TestPausesProportionalToTraced(t *testing.T) {
	events := churnTrace(300, kb, 5, 0)
	res := mustRun(t, events, tinyConfig(core.Full{}))
	m := PaperMachine()
	var total uint64
	for i, s := range res.History.Scavenges {
		want := m.PauseSeconds(s.Traced)
		if math.Abs(res.Pauses[i]-want) > 1e-12 {
			t.Fatalf("pause %d = %v, want %v", i, res.Pauses[i], want)
		}
		total += s.Traced
	}
	if total != res.TracedTotalBytes {
		t.Fatalf("traced total %d != sum of scavenges %d", res.TracedTotalBytes, total)
	}
}

func TestFixed1AccumulatesTenuredGarbage(t *testing.T) {
	// Objects live long enough to survive exactly one scavenge, then
	// die: under Fixed1 they are tenured and never reclaimed, so
	// memory grows; under Full they are reclaimed.
	events := churnTrace(500, kb, 15, 0) // lifetime 15 KB > 10 KB trigger
	full := mustRun(t, events, tinyConfig(core.Full{}))
	fixed1 := mustRun(t, events, tinyConfig(core.Fixed{K: 1}))
	if fixed1.MemMaxBytes <= full.MemMaxBytes {
		t.Errorf("Fixed1 max %v should exceed Full max %v (tenured garbage)",
			fixed1.MemMaxBytes, full.MemMaxBytes)
	}
	if fixed1.TracedTotalBytes >= full.TracedTotalBytes {
		t.Errorf("Fixed1 traced %d should be below Full traced %d",
			fixed1.TracedTotalBytes, full.TracedTotalBytes)
	}
	// Unbounded growth: memory at the end approaches total allocation
	// of the dead-after-tenure objects.
	lastS := fixed1.History.Scavenges[len(fixed1.History.Scavenges)-1]
	if lastS.Surviving < uint64(full.MemMaxBytes) {
		t.Errorf("Fixed1 final surviving %d suspiciously small", lastS.Surviving)
	}
}

func TestFixed4BetweenFullAndFixed1(t *testing.T) {
	events := churnTrace(800, kb, 15, 0)
	full := mustRun(t, events, tinyConfig(core.Full{}))
	fixed1 := mustRun(t, events, tinyConfig(core.Fixed{K: 1}))
	fixed4 := mustRun(t, events, tinyConfig(core.Fixed{K: 4}))
	if !(full.MemMeanBytes <= fixed4.MemMeanBytes+1 && fixed4.MemMeanBytes <= fixed1.MemMeanBytes+1) {
		t.Errorf("memory ordering violated: full %v, fixed4 %v, fixed1 %v",
			full.MemMeanBytes, fixed4.MemMeanBytes, fixed1.MemMeanBytes)
	}
	if !(fixed1.TracedTotalBytes <= fixed4.TracedTotalBytes && fixed4.TracedTotalBytes <= full.TracedTotalBytes) {
		t.Errorf("overhead ordering violated: full %d, fixed4 %d, fixed1 %d",
			full.TracedTotalBytes, fixed4.TracedTotalBytes, fixed1.TracedTotalBytes)
	}
}

func TestMemoryNeverBelowLive(t *testing.T) {
	events := churnTrace(400, kb, 7, 10)
	for _, p := range []core.Policy{core.Full{}, core.Fixed{K: 1}, core.DtbFM{TraceMax: 20 * kb}, core.DtbMem{MemMax: 50 * kb}} {
		res := mustRun(t, events, tinyConfig(p))
		if res.MemMeanBytes < res.LiveMeanBytes-1e-9 {
			t.Errorf("%s: mean memory %v below live %v", p.Name(), res.MemMeanBytes, res.LiveMeanBytes)
		}
		if res.MemMaxBytes < res.LiveMaxBytes-1e-9 {
			t.Errorf("%s: max memory %v below live %v", p.Name(), res.MemMaxBytes, res.LiveMaxBytes)
		}
	}
}

func TestDtbMemRespectsFeasibleConstraint(t *testing.T) {
	// Live steady state ~8 KB; give DtbMem 40 KB. Max memory should
	// stay at or under the constraint plus one trigger interval of
	// fresh allocation (the collector only acts at scavenge points).
	events := churnTrace(2000, kb, 7, 0)
	budget := uint64(40 * kb)
	res := mustRun(t, events, tinyConfig(core.DtbMem{MemMax: budget}))
	slack := float64(budget + 10*kb)
	if res.MemMaxBytes > slack {
		t.Errorf("DtbMem max memory %v exceeds budget+trigger %v", res.MemMaxBytes, slack)
	}
}

func TestDtbMemOverConstrainedDegradesTowardFull(t *testing.T) {
	// Live bytes exceed the budget: DtbMem cannot meet it and should
	// approach Full's memory behaviour (within ~10%), per §6.1.
	events := churnTrace(2000, kb, 50, 4) // large live component
	full := mustRun(t, events, tinyConfig(core.Full{}))
	dtb := mustRun(t, events, tinyConfig(core.DtbMem{MemMax: 5 * kb}))
	if dtb.MemMaxBytes > full.MemMaxBytes*1.10 {
		t.Errorf("over-constrained DtbMem max %v not within 10%% of Full %v",
			dtb.MemMaxBytes, full.MemMaxBytes)
	}
}

func TestDtbMemUnconstrainedMatchesFixed1Overhead(t *testing.T) {
	events := churnTrace(2000, kb, 7, 0)
	fixed1 := mustRun(t, events, tinyConfig(core.Fixed{K: 1}))
	dtb := mustRun(t, events, tinyConfig(core.DtbMem{MemMax: 1 << 30}))
	if dtb.TracedTotalBytes > fixed1.TracedTotalBytes*12/10 {
		t.Errorf("unconstrained DtbMem traced %d, want within 20%% of Fixed1 %d",
			dtb.TracedTotalBytes, fixed1.TracedTotalBytes)
	}
}

func TestDtbFMMedianNearTarget(t *testing.T) {
	// Plenty of reclaimable middle-aged storage: DtbFM should push its
	// median traced volume toward TraceMax.
	events := churnTrace(5000, kb, 25, 0)
	target := uint64(20 * kb)
	res := mustRun(t, events, tinyConfig(core.DtbFM{TraceMax: target}))
	med := res.MedianPauseSeconds()
	want := PaperMachine().PauseSeconds(target)
	if med < want*0.5 || med > want*1.5 {
		t.Errorf("DtbFM median pause %v, want within 50%% of target %v", med, want)
	}
}

func TestDtbFMUsesLessMemoryThanFeedMed(t *testing.T) {
	// The Espresso effect (§6.2): an allocation burst forces FeedMed
	// to advance the boundary, tenuring medium-lived objects that die
	// shortly after; FeedMed can never move the boundary back, so the
	// quiet phase that follows leaves that garbage in place forever.
	// DtbFM sees its pauses drop below the budget and widens the
	// window back, reclaiming it.
	r := xrand.New(7)
	b := trace.NewBuilder()
	type death struct {
		id trace.ObjectID
		at int
	}
	var deaths []death
	step := func(i int, life int) {
		b.Advance(100)
		id := b.Alloc(kb)
		deaths = append(deaths, death{id, i + life})
		for k := 0; k < len(deaths); {
			if deaths[k].at <= i {
				b.Free(deaths[k].id)
				deaths = append(deaths[:k], deaths[k+1:]...)
			} else {
				k++
			}
		}
	}
	i := 0
	// Burst: 300 KB of medium-lived data (dies ~35 KB of allocation
	// later, i.e. after tenure under a 15 KB trace budget).
	for ; i < 300; i++ {
		step(i, 30+r.Intn(10))
	}
	// Quiet phase: 4 MB of short-lived churn.
	for ; i < 4300; i++ {
		step(i, 2+r.Intn(3))
	}
	events := b.Events()
	target := uint64(15 * kb)
	fm := mustRun(t, events, tinyConfig(core.FeedMed{TraceMax: target}))
	dtb := mustRun(t, events, tinyConfig(core.DtbFM{TraceMax: target}))
	if dtb.MemMeanBytes >= fm.MemMeanBytes {
		t.Errorf("DtbFM mean memory %v should beat FeedMed %v", dtb.MemMeanBytes, fm.MemMeanBytes)
	}
	// And its median pause should land nearer the target from below.
	fmMed, dtbMed := fm.MedianPauseSeconds(), dtb.MedianPauseSeconds()
	want := PaperMachine().PauseSeconds(target)
	if math.Abs(dtbMed-want) > math.Abs(fmMed-want) {
		t.Errorf("DtbFM median %v further from target %v than FeedMed %v", dtbMed, want, fmMed)
	}
}

func TestCurveRecording(t *testing.T) {
	events := churnTrace(300, kb, 2, 0)
	res := mustRun(t, events, Config{Policy: core.Full{}, TriggerBytes: 10 * kb, RecordCurve: true})
	if res.Curve == nil || res.LiveCurve == nil {
		t.Fatal("curves not recorded")
	}
	if len(res.Curve.Points) == 0 {
		t.Fatal("empty memory curve")
	}
	// Memory curve must dominate live curve at every sampled time.
	for _, p := range res.Curve.Points {
		if p.V+1e-9 < res.LiveCurve.At(p.T) {
			t.Fatalf("memory %v below live %v at t=%v", p.V, res.LiveCurve.At(p.T), p.T)
		}
	}
}

func TestCurveDownsampling(t *testing.T) {
	events := churnTrace(300, kb, 2, 0)
	res := mustRun(t, events, Config{Policy: core.Full{}, TriggerBytes: 10 * kb, RecordCurve: true, CurvePoints: 16})
	if len(res.Curve.Points) > 16 {
		t.Fatalf("curve has %d points, want <= 16", len(res.Curve.Points))
	}
}

func TestNoCurveByDefault(t *testing.T) {
	events := churnTrace(50, kb, 2, 0)
	res := mustRun(t, events, tinyConfig(core.Full{}))
	if res.Curve != nil || res.LiveCurve != nil {
		t.Fatal("curves recorded without RecordCurve")
	}
}

func TestExecSecondsFromMachineModel(t *testing.T) {
	b := trace.NewBuilder()
	b.Alloc(kb)
	b.Advance(20e6) // 20M instructions = 2 s at 10 MIPS
	b.Alloc(kb)
	res := mustRun(t, b.Events(), Config{Mode: ModeNoGC})
	if math.Abs(res.ExecSeconds-2.0) > 1e-9 {
		t.Fatalf("ExecSeconds = %v, want 2.0", res.ExecSeconds)
	}
}

func TestOverheadComputation(t *testing.T) {
	// One full scavenge of 50 KB live data on the paper machine:
	// pause = 50*1024/512000 = 0.1 s. Exec 1 s => 10% overhead.
	b := trace.NewBuilder()
	for i := 0; i < 50; i++ {
		b.Advance(200_000)
		b.Alloc(kb)
	}
	res := mustRun(t, b.Events(), Config{Policy: core.Full{}, TriggerBytes: 50 * kb})
	if res.Collections != 1 {
		t.Fatalf("collections = %d, want 1", res.Collections)
	}
	// 50 KB traced at 500 KB/s = 0.1 s over 50*200k instr = 1 s exec.
	if math.Abs(res.OverheadPct-10.0) > 0.1 {
		t.Fatalf("overhead = %v%%, want ~10%%", res.OverheadPct)
	}
}

func TestHistoryRecordsSurviving(t *testing.T) {
	events := churnTrace(100, kb, 3, 0)
	res := mustRun(t, events, tinyConfig(core.Fixed{K: 1}))
	for _, s := range res.History.Scavenges {
		if s.Surviving > s.MemBefore {
			t.Fatalf("scavenge %d: surviving %d exceeds memory before %d", s.N, s.Surviving, s.MemBefore)
		}
		if s.MemBefore-s.Surviving != s.Reclaimed {
			t.Fatalf("scavenge %d: reclaimed %d inconsistent (before %d after %d)",
				s.N, s.Reclaimed, s.MemBefore, s.Surviving)
		}
	}
}

func TestScavengeConservation(t *testing.T) {
	// Property over random traces: traced + reclaimed <= memBefore and
	// surviving = memBefore - reclaimed at every scavenge, for every
	// policy.
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		b := trace.NewBuilder()
		var live []trace.ObjectID
		for i := 0; i < 1500; i++ {
			b.Advance(uint64(r.Intn(500)))
			if len(live) > 0 && r.Bool(0.45) {
				k := r.Intn(len(live))
				b.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			} else {
				live = append(live, b.Alloc(uint64(r.Range(16, 2048))))
			}
		}
		for _, p := range []core.Policy{core.Full{}, core.Fixed{K: 2}, core.DtbFM{TraceMax: 4 * kb}, core.DtbMem{MemMax: 30 * kb}} {
			res, err := Run(b.Events(), Config{Policy: p, TriggerBytes: 8 * kb})
			if err != nil {
				return false
			}
			for _, s := range res.History.Scavenges {
				if s.Traced+s.Reclaimed > s.MemBefore {
					return false
				}
				if s.Surviving != s.MemBefore-s.Reclaimed {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFullIsMemoryOptimalAmongPolicies(t *testing.T) {
	// Property: no policy uses less max memory than Full on the same
	// trace (Full reclaims everything reclaimable at each trigger).
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		b := trace.NewBuilder()
		var live []trace.ObjectID
		for i := 0; i < 2000; i++ {
			b.Advance(50)
			if len(live) > 0 && r.Bool(0.48) {
				k := r.Intn(len(live))
				b.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			} else {
				live = append(live, b.Alloc(uint64(r.Range(16, 1024))))
			}
		}
		full, err := Run(b.Events(), Config{Policy: core.Full{}, TriggerBytes: 8 * kb})
		if err != nil {
			return false
		}
		for _, p := range []core.Policy{core.Fixed{K: 1}, core.Fixed{K: 4}, core.FeedMed{TraceMax: 4 * kb}, core.DtbFM{TraceMax: 4 * kb}, core.DtbMem{MemMax: 20 * kb}} {
			res, err := Run(b.Events(), Config{Policy: p, TriggerBytes: 8 * kb})
			if err != nil {
				return false
			}
			if res.MemMaxBytes < full.MemMaxBytes-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestMachineModelHelpers(t *testing.T) {
	m := PaperMachine()
	if m.Seconds(10e6) != 1 {
		t.Errorf("Seconds(10e6) = %v", m.Seconds(10e6))
	}
	if got := m.PauseSeconds(50 * 1024); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("PauseSeconds(50KB) = %v, want 0.1", got)
	}
}

func TestResultPercentileHelpers(t *testing.T) {
	r := &Result{Pauses: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	if r.MedianPauseSeconds() != 5.5 {
		t.Errorf("median = %v", r.MedianPauseSeconds())
	}
	if r.P90PauseSeconds() != 9.1 {
		t.Errorf("p90 = %v", r.P90PauseSeconds())
	}
	empty := &Result{}
	if empty.MedianPauseSeconds() != 0 || empty.P90PauseSeconds() != 0 {
		t.Error("empty pauses should give 0 percentiles")
	}
}
