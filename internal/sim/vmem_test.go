package sim

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/workload"
)

func TestPageModelDisabledByDefault(t *testing.T) {
	events := churnTrace(200, kb, 3, 0)
	res := mustRun(t, events, tinyConfig(core.Full{}))
	if res.PageFaults != 0 || res.PageAccesses != 0 {
		t.Fatal("page counters nonzero without PageFrames")
	}
}

func TestPageModelCountsFaults(t *testing.T) {
	events := churnTrace(500, kb, 3, 0)
	cfg := tinyConfig(core.Full{})
	cfg.PageFrames = 16
	res := mustRun(t, events, cfg)
	if res.PageFaults == 0 || res.PageAccesses == 0 {
		t.Fatal("page model recorded nothing")
	}
	if res.PageFaults > res.PageAccesses {
		t.Fatal("more faults than accesses")
	}
}

func TestGenerationalCollectionReducesFaultRate(t *testing.T) {
	// The §2 claim the whole field rests on: partial collection
	// touches less memory per scavenge than full collection, so with a
	// constrained resident set the full collector faults more. GHOST
	// has the long-lived data that makes the difference visible.
	events := workload.Ghost1().Scale(0.1).MustGenerate()
	base := Config{TriggerBytes: 100 * kb, PageFrames: 64} // 256 KB resident
	full := base
	full.Policy = core.Full{}
	fixed1 := base
	fixed1.Policy = core.Fixed{K: 1}
	fr := mustRun(t, events, full)
	gr := mustRun(t, events, fixed1)
	if gr.PageFaults >= fr.PageFaults {
		t.Fatalf("Fixed1 faulted %d times, Full %d: generational locality advantage missing",
			gr.PageFaults, fr.PageFaults)
	}
}

func TestPageModelStreamingMatches(t *testing.T) {
	events := churnTrace(300, kb, 4, 5)
	cfg := tinyConfig(core.Fixed{K: 1})
	cfg.PageFrames = 8
	direct := mustRun(t, events, cfg)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := r.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	streamed := r.Finish()
	if direct.PageFaults != streamed.PageFaults || direct.PageAccesses != streamed.PageAccesses {
		t.Fatalf("incremental page counts diverged: %d/%d vs %d/%d",
			direct.PageFaults, direct.PageAccesses, streamed.PageFaults, streamed.PageAccesses)
	}
}
