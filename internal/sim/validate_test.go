package sim

import (
	"bytes"
	"math"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/trace"
)

func TestMachineValidate(t *testing.T) {
	bad := []Machine{
		{},                                     // zero MIPS and rate
		{MIPS: 0, TraceBytesPer: 500 * 1024},   // zero MIPS
		{MIPS: 10, TraceBytesPer: 0},           // zero rate
		{MIPS: -10, TraceBytesPer: 500 * 1024}, // negative MIPS
		{MIPS: 10, TraceBytesPer: -1},          // negative rate
		{MIPS: math.Inf(1), TraceBytesPer: 1},  // infinite MIPS
		{MIPS: 10, TraceBytesPer: math.Inf(1)}, // infinite rate
		{MIPS: math.NaN(), TraceBytesPer: 1},   // NaN MIPS
		{MIPS: 10, TraceBytesPer: math.NaN()},  // NaN rate
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Errorf("Machine %+v accepted", m)
		}
	}
	if err := PaperMachine().Validate(); err != nil {
		t.Errorf("paper machine rejected: %v", err)
	}
}

// halfMachine is the config mistake Validate exists for: a hand-built
// Machine with only one rate set, which before validation produced
// silent Inf/NaN pauses and overheads instead of an error.
var halfMachine = Machine{MIPS: 10}

func TestRunRejectsInvalidMachine(t *testing.T) {
	cfg := Config{Policy: core.Full{}, Machine: halfMachine}
	if _, err := Run(churnTrace(50, 256, 8, 0), cfg); err == nil {
		t.Fatal("half-built machine accepted by Run")
	}
}

func TestRunReaderRejectsInvalidMachine(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, churnTrace(50, 256, 8, 0)); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: core.Full{}, Machine: halfMachine}
	if _, err := RunReader(trace.NewReader(&buf), cfg); err == nil {
		t.Fatal("half-built machine accepted by RunReader")
	}
}

func TestZeroMachineStillDefaultsToPaper(t *testing.T) {
	res := mustRun(t, churnTrace(200, 512, 8, 0), tinyConfig(core.Full{}))
	if res.Collections == 0 {
		t.Fatal("no collections")
	}
	// Pauses on the paper machine: traced bytes / 500 KB/s, finite.
	for _, p := range res.Pauses {
		if math.IsInf(p, 0) || math.IsNaN(p) {
			t.Fatalf("pause %v on defaulted machine", p)
		}
	}
}

func TestRejectedConfigEmitsNoTelemetry(t *testing.T) {
	p := &recordingProbe{}
	cfg := Config{Policy: core.Full{}, Machine: halfMachine, Probe: p}
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
	if len(p.events) != 0 {
		t.Fatalf("rejected config emitted %d events; a stream was opened that can never close", len(p.events))
	}
}

func TestConfigValidateModes(t *testing.T) {
	if err := (Config{Mode: ModePolicy}).Validate(); err == nil {
		t.Error("ModePolicy without Policy accepted")
	}
	if err := (Config{Mode: ModeNoGC}).Validate(); err != nil {
		t.Errorf("ModeNoGC rejected: %v", err)
	}
	if err := (Config{Mode: ModeLive}).Validate(); err != nil {
		t.Errorf("ModeLive rejected: %v", err)
	}
	if err := (Config{Mode: Mode(99)}).Validate(); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestProbesFanOut(t *testing.T) {
	if Probes() != nil {
		t.Error("zero probes should combine to nil")
	}
	if Probes(nil, nil) != nil {
		t.Error("all-nil probes should combine to nil")
	}
	single := &recordingProbe{}
	if got := Probes(nil, single, nil); got != Probe(single) {
		t.Error("one live probe should be returned unwrapped")
	}
	a, b := &recordingProbe{}, &recordingProbe{}
	combined := Probes(a, b)
	cfg := tinyConfig(core.Fixed{K: 1})
	cfg.Probe = combined
	mustRun(t, churnTrace(200, 512, 8, 0), cfg)
	if len(a.events) == 0 {
		t.Fatal("first probe saw nothing")
	}
	if len(a.events) != len(b.events) {
		t.Fatalf("fan-out uneven: %d vs %d events", len(a.events), len(b.events))
	}
	for i := range a.events {
		if !eventsEqual(a.events[i], b.events[i]) {
			t.Fatalf("event %d diverged between fan-out members", i)
		}
	}
}

// eventsEqual compares probe events; RunFinish carries a shared
// pointer, so identity is the right comparison there.
func eventsEqual(x, y any) bool {
	if fx, ok := x.(RunFinish); ok {
		fy, ok := y.(RunFinish)
		return ok && fx.Label == fy.Label && fx.Result == fy.Result
	}
	switch xv := x.(type) {
	case RunStart:
		yv, ok := y.(RunStart)
		return ok && xv == yv
	case Decision:
		yv, ok := y.(Decision)
		if !ok || xv.Label != yv.Label || xv.N != yv.N || xv.Now != yv.Now || xv.TB != yv.TB {
			return false
		}
		return true
	case ScavengeEvent:
		yv, ok := y.(ScavengeEvent)
		return ok && xv == yv
	case Progress:
		yv, ok := y.(Progress)
		return ok && xv == yv
	}
	return false
}

func TestRunStartCarriesMachine(t *testing.T) {
	p := &recordingProbe{}
	cfg := tinyConfig(core.Full{})
	cfg.Probe = p
	mustRun(t, churnTrace(50, 256, 8, 0), cfg)
	start, ok := p.events[0].(RunStart)
	if !ok {
		t.Fatalf("first event %T, want RunStart", p.events[0])
	}
	if start.Machine != PaperMachine() {
		t.Fatalf("RunStart.Machine = %+v, want the defaulted paper machine", start.Machine)
	}
}
