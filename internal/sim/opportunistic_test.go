package sim

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// phasedTrace builds a workload whose storage dies in waves at marked
// quiescent points, like a compiler's per-pass data.
func phasedTrace(phases int, phaseKB int) []trace.Event {
	b := trace.NewBuilder()
	for p := 0; p < phases; p++ {
		var ids []trace.ObjectID
		for i := 0; i < phaseKB; i++ {
			b.Advance(100)
			ids = append(ids, b.Alloc(kb))
		}
		// The pass ends: everything dies, then the quiescent point.
		for _, id := range ids {
			b.Free(id)
		}
		b.Mark("pass end")
	}
	return b.Events()
}

func TestOpportunisticCollectsAtQuiescentPoints(t *testing.T) {
	events := phasedTrace(20, 8) // 8 KB phases, marks after mass death
	base := Config{Policy: core.Full{}, TriggerBytes: 10 * kb}
	opp := base
	opp.Opportunistic = true

	plain := mustRun(t, events, base)
	smart := mustRun(t, events, opp)

	// The opportunistic runs collect right after the mass deaths, so
	// scavenges trace almost nothing; the byte-triggered runs land
	// mid-phase and trace the pass's live storage.
	if smart.TracedTotalBytes >= plain.TracedTotalBytes {
		t.Fatalf("opportunistic traced %d, byte-trigger traced %d",
			smart.TracedTotalBytes, plain.TracedTotalBytes)
	}
	if smart.Collections == 0 {
		t.Fatal("no opportunistic collections ran")
	}
}

func TestOpportunisticHonoursMinimumWork(t *testing.T) {
	// Marks arriving before TriggerBytes/2 of allocation must not
	// trigger: a mark-spamming trace cannot force thrashing.
	b := trace.NewBuilder()
	for i := 0; i < 100; i++ {
		b.Advance(10)
		b.Alloc(64)
		b.Mark("spam")
	}
	res := mustRun(t, b.Events(), Config{Policy: core.Full{}, TriggerBytes: 1 << 20, Opportunistic: true})
	if res.Collections != 0 {
		t.Fatalf("mark spam triggered %d collections", res.Collections)
	}
}

func TestOpportunisticByteBackstopStillFires(t *testing.T) {
	// A mark-free trace collects on the byte trigger as usual.
	events := churnTrace(100, kb, 3, 0)
	res := mustRun(t, events, Config{Policy: core.Full{}, TriggerBytes: 10 * kb, Opportunistic: true})
	if res.Collections != 10 {
		t.Fatalf("collections = %d, want 10", res.Collections)
	}
}

func TestOpportunisticIgnoredOutsidePolicyMode(t *testing.T) {
	events := phasedTrace(5, 8)
	res := mustRun(t, events, Config{Mode: ModeNoGC, Opportunistic: true})
	if res.Collections != 0 {
		t.Fatal("baseline mode ran collections")
	}
}

func TestWorkloadPhasesEmitMarks(t *testing.T) {
	p := workload.Espresso2().Scale(0.05)
	events := p.MustGenerate()
	marks := 0
	for _, e := range events {
		if e.Kind == trace.KindMark {
			marks++
		}
	}
	// 5.2 MB run with 200 KB phases: ~25 marks.
	if marks < 10 {
		t.Fatalf("only %d phase marks in ESPRESSO(2) trace", marks)
	}
	if err := trace.Validate(events); err != nil {
		t.Fatal(err)
	}
}

func TestOpportunisticOnGeneratedPhaseWorkload(t *testing.T) {
	// A pass-heavy profile generated through internal/workload (so the
	// Mark emission path is exercised end to end): half of all bytes
	// are pass-local and die at the marked boundaries. Collecting at
	// the quiescent points traces less per scavenge and holds less
	// memory than mid-phase byte triggers.
	p := workload.Profile{
		Name: "PHASED", ExecSeconds: 2, TotalBytes: 4 << 20,
		MeanObject: 64, Seed: 3, PhaseBytes: 256 * kb,
		Classes: []workload.Class{
			{Fraction: 0.5, DieAtPhaseEnd: true},
			{Fraction: 0.5, MeanLife: 4 * kb},
		},
	}
	events := p.MustGenerate()
	// Trigger slightly above the phase length: the byte trigger lands
	// mid-phase while the opportunistic runs retarget to the marks.
	base := Config{Policy: core.Full{}, TriggerBytes: 320 * kb}
	opp := base
	opp.Opportunistic = true
	plain := mustRun(t, events, base)
	smart := mustRun(t, events, opp)

	perPlain := float64(plain.TracedTotalBytes) / float64(plain.Collections)
	perSmart := float64(smart.TracedTotalBytes) / float64(smart.Collections)
	if perSmart >= perPlain {
		t.Fatalf("opportunistic traced %.0f per scavenge >= byte-trigger %.0f", perSmart, perPlain)
	}
	if smart.MemMeanBytes >= plain.MemMeanBytes {
		t.Fatalf("opportunistic mean memory %.0f >= byte-trigger %.0f",
			smart.MemMeanBytes, plain.MemMeanBytes)
	}
}
