package sim

// Epoch-based compaction of dead tape prefixes. The tape numbers
// objects by allocation order, so the liveByBirth buckets double as a
// cohort map: a zero prefix of buckets means every object born before
// that clock epoch is dead — exactly the cohorts no boundary query
// (LiveBytesBornAfter takes a birth-time lower bound) can ever count
// again, in the same way age-segregated collectors discard whole dead
// generations. Once every runner has also reclaimed those objects
// from its own heap, the ordinal prefix is unreachable from every
// side and can be retired: its index entries deleted (summarized into
// retired ID spans so duplicate-allocation detection survives), the
// per-ordinal arrays shifted down behind a sliding base, every
// retained ordinal rebased, and the bucket prefix trimmed. Replay
// memory then tracks the live set plus one birth epoch instead of the
// total number of objects traced.
//
// Compaction is invisible: results, telemetry and error text are
// bit-identical with it on or off (Config.UncompactedTape), which the
// audit oracle re-proves on every run by replaying its reference leg
// uncompacted. It is also deterministic: the cadence gate counts
// events, not batches, so two replays of the same stream — including
// a checkpoint resume fed differently-shaped batches — compact at the
// same points and carry the same watermark.

import (
	"fmt"
	"sort"

	"github.com/dtbgc/dtbgc/internal/trace"
)

// Compaction defaults. The cadence keeps the check off the per-event
// path; the retire and trim minimums amortize the O(retained) shift
// and map rewrite so compaction costs O(1) per event and the arrays
// never hold more than ~4/3 of their retired high-water mark.
const (
	compactCheckEvery     = 4096
	compactMinRetire      = 4096
	compactMinTrimBuckets = 64
)

// tapeCompactionAllowed reports whether the tape shared by these
// runners may compact: disabled by Config.UncompactedTape on any
// runner, and for NoGC/Live runners with the vmem model attached —
// those keep per-ordinal addresses live for every object forever (no
// scavenge ever clears them), so no prefix is ever retirable and the
// periodic scan would be pure waste.
func tapeCompactionAllowed(runners []*Runner) bool {
	for _, r := range runners {
		if r.cfg.UncompactedTape {
			return false
		}
		if !r.isPolicy && r.pages != nil {
			return false
		}
	}
	return true
}

// retainedFloor returns the lowest ordinal this runner can still
// address; every ordinal below it is out of the runner's reach and
// may retire. objs is birth-ordered, so for a policy runner the floor
// is its oldest unreclaimed object — dead-but-unreclaimed objects
// still get read by the next scavenge, so they pin the prefix until a
// collection sweeps them.
func (r *Runner) retainedFloor() int {
	if r.isPolicy {
		if len(r.objs) > 0 {
			return int(r.objs[0])
		}
		return len(r.tape.sizes)
	}
	// NoGC and Live track no per-ordinal state (tapeCompactionAllowed
	// excludes the vmem variants), so nothing pins the prefix.
	return len(r.tape.sizes)
}

// rebase shifts this runner's per-ordinal state down by k retired
// ordinals. Every retained ordinal is >= k (retire respects
// retainedFloor), so the subtraction cannot underflow.
func (r *Runner) rebase(k int) {
	d := int32(k)
	for i := range r.objs {
		r.objs[i] -= d
	}
	if r.pages != nil {
		r.addrs = r.addrs[:copy(r.addrs, r.addrs[k:])]
		r.present = r.present[:copy(r.present, r.present[k:])]
	}
}

// maybeCompact is the cadence-gated compaction check: find the
// all-dead bucket prefix, intersect the matching ordinal prefix with
// every runner's floor, retire it if large enough to amortize, and
// trim the dead bucket prefix. Callers gate on checkEvery before
// calling, so the hot path pays one comparison per event.
func (tp *tape) maybeCompact(runners []*Runner) {
	tp.lastCompactCheck = tp.events
	z := 0
	for z < len(tp.liveByBirth) && tp.liveByBirth[z] == 0 {
		z++
	}
	if z == 0 {
		return
	}
	// Ordinals born before the first live bucket are all dead (their
	// buckets sum to zero live bytes). The comparison is on bucket
	// identity — a computed epoch clock could overflow at the top of
	// the clock space.
	limit := tp.bucketBase + uint64(z)
	k := sort.Search(len(tp.births), func(i int) bool { return birthBucket(tp.births[i]) >= limit })
	for _, r := range runners {
		if f := r.retainedFloor(); f < k {
			k = f
		}
	}
	if k >= tp.minRetire && 4*k >= len(tp.sizes) {
		tp.retire(k, runners)
	}
	tp.trimBuckets()
}

// retire drops the first k ordinals from the tape: their IDs leave
// the index into the retired span summary, the per-ordinal arrays
// shift down in place (capacity is reused — the arrays' footprint is
// their retained high-water mark), the surviving index entries are
// rebased, and every runner shifts its own per-ordinal state.
func (tp *tape) retire(k int, runners []*Runner) {
	for i := 0; i < k; i++ {
		id := tp.ids[i]
		delete(tp.index, id)
		tp.retired.add(id)
	}
	d := int32(k)
	//dtbvet:ignore determinism -- order-insensitive rebase: every value is adjusted independently, no fold over map order
	for id, ord := range tp.index {
		tp.index[id] = ord - d
	}
	tp.ids = tp.ids[:copy(tp.ids, tp.ids[k:])]
	tp.sizes = tp.sizes[:copy(tp.sizes, tp.sizes[k:])]
	tp.births = tp.births[:copy(tp.births, tp.births[k:])]
	tp.dead = tp.dead[:copy(tp.dead, tp.dead[k:])]
	tp.retiredOrds += uint64(k)
	for _, r := range runners {
		r.rebase(k)
	}
}

// trimBuckets drops the all-dead bucket prefix and advances
// bucketBase, capped at the clock's own bucket so the next alloc —
// which may land in the current bucket — never indexes below the
// base.
func (tp *tape) trimBuckets() {
	z := 0
	for z < len(tp.liveByBirth) && tp.liveByBirth[z] == 0 {
		z++
	}
	if room := birthBucket(tp.clock) - tp.bucketBase; uint64(z) > room {
		z = int(room)
	}
	if z <= 0 || (z < tp.minTrimBuckets && 4*z < len(tp.liveByBirth)) {
		return
	}
	tp.liveByBirth = tp.liveByBirth[:copy(tp.liveByBirth, tp.liveByBirth[z:])]
	tp.bucketBase += uint64(z)
	tp.trimmedBuckets += uint64(z)
}

// IDSpan is an inclusive range [Lo, Hi] of retired trace object IDs.
type IDSpan struct {
	Lo, Hi trace.ObjectID
}

// idSpans summarizes the retired trace IDs as sorted, disjoint,
// non-adjacent inclusive ranges. Traces from trace.Builder allocate
// IDs monotonically, so the whole retired set collapses to one span
// and membership is O(1); arbitrary valid traces (IDs need only be
// unique) degrade gracefully to O(log spans) lookups and a span per
// gap — an explicit retired set, run-length compressed.
type idSpans []IDSpan

// contains reports whether id was retired.
func (s idSpans) contains(id trace.ObjectID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].Hi >= id })
	return i < len(s) && s[i].Lo <= id
}

// add inserts id, merging with an adjacent span where possible. IDs
// arrive from retired ordinal prefixes, so in the common monotone
// trace every add extends the last span in place.
func (s *idSpans) add(id trace.ObjectID) {
	sp := *s
	i := sort.Search(len(sp), func(i int) bool { return sp[i].Hi >= id })
	if i < len(sp) && sp[i].Lo <= id {
		return // already present (unreachable from retire: IDs are unique)
	}
	// Adjacency tests cannot wrap: a span below id has Hi < id so
	// Hi+1 cannot overflow, and a span above id has Lo > id >= 0.
	joinsNext := i < len(sp) && sp[i].Lo == id+1
	joinsPrev := i > 0 && sp[i-1].Hi+1 == id
	switch {
	case joinsPrev && joinsNext:
		sp[i-1].Hi = sp[i].Hi
		*s = append(sp[:i], sp[i+1:]...)
	case joinsPrev:
		sp[i-1].Hi = id
	case joinsNext:
		sp[i].Lo = id
	default:
		sp = append(sp, IDSpan{})
		copy(sp[i+1:], sp[i:])
		sp[i] = IDSpan{Lo: id, Hi: id}
		*s = sp
	}
}

// TapeStats describes the tape's retained footprint, for tests and
// the retained-memory benchmarks. Retained counts shrink when
// compaction retires prefixes; Retired* counts only grow.
type TapeStats struct {
	Events          int    // trace events resolved
	RetainedObjects int    // ordinals currently held in the tape arrays
	RetiredObjects  uint64 // ordinals retired behind the sliding base
	RetiredIDSpans  int    // spans summarizing the retired IDs
	Buckets         int    // birth-epoch buckets currently held
	TrimmedBuckets  uint64 // buckets trimmed off the prefix so far
	LiveBytes       uint64 // oracle live bytes
}

func (tp *tape) stats() TapeStats {
	return TapeStats{
		Events:          tp.events,
		RetainedObjects: len(tp.sizes),
		RetiredObjects:  tp.retiredOrds,
		RetiredIDSpans:  len(tp.retired),
		Buckets:         len(tp.liveByBirth),
		TrimmedBuckets:  tp.trimmedBuckets,
		LiveBytes:       tp.live,
	}
}

// TapeStats reports the footprint of this runner's private tape.
func (r *Runner) TapeStats() TapeStats { return r.tape.stats() }

// TapeStats reports the footprint of the fleet's shared tape.
func (f *Fleet) TapeStats() TapeStats { return f.tape.stats() }

// TapeCompaction is the tape's compaction watermark: how far the
// sliding base had advanced after a given number of events. Engine
// checkpoints store it so a resume can verify — bit for bit, spans
// included — that the fleet's tape still matches what the checkpoint
// saw; compaction's event-count cadence makes the watermark a pure
// function of the event stream, so any mismatch means the fleet
// diverged from the checkpoint in between.
type TapeCompaction struct {
	Events          int
	RetiredOrdinals uint64
	BucketBase      uint64
	RetiredIDs      []IDSpan
}

// SnapshotTapeCompaction captures the shared tape's compaction
// watermark. The span slice is copied: the tape keeps merging spans
// in place after the snapshot.
func (f *Fleet) SnapshotTapeCompaction() TapeCompaction {
	tp := f.tape
	spans := make([]IDSpan, len(tp.retired))
	copy(spans, tp.retired)
	return TapeCompaction{
		Events:          tp.events,
		RetiredOrdinals: tp.retiredOrds,
		BucketBase:      tp.bucketBase,
		RetiredIDs:      spans,
	}
}

// RestoreTapeCompaction verifies the fleet's tape against a recorded
// watermark. Retired prefixes cannot be resurrected, so "restore"
// here is verification: the live tape must already match the
// watermark exactly, which holds whenever the fleet has processed
// exactly the watermark's events — compaction is deterministic in the
// event count. A mismatch means the tape is not the one the
// watermark described, and resuming would silently diverge.
func (f *Fleet) RestoreTapeCompaction(w TapeCompaction) error {
	tp := f.tape
	if tp.events != w.Events {
		return fmt.Errorf("sim: tape at event %d cannot restore a compaction watermark taken at event %d", tp.events, w.Events)
	}
	if tp.retiredOrds != w.RetiredOrdinals {
		return fmt.Errorf("sim: tape retired %d ordinals but the watermark recorded %d", tp.retiredOrds, w.RetiredOrdinals)
	}
	if tp.bucketBase != w.BucketBase {
		return fmt.Errorf("sim: tape bucket base %d but the watermark recorded %d", tp.bucketBase, w.BucketBase)
	}
	if len(tp.retired) != len(w.RetiredIDs) {
		return fmt.Errorf("sim: tape holds %d retired ID spans but the watermark recorded %d", len(tp.retired), len(w.RetiredIDs))
	}
	for i, sp := range w.RetiredIDs {
		if tp.retired[i] != sp {
			return fmt.Errorf("sim: retired ID span %d is [%d,%d] but the watermark recorded [%d,%d]", i, tp.retired[i].Lo, tp.retired[i].Hi, sp.Lo, sp.Hi)
		}
	}
	return nil
}
