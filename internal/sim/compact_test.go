package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// compactingChurnTrace is pure churn — no permanent objects — so the
// dead prefix grows without bound and default-threshold compaction
// fires on its own. Marks and pointer writes ride along so every
// event kind crosses a compacted tape.
func compactingChurnTrace(n int) []trace.Event {
	events := churnTrace(n, 256, 12, 0)
	out := make([]trace.Event, 0, len(events)+len(events)/8)
	for i, e := range events {
		out = append(out, e)
		if i%16 == 7 && e.Kind == trace.KindAlloc {
			out = append(out, trace.PtrWrite(e.ID, 0, e.ID, e.Instr))
		}
		if i%64 == 63 {
			out = append(out, trace.Mark("m", e.Instr))
		}
	}
	return out
}

// aggressive drops the tape's compaction thresholds to the floor so
// small traces retire and trim on every cadence check — the
// amortization minimums are a cost knob, not a correctness one, and
// tests that want many compaction cycles set them aside.
func aggressive(tp *tape) {
	tp.checkEvery = 1
	tp.minRetire = 1
	tp.minTrimBuckets = 1
}

// reclaimingMatrix covers the per-runner state variants whose heaps
// actually drain: retirement needs every runner's floor to advance,
// so the policies here all sweep their dead storage eventually
// (tenuring policies like FIXED pin the floor forever — see
// TestTenuringPolicyPinsRetirement).
func reclaimingMatrix() []Config {
	return []Config{
		{Policy: core.Full{}, TriggerBytes: 10 * kb},
		{Policy: core.DtbFM{TraceMax: 1 << 20}, TriggerBytes: 10 * kb},   // budget covers the heap: the boundary can sweep low
		{Policy: core.FeedMed{TraceMax: 1 << 20}, TriggerBytes: 10 * kb}, // ditto for feedback mediation
		{Policy: core.Full{}, TriggerBytes: 10 * kb, Opportunistic: true},
		{Policy: core.Full{}, TriggerBytes: 10 * kb, PageFrames: 8, RecordCurve: true},
		{Mode: ModeNoGC},
		{Mode: ModeLive},
	}
}

// TestFleetCompactionMatchesUncompacted is the package-level half of
// the compaction oracle: a matrix of reclaiming runners on one
// compacting fleet must produce results bit-identical
// (reflect.DeepEqual, histories and curves included) to the same
// matrix with the tape pinned, and to solo uncompacted runs — while
// actually compacting, which the tape stats must confirm.
func TestFleetCompactionMatchesUncompacted(t *testing.T) {
	events := compactingChurnTrace(30000)
	cfgs := reclaimingMatrix()

	compacting, err := NewFleet(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := compacting.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	got := compacting.Finish()

	st := compacting.TapeStats()
	if st.RetiredObjects == 0 {
		t.Fatalf("default-threshold compaction never retired anything over %d events: stats %+v", len(events), st)
	}
	if st.TrimmedBuckets == 0 {
		t.Errorf("compaction retired %d objects but trimmed no buckets: stats %+v", st.RetiredObjects, st)
	}
	if st.RetainedObjects+int(st.RetiredObjects) != countAllocs(events) {
		t.Errorf("retained %d + retired %d != %d objects allocated", st.RetainedObjects, st.RetiredObjects, countAllocs(events))
	}

	pinnedCfgs := append([]Config{}, cfgs...)
	pinnedCfgs[0].UncompactedTape = true // one config pins the whole shared tape
	pinned, err := NewFleet(pinnedCfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := pinned.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	want := pinned.Finish()
	if ps := pinned.TapeStats(); ps.RetiredObjects != 0 {
		t.Fatalf("UncompactedTape fleet retired %d objects", ps.RetiredObjects)
	}

	for i := range cfgs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: compacted fleet result differs from uncompacted\ngot  %+v\nwant %+v",
				want[i].Collector, got[i], want[i])
		}
		soloCfg := cfgs[i]
		soloCfg.UncompactedTape = true
		if solo := mustRun(t, events, soloCfg); !reflect.DeepEqual(got[i], solo) {
			t.Errorf("%s: compacted fleet result differs from uncompacted solo run", solo.Collector)
		}
	}
}

// TestTenuringPolicyPinsRetirement documents the floor contract with
// the stock matrix: collectors that tenure garbage permanently
// (FIXED never re-threatens the old generation; a tight DtbFM budget
// keeps the boundary high) hold dead objects in their heaps forever,
// and those objects pin the tape — a future scavenge with a lower
// boundary would need their sizes. Retirement stays at zero, bucket
// trimming (which only needs dead cohorts, not drained heaps) still
// engages, and results remain bit-identical to the pinned tape.
func TestTenuringPolicyPinsRetirement(t *testing.T) {
	events := compactingChurnTrace(15000)
	cfgs := fleetMatrix()

	compacting, err := NewFleet(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := compacting.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	got := compacting.Finish()
	st := compacting.TapeStats()
	if st.RetiredObjects != 0 {
		t.Errorf("a fleet with tenuring collectors retired %d objects: some floor ignored tenured garbage", st.RetiredObjects)
	}
	if st.TrimmedBuckets == 0 {
		t.Errorf("bucket trimming should not depend on runner floors: stats %+v", st)
	}

	pinnedCfgs := append([]Config{}, cfgs...)
	pinnedCfgs[0].UncompactedTape = true
	pinned, err := NewFleet(pinnedCfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := pinned.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	want := pinned.Finish()
	for i := range cfgs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: trimmed-tape result differs from pinned tape", want[i].Collector)
		}
	}
}

func countAllocs(events []trace.Event) int {
	n := 0
	for _, e := range events {
		if e.Kind == trace.KindAlloc {
			n++
		}
	}
	return n
}

// TestSoloCompactionMatchesUncompacted drives the solo Feed/FeedBatch
// hooks with floor thresholds — many small retire/trim cycles — and
// pins the result to the uncompacted run. The boundary query is also
// re-checked against the naive scan on the compacted tape, since the
// bucket suffix is rebased after every trim.
func TestSoloCompactionMatchesUncompacted(t *testing.T) {
	// 20 KB objects spread births across many 64 KB buckets, so even a
	// short trace crosses plenty of epochs. Full reclaims every dead
	// object at each scavenge, so the runner floor tracks the churn.
	events := churnTrace(3000, 20*kb, 7, 0)
	cfg := tinyConfig(core.Full{})

	uncfg := cfg
	uncfg.UncompactedTape = true
	want := mustRun(t, events, uncfg)

	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aggressive(r.tape)
	for i, e := range events {
		if err := r.Feed(e); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if i%271 == 0 {
			var q core.Time
			if c := r.tape.clock.Bytes(); c > 50*kb {
				q = core.TimeAt(c - 50*kb)
			}
			if got, naive := r.tape.liveBytesBornAfter(q), r.tape.liveBytesBornAfterNaive(q); got != naive {
				t.Fatalf("event %d: compacted liveBytesBornAfter(%d) = %d, naive says %d", i, q.Bytes(), got, naive)
			}
		}
	}
	if st := r.TapeStats(); st.RetiredObjects == 0 || st.TrimmedBuckets == 0 {
		t.Fatalf("aggressive compaction did not engage: stats %+v", st)
	}
	if got := r.Finish(); !reflect.DeepEqual(got, want) {
		t.Errorf("compacted solo result differs from uncompacted\ngot  %+v\nwant %+v", got, want)
	}
}

// compactedRunner returns a solo runner whose tape has demonstrably
// retired a prefix, for probing how retired IDs behave afterwards.
func compactedRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(Config{Mode: ModeNoGC})
	if err != nil {
		t.Fatal(err)
	}
	aggressive(r.tape)
	if err := r.FeedBatch(churnTrace(500, 20*kb, 5, 0)); err != nil {
		t.Fatal(err)
	}
	if st := r.TapeStats(); st.RetiredObjects == 0 {
		t.Fatalf("setup trace did not trigger retirement: stats %+v", st)
	}
	if r.tape.retired.contains(1) != true {
		t.Fatal("object 1 was not retired by the setup trace")
	}
	return r
}

// TestRetiredIDReuseRejected: compaction deletes retired IDs from the
// index, so duplicate-allocation detection must catch their reuse via
// the retired-ID summary — with the exact error text the uncompacted
// tape produces.
func TestRetiredIDReuseRejected(t *testing.T) {
	r := compactedRunner(t)
	instr := uint64(1 << 20)
	err := r.Feed(trace.Alloc(1, 64, instr))
	if err == nil {
		t.Fatal("reuse of a retired trace ID accepted as a fresh allocation")
	}
	if !strings.Contains(err.Error(), "duplicate allocation of object 1") {
		t.Fatalf("retired-ID reuse error = %q, want a duplicate-allocation error", err)
	}
	before := r.TapeStats()
	// The failed resolve must leave the tape untouched.
	if after := r.TapeStats(); after != before {
		t.Fatalf("failed alloc mutated the tape: %+v -> %+v", before, after)
	}
}

// TestFreeOfRetiredIDIsDoubleFree: a retired object was dead when it
// left the tape, so freeing its ID again reports the same double-free
// the uncompacted tape would, not "unknown object".
func TestFreeOfRetiredIDIsDoubleFree(t *testing.T) {
	r := compactedRunner(t)
	err := r.Feed(trace.Free(1, uint64(1<<20)))
	if err == nil {
		t.Fatal("free of a retired object accepted")
	}
	if !strings.Contains(err.Error(), "double free of object 1") {
		t.Fatalf("free-of-retired error = %q, want a double-free error", err)
	}
	if err := r.Feed(trace.Free(999999, uint64(1<<20))); err == nil ||
		!strings.Contains(err.Error(), "free of unknown object") {
		t.Fatalf("free of a never-seen object = %v, want unknown-object error", err)
	}
}

// TestPtrWriteToRetiredResolvesUnknown: a pointer store naming a
// retired object must resolve to the unknown ordinal (-1), exactly as
// a store to a never-seen object does — and feeding it must succeed.
func TestPtrWriteToRetiredResolvesUnknown(t *testing.T) {
	r := compactedRunner(t)
	var out resolved
	if err := r.tape.resolve(trace.PtrWrite(1, 0, 2, uint64(1<<20)), &out); err != nil {
		t.Fatalf("ptrwrite to retired object: %v", err)
	}
	if out.ord != -1 {
		t.Fatalf("ptrwrite to retired object resolved to ordinal %d, want -1 (unknown)", out.ord)
	}
}

// TestVmemPtrWriteRetiredEquivalence runs the virtual-memory model
// over a trace that keeps storing into long-dead objects: fault
// counts with compaction (stores resolve to unknown) must equal the
// uncompacted run (stores resolve to a reclaimed, non-present
// ordinal), because retirement requires every runner to have
// reclaimed the object first.
func TestVmemPtrWriteRetiredEquivalence(t *testing.T) {
	churn := churnTrace(4000, 20*kb, 7, 0)
	events := make([]trace.Event, 0, len(churn)+len(churn)/8)
	for i, e := range churn {
		events = append(events, e)
		if i%8 == 3 {
			// Store into object 1, which dies almost immediately: for
			// most of the trace this targets a reclaimed or retired
			// object.
			events = append(events, trace.PtrWrite(1, 0, e.ID, e.Instr))
		}
	}
	cfg := Config{Policy: core.Full{}, TriggerBytes: 40 * kb, PageFrames: 8}
	uncfg := cfg
	uncfg.UncompactedTape = true
	want := mustRun(t, events, uncfg)

	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aggressive(r.tape)
	if err := r.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	if st := r.TapeStats(); st.RetiredObjects == 0 {
		t.Fatalf("vmem churn trace did not trigger retirement: stats %+v", st)
	}
	if got := r.Finish(); !reflect.DeepEqual(got, want) {
		t.Errorf("compacted vmem result differs from uncompacted\ngot  %+v\nwant %+v", got, want)
	}
}

// TestTapeOrdinalLimit pins the int32-overflow fix: the tape must
// refuse the allocation that would exceed its ordinal capacity with
// an explicit error instead of wrapping the ordinal — and compaction
// must lift the limit off *total* objects by keeping the retained
// count below it.
func TestTapeOrdinalLimit(t *testing.T) {
	r, err := NewRunner(Config{Mode: ModeNoGC})
	if err != nil {
		t.Fatal(err)
	}
	r.tape.ordLimit = 4
	b := trace.NewBuilder()
	for i := 0; i < 5; i++ {
		b.Advance(10)
		b.Alloc(64)
	}
	ferr := r.FeedBatch(b.Events())
	if ferr == nil {
		t.Fatal("5th retained object accepted past an ordinal limit of 4")
	}
	if !strings.Contains(ferr.Error(), "tape ordinal limit") {
		t.Fatalf("overflow error = %q, want a tape-ordinal-limit error", ferr)
	}

	// With compaction retiring the dead prefix, total objects can
	// exceed the limit many times over as long as the retained set
	// stays under it.
	r2, err := NewRunner(Config{Mode: ModeNoGC})
	if err != nil {
		t.Fatal(err)
	}
	aggressive(r2.tape)
	r2.tape.ordLimit = 16
	if err := r2.FeedBatch(churnTrace(400, 20*kb, 3, 0)); err != nil {
		t.Fatalf("churn of 400 objects under a 16-ordinal limit: %v", err)
	}
	if st := r2.TapeStats(); st.RetainedObjects > 16 || st.RetiredObjects < 300 {
		t.Fatalf("expected a compacting tape to stay under the limit: stats %+v", st)
	}
}

// TestMaxBucketsGuard: an allocation whose birth bucket falls outside
// the tape's representable bucket range must fail loudly — the silent
// alternative on 32-bit platforms was index truncation.
func TestMaxBucketsGuard(t *testing.T) {
	tp := newTape()
	tp.maxBuckets = 4
	var out resolved
	if err := tp.resolve(trace.Alloc(1, 64, 1), &out); err != nil {
		t.Fatal(err)
	}
	err := tp.resolve(trace.Alloc(2, 5<<birthBucketShift, 2), &out)
	if err == nil {
		t.Fatal("allocation past the bucket range accepted")
	}
	if !strings.Contains(err.Error(), "birth bucket") {
		t.Fatalf("bucket-range error = %q", err)
	}
	if tp.events != 1 || len(tp.sizes) != 1 {
		t.Fatalf("failed alloc mutated the tape: %d events, %d ordinals", tp.events, len(tp.sizes))
	}
}

// TestLiveBytesBornAfterFinalBucket exercises the top of the clock
// space, where the old per-item scan's computed bucket end
// ((b+1)<<shift) wraps to zero and skips the boundary's own bucket.
// The bucket-identity scan must keep agreeing with the naive
// reference right up to the final bucket.
func TestLiveBytesBornAfterFinalBucket(t *testing.T) {
	tp := newTape()
	// Place the tape just below the top of the clock: a trimmed-ahead
	// bucket base keeps the relative index tiny, exactly as a
	// long-compacted tape would look.
	start := core.TimeAt(math.MaxUint64 - 3<<birthBucketShift)
	tp.clock = start
	tp.bucketBase = birthBucket(start)
	var out resolved
	ids := trace.ObjectID(1)
	alloc := func(size uint64) {
		t.Helper()
		if err := tp.resolve(trace.Alloc(ids, size, 1), &out); err != nil {
			t.Fatalf("alloc at clock %d: %v", tp.clock.Bytes(), err)
		}
		ids++
	}
	alloc(1 << birthBucketShift) // lands two buckets below the top
	alloc(1 << birthBucketShift)
	alloc(1 << (birthBucketShift - 1)) // straddles into the final bucket
	alloc(100)                         // final bucket of the clock space
	if err := tp.resolve(trace.Free(2, 2), &out); err != nil {
		t.Fatal(err)
	}
	queries := []core.Time{
		start,
		start.Add(1 << birthBucketShift),
		core.TimeAt(math.MaxUint64 - 1<<birthBucketShift), // inside the penultimate bucket
		core.TimeAt(math.MaxUint64 - 200),                 // inside the final bucket
		core.TimeAt(math.MaxUint64 - 1),
		core.TimeAt(math.MaxUint64),
	}
	for _, q := range queries {
		if got, want := tp.liveBytesBornAfter(q), tp.liveBytesBornAfterNaive(q); got != want {
			t.Errorf("liveBytesBornAfter(%d) = %d, naive says %d", q.Bytes(), got, want)
		}
	}
}

// TestResolveSteadyStateAllocs pins the compacting resolve path's
// allocation behavior: once a churning tape has reached its retained
// high-water mark, feeding more churn — including the retire and trim
// cycles themselves — must not allocate. Compaction reuses array
// capacity and extends retired-ID spans in place, so the whole replay
// runs at zero steady-state allocations per event.
func TestResolveSteadyStateAllocs(t *testing.T) {
	r, err := NewRunner(Config{Mode: ModeNoGC})
	if err != nil {
		t.Fatal(err)
	}
	tp := r.tape
	tp.checkEvery = 64
	tp.minRetire = 64
	tp.minTrimBuckets = 1
	events := churnTrace(6000, 20*kb, 9, 0)
	warm, rest := events[:2000], events[2000:]
	if err := r.FeedBatch(warm); err != nil {
		t.Fatal(err)
	}
	if st := r.TapeStats(); st.RetiredObjects == 0 {
		t.Fatalf("warmup did not compact: stats %+v", st)
	}
	const seg = 200
	next := 0
	allocs := testing.AllocsPerRun(15, func() {
		if next+seg > len(rest) {
			t.Fatal("steady-state segments exhausted")
		}
		if err := r.FeedBatch(rest[next : next+seg]); err != nil {
			t.Fatal(err)
		}
		next += seg
	})
	if allocs != 0 {
		t.Errorf("compacting resolve path allocates %v times per %d-event segment, want 0", allocs, seg)
	}
	if st := r.TapeStats(); st.RetiredIDSpans != 1 {
		t.Errorf("monotone churn produced %d retired ID spans, want 1", st.RetiredIDSpans)
	}
}

// TestCompactionDeterministicAcrossBatchShapes: the cadence counts
// events, not batches, so the same stream fed in any batching must
// land on an identical compaction watermark — the property engine
// checkpoints rely on.
func TestCompactionDeterministicAcrossBatchShapes(t *testing.T) {
	events := compactingChurnTrace(20000)
	var want TapeCompaction
	for i, batch := range []int{1, 7, 4096, len(events)} {
		fleet, err := NewFleet([]Config{tinyConfig(core.Full{}), {Mode: ModeLive}})
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(events); lo += batch {
			if err := fleet.FeedBatch(events[lo:min(lo+batch, len(events))]); err != nil {
				t.Fatal(err)
			}
		}
		got := fleet.SnapshotTapeCompaction()
		if got.RetiredOrdinals == 0 {
			t.Fatalf("batch size %d: no compaction over %d events", batch, len(events))
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("batch size %d: watermark %+v differs from batch size 1's %+v", batch, got, want)
		}
	}
}

// TestRestoreTapeCompactionVerifies: restoring a watermark is an
// equality check against the live tape — the same fleet state passes,
// a fleet that moved past the snapshot fails.
func TestRestoreTapeCompactionVerifies(t *testing.T) {
	events := compactingChurnTrace(20000)
	fleet, err := NewFleet([]Config{tinyConfig(core.Full{})})
	if err != nil {
		t.Fatal(err)
	}
	half := len(events) / 2
	if err := fleet.FeedBatch(events[:half]); err != nil {
		t.Fatal(err)
	}
	w := fleet.SnapshotTapeCompaction()
	if err := fleet.RestoreTapeCompaction(w); err != nil {
		t.Fatalf("verifying an untouched fleet against its own watermark: %v", err)
	}
	if err := fleet.FeedBatch(events[half:]); err != nil {
		t.Fatal(err)
	}
	if err := fleet.RestoreTapeCompaction(w); err == nil {
		t.Fatal("a fleet fed past the watermark passed verification")
	}
}

// TestVmemBaselineDisablesCompaction: NoGC/Live runners with the
// virtual-memory model address every ordinal forever, so a fleet
// containing one must not compact — and must still match the pinned
// run exactly.
func TestVmemBaselineDisablesCompaction(t *testing.T) {
	cfgs := []Config{
		tinyConfig(core.Full{}),
		{Mode: ModeNoGC, PageFrames: 8},
	}
	fleet, err := NewFleet(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.tape.compact {
		t.Fatal("fleet with a vmem baseline left compaction enabled")
	}
	if err := fleet.FeedBatch(compactingChurnTrace(10000)); err != nil {
		t.Fatal(err)
	}
	if st := fleet.TapeStats(); st.RetiredObjects != 0 {
		t.Fatalf("disabled compaction still retired %d objects", st.RetiredObjects)
	}
}

// TestIDSpans exercises the retired-ID summary directly: monotone
// adds collapse to one span, arbitrary orders merge correctly, and
// membership stays exact across gaps.
func TestIDSpans(t *testing.T) {
	var s idSpans
	for id := trace.ObjectID(10); id < 20; id++ {
		s.add(id)
	}
	if len(s) != 1 || s[0] != (IDSpan{Lo: 10, Hi: 19}) {
		t.Fatalf("monotone adds built %+v, want one span [10,19]", s)
	}
	s.add(25)
	s.add(23)
	s.add(24) // bridges 23 and 25
	if len(s) != 2 || s[1] != (IDSpan{Lo: 23, Hi: 25}) {
		t.Fatalf("gap adds built %+v, want [10,19] [23,25]", s)
	}
	s.add(9) // extends [10,19] downward
	if len(s) != 2 || s[0] != (IDSpan{Lo: 9, Hi: 19}) {
		t.Fatalf("downward extension built %+v", s)
	}
	for _, tc := range []struct {
		id trace.ObjectID
		in bool
	}{{8, false}, {9, true}, {15, true}, {19, true}, {20, false}, {22, false}, {23, true}, {25, true}, {26, false}} {
		if got := s.contains(tc.id); got != tc.in {
			t.Errorf("contains(%d) = %v, want %v (spans %+v)", tc.id, got, tc.in, s)
		}
	}
}
