package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
)

// adaptiveMatrix is the adaptive-policy config set used by the fleet
// equivalence tests: both bandit selectors and the gradient policy,
// with an explicit PolicySeed so every path derives identical
// instance seeds.
func adaptiveMatrix() []Config {
	return []Config{
		{Policy: core.Bandit{Eps: 0.1}, TriggerBytes: 10 * kb, Label: "eps", PolicySeed: 7},
		{Policy: core.Bandit{UCB: 1.5, Arms: 4}, TriggerBytes: 10 * kb, Label: "ucb", PolicySeed: 7},
		{Policy: core.Gradient{}, TriggerBytes: 10 * kb, Label: "grad", PolicySeed: 7},
		{Policy: core.Full{}, TriggerBytes: 10 * kb, Label: "full", PolicySeed: 7},
	}
}

// TestAdaptiveFleetMatchesSoloRuns extends the fleet/solo equivalence
// pin to state-carrying policies: the learned state must evolve
// identically whether the runner lives in a fleet or runs alone,
// because both derive the same instance seed from (PolicySeed, Label,
// collector) and see the same event sequence.
func TestAdaptiveFleetMatchesSoloRuns(t *testing.T) {
	events := markedChurnTrace(3000)
	cfgs := adaptiveMatrix()

	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = mustRun(t, events, cfg)
	}
	for _, batch := range []int{1, 777, len(events) + 1} {
		fleet, err := NewFleet(cfgs)
		if err != nil {
			t.Fatalf("batch %d: NewFleet: %v", batch, err)
		}
		for lo := 0; lo < len(events); lo += batch {
			if err := fleet.FeedBatch(events[lo:min(lo+batch, len(events))]); err != nil {
				t.Fatalf("batch %d: FeedBatch: %v", batch, err)
			}
		}
		got := fleet.Finish()
		for i := range cfgs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("batch %d, %s: fleet result differs from solo run", batch, want[i].Collector)
			}
		}
	}
}

// TestAdaptiveFleetInstancesAreIsolated is the shared-state hazard
// regression test: two runners built from the SAME adaptive policy
// value must get their own instances, and each must behave exactly as
// it would alone. A shared instance would interleave both runners'
// Boundary/Observe streams and diverge from the solo runs.
func TestAdaptiveFleetInstancesAreIsolated(t *testing.T) {
	events := markedChurnTrace(2500)
	pol := core.Bandit{Eps: 0.2}
	cfgs := []Config{
		{Policy: pol, TriggerBytes: 10 * kb, Label: "a", PolicySeed: 3},
		{Policy: pol, TriggerBytes: 10 * kb, Label: "b", PolicySeed: 3},
	}
	fleet, err := NewFleet(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := fleet.Runners()[0], fleet.Runners()[1]
	if ra.PolicyInstance() == nil || rb.PolicyInstance() == nil {
		t.Fatal("adaptive runners did not get policy instances")
	}
	if ra.PolicyInstance() == rb.PolicyInstance() {
		t.Fatal("two runners share one adaptive policy instance")
	}
	if err := fleet.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	got := fleet.Finish()
	for i, cfg := range cfgs {
		want := mustRun(t, events, cfg)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("runner %d (%s): fleet result differs from solo run — instance state leaked", i, cfg.Label)
		}
	}
}

// sharedInstancePolicy deliberately violates the AdaptivePolicy
// contract: NewRun hands every caller the same instance. It exists to
// prove the fleet's shared-instance detector actually fires (the
// mutation self-test for the isolation regression test above).
type sharedInstancePolicy struct{ inst core.PolicyInstance }

func (p sharedInstancePolicy) Name() string { return "EvilShared" }
func (p sharedInstancePolicy) Boundary(now core.Time, hist *core.History, heap core.Heap) core.Time {
	return 0
}
func (p sharedInstancePolicy) NewRun(seed uint64) core.PolicyInstance { return p.inst }

func TestFleetRejectsSharedInstance(t *testing.T) {
	evil := sharedInstancePolicy{inst: core.Bandit{Eps: 0.1}.NewRun(1)}
	_, err := NewFleet([]Config{
		{Policy: evil, TriggerBytes: 10 * kb, Label: "x"},
		{Policy: evil, TriggerBytes: 10 * kb, Label: "y"},
	})
	if err == nil {
		t.Fatal("NewFleet accepted two runners sharing one adaptive policy instance")
	}
	if !strings.Contains(err.Error(), "share one adaptive policy instance") {
		t.Fatalf("error %q does not name the shared-instance hazard", err)
	}
}

// TestAdaptiveTelemetryDeterministicAndAnnotated pins two properties
// of adaptive telemetry: the stream is byte-for-byte reproducible for
// the same config and seed, and decision lines carry the adaptive
// annotations (arm for the bandit, features_digest for both) while
// pure-policy streams stay free of them.
func TestAdaptiveTelemetryDeterministicAndAnnotated(t *testing.T) {
	events := markedChurnTrace(2000)
	run := func(p core.Policy, label string) string {
		var buf bytes.Buffer
		cfg := Config{Policy: p, TriggerBytes: 10 * kb, Label: label,
			PolicySeed: 5, Probe: NewTelemetryWriter(&buf)}
		mustRun(t, events, cfg)
		return buf.String()
	}

	a := run(core.Bandit{Eps: 0.1}, "bandit")
	b := run(core.Bandit{Eps: 0.1}, "bandit")
	if a != b {
		t.Error("bandit telemetry is not reproducible for the same seed")
	}
	if !strings.Contains(a, `"arm":`) || !strings.Contains(a, `"features_digest":"`) {
		t.Error("bandit decision lines lack the adaptive annotations")
	}

	g := run(core.Gradient{}, "grad")
	if strings.Contains(g, `"arm":`) {
		t.Error("gradient decisions should not report an arm")
	}
	if !strings.Contains(g, `"features_digest":"`) {
		t.Error("gradient decision lines lack the feature digest")
	}

	pure := run(core.DtbFM{TraceMax: 5 * kb}, "dtbfm")
	if strings.Contains(pure, "arm") || strings.Contains(pure, "features_digest") {
		t.Error("pure-policy telemetry gained adaptive fields — old streams must stay byte-identical")
	}
}

// TestPolicySeedChangesRuns: the seed must reach the instance — an
// exploring bandit run under a different PolicySeed should make at
// least one different decision over a long trace.
func TestPolicySeedChangesRuns(t *testing.T) {
	events := markedChurnTrace(4000)
	base := Config{Policy: core.Bandit{Eps: 0.5}, TriggerBytes: 10 * kb, Label: "s"}
	c1, c2 := base, base
	c1.PolicySeed, c2.PolicySeed = 1, 2
	r1, r2 := mustRun(t, events, c1), mustRun(t, events, c2)
	if reflect.DeepEqual(r1.History, r2.History) {
		t.Error("different PolicySeed produced identical decision histories: seed is ignored")
	}
	// And the same seed reproduces bit-identically.
	r3 := mustRun(t, events, c1)
	if !reflect.DeepEqual(r1, r3) {
		t.Error("same PolicySeed did not reproduce the run")
	}
}

// TestDerivePolicySeed pins the seed-derivation contract: stable for
// equal inputs, sensitive to each component, and immune to the
// label/collector concatenation ambiguity.
func TestDerivePolicySeed(t *testing.T) {
	base := derivePolicySeed(1, "lab", "col")
	if derivePolicySeed(1, "lab", "col") != base {
		t.Error("derivePolicySeed is not deterministic")
	}
	for name, other := range map[string]uint64{
		"user seed": derivePolicySeed(2, "lab", "col"),
		"label":     derivePolicySeed(1, "lab2", "col"),
		"collector": derivePolicySeed(1, "lab", "col2"),
		"boundary":  derivePolicySeed(1, "labc", "ol"),
	} {
		if other == base {
			t.Errorf("derivePolicySeed ignores the %s", name)
		}
	}
}

// TestPureRunnersHaveNoInstance: a stock policy must not pay for (or
// observe) any adaptive machinery.
func TestPureRunnersHaveNoInstance(t *testing.T) {
	r, err := NewRunner(tinyConfig(core.Full{}))
	if err != nil {
		t.Fatal(err)
	}
	if r.PolicyInstance() != nil {
		t.Error("pure policy runner carries an adaptive instance")
	}
}

// TestFleetPolicyStateSnapshotRestore drives a fleet halfway, snapshots
// the adaptive state, keeps going, then proves a second fleet restored
// from the snapshot finishes bit-identically on the same tail.
func TestFleetPolicyStateSnapshotRestore(t *testing.T) {
	events := markedChurnTrace(3000)
	half := len(events) / 2
	cfgs := adaptiveMatrix()

	a, err := NewFleet(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.FeedBatch(events[:half]); err != nil {
		t.Fatal(err)
	}
	snaps := a.SnapshotPolicyState()
	if len(snaps) != len(cfgs) {
		t.Fatalf("%d snapshots for %d runners", len(snaps), len(cfgs))
	}
	for i, cfg := range cfgs {
		_, adaptive := cfg.Policy.(core.AdaptivePolicy)
		if adaptive != (snaps[i] != nil) {
			t.Fatalf("runner %d: adaptive=%v but snapshot presence=%v", i, adaptive, snaps[i] != nil)
		}
	}

	// The reference: keep feeding fleet a to the end.
	if err := a.FeedBatch(events[half:]); err != nil {
		t.Fatal(err)
	}
	want := a.Finish()

	// The restored twin: replay the prefix (recreating histories and
	// heap state), then overwrite the policy state with the snapshot.
	b, err := NewFleet(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.FeedBatch(events[:half]); err != nil {
		t.Fatal(err)
	}
	if err := b.RestorePolicyState(snaps); err != nil {
		t.Fatal(err)
	}
	if err := b.FeedBatch(events[half:]); err != nil {
		t.Fatal(err)
	}
	got := b.Finish()
	for i := range cfgs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: restored fleet diverged from the uninterrupted one", want[i].Collector)
		}
	}
}

// TestFleetRestorePolicyStateRejectsMismatch covers the shape checks.
func TestFleetRestorePolicyStateRejectsMismatch(t *testing.T) {
	cfgs := adaptiveMatrix()
	f, err := NewFleet(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RestorePolicyState(make([][]byte, 1)); err == nil {
		t.Error("wrong-length snapshot slice accepted")
	}
	snaps := f.SnapshotPolicyState()
	snaps[0] = nil // adaptive runner, missing state
	if err := f.RestorePolicyState(snaps); err == nil {
		t.Error("missing adaptive state accepted")
	}
	snaps = f.SnapshotPolicyState()
	last := len(snaps) - 1 // the Full runner is pure
	snaps[last] = []byte("{}")
	if err := f.RestorePolicyState(snaps); err == nil {
		t.Error("adaptive state for a pure runner accepted")
	}
}
