package sim

import (
	"reflect"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// recordingProbe retains every event in emission order.
type recordingProbe struct {
	events []any
}

func (p *recordingProbe) RunStart(e RunStart)      { p.events = append(p.events, e) }
func (p *recordingProbe) Decision(e Decision)      { p.events = append(p.events, e) }
func (p *recordingProbe) Scavenge(e ScavengeEvent) { p.events = append(p.events, e) }
func (p *recordingProbe) Progress(e Progress)      { p.events = append(p.events, e) }
func (p *recordingProbe) RunFinish(e RunFinish)    { p.events = append(p.events, e) }

// probeTrace is a small steady-state workload: enough allocation to
// force several scavenges, with marks sprinkled in for the
// opportunistic tests.
func probeTrace() []trace.Event {
	b := trace.NewBuilder()
	var ids []trace.ObjectID
	for i := 0; i < 400; i++ {
		b.Advance(100)
		ids = append(ids, b.Alloc(512))
		if len(ids) > 8 {
			b.Free(ids[0])
			ids = ids[1:]
		}
		if i%50 == 49 {
			b.Mark("phase")
		}
	}
	return b.Events()
}

func TestProbeEventSequence(t *testing.T) {
	var p recordingProbe
	res, err := Run(probeTrace(), Config{
		Policy:        core.DtbFM{TraceMax: 4 * 1024},
		TriggerBytes:  16 * 1024,
		Probe:         &p,
		Label:         "seq",
		ProgressBytes: 32 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collections < 3 {
		t.Fatalf("workload too small: only %d collections", res.Collections)
	}
	if len(p.events) == 0 {
		t.Fatal("no events emitted")
	}

	start, ok := p.events[0].(RunStart)
	if !ok {
		t.Fatalf("first event is %T, want RunStart", p.events[0])
	}
	if start.Label != "seq" || start.Collector != res.Collector || start.TriggerBytes != 16*1024 {
		t.Errorf("RunStart = %+v", start)
	}
	finish, ok := p.events[len(p.events)-1].(RunFinish)
	if !ok {
		t.Fatalf("last event is %T, want RunFinish", p.events[len(p.events)-1])
	}
	if finish.Result != res {
		t.Error("RunFinish.Result is not the run's Result")
	}

	// Decision/scavenge alternation with matching, gapless indices, and
	// scavenge fields agreeing with the retained history and pauses.
	var pending *Decision
	nScav := 0
	var progressEvents, progressClock uint64
	for i, ev := range p.events[1 : len(p.events)-1] {
		switch e := ev.(type) {
		case Decision:
			if pending != nil {
				t.Fatalf("event %d: decision %d while decision %d unmatched", i, e.N, pending.N)
			}
			if e.N != nScav+1 {
				t.Errorf("decision N = %d, want %d", e.N, nScav+1)
			}
			if len(e.Candidates) == 0 || e.Candidates[0] != 0 {
				t.Errorf("decision %d candidates %v do not start with 0", e.N, e.Candidates)
			}
			if nScav > 0 {
				prev := res.History.Scavenges[nScav-1].T
				if e.Candidates[len(e.Candidates)-1] != prev {
					t.Errorf("decision %d candidates %v missing previous scavenge time %d", e.N, e.Candidates, prev)
				}
			}
			cp := e
			pending = &cp
		case ScavengeEvent:
			if pending == nil || pending.N != e.N {
				t.Fatalf("event %d: scavenge %d without matching decision", i, e.N)
			}
			if e.Trigger != pending.Trigger || e.T != pending.Now || e.TB != pending.TB || e.MemBefore != pending.MemBefore {
				t.Errorf("scavenge %d disagrees with its decision: %+v vs %+v", e.N, e, *pending)
			}
			pending = nil
			nScav++
			h := res.History.Scavenges[e.N-1]
			if e.T != h.T || e.TB != h.TB || e.MemBefore != h.MemBefore ||
				e.Traced != h.Traced || e.Reclaimed != h.Reclaimed || e.Surviving != h.Surviving {
				t.Errorf("scavenge %d event %+v disagrees with history %+v", e.N, e, h)
			}
			if e.PauseSeconds != res.Pauses[e.N-1] {
				t.Errorf("scavenge %d pause %v, want %v", e.N, e.PauseSeconds, res.Pauses[e.N-1])
			}
			if e.TB > e.T {
				t.Errorf("scavenge %d boundary %d is in the future of %d", e.N, e.TB, e.T)
			}
			if e.TenuredGarbage != e.Surviving-e.Live {
				t.Errorf("scavenge %d tenured garbage %d != surviving %d - live %d", e.N, e.TenuredGarbage, e.Surviving, e.Live)
			}
		case Progress:
			if uint64(e.Events) < progressEvents || e.Clock.Bytes() < progressClock {
				t.Errorf("progress went backwards: %+v", e)
			}
			progressEvents, progressClock = uint64(e.Events), e.Clock.Bytes()
			if e.Collections > nScav {
				t.Errorf("progress reports %d collections, only %d seen", e.Collections, nScav)
			}
		default:
			t.Fatalf("event %d: unexpected interior event %T", i, ev)
		}
	}
	if pending != nil {
		t.Errorf("decision %d never got its scavenge", pending.N)
	}
	if nScav != res.Collections {
		t.Errorf("saw %d scavenge events, result has %d collections", nScav, res.Collections)
	}
	if progressEvents == 0 {
		t.Error("no Progress events despite small ProgressBytes")
	}
}

func TestProbeMarkTrigger(t *testing.T) {
	var p recordingProbe
	_, err := Run(probeTrace(), Config{
		Policy:        core.Full{},
		TriggerBytes:  16 * 1024,
		Opportunistic: true,
		Probe:         &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	var byBytes, byMark int
	for _, ev := range p.events {
		if e, ok := ev.(ScavengeEvent); ok {
			switch e.Trigger {
			case TriggerByteBudget:
				byBytes++
			case TriggerMark:
				byMark++
			}
		}
	}
	if byMark == 0 {
		t.Error("opportunistic run emitted no mark-triggered scavenges")
	}
	if byBytes+byMark == 0 {
		t.Error("no scavenges at all")
	}
}

// TestProbeDoesNotInfluence checks the observe-never-influence
// contract: attaching a probe must leave the result bit-identical.
func TestProbeDoesNotInfluence(t *testing.T) {
	events := probeTrace()
	cfg := Config{Policy: core.FeedMed{TraceMax: 4 * 1024}, TriggerBytes: 16 * 1024}
	bare, err := Run(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Probe = &recordingProbe{}
	cfg.ProgressBytes = 8 * 1024
	probed, err := Run(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, probed) {
		t.Errorf("probe changed the result:\nbare:   %+v\nprobed: %+v", bare, probed)
	}
}

// TestNoProbeFeedAllocs is the allocation guard for the nil-probe fast
// path: feeding events that do not grow the heap (pointer writes,
// marks below the opportunistic threshold) must not allocate at all —
// in particular the telemetry hooks must not build candidate lists or
// event structs that escape.
func TestNoProbeFeedAllocs(t *testing.T) {
	r, err := NewRunner(Config{Policy: core.Full{}, Opportunistic: true})
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder()
	id := b.Alloc(64)
	b.PtrWrite(id, 0, id)
	b.Mark("m")
	events := b.Events()
	if err := r.Feed(events[0]); err != nil {
		t.Fatal(err)
	}
	ptr, mark := events[1], events[2]
	allocs := testing.AllocsPerRun(100, func() {
		if err := r.Feed(ptr); err != nil {
			t.Fatal(err)
		}
		if err := r.Feed(mark); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("nil-probe Feed allocated %v times per ptr-write/mark pair, want 0", allocs)
	}
}

// BenchmarkFeedNoProbe measures the hot allocation path with no probe
// attached; run with -benchmem to see the per-event allocation cost
// the telemetry hooks must not add to.
func BenchmarkFeedNoProbe(b *testing.B) {
	benchmarkFeed(b, nil)
}

// BenchmarkFeedRecordingProbe is the comparison point with a probe.
func BenchmarkFeedRecordingProbe(b *testing.B) {
	benchmarkFeed(b, &recordingProbe{})
}

func benchmarkFeed(b *testing.B, p Probe) {
	events := probeTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := NewRunner(Config{Policy: core.Full{}, TriggerBytes: 16 * 1024, Probe: p})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range events {
			if err := r.Feed(e); err != nil {
				b.Fatal(err)
			}
		}
		r.Finish()
	}
}
