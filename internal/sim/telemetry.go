package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/stats"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// TelemetryWriter is the machine-consumption Probe: it writes one JSON
// object per event, one event per line, to an io.Writer.
//
// Every line carries an "event" discriminator ("run_start",
// "decision", "scavenge", "progress", "run_finish") and a "label"
// naming the run; the remaining fields are fixed per event type (the
// schema is documented in the README's Observability section and
// enforced in CI by cmd/dtbtelemetrycheck). Allocation-clock readings
// and byte counts are emitted as raw bytes — consumers scale.
//
// The writer is safe for concurrent use by several runs (the
// evaluation harness runs workloads in parallel); lines from
// concurrent runs interleave but each line is whole, so demux by
// label. Write errors are sticky: the first one is retained, later
// events are dropped, and Err reports it when the run is over.
//
// The sharing contract, pinned by the race tests: the mutex covers
// this sink's own emits and nothing beyond. Sharing is sound only
// when (1) every concurrent run carries a unique label — a label
// collision produces interleaved streams no consumer can demux (and
// corrupts label-keyed sinks like the auditor) — and (2) the sink
// owns its writer exclusively; two sinks over one writer interleave
// mid-line because each locks only itself. Servers handling
// independent requests should not share sinks at all: build one
// writer per request over its own stream (the pattern internal/daemon
// enforces), which also keeps one slow or failed request's sticky
// error from silencing every other request's telemetry.
type TelemetryWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewTelemetryWriter returns a JSON-lines telemetry sink writing to w.
func NewTelemetryWriter(w io.Writer) *TelemetryWriter {
	return &TelemetryWriter{enc: json.NewEncoder(w)}
}

// Err returns the first write or encode error, or nil.
func (t *TelemetryWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *TelemetryWriter) emit(v any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(v)
}

// The wire envelopes. Field order here is emission order (encoding/
// json preserves struct order), so the stream is byte-for-byte
// deterministic for a deterministic run.

type jsonRunStart struct {
	Event         string  `json:"event"`
	Label         string  `json:"label"`
	Collector     string  `json:"collector"`
	MIPS          float64 `json:"mips"`
	TraceBytesPer float64 `json:"trace_bytes_per_sec"`
	TriggerBytes  uint64  `json:"trigger_bytes"`
	ProgressBytes uint64  `json:"progress_bytes"`
	Opportunistic bool    `json:"opportunistic"`
}

type jsonDecision struct {
	Event      string        `json:"event"`
	Label      string        `json:"label"`
	N          int           `json:"n"`
	Trigger    TriggerReason `json:"trigger"`
	Now        core.Time     `json:"now"`
	TB         core.Time     `json:"tb"`
	Candidates []core.Time   `json:"candidates"`
	MemBefore  uint64        `json:"mem_before"`
	LiveBefore uint64        `json:"live_before"`
	// Adaptive-policy extras, trailing and omitted for pure policies so
	// pre-existing streams are byte-for-byte unchanged. Arm is a pointer
	// because arm 0 is meaningful (a full collection) while policies
	// without arms (the gradient) report none at all.
	Arm            *int   `json:"arm,omitempty"`
	FeaturesDigest string `json:"features_digest,omitempty"`
}

type jsonScavenge struct {
	Event          string        `json:"event"`
	Label          string        `json:"label"`
	N              int           `json:"n"`
	Trigger        TriggerReason `json:"trigger"`
	T              core.Time     `json:"t"`
	TB             core.Time     `json:"tb"`
	MemBefore      uint64        `json:"mem_before"`
	Traced         uint64        `json:"traced"`
	Reclaimed      uint64        `json:"reclaimed"`
	Surviving      uint64        `json:"surviving"`
	Live           uint64        `json:"live"`
	TenuredGarbage uint64        `json:"tenured_garbage"`
	PauseSeconds   float64       `json:"pause_seconds"`
}

type jsonProgress struct {
	Event       string    `json:"event"`
	Label       string    `json:"label"`
	Events      int       `json:"events"`
	Instr       uint64    `json:"instr"`
	Allocated   core.Time `json:"allocated"`
	InUse       uint64    `json:"in_use"`
	Live        uint64    `json:"live"`
	Collections int       `json:"collections"`
}

type jsonDrops struct {
	Event          string `json:"event"`
	Label          string `json:"label"`
	CorruptRecords int    `json:"corrupt_records"`
	TornTail       int    `json:"torn_tail_records"`
	BytesDropped   uint64 `json:"bytes_dropped"`
}

type jsonRunFinish struct {
	Event            string  `json:"event"`
	Label            string  `json:"label"`
	Collector        string  `json:"collector"`
	Collections      int     `json:"collections"`
	TotalAlloc       uint64  `json:"total_alloc"`
	ExecSeconds      float64 `json:"exec_seconds"`
	MemMeanBytes     float64 `json:"mem_mean_bytes"`
	MemMaxBytes      float64 `json:"mem_max_bytes"`
	LiveMeanBytes    float64 `json:"live_mean_bytes"`
	LiveMaxBytes     float64 `json:"live_max_bytes"`
	TracedTotalBytes uint64  `json:"traced_total_bytes"`
	OverheadPct      float64 `json:"overhead_pct"`
	PauseP50Seconds  float64 `json:"pause_p50_seconds"`
	PauseP90Seconds  float64 `json:"pause_p90_seconds"`
}

// RunStart implements Probe.
func (t *TelemetryWriter) RunStart(e RunStart) {
	t.emit(jsonRunStart{
		Event: "run_start", Label: e.Label, Collector: e.Collector,
		MIPS: e.Machine.MIPS, TraceBytesPer: e.Machine.TraceBytesPer,
		TriggerBytes: e.TriggerBytes, ProgressBytes: e.ProgressBytes,
		Opportunistic: e.Opportunistic,
	})
}

// Decision implements Probe.
func (t *TelemetryWriter) Decision(e Decision) {
	d := jsonDecision{
		Event: "decision", Label: e.Label, N: e.N, Trigger: e.Trigger,
		Now: e.Now, TB: e.TB, Candidates: e.Candidates,
		MemBefore: e.MemBefore, LiveBefore: e.LiveBefore,
	}
	if a := e.Adaptive; a != nil {
		if a.Arm >= 0 {
			arm := a.Arm
			d.Arm = &arm
		}
		d.FeaturesDigest = fmt.Sprintf("%016x", a.FeatureDigest)
	}
	t.emit(d)
}

// Scavenge implements Probe.
func (t *TelemetryWriter) Scavenge(e ScavengeEvent) {
	t.emit(jsonScavenge{
		Event: "scavenge", Label: e.Label, N: e.N, Trigger: e.Trigger,
		T: e.T, TB: e.TB, MemBefore: e.MemBefore, Traced: e.Traced,
		Reclaimed: e.Reclaimed, Surviving: e.Surviving, Live: e.Live,
		TenuredGarbage: e.TenuredGarbage, PauseSeconds: e.PauseSeconds,
	})
}

// Progress implements Probe.
func (t *TelemetryWriter) Progress(e Progress) {
	t.emit(jsonProgress{
		Event: "progress", Label: e.Label, Events: e.Events, Instr: e.Instr,
		Allocated: e.Clock, InUse: e.InUse, Live: e.Live,
		Collections: e.Collections,
	})
}

// RunFinish implements Probe.
func (t *TelemetryWriter) RunFinish(e RunFinish) {
	r := e.Result
	t.emit(jsonRunFinish{
		Event: "run_finish", Label: e.Label, Collector: r.Collector,
		Collections: r.Collections, TotalAlloc: r.TotalAlloc,
		ExecSeconds: r.ExecSeconds, MemMeanBytes: r.MemMeanBytes,
		MemMaxBytes: r.MemMaxBytes, LiveMeanBytes: r.LiveMeanBytes,
		LiveMaxBytes: r.LiveMaxBytes, TracedTotalBytes: r.TracedTotalBytes,
		OverheadPct:     r.OverheadPct,
		PauseP50Seconds: stats.Percentile(r.Pauses, 50),
		PauseP90Seconds: stats.Percentile(r.Pauses, 90),
	})
}

// Drops records recovery-mode trace damage in the telemetry stream: a
// "drops" line carrying the trace.DropStats accounting for the named
// run (or trace). It is not part of the Probe interface — drops are a
// property of the input stream, not of any one collector's run — so
// the replay harness calls it once per damaged source, after the runs
// it fed. Nothing is written when d is empty: an absent "drops" line
// means the stream decoded completely.
func (t *TelemetryWriter) Drops(label string, d trace.DropStats) {
	if !d.Any() {
		return
	}
	t.emit(jsonDrops{
		Event: "drops", Label: label,
		CorruptRecords: d.CorruptRecords, TornTail: d.TornTail,
		BytesDropped: d.BytesDropped,
	})
}

// ProgressReporter is the human-consumption Probe: one line per run
// start, periodic progress heartbeats, and a summary line per run
// finish, for watching long evaluation runs. Per-scavenge events are
// deliberately silent — a paper-scale run has hundreds.
//
// Like TelemetryWriter it is safe for concurrent runs; lines from
// parallel workloads interleave but stay whole.
type ProgressReporter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewProgressReporter returns a human progress/summary sink writing to
// w (typically os.Stderr).
func NewProgressReporter(w io.Writer) *ProgressReporter {
	return &ProgressReporter{w: w}
}

func (p *ProgressReporter) printf(format string, args ...any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, format, args...)
}

func label(l, collector string) string {
	if l != "" {
		return l
	}
	return collector
}

// RunStart implements Probe.
func (p *ProgressReporter) RunStart(e RunStart) {
	p.printf("start %s (trigger %.0f KB)\n", label(e.Label, e.Collector), float64(e.TriggerBytes)/1024)
}

// Decision implements Probe.
func (p *ProgressReporter) Decision(Decision) {}

// Scavenge implements Probe.
func (p *ProgressReporter) Scavenge(ScavengeEvent) {}

// Progress implements Probe.
func (p *ProgressReporter) Progress(e Progress) {
	p.printf("  %s: %.1f MB allocated, %d collections, %.0f KB in use\n",
		label(e.Label, ""), float64(e.Clock.Bytes())/(1024*1024), e.Collections,
		float64(e.InUse)/1024)
}

// RunFinish implements Probe.
func (p *ProgressReporter) RunFinish(e RunFinish) {
	r := e.Result
	p.printf("done  %s: %d collections, mem mean/max %.0f/%.0f KB, pause p50/p90 %.0f/%.0f ms, traced %.0f KB\n",
		label(e.Label, r.Collector), r.Collections,
		r.MemMeanBytes/1024, r.MemMaxBytes/1024,
		r.MedianPauseSeconds()*1000, r.P90PauseSeconds()*1000,
		float64(r.TracedTotalBytes)/1024)
}

var _ Probe = (*TelemetryWriter)(nil)
var _ Probe = (*ProgressReporter)(nil)
