package sim

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/trace"
)

func TestRunReaderMatchesRun(t *testing.T) {
	events := churnTrace(800, kb, 9, 7)
	for _, cfg := range []Config{
		{Policy: core.Full{}, TriggerBytes: 10 * kb},
		{Policy: core.DtbFM{TraceMax: 5 * kb}, TriggerBytes: 10 * kb},
		{Mode: ModeNoGC},
		{Mode: ModeLive},
	} {
		direct, err := Run(events, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteAll(&buf, events); err != nil {
			t.Fatal(err)
		}
		streamed, err := RunReader(trace.NewReader(&buf), cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Results must be identical, curve pointers aside.
		if direct.MemMeanBytes != streamed.MemMeanBytes ||
			direct.MemMaxBytes != streamed.MemMaxBytes ||
			direct.TracedTotalBytes != streamed.TracedTotalBytes ||
			direct.Collections != streamed.Collections ||
			!reflect.DeepEqual(direct.Pauses, streamed.Pauses) {
			t.Fatalf("%s: streamed result diverged from in-memory result", direct.Collector)
		}
	}
}

func TestRunReaderPropagatesDecodeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, churnTrace(50, kb, 2, 0)); err != nil {
		t.Fatal(err)
	}
	// Drop a single byte: every event is at least three bytes, so the
	// final event is guaranteed to be cut mid-record (dropping more
	// could remove a whole event and look like a clean EOF).
	truncated := buf.Bytes()[:buf.Len()-1]
	_, err := RunReader(trace.NewReader(bytes.NewReader(truncated)), Config{Policy: core.Full{}})
	if err == nil {
		t.Fatal("truncated stream simulated without error")
	}
}

func TestRunnerFeedAfterFinish(t *testing.T) {
	r, err := NewRunner(Config{Mode: ModeNoGC})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Feed(trace.Alloc(1, 8, 0)); err != nil {
		t.Fatal(err)
	}
	r.Finish()
	if err := r.Feed(trace.Alloc(2, 8, 1)); err == nil {
		t.Fatal("Feed after Finish accepted")
	}
}

func TestRunnerFinishIdempotent(t *testing.T) {
	r, err := NewRunner(Config{Mode: ModeNoGC})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Feed(trace.Alloc(1, 1024, 100)); err != nil {
		t.Fatal(err)
	}
	a := r.Finish()
	b := r.Finish()
	if a != b {
		t.Fatal("Finish not idempotent")
	}
}

func TestRunnerIncrementalUse(t *testing.T) {
	// Drive the runner by hand, interleaving inspection.
	r, err := NewRunner(Config{Policy: core.Full{}, TriggerBytes: 2 * kb})
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder()
	for i := 0; i < 10; i++ {
		b.Advance(100)
		id := b.Alloc(kb)
		if i%2 == 1 {
			b.Free(id)
		}
	}
	for _, e := range b.Events() {
		if err := r.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	res := r.Finish()
	if res.Collections != 5 {
		t.Fatalf("collections = %d, want 5", res.Collections)
	}
}

func TestTenuredGarbageMean(t *testing.T) {
	// Fixed1 on a tenure-then-die workload holds garbage; Full holds
	// almost none.
	events := churnTrace(600, kb, 15, 0)
	full := mustRun(t, events, tinyConfig(core.Full{}))
	fixed1 := mustRun(t, events, tinyConfig(core.Fixed{K: 1}))
	if fixed1.TenuredGarbageMeanBytes() <= full.TenuredGarbageMeanBytes() {
		t.Fatalf("Fixed1 tenured garbage %.0f not above Full's %.0f",
			fixed1.TenuredGarbageMeanBytes(), full.TenuredGarbageMeanBytes())
	}
	if full.TenuredGarbageMeanBytes() < 0 {
		t.Fatal("negative tenured garbage")
	}
	// Live mode holds exactly zero garbage.
	live := mustRun(t, events, Config{Mode: ModeLive})
	if math.Abs(live.TenuredGarbageMeanBytes()) > 1e-9 {
		t.Fatalf("Live mode garbage = %v", live.TenuredGarbageMeanBytes())
	}
}
