package sim

import "github.com/dtbgc/dtbgc/internal/core"

// Probe observes a simulation run as it happens: the paper's whole
// contribution is a collector that *reacts to measurements*, and a
// Probe is the window onto those measurements — the policy decision
// before each scavenge, the scavenge outcome, periodic allocation
// progress, and run start/finish.
//
// Telemetry observes, never influences: the runner passes probes
// copies of its state, calls them at well-defined points, and reads
// nothing back. A Probe must not mutate anything it is handed (the
// RunFinish result is shared with the caller of Run) and must not
// block; slow sinks slow the simulation but cannot change its result.
// Every run emits exactly the same event sequence for the same trace
// and configuration, so telemetry is as replayable as the simulation
// itself.
//
// The zero Probe (nil Config.Probe) is free: the hooks reduce to a
// nil check and the hot path allocates nothing on its behalf (see the
// no-probe allocation guard in the tests).
type Probe interface {
	// RunStart is emitted once, before any event is fed.
	RunStart(RunStart)
	// Decision is emitted after the policy chose the threatening
	// boundary for scavenge N, before any storage is traced.
	Decision(Decision)
	// Scavenge is emitted after scavenge N completed.
	Scavenge(ScavengeEvent)
	// Progress is emitted roughly every Config.ProgressBytes of
	// allocation.
	Progress(Progress)
	// RunFinish is emitted once, from Finish, with the final result.
	RunFinish(RunFinish)
}

// TriggerReason says why a scavenge ran.
type TriggerReason uint8

const (
	// TriggerByteBudget: the allocation interval (Config.TriggerBytes)
	// elapsed — the paper's fixed scavenge trigger.
	TriggerByteBudget TriggerReason = iota
	// TriggerMark: an opportunistic scavenge at a trace Mark event (a
	// program quiescent point, Wilson & Moher scheduling).
	TriggerMark
)

// String returns the wire name used in JSON telemetry.
func (t TriggerReason) String() string {
	switch t {
	case TriggerByteBudget:
		return "bytes"
	case TriggerMark:
		return "mark"
	}
	return "unknown"
}

// MarshalJSON encodes the reason as its wire name.
func (t TriggerReason) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// RunStart announces a run and its fixed configuration.
type RunStart struct {
	Label     string // Config.Label, "" when unset
	Collector string // policy name, "NoGC" or "Live"
	// Machine is the post-default machine model (MIPS, trace rate):
	// the constants every pause and overhead figure in the run's
	// events is derived from, so a sink — or an auditor — can verify
	// the arithmetic instead of assuming the paper's machine.
	Machine       Machine
	TriggerBytes  uint64
	ProgressBytes uint64
	Opportunistic bool
}

// Decision records one boundary-policy decision: the inputs the policy
// saw and the boundary it chose, emitted before the scavenge runs.
type Decision struct {
	Label   string
	N       int           // 1-based index of the scavenge about to run
	Trigger TriggerReason // why the scavenge was scheduled
	Now     core.Time     // t_n, the allocation clock at the decision
	TB      core.Time     // TB_n, the chosen boundary (post-clamp)
	// Candidates are the boundary ages available to the Table-1
	// policies at this decision: program start (a full collection)
	// plus the most recent prior scavenge times, oldest first, capped
	// at a fixed count. The chosen TB need not be a member — the
	// dynamic policies interpolate between candidates.
	Candidates []core.Time
	MemBefore  uint64 // Mem_n: bytes in use at the decision
	LiveBefore uint64 // oracle live bytes at the decision
	// Adaptive carries the learned-policy explanation for this decision
	// when the run's policy is a core.AdaptivePolicy whose instance
	// implements core.DecisionExplainer; nil for the stock (pure)
	// policies, so existing telemetry streams are unchanged.
	Adaptive *AdaptiveDecision
}

// AdaptiveDecision explains one adaptive-policy decision: which
// discrete arm was played (or -1 when the policy has no arm notion)
// and an FNV-1a digest of the feature vector / internal state the
// decision was computed from. The digest lets replay checks assert two
// engine paths computed the decision from bit-identical state without
// shipping the whole state per decision.
type AdaptiveDecision struct {
	Arm           int
	FeatureDigest uint64
}

// ScavengeEvent records one completed scavenge. Its fields match the
// core.Scavenge the run's History retains, plus the oracle-derived
// measures only the simulator knows.
type ScavengeEvent struct {
	Label     string
	N         int // 1-based scavenge index, matching History.Scavenges[N-1].N
	Trigger   TriggerReason
	T         core.Time // t_n
	TB        core.Time // TB_n
	MemBefore uint64
	Traced    uint64
	Reclaimed uint64
	Surviving uint64
	// Live is the oracle live-byte count just after the scavenge;
	// Surviving - Live is the garbage the boundary tenured.
	Live           uint64
	TenuredGarbage uint64
	PauseSeconds   float64 // Traced at the machine's trace rate
}

// Progress is the periodic allocation heartbeat for watching long
// runs: cadence is controlled by Config.ProgressBytes.
type Progress struct {
	Label       string
	Events      int       // trace events fed so far
	Instr       uint64    // instruction clock of the latest event
	Clock       core.Time // allocation clock
	InUse       uint64    // bytes in use under the run's mode
	Live        uint64    // oracle live bytes
	Collections int       // scavenges completed so far
}

// RunFinish closes a run's event stream with its final result. The
// Result is the same object Run returns — read-only for probes.
type RunFinish struct {
	Label  string
	Result *Result
}

// Probes combines several probes into one: every event is delivered
// to each non-nil probe in argument order. Nil entries are skipped,
// so callers can pass optional sinks unconditionally; with zero
// non-nil probes the result is nil (the free no-probe path), and a
// single non-nil probe is returned unwrapped.
func Probes(ps ...Probe) Probe {
	live := make([]Probe, 0, len(ps))
	for _, p := range ps {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiProbe(live)
}

// multiProbe fans every event out to each member in order.
type multiProbe []Probe

// RunStart implements Probe.
func (m multiProbe) RunStart(e RunStart) {
	for _, p := range m {
		p.RunStart(e)
	}
}

// Decision implements Probe.
func (m multiProbe) Decision(e Decision) {
	for _, p := range m {
		p.Decision(e)
	}
}

// Scavenge implements Probe.
func (m multiProbe) Scavenge(e ScavengeEvent) {
	for _, p := range m {
		p.Scavenge(e)
	}
}

// Progress implements Probe.
func (m multiProbe) Progress(e Progress) {
	for _, p := range m {
		p.Progress(e)
	}
}

// RunFinish implements Probe.
func (m multiProbe) RunFinish(e RunFinish) {
	for _, p := range m {
		p.RunFinish(e)
	}
}

var _ Probe = multiProbe(nil)

// maxCandidates caps the Decision candidate list so long runs emit
// bounded events.
const maxCandidates = 16

// boundaryCandidates lists the boundary ages a Table-1 policy can
// choose among at the next decision: 0 (program start, FULL's choice)
// and the most recent prior scavenge times (FIXED-k's t_{n-k}, the
// FEEDMED/DTBFM advance candidates). The history is read, never
// retained.
func boundaryCandidates(hist *core.History) []core.Time {
	n := len(hist.Scavenges)
	first := 0
	if n > maxCandidates-1 {
		first = n - (maxCandidates - 1)
	}
	out := make([]core.Time, 0, n-first+1)
	out = append(out, 0)
	for _, s := range hist.Scavenges[first:] {
		out = append(out, s.T)
	}
	return out
}
