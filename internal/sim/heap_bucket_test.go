package sim

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// lcg is a tiny deterministic generator for exercising the tape with
// varied-but-reproducible sizes and death patterns.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g) >> 33
}

// buildBucketTestTape drives a tape through an alloc/free mix that
// crosses many birth buckets and leaves a mixture of live and dead
// objects — the states LiveBytesBornAfter must account for. (Runner
// scavenges are irrelevant to the query: reclaimed objects are dead,
// and only live bytes count, which is what lets every runner on a
// shared tape use the same accounting.) It returns the tape and the
// clock readings at which objects were born (the interesting query
// points).
func buildBucketTestTape(t testing.TB, objects int) (*tape, []core.Time) {
	t.Helper()
	tp := newTape()
	g := lcg(12345)
	births := make([]core.Time, 0, objects)
	var out resolved
	for i := 0; i < objects; i++ {
		// Sizes up to ~20 KB guarantee births land in many distinct
		// 64 KB buckets and frequently straddle bucket boundaries.
		size := 16 + g.next()%20000
		if err := tp.resolve(trace.Alloc(trace.ObjectID(i+1), size, uint64(i)), &out); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		births = append(births, tp.clock)
		// Kill roughly half of the recent past.
		if i > 0 && g.next()%2 == 0 {
			victim := trace.ObjectID(1 + g.next()%uint64(i))
			if ord, ok := tp.index[victim]; ok && !tp.dead[ord] {
				if err := tp.resolve(trace.Free(victim, uint64(i)), &out); err != nil {
					t.Fatalf("free %d: %v", victim, err)
				}
			}
		}
	}
	return tp, births
}

// TestLiveBytesBornAfterMatchesNaive pins the birth-epoch bucket
// accounting to the naive tail scan it replaced, across query points
// on, between, and beyond object births and bucket boundaries.
func TestLiveBytesBornAfterMatchesNaive(t *testing.T) {
	tp, births := buildBucketTestTape(t, 4000)
	queries := []core.Time{0, 1, core.TimeAt(1 << birthBucketShift)}
	for i := 0; i < len(births); i += 7 {
		queries = append(queries, births[i], births[i].Add(1))
	}
	last := births[len(births)-1]
	queries = append(queries, last, last.Add(1), last.Add(1<<birthBucketShift))
	for _, q := range queries {
		got := tp.liveBytesBornAfter(q)
		want := tp.liveBytesBornAfterNaive(q)
		if got != want {
			t.Fatalf("liveBytesBornAfter(%d) = %d, naive scan says %d", q.Bytes(), got, want)
		}
	}
}

// TestLiveBytesBornAfterTracksMutation interleaves queries with
// further mutation: the incremental bucket sums must stay consistent
// as objects are born and die.
func TestLiveBytesBornAfterTracksMutation(t *testing.T) {
	tp := newTape()
	g := lcg(99)
	var births []core.Time
	var out resolved
	for i := 0; i < 2000; i++ {
		size := 8 + g.next()%5000
		if err := tp.resolve(trace.Alloc(trace.ObjectID(i+1), size, uint64(i)), &out); err != nil {
			t.Fatalf("alloc: %v", err)
		}
		births = append(births, tp.clock)
		if i%3 == 2 {
			victim := trace.ObjectID(1 + g.next()%uint64(i))
			if ord, ok := tp.index[victim]; ok && !tp.dead[ord] {
				if err := tp.resolve(trace.Free(victim, uint64(i)), &out); err != nil {
					t.Fatalf("free: %v", err)
				}
			}
		}
		if i%100 == 50 {
			q := births[uint64(len(births))/2]
			if got, want := tp.liveBytesBornAfter(q), tp.liveBytesBornAfterNaive(q); got != want {
				t.Fatalf("step %d: liveBytesBornAfter(%d) = %d, naive says %d", i, q.Bytes(), got, want)
			}
		}
	}
}

// BenchmarkLiveBytesBornAfter measures the boundary query both ways on
// a tape large enough that the tail scan's O(objects) cost shows: the
// bucket accounting must turn the policy-decision hot path into a
// bucket-suffix sum.
func BenchmarkLiveBytesBornAfter(b *testing.B) {
	tp, births := buildBucketTestTape(b, 50000)
	q := births[len(births)/10] // old boundary → long suffix, worst case for the scan
	b.Run("buckets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU64 = tp.liveBytesBornAfter(q)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU64 = tp.liveBytesBornAfterNaive(q)
		}
	})
}

var sinkU64 uint64
