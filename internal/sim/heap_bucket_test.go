package sim

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// lcg is a tiny deterministic generator for exercising the heap with
// varied-but-reproducible sizes and death patterns.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g) >> 33
}

// buildBucketTestHeap drives a heapModel through an alloc/free/scavenge
// mix that crosses many birth buckets and leaves a mixture of live,
// dead-unreclaimed, and reclaimed objects — the states
// LiveBytesBornAfter must account for. It returns the heap and the
// clock readings at which objects were born (the interesting query
// points).
func buildBucketTestHeap(t testing.TB, objects int) (*heapModel, []core.Time) {
	t.Helper()
	h := newHeapModel()
	g := lcg(12345)
	var clock core.Time
	births := make([]core.Time, 0, objects)
	for i := 0; i < objects; i++ {
		// Sizes up to ~20 KB guarantee births land in many distinct
		// 64 KB buckets and frequently straddle bucket boundaries.
		size := 16 + g.next()%20000
		clock = clock.Add(size)
		if err := h.alloc(trace.ObjectID(i+1), size, clock, 0); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		births = append(births, clock)
		// Kill roughly half of the recent past.
		if i > 0 && g.next()%2 == 0 {
			victim := trace.ObjectID(1 + g.next()%uint64(i))
			if _, ok := h.index[victim]; ok && !h.objs[h.index[victim]].dead {
				if err := h.free(victim); err != nil {
					t.Fatalf("free %d: %v", victim, err)
				}
			}
		}
		// Occasionally scavenge a prefix so reclaimed objects vanish
		// from the model, as they do mid-run.
		if i%257 == 256 {
			h.scavenge(births[i-100])
		}
	}
	return h, births
}

// TestLiveBytesBornAfterMatchesNaive pins the birth-epoch bucket
// accounting to the naive tail scan it replaced, across query points
// on, between, and beyond object births and bucket boundaries.
func TestLiveBytesBornAfterMatchesNaive(t *testing.T) {
	h, births := buildBucketTestHeap(t, 4000)
	queries := []core.Time{0, 1, core.TimeAt(1 << birthBucketShift)}
	for i := 0; i < len(births); i += 7 {
		queries = append(queries, births[i], births[i].Add(1))
	}
	last := births[len(births)-1]
	queries = append(queries, last, last.Add(1), last.Add(1<<birthBucketShift))
	for _, q := range queries {
		got := h.LiveBytesBornAfter(q)
		want := h.liveBytesBornAfterNaive(q)
		if got != want {
			t.Fatalf("LiveBytesBornAfter(%d) = %d, naive scan says %d", q.Bytes(), got, want)
		}
	}
}

// TestLiveBytesBornAfterTracksMutation interleaves queries with
// further mutation: the incremental bucket sums must stay consistent
// as objects are born, die, and are reclaimed.
func TestLiveBytesBornAfterTracksMutation(t *testing.T) {
	h := newHeapModel()
	g := lcg(99)
	var clock core.Time
	var births []core.Time
	for i := 0; i < 2000; i++ {
		size := 8 + g.next()%5000
		clock = clock.Add(size)
		if err := h.alloc(trace.ObjectID(i+1), size, clock, 0); err != nil {
			t.Fatalf("alloc: %v", err)
		}
		births = append(births, clock)
		if i%3 == 2 {
			victim := trace.ObjectID(1 + g.next()%uint64(i))
			if j, ok := h.index[victim]; ok && !h.objs[j].dead {
				if err := h.free(victim); err != nil {
					t.Fatalf("free: %v", err)
				}
			}
		}
		if i%100 == 50 {
			q := births[uint64(len(births))/2]
			if got, want := h.LiveBytesBornAfter(q), h.liveBytesBornAfterNaive(q); got != want {
				t.Fatalf("step %d: LiveBytesBornAfter(%d) = %d, naive says %d", i, q.Bytes(), got, want)
			}
		}
		if i%333 == 332 {
			h.scavenge(births[len(births)/4])
		}
	}
}

// BenchmarkLiveBytesBornAfter measures the boundary query both ways on
// a heap large enough that the tail scan's O(live objects) cost shows:
// the bucket accounting must turn the policy-decision hot path into a
// bucket-suffix sum.
func BenchmarkLiveBytesBornAfter(b *testing.B) {
	h, births := buildBucketTestHeap(b, 50000)
	q := births[len(births)/10] // old boundary → long suffix, worst case for the scan
	b.Run("buckets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU64 = h.LiveBytesBornAfter(q)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU64 = h.liveBytesBornAfterNaive(q)
		}
	})
}

var sinkU64 uint64
