package sim

import (
	"math"
	"reflect"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// fleetMatrix is a config set covering every per-runner state variant
// the shared tape must stay bit-identical for: policy collectors,
// both baselines, the reference scan path, opportunistic scheduling
// and the virtual-memory model.
func fleetMatrix() []Config {
	return []Config{
		{Policy: core.Full{}, TriggerBytes: 10 * kb},
		{Policy: core.Fixed{K: 1}, TriggerBytes: 10 * kb},
		{Policy: core.DtbFM{TraceMax: 5 * kb}, TriggerBytes: 10 * kb},
		{Policy: core.DtbMem{MemMax: 40 * kb}, TriggerBytes: 10 * kb},
		{Policy: core.Full{}, TriggerBytes: 10 * kb, ReferenceScan: true},
		{Policy: core.Full{}, TriggerBytes: 10 * kb, Opportunistic: true},
		{Policy: core.Full{}, TriggerBytes: 10 * kb, PageFrames: 8, RecordCurve: true},
		{Mode: ModeNoGC},
		{Mode: ModeLive},
	}
}

// markedChurnTrace is churnTrace with Mark and PtrWrite events mixed
// in, so batch equivalence covers every event kind.
func markedChurnTrace(n int) []trace.Event {
	events := churnTrace(n, 256, 12, 40)
	out := make([]trace.Event, 0, len(events)+len(events)/5)
	for i, e := range events {
		out = append(out, e)
		if i%10 == 4 && e.Kind == trace.KindAlloc {
			out = append(out, trace.PtrWrite(e.ID, 0, e.ID, e.Instr))
		}
		if i%25 == 24 {
			out = append(out, trace.Mark("m", e.Instr))
		}
	}
	return out
}

// TestFleetMatchesSoloRuns pins the shared-tape fleet to the per-event
// reference path: every collector's Result out of a Fleet must equal
// (reflect.DeepEqual — exact bits, histories and curves included) a
// solo sim.Run over the same events, for every batch size including
// degenerate ones.
func TestFleetMatchesSoloRuns(t *testing.T) {
	events := markedChurnTrace(3000)
	cfgs := fleetMatrix()

	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = mustRun(t, events, cfg)
	}

	for _, batch := range []int{1, 7, 256, 4096, len(events) + 1} {
		fleet, err := NewFleet(cfgs)
		if err != nil {
			t.Fatalf("batch %d: NewFleet: %v", batch, err)
		}
		for lo := 0; lo < len(events); lo += batch {
			hi := min(lo+batch, len(events))
			if err := fleet.FeedBatch(events[lo:hi]); err != nil {
				t.Fatalf("batch %d: FeedBatch(%d:%d): %v", batch, lo, hi, err)
			}
		}
		got := fleet.Finish()
		if fleet.Events() != len(events) {
			t.Fatalf("batch %d: fleet processed %d events, want %d", batch, fleet.Events(), len(events))
		}
		for i := range cfgs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("batch %d, %s: fleet result differs from solo run\ngot  %+v\nwant %+v",
					batch, want[i].Collector, got[i], want[i])
			}
		}
	}
}

// TestRunnerFeedBatchMatchesFeed pins the solo batch entry point to
// the per-event one.
func TestRunnerFeedBatchMatchesFeed(t *testing.T) {
	events := markedChurnTrace(2000)
	cfg := tinyConfig(core.DtbFM{TraceMax: 5 * kb})
	want := mustRun(t, events, cfg)

	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(events); lo += 100 {
		if err := r.FeedBatch(events[lo:min(lo+100, len(events))]); err != nil {
			t.Fatalf("FeedBatch: %v", err)
		}
	}
	if got := r.Finish(); !reflect.DeepEqual(got, want) {
		t.Errorf("FeedBatch result differs from Feed result\ngot  %+v\nwant %+v", got, want)
	}
}

// TestFleetErrorLeavesConsistentPrefix: a validation error mid-batch
// must leave every runner having applied exactly the events before the
// offending one, and report the same error a solo Feed would.
func TestFleetErrorLeavesConsistentPrefix(t *testing.T) {
	good := churnTrace(100, kb, 5, 0)
	bad := append(append([]trace.Event{}, good...),
		trace.Free(9999, good[len(good)-1].Instr)) // free of unknown object

	cfgs := fleetMatrix()
	fleet, err := NewFleet(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	ferr := fleet.FeedBatch(bad)
	if ferr == nil {
		t.Fatal("invalid free accepted")
	}
	r, err := NewRunner(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	var serr error
	for _, e := range bad {
		if serr = r.Feed(e); serr != nil {
			break
		}
	}
	if serr == nil || serr.Error() != ferr.Error() {
		t.Fatalf("fleet error %q, solo Feed error %q", ferr, serr)
	}
	// The valid prefix reached every runner: finishing now must match
	// solo runs over just the prefix.
	got := fleet.Finish()
	for i, cfg := range cfgs {
		want := mustRun(t, good, cfg)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("%s: post-error fleet state differs from solo prefix run", want.Collector)
		}
	}
}

// TestFleetRunnerRejectsDirectFeed: a fleet-owned runner must refuse
// Runner.Feed/FeedBatch — a direct feed would advance the shared tape
// ahead of the sibling runners.
func TestFleetRunnerRejectsDirectFeed(t *testing.T) {
	fleet, err := NewFleet([]Config{{Mode: ModeNoGC}})
	if err != nil {
		t.Fatal(err)
	}
	r := fleet.Runners()[0]
	if err := r.Feed(trace.Alloc(1, 8, 0)); err == nil {
		t.Fatal("direct Feed on a fleet runner accepted")
	}
	if err := r.FeedBatch([]trace.Event{trace.Alloc(1, 8, 0)}); err == nil {
		t.Fatal("direct FeedBatch on a fleet runner accepted")
	}
	if n := fleet.Events(); n != 0 {
		t.Fatalf("rejected feeds advanced the tape to %d", n)
	}
}

// TestFeedBatchSteadyStateAllocs pins the batch hot path's allocation
// behavior: feeding events that grow no tape or runner arrays (pointer
// writes and marks) must not allocate at all, per the //dtbvet:hotpath
// contract on resolve/apply/FeedBatch.
func TestFeedBatchSteadyStateAllocs(t *testing.T) {
	cfgs := []Config{
		{Policy: core.Full{}, TriggerBytes: 1 << 30}, // never triggers
		{Mode: ModeNoGC},
		{Mode: ModeLive},
	}
	fleet, err := NewFleet(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.FeedBatch(churnTrace(500, 256, 12, 0)); err != nil {
		t.Fatal(err)
	}
	instr := uint64(500 * 100)
	batch := make([]trace.Event, 64)
	for i := range batch {
		if i%2 == 0 {
			batch[i] = trace.PtrWrite(trace.ObjectID(490+i%8), 0, 1, instr)
		} else {
			batch[i] = trace.Mark("", instr)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := fleet.FeedBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("FeedBatch allocates %v times per steady-state batch, want 0", allocs)
	}
}

// TestFleetValidatesEveryConfigFirst: an invalid config anywhere in
// the set must fail construction before any runner (and so any probe
// stream) is created.
func TestFleetValidatesEveryConfigFirst(t *testing.T) {
	started := 0
	probe := &countingProbe{starts: &started}
	_, err := NewFleet([]Config{
		{Mode: ModeNoGC, Probe: probe},
		{Mode: ModePolicy}, // no policy: invalid
	})
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if started != 0 {
		t.Fatalf("probe saw %d RunStart events before validation failed, want 0", started)
	}
}

type countingProbe struct{ starts *int }

func (p *countingProbe) RunStart(RunStart)      { *p.starts++ }
func (p *countingProbe) Decision(Decision)      {}
func (p *countingProbe) Scavenge(ScavengeEvent) {}
func (p *countingProbe) Progress(Progress)      {}
func (p *countingProbe) RunFinish(RunFinish)    {}

// TestTapeTotalsMatchLiveOracle sanity-checks the tape accounting the
// whole fleet shares: after a full replay, live bytes equal allocation
// minus frees, and the NoGC/Live results read straight off it.
func TestTapeTotalsMatchLiveOracle(t *testing.T) {
	events := churnTrace(1000, kb, 9, 13)
	var alloced, freed uint64
	sizes := map[trace.ObjectID]uint64{}
	for _, e := range events {
		switch e.Kind {
		case trace.KindAlloc:
			alloced += e.Size
			sizes[e.ID] = e.Size
		case trace.KindFree:
			freed += sizes[e.ID]
		case trace.KindMark, trace.KindPtrWrite:
		default:
		}
	}
	fleet, err := NewFleet([]Config{{Mode: ModeNoGC}, {Mode: ModeLive}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	res := fleet.Finish()
	if res[0].TotalAlloc != alloced {
		t.Errorf("TotalAlloc = %d, want %d", res[0].TotalAlloc, alloced)
	}
	if got := fleet.tape.live; got != alloced-freed {
		t.Errorf("tape live = %d, want %d", got, alloced-freed)
	}
	if math.Float64bits(res[1].MemMaxBytes) != math.Float64bits(res[1].LiveMaxBytes) {
		t.Errorf("Live baseline max %v differs from live max %v", res[1].MemMaxBytes, res[1].LiveMaxBytes)
	}
}
