package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
)

// TestTelemetrySinksConcurrentFleets is the daemon-grade concurrency
// audit in executable form: N concurrent fleets share ONE
// TelemetryWriter and ONE ProgressReporter (the documented-supported
// sharing — one writer per sink, unique labels per run). Under the
// race detector this proves the sinks' locking covers the whole emit
// surface; the demux check proves every line stays whole and lands
// under the right label even when runs interleave.
//
// The contract this pins (and internal/daemon relies on): a sink may
// be shared across concurrent runs only when each run has a unique
// label and the sink owns its writer exclusively. Label-keyed sinks
// (the auditor) and writer-sharing between two sinks are NOT covered
// by the sinks' internal mutexes — which is why the daemon builds
// per-request sinks instead of sharing one across requests.
func TestTelemetrySinksConcurrentFleets(t *testing.T) {
	const fleets = 8
	events := probeTrace()

	var telBuf, progBuf bytes.Buffer
	tw := NewTelemetryWriter(&telBuf)
	pr := NewProgressReporter(&progBuf)

	var wg sync.WaitGroup
	errs := make([]error, fleets)
	for g := 0; g < fleets; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfgs := []Config{
				{
					Policy: core.Full{}, TriggerBytes: 16 * 1024,
					Probe: Probes(tw, pr), Label: fmt.Sprintf("g%d/full", g),
					ProgressBytes: 32 * 1024,
				},
				{
					Policy: core.DtbFM{TraceMax: 4 * 1024}, TriggerBytes: 16 * 1024,
					Probe: Probes(tw, pr), Label: fmt.Sprintf("g%d/dtbfm", g),
					ProgressBytes: 32 * 1024,
				},
			}
			fleet, err := NewFleet(cfgs)
			if err != nil {
				errs[g] = err
				return
			}
			if err := fleet.FeedBatch(events); err != nil {
				errs[g] = err
				return
			}
			fleet.Finish()
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("fleet %d: %v", g, err)
		}
	}
	if err := tw.Err(); err != nil {
		t.Fatalf("telemetry writer: %v", err)
	}

	// Demux: every line is complete JSON with a known label, and each
	// run's stream is framed by exactly one run_start and one
	// run_finish.
	starts := make(map[string]int)
	finishes := make(map[string]int)
	sc := bufio.NewScanner(bytes.NewReader(telBuf.Bytes()))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lines := 0
	for sc.Scan() {
		lines++
		var rec struct {
			Event string `json:"event"`
			Label string `json:"label"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not whole JSON (interleaved write?): %v\n%s", lines, err, sc.Bytes())
		}
		switch rec.Event {
		case "run_start":
			starts[rec.Label]++
		case "run_finish":
			finishes[rec.Label]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < fleets; g++ {
		for _, lbl := range []string{fmt.Sprintf("g%d/full", g), fmt.Sprintf("g%d/dtbfm", g)} {
			if starts[lbl] != 1 || finishes[lbl] != 1 {
				t.Errorf("label %s: %d run_start / %d run_finish, want 1/1", lbl, starts[lbl], finishes[lbl])
			}
		}
	}
	if len(starts) != 2*fleets {
		t.Errorf("saw %d labels, want %d", len(starts), 2*fleets)
	}
}

// TestTelemetrySinksConcurrentSoloRuns covers the per-request-sink
// pattern the daemon enforces: every concurrent run gets its own
// TelemetryWriter over its own buffer, and each stream must come out
// identical to a serial run of the same configuration — concurrency
// must not leak between requests at all.
func TestTelemetrySinksConcurrentSoloRuns(t *testing.T) {
	const runs = 8
	events := probeTrace()
	cfg := func(p Probe) Config {
		return Config{
			Policy: core.DtbFM{TraceMax: 4 * 1024}, TriggerBytes: 16 * 1024,
			Probe: p, Label: "req", ProgressBytes: 32 * 1024,
		}
	}

	var serial bytes.Buffer
	if _, err := Run(events, cfg(NewTelemetryWriter(&serial))); err != nil {
		t.Fatal(err)
	}

	bufs := make([]bytes.Buffer, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for g := 0; g < runs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[g] = Run(events, cfg(NewTelemetryWriter(&bufs[g])))
		}()
	}
	wg.Wait()
	for g := 0; g < runs; g++ {
		if errs[g] != nil {
			t.Fatalf("run %d: %v", g, errs[g])
		}
		if !bytes.Equal(bufs[g].Bytes(), serial.Bytes()) {
			t.Errorf("run %d: concurrent per-request stream differs from the serial stream", g)
		}
	}
}
