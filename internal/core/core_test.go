package core

import (
	"testing"
	"testing/quick"
)

// fakeHeap implements Heap from a set of (birth, size, live) triples.
type fakeHeap struct {
	inUse uint64
	objs  []fakeObj
}

type fakeObj struct {
	birth Time
	size  uint64
	live  bool
}

func (h *fakeHeap) BytesInUse() uint64 { return h.inUse }

func (h *fakeHeap) LiveBytesBornAfter(t Time) uint64 {
	var sum uint64
	for _, o := range h.objs {
		if o.live && o.birth > t {
			sum += o.size
		}
	}
	return sum
}

func histWith(scavs ...Scavenge) *History {
	h := &History{}
	for _, s := range scavs {
		h.Record(s)
	}
	return h
}

func TestHistoryRecordAssignsIndices(t *testing.T) {
	h := histWith(Scavenge{T: 10}, Scavenge{T: 20})
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	if h.Scavenges[0].N != 1 || h.Scavenges[1].N != 2 {
		t.Fatalf("indices not assigned: %+v", h.Scavenges)
	}
	last, ok := h.Last()
	if !ok || last.T != 20 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
}

func TestHistoryEmptyLast(t *testing.T) {
	h := &History{}
	if _, ok := h.Last(); ok {
		t.Fatal("empty history reported a last scavenge")
	}
}

func TestTimeOfPrevious(t *testing.T) {
	h := histWith(Scavenge{T: 10}, Scavenge{T: 20}, Scavenge{T: 30})
	cases := []struct {
		k    int
		want Time
	}{{1, 30}, {2, 20}, {3, 10}, {4, 0}, {100, 0}}
	for _, c := range cases {
		if got := h.TimeOfPrevious(c.k); got != c.want {
			t.Errorf("TimeOfPrevious(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestTimeOfPreviousPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TimeOfPrevious(0) did not panic")
		}
	}()
	(&History{}).TimeOfPrevious(0)
}

func TestTenuredGarbage(t *testing.T) {
	s := Scavenge{Surviving: 100}
	if g := s.TenuredGarbage(60); g != 40 {
		t.Errorf("TenuredGarbage = %d, want 40", g)
	}
	if g := s.TenuredGarbage(200); g != 0 {
		t.Errorf("TenuredGarbage with live > surviving = %d, want 0", g)
	}
}

func TestFullAlwaysZero(t *testing.T) {
	p := Full{}
	if p.Name() != "Full" {
		t.Errorf("Name = %q", p.Name())
	}
	h := histWith(Scavenge{T: 100, TB: 50})
	if tb := p.Boundary(200, h, &fakeHeap{}); tb != 0 {
		t.Errorf("Full boundary = %d, want 0", tb)
	}
}

func TestFixedPolicies(t *testing.T) {
	h := histWith(Scavenge{T: 10}, Scavenge{T: 20}, Scavenge{T: 30}, Scavenge{T: 40})
	if tb := (Fixed{K: 1}).Boundary(50, h, nil); tb != 40 {
		t.Errorf("Fixed1 = %d, want 40", tb)
	}
	if tb := (Fixed{K: 4}).Boundary(50, h, nil); tb != 10 {
		t.Errorf("Fixed4 = %d, want 10", tb)
	}
	// Before enough scavenges have happened, FixedK collects fully.
	h2 := histWith(Scavenge{T: 10})
	if tb := (Fixed{K: 4}).Boundary(20, h2, nil); tb != 0 {
		t.Errorf("Fixed4 early = %d, want 0", tb)
	}
	if (Fixed{K: 1}).Name() != "Fixed1" || (Fixed{K: 4}).Name() != "Fixed4" {
		t.Error("Fixed names wrong")
	}
}

func TestFixedPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fixed{K:0} did not panic")
		}
	}()
	(Fixed{K: 0}).Boundary(10, &History{}, nil)
}

func TestFirstScavengeIsFullForAllPolicies(t *testing.T) {
	// Paper: "Both collectors do a full collection on the first
	// scavenging by setting the initial threatening boundary to 0."
	heap := &fakeHeap{inUse: 500}
	empty := &History{}
	policies := []Policy{Full{}, Fixed{K: 1}, Fixed{K: 4}, FeedMed{TraceMax: 100}, DtbFM{TraceMax: 100}, DtbMem{MemMax: 1000}}
	for _, p := range policies {
		if tb := p.Boundary(1000, empty, heap); tb != 0 {
			t.Errorf("%s first boundary = %d, want 0", p.Name(), tb)
		}
	}
}

func TestFeedMedUnderBudgetKeepsBoundary(t *testing.T) {
	p := FeedMed{TraceMax: 100}
	h := histWith(Scavenge{T: 1000, TB: 400, Traced: 80})
	if tb := p.Boundary(2000, h, &fakeHeap{}); tb != 400 {
		t.Errorf("under-budget FeedMed moved boundary to %d, want 400", tb)
	}
}

func TestFeedMedOverBudgetAdvances(t *testing.T) {
	p := FeedMed{TraceMax: 100}
	// Scavenges at t=1000, 2000, 3000. Previous TB was 1000 and traced
	// 150 (> 100). Live bytes born after 1000: 150; after 2000: 90.
	// FEEDMED should pick the least t_k under budget => 2000.
	heap := &fakeHeap{objs: []fakeObj{
		{birth: 1500, size: 60, live: true},
		{birth: 2500, size: 90, live: true},
		{birth: 500, size: 999, live: true}, // immune either way
	}}
	h := histWith(
		Scavenge{T: 1000, TB: 0, Traced: 500},
		Scavenge{T: 2000, TB: 500, Traced: 120},
		Scavenge{T: 3000, TB: 1000, Traced: 150},
	)
	if tb := p.Boundary(4000, h, heap); tb != 2000 {
		t.Errorf("FeedMed advanced to %d, want 2000", tb)
	}
}

func TestFeedMedNeverRetreatsBeforePrevTB(t *testing.T) {
	p := FeedMed{TraceMax: 1000000}
	// Hugely over budget previously, but all candidates fit now; the
	// boundary must still be >= TB_{n-1}, never younger history.
	heap := &fakeHeap{}
	h := histWith(
		Scavenge{T: 100, TB: 0, Traced: 10},
		Scavenge{T: 200, TB: 150, Traced: 2000000},
	)
	tb := p.Boundary(300, h, heap)
	if tb < 150 {
		t.Errorf("FeedMed retreated to %d, before previous TB 150", tb)
	}
}

func TestFeedMedAllCandidatesOverBudget(t *testing.T) {
	p := FeedMed{TraceMax: 10}
	heap := &fakeHeap{objs: []fakeObj{{birth: 2900, size: 500, live: true}}}
	h := histWith(
		Scavenge{T: 1000, TB: 0, Traced: 50},
		Scavenge{T: 2000, TB: 1000, Traced: 60},
		Scavenge{T: 3000, TB: 2000, Traced: 70},
	)
	// Even t_{n-1}=3000's young set is over budget... actually the
	// object born at 2900 is before 3000, so born-after-3000 is 0 <= 10
	// and 3000 qualifies.
	if tb := p.Boundary(4000, h, heap); tb != 3000 {
		t.Errorf("FeedMed = %d, want 3000 (cheapest boundary)", tb)
	}
}

func TestDtbFMWidensWindowProportionally(t *testing.T) {
	p := DtbFM{TraceMax: 100}
	// Previous window (t_{n-1} - TB_{n-1}) = 1000-600 = 400, traced 50,
	// budget 100 => new window 800 back from now=2000 => TB 1200, but
	// clamped to t_{n-1} = 1000.
	h := histWith(Scavenge{T: 1000, TB: 600, Traced: 50})
	if tb := p.Boundary(2000, h, &fakeHeap{}); tb != 1000 {
		t.Errorf("DtbFM = %d, want clamp at 1000", tb)
	}
	// With now = 1500 the unclamped value 1500-800 = 700 applies.
	if tb := p.Boundary(1500, h, &fakeHeap{}); tb != 700 {
		t.Errorf("DtbFM = %d, want 700", tb)
	}
}

func TestDtbFMOverBudgetUsesFeedMed(t *testing.T) {
	fm := FeedMed{TraceMax: 100}
	dtb := DtbFM{TraceMax: 100}
	heap := &fakeHeap{objs: []fakeObj{
		{birth: 1500, size: 60, live: true},
		{birth: 2500, size: 90, live: true},
	}}
	h := histWith(
		Scavenge{T: 1000, TB: 0, Traced: 500},
		Scavenge{T: 2000, TB: 500, Traced: 120},
		Scavenge{T: 3000, TB: 1000, Traced: 150},
	)
	if got, want := dtb.Boundary(4000, h, heap), fm.Boundary(4000, h, heap); got != want {
		t.Errorf("over-budget DtbFM = %d, want FeedMed's %d", got, want)
	}
}

func TestDtbFMZeroTraceGoesFull(t *testing.T) {
	p := DtbFM{TraceMax: 100}
	h := histWith(Scavenge{T: 1000, TB: 900, Traced: 0})
	if tb := p.Boundary(2000, h, &fakeHeap{}); tb != 0 {
		t.Errorf("DtbFM with zero previous trace = %d, want 0", tb)
	}
}

func TestDtbFMWindowCannotUnderflow(t *testing.T) {
	p := DtbFM{TraceMax: 1 << 40} // enormous budget
	h := histWith(Scavenge{T: 1000, TB: 0, Traced: 1})
	if tb := p.Boundary(2000, h, &fakeHeap{}); tb != 0 {
		t.Errorf("DtbFM huge budget = %d, want 0 (full)", tb)
	}
}

func TestDtbMemGenerousBudgetActsLikeFixed1(t *testing.T) {
	p := DtbMem{MemMax: 1 << 40}
	h := histWith(Scavenge{T: 1000, TB: 0, Traced: 400, Surviving: 600})
	heap := &fakeHeap{inUse: 900}
	if tb := p.Boundary(2000, h, heap); tb != 1000 {
		t.Errorf("generous DtbMem = %d, want t_{n-1} = 1000", tb)
	}
}

func TestDtbMemOverConstrainedGoesFull(t *testing.T) {
	// L_est = (600+400)/2 = 500 >= MemMax = 300: collect everything.
	p := DtbMem{MemMax: 300}
	h := histWith(Scavenge{T: 1000, TB: 0, Traced: 400, Surviving: 600})
	heap := &fakeHeap{inUse: 900}
	if tb := p.Boundary(2000, h, heap); tb != 0 {
		t.Errorf("over-constrained DtbMem = %d, want 0", tb)
	}
}

func TestDtbMemProportionalMiddleGround(t *testing.T) {
	// L_est = 500, slack = 700-500 = 200, mem = 1000, now = 2000:
	// tb = 2000 * 200/1000 = 400 (< t_{n-1}=1000, no clamp).
	p := DtbMem{MemMax: 700}
	h := histWith(Scavenge{T: 1000, TB: 0, Traced: 400, Surviving: 600})
	heap := &fakeHeap{inUse: 1000}
	if tb := p.Boundary(2000, h, heap); tb != 400 {
		t.Errorf("DtbMem = %d, want 400", tb)
	}
}

func TestDtbMemZeroMemInUse(t *testing.T) {
	p := DtbMem{MemMax: 700}
	h := histWith(Scavenge{T: 1000, TB: 0, Traced: 0, Surviving: 0})
	if tb := p.Boundary(2000, h, &fakeHeap{inUse: 0}); tb != 1000 {
		t.Errorf("DtbMem on empty heap = %d, want t_{n-1}", tb)
	}
}

func TestDtbMemTighterBudgetOlderBoundary(t *testing.T) {
	// Monotonicity: a smaller MemMax must never give a younger
	// boundary (more budget => less collection pressure).
	h := histWith(Scavenge{T: 5000, TB: 1000, Traced: 800, Surviving: 1200})
	heap := &fakeHeap{inUse: 2500}
	check := func(a, b uint16) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		tbLo := (DtbMem{MemMax: lo}).Boundary(6000, h, heap)
		tbHi := (DtbMem{MemMax: hi}).Boundary(6000, h, heap)
		return tbLo <= tbHi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDtbFMLargerBudgetOlderBoundary(t *testing.T) {
	// Monotonicity: under budget, a larger TraceMax widens the window
	// (older TB) until the clamps engage.
	h := histWith(Scavenge{T: 1000, TB: 800, Traced: 100})
	heap := &fakeHeap{}
	check := func(a, b uint16) bool {
		lo, hi := uint64(a)+101, uint64(b)+101 // stay in the under-budget branch
		if lo > hi {
			lo, hi = hi, lo
		}
		tbLo := (DtbFM{TraceMax: lo}).Boundary(1200, h, heap)
		tbHi := (DtbFM{TraceMax: hi}).Boundary(1200, h, heap)
		return tbHi <= tbLo
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundariesNeverInFuture(t *testing.T) {
	// Property: for arbitrary (sane) histories, every policy's clamped
	// boundary is within [0, now] and respects TB <= t_{n-1} for the
	// policies that promise it.
	check := func(t1raw, tracedRaw, survRaw, memRaw uint16) bool {
		t1 := Time(t1raw) + 1
		now := t1 * 2
		hist := histWith(Scavenge{
			T: t1, TB: 0,
			Traced:    uint64(tracedRaw),
			Surviving: uint64(survRaw),
			MemBefore: uint64(memRaw),
		})
		heap := &fakeHeap{inUse: uint64(memRaw)}
		for _, p := range []Policy{Full{}, Fixed{K: 1}, Fixed{K: 4}, FeedMed{TraceMax: 500}, DtbFM{TraceMax: 500}, DtbMem{MemMax: 800}} {
			tb := ClampBoundary(p.Boundary(now, hist, heap), now)
			if tb > now {
				return false
			}
			switch p.(type) {
			case DtbFM, DtbMem, Fixed:
				if tb > t1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestClampBoundary(t *testing.T) {
	if ClampBoundary(500, 100) != 100 {
		t.Error("future boundary not clamped to now")
	}
	if ClampBoundary(50, 100) != 50 {
		t.Error("valid boundary altered")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[Policy]string{
		Full{}:               "Full",
		Fixed{K: 1}:          "Fixed1",
		FeedMed{TraceMax: 1}: "FeedMed",
		DtbFM{TraceMax: 1}:   "DtbFM",
		DtbMem{MemMax: 1}:    "DtbMem",
	}
	for p, want := range names {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}
