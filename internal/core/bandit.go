package core

import (
	"encoding/json"
	"fmt"
	"math"

	"github.com/dtbgc/dtbgc/internal/xrand"
)

// Bandit is an adaptive policy that treats boundary selection as a
// multi-armed bandit over a fixed grid of candidate boundaries: arm i
// of K places TB at the fraction i/(K-1) of t_{n-1}, so arm 0 is a
// full collection and arm K-1 is FIXED1's choice. After each scavenge
// the played arm is charged the normalized cost of what the boundary
// bought — bytes traced (CPU) plus tenured garbage left behind
// (memory) over the heap size — and the selector steers toward the
// cheapest arm.
//
// Two selectors are provided: ε-greedy (explore with probability Eps,
// otherwise play the best mean; the paper-adjacent default) and UCB1
// (play the best mean plus UCB·sqrt(ln n / n_i); set UCB > 0 to
// select it, in which case Eps is ignored). Exploration randomness
// comes from the per-run seed, so a run is a deterministic function
// of (spec, seed, trace).
type Bandit struct {
	Eps  float64 // ε-greedy exploration probability (used when UCB == 0)
	UCB  float64 // UCB1 exploration coefficient; > 0 selects UCB mode
	Arms int     // candidate-boundary grid size; 0 means 8, minimum 2
}

// arms returns the post-default grid size.
func (b Bandit) arms() int {
	if b.Arms == 0 {
		return 8
	}
	if b.Arms < 2 {
		return 2
	}
	return b.Arms
}

// Name implements Policy.
func (b Bandit) Name() string {
	if b.UCB > 0 {
		return fmt.Sprintf("Bandit[ucb=%g,arms=%d]", b.UCB, b.arms())
	}
	return fmt.Sprintf("Bandit[eps=%g,arms=%d]", b.Eps, b.arms())
}

// Boundary implements Policy. Adaptive policies do not run stateless:
// calling the family value's Boundary is a bug, and failing loudly
// here beats silently forgetting every observation.
func (b Bandit) Boundary(Time, *History, Heap) Time {
	panic("core: Bandit is an AdaptivePolicy: call NewRun(seed) and use the PolicyInstance (sim does this automatically)")
}

// NewRun implements AdaptivePolicy.
func (b Bandit) NewRun(seed uint64) PolicyInstance {
	k := b.arms()
	return &banditInstance{
		p:       b,
		rng:     xrand.New(seed),
		counts:  make([]uint64, k),
		rewards: make([]float64, k),
		pending: -1,
	}
}

// banditInstance is one run's bandit state.
type banditInstance struct {
	p       Bandit
	rng     *xrand.Rand
	counts  []uint64  // plays per arm
	rewards []float64 // summed reward per arm
	plays   uint64
	pending int // arm awaiting its Observe, -1 when none
	last    DecisionInfo
	hasLast bool
}

// pick selects the arm for the next decision.
func (b *banditInstance) pick() int {
	k := len(b.counts)
	if b.p.UCB > 0 {
		// UCB1: unplayed arms first (lowest index), then the best
		// mean-plus-bonus (ties to the lowest index).
		for i, c := range b.counts {
			if c == 0 {
				return i
			}
		}
		best, bestScore := 0, math.Inf(-1)
		logN := math.Log(float64(b.plays))
		for i := range b.counts {
			score := b.rewards[i]/float64(b.counts[i]) + b.p.UCB*math.Sqrt(logN/float64(b.counts[i]))
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		return best
	}
	// ε-greedy: explore uniformly with probability Eps; otherwise play
	// the best observed mean, unplayed arms counting as mean zero (cost
	// rewards are <= 0, so unplayed arms are tried before any arm with
	// an established cost).
	if b.p.Eps > 0 && b.rng.Float64() < b.p.Eps {
		return b.rng.Intn(k)
	}
	best, bestScore := 0, math.Inf(-1)
	for i := range b.counts {
		var mean float64
		if b.counts[i] > 0 {
			mean = b.rewards[i] / float64(b.counts[i])
		}
		if mean > bestScore {
			best, bestScore = i, mean
		}
	}
	return best
}

// Boundary implements PolicyInstance.
func (b *banditInstance) Boundary(now Time, hist *History, heap Heap) Time {
	prev := hist.TimeOfPrevious(1)
	arm := 0 // first scavenge is full, like every stock policy
	if hist.Len() > 0 {
		arm = b.pick()
	}
	b.pending = arm
	digest := digestUint64(fnvOffset, uint64(arm))
	digest = digestUint64(digest, b.plays)
	digest = digestUint64(digest, prev.Bytes())
	b.last = DecisionInfo{Arm: arm, FeatureDigest: digest}
	b.hasLast = true
	frac := float64(arm) / float64(len(b.counts)-1)
	return TimeAt(uint64(frac * float64(prev.Bytes())))
}

// Observe implements PolicyInstance: charge the played arm the
// normalized scavenge cost (traced bytes plus tenured garbage over the
// pre-scavenge heap size) as a negative reward.
func (b *banditInstance) Observe(f ScavengeFacts) {
	if b.pending < 0 {
		return
	}
	mem := f.Scavenge.MemBefore
	if mem == 0 {
		mem = 1
	}
	cost := (float64(f.Scavenge.Traced) + float64(f.TenuredGarbage())) / float64(mem)
	b.counts[b.pending]++
	b.plays++
	b.rewards[b.pending] += -cost
	b.pending = -1
}

// LastDecision implements DecisionExplainer.
func (b *banditInstance) LastDecision() (DecisionInfo, bool) { return b.last, b.hasLast }

// banditSnapshot is the JSON wire form of a banditInstance. Reward
// sums travel as Float64bits so the round-trip is exact by
// construction, not by float-formatting luck.
type banditSnapshot struct {
	Rng        [4]uint64 `json:"rng"`
	Counts     []uint64  `json:"counts"`
	Rewards    []uint64  `json:"rewards"` // Float64bits per arm
	Plays      uint64    `json:"plays"`
	Pending    int       `json:"pending"`
	LastArm    int       `json:"last_arm"`
	LastDigest uint64    `json:"last_digest"`
	HasLast    bool      `json:"has_last"`
}

// Snapshot implements PolicyInstance.
func (b *banditInstance) Snapshot() []byte {
	s := banditSnapshot{
		Rng:        b.rng.State(),
		Counts:     append([]uint64(nil), b.counts...),
		Rewards:    make([]uint64, len(b.rewards)),
		Plays:      b.plays,
		Pending:    b.pending,
		LastArm:    b.last.Arm,
		LastDigest: b.last.FeatureDigest,
		HasLast:    b.hasLast,
	}
	for i, r := range b.rewards {
		s.Rewards[i] = math.Float64bits(r)
	}
	out, err := json.Marshal(s)
	if err != nil {
		// Unreachable: the snapshot struct contains only integers.
		panic("core: bandit snapshot: " + err.Error())
	}
	return out
}

// Restore implements PolicyInstance.
func (b *banditInstance) Restore(snap []byte) error {
	var s banditSnapshot
	if err := json.Unmarshal(snap, &s); err != nil {
		return fmt.Errorf("core: bandit restore: %w", err)
	}
	if len(s.Counts) != len(b.counts) || len(s.Rewards) != len(b.rewards) {
		return fmt.Errorf("core: bandit restore: snapshot has %d arms, instance has %d", len(s.Counts), len(b.counts))
	}
	if s.Pending < -1 || s.Pending >= len(b.counts) {
		return fmt.Errorf("core: bandit restore: pending arm %d out of range", s.Pending)
	}
	if err := b.rng.SetState(s.Rng); err != nil {
		return err
	}
	copy(b.counts, s.Counts)
	for i, bits := range s.Rewards {
		b.rewards[i] = math.Float64frombits(bits)
	}
	b.plays = s.Plays
	b.pending = s.Pending
	b.last = DecisionInfo{Arm: s.LastArm, FeatureDigest: s.LastDigest}
	b.hasLast = s.HasLast
	return nil
}

var (
	_ AdaptivePolicy    = Bandit{}
	_ PolicyInstance    = (*banditInstance)(nil)
	_ DecisionExplainer = (*banditInstance)(nil)
)
