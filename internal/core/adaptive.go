package core

// The adaptive-policy extension: a sanctioned way for a boundary
// policy to carry per-run state and learn online, without giving up
// the determinism the rest of the stack is built on.
//
// The stock Table-1 policies are pure functions of (now, History,
// Heap), and internal/analysis's policypurity analyzer enforces that
// purity. Learned policies — a bandit over candidate boundaries, an
// online gradient controller — need memory between decisions, so the
// contract is widened in exactly one place: an AdaptivePolicy mints a
// fresh PolicyInstance per run, and the *instance* owns all mutable
// state. The rules that keep replay bit-identical:
//
//   - State lives only on the PolicyInstance NewRun returned. No
//     package-level variables, no state on the AdaptivePolicy value
//     itself (it is shared across runs and fleets).
//   - All randomness is drawn from a generator seeded with NewRun's
//     seed (internal/xrand; math/rand and time are forbidden — the
//     policypurity analyzer rejects them in policy code).
//   - The simulator pairs calls strictly: one Boundary, then one
//     Observe for the scavenge that boundary produced, in run order.
//   - Snapshot/Restore must round-trip the complete instance state,
//     so an engine checkpoint can pin the instance mid-run and a
//     resumed replay stays bit-identical.
//
// ClampBoundary discipline is unchanged: the simulator clamps every
// instance output to [0, now], exactly as for pure policies.

// ScavengeFacts is the feedback a PolicyInstance receives after each
// scavenge: the recorded history entry plus the oracle-derived
// measures only the simulator knows. It mirrors what sim.Probe's
// ScavengeEvent reports, so an adaptive policy learns from the same
// features telemetry already exposes.
type ScavengeFacts struct {
	// Scavenge is the history entry just recorded (N assigned).
	Scavenge Scavenge
	// Live is the oracle live-byte count just after the scavenge;
	// Scavenge.Surviving - Live is the garbage this boundary tenured.
	Live uint64
	// MarkTriggered reports an opportunistic scavenge at a program
	// quiescent point (trace Mark event) rather than the byte budget.
	MarkTriggered bool
}

// TenuredGarbage returns the dead bytes this scavenge left behind:
// storage that was unreachable but immune under the chosen boundary.
func (f ScavengeFacts) TenuredGarbage() uint64 {
	return f.Scavenge.TenuredGarbage(f.Live)
}

// PolicyInstance is the per-run state of an adaptive policy. The
// simulator creates one per run via AdaptivePolicy.NewRun, asks it for
// a boundary before every scavenge, and feeds it the outcome after.
// Instances are never shared between runs: each fleet runner gets its
// own (sim.NewFleet enforces this).
type PolicyInstance interface {
	// Boundary returns TB_n for the scavenge about to run, exactly as
	// Policy.Boundary does; the caller clamps to [0, now]. Unlike a
	// pure policy it may consult and update the instance's own state.
	Boundary(now Time, hist *History, heap Heap) Time
	// Observe delivers the outcome of the scavenge the last Boundary
	// call configured. Calls alternate strictly with Boundary.
	Observe(f ScavengeFacts)
	// Snapshot serializes the complete instance state. Restoring the
	// snapshot into a fresh NewRun instance must reproduce the exact
	// decision stream the live instance would have produced.
	Snapshot() []byte
	// Restore replaces the instance state with a prior Snapshot.
	Restore(snap []byte) error
}

// AdaptivePolicy is a Policy that carries per-run state. The Policy
// methods still describe the family (Name for labels; Boundary exists
// so adaptive policies flow through every Policy-typed API, but it
// must not be called directly — implementations panic, loudly, rather
// than silently running stateless). Runners detect the interface and
// route decisions through a per-run instance instead.
type AdaptivePolicy interface {
	Policy
	// NewRun returns a fresh instance whose behavior is a
	// deterministic function of the seed and the observations it will
	// receive. NewRun must not return a previously returned instance.
	NewRun(seed uint64) PolicyInstance
}

// DecisionInfo explains one adaptive decision for telemetry: which
// discrete arm was chosen (or -1 for continuous policies) and a digest
// of the features/state the decision was computed from, so two replay
// paths can be checked for bit-identical decisions without shipping
// the whole feature vector.
type DecisionInfo struct {
	Arm           int    // chosen arm index; -1 when not arm-based
	FeatureDigest uint64 // FNV-1a digest over the decision inputs
}

// DecisionExplainer is optionally implemented by a PolicyInstance to
// expose its last decision's explanation. The simulator attaches it to
// the Decision telemetry event.
type DecisionExplainer interface {
	// LastDecision returns the explanation of the most recent Boundary
	// call, and false if no decision has been made yet.
	LastDecision() (DecisionInfo, bool)
}

// fnvOffset/fnvPrime are the FNV-1a constants used for decision
// digests and seed derivation.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// digestUint64 folds one 64-bit word into an FNV-1a digest.
func digestUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}
