// Package core implements the paper's primary contribution: the
// dynamic-threatening-boundary framework of Barrett & Zorn and the six
// collector policies of its Table 1.
//
// Following Demers et al.'s formalization, memory is partitioned at
// every scavenge into a threatened set (objects born after the
// threatening boundary, which are traced and — if unreachable —
// reclaimed) and an immune set (older objects, skipped). A classic
// two-generation collector is the special case where the boundary is
// pinned to the time of a previous scavenge; the dynamic collectors
// DTBFM and DTBMEM instead recompute the boundary before each scavenge
// from a single user constraint:
//
//   - DTBFM takes Trace_max, a bound on bytes traced per scavenge
//     (equivalently, a pause-time bound: pause = traced / trace rate);
//   - DTBMEM takes Mem_max, a bound on total memory in use.
//
// Time in this package is the allocation clock — cumulative bytes
// allocated since program start — which is the natural measure of
// "object age" for generational collection and the axis the paper's
// policies are defined on.
package core

import "fmt"

// Time is a point on the allocation clock: the number of bytes the
// program had allocated when the event occurred. An object's birth
// time orders it against any threatening boundary.
//
// Although Time is numerically a byte count, it is a *reading of the
// clock*, not an amount of storage, and the two must not be mixed
// silently — that is the unit confusion behind subtly wrong boundary
// arithmetic. Outside this package, convert through the named helpers
// (TimeAt, Time.Bytes, Time.Add, Time.Sub) rather than raw
// conversions; the dtbvet allocclock analyzer enforces this.
type Time uint64

// TimeAt returns the clock reading at the point where the program has
// allocated total bytes in all: the explicit bytes-to-clock
// conversion.
func TimeAt(total uint64) Time { return Time(total) }

// Bytes returns the total bytes the program had allocated at reading
// t: the explicit clock-to-bytes conversion.
func (t Time) Bytes() uint64 { return uint64(t) }

// Add advances the clock by n freshly allocated bytes.
func (t Time) Add(n uint64) Time { return t + Time(n) }

// Sub returns the allocation volume between two readings, in bytes.
// The volume is clamped at zero when earlier is actually later than t,
// so window arithmetic never underflows.
func (t Time) Sub(earlier Time) uint64 {
	if earlier > t {
		return 0
	}
	return uint64(t - earlier)
}

// Scavenge records the observable outcome of one collection, the
// history that boundary policies feed on. Field names follow the
// paper's notation.
type Scavenge struct {
	N         int    // 1-based scavenge index
	T         Time   // t_n: allocation-clock time of the scavenge
	TB        Time   // TB_n: threatening boundary used
	MemBefore uint64 // Mem_n: bytes in use just before the scavenge
	Traced    uint64 // Trace_n: bytes traced (live threatened bytes)
	Reclaimed uint64 // bytes reclaimed (dead threatened bytes)
	Surviving uint64 // S_n: bytes in use just after the scavenge
}

// TenuredGarbage returns the dead bytes left behind by this scavenge:
// storage that was unreachable but immune (born before TB_n). It is
// S_n minus the live bytes, which the collector itself can only bound,
// so this helper is primarily for oracle-equipped simulations that
// fill in Surviving and know true liveness; it returns Surviving -
// live when the caller knows live.
func (s Scavenge) TenuredGarbage(liveBytes uint64) uint64 {
	if s.Surviving < liveBytes {
		return 0
	}
	return s.Surviving - liveBytes
}

// History is the ordered record of completed scavenges.
type History struct {
	Scavenges []Scavenge
}

// Len returns the number of completed scavenges.
func (h *History) Len() int { return len(h.Scavenges) }

// Last returns the most recent scavenge and true, or a zero record and
// false if none has happened yet.
func (h *History) Last() (Scavenge, bool) {
	if len(h.Scavenges) == 0 {
		return Scavenge{}, false
	}
	return h.Scavenges[len(h.Scavenges)-1], true
}

// TimeOfPrevious returns t_{n-k} for the upcoming scavenge n: the time
// of the k-th previous scavenge, or 0 when fewer than k scavenges have
// completed (the paper's t_j for j <= 0, i.e. program start).
func (h *History) TimeOfPrevious(k int) Time {
	if k <= 0 {
		panic("core: TimeOfPrevious requires k >= 1")
	}
	i := len(h.Scavenges) - k
	if i < 0 {
		return 0
	}
	return h.Scavenges[i].T
}

// Record appends a completed scavenge, assigning its index.
func (h *History) Record(s Scavenge) {
	s.N = len(h.Scavenges) + 1
	h.Scavenges = append(h.Scavenges, s)
}

// Heap is the view of the heap a boundary policy may consult. Both the
// trace-driven simulator (internal/sim, with its free-event liveness
// oracle) and the reachability collector (internal/gc) implement it.
type Heap interface {
	// BytesInUse returns the bytes currently occupied, including any
	// tenured garbage (the paper's Mem_n when sampled just before a
	// scavenge).
	BytesInUse() uint64
	// LiveBytesBornAfter returns the bytes of currently-live objects
	// born strictly after t — the storage a scavenge with boundary t
	// would trace.
	LiveBytesBornAfter(t Time) uint64
}

// Policy computes the threatening boundary for the next scavenge.
// Implementations must be deterministic functions of their arguments.
type Policy interface {
	// Name returns the collector's identifier (e.g. "DtbFM").
	Name() string
	// Boundary returns TB_n for the scavenge about to run at time now,
	// given the history of scavenges 1..n-1. The result is clamped by
	// the caller to [0, now]; policies should already respect the
	// paper's invariant TB_n <= t_{n-1} where their derivation
	// requires it.
	Boundary(now Time, hist *History, heap Heap) Time
}

// Full is the non-generational policy: TB_n = 0, trace everything,
// reclaim all garbage. Lowest memory use, highest CPU overhead.
type Full struct{}

// Name implements Policy.
func (Full) Name() string { return "Full" }

// Boundary implements Policy.
func (Full) Boundary(Time, *History, Heap) Time { return 0 }

// Fixed is the classic generational policy: TB_n = t_{n-K}, i.e.
// objects are tenured after surviving K scavenges. Fixed{K: 1} and
// Fixed{K: 4} are the paper's FIXED1 and FIXED4.
type Fixed struct {
	K int // number of scavenges an object must survive to be tenured
}

// Name implements Policy.
func (f Fixed) Name() string { return fmt.Sprintf("Fixed%d", f.K) }

// Boundary implements Policy.
func (f Fixed) Boundary(_ Time, hist *History, _ Heap) Time {
	if f.K < 1 {
		panic("core: Fixed policy requires K >= 1")
	}
	return hist.TimeOfPrevious(f.K)
}

// FeedMed is Ungar & Jackson's Feedback Mediation policy: a reactive
// pause-time limiter. When the previous scavenge traced more than
// TraceMax bytes, the boundary advances (toward the present) to the
// oldest prior scavenge time t_k >= TB_{n-1} whose threatened set fits
// the budget — the minimal advancement that restores the pause bound,
// tenuring as little storage as the budget forces and no more;
// otherwise the boundary stays put. Because it never moves the
// boundary back in time, storage tenured under pressure is never
// reclaimed — the tenured-garbage weakness DTBFM fixes.
type FeedMed struct {
	TraceMax uint64 // maximum bytes to trace per scavenge
}

// Name implements Policy.
func (FeedMed) Name() string { return "FeedMed" }

// Boundary implements Policy.
func (p FeedMed) Boundary(now Time, hist *History, heap Heap) Time {
	last, ok := hist.Last()
	if !ok {
		return 0 // first scavenge is full
	}
	if last.Traced <= p.TraceMax {
		return last.TB
	}
	return feedMedAdvance(last.TB, p.TraceMax, hist, heap)
}

// feedMedAdvance implements the FEEDMED advance rule: among the prior
// scavenge times t_k >= TB_{n-1}, return the OLDEST one whose
// live-born-after storage fits the budget. LiveBytesBornAfter is
// non-increasing in t, so the oldest fitting candidate is the minimal
// advancement — Ungar & Jackson tenure only what the pause budget
// forces. If no candidate fits (tracing just the storage born after
// t_{n-1} already exceeds the budget), t_{n-1} is returned: the
// cheapest boundary that still traces every object at least once.
func feedMedAdvance(prevTB Time, traceMax uint64, hist *History, heap Heap) Time {
	// Scavenge times are increasing, and LiveBytesBornAfter is
	// non-increasing in t, so scan from oldest to newest and take the
	// first candidate under budget.
	for _, s := range hist.Scavenges {
		if s.T < prevTB {
			continue
		}
		if heap.LiveBytesBornAfter(s.T) <= traceMax {
			return s.T
		}
	}
	return hist.TimeOfPrevious(1)
}

// DtbFM is the paper's pause-time-constrained dynamic-threatening-
// boundary collector. Over budget it reacts exactly like FeedMed;
// under budget it exploits the headroom by widening the threatened
// window in proportion to the unused budget:
//
//	TB_n = t_n − (t_{n−1} − TB_{n−1}) · TraceMax / Trace_{n−1}
//
// so the median traced volume converges on TraceMax while old garbage
// (including storage FeedMed would have tenured forever) is
// periodically reclaimed.
type DtbFM struct {
	TraceMax uint64 // maximum bytes to trace per scavenge
}

// Name implements Policy.
func (DtbFM) Name() string { return "DtbFM" }

// Boundary implements Policy.
func (p DtbFM) Boundary(now Time, hist *History, heap Heap) Time {
	last, ok := hist.Last()
	if !ok {
		return 0 // first scavenge is full
	}
	if last.Traced > p.TraceMax {
		return feedMedAdvance(last.TB, p.TraceMax, hist, heap)
	}
	if last.Traced == 0 {
		// No information to scale by; the window widens without
		// bound, which the clamp below turns into a full collection.
		return 0
	}
	window := float64(last.T-last.TB) * float64(p.TraceMax) / float64(last.Traced)
	tb := float64(now) - window
	if tb < 0 {
		return 0
	}
	// Never place the boundary later than the previous scavenge: every
	// object must be traced at least once (paper §4.1).
	if prev := hist.TimeOfPrevious(1); Time(tb) > prev {
		return prev
	}
	return Time(tb)
}

// DtbMem is the paper's memory-constrained dynamic-threatening-
// boundary collector. It aims the amount of tenured garbage left
// behind at MemMax − L, estimating the unknowable live volume L as the
// midpoint of its bounds: Trace_{n−1} ≤ L ≤ S_{n−1}. Assuming
// conservatively that garbage shrinks linearly as the boundary moves
// back (slope Mem_n / t_n),
//
//	TB_n = min(t_n · (MemMax − L_est) / Mem_n, t_{n−1}),  L_est = (S_{n−1}+Trace_{n−1})/2
//
// When MemMax is generous the boundary stays at t_{n−1} and the
// collector behaves (and costs) like FIXED1; when MemMax is tight or
// infeasible the boundary is driven to 0 and it degrades gracefully
// into FULL.
type DtbMem struct {
	MemMax uint64 // maximum bytes of memory to use
}

// Name implements Policy.
func (DtbMem) Name() string { return "DtbMem" }

// Boundary implements Policy.
func (p DtbMem) Boundary(now Time, hist *History, heap Heap) Time {
	last, ok := hist.Last()
	if !ok {
		return 0 // first scavenge is full
	}
	mem := heap.BytesInUse()
	if mem == 0 {
		return hist.TimeOfPrevious(1)
	}
	lEst := (float64(last.Surviving) + float64(last.Traced)) / 2
	slack := float64(p.MemMax) - lEst
	if slack <= 0 {
		return 0 // over-constrained: collect everything
	}
	tb := float64(now) * slack / float64(mem)
	if prev := hist.TimeOfPrevious(1); tb > float64(prev) {
		return prev
	}
	return Time(tb)
}

// ClampBoundary enforces the universal invariants on a policy result:
// the boundary cannot be in the future, and a negative boundary is
// program start. Simulators call it on every policy output so a buggy
// or experimental policy cannot corrupt a run.
func ClampBoundary(tb, now Time) Time {
	if tb > now {
		return now
	}
	return tb
}

var _ = []Policy{Full{}, Fixed{K: 1}, FeedMed{}, DtbFM{}, DtbMem{}}
