package core

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/xrand"
)

// Property tests: every policy, fed random-but-well-formed histories
// and heaps, must respect the boundary contracts the simulators and
// the audit subsystem rely on — TB_n in [0, now], and TB_n <= t_{n-1}
// for the Table-1 derivations. The generator covers the degenerate
// corners deliberately: empty histories, Traced == 0, BytesInUse == 0,
// boundaries already at the previous scavenge time.

// randHeap is a minimal Heap with a plausible live-born-after curve:
// non-increasing in t, anchored at total live bytes for t = 0.
type randHeap struct {
	inUse  uint64
	points []struct {
		t    Time
		live uint64
	}
}

func (h *randHeap) BytesInUse() uint64 { return h.inUse }

func (h *randHeap) LiveBytesBornAfter(t Time) uint64 {
	// Piecewise-constant, non-increasing: the live bytes born after t
	// is the sum of point masses with birth > t.
	var sum uint64
	for _, p := range h.points {
		if p.t > t {
			sum += p.live
		}
	}
	return sum
}

// randScenario builds a consistent history + heap pair: scavenge times
// strictly increase, every recorded TB <= t and <= previous t, and the
// accounting identity Mem = S + reclaimed holds per entry.
func randScenario(r *xrand.Rand) (Time, *History, *randHeap) {
	hist := &History{}
	heap := &randHeap{}
	n := r.Intn(8) // 0 = empty history: the first-scavenge corner
	var clock Time
	var prevT Time
	for i := 0; i < n; i++ {
		clock = clock.Add(uint64(1 + r.Intn(1<<20)))
		t := clock
		var tb Time
		switch r.Intn(4) {
		case 0:
			tb = 0 // full collection
		case 1:
			tb = prevT // FIXED1's choice
		default:
			if prevT > 0 {
				tb = TimeAt(uint64(r.Int63n(int64(prevT.Bytes()) + 1)))
			}
		}
		mem := uint64(r.Intn(1 << 22))
		traced := uint64(0)
		if mem > 0 && r.Intn(4) != 0 { // leave Traced == 0 corners in
			traced = uint64(r.Intn(int(mem)))
		}
		reclaimed := uint64(0)
		if rest := mem - traced; rest > 0 {
			reclaimed = uint64(r.Intn(int(rest) + 1))
		}
		hist.Record(Scavenge{
			T: t, TB: tb, MemBefore: mem,
			Traced: traced, Reclaimed: reclaimed, Surviving: mem - reclaimed,
		})
		prevT = t
		// A surviving cohort born at this scavenge time.
		heap.points = append(heap.points, struct {
			t    Time
			live uint64
		}{t: t, live: uint64(r.Intn(1 << 16))})
	}
	now := clock.Add(uint64(1 + r.Intn(1<<20)))
	heap.inUse = uint64(r.Intn(1 << 22)) // 0 = BytesInUse() == 0 corner
	return now, hist, heap
}

// boundedPolicies are the policies whose derivation guarantees
// TB_n <= t_{n-1} (paper §4.1: every object traced at least once).
func boundedPolicies() []Policy {
	return []Policy{
		Full{}, Fixed{K: 1}, Fixed{K: 4},
		FeedMed{TraceMax: 50 * 1024},
		DtbFM{TraceMax: 50 * 1024},
		DtbMem{MemMax: 3000 * 1024},
		DtbMem{MemMax: 0}, // over-constrained corner
		DtbMemAblation{MemMax: 3000 * 1024, Est: LEstMidpoint},
		DtbMemAblation{MemMax: 3000 * 1024, Est: LEstSurviving},
		DtbMemAblation{MemMax: 3000 * 1024, Est: LEstTraced},
		DtbFMAblation{TraceMax: 50 * 1024},
		DtbFMAblation{TraceMax: 50 * 1024, Additive: true},
	}
}

func TestPolicyBoundaryContracts(t *testing.T) {
	r := xrand.New(0xB0DA57)
	for trial := 0; trial < 3000; trial++ {
		now, hist, heap := randScenario(r)
		prevT := hist.TimeOfPrevious(1)
		for _, p := range boundedPolicies() {
			tb := p.Boundary(now, hist, heap)
			clamped := ClampBoundary(tb, now)
			if clamped > now {
				t.Fatalf("trial %d: %s: clamped boundary %v beyond now %v", trial, p.Name(), clamped, now)
			}
			if tb > now {
				t.Fatalf("trial %d: %s: raw boundary %v beyond now %v (hist len %d)",
					trial, p.Name(), tb, now, hist.Len())
			}
			if tb > prevT {
				t.Fatalf("trial %d: %s: boundary %v beyond previous scavenge time %v",
					trial, p.Name(), tb, prevT)
			}
		}
	}
}

func TestClampBoundaryIdempotent(t *testing.T) {
	r := xrand.New(0xC1a3b)
	for trial := 0; trial < 5000; trial++ {
		now := TimeAt(r.Uint64() >> 8)
		tb := TimeAt(r.Uint64() >> 8)
		once := ClampBoundary(tb, now)
		if twice := ClampBoundary(once, now); twice != once {
			t.Fatalf("ClampBoundary not idempotent: %v -> %v -> %v (now %v)", tb, once, twice, now)
		}
		if once > now {
			t.Fatalf("ClampBoundary(%v, %v) = %v beyond now", tb, now, once)
		}
	}
}

func TestPoliciesOnDegenerateInputs(t *testing.T) {
	empty := &History{}
	heap := &randHeap{}
	for _, p := range boundedPolicies() {
		// Empty history: the first scavenge must be full.
		if tb := p.Boundary(TimeAt(12345), empty, heap); tb != 0 {
			t.Errorf("%s: first scavenge boundary %v, want 0", p.Name(), tb)
		}
	}
	// A history whose only scavenge traced nothing over an empty heap.
	hist := &History{}
	hist.Record(Scavenge{T: TimeAt(1000), TB: 0, MemBefore: 0, Traced: 0, Reclaimed: 0, Surviving: 0})
	for _, p := range boundedPolicies() {
		tb := p.Boundary(TimeAt(2000), hist, heap)
		if tb > TimeAt(1000) {
			t.Errorf("%s: boundary %v beyond t_{n-1}=1000 on the zero-traced/zero-heap corner", p.Name(), tb)
		}
	}
}

func TestPoliciesDoNotMutateHistory(t *testing.T) {
	r := xrand.New(0x91)
	now, hist, heap := randScenario(r)
	before := append([]Scavenge(nil), hist.Scavenges...)
	for _, p := range boundedPolicies() {
		p.Boundary(now, hist, heap)
	}
	if len(hist.Scavenges) != len(before) {
		t.Fatal("a policy changed the history length")
	}
	for i := range before {
		if hist.Scavenges[i] != before[i] {
			t.Fatalf("a policy mutated history entry %d", i)
		}
	}
}
