package core

import (
	"strings"
	"testing"
)

func TestParsePolicyValid(t *testing.T) {
	cases := []struct {
		spec string
		want Policy
	}{
		{"full", Full{}},
		{"FULL", Full{}},
		{" full ", Full{}},
		{"fixed1", Fixed{K: 1}},
		{"fixed4", Fixed{K: 4}},
		{"fixed12", Fixed{K: 12}},
		{"feedmed:50k", FeedMed{TraceMax: 50 * 1024}},
		{"dtbfm:50k", DtbFM{TraceMax: 50 * 1024}},
		{"dtbmem:3000k", DtbMem{MemMax: 3000 * 1024}},
		{"dtbmem:2m", DtbMem{MemMax: 2 * 1024 * 1024}},
		{"dtbfm:12345", DtbFM{TraceMax: 12345}},
		{"bandit:eps=0.1", Bandit{Eps: 0.1}},
		{"bandit:eps=0.25,arms=12", Bandit{Eps: 0.25, Arms: 12}},
		{"bandit:ucb=1.5", Bandit{UCB: 1.5}},
		{"bandit:ucb=2,arms=4", Bandit{UCB: 2, Arms: 4}},
		{"grad", Gradient{}},
		{"grad:rate=0.1", Gradient{Rate: 0.1}},
		{"grad:rate=0.1,trace=50k", Gradient{Rate: 0.1, TraceMax: 50 * 1024}},
		{"GRAD:RATE=0.1,TRACE=64K", Gradient{Rate: 0.1, TraceMax: 64 * 1024}},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.spec)
		if err != nil {
			t.Errorf("ParsePolicy(%q) error: %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePolicy(%q) = %#v, want %#v", c.spec, got, c.want)
		}
	}
}

func TestParsePolicyInvalid(t *testing.T) {
	cases := []string{
		"", "bogus", "fixed", "fixed0", "fixedx", "fixed1:5",
		"full:1", "feedmed", "dtbfm", "dtbmem", "dtbfm:abc",
		"dtbmem:-5", "feedmed:1.5k",
		"bandit", "bandit:", "bandit:eps", "bandit:eps=2", "bandit:eps=-0.1",
		"bandit:ucb=0", "bandit:ucb=-1", "bandit:eps=0.1,ucb=1",
		"bandit:eps=0.1,arms=1", "bandit:eps=0.1,arms=x", "bandit:k=3",
		"grad:rate=0", "grad:rate=-1", "grad:rate", "grad:trace=0",
		"grad:trace=abc", "grad:bogus=1",
	}
	for _, spec := range cases {
		if _, err := ParsePolicy(spec); err == nil {
			t.Errorf("ParsePolicy(%q) accepted invalid spec", spec)
		}
	}
}

func TestParsePolicyErrorMentionsKnown(t *testing.T) {
	_, err := ParsePolicy("nosuch")
	if err == nil || !strings.Contains(err.Error(), "full") {
		t.Fatalf("error should list known policies, got %v", err)
	}
}

// TestParsePolicyErrorsAreDescriptive pins the wording of each failure
// class: a command-line typo must produce an actionable error, never a
// panic or a bare "invalid".
func TestParsePolicyErrorsAreDescriptive(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"dtbfm:", "bad byte count"},
		{"dtbmem:12q", "bad byte count"},
		{"feedmed:k", "bad byte count"},
		{"dtbmem:-5", "bad byte count"},
		{"fixed0", "K >= 1"},
		{"fixed", "K >= 1"},
		{"fixed-3", "K >= 1"},
		{"full:1", "takes no argument"},
		{"fixed4:9", "takes no argument"},
		{"dtbfm", "requires an argument"},
		{"gen0", "unknown policy"},
		{"", "unknown policy"},
		{"bandit", "requires a selector"},
		{"bandit:eps=2", "probability in [0,1]"},
		{"bandit:ucb=0", "positive coefficient"},
		{"bandit:eps=0.1,ucb=1", "exactly one of eps= or ucb="},
		{"bandit:arms=8", "exactly one of eps= or ucb="},
		{"bandit:eps=0.1,arms=1", "arms must be an integer >= 2"},
		{"bandit:k=3", "unknown bandit parameter"},
		{"bandit:eps", "want key=value"},
		{"grad:rate=0", "positive learning rate"},
		{"grad:trace=0", "positive byte budget"},
		{"grad:bogus=1", "unknown grad parameter"},
	}
	for _, c := range cases {
		_, err := parsePolicyNoPanic(t, c.spec)
		if err == nil {
			t.Errorf("ParsePolicy(%q) accepted invalid spec", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParsePolicy(%q) error %q does not mention %q", c.spec, err, c.wantSub)
		}
	}
}

func parsePolicyNoPanic(t *testing.T, spec string) (p Policy, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("ParsePolicy(%q) panicked: %v", spec, r)
			err = nil
		}
	}()
	return ParsePolicy(spec)
}

func TestKnownPoliciesSorted(t *testing.T) {
	names := KnownPolicies()
	if len(names) < 5 {
		t.Fatalf("too few known policies: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("KnownPolicies not sorted: %v", names)
		}
	}
}

// TestKnownPoliciesRoundTrip guards the registry against drift: every
// spelling KnownPolicies advertises must parse via ParsePolicy once
// its placeholders are filled in. The substitution table below is the
// only sanctioned placeholder set — a new spelling with an unknown
// placeholder (or a spelling this table has never heard of) fails the
// test until both sides are updated together.
func TestKnownPoliciesRoundTrip(t *testing.T) {
	fill := strings.NewReplacer(
		"<bytes>", "50k",
		"<p>", "0.1",
		"<c>", "1.5",
		"<k>", "8",
		"<r>", "0.05",
	)
	for _, spelling := range KnownPolicies() {
		// Expand the optional [..] groups both ways: the bare form and
		// the fully parameterized one must each parse.
		for _, spec := range expandOptional(spelling) {
			concrete := fill.Replace(spec)
			if strings.ContainsAny(concrete, "<>[]") {
				t.Errorf("KnownPolicies spelling %q has a placeholder this test does not know how to fill (got %q): extend the substitution table", spelling, concrete)
				continue
			}
			p, err := ParsePolicy(concrete)
			if err != nil {
				t.Errorf("KnownPolicies spelling %q: ParsePolicy(%q) failed: %v", spelling, concrete, err)
				continue
			}
			if p.Name() == "" {
				t.Errorf("ParsePolicy(%q) produced a policy with an empty name", concrete)
			}
		}
	}
}

// expandOptional returns the spelling with every [optional] group
// fully removed and fully included (first bracket depth only; nested
// groups expand recursively).
func expandOptional(s string) []string {
	open := strings.IndexByte(s, '[')
	if open < 0 {
		return []string{s}
	}
	depth, close := 0, -1
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				close = i
			}
		}
		if close >= 0 {
			break
		}
	}
	if close < 0 {
		return []string{s} // unbalanced; the caller's placeholder check will flag it
	}
	var out []string
	for _, tail := range expandOptional(s[close+1:]) {
		out = append(out, s[:open]+tail)
		for _, inner := range expandOptional(s[open+1 : close]) {
			out = append(out, s[:open]+inner+tail)
		}
	}
	return out
}
