package core

import (
	"strings"
	"testing"
)

func TestParsePolicyValid(t *testing.T) {
	cases := []struct {
		spec string
		want Policy
	}{
		{"full", Full{}},
		{"FULL", Full{}},
		{" full ", Full{}},
		{"fixed1", Fixed{K: 1}},
		{"fixed4", Fixed{K: 4}},
		{"fixed12", Fixed{K: 12}},
		{"feedmed:50k", FeedMed{TraceMax: 50 * 1024}},
		{"dtbfm:50k", DtbFM{TraceMax: 50 * 1024}},
		{"dtbmem:3000k", DtbMem{MemMax: 3000 * 1024}},
		{"dtbmem:2m", DtbMem{MemMax: 2 * 1024 * 1024}},
		{"dtbfm:12345", DtbFM{TraceMax: 12345}},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.spec)
		if err != nil {
			t.Errorf("ParsePolicy(%q) error: %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePolicy(%q) = %#v, want %#v", c.spec, got, c.want)
		}
	}
}

func TestParsePolicyInvalid(t *testing.T) {
	cases := []string{
		"", "bogus", "fixed", "fixed0", "fixedx", "fixed1:5",
		"full:1", "feedmed", "dtbfm", "dtbmem", "dtbfm:abc",
		"dtbmem:-5", "feedmed:1.5k",
	}
	for _, spec := range cases {
		if _, err := ParsePolicy(spec); err == nil {
			t.Errorf("ParsePolicy(%q) accepted invalid spec", spec)
		}
	}
}

func TestParsePolicyErrorMentionsKnown(t *testing.T) {
	_, err := ParsePolicy("nosuch")
	if err == nil || !strings.Contains(err.Error(), "full") {
		t.Fatalf("error should list known policies, got %v", err)
	}
}

// TestParsePolicyErrorsAreDescriptive pins the wording of each failure
// class: a command-line typo must produce an actionable error, never a
// panic or a bare "invalid".
func TestParsePolicyErrorsAreDescriptive(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"dtbfm:", "bad byte count"},
		{"dtbmem:12q", "bad byte count"},
		{"feedmed:k", "bad byte count"},
		{"dtbmem:-5", "bad byte count"},
		{"fixed0", "K >= 1"},
		{"fixed", "K >= 1"},
		{"fixed-3", "K >= 1"},
		{"full:1", "takes no argument"},
		{"fixed4:9", "takes no argument"},
		{"dtbfm", "requires an argument"},
		{"gen0", "unknown policy"},
		{"", "unknown policy"},
	}
	for _, c := range cases {
		_, err := parsePolicyNoPanic(t, c.spec)
		if err == nil {
			t.Errorf("ParsePolicy(%q) accepted invalid spec", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParsePolicy(%q) error %q does not mention %q", c.spec, err, c.wantSub)
		}
	}
}

func parsePolicyNoPanic(t *testing.T, spec string) (p Policy, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("ParsePolicy(%q) panicked: %v", spec, r)
			err = nil
		}
	}()
	return ParsePolicy(spec)
}

func TestKnownPoliciesSorted(t *testing.T) {
	names := KnownPolicies()
	if len(names) < 5 {
		t.Fatalf("too few known policies: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("KnownPolicies not sorted: %v", names)
		}
	}
}
