package core

import "testing"

func TestDtbMemAblationMidpointMatchesPaperPolicy(t *testing.T) {
	h := histWith(Scavenge{T: 1000, TB: 0, Traced: 400, Surviving: 600})
	heap := &fakeHeap{inUse: 1000}
	for _, now := range []Time{1500, 2000, 5000} {
		for _, max := range []uint64{300, 700, 1 << 30} {
			want := (DtbMem{MemMax: max}).Boundary(now, h, heap)
			got := (DtbMemAblation{MemMax: max, Est: LEstMidpoint}).Boundary(now, h, heap)
			if got != want {
				t.Fatalf("midpoint ablation diverged: %d vs %d (now=%d max=%d)", got, want, now, max)
			}
		}
	}
}

func TestDtbMemAblationEstimatorOrdering(t *testing.T) {
	// Larger L estimate => less slack => older boundary (more
	// collection). Surviving >= midpoint >= traced, so the boundaries
	// order the other way.
	h := histWith(Scavenge{T: 1000, TB: 0, Traced: 400, Surviving: 800})
	heap := &fakeHeap{inUse: 1200}
	now := Time(2000)
	max := uint64(1000)
	surv := (DtbMemAblation{MemMax: max, Est: LEstSurviving}).Boundary(now, h, heap)
	mid := (DtbMemAblation{MemMax: max, Est: LEstMidpoint}).Boundary(now, h, heap)
	trac := (DtbMemAblation{MemMax: max, Est: LEstTraced}).Boundary(now, h, heap)
	if !(surv <= mid && mid <= trac) {
		t.Fatalf("estimator ordering violated: surviving=%d midpoint=%d traced=%d", surv, mid, trac)
	}
}

func TestDtbFMAblationProportionalMatchesPaperPolicy(t *testing.T) {
	h := histWith(Scavenge{T: 1000, TB: 600, Traced: 50})
	heap := &fakeHeap{}
	for _, now := range []Time{1200, 1500, 3000} {
		want := (DtbFM{TraceMax: 100}).Boundary(now, h, heap)
		got := (DtbFMAblation{TraceMax: 100}).Boundary(now, h, heap)
		if got != want {
			t.Fatalf("proportional ablation diverged: %d vs %d (now=%d)", got, want, now)
		}
	}
}

func TestDtbFMAblationAdditiveWidensLess(t *testing.T) {
	// With a tiny previous trace the proportional rule multiplies the
	// window hugely; the additive rule only adds the leftover budget.
	h := histWith(Scavenge{T: 10000, TB: 9000, Traced: 10})
	heap := &fakeHeap{}
	now := Time(12000)
	prop := (DtbFMAblation{TraceMax: 1000}).Boundary(now, h, heap)
	add := (DtbFMAblation{TraceMax: 1000, Additive: true}).Boundary(now, h, heap)
	if add <= prop {
		t.Fatalf("additive boundary %d should be younger than proportional %d", add, prop)
	}
}

func TestDtbFMAblationAdditiveOverBudgetMatchesFeedMed(t *testing.T) {
	heap := &fakeHeap{objs: []fakeObj{{birth: 1500, size: 60, live: true}}}
	h := histWith(
		Scavenge{T: 1000, TB: 0, Traced: 500},
		Scavenge{T: 2000, TB: 500, Traced: 2000},
	)
	want := (FeedMed{TraceMax: 100}).Boundary(3000, h, heap)
	got := (DtbFMAblation{TraceMax: 100, Additive: true}).Boundary(3000, h, heap)
	if got != want {
		t.Fatalf("over-budget additive = %d, want FeedMed's %d", got, want)
	}
}

func TestAblationFirstScavengeFull(t *testing.T) {
	empty := &History{}
	heap := &fakeHeap{inUse: 100}
	for _, p := range []Policy{
		DtbMemAblation{MemMax: 100},
		DtbMemAblation{MemMax: 100, Est: LEstSurviving},
		DtbFMAblation{TraceMax: 100},
		DtbFMAblation{TraceMax: 100, Additive: true},
	} {
		if tb := p.Boundary(500, empty, heap); tb != 0 {
			t.Errorf("%s first boundary = %d", p.Name(), tb)
		}
	}
}

func TestAblationNames(t *testing.T) {
	cases := map[string]Policy{
		"DtbMem[midpoint]":    DtbMemAblation{},
		"DtbMem[surviving]":   DtbMemAblation{Est: LEstSurviving},
		"DtbMem[traced]":      DtbMemAblation{Est: LEstTraced},
		"DtbFM[proportional]": DtbFMAblation{},
		"DtbFM[additive]":     DtbFMAblation{Additive: true},
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
	if LEstMode(99).String() == "" {
		t.Error("unknown mode renders empty")
	}
}
