package core

import "fmt"

// This file holds ablation variants of the dynamic policies: the
// design choices DESIGN.md §7 calls out, made swappable so the
// benchmark harness can quantify them. The paper's own choices are
// the zero values (LEstMidpoint, proportional widening).

// LEstMode selects DTBMEM's estimate of the live volume L, which is
// only known to lie in [Trace_{n-1}, S_{n-1}].
type LEstMode int

const (
	// LEstMidpoint is the paper's estimator: (S + Trace) / 2.
	LEstMidpoint LEstMode = iota
	// LEstSurviving uses S_{n-1}: assumes no tenured garbage, so it
	// overestimates L and collects more aggressively (memory-safe,
	// CPU-heavy).
	LEstSurviving
	// LEstTraced uses Trace_{n-1}: assumes everything untraced is
	// garbage, underestimating L (CPU-light, risks the budget).
	LEstTraced
)

// String names the mode for benchmark output.
func (m LEstMode) String() string {
	switch m {
	case LEstMidpoint:
		return "midpoint"
	case LEstSurviving:
		return "surviving"
	case LEstTraced:
		return "traced"
	default:
		return fmt.Sprintf("LEstMode(%d)", int(m))
	}
}

// DtbMemAblation is DTBMEM with a selectable live estimator.
type DtbMemAblation struct {
	MemMax uint64
	Est    LEstMode
}

// Name implements Policy.
func (p DtbMemAblation) Name() string { return "DtbMem[" + p.Est.String() + "]" }

// Boundary implements Policy.
func (p DtbMemAblation) Boundary(now Time, hist *History, heap Heap) Time {
	last, ok := hist.Last()
	if !ok {
		return 0
	}
	mem := heap.BytesInUse()
	if mem == 0 {
		return hist.TimeOfPrevious(1)
	}
	var lEst float64
	switch p.Est {
	case LEstSurviving:
		lEst = float64(last.Surviving)
	case LEstTraced:
		lEst = float64(last.Traced)
	default:
		lEst = (float64(last.Surviving) + float64(last.Traced)) / 2
	}
	slack := float64(p.MemMax) - lEst
	if slack <= 0 {
		return 0
	}
	tb := float64(now) * slack / float64(mem)
	if prev := hist.TimeOfPrevious(1); tb > float64(prev) {
		return prev
	}
	return Time(tb)
}

// DtbFMAblation is DTBFM with a selectable under-budget widening rule.
type DtbFMAblation struct {
	TraceMax uint64
	// Additive widens the window by the unused byte budget
	// (TraceMax − Trace_{n-1}) instead of scaling it by
	// TraceMax/Trace_{n-1}. Additive widening converges more slowly
	// when traces are tiny, leaving old garbage stranded for longer.
	Additive bool
}

// Name implements Policy.
func (p DtbFMAblation) Name() string {
	if p.Additive {
		return "DtbFM[additive]"
	}
	return "DtbFM[proportional]"
}

// Boundary implements Policy.
func (p DtbFMAblation) Boundary(now Time, hist *History, heap Heap) Time {
	if !p.Additive {
		return DtbFM{TraceMax: p.TraceMax}.Boundary(now, hist, heap)
	}
	last, ok := hist.Last()
	if !ok {
		return 0
	}
	if last.Traced > p.TraceMax {
		return feedMedAdvance(last.TB, p.TraceMax, hist, heap)
	}
	window := float64(last.T-last.TB) + float64(p.TraceMax-last.Traced)
	tb := float64(now) - window
	if tb < 0 {
		return 0
	}
	if prev := hist.TimeOfPrevious(1); Time(tb) > prev {
		return prev
	}
	return Time(tb)
}

var _ = []Policy{DtbMemAblation{}, DtbFMAblation{}}
