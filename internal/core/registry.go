package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParsePolicy builds a Policy from a command-line specification.
// Accepted forms (case-insensitive):
//
//	full
//	fixed1, fixed4, fixedK (any K >= 1)
//	feedmed:<traceMaxBytes>
//	dtbfm:<traceMaxBytes>
//	dtbmem:<memMaxBytes>
//
// The byte arguments accept an optional k/m suffix (binary units), so
// "dtbfm:50k" is the paper's 50-kilobyte trace budget.
func ParsePolicy(spec string) (Policy, error) {
	name, arg, hasArg := strings.Cut(strings.ToLower(strings.TrimSpace(spec)), ":")
	switch {
	case name == "full":
		if hasArg {
			return nil, fmt.Errorf("core: policy %q takes no argument", name)
		}
		return Full{}, nil
	case strings.HasPrefix(name, "fixed"):
		if hasArg {
			return nil, fmt.Errorf("core: policy %q takes no argument", name)
		}
		k, err := strconv.Atoi(strings.TrimPrefix(name, "fixed"))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("core: bad fixed policy %q: want fixedK with K >= 1", spec)
		}
		return Fixed{K: k}, nil
	case name == "feedmed", name == "dtbfm", name == "dtbmem":
		if !hasArg {
			return nil, fmt.Errorf("core: policy %q requires an argument, e.g. %q", name, name+":50k")
		}
		n, err := parseBytes(arg)
		if err != nil {
			return nil, fmt.Errorf("core: policy %q: %v", spec, err)
		}
		switch name {
		case "feedmed":
			return FeedMed{TraceMax: n}, nil
		case "dtbfm":
			return DtbFM{TraceMax: n}, nil
		default:
			return DtbMem{MemMax: n}, nil
		}
	default:
		return nil, fmt.Errorf("core: unknown policy %q (known: %s)", spec, strings.Join(KnownPolicies(), ", "))
	}
}

// KnownPolicies lists the accepted ParsePolicy spellings for help text.
func KnownPolicies() []string {
	names := []string{"full", "fixed1", "fixed4", "feedmed:<bytes>", "dtbfm:<bytes>", "dtbmem:<bytes>"}
	sort.Strings(names)
	return names
}

func parseBytes(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1024, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1024*1024, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return n * mult, nil
}
