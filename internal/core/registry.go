package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParsePolicy builds a Policy from a command-line specification.
// Accepted forms (case-insensitive):
//
//	full
//	fixed1, fixed4, fixedK (any K >= 1)
//	feedmed:<traceMaxBytes>
//	dtbfm:<traceMaxBytes>
//	dtbmem:<memMaxBytes>
//	bandit:eps=<p>[,arms=<k>]     adaptive ε-greedy bandit
//	bandit:ucb=<c>[,arms=<k>]     adaptive UCB1 bandit
//	grad[:rate=<r>[,trace=<bytes>]]  adaptive online gradient controller
//
// The byte arguments accept an optional k/m suffix (binary units), so
// "dtbfm:50k" is the paper's 50-kilobyte trace budget. The bandit and
// grad forms build AdaptivePolicy values: parameterized families whose
// per-run state the simulator instantiates from a seed.
func ParsePolicy(spec string) (Policy, error) {
	name, arg, hasArg := strings.Cut(strings.ToLower(strings.TrimSpace(spec)), ":")
	switch {
	case name == "full":
		if hasArg {
			return nil, fmt.Errorf("core: policy %q takes no argument", name)
		}
		return Full{}, nil
	case strings.HasPrefix(name, "fixed"):
		if hasArg {
			return nil, fmt.Errorf("core: policy %q takes no argument", name)
		}
		k, err := strconv.Atoi(strings.TrimPrefix(name, "fixed"))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("core: bad fixed policy %q: want fixedK with K >= 1", spec)
		}
		return Fixed{K: k}, nil
	case name == "feedmed", name == "dtbfm", name == "dtbmem":
		if !hasArg {
			return nil, fmt.Errorf("core: policy %q requires an argument, e.g. %q", name, name+":50k")
		}
		n, err := parseBytes(arg)
		if err != nil {
			return nil, fmt.Errorf("core: policy %q: %v", spec, err)
		}
		switch name {
		case "feedmed":
			return FeedMed{TraceMax: n}, nil
		case "dtbfm":
			return DtbFM{TraceMax: n}, nil
		default:
			return DtbMem{MemMax: n}, nil
		}
	case name == "bandit":
		if !hasArg {
			return nil, fmt.Errorf("core: policy %q requires a selector, e.g. %q or %q", name, "bandit:eps=0.1", "bandit:ucb=1.5")
		}
		return parseBandit(spec, arg)
	case name == "grad":
		return parseGradient(spec, arg, hasArg)
	default:
		return nil, fmt.Errorf("core: unknown policy %q (known: %s)", spec, strings.Join(KnownPolicies(), ", "))
	}
}

// parseBandit parses the comma-separated key=value list after
// "bandit:". Exactly one of eps/ucb selects the exploration strategy.
func parseBandit(spec, arg string) (Policy, error) {
	var b Bandit
	var hasEps, hasUCB bool
	for _, kv := range strings.Split(arg, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("core: policy %q: want key=value, got %q", spec, kv)
		}
		switch key {
		case "eps":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("core: policy %q: eps must be a probability in [0,1], got %q", spec, val)
			}
			b.Eps, hasEps = p, true
		case "ucb":
			c, err := strconv.ParseFloat(val, 64)
			if err != nil || c <= 0 {
				return nil, fmt.Errorf("core: policy %q: ucb must be a positive coefficient, got %q", spec, val)
			}
			b.UCB, hasUCB = c, true
		case "arms":
			k, err := strconv.Atoi(val)
			if err != nil || k < 2 {
				return nil, fmt.Errorf("core: policy %q: arms must be an integer >= 2, got %q", spec, val)
			}
			b.Arms = k
		default:
			return nil, fmt.Errorf("core: policy %q: unknown bandit parameter %q (want eps, ucb or arms)", spec, key)
		}
	}
	if hasEps == hasUCB {
		return nil, fmt.Errorf("core: policy %q: exactly one of eps= or ucb= selects the bandit strategy", spec)
	}
	return b, nil
}

// parseGradient parses the optional comma-separated key=value list
// after "grad:". Bare "grad" takes the defaults.
func parseGradient(spec, arg string, hasArg bool) (Policy, error) {
	var g Gradient
	if !hasArg {
		return g, nil
	}
	for _, kv := range strings.Split(arg, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("core: policy %q: want key=value, got %q", spec, kv)
		}
		switch key {
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r <= 0 || r > 10 {
				return nil, fmt.Errorf("core: policy %q: rate must be a positive learning rate <= 10, got %q", spec, val)
			}
			g.Rate = r
		case "trace":
			n, err := parseBytes(val)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("core: policy %q: trace must be a positive byte budget, got %q", spec, val)
			}
			g.TraceMax = n
		default:
			return nil, fmt.Errorf("core: policy %q: unknown grad parameter %q (want rate or trace)", spec, key)
		}
	}
	return g, nil
}

// KnownPolicies lists the accepted ParsePolicy spellings for help text.
func KnownPolicies() []string {
	names := []string{
		"full", "fixed1", "fixed4",
		"feedmed:<bytes>", "dtbfm:<bytes>", "dtbmem:<bytes>",
		"bandit:eps=<p>[,arms=<k>]", "bandit:ucb=<c>[,arms=<k>]",
		"grad[:rate=<r>[,trace=<bytes>]]",
	}
	sort.Strings(names)
	return names
}

func parseBytes(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1024, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1024*1024, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return n * mult, nil
}
