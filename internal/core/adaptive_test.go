package core

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/xrand"
)

// adaptiveFamilies returns the adaptive policies under test, one per
// selector mode.
func adaptiveFamilies() []AdaptivePolicy {
	return []AdaptivePolicy{
		Bandit{Eps: 0.1},
		Bandit{Eps: 0.25, Arms: 4},
		Bandit{UCB: 1.5},
		Gradient{},
		Gradient{Rate: 0.2, TraceMax: 64 * 1024},
	}
}

// driveTrace records the decision stream of one instance over a
// synthetic but fully deterministic scenario: a growing history whose
// scavenge outcomes are derived from the boundary the instance chose,
// so the feedback loop is closed exactly like the simulator's.
func driveTrace(t *testing.T, inst PolicyInstance, steps int) []byte {
	t.Helper()
	var out bytes.Buffer
	hist := &History{}
	heap := &randHeap{}
	var clock Time
	for i := 0; i < steps; i++ {
		clock = clock.Add(uint64(200_000 + 10_000*i))
		heap.inUse = uint64(1_000_000 + 50_000*i)
		heap.points = append(heap.points, struct {
			t    Time
			live uint64
		}{t: clock, live: uint64(40_000 + 1_000*i)})
		tb := inst.Boundary(clock, hist, heap)
		if tb > clock {
			t.Fatalf("step %d: boundary %v beyond now %v", i, tb, clock)
		}
		if prev := hist.TimeOfPrevious(1); tb > prev {
			t.Fatalf("step %d: boundary %v beyond previous scavenge time %v", i, tb, prev)
		}
		traced := heap.LiveBytesBornAfter(tb)
		surviving := heap.inUse - traced/4
		s := Scavenge{T: clock, TB: tb, MemBefore: heap.inUse, Traced: traced,
			Reclaimed: traced / 4, Surviving: surviving}
		hist.Record(s)
		s.N = hist.Len()
		inst.Observe(ScavengeFacts{Scavenge: s, Live: surviving - surviving/8, MarkTriggered: i%3 == 0})
		info, ok := inst.(DecisionExplainer)
		if !ok {
			t.Fatal("instance does not explain its decisions")
		}
		d, has := info.LastDecision()
		if !has {
			t.Fatalf("step %d: LastDecision not available after Boundary", i)
		}
		out.WriteString(strconv.FormatUint(tb.Bytes(), 10))
		out.WriteByte('|')
		out.WriteString(strconv.Itoa(d.Arm))
		var dig [8]byte
		for b := 0; b < 8; b++ {
			dig[b] = byte(d.FeatureDigest >> (8 * b))
		}
		out.Write(dig[:])
		out.WriteByte('\n')
	}
	return out.Bytes()
}

func TestAdaptiveDeterministicPerSeed(t *testing.T) {
	for _, fam := range adaptiveFamilies() {
		a := driveTrace(t, fam.NewRun(42), 40)
		b := driveTrace(t, fam.NewRun(42), 40)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two runs with the same seed diverged", fam.Name())
		}
	}
}

func TestAdaptiveSeedsAreIndependent(t *testing.T) {
	// Not every policy must differ on every seed pair, but the bandit's
	// exploration stream must: identical streams would mean the seed is
	// ignored.
	fam := Bandit{Eps: 0.5}
	a := driveTrace(t, fam.NewRun(1), 60)
	b := driveTrace(t, fam.NewRun(2), 60)
	if bytes.Equal(a, b) {
		t.Error("Bandit ignores its seed: runs with different seeds are identical")
	}
}

func TestAdaptiveFirstScavengeIsFull(t *testing.T) {
	for _, fam := range adaptiveFamilies() {
		inst := fam.NewRun(7)
		heap := &randHeap{inUse: 1000}
		empty := &History{}
		if tb := inst.Boundary(TimeAt(123456), empty, heap); tb != 0 {
			t.Errorf("%s: first boundary %v, want 0 (full collection)", fam.Name(), tb)
		}
	}
}

// TestAdaptiveSnapshotRoundTrip pins the checkpoint contract: a fresh
// instance restored from a mid-run snapshot must continue with the
// exact decision stream the live instance produces.
func TestAdaptiveSnapshotRoundTrip(t *testing.T) {
	const split, tail = 25, 25
	for _, fam := range adaptiveFamilies() {
		live := fam.NewRun(99)
		driveTrace(t, live, split)
		snap := live.Snapshot()

		restored := fam.NewRun(99)
		driveTrace(t, restored, split) // advance the same way, then overwrite
		if err := restored.Restore(snap); err != nil {
			t.Fatalf("%s: restore: %v", fam.Name(), err)
		}
		a := driveTrace(t, live, tail)
		b := driveTrace(t, restored, tail)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: restored instance diverged from the live one after the snapshot point", fam.Name())
		}
	}
}

// TestAdaptiveSnapshotRestoresIntoFresh is the stronger form: the
// restore target never saw the prefix at all.
func TestAdaptiveSnapshotRestoresIntoFresh(t *testing.T) {
	for _, fam := range adaptiveFamilies() {
		live := fam.NewRun(3)
		driveTrace(t, live, 15)
		snap := live.Snapshot()

		fresh := fam.NewRun(3)
		if err := fresh.Restore(snap); err != nil {
			t.Fatalf("%s: restore into fresh instance: %v", fam.Name(), err)
		}
		a := driveTrace(t, live, 15)
		b := driveTrace(t, fresh, 15)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: fresh-restored instance diverged from the live one", fam.Name())
		}
	}
}

func TestAdaptiveRestoreRejectsGarbage(t *testing.T) {
	for _, fam := range adaptiveFamilies() {
		inst := fam.NewRun(1)
		if err := inst.Restore([]byte("{")); err == nil {
			t.Errorf("%s: Restore accepted malformed JSON", fam.Name())
		}
	}
	// Arm-count mismatch between spec and snapshot.
	snap := Bandit{Eps: 0.1, Arms: 4}.NewRun(1).Snapshot()
	wide := Bandit{Eps: 0.1, Arms: 8}.NewRun(1)
	if err := wide.Restore(snap); err == nil {
		t.Error("Bandit Restore accepted a snapshot with the wrong arm count")
	}
}

func TestAdaptiveFamilyBoundaryPanics(t *testing.T) {
	for _, fam := range adaptiveFamilies() {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: family Boundary did not panic", fam.Name())
					return
				}
				if !strings.Contains(fmt.Sprint(r), "NewRun") {
					t.Errorf("%s: panic %q does not point at NewRun", fam.Name(), r)
				}
			}()
			fam.Boundary(TimeAt(1), &History{}, &randHeap{})
		}()
	}
}

// TestAdaptiveBoundaryContracts runs the adaptive instances through
// the same randomized scenario generator as the stock policies: the
// clamp discipline and the trace-everything-once invariant hold for
// them too.
func TestAdaptiveBoundaryContracts(t *testing.T) {
	r := xrand.New(0xADA9)
	for trial := 0; trial < 1500; trial++ {
		now, hist, heap := randScenario(r)
		prevT := hist.TimeOfPrevious(1)
		for _, fam := range adaptiveFamilies() {
			inst := fam.NewRun(uint64(trial))
			tb := inst.Boundary(now, hist, heap)
			if tb > now {
				t.Fatalf("trial %d: %s: boundary %v beyond now %v", trial, fam.Name(), tb, now)
			}
			if tb > prevT {
				t.Fatalf("trial %d: %s: boundary %v beyond previous scavenge time %v", trial, fam.Name(), tb, prevT)
			}
		}
	}
}

func TestAdaptiveNames(t *testing.T) {
	cases := []struct {
		p    Policy
		want string
	}{
		{Bandit{Eps: 0.1}, "Bandit[eps=0.1,arms=8]"},
		{Bandit{UCB: 1.5, Arms: 4}, "Bandit[ucb=1.5,arms=4]"},
		{Gradient{}, "Grad[rate=0.05,trace=51200]"},
		{Gradient{Rate: 0.2, TraceMax: 1024}, "Grad[rate=0.2,trace=1024]"},
	}
	for _, c := range cases {
		if got := c.p.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestXrandStateRoundTrip(t *testing.T) {
	r := xrand.New(5)
	r.Uint64()
	st := r.State()
	a, b := xrand.New(0), xrand.New(0)
	if err := a.SetState(st); err != nil {
		t.Fatal(err)
	}
	if err := b.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		want := r.Uint64()
		if got := a.Uint64(); got != want {
			t.Fatalf("restored stream diverged at %d", i)
		}
		if got := b.Uint64(); got != want {
			t.Fatalf("second restored stream diverged at %d", i)
		}
	}
	if err := a.SetState([4]uint64{}); err == nil {
		t.Fatal("SetState accepted the all-zero state")
	}
}
