package core

import (
	"encoding/json"
	"fmt"
	"math"

	"github.com/dtbgc/dtbgc/internal/xrand"
)

// gradFeatures is the size of the gradient policy's feature vector.
const gradFeatures = 6

// Gradient is an adaptive policy that learns a boundary *fraction*
// online: TB_n = σ(w·x) · t_{n-1}, a logistic controller over the
// same features the telemetry stream exposes — the previous trigger
// reason, heap pressure, the last traced volume against the budget,
// the true tenured-garbage fraction (from the oracle feedback), and
// the age of the previous scavenge window. After each scavenge the
// weights move along the error signal: traced over budget pushes the
// fraction up (shrink the threatened set), tenured garbage pushes it
// down (collect more), so the controller seeks DTBFM's operating
// point without DTBFM's closed form.
//
// The weight initialization is a small seeded perturbation, so
// distinct seeds explore distinct trajectories while any one run
// stays a deterministic function of (spec, seed, trace).
type Gradient struct {
	Rate     float64 // learning rate; 0 means 0.05
	TraceMax uint64  // trace budget the controller aims for; 0 means 50 KB
}

// rate returns the post-default learning rate.
func (g Gradient) rate() float64 {
	if g.Rate > 0 {
		return g.Rate
	}
	return 0.05
}

// traceMax returns the post-default trace budget.
func (g Gradient) traceMax() uint64 {
	if g.TraceMax > 0 {
		return g.TraceMax
	}
	return 50 * 1024
}

// Name implements Policy.
func (g Gradient) Name() string {
	return fmt.Sprintf("Grad[rate=%g,trace=%d]", g.rate(), g.traceMax())
}

// Boundary implements Policy. See Bandit.Boundary: adaptive families
// fail loudly instead of running stateless.
func (g Gradient) Boundary(Time, *History, Heap) Time {
	panic("core: Gradient is an AdaptivePolicy: call NewRun(seed) and use the PolicyInstance (sim does this automatically)")
}

// NewRun implements AdaptivePolicy.
func (g Gradient) NewRun(seed uint64) PolicyInstance {
	rng := xrand.New(seed)
	inst := &gradientInstance{p: g, rng: rng}
	for i := range inst.w {
		inst.w[i] = 0.01 * rng.NormFloat64()
	}
	return inst
}

// gradientInstance is one run's controller state.
type gradientInstance struct {
	p   Gradient
	rng *xrand.Rand
	w   [gradFeatures]float64

	// The pending decision's inputs, held for the weight update when
	// its outcome arrives.
	pendingX [gradFeatures]float64
	pendingF float64
	pending  bool

	// The previous scavenge's feedback, the source of the oracle
	// features at the next decision.
	prev    ScavengeFacts
	hasPrev bool

	last    DecisionInfo
	hasLast bool
}

// features assembles the decision-time feature vector. Everything is
// normalized into small ranges so one learning rate serves all
// coordinates.
func (g *gradientInstance) features(now Time, hist *History, heap Heap) [gradFeatures]float64 {
	var x [gradFeatures]float64
	x[0] = 1 // bias
	if g.hasPrev && g.prev.MarkTriggered {
		x[1] = 1 // previous scavenge was opportunistic (trigger reason)
	}
	mem := float64(heap.BytesInUse())
	budget := float64(g.p.traceMax())
	x[2] = mem / (mem + 4*budget) // heap pressure in [0, 1)
	if last, ok := hist.Last(); ok {
		x[3] = math.Min(float64(last.Traced)/budget, 4) / 4 // traced vs budget
		prevT := last.T
		x[4] = float64(now.Sub(prevT)) / math.Max(float64(now.Bytes()), 1) // window age
	}
	if g.hasPrev {
		memB := math.Max(float64(g.prev.Scavenge.MemBefore), 1)
		x[5] = math.Min(float64(g.prev.TenuredGarbage())/memB, 1) // oracle tenured-garbage fraction
	}
	return x
}

// Boundary implements PolicyInstance.
func (g *gradientInstance) Boundary(now Time, hist *History, heap Heap) Time {
	if hist.Len() == 0 {
		g.pending = false // nothing to learn from a forced-full first scavenge
		g.last = DecisionInfo{Arm: -1, FeatureDigest: fnvOffset}
		g.hasLast = true
		return 0
	}
	x := g.features(now, hist, heap)
	var z float64
	for i := range x {
		z += g.w[i] * x[i]
	}
	f := 1 / (1 + math.Exp(-z))
	g.pendingX = x
	g.pendingF = f
	g.pending = true
	digest := uint64(fnvOffset)
	for i := range x {
		digest = digestUint64(digest, math.Float64bits(x[i]))
	}
	digest = digestUint64(digest, math.Float64bits(f))
	g.last = DecisionInfo{Arm: -1, FeatureDigest: digest}
	g.hasLast = true
	prev := hist.TimeOfPrevious(1)
	return TimeAt(uint64(f * float64(prev.Bytes())))
}

// Observe implements PolicyInstance: one online logistic step along
// the signed error of the scavenge the pending decision produced.
func (g *gradientInstance) Observe(f ScavengeFacts) {
	if g.pending {
		budget := float64(g.p.traceMax())
		tracedErr := (float64(f.Scavenge.Traced) - budget) / budget
		tracedErr = math.Max(-1, math.Min(1, tracedErr))
		memB := math.Max(float64(f.Scavenge.MemBefore), 1)
		tgFrac := math.Min(float64(f.TenuredGarbage())/memB, 1)
		// Over budget: raise the fraction (smaller threatened set).
		// Tenured garbage piling up: lower it (collect more).
		delta := tracedErr - tgFrac
		slope := g.pendingF * (1 - g.pendingF)
		step := g.p.rate() * delta * slope
		for i := range g.w {
			g.w[i] += step * g.pendingX[i]
		}
		g.pending = false
	}
	g.prev = f
	g.hasPrev = true
}

// LastDecision implements DecisionExplainer.
func (g *gradientInstance) LastDecision() (DecisionInfo, bool) { return g.last, g.hasLast }

// gradientSnapshot is the JSON wire form of a gradientInstance; all
// floats travel as Float64bits for exact round-trips.
type gradientSnapshot struct {
	Rng      [4]uint64 `json:"rng"`
	W        []uint64  `json:"w"`
	PendingX []uint64  `json:"pending_x"`
	PendingF uint64    `json:"pending_f"`
	Pending  bool      `json:"pending"`
	Prev     Scavenge  `json:"prev"`
	PrevLive uint64    `json:"prev_live"`
	PrevMark bool      `json:"prev_mark"`
	HasPrev  bool      `json:"has_prev"`
	LastArm  int       `json:"last_arm"`
	LastDig  uint64    `json:"last_digest"`
	HasLast  bool      `json:"has_last"`
}

// Snapshot implements PolicyInstance.
func (g *gradientInstance) Snapshot() []byte {
	s := gradientSnapshot{
		Rng:      g.rng.State(),
		W:        make([]uint64, gradFeatures),
		PendingX: make([]uint64, gradFeatures),
		PendingF: math.Float64bits(g.pendingF),
		Pending:  g.pending,
		Prev:     g.prev.Scavenge,
		PrevLive: g.prev.Live,
		PrevMark: g.prev.MarkTriggered,
		HasPrev:  g.hasPrev,
		LastArm:  g.last.Arm,
		LastDig:  g.last.FeatureDigest,
		HasLast:  g.hasLast,
	}
	for i := range g.w {
		s.W[i] = math.Float64bits(g.w[i])
		s.PendingX[i] = math.Float64bits(g.pendingX[i])
	}
	out, err := json.Marshal(s)
	if err != nil {
		// Unreachable: the snapshot struct contains only integers.
		panic("core: gradient snapshot: " + err.Error())
	}
	return out
}

// Restore implements PolicyInstance.
func (g *gradientInstance) Restore(snap []byte) error {
	var s gradientSnapshot
	if err := json.Unmarshal(snap, &s); err != nil {
		return fmt.Errorf("core: gradient restore: %w", err)
	}
	if len(s.W) != gradFeatures || len(s.PendingX) != gradFeatures {
		return fmt.Errorf("core: gradient restore: snapshot has %d weights, instance has %d", len(s.W), gradFeatures)
	}
	if err := g.rng.SetState(s.Rng); err != nil {
		return err
	}
	for i := range g.w {
		g.w[i] = math.Float64frombits(s.W[i])
		g.pendingX[i] = math.Float64frombits(s.PendingX[i])
	}
	g.pendingF = math.Float64frombits(s.PendingF)
	g.pending = s.Pending
	g.prev = ScavengeFacts{Scavenge: s.Prev, Live: s.PrevLive, MarkTriggered: s.PrevMark}
	g.hasPrev = s.HasPrev
	g.last = DecisionInfo{Arm: s.LastArm, FeatureDigest: s.LastDig}
	g.hasLast = s.HasLast
	return nil
}

var (
	_ AdaptivePolicy    = Gradient{}
	_ PolicyInstance    = (*gradientInstance)(nil)
	_ DecisionExplainer = (*gradientInstance)(nil)
)
