package engine

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunJobsJobOriginatedDeadlineSurfaces is the regression test for
// the cancellation-swallowing bug: a job that times out on its OWN
// internal deadline while the parent ctx is live used to be filtered
// out of the join (every Canceled/DeadlineExceeded was treated as a
// pool-induced abort), so RunJobs reported success with a missing
// result slot. Origin-based classification must surface it.
func TestRunJobsJobOriginatedDeadlineSurfaces(t *testing.T) {
	jobs := []Job{
		func(ctx context.Context) error {
			// A per-job deadline, e.g. a daemon request budget. The
			// parent ctx stays live the whole time.
			jctx, cancel := context.WithTimeout(ctx, time.Millisecond)
			defer cancel()
			<-jctx.Done()
			return jctx.Err()
		},
	}
	err := RunJobs(context.Background(), 1, jobs)
	if err == nil {
		t.Fatal("RunJobs = nil: job-originated deadline was swallowed as a pool-induced abort")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunJobs error = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunJobsJobOriginatedCancelSurfaces: same classification for a
// job that cancels its own sub-context — origin decides, not kind.
func TestRunJobsJobOriginatedCancelSurfaces(t *testing.T) {
	jobs := []Job{
		func(ctx context.Context) error {
			jctx, cancel := context.WithCancel(ctx)
			cancel()
			return jctx.Err()
		},
	}
	err := RunJobs(context.Background(), 1, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunJobs error = %v, want context.Canceled surfaced as a job failure", err)
	}
}

// TestRunJobsJobDeadlineFailsFast: a job-originated timeout is a real
// failure, so it must also trigger the pool's fail-fast cancel for
// jobs still in flight — and those induced aborts stay dropped.
func TestRunJobsJobDeadlineFailsFast(t *testing.T) {
	timedOut := make(chan struct{})
	jobs := []Job{
		func(ctx context.Context) error {
			<-timedOut // guarantee the timing-out job finishes first
			select {
			case <-ctx.Done():
				return ctx.Err() // induced: must be dropped from the join
			case <-time.After(5 * time.Second):
				return errors.New("fail-fast cancellation never arrived")
			}
		},
		func(ctx context.Context) error {
			defer close(timedOut)
			jctx, cancel := context.WithTimeout(ctx, time.Millisecond)
			defer cancel()
			<-jctx.Done()
			return jctx.Err()
		},
	}
	err := RunJobs(context.Background(), 2, jobs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunJobs error = %v, want the job-originated DeadlineExceeded", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Error("induced abort of the surviving job leaked into the join")
	}
}
