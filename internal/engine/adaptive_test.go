package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/sim"
)

// adaptiveTestMatrix mixes adaptive and pure policies so resume has to
// restore some runners' state and leave others alone.
func adaptiveTestMatrix() []sim.Config {
	const trigger = 32 * 1024
	return []sim.Config{
		{Policy: core.Bandit{Eps: 0.1}, TriggerBytes: trigger, Label: "eps", PolicySeed: 11},
		{Policy: core.Bandit{UCB: 1.5}, TriggerBytes: trigger, Label: "ucb", PolicySeed: 11},
		{Policy: core.Gradient{}, TriggerBytes: trigger, Label: "grad", PolicySeed: 11},
		{Policy: core.Full{}, TriggerBytes: trigger, Label: "full"},
		{Mode: sim.ModeLive},
	}
}

// TestAdaptiveResumeBitIdentical extends the checkpoint contract to
// state-carrying policies: an interrupted and resumed replay must
// finish with exactly the results of an uninterrupted one, learned
// state included, for break points at, before and strictly inside
// batch boundaries.
func TestAdaptiveResumeBitIdentical(t *testing.T) {
	events := testEvents(t)
	want, err := Replay(context.Background(), SliceSource(events), adaptiveTestMatrix())
	if err != nil {
		t.Fatalf("uninterrupted Replay: %v", err)
	}

	// The test trace is shorter than one 4096-event batch, so every
	// nonzero break point is strictly mid-batch for the batching source.
	for _, breakAt := range []int{0, 1, len(events) / 3, len(events) - 1} {
		injected := errors.New("transient read failure")
		_, cp, rerr := ReplayResumable(context.Background(), failAfter(events, breakAt, injected), adaptiveTestMatrix())
		if !errors.Is(rerr, injected) || cp == nil {
			t.Fatalf("breakAt %d: err %v, checkpoint %v", breakAt, rerr, cp)
		}
		got, cp2, rerr := cp.Resume(context.Background(), SliceSource(events))
		if rerr != nil || cp2 != nil {
			t.Fatalf("breakAt %d: Resume: %v (checkpoint %v)", breakAt, rerr, cp2)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("breakAt %d, %s: resumed adaptive result differs from uninterrupted run",
					breakAt, want[i].Collector)
			}
		}
	}
}

// TestAdaptiveResumeRestoresCheckpointState: the checkpoint's recorded
// policy state is authoritative. Corrupting the live instances between
// checkpoint and resume must not change the outcome, because Resume
// restores the snapshots taken at checkpoint time.
func TestAdaptiveResumeRestoresCheckpointState(t *testing.T) {
	events := testEvents(t)
	want, err := Replay(context.Background(), SliceSource(events), adaptiveTestMatrix())
	if err != nil {
		t.Fatalf("uninterrupted Replay: %v", err)
	}
	boom := errors.New("boom")
	breakAt := len(events) / 2
	cfgs := adaptiveTestMatrix()
	_, cp, _ := ReplayResumable(context.Background(), failAfter(events, breakAt, boom), cfgs)
	if cp == nil {
		t.Fatal("no checkpoint")
	}

	// Sabotage: overwrite every adaptive instance's live state with a
	// fresh foreign-seed run's state between checkpoint and resume.
	corrupted := 0
	for i, r := range cp.fleet.Runners() {
		inst := r.PolicyInstance()
		if inst == nil {
			continue
		}
		foreign := cfgs[i].Policy.(core.AdaptivePolicy).NewRun(0xDEAD).Snapshot()
		if err := inst.Restore(foreign); err != nil {
			t.Fatalf("runner %d: corrupting restore failed: %v", i, err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("matrix has no adaptive runners to corrupt")
	}

	got, cp2, rerr := cp.Resume(context.Background(), SliceSource(events))
	if rerr != nil || cp2 != nil {
		t.Fatalf("Resume: %v (checkpoint %v)", rerr, cp2)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: perturbed-then-resumed result differs — Resume trusted live state instead of the snapshot",
				want[i].Collector)
		}
	}
}

// TestAdaptiveResumeTwiceInterrupted: chained interrupts re-snapshot
// the state at each new checkpoint.
func TestAdaptiveResumeTwiceInterrupted(t *testing.T) {
	events := testEvents(t)
	want, err := Replay(context.Background(), SliceSource(events), adaptiveTestMatrix())
	if err != nil {
		t.Fatalf("uninterrupted Replay: %v", err)
	}
	boom := errors.New("boom")
	_, cp, _ := ReplayResumable(context.Background(), failAfter(events, 50, boom), adaptiveTestMatrix())
	if cp == nil {
		t.Fatal("first interrupt: no checkpoint")
	}
	_, cp, _ = cp.Resume(context.Background(), failAfter(events, len(events)/2, boom))
	if cp == nil {
		t.Fatal("second interrupt: no checkpoint")
	}
	got, cp, rerr := cp.Resume(context.Background(), SliceSource(events))
	if rerr != nil || cp != nil {
		t.Fatalf("final resume: %v (checkpoint %v)", rerr, cp)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: twice-resumed adaptive result differs from uninterrupted run", want[i].Collector)
		}
	}
}
