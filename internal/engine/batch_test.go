package engine

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// bigTestEvents is a trace longer than two replay batches, so batch
// boundaries and mid-batch interruptions are actually exercised.
func bigTestEvents(t *testing.T) []trace.Event {
	t.Helper()
	events, err := workload.PaperProfiles()[0].Scale(0.01).Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(events) <= 2*replayBatchEvents {
		t.Fatalf("test trace has %d events, need more than %d", len(events), 2*replayBatchEvents)
	}
	return events
}

// TestBatchSourcesEquivalent: every batch adapter — zero-copy slice
// batches, native ReadBatch decoding, and the per-event buffering
// adapter — must produce results identical to the per-event Replay.
func TestBatchSourcesEquivalent(t *testing.T) {
	events := bigTestEvents(t)
	cfgs := testMatrix()

	want, err := Replay(context.Background(), SliceSource(events), cfgs)
	if err != nil {
		t.Fatalf("per-event Replay: %v", err)
	}

	var enc bytes.Buffer
	if err := trace.WriteAll(&enc, events); err != nil {
		t.Fatalf("encode: %v", err)
	}

	sources := map[string]func() BatchSource{
		"SliceBatchSource": func() BatchSource { return SliceBatchSource(events) },
		"ReaderBatchSource": func() BatchSource {
			return ReaderBatchSource(trace.NewReader(bytes.NewReader(enc.Bytes())))
		},
		"BatchingSource": func() BatchSource { return BatchingSource(SliceSource(events)) },
		"single-event batches": func() BatchSource {
			return func(emit func([]trace.Event) error) error {
				for i := range events {
					if err := emit(events[i : i+1]); err != nil {
						return err
					}
				}
				return nil
			}
		},
	}
	for name, mk := range sources {
		got, err := ReplayBatches(context.Background(), mk(), cfgs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range cfgs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%s: config %d (%s) differs from per-event replay", name, i, want[i].Collector)
			}
		}
	}
}

// telemetryMatrix attaches one shared telemetry stream to the test
// matrix, labelling each run, so interleaved probe output can be
// compared byte for byte between replays.
func telemetryMatrix(buf *bytes.Buffer) []sim.Config {
	cfgs := testMatrix()
	probe := sim.NewTelemetryWriter(buf)
	for i := range cfgs {
		cfgs[i].Probe = probe
		cfgs[i].Label = "batch"
	}
	return cfgs
}

// TestResumeMidBatchBitIdentical is the batching regression test for
// checkpoint granularity: a source failure whose event count lands
// strictly inside a batch (not on a replayBatchEvents boundary) must
// checkpoint at exactly that event, and the resumed replay must merge
// into results and a telemetry sequence bit-identical to an
// uninterrupted replay.
func TestResumeMidBatchBitIdentical(t *testing.T) {
	events := bigTestEvents(t)

	var wantTel bytes.Buffer
	want, err := Replay(context.Background(), SliceSource(events), telemetryMatrix(&wantTel))
	if err != nil {
		t.Fatalf("uninterrupted replay: %v", err)
	}

	breakAts := []int{
		replayBatchEvents + 1337, // strictly inside the second batch
		replayBatchEvents - 1,    // just before the first boundary
		2*replayBatchEvents + 1,  // just past a boundary
		len(events) - 3,          // inside the final partial batch
	}
	for _, breakAt := range breakAts {
		if breakAt%replayBatchEvents == 0 {
			t.Fatalf("breakAt %d is batch-aligned; the test needs mid-batch offsets", breakAt)
		}
		var tel bytes.Buffer
		boom := errInjected{}
		_, cp, rerr := ReplayResumable(context.Background(),
			failAfter(events, breakAt, boom), telemetryMatrix(&tel))
		if rerr == nil || cp == nil {
			t.Fatalf("breakAt %d: interrupted replay gave err=%v cp=%v", breakAt, rerr, cp)
		}
		if cp.Events() != breakAt {
			t.Fatalf("breakAt %d: checkpoint at %d events — batching rounded the checkpoint", breakAt, cp.Events())
		}
		got, cp, rerr := cp.Resume(context.Background(), SliceSource(events))
		if rerr != nil || cp != nil {
			t.Fatalf("breakAt %d: resume: %v (checkpoint %v)", breakAt, rerr, cp)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("breakAt %d: %s: resumed result differs from uninterrupted run", breakAt, want[i].Collector)
			}
		}
		if !bytes.Equal(tel.Bytes(), wantTel.Bytes()) {
			t.Errorf("breakAt %d: resumed telemetry stream differs from uninterrupted run", breakAt)
		}
	}
}

type errInjected struct{}

func (errInjected) Error() string { return "injected source failure" }

// TestResumeBatchesMidBatch exercises the batch-native resume entry
// point: interrupt via a batch source that fails mid-stream, resume
// via ResumeBatches, same bit-identity contract.
func TestResumeBatchesMidBatch(t *testing.T) {
	events := bigTestEvents(t)
	breakAt := replayBatchEvents + 613

	var wantTel bytes.Buffer
	want, err := Replay(context.Background(), SliceSource(events), telemetryMatrix(&wantTel))
	if err != nil {
		t.Fatalf("uninterrupted replay: %v", err)
	}

	failing := BatchingSource(failAfter(events, breakAt, errInjected{}))
	var tel bytes.Buffer
	_, cp, rerr := ReplayBatchesResumable(context.Background(), failing, telemetryMatrix(&tel))
	if rerr == nil || cp == nil {
		t.Fatalf("interrupted replay gave err=%v cp=%v", rerr, cp)
	}
	if cp.Events() != breakAt {
		t.Fatalf("checkpoint at %d events, want %d", cp.Events(), breakAt)
	}
	got, cp, rerr := cp.ResumeBatches(context.Background(), SliceBatchSource(events))
	if rerr != nil || cp != nil {
		t.Fatalf("resume: %v (checkpoint %v)", rerr, cp)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: resumed result differs from uninterrupted run", want[i].Collector)
		}
	}
	if !bytes.Equal(tel.Bytes(), wantTel.Bytes()) {
		t.Error("resumed telemetry stream differs from uninterrupted run")
	}
}
