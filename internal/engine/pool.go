package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one schedulable unit of evaluation work — typically "one
// workload: generate its trace once, replay it under every collector".
// A job owns its result slot, so assembly stays deterministic no
// matter how the pool schedules.
type Job func(ctx context.Context) error

// RunJobs executes the jobs on a bounded worker pool and joins their
// errors.
//
// Concurrency: at most workers jobs run at once; workers <= 0 means
// GOMAXPROCS. Scheduling cannot influence results — each job writes
// only its own slot and every replay is single-threaded.
//
// Cancellation: the first hard (non-cancellation) error cancels the
// context handed to every other job, so in-flight replays abort at
// their next event-boundary check — fail-fast. Every job still
// starts, which keeps cheap validation failures visible even after a
// cancellation: a run that breaks several workloads names all of them
// in one pass. Cancellations induced by that fail-fast are dropped
// from the join; cancellation of the parent ctx itself is returned as
// the parent's error.
func RunJobs(ctx context.Context, workers int, jobs []Job) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				err := jobs[i](cctx)
				errs[i] = err
				if err != nil && !isCancellation(err) {
					cancel() // fail fast: abort the other replays
				}
			}
		}()
	}
	wg.Wait()
	hard := make([]error, 0, len(errs))
	for _, err := range errs {
		if err != nil && !isCancellation(err) {
			hard = append(hard, err)
		}
	}
	if len(hard) > 0 {
		return errors.Join(hard...)
	}
	return ctx.Err()
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
