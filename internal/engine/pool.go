package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one schedulable unit of evaluation work — typically "one
// workload: generate its trace once, replay it under every collector".
// A job owns its result slot, so assembly stays deterministic no
// matter how the pool schedules.
type Job func(ctx context.Context) error

// RunJobs executes the jobs on a bounded worker pool and joins their
// errors.
//
// Concurrency: at most workers jobs run at once; workers <= 0 means
// GOMAXPROCS. Scheduling cannot influence results — each job writes
// only its own slot and every replay is single-threaded.
//
// Cancellation: the first failing job cancels the context handed to
// every other job, so in-flight replays abort at their next
// event-boundary check — fail-fast. Every job still starts, which
// keeps cheap validation failures visible even after a cancellation:
// a run that breaks several workloads names all of them in one pass.
//
// Cancellation errors are classified by origin, not by kind. A
// Canceled/DeadlineExceeded that arrives after the pool's own
// cancel() fired (or after the parent ctx died) is an induced abort
// and is dropped from the join; one that arrives while both the pool
// and the parent are still live can only have originated inside the
// job itself (e.g. a per-job deadline expiring) and is returned like
// any other failure. Cancellation of the parent ctx is reported as
// the parent's error.
func RunJobs(ctx context.Context, workers int, jobs []Job) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(jobs))
	var aborted atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				err := jobs[i](cctx)
				if err != nil && isCancellation(err) && (aborted.Load() || ctx.Err() != nil) {
					// Induced by the pool's fail-fast cancel or by the
					// parent ctx dying — not this job's own failure.
					// The Store below is sequenced before cancel(), and
					// a job only observes cctx done after cancel(), so
					// an induced job always sees aborted == true here.
					continue
				}
				errs[i] = err
				if err != nil {
					aborted.Store(true)
					cancel() // fail fast: abort the other replays
				}
			}
		}()
	}
	wg.Wait()
	hard := make([]error, 0, len(errs))
	for _, err := range errs {
		if err != nil {
			hard = append(hard, err)
		}
	}
	if len(hard) > 0 {
		return errors.Join(hard...)
	}
	return ctx.Err()
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
