package engine

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// testMatrix is a representative collector matrix: a policy of each
// boundary family plus both baselines.
func testMatrix() []sim.Config {
	const trigger = 32 * 1024
	return []sim.Config{
		{Policy: core.Full{}, TriggerBytes: trigger},
		{Policy: core.Fixed{K: 1}, TriggerBytes: trigger},
		{Policy: core.DtbFM{TraceMax: 8 * 1024}, TriggerBytes: trigger},
		{Policy: core.DtbMem{MemMax: 96 * 1024}, TriggerBytes: trigger},
		{Mode: sim.ModeNoGC},
		{Mode: sim.ModeLive},
	}
}

func testEvents(t *testing.T) []trace.Event {
	t.Helper()
	events, err := workload.PaperProfiles()[0].Scale(0.002).Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty test trace")
	}
	return events
}

// TestReplayMatchesSoloRuns is the engine's core contract: fanning one
// trace out to N runners yields results bit-identical to N independent
// solo runs over the same trace.
func TestReplayMatchesSoloRuns(t *testing.T) {
	events := testEvents(t)
	cfgs := testMatrix()

	got, err := Replay(context.Background(), SliceSource(events), cfgs)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(cfgs) {
		t.Fatalf("Replay returned %d results, want %d", len(got), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, err := sim.Run(events, cfg)
		if err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("config %d (%s): fan-out result differs from solo run", i, want.Collector)
		}
	}
}

// TestReplaySingleSourcePass pins the one-pass guarantee: however many
// configs are replayed, the source is invoked exactly once and each
// event is produced exactly once.
func TestReplaySingleSourcePass(t *testing.T) {
	events := testEvents(t)
	var calls, emitted int
	src := func(emit func(trace.Event) error) error {
		calls++
		for _, e := range events {
			emitted++
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := Replay(context.Background(), src, testMatrix()); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if calls != 1 {
		t.Errorf("source ran %d times, want exactly 1", calls)
	}
	if emitted != len(events) {
		t.Errorf("source emitted %d events, want %d", emitted, len(events))
	}
}

// TestReaderSource checks the streaming decode path produces the same
// results as the in-memory path.
func TestReaderSource(t *testing.T) {
	events := testEvents(t)
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, events); err != nil {
		t.Fatalf("encode: %v", err)
	}
	cfgs := testMatrix()
	fromSlice, err := Replay(context.Background(), SliceSource(events), cfgs)
	if err != nil {
		t.Fatalf("slice replay: %v", err)
	}
	fromReader, err := Replay(context.Background(), ReaderSource(trace.NewReader(&buf)), cfgs)
	if err != nil {
		t.Fatalf("reader replay: %v", err)
	}
	if !reflect.DeepEqual(fromSlice, fromReader) {
		t.Error("streaming replay differs from in-memory replay")
	}
}

// TestReplayCancellation cancels the context mid-stream and expects
// the replay to stop at the next event-boundary check instead of
// draining the trace.
func TestReplayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const total = 10 * cancelCheckEvery
	emitted := 0
	src := func(emit func(trace.Event) error) error {
		for i := 0; i < total; i++ {
			if i == 100 {
				cancel()
			}
			emitted++
			if err := emit(trace.Alloc(trace.ObjectID(i+1), 64, uint64(i))); err != nil {
				return err
			}
		}
		return nil
	}
	results, err := Replay(ctx, src, testMatrix())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Replay error = %v, want context.Canceled", err)
	}
	if results != nil {
		t.Error("cancelled replay returned results")
	}
	// The check runs every cancelCheckEvery events, so the replay must
	// stop within one stride of the cancellation point.
	if emitted > 100+cancelCheckEvery {
		t.Errorf("replay consumed %d events after cancellation, want prompt stop", emitted-100)
	}
}

// TestReplayFeedErrorNamesCollector checks a runner's feed error is
// labelled with the collector that rejected the event.
func TestReplayFeedErrorNamesCollector(t *testing.T) {
	bad := []trace.Event{
		trace.Alloc(1, 64, 0),
		trace.Free(2, 1), // never allocated
	}
	_, err := Replay(context.Background(), SliceSource(bad), []sim.Config{{Policy: core.Full{}}})
	if err == nil {
		t.Fatal("Replay accepted a free of an unknown object")
	}
	if !strings.Contains(err.Error(), "Full") {
		t.Errorf("feed error %q does not name the collector", err)
	}
}

// TestReplayRunnerConstructionError checks an invalid config surfaces
// before any source work happens.
func TestReplayRunnerConstructionError(t *testing.T) {
	calls := 0
	src := func(emit func(trace.Event) error) error {
		calls++
		return nil
	}
	_, err := Replay(context.Background(), src, []sim.Config{{Mode: sim.ModePolicy}}) // no Policy
	if err == nil {
		t.Fatal("Replay accepted ModePolicy without a Policy")
	}
	if calls != 0 {
		t.Error("source ran despite runner construction failing")
	}
}

func TestRunJobsBounded(t *testing.T) {
	const workers = 2
	var cur, peak atomic.Int64
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
			return nil
		}
	}
	if err := RunJobs(context.Background(), workers, jobs); err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, want at most %d", p, workers)
	}
}

// TestRunJobsFailFast checks a hard error cancels the context seen by
// the jobs that are still running.
func TestRunJobsFailFast(t *testing.T) {
	boom := errors.New("boom")
	failed := make(chan struct{})
	sawCancel := make(chan struct{}, 1)
	jobs := []Job{
		func(ctx context.Context) error {
			<-failed // guarantee the failing job finishes first
			select {
			case <-ctx.Done():
				sawCancel <- struct{}{}
				return ctx.Err()
			case <-time.After(5 * time.Second):
				return errors.New("cancellation never arrived")
			}
		},
		func(ctx context.Context) error {
			defer close(failed)
			return boom
		},
	}
	err := RunJobs(context.Background(), 2, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("RunJobs error = %v, want boom", err)
	}
	select {
	case <-sawCancel:
	default:
		t.Error("surviving job never observed the fail-fast cancellation")
	}
}

// TestRunJobsJoinsHardErrors checks every hard failure is reported —
// not just the first — while fail-fast cancellations are dropped from
// the join.
func TestRunJobsJoinsHardErrors(t *testing.T) {
	errA := errors.New("workload A invalid")
	errB := errors.New("workload B invalid")
	jobs := []Job{
		func(ctx context.Context) error { return errA },
		func(ctx context.Context) error { return ctx.Err() }, // cancelled by fail-fast
		func(ctx context.Context) error { return errB },
	}
	err := RunJobs(context.Background(), 1, jobs)
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("RunJobs error = %v, want both hard errors joined", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Error("fail-fast cancellation leaked into the joined error")
	}
}

// TestRunJobsParentCancel checks cancelling the caller's context is
// reported as that context's own error.
func TestRunJobsParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	jobs := []Job{
		func(ctx context.Context) error { ran.Add(1); return ctx.Err() },
		func(ctx context.Context) error { ran.Add(1); return ctx.Err() },
	}
	err := RunJobs(ctx, 2, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunJobs error = %v, want context.Canceled", err)
	}
	// Jobs still start (they observe cancellation themselves), so cheap
	// validation failures stay visible even under cancellation.
	if ran.Load() != 2 {
		t.Errorf("%d jobs started, want all 2", ran.Load())
	}
}

// TestRunJobsDeterministicAssembly runs the same job set under many
// schedules and checks the per-slot outcomes never vary.
func TestRunJobsDeterministicAssembly(t *testing.T) {
	out := make([]int, 16)
	var mu sync.Mutex
	jobs := make([]Job, len(out))
	for i := range jobs {
		jobs[i] = func(ctx context.Context) error {
			mu.Lock()
			out[i] = i + 1
			mu.Unlock()
			return nil
		}
	}
	for _, workers := range []int{1, 3, 0} {
		for i := range out {
			out[i] = 0
		}
		if err := RunJobs(context.Background(), workers, jobs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i+1)
			}
		}
	}
}
