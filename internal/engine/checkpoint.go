package engine

import (
	"context"
	"errors"
	"fmt"

	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// Checkpoint/resume for Replay: when a replay aborts between events —
// a source read error, a context cancellation — the fleet is still
// consistent (every runner has processed exactly the events before the
// abort point), so the replay can continue from a reopened source
// instead of starting over. The resumed run's results and telemetry
// are bit-identical to an uninterrupted run: the runners are the same
// objects carrying the same state, and the skipped prefix is decoded
// but never re-fed.
//
// Batching does not change the granularity: a checkpoint may land
// strictly mid-batch (a source that fails after k events emits those k
// before the error — see BatchingSource — and a resumed replay trims
// the first batches down to the unprocessed suffix), so Events() is an
// exact event count, never rounded to a batch boundary.
//
// A checkpoint is in-memory only — fleet state (tape, per-runner heap
// views, probe chain) is live program state, not a serializable
// snapshot — so resume serves the retry-in-process case: transient
// fault, reopen, continue. A trace validation error is *not*
// resumable: the offending event can never be applied, so retrying the
// same stream would fail the same way.
//
// Adaptive-policy state is the one exception to "live state is the
// checkpoint": it is captured as opaque per-runner snapshots at
// checkpoint creation and restored at resume, so the learned state a
// resumed replay continues from is exactly what the checkpoint saw —
// even if someone touched the in-memory instances in between.
//
// The tape's compaction watermark gets the same treatment: captured
// at checkpoint creation and verified at resume. Compaction retires
// tape state that cannot be resurrected, so the "restore" direction
// is a bit-exact equality check — the watermark is a pure function of
// the events fed (the cadence counts events, not batches), and a
// mismatch means the fleet diverged from the checkpoint in between.
type Checkpoint struct {
	fleet  *sim.Fleet
	events int
	policy [][]byte
	tape   sim.TapeCompaction
}

// Events returns the number of events every runner had processed when
// the replay was interrupted.
func (c *Checkpoint) Events() int { return c.events }

// TapeCompaction returns the compaction watermark the shared tape
// carried at the interruption point: how many ordinals epoch-based
// compaction had retired and which trace IDs went with them. Tests
// use it to prove a resume crossed a compaction epoch.
func (c *Checkpoint) TapeCompaction() sim.TapeCompaction { return c.tape }

// feedError marks a fleet feed failure — a trace validation error —
// which no retry can get past and is therefore not resumable; source
// and context errors, which land between events, are.
type feedError struct{ err error }

func (e *feedError) Error() string { return e.err.Error() }
func (e *feedError) Unwrap() error { return e.err }

// ReplayResumable is Replay returning a Checkpoint alongside a
// resumable error: source failures and context cancellation yield a
// non-nil checkpoint from which Resume continues; config and runner
// feed errors yield a nil checkpoint (nothing consistent to resume).
// On success the checkpoint is nil and the results are exactly
// Replay's.
func ReplayResumable(ctx context.Context, src Source, cfgs []sim.Config) ([]*sim.Result, *Checkpoint, error) {
	return ReplayBatchesResumable(ctx, BatchingSource(src), cfgs)
}

// ReplayBatchesResumable is ReplayResumable over a batch-native
// source.
func ReplayBatchesResumable(ctx context.Context, src BatchSource, cfgs []sim.Config) ([]*sim.Result, *Checkpoint, error) {
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, nil, fmt.Errorf("engine: config %d: %w", i, err)
		}
	}
	fleet, err := sim.NewFleet(cfgs)
	if err != nil {
		return nil, nil, err
	}
	return replayFrom(ctx, src, fleet, 0)
}

// Resume continues the interrupted replay from a reopened source. The
// source must replay the same stream from the beginning: the first
// Events() events are decoded and discarded (the runners already
// processed them), and feeding resumes at the interruption point —
// even mid-batch. A source that ends before reaching the checkpoint is
// an error. Resume can itself be interrupted and resumed again.
//
// The checkpoint owns its fleet: after a successful Resume the runners
// are finished and the checkpoint must not be resumed again.
func (c *Checkpoint) Resume(ctx context.Context, src Source) ([]*sim.Result, *Checkpoint, error) {
	return c.ResumeBatches(ctx, BatchingSource(src))
}

// ResumeBatches is Resume over a batch-native source.
func (c *Checkpoint) ResumeBatches(ctx context.Context, src BatchSource) ([]*sim.Result, *Checkpoint, error) {
	// Re-arm the adaptive policies with the state the checkpoint
	// recorded. A restore failure means the checkpoint itself is bad —
	// nothing consistent to resume from.
	if err := c.fleet.RestorePolicyState(c.policy); err != nil {
		return nil, nil, fmt.Errorf("engine: resume: %w", err)
	}
	// Verify the tape against the recorded compaction watermark: a
	// fleet that was fed (or compacted) past the checkpoint would
	// resume from the wrong state.
	if err := c.fleet.RestoreTapeCompaction(c.tape); err != nil {
		return nil, nil, fmt.Errorf("engine: resume: %w", err)
	}
	return replayFrom(ctx, src, c.fleet, c.events)
}

// replayFrom is the shared replay core: pull event batches from src,
// discard the first skip events (already processed; a batch straddling
// the boundary is trimmed, not rounded), deliver the rest to the fleet
// batch by batch, and classify any abort as resumable or not.
// Cancellation is checked once per batch, before the batch is applied,
// so an aborted replay has fed exactly the batches it acknowledged.
//
//dtbvet:hotpath the engine fan-out loop: one closure call per batch
func replayFrom(ctx context.Context, src BatchSource, fleet *sim.Fleet, skip int) ([]*sim.Result, *Checkpoint, error) {
	n := 0
	err := src(func(batch []trace.Event) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if n < skip {
			k := min(skip-n, len(batch))
			n += k
			batch = batch[k:]
			if len(batch) == 0 {
				return nil
			}
		}
		if ferr := fleet.FeedBatch(batch); ferr != nil {
			return &feedError{fmt.Errorf("%s: %w", fleet.Runners()[0].Collector(), ferr)}
		}
		n += len(batch)
		return nil
	})
	if err != nil {
		var fe *feedError
		if errors.As(err, &fe) {
			return nil, nil, fe.err
		}
		if n < skip {
			return nil, nil, fmt.Errorf("engine: resume: source failed %d event(s) before the checkpoint at %d: %w", skip-n, skip, err)
		}
		return nil, &Checkpoint{
			fleet:  fleet,
			events: n,
			policy: fleet.SnapshotPolicyState(),
			tape:   fleet.SnapshotTapeCompaction(),
		}, err
	}
	if n < skip {
		return nil, nil, fmt.Errorf("engine: resume: source delivered %d event(s), checkpoint expects at least %d", n, skip)
	}
	return fleet.Finish(), nil, nil
}
