package engine

import (
	"context"
	"errors"
	"fmt"

	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// Checkpoint/resume for Replay: when a replay aborts between events —
// a source read error, a context cancellation — the runners are still
// consistent (every runner has processed exactly the events before the
// abort point), so the replay can continue from a reopened source
// instead of starting over. The resumed run's results and telemetry
// are bit-identical to an uninterrupted run: the runners are the same
// objects carrying the same state, and the skipped prefix is decoded
// but never re-fed.
//
// A checkpoint is in-memory only — sim.Runner state (heap model, probe
// chain, RNG position) is live program state, not a serializable
// snapshot — so resume serves the retry-in-process case: transient
// fault, reopen, continue. A runner Feed error is *not* resumable: it
// aborts mid-event, with earlier runners in the fan-out having seen an
// event later ones have not.

// Checkpoint captures a consistent interrupted replay: every runner
// has processed exactly Events() events. Resume continues it.
type Checkpoint struct {
	runners []*sim.Runner
	events  int
}

// Events returns the number of events every runner had processed when
// the replay was interrupted.
func (c *Checkpoint) Events() int { return c.events }

// feedError marks a runner Feed failure, which aborts mid-event and is
// therefore not resumable; source and context errors, which land
// between events, are.
type feedError struct{ err error }

func (e *feedError) Error() string { return e.err.Error() }
func (e *feedError) Unwrap() error { return e.err }

// ReplayResumable is Replay returning a Checkpoint alongside a
// resumable error: source failures and context cancellation yield a
// non-nil checkpoint from which Resume continues; config and runner
// feed errors yield a nil checkpoint (nothing consistent to resume).
// On success the checkpoint is nil and the results are exactly
// Replay's.
func ReplayResumable(ctx context.Context, src Source, cfgs []sim.Config) ([]*sim.Result, *Checkpoint, error) {
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, nil, fmt.Errorf("engine: config %d: %w", i, err)
		}
	}
	runners := make([]*sim.Runner, len(cfgs))
	for i, cfg := range cfgs {
		r, err := sim.NewRunner(cfg)
		if err != nil {
			return nil, nil, err
		}
		runners[i] = r
	}
	return replayFrom(ctx, src, runners, 0)
}

// Resume continues the interrupted replay from a reopened source. The
// source must replay the same stream from the beginning: the first
// Events() events are decoded and discarded (the runners already
// processed them), and feeding resumes at the interruption point. A
// source that ends before reaching the checkpoint is an error. Resume
// can itself be interrupted and resumed again.
//
// The checkpoint owns its runners: after a successful Resume they are
// finished and the checkpoint must not be resumed again.
func (c *Checkpoint) Resume(ctx context.Context, src Source) ([]*sim.Result, *Checkpoint, error) {
	return replayFrom(ctx, src, c.runners, c.events)
}

// replayFrom is the shared replay core: decode events from src,
// discard the first skip (already processed), fan out the rest to the
// runners, and classify any abort as resumable or not.
//
//dtbvet:hotpath the engine fan-out inner loop: one closure call per event
func replayFrom(ctx context.Context, src Source, runners []*sim.Runner, skip int) ([]*sim.Result, *Checkpoint, error) {
	n := 0
	err := src(func(e trace.Event) error {
		if n%cancelCheckEvery == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if n < skip {
			n++
			return nil
		}
		for _, r := range runners {
			if ferr := r.Feed(e); ferr != nil {
				return &feedError{fmt.Errorf("%s: %w", r.Collector(), ferr)}
			}
		}
		n++
		return nil
	})
	if err != nil {
		var fe *feedError
		if errors.As(err, &fe) {
			return nil, nil, fe.err
		}
		if n < skip {
			return nil, nil, fmt.Errorf("engine: resume: source failed %d event(s) before the checkpoint at %d: %w", skip-n, skip, err)
		}
		return nil, &Checkpoint{runners: runners, events: n}, err
	}
	if n < skip {
		return nil, nil, fmt.Errorf("engine: resume: source delivered %d event(s), checkpoint expects at least %d", n, skip)
	}
	results := make([]*sim.Result, len(runners))
	for i, r := range runners {
		results[i] = r.Finish()
	}
	return results, nil, nil
}
