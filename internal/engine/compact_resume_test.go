package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// compactionChurn is pure churn long enough that the tape's
// default-threshold epoch compaction fires well before the end: no
// object survives, so the dead prefix grows without bound.
func compactionChurn(t testing.TB, n int) []trace.Event {
	t.Helper()
	b := trace.NewBuilder()
	var pending []trace.ObjectID
	for i := 0; i < n; i++ {
		b.Advance(100)
		pending = append(pending, b.Alloc(256))
		if len(pending) > 12 {
			b.Free(pending[0])
			pending = pending[1:]
		}
	}
	return b.Events()
}

// compactionMatrix holds collectors whose heaps drain, so runner
// floors advance and retirement actually happens.
func compactionMatrix() []sim.Config {
	return []sim.Config{
		{Policy: core.Full{}, TriggerBytes: 10 << 10},
		{Policy: core.DtbFM{TraceMax: 1 << 20}, TriggerBytes: 10 << 10},
		{Mode: sim.ModeLive},
	}
}

// TestResumeAcrossCompactionEpoch: a replay interrupted after the
// tape has retired ordinal prefixes must checkpoint the compaction
// watermark and resume to results bit-identical to the uninterrupted
// run — the retired prefix is exactly the state a resume can no
// longer reconstruct, so the watermark must prove it doesn't have to.
func TestResumeAcrossCompactionEpoch(t *testing.T) {
	events := compactionChurn(t, 30000)

	want, err := Replay(context.Background(), SliceSource(events), compactionMatrix())
	if err != nil {
		t.Fatalf("uninterrupted Replay: %v", err)
	}

	boom := errors.New("transient read failure")
	breakAt := 40000 // far past the first default-cadence compaction
	_, cp, rerr := ReplayResumable(context.Background(), failAfter(events, breakAt, boom), compactionMatrix())
	if !errors.Is(rerr, boom) || cp == nil {
		t.Fatalf("interrupt: err %v, checkpoint %v", rerr, cp)
	}
	w := cp.TapeCompaction()
	if w.RetiredOrdinals == 0 {
		t.Fatalf("checkpoint at %d events crossed no compaction epoch (watermark %+v): the test lost its premise", breakAt, w)
	}
	if w.Events != breakAt {
		t.Fatalf("watermark taken at %d events, checkpoint at %d", w.Events, breakAt)
	}
	if len(w.RetiredIDs) == 0 {
		t.Fatalf("watermark retired %d ordinals but recorded no ID spans", w.RetiredOrdinals)
	}

	got, cp2, rerr := cp.Resume(context.Background(), SliceSource(events))
	if rerr != nil || cp2 != nil {
		t.Fatalf("resume: %v (checkpoint %v)", rerr, cp2)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("config %d (%s): result resumed across a compaction epoch differs from uninterrupted run",
				i, want[i].Collector)
		}
	}
}

// TestResumeRejectsDivergedTape: a fleet fed past its checkpoint no
// longer matches the recorded compaction watermark, and Resume must
// refuse it — continuing would replay the wrong suffix onto the
// wrong tape.
func TestResumeRejectsDivergedTape(t *testing.T) {
	events := compactionChurn(t, 30000)
	boom := errors.New("boom")
	_, cp, _ := ReplayResumable(context.Background(), failAfter(events, 40000, boom), compactionMatrix())
	if cp == nil {
		t.Fatal("no checkpoint")
	}
	// Sneak events into the checkpoint's fleet behind its back.
	if err := cp.fleet.FeedBatch(events[40000:40100]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cp.Resume(context.Background(), SliceSource(events)); err == nil {
		t.Fatal("resume accepted a fleet that diverged from the checkpoint")
	}
}
