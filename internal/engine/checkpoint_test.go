package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// failAfter wraps a slice source to fail with err after emitting n
// events — a transient read error at an exact, resumable position.
func failAfter(events []trace.Event, n int, err error) Source {
	return func(emit func(trace.Event) error) error {
		for i, e := range events {
			if i == n {
				return err
			}
			if eerr := emit(e); eerr != nil {
				return eerr
			}
		}
		return nil
	}
}

// TestResumeBitIdentical is the checkpoint contract: a replay
// interrupted by a source error and resumed from a reopened source
// finishes with results deeply equal to the uninterrupted run's —
// History, Pauses and telemetry-visible floats included.
func TestResumeBitIdentical(t *testing.T) {
	events := testEvents(t)
	cfgs := testMatrix()

	want, err := Replay(context.Background(), SliceSource(events), cfgs)
	if err != nil {
		t.Fatalf("uninterrupted Replay: %v", err)
	}

	for _, breakAt := range []int{0, 1, len(events) / 2, len(events) - 1} {
		injected := fmt.Errorf("transient read failure")
		_, cp, rerr := ReplayResumable(context.Background(), failAfter(events, breakAt, injected), testMatrix())
		if !errors.Is(rerr, injected) {
			t.Fatalf("breakAt %d: error %v, want the injected one", breakAt, rerr)
		}
		if cp == nil {
			t.Fatalf("breakAt %d: no checkpoint for a between-events error", breakAt)
		}
		if cp.Events() != breakAt {
			t.Fatalf("breakAt %d: checkpoint at %d events", breakAt, cp.Events())
		}
		got, cp2, rerr := cp.Resume(context.Background(), SliceSource(events))
		if rerr != nil || cp2 != nil {
			t.Fatalf("breakAt %d: Resume: %v (checkpoint %v)", breakAt, rerr, cp2)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("breakAt %d, config %d (%s): resumed result differs from uninterrupted run",
					breakAt, i, want[i].Collector)
			}
		}
	}
}

// TestResumeTwiceInterrupted: a resume can itself be interrupted and
// resumed again; consistency survives chaining.
func TestResumeTwiceInterrupted(t *testing.T) {
	events := testEvents(t)
	want, err := Replay(context.Background(), SliceSource(events), testMatrix())
	if err != nil {
		t.Fatalf("uninterrupted Replay: %v", err)
	}
	boom := errors.New("boom")
	_, cp, rerr := ReplayResumable(context.Background(), failAfter(events, 50, boom), testMatrix())
	if cp == nil {
		t.Fatalf("first interrupt: no checkpoint (err %v)", rerr)
	}
	_, cp, rerr = cp.Resume(context.Background(), failAfter(events, 200, boom))
	if cp == nil {
		t.Fatalf("second interrupt: no checkpoint (err %v)", rerr)
	}
	if cp.Events() != 200 {
		t.Fatalf("second checkpoint at %d events, want 200", cp.Events())
	}
	got, cp, rerr := cp.Resume(context.Background(), SliceSource(events))
	if rerr != nil || cp != nil {
		t.Fatalf("final resume: %v (checkpoint %v)", rerr, cp)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("config %d: twice-resumed result differs from uninterrupted run", i)
		}
	}
}

// TestResumeAfterCancellation: context cancellation is a between-events
// abort, so it checkpoints; resuming under a fresh context completes.
func TestResumeAfterCancellation(t *testing.T) {
	events := testEvents(t)
	want, err := Replay(context.Background(), SliceSource(events), testMatrix())
	if err != nil {
		t.Fatalf("uninterrupted Replay: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, cp, rerr := ReplayResumable(ctx, SliceSource(events), testMatrix())
	if !errors.Is(rerr, context.Canceled) || cp == nil {
		t.Fatalf("cancelled replay: err %v, checkpoint %v", rerr, cp)
	}
	got, cp, rerr := cp.Resume(context.Background(), SliceSource(events))
	if rerr != nil || cp != nil {
		t.Fatalf("resume after cancel: %v (checkpoint %v)", rerr, cp)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("config %d: resumed-after-cancel result differs", i)
		}
	}
}

// TestFeedErrorNotResumable: a runner rejecting an event aborts
// mid-fan-out — some runners saw the event, some did not — so no
// checkpoint may be offered.
func TestFeedErrorNotResumable(t *testing.T) {
	bad := []trace.Event{{Kind: trace.KindFree, ID: 99, Instr: 1}} // free of an unknown object
	_, cp, err := ReplayResumable(context.Background(), SliceSource(bad), []sim.Config{{Policy: core.Full{}}})
	if err == nil {
		t.Fatal("feeding an invalid event succeeded")
	}
	if cp != nil {
		t.Fatalf("mid-event abort offered a checkpoint at %d events", cp.Events())
	}
}

// TestResumeSourceTooShort: a reopened source that ends (or fails)
// before reaching the checkpoint cannot continue the run and must say
// so rather than finishing early with a silently truncated replay.
func TestResumeSourceTooShort(t *testing.T) {
	events := testEvents(t)
	boom := errors.New("boom")
	_, cp, _ := ReplayResumable(context.Background(), failAfter(events, 100, boom), testMatrix())
	if cp == nil {
		t.Fatal("no checkpoint")
	}
	if _, _, err := cp.Resume(context.Background(), SliceSource(events[:50])); err == nil {
		t.Fatal("resume from a 50-event source reached a 100-event checkpoint")
	}
	// A short source that fails before the checkpoint is not resumable
	// either: the new checkpoint would precede the old one.
	_, cp2, err := ReplayResumable(context.Background(), failAfter(events, 100, boom), testMatrix())
	if cp2 == nil {
		t.Fatalf("no checkpoint: %v", err)
	}
	if _, cp3, err := cp2.Resume(context.Background(), failAfter(events, 40, boom)); err == nil || cp3 != nil {
		t.Fatalf("source failing before the checkpoint: err %v, checkpoint %v", err, cp3)
	}
}

// TestReplayUnchangedByRefactor: Replay (the plain entry point) still
// returns the feed error labelled with the collector, per its
// documented contract, now that it shares the resumable core.
func TestReplayUnchangedByRefactor(t *testing.T) {
	bad := []trace.Event{{Kind: trace.KindFree, ID: 7, Instr: 1}}
	_, err := Replay(context.Background(), SliceSource(bad), []sim.Config{{Policy: core.Full{}}})
	if err == nil || !errors.Is(err, err) || err.Error() == "" {
		t.Fatalf("unexpected: %v", err)
	}
	if want := "Full: "; len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Fatalf("feed error %q lost its collector label", err)
	}
}
