// Package engine is the evaluation chassis: one generate/decode pass
// over a trace fanned out to N independent sim.Runners, plus a bounded
// worker pool that schedules workload jobs under context cancellation.
//
// The paper's entire evaluation is "one trace, many collectors"
// (§5–6): every workload replays under six policies plus the NoGC and
// Live baselines. Replay feeds each event exactly once to every
// runner, so the trace is produced once per workload regardless of
// collector count — and with a streaming Source (such as
// workload.Profile.GenerateTo or a trace.Reader) it never materializes
// in memory at all. RunJobs schedules those per-workload replays on a
// bounded pool with fail-fast cancellation and deterministic result
// assembly; every future scaling layer (policy sweeps, sharded runs,
// learned-policy search) plugs into the same two primitives.
package engine

import (
	"context"
	"io"

	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// Source streams one trace in event order: it calls emit for every
// event and stops at the first emit error, which it returns unchanged
// (wrapped errors keep working with errors.Is).
// workload.Profile.GenerateTo satisfies this signature directly.
type Source func(emit func(trace.Event) error) error

// SliceSource adapts an in-memory trace to a Source.
func SliceSource(events []trace.Event) Source {
	return func(emit func(trace.Event) error) error {
		for _, e := range events {
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	}
}

// EventReader is the pull-style decoder shape: Read returns the next
// event or io.EOF at a clean end. Both trace.Reader and
// trace.RecoveringReader satisfy it.
type EventReader interface {
	Read() (trace.Event, error)
}

// EventReaderSource adapts any pull-style decoder to a Source: events
// decode one at a time, so memory use is bounded by the simulated
// heaps, not the trace length.
func EventReaderSource(rd EventReader) Source {
	return func(emit func(trace.Event) error) error {
		for {
			e, err := rd.Read()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := emit(e); err != nil {
				return err
			}
		}
	}
}

// ReaderSource adapts the strict trace decoder to a Source.
func ReaderSource(rd *trace.Reader) Source {
	return EventReaderSource(rd)
}

// cancelCheckEvery is the number of events between context checks on
// the replay hot path: coarse enough to cost nothing per event, fine
// enough that cancellation lands within a sliver of a run.
const cancelCheckEvery = 4096

// Replay feeds the source's events once to one fresh runner per config
// and returns the finished results in config order. The source runs
// exactly once no matter how many configs there are — the single-pass
// fan-out the evaluation harness is built on.
//
// Each runner is single-threaded and sees the identical event sequence
// a solo run would, so every result (History and telemetry sequence
// included) is bit-identical to an independent run over the same
// trace. A runner's feed error aborts the replay labelled with that
// collector's name; a source error aborts it unchanged; cancellation
// of ctx is detected between events and returns ctx's error.
func Replay(ctx context.Context, src Source, cfgs []sim.Config) ([]*sim.Result, error) {
	// Config validation happens before constructing any runner (see
	// ReplayResumable): construction emits the probe's RunStart, so a
	// bad config halfway through the set would otherwise leave the
	// earlier runners' telemetry streams opened but never finished.
	results, _, err := ReplayResumable(ctx, src, cfgs)
	if err != nil {
		return nil, err
	}
	return results, nil
}
