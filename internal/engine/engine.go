// Package engine is the evaluation chassis: one generate/decode pass
// over a trace fanned out to N independent sim.Runners, plus a bounded
// worker pool that schedules workload jobs under context cancellation.
//
// The paper's entire evaluation is "one trace, many collectors"
// (§5–6): every workload replays under six policies plus the NoGC and
// Live baselines. Replay feeds each event exactly once to every
// runner, so the trace is produced once per workload regardless of
// collector count — and with a streaming Source (such as
// workload.Profile.GenerateTo or a trace.Reader) it never materializes
// in memory at all. RunJobs schedules those per-workload replays on a
// bounded pool with fail-fast cancellation and deterministic result
// assembly; every future scaling layer (policy sweeps, sharded runs,
// learned-policy search) plugs into the same two primitives.
package engine

import (
	"context"
	"io"

	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// Source streams one trace in event order: it calls emit for every
// event and stops at the first emit error, which it returns unchanged
// (wrapped errors keep working with errors.Is).
// workload.Profile.GenerateTo satisfies this signature directly.
type Source func(emit func(trace.Event) error) error

// SliceSource adapts an in-memory trace to a Source.
func SliceSource(events []trace.Event) Source {
	return func(emit func(trace.Event) error) error {
		for _, e := range events {
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	}
}

// EventReader is the pull-style decoder shape: Read returns the next
// event or io.EOF at a clean end. Both trace.Reader and
// trace.RecoveringReader satisfy it.
type EventReader interface {
	Read() (trace.Event, error)
}

// EventReaderSource adapts any pull-style decoder to a Source: events
// decode one at a time, so memory use is bounded by the simulated
// heaps, not the trace length.
func EventReaderSource(rd EventReader) Source {
	return func(emit func(trace.Event) error) error {
		for {
			e, err := rd.Read()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := emit(e); err != nil {
				return err
			}
		}
	}
}

// ReaderSource adapts the strict trace decoder to a Source.
func ReaderSource(rd *trace.Reader) Source {
	return EventReaderSource(rd)
}

// replayBatchEvents is the batch granularity of the replay hot path:
// the number of events decoded, delivered to the fleet, and covered by
// one cancellation check. Large enough to amortize the per-batch costs
// (context check, fleet dispatch) to nothing per event, small enough
// that cancellation still lands within a sliver of a run and a pending
// batch stays cache-resident (~4096 × 32-byte resolved events = two
// L2 pages).
const replayBatchEvents = 4096

// cancelCheckEvery preserves the pre-batching name for the
// cancellation granularity: ctx is checked once per batch.
const cancelCheckEvery = replayBatchEvents

// BatchSource streams one trace as event batches in trace order: it
// calls emit for each batch and stops at the first emit error, which
// it returns unchanged (wrapped errors keep working with errors.Is).
// Batches are delivery units only — checkpoints remain event-granular
// (see Checkpoint) — and the slice passed to emit is only valid for
// the duration of the call.
//
// A BatchSource that fails mid-stream must emit the events it decoded
// before the failure first (see BatchingSource): replay checkpoints
// assume every decoded event before the error reached the runners.
type BatchSource func(emit func([]trace.Event) error) error

// SliceBatchSource adapts an in-memory trace to a BatchSource,
// emitting zero-copy subslices of at most replayBatchEvents events.
func SliceBatchSource(events []trace.Event) BatchSource {
	return func(emit func([]trace.Event) error) error {
		for len(events) > 0 {
			n := min(replayBatchEvents, len(events))
			if err := emit(events[:n]); err != nil {
				return err
			}
			events = events[n:]
		}
		return nil
	}
}

// ReaderBatchSource adapts the strict trace decoder to a BatchSource
// using Reader.ReadBatch: one decode loop fills a reused buffer per
// batch, so the per-event decoder call overhead is paid once per
// batch, not once per runner feed.
func ReaderBatchSource(rd *trace.Reader) BatchSource {
	return func(emit func([]trace.Event) error) error {
		buf := make([]trace.Event, replayBatchEvents)
		for {
			n, err := rd.ReadBatch(buf)
			if n > 0 {
				if eerr := emit(buf[:n]); eerr != nil {
					return eerr
				}
			}
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
		}
	}
}

// BatchingSource adapts a per-event Source to a BatchSource by
// buffering up to replayBatchEvents events per emit. If the underlying
// source fails mid-stream, the buffered prefix is flushed before the
// error is returned, so every event the source produced has reached
// the runners — exactly the per-event source's behavior, which is what
// keeps checkpoints event-granular under batching. If both the flush
// and the source fail, the flush error wins (it decides resumability).
func BatchingSource(src Source) BatchSource {
	return func(emit func([]trace.Event) error) error {
		buf := make([]trace.Event, 0, replayBatchEvents)
		err := src(func(e trace.Event) error {
			buf = append(buf, e)
			if len(buf) == cap(buf) {
				ferr := emit(buf)
				buf = buf[:0]
				return ferr
			}
			return nil
		})
		if len(buf) > 0 {
			if ferr := emit(buf); ferr != nil {
				return ferr
			}
		}
		return err
	}
}

// Replay feeds the source's events once to one fresh runner per config
// and returns the finished results in config order. The source runs
// exactly once no matter how many configs there are — the single-pass
// fan-out the evaluation harness is built on.
//
// Each runner is single-threaded and sees the identical event sequence
// a solo run would, so every result (History and telemetry sequence
// included) is bit-identical to an independent run over the same
// trace. A runner's feed error aborts the replay labelled with that
// collector's name; a source error aborts it unchanged; cancellation
// of ctx is detected between events and returns ctx's error.
func Replay(ctx context.Context, src Source, cfgs []sim.Config) ([]*sim.Result, error) {
	// Config validation happens before constructing any runner (see
	// ReplayBatchesResumable): construction emits the probe's RunStart,
	// so a bad config halfway through the set would otherwise leave the
	// earlier runners' telemetry streams opened but never finished.
	results, _, err := ReplayResumable(ctx, src, cfgs)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ReplayBatches is Replay over a batch-native source: the replay hot
// path runs on batches end to end, with no per-event adapter between
// the decoder and the fleet. Replay itself reduces to this via
// BatchingSource.
func ReplayBatches(ctx context.Context, src BatchSource, cfgs []sim.Config) ([]*sim.Result, error) {
	results, _, err := ReplayBatchesResumable(ctx, src, cfgs)
	if err != nil {
		return nil, err
	}
	return results, nil
}
