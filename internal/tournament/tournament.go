// Package tournament runs the policy tournament: every registered
// boundary policy — the paper's Table-1 roster plus the adaptive
// (learned) policies — round-robin over the paper workload corpus and
// a sweep of trace seeds, ranked by a composite memory/CPU cost with
// paired significance testing.
//
// The experimental design is fully paired: for one (workload, seed)
// cell every policy replays the SAME generated trace through one
// engine fleet, so per-cell cost differences between two policies are
// differences in policy behaviour alone. Significance is therefore
// assessed with paired tests from internal/stats — sign-flip
// permutation p-values, Benjamini–Hochberg control across the pairwise
// family, and percentile bootstrap intervals on the mean difference —
// all seeded and deterministic, so a tournament report reproduces
// bit-for-bit.
package tournament

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/stats"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// DefaultRoster returns the standard tournament entrants: the six
// Table-1 policies, extra fixed-k rungs for context, and the adaptive
// policies in both bandit modes plus the gradient controller. Specs
// are registry spellings, so the roster round-trips through
// core.ParsePolicy.
func DefaultRoster() []string {
	return []string{
		"full",
		"fixed1",
		"fixed2",
		"fixed4",
		"fixed8",
		"feedmed:50k",
		"dtbfm:50k",
		"dtbmem:3000k",
		"bandit:eps=0.1",
		"bandit:eps=0.25,arms=12",
		"bandit:ucb=1.5",
		"grad",
		"grad:rate=0.2",
	}
}

// SweepSeeds returns n deterministic sweep seeds. Eight is the
// floor for claiming p < 0.05 from an exhaustive paired permutation
// test (2/2^8 ≈ 0.008); fewer seeds cannot reach significance no
// matter how consistent the data (see stats.PairedPermutationPValue).
func SweepSeeds(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = splitmix(uint64(i) + 0x7051)
	}
	return out
}

// splitmix is the splitmix64 finalizer, used to decorrelate small
// integer seeds.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Options parameterizes one tournament.
type Options struct {
	// Policies are registry specs (core.ParsePolicy). Nil means
	// DefaultRoster().
	Policies []string
	// Workloads is the trace corpus. Nil means the six paper profiles.
	Workloads []workload.Profile
	// Seeds is the sweep: each seed perturbs the workload generator AND
	// seeds the adaptive policies, giving one paired cell per
	// (workload, seed). Nil means SweepSeeds(8).
	Seeds []uint64
	// Scale shrinks the workloads; zero means 0.05 (tournament scale:
	// large enough for dozens of collections per run, small enough to
	// sweep 6 workloads × 8 seeds × 13 policies in seconds).
	Scale float64
	// TriggerBytes is the scavenge interval; zero means 256 KB (scaled
	// runs need a proportionally smaller interval than the paper's 1 MB
	// to keep per-run collection counts meaningful).
	TriggerBytes uint64
	// Alpha is the significance level for "significant" annotations and
	// adaptive-win claims; zero means 0.05.
	Alpha float64
	// Conf is the bootstrap confidence level; zero means 0.95.
	Conf float64
	// Workers bounds concurrent fleet replays; zero means GOMAXPROCS.
	// Concurrency never changes results: each cell is an independent
	// deterministic replay written to its own slot.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Policies == nil {
		o.Policies = DefaultRoster()
	}
	if o.Workloads == nil {
		o.Workloads = workload.PaperProfiles()
	}
	if o.Seeds == nil {
		o.Seeds = SweepSeeds(8)
	}
	if o.Scale == 0 { //dtbvet:ignore floatexact -- exact zero is the unset-option sentinel; no arithmetic feeds it
		o.Scale = 0.05
	}
	if o.TriggerBytes == 0 {
		o.TriggerBytes = 256 * 1024
	}
	if o.Alpha == 0 { //dtbvet:ignore floatexact -- unset-option sentinel
		o.Alpha = 0.05
	}
	if o.Conf == 0 { //dtbvet:ignore floatexact -- unset-option sentinel
		o.Conf = 0.95
	}
	return o
}

// Cell is one paired measurement: every policy's cost over one
// (workload, seed) trace. Slices are in roster order.
type Cell struct {
	Workload string    `json:"workload"`
	Seed     uint64    `json:"seed"`
	Cost     []float64 `json:"cost"`
	MemRatio []float64 `json:"mem_ratio"`
	Overhead []float64 `json:"overhead_pct"`
}

// Standing is one leaderboard row.
type Standing struct {
	Rank            int     `json:"rank"`
	Spec            string  `json:"spec"`
	Name            string  `json:"name"`
	Adaptive        bool    `json:"adaptive"`
	MeanCost        float64 `json:"mean_cost"`
	MeanMemRatio    float64 `json:"mean_mem_ratio"`
	MeanOverheadPct float64 `json:"mean_overhead_pct"`
}

// Comparison is one pairwise paired test over every cell, reported
// with the better-ranked policy first (MeanDiff <= 0).
type Comparison struct {
	Better      string  `json:"better"`
	Worse       string  `json:"worse"`
	MeanDiff    float64 `json:"mean_diff"`
	CILo        float64 `json:"ci_lo"`
	CIHi        float64 `json:"ci_hi"`
	P           float64 `json:"p"`
	Q           float64 `json:"q"` // Benjamini–Hochberg adjusted
	Significant bool    `json:"significant"`
}

// AdaptiveWin records a workload where one adaptive policy beat every
// pure (stock) policy in the roster with per-pair significance: the
// paper-refresh claim the tournament exists to test.
type AdaptiveWin struct {
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	MaxP     float64 `json:"max_p"` // worst pairwise p-value among the stock comparisons
}

// Result is a complete tournament report.
type Result struct {
	Specs        []string      `json:"specs"`
	Names        []string      `json:"names"`
	Adaptive     []bool        `json:"adaptive"`
	Workloads    []string      `json:"workloads"`
	Seeds        []uint64      `json:"seeds"`
	Scale        float64       `json:"scale"`
	TriggerBytes uint64        `json:"trigger_bytes"`
	Alpha        float64       `json:"alpha"`
	Conf         float64       `json:"conf"`
	Cells        []Cell        `json:"cells"`
	Standings    []Standing    `json:"standings"`
	Comparisons  []Comparison  `json:"comparisons"`
	AdaptiveWins []AdaptiveWin `json:"adaptive_wins"`
}

// cost is the composite objective a policy is ranked by, from one
// run's result: excess memory (mean bytes in use over mean live
// bytes, minus the unavoidable 1) plus the CPU overhead fraction.
// Both terms are dimensionless fractions of the same order, so
// neither axis of the paper's memory/CPU tradeoff dominates: FULL
// pays on the right term, FIXED(1) on the left, and the dynamic
// policies win by balancing them.
func cost(r *sim.Result) (total, memRatio float64) {
	memRatio = r.MemMeanBytes / math.Max(r.LiveMeanBytes, 1)
	return (memRatio - 1) + r.OverheadPct/100, memRatio
}

// Run executes the full tournament and assembles the report.
func Run(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(opts.Policies) < 2 {
		return nil, fmt.Errorf("tournament: need at least 2 policies, have %d", len(opts.Policies))
	}
	if len(opts.Seeds) == 0 || len(opts.Workloads) == 0 {
		return nil, fmt.Errorf("tournament: empty seed sweep or workload corpus")
	}
	res := &Result{
		Specs:        opts.Policies,
		Scale:        opts.Scale,
		TriggerBytes: opts.TriggerBytes,
		Alpha:        opts.Alpha,
		Conf:         opts.Conf,
		Seeds:        opts.Seeds,
	}
	policies := make([]core.Policy, len(opts.Policies))
	for i, spec := range opts.Policies {
		p, err := core.ParsePolicy(spec)
		if err != nil {
			return nil, fmt.Errorf("tournament: roster entry %d: %w", i, err)
		}
		policies[i] = p
		res.Names = append(res.Names, p.Name())
		_, adaptive := p.(core.AdaptivePolicy)
		res.Adaptive = append(res.Adaptive, adaptive)
	}
	for _, w := range opts.Workloads {
		res.Workloads = append(res.Workloads, w.Name)
	}

	// One job per (workload, seed) cell: generate the perturbed trace
	// and fan it out to every policy through one fleet.
	res.Cells = make([]Cell, len(opts.Workloads)*len(opts.Seeds))
	jobs := make([]engine.Job, 0, len(res.Cells))
	for wi, prof := range opts.Workloads {
		for si, seed := range opts.Seeds {
			prof := prof.Scale(opts.Scale)
			prof.Seed ^= splitmix(seed)
			jobs = append(jobs, func(ctx context.Context) error {
				cfgs := make([]sim.Config, len(policies))
				for pi, p := range policies {
					cfgs[pi] = sim.Config{
						Mode: sim.ModePolicy, Policy: p,
						TriggerBytes: opts.TriggerBytes,
						Label:        fmt.Sprintf("%s/s%d/%s", prof.Name, si, p.Name()),
						PolicySeed:   seed,
					}
				}
				runs, err := engine.Replay(ctx, engine.Source(prof.GenerateTo), cfgs)
				if err != nil {
					return fmt.Errorf("tournament: %s seed %#x: %w", prof.Name, seed, err)
				}
				cell := Cell{Workload: prof.Name, Seed: seed}
				for _, r := range runs {
					c, mr := cost(r)
					cell.Cost = append(cell.Cost, c)
					cell.MemRatio = append(cell.MemRatio, mr)
					cell.Overhead = append(cell.Overhead, r.OverheadPct)
				}
				res.Cells[wi*len(opts.Seeds)+si] = cell
				return nil
			})
		}
	}
	if err := engine.RunJobs(ctx, opts.Workers, jobs); err != nil {
		return nil, err
	}

	res.Standings = standings(res, res.Cells)
	res.Comparisons = comparisons(res, opts)
	res.AdaptiveWins = adaptiveWins(res, opts)
	return res, nil
}

// costColumn extracts policy pi's cost across cells, cell order.
func costColumn(cells []Cell, pi int) []float64 {
	out := make([]float64, len(cells))
	for i, c := range cells {
		out[i] = c.Cost[pi]
	}
	return out
}

// standings ranks the roster by mean cost over the given cells.
func standings(res *Result, cells []Cell) []Standing {
	out := make([]Standing, len(res.Specs))
	n := float64(len(cells))
	for pi := range res.Specs {
		s := Standing{Spec: res.Specs[pi], Name: res.Names[pi], Adaptive: res.Adaptive[pi]}
		for _, c := range cells {
			s.MeanCost += c.Cost[pi] / n
			s.MeanMemRatio += c.MemRatio[pi] / n
			s.MeanOverheadPct += c.Overhead[pi] / n
		}
		out[pi] = s
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].MeanCost < out[b].MeanCost })
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// comparisons runs every pairwise paired test over the full cell set
// and BH-adjusts the family.
func comparisons(res *Result, opts Options) []Comparison {
	var ps []float64
	var out []Comparison
	for a := 0; a < len(res.Specs); a++ {
		for b := a + 1; b < len(res.Specs); b++ {
			x, y := costColumn(res.Cells, a), costColumn(res.Cells, b)
			// Orient so Better is the lower-mean policy.
			var mean float64
			for i := range x {
				mean += (x[i] - y[i]) / float64(len(x))
			}
			ai, bi := a, b
			if mean > 0 {
				ai, bi = b, a
				x, y = y, x
				mean = -mean
			}
			// The permutation seed is derived from the pair so reruns
			// reproduce exactly; exhaustive when few cells.
			p := stats.PairedPermutationPValue(x, y, 0, splitmix(uint64(ai)<<16|uint64(bi)))
			lo, hi := stats.PairedBootstrapCI(x, y, opts.Conf, 0, splitmix(uint64(bi)<<16|uint64(ai)))
			ps = append(ps, p)
			out = append(out, Comparison{
				Better: res.Names[ai], Worse: res.Names[bi],
				MeanDiff: mean, CILo: lo, CIHi: hi, P: p,
			})
		}
	}
	qs := stats.BenjaminiHochberg(ps)
	for i := range out {
		out[i].Q = qs[i]
		out[i].Significant = qs[i] <= opts.Alpha
	}
	// Most-decisive first; ties broken by the pair for determinism.
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Q != out[b].Q { //dtbvet:ignore floatexact -- sort tiebreak, not an equality decision; equal bits fall through to the name tiebreak
			return out[a].Q < out[b].Q
		}
		if out[a].Better != out[b].Better {
			return out[a].Better < out[b].Better
		}
		return out[a].Worse < out[b].Worse
	})
	return out
}

// adaptiveWins finds, per workload, adaptive policies whose cost beats
// EVERY pure policy in the roster across the seed sweep with per-pair
// p below alpha. The per-workload sample is the seed sweep alone (one
// pair per seed), so the claim needs enough seeds — see SweepSeeds.
func adaptiveWins(res *Result, opts Options) []AdaptiveWin {
	var wins []AdaptiveWin
	for wi, wname := range res.Workloads {
		cells := res.Cells[wi*len(opts.Seeds) : (wi+1)*len(opts.Seeds)]
		for ai := range res.Specs {
			if !res.Adaptive[ai] {
				continue
			}
			maxP, beatsAll := 0.0, true
			for si := range res.Specs {
				if res.Adaptive[si] {
					continue
				}
				x, y := costColumn(cells, ai), costColumn(cells, si)
				var mean float64
				for i := range x {
					mean += (x[i] - y[i]) / float64(len(x))
				}
				if mean >= 0 {
					beatsAll = false
					break
				}
				p := stats.PairedPermutationPValue(x, y, 0, splitmix(uint64(wi)<<32|uint64(ai)<<16|uint64(si)))
				if p > maxP {
					maxP = p
				}
			}
			if beatsAll && maxP < opts.Alpha {
				wins = append(wins, AdaptiveWin{Workload: wname, Policy: res.Names[ai], MaxP: maxP})
			}
		}
	}
	return wins
}

// SplitHalfStable re-ranks the tournament on the two halves of the
// seed sweep and reports whether both halves crown the same leader —
// a cheap overfitting canary for CI: a ranking that flips when half
// the data is withheld is noise, not signal. Needs at least 2 seeds.
func (r *Result) SplitHalfStable() (bool, string, string) {
	half := len(r.Seeds) / 2
	if half == 0 {
		return true, "", ""
	}
	inHalf := func(second bool) []Cell {
		var out []Cell
		for wi := range r.Workloads {
			cells := r.Cells[wi*len(r.Seeds) : (wi+1)*len(r.Seeds)]
			if second {
				out = append(out, cells[half:]...)
			} else {
				out = append(out, cells[:half]...)
			}
		}
		return out
	}
	a := standings(r, inHalf(false))
	b := standings(r, inHalf(true))
	return a[0].Name == b[0].Name, a[0].Name, b[0].Name
}
