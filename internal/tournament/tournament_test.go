package tournament

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// tinyOptions is a fast tournament: 4 policies (2 stock, 2 adaptive),
// 2 workloads, 4 seeds, small scale.
func tinyOptions() Options {
	return Options{
		Policies:  []string{"full", "dtbfm:50k", "bandit:eps=0.2", "grad"},
		Workloads: []workload.Profile{mustProfile("ghost1"), mustProfile("espresso1")},
		Seeds:     SweepSeeds(4),
		Scale:     0.02,
	}
}

func mustProfile(name string) workload.Profile {
	p, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

func TestDefaultRosterParsesAndIsBigEnough(t *testing.T) {
	roster := DefaultRoster()
	if len(roster) < 12 {
		t.Fatalf("roster has %d entries, want >= 12", len(roster))
	}
	adaptive := 0
	for _, spec := range roster {
		p, err := core.ParsePolicy(spec)
		if err != nil {
			t.Errorf("roster spec %q does not parse: %v", spec, err)
			continue
		}
		if _, ok := p.(core.AdaptivePolicy); ok {
			adaptive++
		}
	}
	if adaptive < 3 {
		t.Errorf("roster has %d adaptive entrants, want >= 3", adaptive)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical tournaments produced different reports")
	}
	// Concurrency must not leak into results either.
	opts := tinyOptions()
	opts.Workers = 1
	c, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("workers=1 tournament differs from default-concurrency run")
	}
}

func TestRunShape(t *testing.T) {
	opts := tinyOptions()
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	nPol, nCells := len(opts.Policies), len(opts.Workloads)*len(opts.Seeds)
	if len(res.Cells) != nCells {
		t.Fatalf("cells = %d, want %d", len(res.Cells), nCells)
	}
	for i, c := range res.Cells {
		if len(c.Cost) != nPol || len(c.MemRatio) != nPol || len(c.Overhead) != nPol {
			t.Fatalf("cell %d: ragged columns (%d/%d/%d policies, want %d)", i, len(c.Cost), len(c.MemRatio), len(c.Overhead), nPol)
		}
		if c.Workload == "" {
			t.Fatalf("cell %d: empty workload name", i)
		}
		for pi, cost := range c.Cost {
			if !(cost >= -1e-9) {
				t.Errorf("cell %d policy %s: cost %v, want >= 0 (mem ratio >= 1 and overhead >= 0)", i, res.Names[pi], cost)
			}
		}
	}
	if len(res.Standings) != nPol {
		t.Fatalf("standings = %d rows, want %d", len(res.Standings), nPol)
	}
	for i, s := range res.Standings {
		if s.Rank != i+1 {
			t.Errorf("standing %d has rank %d", i, s.Rank)
		}
		if i > 0 && s.MeanCost < res.Standings[i-1].MeanCost {
			t.Errorf("standings not sorted: rank %d cost %v < rank %d cost %v", s.Rank, s.MeanCost, i, res.Standings[i-1].MeanCost)
		}
	}
	if want := nPol * (nPol - 1) / 2; len(res.Comparisons) != want {
		t.Fatalf("comparisons = %d, want %d", len(res.Comparisons), want)
	}
	for _, c := range res.Comparisons {
		if c.MeanDiff > 0 {
			t.Errorf("%s vs %s: MeanDiff %v > 0; Better must be the lower-cost policy", c.Better, c.Worse, c.MeanDiff)
		}
		if c.Significant != (c.Q <= res.Alpha) {
			t.Errorf("%s vs %s: Significant=%v disagrees with q=%v alpha=%v", c.Better, c.Worse, c.Significant, c.Q, res.Alpha)
		}
		if c.Q < c.P {
			t.Errorf("%s vs %s: q=%v below p=%v; BH never decreases a p-value", c.Better, c.Worse, c.Q, c.P)
		}
		if c.CILo > c.CIHi {
			t.Errorf("%s vs %s: inverted CI [%v, %v]", c.Better, c.Worse, c.CILo, c.CIHi)
		}
	}
	wantAdaptive := map[string]bool{"full": false, "dtbfm:50k": false, "bandit:eps=0.2": true, "grad": true}
	for i, spec := range res.Specs {
		if res.Adaptive[i] != wantAdaptive[spec] {
			t.Errorf("spec %q flagged adaptive=%v", spec, res.Adaptive[i])
		}
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	bad := tinyOptions()
	bad.Policies = []string{"full", "no-such-policy"}
	if _, err := Run(ctx, bad); err == nil || !strings.Contains(err.Error(), "roster entry 1") {
		t.Errorf("bad spec: err = %v", err)
	}
	one := tinyOptions()
	one.Policies = []string{"full"}
	if _, err := Run(ctx, one); err == nil || !strings.Contains(err.Error(), "at least 2") {
		t.Errorf("single policy: err = %v", err)
	}
	empty := tinyOptions()
	empty.Seeds = []uint64{}
	if _, err := Run(ctx, empty); err == nil {
		t.Error("explicit empty seed sweep accepted")
	}
}

func TestSweepSeedsDistinctAndStable(t *testing.T) {
	a, b := SweepSeeds(8), SweepSeeds(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SweepSeeds not deterministic")
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate sweep seed %#x", s)
		}
		seen[s] = true
	}
	if !reflect.DeepEqual(SweepSeeds(4), a[:4]) {
		t.Error("SweepSeeds(4) is not a prefix of SweepSeeds(8): split-half CI runs would diverge from full runs")
	}
}

func TestSplitHalfStable(t *testing.T) {
	res, err := Run(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	ok1, a1, b1 := res.SplitHalfStable()
	ok2, a2, b2 := res.SplitHalfStable()
	if ok1 != ok2 || a1 != a2 || b1 != b2 {
		t.Fatal("SplitHalfStable not deterministic")
	}
	if ok1 != (a1 == b1) {
		t.Errorf("stability verdict %v disagrees with leaders %q vs %q", ok1, a1, b1)
	}
}

func TestWriteMarkdown(t *testing.T) {
	res, err := Run(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	md := sb.String()
	for _, want := range []string{"# DTB policy tournament", "## Leaderboard", "## Adaptive wins", "## Pairwise comparisons"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	for _, name := range res.Names {
		if !strings.Contains(md, name) {
			t.Errorf("markdown missing policy %q", name)
		}
	}
	var sb2 strings.Builder
	if err := res.WriteMarkdown(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != md {
		t.Error("markdown rendering not deterministic")
	}
}

// TestAdaptiveBeatsStock is the PR's acceptance criterion: over the
// full default tournament, at least one adaptive policy must beat
// every stock policy on at least one workload with pairwise p < 0.05.
func TestAdaptiveBeatsStock(t *testing.T) {
	if testing.Short() {
		t.Skip("full tournament (skipped in -short)")
	}
	res, err := Run(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AdaptiveWins) == 0 {
		t.Fatal("no adaptive policy beat every stock policy on any workload at p < 0.05")
	}
	for _, w := range res.AdaptiveWins {
		if w.MaxP >= res.Alpha {
			t.Errorf("win on %s by %s recorded with max p %v >= alpha %v", w.Workload, w.Policy, w.MaxP, res.Alpha)
		}
		t.Logf("adaptive win: %s beats all stock policies on %s (max p %.4g)", w.Policy, w.Workload, w.MaxP)
	}
}
