package tournament

import (
	"fmt"
	"io"
	"strings"
)

// WriteMarkdown renders the tournament report as a GitHub-flavored
// markdown document: the leaderboard, the significant pairwise
// comparisons, and the adaptive-win claims. Output is deterministic
// for a deterministic Result.
func (r *Result) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# DTB policy tournament\n\n")
	fmt.Fprintf(&b, "%d policies × %d workloads × %d seeds (scale %g, trigger %d bytes). ",
		len(r.Specs), len(r.Workloads), len(r.Seeds), r.Scale, r.TriggerBytes)
	fmt.Fprintf(&b, "Cost = (mean memory ⁄ mean live − 1) + GC overhead fraction; lower is better. ")
	fmt.Fprintf(&b, "Pairwise tests are paired sign-flip permutations over all %d cells, Benjamini–Hochberg adjusted; significance at q ≤ %g.\n\n", len(r.Cells), r.Alpha)

	fmt.Fprintf(&b, "## Leaderboard\n\n")
	fmt.Fprintf(&b, "| Rank | Policy | Spec | Kind | Mean cost | Mem/live | Overhead %% |\n")
	fmt.Fprintf(&b, "|-----:|--------|------|------|----------:|---------:|-----------:|\n")
	for _, s := range r.Standings {
		kind := "stock"
		if s.Adaptive {
			kind = "adaptive"
		}
		fmt.Fprintf(&b, "| %d | %s | `%s` | %s | %.4f | %.3f | %.2f |\n",
			s.Rank, s.Name, s.Spec, kind, s.MeanCost, s.MeanMemRatio, s.MeanOverheadPct)
	}

	fmt.Fprintf(&b, "\n## Adaptive wins\n\n")
	if len(r.AdaptiveWins) == 0 {
		fmt.Fprintf(&b, "No adaptive policy beat every stock policy on any workload at α = %g.\n", r.Alpha)
	} else {
		fmt.Fprintf(&b, "Workloads where an adaptive policy beat **every** stock policy in the roster, with the worst pairwise p-value across those comparisons:\n\n")
		fmt.Fprintf(&b, "| Workload | Policy | max p |\n|----------|--------|------:|\n")
		for _, win := range r.AdaptiveWins {
			fmt.Fprintf(&b, "| %s | %s | %.4g |\n", win.Workload, win.Policy, win.MaxP)
		}
	}

	fmt.Fprintf(&b, "\n## Pairwise comparisons\n\n")
	sig := 0
	for _, c := range r.Comparisons {
		if c.Significant {
			sig++
		}
	}
	fmt.Fprintf(&b, "%d of %d pairs significant after FDR control. Top comparisons:\n\n", sig, len(r.Comparisons))
	fmt.Fprintf(&b, "| Better | Worse | Δ cost | %d%% CI | p | q |\n", int(100*r.Conf))
	fmt.Fprintf(&b, "|--------|-------|-------:|--------|--:|--:|\n")
	max := len(r.Comparisons)
	if max > 20 {
		max = 20
	}
	for _, c := range r.Comparisons[:max] {
		mark := ""
		if c.Significant {
			mark = " ✓"
		}
		fmt.Fprintf(&b, "| %s | %s | %+.4f | [%+.4f, %+.4f] | %.4g | %.4g%s |\n",
			c.Better, c.Worse, c.MeanDiff, c.CILo, c.CIHi, c.P, c.Q, mark)
	}
	if len(r.Comparisons) > max {
		fmt.Fprintf(&b, "\n… and %d more pairs (see the JSON report).\n", len(r.Comparisons)-max)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
