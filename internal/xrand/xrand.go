// Package xrand provides small, deterministic pseudo-random number
// generators and distributions for the workload generators and tests.
//
// The simulator's experiments must be reproducible bit-for-bit across
// runs and Go releases, so this package implements its own generators
// (splitmix64 and xoshiro256**) rather than depending on math/rand,
// whose stream for a given seed is not guaranteed across versions.
package xrand

import (
	"errors"
	"math"
)

// splitmix64 advances a 64-bit state and returns the next output.
// It is used both as a standalone generator for seeding and as the
// state initializer for Rand.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator.
// The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via splitmix64,
// following the xoshiro authors' recommended seeding procedure.
func New(seed uint64) *Rand {
	r := &Rand{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// A pathological all-zero state would produce only zeros; splitmix64
	// cannot generate four zero outputs in a row, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// State returns the generator's internal state, for checkpointing a
// deterministic computation mid-stream. Restore the exact sequence
// position with SetState.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState replaces the generator's internal state with one previously
// captured by State. The all-zero state is rejected: xoshiro256**
// would emit only zeros from it, and State can never return it (New
// guards against it at seeding).
func (r *Rand) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("xrand: SetState: all-zero state is not a valid xoshiro256** state")
	}
	r.s = s
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n called with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	// Inverse-CDF sampling; Float64 never returns 1.0, so the argument
	// to Log is always positive.
	return -math.Log(1 - r.Float64())
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 { return mean * r.ExpFloat64() }

// NormFloat64 returns a standard normal value (Box-Muller; one value
// per call, the pair's second member is discarded for simplicity and
// determinism of the consumed stream length).
func (r *Rand) NormFloat64() float64 {
	u := 1 - r.Float64() // in (0, 1]
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// LogNormal returns exp(N(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a Pareto(xm, alpha) distributed value (heavy tail).
// It panics if xm <= 0 or alpha <= 0.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("xrand: Pareto requires positive parameters")
	}
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// Range returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *Rand) Range(lo, hi int) int {
	if hi < lo {
		panic("xrand: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Split returns a new generator whose stream is independent of r's
// subsequent outputs, for deterministic parallel substreams.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }
