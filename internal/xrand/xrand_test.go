package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 generator produced %d zeros in 100 draws", zeros)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nBounds(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(40)
	}
	mean := sum / n
	if math.Abs(mean-40) > 1 {
		t.Fatalf("Exp(40) mean = %v, want ~40", mean)
	}
}

func TestExpNonNegative(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.ExpFloat64(); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("ExpFloat64 invalid value %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(19)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(3, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(16, 1.5); v < 16 {
			t.Fatalf("Pareto(16, 1.5) below xm: %v", v)
		}
	}
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0, 1) did not panic")
		}
	}()
	New(1).Pareto(0, 1)
}

func TestRangeInclusive(t *testing.T) {
	r := New(31)
	sawLo, sawHi := false, false
	for i := 0; i < 5000; i++ {
		v := r.Range(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("Range(5,9) out of bounds: %d", v)
		}
		sawLo = sawLo || v == 5
		sawHi = sawHi || v == 9
	}
	if !sawLo || !sawHi {
		t.Fatal("Range(5,9) never produced an endpoint in 5000 draws")
	}
}

func TestRangeSingleton(t *testing.T) {
	r := New(37)
	for i := 0; i < 10; i++ {
		if v := r.Range(4, 4); v != 4 {
			t.Fatalf("Range(4,4) = %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	check := func(n uint8) bool {
		p := r.Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(43)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(99)
	child := a.Split()
	// The child's stream should not be a prefix/copy of the parent's.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream mirrors parent: %d/100 equal", same)
	}
}

func TestUint64Uniformity(t *testing.T) {
	// Chi-squared over the top 4 bits; loose bound, catches gross bias.
	r := New(47)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>60]++
	}
	expected := float64(n) / 16
	chi2 := 0.0
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 dof; 99.9th percentile ~ 37.7.
	if chi2 > 40 {
		t.Fatalf("chi-squared = %v, suggests biased generator", chi2)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(32)
	}
}
