package audit

import (
	"fmt"
	"math"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/stats"
)

// The differential oracle's comparison layer. Every comparison is
// bit-exact: the optimized and reference paths compute the same
// arithmetic in the same order, so their float64 results must agree to
// the last bit — an epsilon here would hide exactly the class of
// accounting drift the oracle exists to catch. Floats are compared via
// their IEEE-754 bit patterns so that even a NaN smuggled into a
// result is a visible difference rather than a self-unequal value the
// diff would miss.

// sameFloat reports bit-identity of two float64s (NaN == NaN, but
// +0 != -0: the paths must produce the same bits, not the same value).
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// DiffHistories returns one difference string per field where the two
// scavenge histories disagree, empty when they are identical. The
// histories are read, never retained.
func DiffHistories(got, want *core.History) []string {
	var out []string
	if len(got.Scavenges) != len(want.Scavenges) {
		out = append(out, fmt.Sprintf("history length: got %d scavenges, want %d",
			len(got.Scavenges), len(want.Scavenges)))
	}
	n := min(len(got.Scavenges), len(want.Scavenges))
	for i := 0; i < n; i++ {
		g, w := got.Scavenges[i], want.Scavenges[i]
		if g != w {
			out = append(out, fmt.Sprintf("scavenge %d: got %+v, want %+v", i+1, g, w))
		}
	}
	return out
}

// DiffResults returns one difference string per field where the two
// run results disagree, empty when they are identical. Comparison is
// field-by-field and bit-exact; the histories, pause lists, curves and
// the virtual-memory counters are all included.
func DiffResults(got, want *sim.Result) []string {
	var out []string
	diff := func(field string, g, w any) {
		out = append(out, fmt.Sprintf("%s: got %v, want %v", field, g, w))
	}
	if got.Collector != want.Collector {
		diff("Collector", got.Collector, want.Collector)
	}
	ffields := []struct {
		name string
		g, w float64
	}{
		{"MemMeanBytes", got.MemMeanBytes, want.MemMeanBytes},
		{"MemMaxBytes", got.MemMaxBytes, want.MemMaxBytes},
		{"LiveMeanBytes", got.LiveMeanBytes, want.LiveMeanBytes},
		{"LiveMaxBytes", got.LiveMaxBytes, want.LiveMaxBytes},
		{"OverheadPct", got.OverheadPct, want.OverheadPct},
		{"ExecSeconds", got.ExecSeconds, want.ExecSeconds},
	}
	for _, f := range ffields {
		if !sameFloat(f.g, f.w) {
			diff(f.name, f.g, f.w)
		}
	}
	if got.TracedTotalBytes != want.TracedTotalBytes {
		diff("TracedTotalBytes", got.TracedTotalBytes, want.TracedTotalBytes)
	}
	if got.Collections != want.Collections {
		diff("Collections", got.Collections, want.Collections)
	}
	if got.TotalAlloc != want.TotalAlloc {
		diff("TotalAlloc", got.TotalAlloc, want.TotalAlloc)
	}
	if got.PageFaults != want.PageFaults {
		diff("PageFaults", got.PageFaults, want.PageFaults)
	}
	if got.PageAccesses != want.PageAccesses {
		diff("PageAccesses", got.PageAccesses, want.PageAccesses)
	}
	if len(got.Pauses) != len(want.Pauses) {
		diff("len(Pauses)", len(got.Pauses), len(want.Pauses))
	} else {
		for i := range got.Pauses {
			if !sameFloat(got.Pauses[i], want.Pauses[i]) {
				diff(fmt.Sprintf("Pauses[%d]", i), got.Pauses[i], want.Pauses[i])
			}
		}
	}
	for _, d := range DiffHistories(&got.History, &want.History) {
		out = append(out, "History: "+d)
	}
	out = append(out, diffSeries("Curve", got.Curve, want.Curve)...)
	out = append(out, diffSeries("LiveCurve", got.LiveCurve, want.LiveCurve)...)
	return out
}

// diffSeries compares two optional sampled series point-by-point.
func diffSeries(name string, got, want *stats.Series) []string {
	switch {
	case got == nil && want == nil:
		return nil
	case got == nil || want == nil:
		return []string{fmt.Sprintf("%s: got %v, want %v (presence)", name, got != nil, want != nil)}
	}
	if len(got.Points) != len(want.Points) {
		return []string{fmt.Sprintf("%s: got %d points, want %d", name, len(got.Points), len(want.Points))}
	}
	var out []string
	for i := range got.Points {
		g, w := got.Points[i], want.Points[i]
		if !sameFloat(g.T, w.T) || !sameFloat(g.V, w.V) {
			out = append(out, fmt.Sprintf("%s[%d]: got (%v,%v), want (%v,%v)", name, i, g.T, g.V, w.T, w.V))
		}
	}
	return out
}

// DiffTelemetry compares two JSON-lines telemetry streams line by
// line. A deterministic run's stream is byte-for-byte reproducible, so
// any difference — a missing event, a reordered pair, a field that
// diverged — is reported with its line number.
func DiffTelemetry(got, want []string) []string {
	var out []string
	if len(got) != len(want) {
		out = append(out, fmt.Sprintf("telemetry length: got %d lines, want %d", len(got), len(want)))
	}
	n := min(len(got), len(want))
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			out = append(out, fmt.Sprintf("telemetry line %d: got %s, want %s", i+1, got[i], want[i]))
		}
	}
	return out
}
