package audit

import (
	"bytes"
	"context"
	"io"
	"testing"

	"github.com/dtbgc/dtbgc/internal/workload"
)

// testOptions shrinks the paper workloads to test scale while keeping
// enough collections per run for every check to bite.
func testOptions() Options {
	return Options{
		Scale:         0.02,
		TriggerBytes:  64 * kb,
		MemMaxBytes:   200 * kb,
		TraceMaxBytes: 8 * kb,
		ChunkSizes:    []int{777},
	}
}

func TestAuditWorkloadCleanOnPaperProfile(t *testing.T) {
	rep, err := AuditWorkload(context.Background(), workload.Cfrac(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("oracle found problems: %v", rep.Err())
	}
	if len(rep.Collectors) != 11 {
		t.Fatalf("audited %d collectors, want 11: %v", len(rep.Collectors), rep.Collectors)
	}
	// fast replay (11) + solo references (11) + one chunk size (11).
	if rep.Runs != 33 {
		t.Fatalf("executed %d runs, want 33", rep.Runs)
	}
	// The adaptive policies must be in the differential matrix: their
	// bit-identical replay across engine paths is an audited invariant,
	// not just a unit-test property.
	adaptive := 0
	for _, c := range rep.Collectors {
		if len(c) >= 4 && (c[:4] == "Band" || c[:4] == "Grad") {
			adaptive++
		}
	}
	if adaptive < 3 {
		t.Fatalf("only %d adaptive collectors in the audit matrix: %v", adaptive, rep.Collectors)
	}
}

func TestAuditWorkloadHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AuditWorkload(ctx, workload.Cfrac(), testOptions()); err == nil {
		t.Fatal("cancelled audit reported success")
	}
}

func TestReportErrSummarizes(t *testing.T) {
	rep := &Report{Workload: "W"}
	if rep.Err() != nil {
		t.Fatal("clean report returned an error")
	}
	rep.Violations = []Violation{{Label: "W/Full", N: 1, Rule: "mem-accounting", Detail: "off"}}
	rep.Diffs = []string{"W/Full: fast vs reference: Collections: got 1, want 2"}
	err := rep.Err()
	if err == nil {
		t.Fatal("dirty report returned nil")
	}
	for _, want := range []string{"1 violation(s)", "1 diff(s)", "mem-accounting"} {
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("Err() = %q, missing %q", err, want)
		}
	}
}

func TestChunkedReaderCapsReads(t *testing.T) {
	cr := &chunkedReader{r: bytes.NewReader(make([]byte, 100)), n: 7}
	buf := make([]byte, 64)
	total := 0
	for {
		n, err := cr.Read(buf)
		if n > 7 {
			t.Fatalf("read %d bytes, cap is 7", n)
		}
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 100 {
		t.Fatalf("read %d bytes total, want 100", total)
	}
}

func TestTelemetryLines(t *testing.T) {
	if got := telemetryLines(bytes.NewBufferString("")); got != nil {
		t.Fatalf("empty buffer: %v", got)
	}
	got := telemetryLines(bytes.NewBufferString("a\nb\n"))
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}
