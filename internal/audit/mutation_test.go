package audit

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/workload"
)

func TestSelfTestCatchesEveryMutation(t *testing.T) {
	if err := SelfTest(workload.Cfrac(), testOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestEachMutationTripsItsCheck(t *testing.T) {
	// SelfTest demands *some* violation per mutation; this pins each
	// mutation to the specific rule it is designed to trip, so a seeded
	// fault cannot ride on an unrelated check's coattails.
	wantRule := map[Mutation]string{
		MutSurvivingSkew:  "mem-accounting",
		MutBoundaryFuture: "boundary-future",
		MutPauseSkew:      "pause-rate",
		MutTimeRegress:    "time-monotone",
		MutFinishSkew:     "finish-history",
		MutDropDecision:   "decision-sequence",
	}
	events := churnTrace(600, 256, 12, 40)
	for _, kind := range Mutations() {
		t.Run(string(kind), func(t *testing.T) {
			aud := NewAuditor()
			cfg := sim.Config{
				Mode: sim.ModePolicy, Policy: core.Fixed{K: 1},
				TriggerBytes: 10 * kb,
				Label:        "mut/" + string(kind),
				Probe:        Mutate(kind, aud),
			}
			res, err := sim.Run(events, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Collections < 2 {
				t.Fatalf("only %d collections; trace too small", res.Collections)
			}
			if !hasRule(aud.Violations(), wantRule[kind]) {
				t.Fatalf("mutation did not trip %q: %v", wantRule[kind], aud.Violations())
			}
		})
	}
}

func TestParseMutation(t *testing.T) {
	for _, kind := range Mutations() {
		got, err := ParseMutation(string(kind))
		if err != nil || got != kind {
			t.Fatalf("ParseMutation(%q) = %v, %v", kind, got, err)
		}
	}
	if _, err := ParseMutation("bogus"); err == nil {
		t.Fatal("unknown mutation accepted")
	}
}
