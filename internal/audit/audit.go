// Package audit is the repository's correctness harness: an always-on
// invariant auditor and a differential oracle that continuously prove
// the optimized simulation paths agree with the paper's semantics.
//
// The paper's contribution is a set of per-scavenge identities — the
// threatening boundary lies in [0, t_n] and at or before t_{n-1} for
// every Table-1 policy, scavenge times are monotone, memory accounting
// balances (Mem_n = S_n + reclaimed bytes), pauses are traced bytes
// over the machine's trace rate — and the fast paths (birth-epoch
// bucket queries, single-pass fan-out replay, streamed decoding) are
// only trustworthy while those identities keep holding. The package
// provides three layers:
//
//   - Auditor, a sim.Probe that checks every telemetry event of a run
//     against the identities and reports structured Violations instead
//     of silently diverging;
//   - the differential oracle (Workload, diff.go), which replays a
//     workload through deliberately naive reference implementations —
//     O(n) tail-scan boundary queries, solo per-collector runs instead
//     of the fan-out, in-memory slices instead of streamed chunks —
//     and diffs Result, History and telemetry field by field;
//   - metamorphic and mutation self-tests (SelfTest): results must be
//     invariant under trace re-chunking and probe attachment, and a
//     deliberately seeded accounting skew must be caught — a checker
//     that cannot fail is not a checker.
//
// cmd/dtbaudit drives all three from the command line; dtbsim -audit
// attaches the Auditor to any single run.
package audit

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// Violation is one observed breach of a paper identity.
type Violation struct {
	Label     string // run label, "" for unlabelled solo runs
	Collector string // policy name, "NoGC" or "Live"
	N         int    // 1-based scavenge index, 0 for run-level findings
	Rule      string // stable identifier of the invariant, e.g. "mem-accounting"
	Detail    string // human-readable specifics with the observed values
}

// String renders the violation for logs and error messages.
func (v Violation) String() string {
	run := v.Label
	if run == "" {
		run = v.Collector
	}
	if v.N > 0 {
		return fmt.Sprintf("%s: scavenge %d: %s: %s", run, v.N, v.Rule, v.Detail)
	}
	return fmt.Sprintf("%s: %s: %s", run, v.Rule, v.Detail)
}

// Auditor is a sim.Probe that verifies the paper's per-scavenge
// identities on every run it observes. It never influences the run —
// it only reads the events — and it is safe for concurrent use, so a
// whole evaluation (EvalOptions.Probe) can run under one Auditor with
// runs demuxed by label.
//
// Checked identities, each with a stable Rule name:
//
//   - run-sequence: RunStart first, RunFinish last, no duplicates;
//   - decision-sequence: Decision n then Scavenge n, indices 1,2,3,...;
//   - boundary-future: TB_n <= t_n (the clamp contract);
//   - boundary-above-prev: TB_n <= t_{n-1} for the stock Table-1
//     policies, whose derivations all guarantee every object is traced
//     at least once (unknown policy names skip this check);
//   - time-monotone: t_n > t_{n-1};
//   - mem-monotone: memory in use never shrinks between scavenges
//     (only a scavenge reclaims), so Mem_n >= S_{n-1};
//   - live-exceeds-mem: oracle live bytes never exceed bytes in use;
//   - decision-scavenge-match: the scavenge outcome reports the same
//     t, TB and Mem its decision saw;
//   - mem-accounting: Mem_n = S_n + reclaimed_n exactly (the
//     untenured remainder stays inside S_n);
//   - trace-accounting: traced + reclaimed <= Mem_n;
//   - tenured-garbage: the event's TenuredGarbage = S_n - live;
//   - pause-rate: pause_n = traced_n / machine trace rate, bit-exact;
//   - finish-history: the final Result's History, Pauses, Collections
//     and TracedTotalBytes reproduce the observed event stream;
//   - finish-stats: mean <= max for memory and live statistics, the
//     live curve never exceeds the memory curve, and OverheadPct
//     matches total traced bytes at the machine's rates.
type Auditor struct {
	mu         sync.Mutex
	runs       map[string]*runAudit
	order      []string // first-seen run order, for deterministic reporting
	violations []Violation
}

// runAudit is the per-run state the checks thread through.
type runAudit struct {
	label     string
	collector string
	machine   sim.Machine
	started   bool
	finished  bool
	strict    bool // collector is a stock policy: TB_n <= t_{n-1} applies

	pending       *sim.Decision // decision awaiting its scavenge
	scavenges     []sim.ScavengeEvent
	lastClock     core.Time // latest Progress allocation clock
	haveLastClock bool
}

// NewAuditor returns an empty Auditor ready to attach to runs.
func NewAuditor() *Auditor {
	return &Auditor{runs: make(map[string]*runAudit)}
}

// Violations returns every violation observed so far, sorted by run
// (first-seen order), scavenge index and rule, so output is
// deterministic even when concurrent runs interleave events.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	seen := make(map[string]int, len(a.order))
	for i, label := range a.order {
		seen[label] = i
	}
	sort.SliceStable(out, func(i, j int) bool {
		if oi, oj := seen[out[i].Label], seen[out[j].Label]; oi != oj {
			return oi < oj
		}
		if out[i].N != out[j].N {
			return out[i].N < out[j].N
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Err returns nil when every audited run was clean, or an error
// summarizing the violations (first few spelled out).
func (a *Auditor) Err() error {
	vs := a.Violations()
	if len(vs) == 0 {
		return nil
	}
	const show = 5
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violation(s)", len(vs))
	for i, v := range vs {
		if i == show {
			fmt.Fprintf(&b, "; and %d more", len(vs)-show)
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// report appends a violation; callers hold a.mu.
func (a *Auditor) report(r *runAudit, n int, rule, format string, args ...any) {
	a.violations = append(a.violations, Violation{
		Label:     r.label,
		Collector: r.collector,
		N:         n,
		Rule:      rule,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// stockBoundedPolicy reports whether the named collector is one of the
// Table-1 policies (or an ablation variant of one) whose derivation
// guarantees TB_n <= t_{n-1}. The NoGC/Live baselines never scavenge;
// unknown names are experimental policies the invariant may not bind.
func stockBoundedPolicy(name string) bool {
	switch {
	case name == "Full", name == "FeedMed":
		return true
	case strings.HasPrefix(name, "Fixed"):
		return true
	case strings.HasPrefix(name, "DtbFM"), strings.HasPrefix(name, "DtbMem"):
		return true // includes the DtbFM[...]/DtbMem[...] ablations
	}
	return false
}

// run returns (creating if needed) the state for a label; callers hold
// a.mu. An event arriving before RunStart still gets a state so its
// own checks can run; the sequencing check reports the missing start.
func (a *Auditor) run(label string) *runAudit {
	r := a.runs[label]
	if r == nil {
		r = &runAudit{label: label, machine: sim.PaperMachine()}
		a.runs[label] = r
		a.order = append(a.order, label)
	}
	return r
}

// RunStart implements sim.Probe.
func (a *Auditor) RunStart(e sim.RunStart) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.run(e.Label)
	if r.started {
		a.report(r, 0, "run-sequence", "duplicate RunStart for collector %s", e.Collector)
		// Reset for the new run so its own checks stay meaningful.
		*r = runAudit{label: e.Label}
	}
	r.started = true
	r.collector = e.Collector
	r.strict = stockBoundedPolicy(e.Collector)
	r.machine = e.Machine
	if r.machine.Validate() != nil {
		a.report(r, 0, "run-sequence", "RunStart carries unusable machine model %+v", e.Machine)
		r.machine = sim.PaperMachine()
	}
}

// Decision implements sim.Probe.
func (a *Auditor) Decision(e sim.Decision) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.run(e.Label)
	if !r.started {
		a.report(r, e.N, "run-sequence", "Decision before RunStart")
		r.started = true
	}
	if r.finished {
		a.report(r, e.N, "run-sequence", "Decision after RunFinish")
	}
	if r.pending != nil {
		a.report(r, e.N, "decision-sequence",
			"decision %d while decision %d still awaits its scavenge", e.N, r.pending.N)
	}
	if want := len(r.scavenges) + 1; e.N != want {
		a.report(r, e.N, "decision-sequence", "decision n=%d, want %d", e.N, want)
	}
	if e.TB > e.Now {
		a.report(r, e.N, "boundary-future", "TB_n=%v is beyond the clock t_n=%v", e.TB, e.Now)
	}
	if last, ok := r.lastScavenge(); ok {
		if r.strict && e.TB > last.T {
			a.report(r, e.N, "boundary-above-prev",
				"%s chose TB_n=%v beyond the previous scavenge time t_{n-1}=%v", r.collector, e.TB, last.T)
		}
		if e.Now <= last.T {
			a.report(r, e.N, "time-monotone",
				"decision at t_n=%v does not advance past t_{n-1}=%v", e.Now, last.T)
		}
		if e.MemBefore < last.Surviving {
			a.report(r, e.N, "mem-monotone",
				"Mem_n=%d below the previous survivors S_{n-1}=%d: memory shrank without a scavenge",
				e.MemBefore, last.Surviving)
		}
	}
	if e.LiveBefore > e.MemBefore {
		a.report(r, e.N, "live-exceeds-mem",
			"oracle live bytes %d exceed bytes in use %d", e.LiveBefore, e.MemBefore)
	}
	d := e
	r.pending = &d
}

// Scavenge implements sim.Probe.
func (a *Auditor) Scavenge(e sim.ScavengeEvent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.run(e.Label)
	if !r.started {
		a.report(r, e.N, "run-sequence", "Scavenge before RunStart")
		r.started = true
	}
	if r.finished {
		a.report(r, e.N, "run-sequence", "Scavenge after RunFinish")
	}
	switch d := r.pending; {
	case d == nil:
		a.report(r, e.N, "decision-sequence", "scavenge %d without a preceding decision", e.N)
	case d.N != e.N:
		a.report(r, e.N, "decision-sequence", "scavenge n=%d does not match decision n=%d", e.N, d.N)
	default:
		if e.T != d.Now || e.TB != d.TB || e.MemBefore != d.MemBefore {
			a.report(r, e.N, "decision-scavenge-match",
				"outcome (t=%v tb=%v mem=%d) differs from its decision (t=%v tb=%v mem=%d)",
				e.T, e.TB, e.MemBefore, d.Now, d.TB, d.MemBefore)
		}
	}
	r.pending = nil
	if e.TB > e.T {
		a.report(r, e.N, "boundary-future", "TB_n=%v is beyond the scavenge time t_n=%v", e.TB, e.T)
	}
	if e.MemBefore != e.Surviving+e.Reclaimed {
		a.report(r, e.N, "mem-accounting",
			"Mem_n=%d but Surviving+Reclaimed=%d+%d=%d: %d byte(s) unaccounted",
			e.MemBefore, e.Surviving, e.Reclaimed, e.Surviving+e.Reclaimed,
			int64(e.MemBefore)-int64(e.Surviving+e.Reclaimed))
	}
	if e.Traced+e.Reclaimed > e.MemBefore {
		a.report(r, e.N, "trace-accounting",
			"traced %d + reclaimed %d exceed the %d bytes that were in use", e.Traced, e.Reclaimed, e.MemBefore)
	}
	if e.Live > e.Surviving {
		a.report(r, e.N, "live-exceeds-mem",
			"oracle live bytes %d exceed the surviving bytes %d", e.Live, e.Surviving)
	} else if e.TenuredGarbage != e.Surviving-e.Live {
		a.report(r, e.N, "tenured-garbage",
			"TenuredGarbage=%d does not equal Surviving-Live=%d-%d=%d",
			e.TenuredGarbage, e.Surviving, e.Live, e.Surviving-e.Live)
	}
	// Bit identity, not ==: a NaN pause must compare equal to the
	// recomputed NaN (== would report a phantom divergence) and a -0/+0
	// split must be caught (== would bless it).
	if want := r.machine.PauseSeconds(e.Traced); math.Float64bits(e.PauseSeconds) != math.Float64bits(want) {
		a.report(r, e.N, "pause-rate",
			"pause %.9gs does not equal traced/rate = %d/%.6g = %.9gs",
			e.PauseSeconds, e.Traced, r.machine.TraceBytesPer, want)
	}
	r.scavenges = append(r.scavenges, e)
}

// Progress implements sim.Probe.
func (a *Auditor) Progress(e sim.Progress) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.run(e.Label)
	if !r.started {
		a.report(r, 0, "run-sequence", "Progress before RunStart")
		r.started = true
	}
	if e.Live > e.InUse && r.collector != "Live" {
		a.report(r, 0, "live-exceeds-mem",
			"progress at clock %v: oracle live bytes %d exceed bytes in use %d", e.Clock, e.Live, e.InUse)
	}
	if r.haveLastClock && e.Clock < r.lastClock {
		a.report(r, 0, "time-monotone",
			"progress clock regressed %v -> %v", r.lastClock, e.Clock)
	}
	r.lastClock, r.haveLastClock = e.Clock, true
	if got, want := e.Collections, len(r.scavenges); got != want {
		a.report(r, 0, "decision-sequence",
			"progress reports %d collections but %d scavenge events were observed", got, want)
	}
}

// RunFinish implements sim.Probe.
func (a *Auditor) RunFinish(e sim.RunFinish) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.run(e.Label)
	res := e.Result
	if !r.started {
		a.report(r, 0, "run-sequence", "RunFinish before RunStart")
		r.started = true
	}
	if r.finished {
		a.report(r, 0, "run-sequence", "duplicate RunFinish")
	}
	r.finished = true
	if r.pending != nil {
		a.report(r, r.pending.N, "decision-sequence", "decision %d has no matching scavenge", r.pending.N)
	}
	a.checkFinishHistory(r, res)
	a.checkFinishStats(r, res)
}

// NoteDrops feeds the recovery decoder's drop accounting for a stream
// into the audit under the rule "drop-accounting". The accounting
// contract is what makes recovery trustworthy: typed counts and the
// byte total must agree (bytes were dropped exactly when a corrupt
// span or torn tail was recorded), and a single stream has at most one
// torn tail. The zero DropStats — a stream that decoded completely —
// is always clean.
//
// NoteDrops is not part of sim.Probe: drops belong to the input
// stream, not to any collector's run, so the replay harness reports
// them once per damaged source alongside the runs it fed.
func (a *Auditor) NoteDrops(label string, d trace.DropStats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.run(label)
	if d.CorruptRecords < 0 || d.TornTail < 0 {
		a.report(r, 0, "drop-accounting",
			"negative drop counts: corrupt=%d torn=%d", d.CorruptRecords, d.TornTail)
	}
	if d.TornTail > 1 {
		a.report(r, 0, "drop-accounting",
			"torn tail recorded %d times; a stream ends at most once", d.TornTail)
	}
	if (d.BytesDropped > 0) != d.Any() {
		a.report(r, 0, "drop-accounting",
			"%d byte(s) dropped inconsistent with corrupt=%d torn=%d: every drop must be typed and every type must cost bytes",
			d.BytesDropped, d.CorruptRecords, d.TornTail)
	}
}

// checkFinishHistory cross-checks the final Result against the event
// stream the auditor observed; callers hold a.mu.
func (a *Auditor) checkFinishHistory(r *runAudit, res *sim.Result) {
	if res.Collections != len(r.scavenges) {
		a.report(r, 0, "finish-history",
			"Result.Collections=%d but %d scavenge events were observed", res.Collections, len(r.scavenges))
	}
	hist := res.History.Scavenges
	if len(hist) != len(r.scavenges) || len(res.Pauses) != len(r.scavenges) {
		a.report(r, 0, "finish-history",
			"History has %d entries and Pauses %d for %d observed scavenges",
			len(hist), len(res.Pauses), len(r.scavenges))
	}
	var tracedTotal uint64
	for i, ev := range r.scavenges {
		tracedTotal += ev.Traced
		if i < len(hist) {
			h := hist[i]
			if h.N != ev.N || h.T != ev.T || h.TB != ev.TB || h.MemBefore != ev.MemBefore ||
				h.Traced != ev.Traced || h.Reclaimed != ev.Reclaimed || h.Surviving != ev.Surviving {
				a.report(r, ev.N, "finish-history",
					"History entry %+v does not reproduce the observed scavenge event", h)
			}
		}
		if i < len(res.Pauses) && math.Float64bits(res.Pauses[i]) != math.Float64bits(ev.PauseSeconds) {
			a.report(r, ev.N, "finish-history",
				"Pauses[%d]=%.9g differs from the observed pause %.9g", i, res.Pauses[i], ev.PauseSeconds)
		}
	}
	if res.TracedTotalBytes != tracedTotal {
		a.report(r, 0, "finish-history",
			"TracedTotalBytes=%d but the observed scavenges traced %d", res.TracedTotalBytes, tracedTotal)
	}
}

// checkFinishStats checks the Result's aggregate statistics for
// internal consistency; callers hold a.mu.
func (a *Auditor) checkFinishStats(r *runAudit, res *sim.Result) {
	if res.MemMeanBytes > res.MemMaxBytes {
		a.report(r, 0, "finish-stats",
			"memory mean %.1f exceeds memory max %.1f", res.MemMeanBytes, res.MemMaxBytes)
	}
	if res.LiveMeanBytes > res.LiveMaxBytes {
		a.report(r, 0, "finish-stats",
			"live mean %.1f exceeds live max %.1f", res.LiveMeanBytes, res.LiveMaxBytes)
	}
	if res.LiveMaxBytes > res.MemMaxBytes {
		a.report(r, 0, "finish-stats",
			"live max %.1f exceeds memory max %.1f: the live floor pierced the memory curve",
			res.LiveMaxBytes, res.MemMaxBytes)
	}
	if res.ExecSeconds > 0 {
		want := 100 * r.machine.PauseSeconds(res.TracedTotalBytes) / res.ExecSeconds
		if math.Float64bits(res.OverheadPct) != math.Float64bits(want) {
			a.report(r, 0, "finish-stats",
				"OverheadPct=%.9g does not equal 100*trace_time/exec_time=%.9g", res.OverheadPct, want)
		}
	}
}

// lastScavenge returns the most recent observed scavenge event.
func (r *runAudit) lastScavenge() (sim.ScavengeEvent, bool) {
	if len(r.scavenges) == 0 {
		return sim.ScavengeEvent{}, false
	}
	return r.scavenges[len(r.scavenges)-1], true
}

var _ sim.Probe = (*Auditor)(nil)
