package audit

import (
	"fmt"

	"github.com/dtbgc/dtbgc/internal/core"
)

// CheckHistory verifies the paper's identities on a completed scavenge
// history, whoever produced it — the trace-driven simulator or the
// real reachability collector (internal/gc). It reads the history and
// never retains or mutates it. The label tags the violations (use the
// run or collector name); pass "" when there is only one history in
// play.
//
// Checks, each with the same Rule names the live Auditor uses:
//
//   - decision-sequence: indices are 1,2,3,... in order;
//   - time-monotone: scavenge times strictly increase;
//   - boundary-future: TB_n <= t_n;
//   - mem-accounting: Mem_n = S_n + reclaimed_n;
//   - trace-accounting: traced + reclaimed <= Mem_n;
//   - mem-monotone: Mem_n >= S_{n-1} (memory only shrinks by
//     scavenging).
//
// The stricter TB_n <= t_{n-1} discipline is policy-dependent;
// CheckBoundaryDiscipline checks it separately.
func CheckHistory(label string, h *core.History) []Violation {
	var out []Violation
	add := func(n int, rule, detail string) {
		out = append(out, Violation{Label: label, N: n, Rule: rule, Detail: detail})
	}
	for i, s := range h.Scavenges {
		if s.N != i+1 {
			add(s.N, "decision-sequence", fmt.Sprintf("entry %d carries index n=%d", i, s.N))
		}
		if s.TB > s.T {
			add(s.N, "boundary-future", fmt.Sprintf("TB_n=%v is beyond t_n=%v", s.TB, s.T))
		}
		if s.MemBefore != s.Surviving+s.Reclaimed {
			add(s.N, "mem-accounting", fmt.Sprintf("Mem_n=%d but Surviving+Reclaimed=%d+%d",
				s.MemBefore, s.Surviving, s.Reclaimed))
		}
		if s.Traced+s.Reclaimed > s.MemBefore {
			add(s.N, "trace-accounting", fmt.Sprintf("traced %d + reclaimed %d exceed Mem_n=%d",
				s.Traced, s.Reclaimed, s.MemBefore))
		}
		if i > 0 {
			prev := h.Scavenges[i-1]
			if s.T <= prev.T {
				add(s.N, "time-monotone", fmt.Sprintf("t_n=%v does not advance past t_{n-1}=%v", s.T, prev.T))
			}
			if s.MemBefore < prev.Surviving {
				add(s.N, "mem-monotone", fmt.Sprintf("Mem_n=%d below previous survivors S_{n-1}=%d",
					s.MemBefore, prev.Surviving))
			}
		}
	}
	return out
}

// CheckBoundaryDiscipline verifies TB_n <= t_{n-1} over a history: the
// paper's §4.1 requirement that every object is traced at least once,
// which all the Table-1 policies guarantee by construction but an
// experimental policy may legitimately relax. It reads the history and
// never retains or mutates it.
func CheckBoundaryDiscipline(label string, h *core.History) []Violation {
	var out []Violation
	for i, s := range h.Scavenges {
		var prevT core.Time // t_0 = program start
		if i > 0 {
			prevT = h.Scavenges[i-1].T
		}
		if s.TB > prevT {
			out = append(out, Violation{
				Label: label, N: s.N, Rule: "boundary-above-prev",
				Detail: fmt.Sprintf("TB_n=%v beyond the previous scavenge time t_{n-1}=%v", s.TB, prevT),
			})
		}
	}
	return out
}
