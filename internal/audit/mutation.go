package audit

import (
	"fmt"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// A checker that cannot fail is not a checker: the mutation layer
// seeds deliberate accounting skew into the event stream the Auditor
// observes and demands a violation. Each Mutation corrupts one family
// of fields on the way into the auditor — the simulation itself is
// untouched, only the auditor's view of it — so a silent pass proves
// the corresponding check is blind.

// Mutation names one seeded fault.
type Mutation string

const (
	// MutSurvivingSkew inflates ScavengeEvent.Surviving, breaking the
	// Mem_n = S_n + reclaimed identity.
	MutSurvivingSkew Mutation = "surviving-skew"
	// MutBoundaryFuture pushes the decision's boundary past the clock.
	MutBoundaryFuture Mutation = "boundary-future"
	// MutPauseSkew perturbs the reported pause away from traced/rate.
	MutPauseSkew Mutation = "pause-skew"
	// MutTimeRegress rewinds the decision clock to program start from
	// the second scavenge on.
	MutTimeRegress Mutation = "time-regress"
	// MutFinishSkew inflates the final result's traced-byte total (on
	// a copy — probes must never mutate the shared Result).
	MutFinishSkew Mutation = "finish-skew"
	// MutDropDecision swallows every Decision event, so scavenges
	// arrive unannounced.
	MutDropDecision Mutation = "drop-decision"
)

// Mutations lists every seeded fault, in a fixed order.
func Mutations() []Mutation {
	return []Mutation{
		MutSurvivingSkew, MutBoundaryFuture, MutPauseSkew,
		MutTimeRegress, MutFinishSkew, MutDropDecision,
	}
}

// ParseMutation resolves a command-line mutation name.
func ParseMutation(name string) (Mutation, error) {
	for _, m := range Mutations() {
		if string(m) == name {
			return m, nil
		}
	}
	return "", fmt.Errorf("audit: unknown mutation %q (have %v)", name, Mutations())
}

// Mutate wraps inner so it sees the event stream with the given fault
// seeded in. The wrapped probe is for auditing the auditor; it is not
// concurrency-safe beyond what inner provides.
func Mutate(kind Mutation, inner sim.Probe) sim.Probe {
	return &mutator{kind: kind, inner: inner}
}

type mutator struct {
	kind  Mutation
	inner sim.Probe
}

// RunStart implements sim.Probe.
func (m *mutator) RunStart(e sim.RunStart) { m.inner.RunStart(e) }

// Decision implements sim.Probe.
func (m *mutator) Decision(e sim.Decision) {
	switch m.kind {
	case MutBoundaryFuture:
		e.TB = e.Now.Add(1)
	case MutTimeRegress:
		if e.N >= 2 {
			e.Now = 0
		}
	case MutDropDecision:
		return
	}
	m.inner.Decision(e)
}

// Scavenge implements sim.Probe.
func (m *mutator) Scavenge(e sim.ScavengeEvent) {
	switch m.kind {
	case MutSurvivingSkew:
		e.Surviving += 4096
	case MutPauseSkew:
		e.PauseSeconds *= 1.25
	}
	m.inner.Scavenge(e)
}

// Progress implements sim.Probe.
func (m *mutator) Progress(e sim.Progress) { m.inner.Progress(e) }

// RunFinish implements sim.Probe.
func (m *mutator) RunFinish(e sim.RunFinish) {
	if m.kind == MutFinishSkew && e.Result != nil {
		skewed := *e.Result
		skewed.TracedTotalBytes++
		e.Result = &skewed
	}
	m.inner.RunFinish(e)
}

var _ sim.Probe = (*mutator)(nil)

// MutatedRun runs one collector (DTBFM, the policy that exercises the
// most checks) over the workload with the fault seeded into the
// Auditor's view, returning the run's result and the violations the
// Auditor caught. An empty kind seeds nothing — the clean control.
//
// The trigger is tightened so the run scavenges at least a handful of
// times regardless of scale — time-regress needs a second scavenge to
// regress to.
func MutatedRun(p workload.Profile, opts Options, kind Mutation) (*sim.Result, []Violation, error) {
	opts = opts.withDefaults()
	scaled := p.Scale(opts.Scale)
	trigger := opts.TriggerBytes
	if limit := scaled.TotalBytes / 8; limit > 0 && trigger > limit {
		trigger = limit
	}
	events, err := scaled.Generate()
	if err != nil {
		return nil, nil, fmt.Errorf("audit: generate %s: %w", scaled.Name, err)
	}
	aud := NewAuditor()
	cfg := sim.Config{
		Mode:         sim.ModePolicy,
		Policy:       core.DtbFM{TraceMax: opts.TraceMaxBytes},
		TriggerBytes: trigger,
		Label:        scaled.Name + "/DtbFM",
		Probe:        aud,
	}
	if kind != "" {
		cfg.Probe = Mutate(kind, aud)
	}
	res, err := sim.Run(events, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("audit: %s run: %w", orControl(kind), err)
	}
	return res, aud.Violations(), nil
}

func orControl(kind Mutation) string {
	if kind == "" {
		return "control"
	}
	return string(kind)
}

// SelfTest proves the Auditor can fail: it runs one collector over the
// workload cleanly (expecting zero violations), then once per Mutation
// with the fault seeded into the auditor's view (expecting at least
// one violation each). A nil return means every fault was caught; the
// error names the first blind spot.
func SelfTest(p workload.Profile, opts Options) error {
	res, violations, err := MutatedRun(p, opts, "")
	if err != nil {
		return fmt.Errorf("audit: selftest: %w", err)
	}
	if len(violations) > 0 {
		return fmt.Errorf("audit: selftest: control run must be clean, got %v", violations)
	}
	if res.Collections < 2 {
		return fmt.Errorf("audit: selftest: control run scavenged %d time(s); need >= 2 for the mutations to bite (scale the workload up)", res.Collections)
	}
	for _, kind := range Mutations() {
		if _, violations, err = MutatedRun(p, opts, kind); err != nil {
			return fmt.Errorf("audit: selftest: %w", err)
		}
		if len(violations) == 0 {
			return fmt.Errorf("audit: selftest: mutation %q was not caught — the auditor is blind to it", kind)
		}
	}
	return nil
}
