package audit

import (
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

const kb = 1024

// churnTrace allocates n objects of size sz, freeing each after hold
// further allocations; every permEvery-th object survives forever.
func churnTrace(n int, sz uint64, hold, permEvery int) []trace.Event {
	b := trace.NewBuilder()
	var pending []trace.ObjectID
	for i := 0; i < n; i++ {
		b.Advance(100)
		id := b.Alloc(sz)
		if permEvery > 0 && i%permEvery == 0 {
			continue
		}
		pending = append(pending, id)
		if len(pending) > hold {
			b.Free(pending[0])
			pending = pending[1:]
		}
	}
	return b.Events()
}

// runUnderAudit runs a small policy simulation with the auditor (and
// any extra probe) attached.
func runUnderAudit(t *testing.T, p core.Policy, extra sim.Probe) (*sim.Result, *Auditor) {
	t.Helper()
	aud := NewAuditor()
	cfg := sim.Config{
		Mode: sim.ModePolicy, Policy: p,
		TriggerBytes: 10 * kb,
		Label:        "test/" + p.Name(),
		Probe:        sim.Probes(aud, extra),
	}
	res, err := sim.Run(churnTrace(600, 256, 12, 40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, aud
}

func TestAuditorCleanOnStockPolicies(t *testing.T) {
	policies := []core.Policy{
		core.Full{}, core.Fixed{K: 1}, core.Fixed{K: 4},
		core.DtbMem{MemMax: 40 * kb},
		core.FeedMed{TraceMax: 5 * kb},
		core.DtbFM{TraceMax: 5 * kb},
	}
	for _, p := range policies {
		res, aud := runUnderAudit(t, p, nil)
		if res.Collections < 2 {
			t.Fatalf("%s: only %d collections; trace too small to audit", p.Name(), res.Collections)
		}
		if err := aud.Err(); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestAuditorCleanOnBaselines(t *testing.T) {
	for _, mode := range []sim.Mode{sim.ModeNoGC, sim.ModeLive} {
		aud := NewAuditor()
		cfg := sim.Config{Mode: mode, Probe: aud, Label: "test/baseline"}
		if _, err := sim.Run(churnTrace(400, 128, 8, 0), cfg); err != nil {
			t.Fatal(err)
		}
		if err := aud.Err(); err != nil {
			t.Errorf("mode %d: %v", mode, err)
		}
	}
}

// badPolicy violates the boundary discipline on purpose: it returns a
// boundary in the future, which ClampBoundary pulls back to now — a
// boundary above t_{n-1}, so the strict check must fire if the policy
// masquerades under a stock name.
type badPolicy struct{ name string }

func (b badPolicy) Name() string                                                   { return b.name }
func (b badPolicy) Boundary(now core.Time, _ *core.History, _ core.Heap) core.Time { return now }

func TestAuditorFlagsBoundaryAbovePrevForStockNames(t *testing.T) {
	_, aud := runUnderAudit(t, badPolicy{name: "DtbFM"}, nil)
	if !hasRule(aud.Violations(), "boundary-above-prev") {
		t.Fatalf("stock-named policy with TB_n = t_n not flagged: %v", aud.Violations())
	}
}

func TestAuditorSkipsBoundaryDisciplineForExperimentalNames(t *testing.T) {
	_, aud := runUnderAudit(t, badPolicy{name: "Experimental"}, nil)
	if hasRule(aud.Violations(), "boundary-above-prev") {
		t.Fatalf("experimental policy held to the stock boundary discipline: %v", aud.Violations())
	}
}

func hasRule(vs []Violation, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestViolationsSortedAndStable(t *testing.T) {
	aud := NewAuditor()
	// Two unannounced runs interleaved: every event stream is out of
	// order, so violations accumulate for both labels.
	aud.Scavenge(sim.ScavengeEvent{Label: "b", N: 1})
	aud.Scavenge(sim.ScavengeEvent{Label: "a", N: 1})
	vs := aud.Violations()
	if len(vs) == 0 {
		t.Fatal("no violations for unannounced scavenges")
	}
	// Sorting is by first-seen run order, and "b" arrived first.
	if vs[0].Label != "b" {
		t.Fatalf("want first-seen run first, got %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Label: "w/Full", N: 3, Rule: "mem-accounting", Detail: "off by 7"}
	s := v.String()
	for _, want := range []string{"w/Full", "scavenge 3", "mem-accounting", "off by 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestCheckHistoryCleanOnRealRun(t *testing.T) {
	res, _ := runUnderAudit(t, core.Fixed{K: 1}, nil)
	if vs := CheckHistory("x", &res.History); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
	if vs := CheckBoundaryDiscipline("x", &res.History); len(vs) != 0 {
		t.Fatalf("clean history flagged by boundary discipline: %v", vs)
	}
}

func TestCheckHistoryCatchesCorruption(t *testing.T) {
	cases := []struct {
		rule   string
		mangle func(*core.History)
	}{
		{"mem-accounting", func(h *core.History) { h.Scavenges[1].Surviving += 8 }},
		{"boundary-future", func(h *core.History) { h.Scavenges[1].TB = h.Scavenges[1].T.Add(1) }},
		{"time-monotone", func(h *core.History) { h.Scavenges[1].T = h.Scavenges[0].T }},
		{"decision-sequence", func(h *core.History) { h.Scavenges[1].N = 7 }},
		{"trace-accounting", func(h *core.History) { h.Scavenges[1].Traced = h.Scavenges[1].MemBefore + 1 }},
		{"mem-monotone", func(h *core.History) {
			// Shrink Mem_n below S_{n-1} while keeping the other
			// identities intact, so only mem-monotone fires.
			s := &h.Scavenges[1]
			s.Traced, s.Reclaimed = 0, 0
			s.MemBefore = h.Scavenges[0].Surviving - 1
			s.Surviving = s.MemBefore
		}},
	}
	for _, tc := range cases {
		res, _ := runUnderAudit(t, core.Fixed{K: 1}, nil)
		if len(res.History.Scavenges) < 2 || res.History.Scavenges[0].Surviving == 0 {
			t.Fatal("trace too small for corruption cases")
		}
		h := res.History
		h.Scavenges = append([]core.Scavenge(nil), res.History.Scavenges...)
		tc.mangle(&h)
		if !hasRule(CheckHistory("x", &h), tc.rule) {
			t.Errorf("%s: corruption not caught: %v", tc.rule, CheckHistory("x", &h))
		}
	}
}

func TestCheckBoundaryDisciplineCatchesAdvance(t *testing.T) {
	res, _ := runUnderAudit(t, core.Fixed{K: 1}, nil)
	h := res.History
	h.Scavenges = append([]core.Scavenge(nil), res.History.Scavenges...)
	h.Scavenges[1].TB = h.Scavenges[1].T // above t_{n-1}
	if !hasRule(CheckBoundaryDiscipline("x", &h), "boundary-above-prev") {
		t.Fatal("boundary above t_{n-1} not caught")
	}
}
