package audit

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// pathRun is one delivery path's outcome over a workload: every
// collector's result, its telemetry lines, and the auditor that
// watched the whole pass.
type pathRun struct {
	res []*sim.Result
	tel [][]string
	aud *Auditor
}

// runPath executes the collector matrix for one workload with a fresh
// auditor and a per-config telemetry stream, through whatever delivery
// mechanism run implements.
func runPath(t *testing.T, name string, opts Options,
	run func(cfgs []sim.Config) ([]*sim.Result, error)) pathRun {
	t.Helper()
	aud := NewAuditor()
	cfgs := collectorConfigs(name, opts)
	bufs := make([]*bytes.Buffer, len(cfgs))
	for i := range cfgs {
		bufs[i] = &bytes.Buffer{}
		cfgs[i].Probe = sim.Probes(aud, sim.NewTelemetryWriter(bufs[i]))
	}
	res, err := run(cfgs)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	tel := make([][]string, len(cfgs))
	for i := range bufs {
		tel[i] = telemetryLines(bufs[i])
	}
	return pathRun{res: res, tel: tel, aud: aud}
}

// TestBatchedFanOutMatchesLegacyOracle is the equivalence oracle for
// the batched replay engine: every paper workload, across three
// generator seeds, runs the full eight-collector matrix through three
// delivery paths —
//
//	legacy:    one solo sim.Run per collector over the materialized
//	           trace (the pre-fan-out reference semantics),
//	per-event: the fan-out engine fed single-event batches,
//	batched:   the fan-out engine fed full zero-copy batches,
//
// and all three must agree bit for bit: DiffResults on every Result
// (Float64bits, histories and curves included), DiffTelemetry line for
// line on every collector's probe stream, and a clean auditor on every
// path.
func TestBatchedFanOutMatchesLegacyOracle(t *testing.T) {
	opts := Options{TriggerBytes: 10 * kb, MemMaxBytes: 40 * kb, TraceMaxBytes: 5 * kb}
	for _, base := range workload.PaperProfiles() {
		for ds := uint64(0); ds < 3; ds++ {
			p := base.Scale(0.002)
			p.Seed = base.Seed + ds
			t.Run(fmt.Sprintf("%s/seed+%d", p.Name, ds), func(t *testing.T) {
				events, err := p.Generate()
				if err != nil {
					t.Fatalf("generate: %v", err)
				}

				legacy := runPath(t, p.Name, opts, func(cfgs []sim.Config) ([]*sim.Result, error) {
					res := make([]*sim.Result, len(cfgs))
					for i, cfg := range cfgs {
						r, err := sim.Run(events, cfg)
						if err != nil {
							return nil, fmt.Errorf("%s: %w", cfg.Label, err)
						}
						res[i] = r
					}
					return res, nil
				})
				perEvent := runPath(t, p.Name, opts, func(cfgs []sim.Config) ([]*sim.Result, error) {
					return engine.ReplayBatches(context.Background(),
						func(emit func([]trace.Event) error) error {
							for i := range events {
								if err := emit(events[i : i+1]); err != nil {
									return err
								}
							}
							return nil
						}, cfgs)
				})
				batched := runPath(t, p.Name, opts, func(cfgs []sim.Config) ([]*sim.Result, error) {
					return engine.ReplayBatches(context.Background(),
						engine.SliceBatchSource(events), cfgs)
				})

				for _, path := range []struct {
					name string
					got  pathRun
				}{{"per-event fan-out", perEvent}, {"batched fan-out", batched}} {
					for i := range legacy.res {
						label := legacy.res[i].Collector
						for _, d := range DiffResults(path.got.res[i], legacy.res[i]) {
							t.Errorf("%s: %s: %s", path.name, label, d)
						}
						for _, d := range DiffTelemetry(path.got.tel[i], legacy.tel[i]) {
							t.Errorf("%s: %s telemetry: %s", path.name, label, d)
						}
					}
				}
				for _, path := range []struct {
					name string
					aud  *Auditor
				}{{"legacy", legacy.aud}, {"per-event fan-out", perEvent.aud}, {"batched fan-out", batched.aud}} {
					if err := path.aud.Err(); err != nil {
						t.Errorf("%s auditor: %v", path.name, err)
					}
				}
			})
		}
	}
}
