package audit

import (
	"context"
	"fmt"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// TestCompactedReplayMatchesUncompactedOracle is the fleet-level
// differential oracle for epoch compaction: every paper workload
// (across two generator seeds) plus a pure-churn trace that provokes
// heavy retirement runs the full collector matrix through the fan-out
// engine twice — once with the shared tape compacting at its default
// cadence, once with Config.UncompactedTape pinning every ordinal for
// the whole replay — and the two passes must agree bit for bit:
// DiffResults on every Result, DiffTelemetry line for line, and a
// clean auditor on both paths. AuditWorkload already diffs the
// compacted fast path against solo uncompacted reference runs; this
// test closes the remaining gap by diffing fleet against fleet, where
// compaction decisions are shared across all runners at once.
func TestCompactedReplayMatchesUncompactedOracle(t *testing.T) {
	opts := Options{TriggerBytes: 10 * kb, MemMaxBytes: 40 * kb, TraceMaxBytes: 5 * kb}

	type traceCase struct {
		name   string
		events []trace.Event
	}
	var cases []traceCase
	for _, base := range workload.PaperProfiles() {
		for ds := uint64(0); ds < 2; ds++ {
			p := base.Scale(0.002)
			p.Seed = base.Seed + ds
			events, err := p.Generate()
			if err != nil {
				t.Fatalf("%s: generate: %v", p.Name, err)
			}
			cases = append(cases, traceCase{fmt.Sprintf("%s/seed+%d", p.Name, ds), events})
		}
	}
	// Pure churn: no object survives, so the dead tape prefix grows
	// without bound and default-threshold compaction fires repeatedly
	// (bucket trimming for the whole matrix; ordinal retirement
	// whenever the runner floors allow it).
	cases = append(cases, traceCase{"churn", churnTrace(30000, 256, 12, 0)})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			compacted := runPath(t, tc.name, opts, func(cfgs []sim.Config) ([]*sim.Result, error) {
				return engine.Replay(context.Background(), engine.SliceSource(tc.events), cfgs)
			})
			uncompacted := runPath(t, tc.name, opts, func(cfgs []sim.Config) ([]*sim.Result, error) {
				// One uncompacted config disables compaction for the
				// whole shared tape.
				for i := range cfgs {
					cfgs[i].UncompactedTape = true
				}
				return engine.Replay(context.Background(), engine.SliceSource(tc.events), cfgs)
			})

			for i := range uncompacted.res {
				label := uncompacted.res[i].Collector
				for _, d := range DiffResults(compacted.res[i], uncompacted.res[i]) {
					t.Errorf("%s: compacted vs uncompacted: %s", label, d)
				}
				for _, d := range DiffTelemetry(compacted.tel[i], uncompacted.tel[i]) {
					t.Errorf("%s telemetry: compacted vs uncompacted: %s", label, d)
				}
			}
			for _, path := range []struct {
				name string
				aud  *Auditor
			}{{"compacted", compacted.aud}, {"uncompacted", uncompacted.aud}} {
				if err := path.aud.Err(); err != nil {
					t.Errorf("%s auditor: %v", path.name, err)
				}
			}
		})
	}
}

// TestAuditChurnTraceActuallyCompacts pins the premise of the churn
// case above: on that trace, a fleet of draining collectors retires
// ordinal prefixes and trims birth buckets at the default thresholds.
// Without this the differential would pass vacuously if compaction
// never engaged. The full audit matrix holds tenuring collectors
// (FIXED, tight-budget DTBFM) whose floors pin retirement, so the
// assertion uses reclaiming collectors; bucket trimming needs no
// drained floors and is asserted for the full matrix too.
func TestAuditChurnTraceActuallyCompacts(t *testing.T) {
	events := churnTrace(30000, 256, 12, 0)

	reclaiming := []sim.Config{
		{Mode: sim.ModePolicy, Policy: core.Full{}, TriggerBytes: 10 * kb, Label: "churn/full"},
		{Mode: sim.ModePolicy, Policy: core.FeedMed{TraceMax: 1 << 20}, TriggerBytes: 10 * kb, Label: "churn/feedmed"},
		{Mode: sim.ModeNoGC, Label: "churn/nogc"},
		{Mode: sim.ModeLive, Label: "churn/live"},
	}
	fleet, err := sim.NewFleet(reclaiming)
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	fleet.Finish()
	stats := fleet.TapeStats()
	if stats.RetiredObjects == 0 {
		t.Errorf("reclaiming fleet retired nothing over %d events: %+v", stats.Events, stats)
	}
	if stats.TrimmedBuckets == 0 {
		t.Errorf("reclaiming fleet trimmed no birth buckets: %+v", stats)
	}

	full, err := sim.NewFleet(collectorConfigs("churn", Options{
		TriggerBytes: 10 * kb, MemMaxBytes: 40 * kb, TraceMaxBytes: 5 * kb,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := full.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	full.Finish()
	if s := full.TapeStats(); s.TrimmedBuckets == 0 {
		t.Errorf("full audit matrix trimmed no birth buckets: %+v", s)
	}
}
