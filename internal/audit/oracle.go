package audit

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/workload"
)

// Options parameterizes one differential-oracle pass over a workload.
// The zero value audits at paper scale with the paper's constraints.
type Options struct {
	// Scale multiplies the workload length; zero means 1.0 (paper
	// scale).
	Scale float64
	// TriggerBytes is the scavenge interval; zero means 1 MB.
	TriggerBytes uint64
	// MemMaxBytes is DTBMEM's constraint; zero means 3000 KB.
	MemMaxBytes uint64
	// TraceMaxBytes is FEEDMED's and DTBFM's budget; zero means 50 KB.
	TraceMaxBytes uint64
	// ChunkSizes are the io chunk lengths the re-chunking metamorphic
	// test streams the encoded trace through; results must not depend
	// on them. Nil means {777, 64 KB} — an odd size that splits varints
	// across reads, and a bulk size.
	ChunkSizes []int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 { //dtbvet:ignore floatexact -- exact zero is the unset-option sentinel; no arithmetic feeds it
		o.Scale = 1
	}
	if o.TriggerBytes == 0 {
		o.TriggerBytes = 1 << 20
	}
	if o.MemMaxBytes == 0 {
		o.MemMaxBytes = 3000 * 1024
	}
	if o.TraceMaxBytes == 0 {
		o.TraceMaxBytes = 50 * 1024
	}
	if o.ChunkSizes == nil {
		o.ChunkSizes = []int{777, 64 * 1024}
	}
	return o
}

// Report is the outcome of auditing one workload.
type Report struct {
	Workload   string
	Collectors []string    // audited collector names, matrix order
	Runs       int         // total simulation runs executed
	Violations []Violation // invariant breaches (live auditor + history checks)
	Diffs      []string    // differential/metamorphic mismatches
}

// Clean reports whether the workload passed every check.
func (r *Report) Clean() bool { return len(r.Violations) == 0 && len(r.Diffs) == 0 }

// Err returns nil for a clean report, or an error summarizing what
// failed (first few findings spelled out).
func (r *Report) Err() error {
	if r.Clean() {
		return nil
	}
	const show = 5
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %s: %d violation(s), %d diff(s)", r.Workload, len(r.Violations), len(r.Diffs))
	shown := 0
	for _, v := range r.Violations {
		if shown == show {
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
		shown++
	}
	for _, d := range r.Diffs {
		if shown == show {
			break
		}
		b.WriteString("; ")
		b.WriteString(d)
		shown++
	}
	if rest := len(r.Violations) + len(r.Diffs) - shown; rest > 0 {
		fmt.Fprintf(&b, "; and %d more", rest)
	}
	return fmt.Errorf("%s", b.String())
}

// auditPolicySeed fixes the adaptive policies' PolicySeed for every
// oracle path: the seed derivation is (PolicySeed, Label, collector),
// so the fast fan-out, the solo reference run and the streamed run all
// mint instances with identical initial state — any divergence the
// differential diff finds is a real replay bug, never seed skew.
const auditPolicySeed = 0xD7B0A4D1

// collectorConfigs is the oracle's run matrix over one trace: the six
// Table-1 policies with the paper's constraints, the adaptive
// (state-carrying) policies under a fixed seed, plus the NoGC and Live
// baselines, labelled "workload/collector" like the evaluation
// harness. Keeping the adaptive policies in the differential matrix is
// the oracle's replay rule for learned state: their Results, Histories
// and telemetry streams — including the per-decision arm and feature
// digests — must be bit-identical across all three engine paths.
func collectorConfigs(name string, opts Options) []sim.Config {
	policies := []core.Policy{
		core.Full{}, core.Fixed{K: 1}, core.Fixed{K: 4},
		core.DtbMem{MemMax: opts.MemMaxBytes},
		core.FeedMed{TraceMax: opts.TraceMaxBytes},
		core.DtbFM{TraceMax: opts.TraceMaxBytes},
	}
	adaptive := []core.Policy{
		core.Bandit{Eps: 0.1},
		core.Bandit{UCB: 1.5},
		core.Gradient{TraceMax: opts.TraceMaxBytes},
	}
	cfgs := make([]sim.Config, 0, len(policies)+len(adaptive)+2)
	for _, p := range policies {
		cfgs = append(cfgs, sim.Config{
			Mode: sim.ModePolicy, Policy: p,
			TriggerBytes: opts.TriggerBytes,
			Label:        name + "/" + p.Name(),
		})
	}
	for _, p := range adaptive {
		cfgs = append(cfgs, sim.Config{
			Mode: sim.ModePolicy, Policy: p,
			TriggerBytes: opts.TriggerBytes,
			Label:        name + "/" + p.Name(),
			PolicySeed:   auditPolicySeed,
		})
	}
	cfgs = append(cfgs,
		sim.Config{Mode: sim.ModeNoGC, Label: name + "/NoGC"},
		sim.Config{Mode: sim.ModeLive, Label: name + "/Live"})
	return cfgs
}

// AuditWorkload runs the full correctness harness over one workload:
//
//  1. The fast path — every collector fed by one engine.Replay pass
//     over the streamed generator, bucketed boundary queries — runs
//     under the live Auditor with per-run telemetry capture.
//  2. The reference path re-runs every collector solo (sim.Run over
//     the materialized trace) with Config.ReferenceScan routing every
//     boundary query through the O(n) tail scan and
//     Config.UncompactedTape pinning the whole trace in the tape;
//     Result, History and the telemetry stream must match the fast
//     (bucketed, epoch-compacted) path bit for bit.
//  3. The metamorphic path re-runs every collector through the binary
//     codec (trace.WriteAll -> RunReader) with the encoded bytes
//     delivered in deliberately awkward chunk sizes and no probe
//     attached; re-chunking and probe attachment must not change any
//     result.
//  4. Every fast-path history replays through CheckHistory, and
//     through CheckBoundaryDiscipline for the stock policies.
//
// The returned Report collects everything found; an error is returned
// only when a run itself fails (malformed trace, cancellation), not
// when checks fail.
func AuditWorkload(ctx context.Context, p workload.Profile, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	scaled := p.Scale(opts.Scale)
	report := &Report{Workload: scaled.Name}

	cfgs := collectorConfigs(scaled.Name, opts)
	auditor := NewAuditor()
	fastTel := make([]*bytes.Buffer, len(cfgs))
	fastCfgs := make([]sim.Config, len(cfgs))
	for i, cfg := range cfgs {
		fastTel[i] = &bytes.Buffer{}
		cfg.Probe = sim.Probes(auditor, sim.NewTelemetryWriter(fastTel[i]))
		fastCfgs[i] = cfg
	}
	fast, err := engine.Replay(ctx, engine.Source(scaled.GenerateTo), fastCfgs)
	if err != nil {
		return nil, fmt.Errorf("audit: %s: fast path: %w", scaled.Name, err)
	}
	report.Runs += len(fast)
	report.Violations = append(report.Violations, auditor.Violations()...)

	// Materialize the trace once for the solo reference runs, and
	// encode it once for the re-chunking runs. The generator is
	// deterministic, so this is the same event sequence the fast path
	// streamed.
	events, err := scaled.Generate()
	if err != nil {
		return nil, fmt.Errorf("audit: %s: generate: %w", scaled.Name, err)
	}
	var encoded bytes.Buffer
	if err := trace.WriteAll(&encoded, events); err != nil {
		return nil, fmt.Errorf("audit: %s: encode: %w", scaled.Name, err)
	}

	for i, cfg := range cfgs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		report.Collectors = append(report.Collectors, fast[i].Collector)

		// Reference path: solo run, naive tail-scan boundary queries,
		// the tape held uncompacted, its own telemetry stream. The fast
		// path compacts, so every audit is also a compacted-vs-
		// uncompacted differential: epoch compaction must be invisible
		// bit for bit or this diff catches it.
		refTel := &bytes.Buffer{}
		refCfg := cfg
		refCfg.ReferenceScan = true
		refCfg.UncompactedTape = true
		refCfg.Probe = sim.NewTelemetryWriter(refTel)
		ref, err := sim.Run(events, refCfg)
		if err != nil {
			return nil, fmt.Errorf("audit: %s: reference run: %w", cfg.Label, err)
		}
		report.Runs++
		for _, d := range DiffResults(fast[i], ref) {
			report.Diffs = append(report.Diffs, cfg.Label+": fast vs reference: "+d)
		}
		for _, d := range DiffTelemetry(telemetryLines(fastTel[i]), telemetryLines(refTel)) {
			report.Diffs = append(report.Diffs, cfg.Label+": fast vs reference: "+d)
		}

		// Metamorphic path: the same run through the codec in awkward
		// chunks, with no probe attached — two relations at once
		// (re-chunking invariance and probe-attachment invariance).
		for _, chunk := range opts.ChunkSizes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			streamCfg := cfg
			streamCfg.Probe = nil
			rd := trace.NewReader(&chunkedReader{r: bytes.NewReader(encoded.Bytes()), n: chunk})
			streamed, err := sim.RunReader(rd, streamCfg)
			if err != nil {
				return nil, fmt.Errorf("audit: %s: streamed run (chunk %d): %w", cfg.Label, chunk, err)
			}
			report.Runs++
			for _, d := range DiffResults(fast[i], streamed) {
				report.Diffs = append(report.Diffs,
					fmt.Sprintf("%s: fast vs streamed (chunk %d, no probe): %s", cfg.Label, chunk, d))
			}
		}

		// Post-hoc history checks on the fast result.
		report.Violations = append(report.Violations, CheckHistory(cfg.Label, &fast[i].History)...)
		if stockBoundedPolicy(fast[i].Collector) {
			report.Violations = append(report.Violations, CheckBoundaryDiscipline(cfg.Label, &fast[i].History)...)
		}
	}
	return report, nil
}

// chunkedReader caps every Read at n bytes, forcing the trace decoder
// to see buffer boundaries in the middle of varints and event records.
type chunkedReader struct {
	r io.Reader
	n int
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	if c.n > 0 && len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

// telemetryLines splits a captured JSON-lines stream for DiffTelemetry.
func telemetryLines(b *bytes.Buffer) []string {
	s := strings.TrimSuffix(b.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
