package audit

import (
	"bytes"
	"context"
	"testing"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/fault"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// resumeMatrix is the replay matrix the resume oracle runs: the DTB
// collector in both constraint modes plus the full-collection baseline.
func resumeMatrix(probe sim.Probe) []sim.Config {
	mk := func(p core.Policy) sim.Config {
		return sim.Config{
			Policy: p, TriggerBytes: 10 * kb,
			Label: "resume/" + p.Name(), Probe: probe,
		}
	}
	return []sim.Config{
		mk(core.Full{}),
		mk(core.DtbFM{TraceMax: 5 * kb}),
		mk(core.DtbMem{MemMax: 40 * kb}),
	}
}

// TestResumeBitIdenticalUnderOracle is the acceptance check for
// checkpoint/resume: a replay interrupted by an injected source fault
// and resumed must reproduce the uninterrupted run bit for bit — every
// Result field under DiffResults' Float64bits comparison, and the
// telemetry stream byte for byte — with the auditor's invariants clean
// throughout. Interrupt offsets come from seeded fault schedules, so
// the sweep is deterministic but not hand-picked.
func TestResumeBitIdenticalUnderOracle(t *testing.T) {
	events := churnTrace(3000, 256, 12, 40)

	var wantTel bytes.Buffer
	want, err := engine.Replay(context.Background(), engine.SliceSource(events),
		resumeMatrix(sim.Probes(NewAuditor(), sim.NewTelemetryWriter(&wantTel))))
	if err != nil {
		t.Fatalf("uninterrupted replay: %v", err)
	}

	for seed := uint64(1); seed <= 5; seed++ {
		plan := fault.RandomPlan(seed, fault.SourceErr, uint64(len(events)))
		aud := NewAuditor()
		var tel bytes.Buffer
		cfgs := resumeMatrix(sim.Probes(aud, sim.NewTelemetryWriter(&tel)))

		_, cp, rerr := engine.ReplayResumable(context.Background(),
			engine.Source(plan.Source(engine.SliceSource(events), nil)), cfgs)
		if rerr == nil || cp == nil {
			t.Fatalf("seed %d: interrupted replay gave err=%v cp=%v", seed, rerr, cp)
		}
		got, cp, rerr := cp.Resume(context.Background(),
			engine.Source(plan.Source(engine.SliceSource(events), nil)))
		if rerr != nil || cp != nil {
			t.Fatalf("seed %d: resume: %v (checkpoint %v)", seed, rerr, cp)
		}

		for i := range want {
			for _, d := range DiffResults(got[i], want[i]) {
				t.Errorf("seed %d, %s: %s", seed, want[i].Collector, d)
			}
		}
		for _, d := range DiffTelemetry(telemetryLines(&tel), telemetryLines(&wantTel)) {
			t.Errorf("seed %d: %s", seed, d)
		}
		if vs := aud.Violations(); len(vs) > 0 {
			t.Errorf("seed %d: resumed run violated %d invariant(s): %v", seed, len(vs), vs[0])
		}
	}
}

// TestResumeAfterCancellationUnderOracle covers the other resumable
// interrupt: an injected cancellation storm. The replay aborts with the
// context error at its next check, and resuming under a fresh context
// still reproduces the uninterrupted run exactly.
func TestResumeAfterCancellationUnderOracle(t *testing.T) {
	events := churnTrace(3000, 256, 12, 40)
	want, err := engine.Replay(context.Background(), engine.SliceSource(events), resumeMatrix(nil))
	if err != nil {
		t.Fatalf("uninterrupted replay: %v", err)
	}
	plan := fault.NewPlan(fault.Fault{Kind: fault.Cancel, Offset: 64})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, cp, rerr := engine.ReplayResumable(ctx,
		engine.Source(plan.Source(engine.SliceSource(events), cancel)), resumeMatrix(nil))
	if rerr == nil || cp == nil {
		t.Fatalf("cancelled replay gave err=%v cp=%v", rerr, cp)
	}
	got, cp, rerr := cp.Resume(context.Background(),
		engine.Source(plan.Source(engine.SliceSource(events), func() {})))
	if rerr != nil || cp != nil {
		t.Fatalf("resume: %v (checkpoint %v)", rerr, cp)
	}
	for i := range want {
		for _, d := range DiffResults(got[i], want[i]) {
			t.Errorf("%s: %s", want[i].Collector, d)
		}
	}
}

// TestNoteDrops: consistent drop accounting passes; each contract
// violation — negative counts, a doubly-torn tail, untyped or costless
// drops — is reported under the drop-accounting rule.
func TestNoteDrops(t *testing.T) {
	clean := []trace.DropStats{
		{},
		{CorruptRecords: 2, BytesDropped: 40},
		{TornTail: 1, BytesDropped: 3},
		{CorruptRecords: 1, TornTail: 1, BytesDropped: 9},
	}
	for _, d := range clean {
		aud := NewAuditor()
		aud.NoteDrops("t", d)
		if vs := aud.Violations(); len(vs) != 0 {
			t.Errorf("NoteDrops(%+v) flagged: %v", d, vs[0])
		}
	}
	dirty := []trace.DropStats{
		{CorruptRecords: -1, BytesDropped: 1},
		{TornTail: 2, BytesDropped: 5},
		{BytesDropped: 10},  // untyped drop
		{CorruptRecords: 1}, // typed drop that cost nothing
	}
	for _, d := range dirty {
		aud := NewAuditor()
		aud.NoteDrops("t", d)
		if !hasRule(aud.Violations(), "drop-accounting") {
			t.Errorf("NoteDrops(%+v) passed the audit", d)
		}
	}
}
