package workload

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/sim"
)

func TestFitRecoversScale(t *testing.T) {
	// Fit(Generate(p)) must reproduce p's headline statistics: total
	// volume exactly, live mean/max within a factor, permanent
	// fraction approximately.
	src := Ghost1().Scale(0.1)
	events := src.MustGenerate()
	fitted, err := Fit(events, "refit")
	if err != nil {
		t.Fatal(err)
	}
	if fitted.TotalBytes < src.TotalBytes || fitted.TotalBytes > src.TotalBytes+8192 {
		t.Fatalf("fitted total %d, source %d", fitted.TotalBytes, src.TotalBytes)
	}
	srcLive, err := sim.Run(events, sim.Config{Mode: sim.ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	fitLive, err := sim.Run(fitted.MustGenerate(), sim.Config{Mode: sim.ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	ratio := fitLive.MemMeanBytes / srcLive.MemMeanBytes
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("fitted live mean off by %vx (src %.0f, fit %.0f)",
			ratio, srcLive.MemMeanBytes, fitLive.MemMeanBytes)
	}
}

func TestFitPermanentOnly(t *testing.T) {
	p := Profile{
		Name: "perm", ExecSeconds: 1, TotalBytes: 100 * kb, MeanObject: 64, Seed: 1,
		Classes: []Class{{Fraction: 1, Permanent: true}},
	}
	fitted, err := Fit(p.MustGenerate(), "refit")
	if err != nil {
		t.Fatal(err)
	}
	if len(fitted.Classes) != 1 || !fitted.Classes[0].Permanent {
		t.Fatalf("fitted classes: %+v", fitted.Classes)
	}
}

func TestFitChurnOnly(t *testing.T) {
	p := Profile{
		Name: "churn", ExecSeconds: 1, TotalBytes: 500 * kb, MeanObject: 64, Seed: 2,
		Classes: []Class{{Fraction: 1, MeanLife: 2 * kb}},
	}
	fitted, err := Fit(p.MustGenerate(), "refit")
	if err != nil {
		t.Fatal(err)
	}
	// Permanent fraction should be tiny (only end-of-run survivors).
	for _, c := range fitted.Classes {
		if c.Permanent && c.Fraction > 0.05 {
			t.Fatalf("churn trace fitted %.3f permanent", c.Fraction)
		}
	}
	// Short class mean within an order of magnitude of the truth.
	short := fitted.Classes[len(fitted.Classes)-2].MeanLife
	if short > 20*kb {
		t.Fatalf("short-class mean %v far from 2 KB", short)
	}
}

func TestFitEmptyTrace(t *testing.T) {
	if _, err := Fit(nil, "x"); err == nil {
		t.Fatal("empty trace fitted")
	}
}

func TestFittedProfileIsUsable(t *testing.T) {
	// End to end: fit a profile from CFRAC-like churn and run the
	// whole collector set over the regenerated trace.
	src := Cfrac().Scale(0.2)
	fitted, err := Fit(src.MustGenerate(), "cfrac-fit")
	if err != nil {
		t.Fatal(err)
	}
	events := fitted.MustGenerate()
	res, err := sim.Run(events, sim.Config{Mode: sim.ModeLive})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAlloc == 0 {
		t.Fatal("fitted profile generated nothing")
	}
}
