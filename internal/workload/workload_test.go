package workload

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range PaperProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	base := Profile{
		Name: "x", ExecSeconds: 1, TotalBytes: mb, MeanObject: 64,
		Classes: []Class{{Fraction: 1, MeanLife: kb}},
	}
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"zero total", func(p *Profile) { p.TotalBytes = 0 }},
		{"zero exec", func(p *Profile) { p.ExecSeconds = 0 }},
		{"tiny objects", func(p *Profile) { p.MeanObject = 4 }},
		{"no classes", func(p *Profile) { p.Classes = nil }},
		{"negative fraction", func(p *Profile) {
			p.Classes = []Class{{Fraction: -0.5, MeanLife: kb}, {Fraction: 1.5, MeanLife: kb}}
		}},
		{"fractions not 1", func(p *Profile) { p.Classes = []Class{{Fraction: 0.5, MeanLife: kb}} }},
		{"zero lifetime", func(p *Profile) { p.Classes = []Class{{Fraction: 1, MeanLife: 0}} }},
		{"phase class without phase", func(p *Profile) {
			p.Classes = []Class{{Fraction: 1, DieAtPhaseEnd: true}}
		}},
		{"permanent and phase", func(p *Profile) {
			p.PhaseBytes = kb
			p.Classes = []Class{{Fraction: 1, Permanent: true, DieAtPhaseEnd: true}}
		}},
	}
	for _, c := range cases {
		p := base
		p.Classes = append([]Class(nil), base.Classes...)
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid profile accepted", c.name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Cfrac().Scale(0.1)
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same profile generated different traces")
	}
}

func TestGeneratedTracesAreWellFormed(t *testing.T) {
	for _, p := range PaperProfiles() {
		p := p.Scale(0.05)
		events, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := trace.Validate(events); err != nil {
			t.Fatalf("%s: invalid trace: %v", p.Name, err)
		}
	}
}

func TestGenerateHitsTotalBytes(t *testing.T) {
	for _, p := range PaperProfiles() {
		p := p.Scale(0.05)
		events, err := p.Generate()
		if err != nil {
			t.Fatal(err)
		}
		s, err := trace.Measure(events)
		if err != nil {
			t.Fatal(err)
		}
		// Total allocation overshoots the target by at most one object.
		if s.TotalBytes < p.TotalBytes || s.TotalBytes > p.TotalBytes+8192 {
			t.Errorf("%s: total %d, want ~%d", p.Name, s.TotalBytes, p.TotalBytes)
		}
	}
}

func TestGenerateExecTimeMatchesProfile(t *testing.T) {
	p := Ghost1().Scale(0.05)
	events := p.MustGenerate()
	res, err := sim.Run(events, sim.Config{Mode: sim.ModeNoGC})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecSeconds < p.ExecSeconds*0.95 || res.ExecSeconds > p.ExecSeconds*1.05 {
		t.Errorf("exec %v s, want ~%v s", res.ExecSeconds, p.ExecSeconds)
	}
}

func TestPermanentObjectsNeverFreed(t *testing.T) {
	p := Profile{
		Name: "perm", ExecSeconds: 1, TotalBytes: 200 * kb, MeanObject: 64,
		Seed:    1,
		Classes: []Class{{Fraction: 1, Permanent: true}},
	}
	events := p.MustGenerate()
	for _, e := range events {
		if e.Kind == trace.KindFree {
			t.Fatal("permanent-only profile emitted a free")
		}
	}
}

func TestShortLivedMostlyFreed(t *testing.T) {
	p := Profile{
		Name: "churn", ExecSeconds: 1, TotalBytes: 500 * kb, MeanObject: 64,
		Seed:    2,
		Classes: []Class{{Fraction: 1, MeanLife: 2 * kb}},
	}
	s, err := trace.Measure(p.MustGenerate())
	if err != nil {
		t.Fatal(err)
	}
	if s.Frees < s.Allocs*9/10 {
		t.Errorf("only %d of %d objects freed; short-lived churn should free nearly all", s.Frees, s.Allocs)
	}
	if s.LiveBytes > s.TotalBytes/10 {
		t.Errorf("live at end %d of %d total", s.LiveBytes, s.TotalBytes)
	}
}

func TestPhaseDeathsClusterAtBoundaries(t *testing.T) {
	p := Profile{
		Name: "phased", ExecSeconds: 1, TotalBytes: 400 * kb, MeanObject: 64,
		Seed: 3, PhaseBytes: 100 * kb,
		Classes: []Class{
			{Fraction: 0.5, DieAtPhaseEnd: true},
			{Fraction: 0.5, MeanLife: kb},
		},
	}
	events := p.MustGenerate()
	// Track the live bytes of the phase class via the oracle: live
	// bytes must crash shortly after each 100 KB boundary.
	res, err := sim.Run(events, sim.Config{Mode: sim.ModeLive, RecordCurve: true})
	if err != nil {
		t.Fatal(err)
	}
	// At ~95% into a phase the phase-class holds ~45 KB; just after
	// the boundary (+ jitter) it should be near zero again.
	peak := res.LiveCurve.At(195 * kb)
	trough := res.LiveCurve.At(130 * kb)
	if peak < 2*trough {
		t.Errorf("no phase sawtooth: peak %v vs trough %v", peak, trough)
	}
}

func TestScale(t *testing.T) {
	p := Ghost1()
	q := p.Scale(0.5)
	if q.TotalBytes != p.TotalBytes/2 {
		t.Errorf("scaled total %d", q.TotalBytes)
	}
	if q.ExecSeconds != p.ExecSeconds/2 {
		t.Errorf("scaled exec %v", q.ExecSeconds)
	}
	// Original must be untouched (classes are copied).
	q.Classes[0].Fraction = 0.999
	if p.Classes[0].Fraction == 0.999 {
		t.Error("Scale aliased the class slice")
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	Ghost1().Scale(0)
}

func TestByName(t *testing.T) {
	p, err := ByName("SIS")
	if err != nil || p.Name != "SIS" {
		t.Fatalf("ByName(SIS) = %v, %v", p.Name, err)
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "GHOST(1)") {
		t.Fatalf("ByName(nope) should list profiles, got %v", err)
	}
}

func TestPaperProfilesOrderAndCount(t *testing.T) {
	ps := PaperProfiles()
	want := []string{"GHOST(1)", "GHOST(2)", "ESPRESSO(1)", "ESPRESSO(2)", "SIS", "CFRAC"}
	if len(ps) != len(want) {
		t.Fatalf("got %d profiles", len(ps))
	}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Errorf("profile %d = %s, want %s", i, p.Name, want[i])
		}
	}
}

// TestCalibrationAgainstPaperTable2 checks the substitution fidelity:
// the oracle live-byte statistics of each synthetic profile must land
// near the paper's LIVE row (Table 2), scaled here to 20% runs for
// test speed, which preserves the steady-state components and scales
// the ramp ones.
func TestCalibrationAgainstPaperTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	// Full-size targets from Table 2 (KB).
	targets := map[string]struct{ mean, max float64 }{
		"GHOST(1)":    {777, 1118},
		"GHOST(2)":    {1323, 2080},
		"ESPRESSO(1)": {89, 173},
		"ESPRESSO(2)": {160, 269},
		"SIS":         {4197, 6423},
		"CFRAC":       {10, 21},
	}
	for _, p := range PaperProfiles() {
		res, err := sim.Run(p.MustGenerate(), sim.Config{Mode: sim.ModeLive})
		if err != nil {
			t.Fatal(err)
		}
		tg := targets[p.Name]
		mean := res.MemMeanBytes / 1024
		max := res.MemMaxBytes / 1024
		if mean < tg.mean*0.6 || mean > tg.mean*1.4 {
			t.Errorf("%s: live mean %0.f KB, paper %0.f KB (outside ±40%%)", p.Name, mean, tg.mean)
		}
		if max < tg.max*0.6 || max > tg.max*1.4 {
			t.Errorf("%s: live max %0.f KB, paper %0.f KB (outside ±40%%)", p.Name, max, tg.max)
		}
	}
}

func BenchmarkGenerateGhost1Scaled(b *testing.B) {
	p := Ghost1().Scale(0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestByNameAliases(t *testing.T) {
	cases := map[string]string{
		"ghost1": "GHOST(1)", "GHOST2": "GHOST(2)",
		"espresso1": "ESPRESSO(1)", "Espresso2": "ESPRESSO(2)",
		"sis": "SIS", "cfrac": "CFRAC", " CFRAC ": "CFRAC",
		"GHOST(1)": "GHOST(1)",
	}
	for in, want := range cases {
		p, err := ByName(in)
		if err != nil {
			t.Errorf("ByName(%q): %v", in, err)
			continue
		}
		if p.Name != want {
			t.Errorf("ByName(%q) = %s, want %s", in, p.Name, want)
		}
	}
}

// TestGenerateToMatchesGenerate pins the streaming emitter to the
// collecting wrapper: same profile, same event sequence, event for
// event. Every consumer of GenerateTo (the replay engine) depends on
// this equivalence.
func TestGenerateToMatchesGenerate(t *testing.T) {
	for _, p := range PaperProfiles() {
		p := p.Scale(0.01)
		want, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: Generate: %v", p.Name, err)
		}
		var got []trace.Event
		if err := p.GenerateTo(func(e trace.Event) error {
			got = append(got, e)
			return nil
		}); err != nil {
			t.Fatalf("%s: GenerateTo: %v", p.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: streamed sequence differs from collected sequence (%d vs %d events)",
				p.Name, len(got), len(want))
		}
	}
}

// TestGenerateToStopsOnEmitError checks the emitter aborts at the
// first emit failure and returns the consumer's error unchanged.
func TestGenerateToStopsOnEmitError(t *testing.T) {
	p := Cfrac().Scale(0.01)
	stop := errors.New("consumer is full")
	n := 0
	err := p.GenerateTo(func(trace.Event) error {
		n++
		if n == 10 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("GenerateTo error = %v, want the emit error unchanged", err)
	}
	if n != 10 {
		t.Errorf("emitter produced %d events after the error, want exactly 10 calls", n)
	}
}

// TestGenerateToValidates checks the streaming path rejects invalid
// profiles before emitting anything, like Generate does.
func TestGenerateToValidates(t *testing.T) {
	p := Profile{Name: "bad"} // fails Validate: zero TotalBytes etc.
	emitted := 0
	err := p.GenerateTo(func(trace.Event) error { emitted++; return nil })
	if err == nil {
		t.Fatal("GenerateTo accepted an invalid profile")
	}
	if emitted != 0 {
		t.Errorf("GenerateTo emitted %d events from an invalid profile", emitted)
	}
}

// MustGenerate's panic contract: a profile that is not known-good at
// compile time must crash with a message naming the profile and the
// error-returning alternative, not with a bare wrapped error.
func TestMustGeneratePanicContract(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustGenerate on an invalid profile did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "broken") {
			t.Errorf("panic %q does not name the profile", msg)
		}
		if !strings.Contains(msg, "use Generate") {
			t.Errorf("panic %q does not point at Generate", msg)
		}
	}()
	Profile{Name: "broken"}.MustGenerate() // zero TotalBytes fails validation
}

// And the positive side: the built-in profiles it exists for never
// trip it.
func TestMustGenerateTotalOverPaperProfiles(t *testing.T) {
	for _, p := range PaperProfiles() {
		events := p.Scale(0.002).MustGenerate()
		if len(events) == 0 {
			t.Fatalf("%s: MustGenerate returned no events", p.Name)
		}
	}
}
