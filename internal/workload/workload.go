// Package workload generates synthetic allocation traces calibrated to
// the six program runs of the paper's evaluation (GHOST ×2, ESPRESSO
// ×2, SIS, CFRAC — Tables 5 and 6).
//
// The original experiments replayed QPT-captured malloc/free traces of
// four C programs. Those traces no longer exist, so each profile here
// reproduces the statistics the collectors actually react to: total
// allocation volume, allocation rate (execution time), the live-byte
// curve (mean and maximum), and the object-lifetime mixture that
// creates each program's characteristic behaviour — SIS retaining most
// of what it allocates, CFRAC retaining almost nothing, GHOST and
// ESPRESSO in between with the medium-lived components that make
// tenuring policy matter.
//
// A profile is a byte-weighted mixture of lifetime classes:
//
//   - permanent storage, accumulated linearly over the run (a ramp);
//   - exponentially distributed lifetimes with a class-specific mean,
//     measured on the allocation clock (bytes allocated after birth).
//
// Object sizes are log-normal around the profile mean, clamped to a
// sane range. Generation is fully deterministic for a given profile.
package workload

import (
	"container/heap"
	"fmt"
	"math"
	"strings"

	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// Class is one component of a lifetime mixture.
type Class struct {
	// Fraction of allocated bytes drawn from this class. Fractions in
	// a profile must sum to 1 within a small tolerance.
	Fraction float64
	// MeanLife is the class's mean lifetime in bytes of subsequent
	// allocation. Ignored when Permanent or DieAtPhaseEnd is set.
	MeanLife float64
	// Permanent objects are never freed.
	Permanent bool
	// DieAtPhaseEnd objects live until the end of the program phase
	// they were allocated in (plus a small exponential jitter). This
	// models pass-local data — Espresso's cube lists live for one
	// expand/irredundant/reduce pass and die together at its end,
	// which is precisely the pattern that strands tenured garbage
	// under Feedback Mediation. Requires Profile.PhaseBytes > 0.
	DieAtPhaseEnd bool
}

// Profile describes one synthetic program.
type Profile struct {
	Name        string
	Description string
	SourceLines int     // Table 6 metadata: lines of C source
	ExecSeconds float64 // Table 6: execution time on the 10 MIPS model
	TotalBytes  uint64  // Table 6: total allocation
	MeanObject  float64 // mean object size in bytes
	SigmaObject float64 // log-normal sigma for sizes
	Seed        uint64
	// PhaseBytes divides the run into fixed-length program phases on
	// the allocation clock; classes with DieAtPhaseEnd key off it.
	// Zero means no phase structure.
	PhaseBytes uint64
	Classes    []Class
}

// Validate checks profile consistency.
func (p Profile) Validate() error {
	if p.TotalBytes == 0 {
		return fmt.Errorf("workload %s: zero TotalBytes", p.Name)
	}
	if p.ExecSeconds <= 0 {
		return fmt.Errorf("workload %s: non-positive ExecSeconds", p.Name)
	}
	if p.MeanObject < 16 {
		return fmt.Errorf("workload %s: MeanObject %v too small", p.Name, p.MeanObject)
	}
	if len(p.Classes) == 0 {
		return fmt.Errorf("workload %s: no lifetime classes", p.Name)
	}
	sum := 0.0
	for i, c := range p.Classes {
		if c.Fraction < 0 {
			return fmt.Errorf("workload %s: class %d negative fraction", p.Name, i)
		}
		if c.Permanent && c.DieAtPhaseEnd {
			return fmt.Errorf("workload %s: class %d both permanent and phase-bound", p.Name, i)
		}
		if c.DieAtPhaseEnd && p.PhaseBytes == 0 {
			return fmt.Errorf("workload %s: class %d dies at phase end but PhaseBytes is 0", p.Name, i)
		}
		if !c.Permanent && !c.DieAtPhaseEnd && c.MeanLife <= 0 {
			return fmt.Errorf("workload %s: class %d non-positive lifetime", p.Name, i)
		}
		sum += c.Fraction
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("workload %s: class fractions sum to %v, want 1", p.Name, sum)
	}
	return nil
}

// Scale returns a copy with total allocation (and thus run length)
// multiplied by f, preserving rates and the lifetime mixture. Useful
// for fast tests. Lifetimes are unchanged: they are already expressed
// on the allocation clock.
func (p Profile) Scale(f float64) Profile {
	if f <= 0 {
		panic("workload: Scale requires f > 0")
	}
	q := p
	q.TotalBytes = uint64(float64(p.TotalBytes) * f)
	q.ExecSeconds = p.ExecSeconds * f
	// Phases are program structure (passes over the input), so a
	// shorter run has proportionally shorter passes.
	q.PhaseBytes = uint64(float64(p.PhaseBytes) * f)
	q.Classes = append([]Class(nil), p.Classes...)
	return q
}

// death is a scheduled free on the allocation clock.
type death struct {
	clock uint64 // allocation-clock time of death
	id    trace.ObjectID
}

type deathHeap []death

func (h deathHeap) Len() int            { return len(h) }
func (h deathHeap) Less(i, j int) bool  { return h[i].clock < h[j].clock }
func (h deathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deathHeap) Push(x interface{}) { *h = append(*h, x.(death)) }
func (h *deathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Generate produces the profile's full event trace deterministically.
// It is a thin collector over GenerateTo; replay paths that do not
// need the slice (the evaluation engine, streaming simulation) should
// call GenerateTo directly so paper-scale traces never materialize.
func (p Profile) Generate() ([]trace.Event, error) {
	// Rough capacity estimate: allocs + frees.
	estObjects := int(float64(p.TotalBytes)/math.Max(p.MeanObject, 1)) + 16
	events := make([]trace.Event, 0, 2*estObjects)
	err := p.GenerateTo(func(e trace.Event) error {
		events = append(events, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return events, nil
}

// GenerateTo streams the profile's event trace, in order, to emit —
// one event at a time, so the trace never exists in memory at once.
// The sequence is identical to Generate's for the same profile.
// Generation stops at the first emit error, which is returned
// unchanged (wrapped errors pass errors.Is through).
func (p Profile) GenerateTo(emit func(trace.Event) error) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r := xrand.New(p.Seed)
	// Pre-compute class selection thresholds.
	cum := make([]float64, len(p.Classes))
	acc := 0.0
	for i, c := range p.Classes {
		acc += c.Fraction
		cum[i] = acc
	}
	// Log-normal size parameters so that E[size] = MeanObject.
	sigma := p.SigmaObject
	if sigma == 0 { //dtbvet:ignore floatexact -- exact zero is the unset-parameter sentinel; no arithmetic feeds it
		sigma = 0.8
	}
	mu := math.Log(p.MeanObject) - sigma*sigma/2

	instrPerByte := p.ExecSeconds * 10e6 / float64(p.TotalBytes)

	var (
		clock     uint64         // bytes allocated so far
		nextID    trace.ObjectID = 1
		deaths    deathHeap
		nextPhase uint64
	)
	if p.PhaseBytes > 0 {
		nextPhase = p.PhaseBytes
	}
	instrAt := func(c uint64) uint64 { return uint64(float64(c) * instrPerByte) }

	for clock < p.TotalBytes {
		// Emit any deaths due before the next allocation.
		for len(deaths) > 0 && deaths[0].clock <= clock {
			d := heap.Pop(&deaths).(death)
			if err := emit(trace.Free(d.id, instrAt(clock))); err != nil {
				return err
			}
		}
		// Phase boundaries are program quiescent points; mark them so
		// opportunistic scheduling can key off them. The mark lands a
		// little after the boundary, past the death jitter, so the
		// pass-local storage is already dead when a collector reacts.
		if nextPhase > 0 && clock >= nextPhase+16*kb {
			if err := emit(trace.Mark("phase", instrAt(clock))); err != nil {
				return err
			}
			nextPhase += p.PhaseBytes
		}
		size := uint64(math.Max(16, math.Min(8192, r.LogNormal(mu, sigma))))
		id := nextID
		nextID++
		clock += size
		if err := emit(trace.Alloc(id, size, instrAt(clock))); err != nil {
			return err
		}
		// Pick the class and schedule death.
		u := r.Float64()
		ci := 0
		for ci < len(cum)-1 && u >= cum[ci] {
			ci++
		}
		c := p.Classes[ci]
		switch {
		case c.Permanent:
			// never freed
		case c.DieAtPhaseEnd:
			phaseEnd := (clock/p.PhaseBytes + 1) * p.PhaseBytes
			jitter := uint64(r.Exp(4 * kb))
			heap.Push(&deaths, death{clock: phaseEnd + jitter, id: id})
		default:
			life := uint64(r.Exp(c.MeanLife)) + 1
			heap.Push(&deaths, death{clock: clock + life, id: id})
		}
	}
	// Flush deaths that fall within the run; objects scheduled to die
	// after the end stay live, like a real program exiting.
	for len(deaths) > 0 && deaths[0].clock <= clock {
		d := heap.Pop(&deaths).(death)
		if err := emit(trace.Free(d.id, instrAt(clock))); err != nil {
			return err
		}
	}
	return nil
}

// MustGenerate is Generate for known-good built-in profiles.
//
// Panic contract: it panics when the profile fails validation or
// generation. It exists for the built-in paper profiles and test
// fixtures, whose validity is fixed at compile time; hand-assembled
// or fitted profiles must use Generate and handle the error.
func (p Profile) MustGenerate() []trace.Event {
	events, err := p.Generate()
	if err != nil {
		panic(fmt.Sprintf("workload: MustGenerate(%s): %v — for profiles not known-good at compile time use Generate", p.Name, err))
	}
	return events
}

const (
	kb = 1024
	mb = 1024 * 1024
)

// The six paper runs. Class mixtures are calibrated so the simulated
// LIVE and No-GC rows land near Table 2's, and totals/rates near
// Table 6's; EXPERIMENTS.md records the measured values.

// Ghost1 models GhostScript interpreting a large reference manual.
func Ghost1() Profile {
	return Profile{
		Name:        "GHOST(1)",
		Description: "GhostScript 2.1 interpreting a large reference manual (NODISPLAY)",
		SourceLines: 29500,
		ExecSeconds: 31,
		TotalBytes:  49 * mb,
		MeanObject:  96,
		Seed:        0x6705701,
		Classes: []Class{
			// Interpreter state accumulating for the whole run (fonts,
			// dictionaries), a slowly-dying pool, and fast churn. The
			// mixture is solved from Table 2 (live mean/max 777/1118),
			// Table 3 (Fixed1 median pause ~31 ms => ~15 KB of young
			// survivors per 1 MB scavenge interval) and Table 2's
			// Fixed1-vs-Full gap (~390 KB of storage dying after
			// tenure over the run).
			{Fraction: 0.0139, Permanent: true},
			{Fraction: 0.0150, MeanLife: 29 * 1024 * kb},
			{Fraction: 0.9711, MeanLife: 15 * kb},
		},
	}
}

// Ghost2 models GhostScript interpreting a masters thesis.
func Ghost2() Profile {
	return Profile{
		Name:        "GHOST(2)",
		Description: "GhostScript 2.1 interpreting a masters thesis (NODISPLAY)",
		SourceLines: 29500,
		ExecSeconds: 71,
		TotalBytes:  88 * mb,
		MeanObject:  96,
		Seed:        0x6705702,
		Classes: []Class{
			{Fraction: 0.0172, Permanent: true},
			{Fraction: 0.0115, MeanLife: 48 * 1024 * kb},
			{Fraction: 0.9713, MeanLife: 14 * kb},
		},
	}
}

// Espresso1 models Espresso minimizing a small PLA example.
func Espresso1() Profile {
	return Profile{
		Name:        "ESPRESSO(1)",
		Description: "Espresso 2.3 logic optimization, small release example",
		SourceLines: 15500,
		ExecSeconds: 62,
		TotalBytes:  15 * mb,
		MeanObject:  64,
		Seed:        0xE5941,
		PhaseBytes:  2 * mb,
		Classes: []Class{
			{Fraction: 0.0097, Permanent: true},
			{Fraction: 0.0100, DieAtPhaseEnd: true},
			{Fraction: 0.9803, MeanLife: 6 * kb},
		},
	}
}

// Espresso2 models Espresso on a larger input.
func Espresso2() Profile {
	return Profile{
		Name:        "ESPRESSO(2)",
		Description: "Espresso 2.3 logic optimization, large release example",
		SourceLines: 15500,
		ExecSeconds: 240,
		TotalBytes:  104 * mb,
		MeanObject:  64,
		Seed:        0xE5942,
		PhaseBytes:  4 * mb,
		Classes: []Class{
			// The medium-lived pool (~2.5 MB mean life) is what makes
			// ESPRESSO(2) the paper's showcase: those objects tenure
			// under any pause-limited policy and die soon after, so
			// FeedMed strands them while DtbFM's backward boundary
			// moves recover them (§6.2).
			{Fraction: 0.0020, Permanent: true},
			{Fraction: 0.0200, DieAtPhaseEnd: true},
			{Fraction: 0.9780, MeanLife: 5 * kb},
		},
	}
}

// Sis models SIS verifying a synthesized circuit with random vectors;
// most allocated storage stays live for the whole run.
func Sis() Profile {
	return Profile{
		Name:        "SIS",
		Description: "SIS 1.1 circuit verification (iscas89/s5378.blif, 1024 random vectors)",
		SourceLines: 172000,
		ExecSeconds: 30,
		TotalBytes:  15 * mb,
		MeanObject:  96,
		Seed:        0x515,
		Classes: []Class{
			{Fraction: 0.30, Permanent: true},
			{Fraction: 0.45, MeanLife: 5600 * kb},
			{Fraction: 0.25, MeanLife: 30 * kb},
		},
	}
}

// Cfrac models continued-fraction factoring; almost nothing survives.
func Cfrac() Profile {
	return Profile{
		Name:        "CFRAC",
		Description: "Cfrac factoring a 25-digit product of two primes",
		SourceLines: 6000,
		ExecSeconds: 8,
		TotalBytes:  3 * mb,
		MeanObject:  48,
		Seed:        0xCF8AC,
		Classes: []Class{
			{Fraction: 0.002, Permanent: true},
			{Fraction: 0.998, MeanLife: 8 * kb},
		},
	}
}

// PaperProfiles returns the six evaluation runs in table order.
func PaperProfiles() []Profile {
	return []Profile{Ghost1(), Ghost2(), Espresso1(), Espresso2(), Sis(), Cfrac()}
}

// ByName returns the named profile or an error listing the available
// names. Lookup is case-insensitive and accepts shell-friendly
// aliases: "ghost1", "ghost2", "espresso1", "espresso2", "sis",
// "cfrac".
func ByName(name string) (Profile, error) {
	canon := strings.ToUpper(strings.TrimSpace(name))
	switch canon {
	case "GHOST1":
		canon = "GHOST(1)"
	case "GHOST2":
		canon = "GHOST(2)"
	case "ESPRESSO1":
		canon = "ESPRESSO(1)"
	case "ESPRESSO2":
		canon = "ESPRESSO(2)"
	}
	for _, p := range PaperProfiles() {
		if p.Name == canon {
			return p, nil
		}
	}
	names := make([]string, 0, 6)
	for _, p := range PaperProfiles() {
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q (have %v)", name, names)
}
