package workload

import (
	"fmt"
	"math"

	"github.com/dtbgc/dtbgc/internal/trace"
)

// Fit derives a Profile from a recorded trace — the inverse of
// Generate, and the path a downstream user takes to model their own
// program: capture a malloc/free trace (e.g. with mheap's recorder),
// Fit it, and study collector behaviour on scaled or perturbed
// variants of the fitted profile.
//
// The fit is a three-class mixture, matching how the built-in paper
// profiles are expressed: the unfree'd byte fraction becomes a
// permanent ramp, and the observed deaths split at their byte-weighted
// median lifetime into a short-lived and a long-lived exponential
// class whose means are the respective halves' means. Coarse by
// design — it reproduces the live-curve scale and the tenuring-relevant
// lifetime masses, not fine temporal structure (no phases).
func Fit(events []trace.Event, name string) (Profile, error) {
	ls, err := trace.MeasureLifetimes(events)
	if err != nil {
		return Profile{}, err
	}
	if ls.TotalBytes == 0 {
		return Profile{}, fmt.Errorf("workload: cannot fit an empty trace")
	}
	var lastInstr uint64
	for _, e := range events {
		lastInstr = e.Instr
	}
	execSeconds := float64(lastInstr) / 10e6 // the 10 MIPS model clock
	if execSeconds <= 0 {
		execSeconds = 1
	}

	permFrac := ls.PermanentFraction()
	freedFrac := 1 - permFrac

	shortMean := ls.MeanLifetimeOfRange(0, 0.5)
	longMean := ls.MeanLifetimeOfRange(0.5, 1)
	if shortMean < 1 {
		shortMean = 1
	}
	if longMean < shortMean {
		longMean = shortMean
	}

	meanObj := math.Max(16, ls.MeanObjectBytes)
	p := Profile{
		Name:        name,
		Description: "fitted from a recorded trace",
		ExecSeconds: execSeconds,
		TotalBytes:  ls.TotalBytes,
		MeanObject:  meanObj,
		Seed:        1,
	}
	switch {
	case freedFrac <= 0:
		p.Classes = []Class{{Fraction: 1, Permanent: true}}
	case permFrac < 1e-6:
		p.Classes = []Class{
			{Fraction: 0.5, MeanLife: shortMean},
			{Fraction: 0.5, MeanLife: longMean},
		}
	default:
		p.Classes = []Class{
			{Fraction: permFrac, Permanent: true},
			{Fraction: freedFrac / 2, MeanLife: shortMean},
			{Fraction: freedFrac / 2, MeanLife: longMean},
		}
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("workload: fit produced an invalid profile: %w", err)
	}
	return p, nil
}
