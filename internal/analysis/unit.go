package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Unit is the whole-load view shared by every Pass of one RunAnalyzers
// call: the package set, a call-graph approximation over it, and the
// derived error-sink set. Everything is built lazily and exactly once.
type Unit struct {
	Pkgs []*Package

	once  sync.Once
	graph *CallGraph
	sinks map[*types.Func]string // sink function -> why it is one
}

// NewUnit wraps a package load.
func NewUnit(pkgs []*Package) *Unit { return &Unit{Pkgs: pkgs} }

// CallGraph returns the unit's call-graph approximation.
func (u *Unit) CallGraph() *CallGraph {
	u.build()
	return u.graph
}

// build constructs the call graph and runs the sink fixpoint.
func (u *Unit) build() {
	u.once.Do(func() {
		u.graph = buildCallGraph(u.Pkgs)
		u.sinks = propagateSinks(u.graph)
	})
}

// CallGraph is the package-level call-graph approximation: static
// call edges only. Calls through interface values resolve to the
// interface method object (good enough for name/signature checks);
// calls through function-typed variables stay unresolved.
type CallGraph struct {
	callees map[*types.Func][]*types.Func
	callers map[*types.Func][]*types.Func
	decls   map[*types.Func]*ast.FuncDecl
	declPkg map[*types.Func]*Package
}

// Decl returns the syntax of fn if it is declared in the analyzed
// packages, else nil — the "can I look at the body" test.
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// DeclPackage returns the package declaring fn, or nil.
func (g *CallGraph) DeclPackage(fn *types.Func) *Package { return g.declPkg[fn] }

// Callees returns the functions fn calls directly.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.callees[fn] }

// Callers returns the functions calling fn directly.
func (g *CallGraph) Callers(fn *types.Func) []*types.Func { return g.callers[fn] }

func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		callees: make(map[*types.Func][]*types.Func),
		callers: make(map[*types.Func][]*types.Func),
		decls:   make(map[*types.Func]*ast.FuncDecl),
		declPkg: make(map[*types.Func]*Package),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[fn] = fd
				g.declPkg[fn] = pkg
				seen := make(map[*types.Func]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, isCall := n.(*ast.CallExpr)
					if !isCall {
						return true
					}
					callee := calleeFunc(pkg.Info, call)
					if callee == nil || seen[callee] {
						return true
					}
					seen[callee] = true
					g.callees[fn] = append(g.callees[fn], callee)
					g.callers[callee] = append(g.callers[callee], fn)
					return true
				})
			}
		}
	}
	return g
}

// --- error-sink classification (shared by errsink) ---

// baseSinkNames are the flush-shaped method names whose error result
// is where buffered-I/O failure surfaces.
var baseSinkNames = map[string]bool{"Close": true, "Flush": true, "Sync": true}

// writeSinkNames are the write-shaped names, recognized when the last
// result is an error.
var writeSinkNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "ReadFrom": true,
}

// neverFails lists receiver types whose write/flush errors are
// documented to be always nil; flagging them is noise, not safety.
var neverFails = map[string]map[string]bool{
	"bytes":   {"Buffer": true},
	"strings": {"Builder": true},
	"hash":    {"Hash": true, "Hash32": true, "Hash64": true},
}

// isBaseSink classifies a function by name and signature alone, so it
// works for stdlib functions and interface methods without a body.
func isBaseSink(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return false
	}
	if !baseSinkNames[fn.Name()] && !writeSinkNames[fn.Name()] {
		return false
	}
	if recv := sig.Recv(); recv != nil && isNeverFailingRecv(recv.Type()) {
		return false
	}
	return true
}

func isNeverFailingRecv(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	byName := neverFails[named.Obj().Pkg().Path()]
	return byName != nil && byName[named.Obj().Name()]
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// propagateSinks runs the call-graph fixpoint that turns the name-
// based base set into the module-wide sink set: a declared function
// whose last result is an error and whose body calls a sink is itself
// a sink — its error carries the inner Close/Flush/Write failure, so
// discarding it at ANY call depth reintroduces the silent-truncation
// bug. The fixpoint climbs wrappers of wrappers until stable.
func propagateSinks(g *CallGraph) map[*types.Func]string {
	// The fixpoint visits functions in name order: with map order, a
	// wrapper calling two sinks could record either one as its "why"
	// depending on which round classified them — same verdicts, flaky
	// messages. Determinism is this module's own house rule.
	ordered := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls { //dtbvet:ignore determinism -- ordered is sorted by FullName on the next lines
		ordered = append(ordered, fn)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].FullName() < ordered[j].FullName() })

	sinks := make(map[*types.Func]string)
	// Seed with the declared functions that are base sinks themselves
	// (an Output.Close wrapper is found by name before any edges).
	for _, fn := range ordered {
		if isBaseSink(fn) {
			sinks[fn] = "is a " + fn.Name() + " sink"
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range ordered {
			if _, done := sinks[fn]; done {
				continue
			}
			decl := g.decls[fn]
			if decl.Body == nil {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			res := sig.Results()
			if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
				continue
			}
			for _, callee := range g.callees[fn] {
				why, isWrapped := sinks[callee]
				if !isWrapped && isBaseSink(callee) {
					isWrapped, why = true, "calls "+callee.Name()
				}
				if isWrapped {
					sinks[fn] = "wraps " + callee.Name() + " (" + rootCause(why) + ")"
					changed = true
					break
				}
			}
		}
	}
	return sinks
}

// rootCause keeps the chain description short: "wraps run (wraps
// WriteTo (calls Close))" collapses to the innermost cause.
func rootCause(why string) string {
	for strings.Contains(why, "(") {
		open := strings.Index(why, "(")
		why = strings.TrimSuffix(why[open+1:], ")")
	}
	return why
}

// SinkReason classifies fn: a non-empty reason means discarding its
// error result loses an I/O failure. Interface methods and stdlib
// functions classify by name/signature; declared functions also by
// the wrapper fixpoint.
func (u *Unit) SinkReason(fn *types.Func) string {
	u.build()
	if why, ok := u.sinks[fn]; ok {
		return why
	}
	if isBaseSink(fn) {
		return "is a " + fn.Name() + " sink"
	}
	return ""
}
