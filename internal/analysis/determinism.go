package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism guards bit-for-bit repeatability: paper-shape checks
// (ShapeCheck), benchmark trajectories and any future learned-policy
// training data are only trustworthy if a run is a pure function of
// its inputs. It flags, anywhere in simulation or rendering code:
//
//   - wall-clock reads (time.Now, time.Since, time.Until): simulated
//     time comes from the trace's instruction clock, never the host;
//   - importing math/rand or math/rand/v2: randomness must come from
//     internal/xrand with an explicit seed so runs replay;
//   - range over a map: iteration order varies run to run, and a map
//     range feeding output or collection order is the classic silent
//     nondeterminism bug. Order-insensitive folds (pure sums) earn an
//     explicit //dtbvet:ignore with the reason stated.
//
// Serving packages (servingScopes) are exempt from the wall-clock
// rule alone: a daemon's latency metrics are wall time by definition.
// Everything else stays banned there too.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "simulation and rendering code must be bit-for-bit deterministic",
	Run:  runDeterminism,
}

// wallClockFuncs are the time-package functions that read the host
// clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// servingScopes are package-path suffixes exempt from the wall-clock
// rule ONLY: the daemon's service times and uptime are real time by
// nature, and no simulation result flows from them (the daemon's
// bit-identity tests pin that). The math/rand and map-range bans
// still apply there — serving code has no more business with
// nondeterministic iteration than simulation code does.
var servingScopes = []string{"internal/daemon", "cmd/dtbd"}

func runDeterminism(pass *Pass) {
	info := pass.TypesInfo()
	wallClockExempt := false
	for _, suffix := range servingScopes {
		if hasPathSuffix(pass.Pkg.PkgPath, suffix) {
			wallClockExempt = true
			break
		}
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: use internal/xrand with an explicit seed so runs are replayable", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(info, v); !wallClockExempt && fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
					pass.Reportf(v.Pos(), "time.%s reads the wall clock: simulated time comes from the trace's instruction clock", fn.Name())
				}
			case *ast.RangeStmt:
				t := info.TypeOf(v.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(v.Pos(), "range over map %s iterates in nondeterministic order: sort the keys, or annotate an order-insensitive fold with //dtbvet:ignore", typeLabel(t))
				}
			}
			return true
		})
	}
}

func typeLabel(t types.Type) string {
	if named, ok := t.(*types.Named); ok && named.Obj() != nil {
		return named.Obj().Name()
	}
	return t.String()
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
