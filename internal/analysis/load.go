package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
//
// A test variant (IsTest) exposes only the _test.go files through
// Files — analyzers report on test code without re-reporting the
// shipped files — while Info and Types cover the whole augmented
// package, so test code that touches shipped declarations resolves.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	IsTest  bool
}

// Loader parses and type-checks module packages with no tooling
// beyond the standard library: module-internal imports are resolved
// against the module directory and checked from source; standard-
// library imports are delegated to go/importer's source importer.
// Results are memoized, so shared dependencies type-check once.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset   *token.FileSet
	std    types.ImporterFrom
	loaded map[string]*Package // by import path
	stack  []string            // import cycle detection
}

// NewLoader returns a Loader for the module rooted at dir. The module
// path is read from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		loaded:     make(map[string]*Package),
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// LoadModule loads every package in the module (skipping testdata,
// hidden directories and test files), sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		ipath := l.ModulePath
		if rel != "." {
			ipath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, ipath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadModuleWithTests loads every package in the module plus, for each
// directory that has _test.go files, its test variants: the in-package
// variant (base files re-checked together with the test files, Files
// restricted to the test files) and the external _test package. This
// is what lets errsink enforce the cliio discipline on tests and
// examples, not just shipped code.
func (l *Loader) LoadModuleWithTests() ([]*Package, error) {
	base, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(base))
	for _, pkg := range base {
		out = append(out, pkg)
		tests, err := l.loadTestVariants(pkg)
		if err != nil {
			return nil, err
		}
		out = append(out, tests...)
	}
	return out, nil
}

// loadTestVariants parses the _test.go files next to base and
// type-checks up to two test packages: the augmented in-package
// variant and the external <name>_test package. Directories without
// test files yield nothing.
func (l *Loader) loadTestVariants(base *Package) ([]*Package, error) {
	key := base.PkgPath + " [test]"
	if pkg, ok := l.loaded[key]; ok {
		if pkg == nil {
			return nil, nil
		}
		ext, hasExt := l.loaded[base.PkgPath+" [xtest]"]
		if hasExt {
			return []*Package{pkg, ext}, nil
		}
		return []*Package{pkg}, nil
	}

	ents, err := os.ReadDir(base.Dir)
	if err != nil {
		return nil, err
	}
	baseName := base.Types.Name()
	var inPkg, external []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(base.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if f.Name.Name == baseName+"_test" {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}

	var out []*Package
	if len(inPkg) > 0 {
		// Re-check the base files together with the test files so test
		// code sees unexported declarations; report only on the tests.
		pkg, err := l.check(base.PkgPath, append(append([]*ast.File{}, base.Files...), inPkg...))
		if err != nil {
			return nil, err
		}
		tv := &Package{PkgPath: base.PkgPath, Dir: base.Dir, Fset: l.fset, Files: inPkg, Types: pkg.Types, Info: pkg.Info, IsTest: true}
		l.loaded[key] = tv
		out = append(out, tv)
	} else {
		l.loaded[key] = nil
	}
	if len(external) > 0 {
		pkg, err := l.check(base.PkgPath+"_test", external)
		if err != nil {
			return nil, err
		}
		xv := &Package{PkgPath: base.PkgPath + "_test", Dir: base.Dir, Fset: l.fset, Files: external, Types: pkg.Types, Info: pkg.Info, IsTest: true}
		l.loaded[base.PkgPath+" [xtest]"] = xv
		out = append(out, xv)
	}
	return out, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. Test files are excluded: the suite guards
// shipped code paths.
func (l *Loader) LoadDir(dir, ipath string) (*Package, error) {
	if pkg, ok := l.loaded[ipath]; ok {
		return pkg, nil
	}
	for _, active := range l.stack {
		if active == ipath {
			return nil, fmt.Errorf("analysis: import cycle through %s", ipath)
		}
	}
	l.stack = append(l.stack, ipath)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	pkg, err := l.check(ipath, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	l.loaded[ipath] = pkg
	return pkg, nil
}

// check type-checks one file set under the given import path.
func (l *Loader) check(ipath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(ipath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", ipath, err)
	}
	return &Package{PkgPath: ipath, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// Import implements types.Importer for the type-checker's benefit:
// module-internal paths load from the module tree, everything else is
// assumed to be standard library and goes to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if rest, ok := strings.CutPrefix(path, l.ModulePath); ok && (rest == "" || strings.HasPrefix(rest, "/")) {
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(rest, "/")))
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleDir, 0)
}
