package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// EventSwitch guards the trace event model's extension point: every
// switch over trace.Kind must either enumerate all declared kinds or
// carry a default clause. Without this, adding a fifth event kind
// silently falls through the codec, the simulator's Feed loop, or the
// lifetime/forward analyses, producing traces that decode as truncated
// or simulations that drop events — no compile error, no test failure.
var EventSwitch = &Analyzer{
	Name: "eventswitch",
	Doc:  "switches over trace.Kind must be exhaustive or have a default clause",
	Run:  runEventSwitch,
}

func runEventSwitch(pass *Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := info.TypeOf(sw.Tag)
			if tagType == nil || !isTraceKind(tagType) {
				return true
			}
			checkKindSwitch(pass, info, sw, tagType)
			return true
		})
	}
}

func checkKindSwitch(pass *Pass, info *types.Info, sw *ast.SwitchStmt, kind types.Type) {
	declared := kindConstants(kind)
	if len(declared) == 0 {
		return
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // default clause: new kinds reach it explicitly
		}
		for _, e := range clause.List {
			tv, ok := info.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for _, c := range declared {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Pos(), "switch over trace.Kind has no default and misses %s: a new event kind would be silently dropped", strings.Join(missing, ", "))
	}
}

// kindConstants returns every constant of the Kind type declared in
// its defining package, sorted by name.
func kindConstants(kind types.Type) []*types.Const {
	named, ok := kind.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), kind) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
