package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The loader is shared across tests so the standard library and the
// module's internal packages type-check once.
var (
	loaderOnce sync.Once
	sharedLdr  *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		sharedLdr, loaderErr = NewLoader(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLdr
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := fixtureLoader(t).LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// lineKey addresses one source line of a fixture.
type lineKey struct {
	file string
	line int
}

// wantMarkers extracts the "// want: <substring>" expectations from
// every Go file in dir, keyed by file and line.
func wantMarkers(t *testing.T, dir string) map[lineKey]string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	wants := make(map[lineKey]string)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if _, after, ok := strings.Cut(line, "// want: "); ok {
				wants[lineKey{path, i + 1}] = strings.TrimSpace(after)
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over one fixture package and compares
// the diagnostics against the fixture's want markers: every marked
// line must produce a matching diagnostic, and no diagnostic may land
// on an unmarked line. It returns the diagnostics for extra checks.
func checkFixture(t *testing.T, name string, a *Analyzer) []Diagnostic {
	t.Helper()
	pkg := loadFixture(t, name)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	wants := wantMarkers(t, filepath.Join("testdata", "src", name))
	for _, d := range diags {
		if _, ok := wants[lineKey{d.Pos.Filename, d.Pos.Line}]; !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, substr := range wants {
		found := false
		for _, d := range diags {
			if d.Pos.Filename == k.file && d.Pos.Line == k.line && strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic containing %q; got %v", k.file, k.line, substr, diags)
		}
	}
	return diags
}

func TestAllocClockPositive(t *testing.T) {
	if diags := checkFixture(t, "allocclockbad", AllocClock); len(diags) == 0 {
		t.Fatal("allocclock reported nothing on the bad fixture")
	}
}

func TestAllocClockNegative(t *testing.T) {
	if diags := checkFixture(t, "allocclockgood", AllocClock); len(diags) != 0 {
		t.Fatalf("allocclock flagged the clean fixture: %v", diags)
	}
}

func TestPolicyPurityPositive(t *testing.T) {
	if diags := checkFixture(t, "puritybad", PolicyPurity); len(diags) == 0 {
		t.Fatal("policypurity reported nothing on the bad fixture")
	}
}

func TestPolicyPurityNegative(t *testing.T) {
	if diags := checkFixture(t, "puritygood", PolicyPurity); len(diags) != 0 {
		t.Fatalf("policypurity flagged the clean fixture: %v", diags)
	}
}

func TestDeterminismPositive(t *testing.T) {
	if diags := checkFixture(t, "determinismbad", Determinism); len(diags) == 0 {
		t.Fatal("determinism reported nothing on the bad fixture")
	}
}

// TestDeterminismNegative also exercises the ignore directive: the
// fixture's map range is suppressed by a reasoned //dtbvet:ignore.
func TestDeterminismNegative(t *testing.T) {
	if diags := checkFixture(t, "determinismgood", Determinism); len(diags) != 0 {
		t.Fatalf("determinism flagged the clean fixture: %v", diags)
	}
}

func TestEventSwitchPositive(t *testing.T) {
	if diags := checkFixture(t, "eventswitchbad", EventSwitch); len(diags) == 0 {
		t.Fatal("eventswitch reported nothing on the bad fixture")
	}
}

func TestEventSwitchNegative(t *testing.T) {
	if diags := checkFixture(t, "eventswitchgood", EventSwitch); len(diags) != 0 {
		t.Fatalf("eventswitch flagged the clean fixture: %v", diags)
	}
}

// TestBareDirectiveReported: an ignore directive without a reason
// suppresses the underlying diagnostic but is itself reported.
func TestBareDirectiveReported(t *testing.T) {
	pkg := loadFixture(t, "baredirective")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism})
	if len(diags) != 1 {
		t.Fatalf("want exactly the directive diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Analyzer != "dtbvet" || !strings.Contains(d.Message, "needs a reason") {
		t.Fatalf("unexpected diagnostic: %s", d)
	}
}

// TestModuleClean is the self-test dtbvet runs in CI: the repository
// itself must be clean under the full suite.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := fixtureLoader(t).LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadModule found only %d packages; the walk is broken", len(pkgs))
	}
	if diags := RunAnalyzers(pkgs, All()); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

func TestKBNamed(t *testing.T) {
	for _, tc := range []struct {
		name string
		want bool
	}{
		{"budgetKB", true},
		{"mbFree", true},
		{"kb_per_op", true},
		{"heapMB2", true},
		{"Kilobytes", true},
		{"megabytes", true},
		{"memBytes", false}, // "mb" inside a word names no unit
		{"numBytes", false},
		{"climb", false},
		{"rawBytes", false},
	} {
		if got := kbNamed(tc.name); got != tc.want {
			t.Errorf("kbNamed(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestParseVerbs(t *testing.T) {
	verbs := parseVerbs("at %d: %6.2f KB (%s)")
	if len(verbs) != 3 {
		t.Fatalf("want 3 verbs, got %+v", verbs)
	}
	if verbs[0].argIndex != 0 || verbs[1].argIndex != 1 || verbs[2].argIndex != 2 {
		t.Fatalf("bad operand indexes: %+v", verbs)
	}
	if !labelledKBMB(verbs[1].trailing) {
		t.Errorf("verb %+v should read as KB-labelled", verbs[1])
	}
	if labelledKBMB(verbs[0].trailing) || labelledKBMB(verbs[2].trailing) {
		t.Errorf("unlabelled verbs misread: %+v", verbs)
	}

	// %% does not consume an operand; * consumes one.
	verbs = parseVerbs("100%% done, %*d MB")
	if len(verbs) != 1 || verbs[0].argIndex != 1 {
		t.Fatalf("star-width handling broken: %+v", verbs)
	}
	if !labelledKBMB(verbs[0].trailing) {
		t.Errorf("MB label missed in %+v", verbs[0])
	}
}

func TestLabelledKBMB(t *testing.T) {
	for _, tc := range []struct {
		trailing string
		want     bool
	}{
		{" KB", true},
		{"MB", true},
		{" KB/s", true},
		{" KB remaining", true},
		{" KByteshire", false}, // longer word, not a unit
		{" bytes", false},
		{"", false},
	} {
		if got := labelledKBMB(tc.trailing); got != tc.want {
			t.Errorf("labelledKBMB(%q) = %v, want %v", tc.trailing, got, tc.want)
		}
	}
}
