package analysis

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The loader is shared across tests so the standard library and the
// module's internal packages type-check once.
var (
	loaderOnce sync.Once
	sharedLdr  *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		sharedLdr, loaderErr = NewLoader(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLdr
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := fixtureLoader(t).LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// lineKey addresses one source line of a fixture.
type lineKey struct {
	file string
	line int
}

// wantMarkers extracts the "// want: <substring>" expectations from
// every Go file in dir, keyed by file and line.
func wantMarkers(t *testing.T, dir string) map[lineKey]string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	wants := make(map[lineKey]string)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if _, after, ok := strings.Cut(line, "// want: "); ok {
				wants[lineKey{path, i + 1}] = strings.TrimSpace(after)
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over one fixture package and compares
// the diagnostics against the fixture's want markers: every marked
// line must produce a matching diagnostic, and no diagnostic may land
// on an unmarked line. It returns the diagnostics for extra checks.
func checkFixture(t *testing.T, name string, a *Analyzer) []Diagnostic {
	t.Helper()
	pkg := loadFixture(t, name)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	wants := wantMarkers(t, filepath.Join("testdata", "src", name))
	for _, d := range diags {
		if _, ok := wants[lineKey{d.Pos.Filename, d.Pos.Line}]; !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, substr := range wants {
		found := false
		for _, d := range diags {
			if d.Pos.Filename == k.file && d.Pos.Line == k.line && strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic containing %q; got %v", k.file, k.line, substr, diags)
		}
	}
	return diags
}

func TestAllocClockPositive(t *testing.T) {
	if diags := checkFixture(t, "allocclockbad", AllocClock); len(diags) == 0 {
		t.Fatal("allocclock reported nothing on the bad fixture")
	}
}

func TestAllocClockNegative(t *testing.T) {
	if diags := checkFixture(t, "allocclockgood", AllocClock); len(diags) != 0 {
		t.Fatalf("allocclock flagged the clean fixture: %v", diags)
	}
}

func TestPolicyPurityPositive(t *testing.T) {
	if diags := checkFixture(t, "puritybad", PolicyPurity); len(diags) == 0 {
		t.Fatal("policypurity reported nothing on the bad fixture")
	}
}

func TestPolicyPurityNegative(t *testing.T) {
	if diags := checkFixture(t, "puritygood", PolicyPurity); len(diags) != 0 {
		t.Fatalf("policypurity flagged the clean fixture: %v", diags)
	}
}

func TestDeterminismPositive(t *testing.T) {
	if diags := checkFixture(t, "determinismbad", Determinism); len(diags) == 0 {
		t.Fatal("determinism reported nothing on the bad fixture")
	}
}

// TestDeterminismNegative also exercises the ignore directive: the
// fixture's map range is suppressed by a reasoned //dtbvet:ignore.
func TestDeterminismNegative(t *testing.T) {
	if diags := checkFixture(t, "determinismgood", Determinism); len(diags) != 0 {
		t.Fatalf("determinism flagged the clean fixture: %v", diags)
	}
}

// TestDeterminismServingExemption: under a serving package path
// (internal/daemon, cmd/dtbd) the wall-clock rule is waived — service
// latencies are real time — but the math/rand and map-range bans must
// keep firing there.
func TestDeterminismServingExemption(t *testing.T) {
	dir := filepath.Join("testdata", "src", "determinismbad")
	for _, ipath := range []string{"fixture/internal/daemon", "fixture/cmd/dtbd"} {
		pkg, err := fixtureLoader(t).LoadDir(dir, ipath)
		if err != nil {
			t.Fatalf("loading fixture as %s: %v", ipath, err)
		}
		diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism})
		var sawRand, sawMapRange bool
		for _, d := range diags {
			if strings.Contains(d.Message, "wall clock") {
				t.Errorf("%s: wall-clock diagnostic fired inside the serving exemption: %s", ipath, d)
			}
			if strings.Contains(d.Message, "xrand") {
				sawRand = true
			}
			if strings.Contains(d.Message, "nondeterministic order") {
				sawMapRange = true
			}
		}
		if !sawRand || !sawMapRange {
			t.Errorf("%s: rand/map-range bans must survive the serving exemption (rand %v, map %v): %v",
				ipath, sawRand, sawMapRange, diags)
		}
	}
}

// TestLeakCheckDaemonScope: internal/daemon is in leakcheck's scope,
// so the leaky fixture fires when loaded under that path.
func TestLeakCheckDaemonScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "leakbad", "internal", "engine")
	pkg, err := fixtureLoader(t).LoadDir(dir, "leakfixture/internal/daemon")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{LeakCheck}); len(diags) == 0 {
		t.Fatal("leakcheck silent under internal/daemon; the daemon is in its scope")
	}
}

func TestEventSwitchPositive(t *testing.T) {
	if diags := checkFixture(t, "eventswitchbad", EventSwitch); len(diags) == 0 {
		t.Fatal("eventswitch reported nothing on the bad fixture")
	}
}

func TestEventSwitchNegative(t *testing.T) {
	if diags := checkFixture(t, "eventswitchgood", EventSwitch); len(diags) != 0 {
		t.Fatalf("eventswitch flagged the clean fixture: %v", diags)
	}
}

// TestBareDirectiveReported: an unscoped ignore directive suppresses
// NOTHING (a suppression that cannot be retired is drift), so both the
// underlying diagnostic and the directive itself are reported.
func TestBareDirectiveReported(t *testing.T) {
	pkg := loadFixture(t, "baredirective")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism})
	if len(diags) != 2 {
		t.Fatalf("want the map-range diagnostic plus the directive diagnostic, got %v", diags)
	}
	var sawDirective, sawRange bool
	for _, d := range diags {
		switch d.Analyzer {
		case "dtbvet":
			sawDirective = strings.Contains(d.Message, "needs an analyzer scope and a reason")
		case "determinism":
			sawRange = true
		}
	}
	if !sawDirective || !sawRange {
		t.Fatalf("missing expected diagnostics: %v", diags)
	}
}

func TestErrSinkPositive(t *testing.T) {
	if diags := checkFixture(t, "errsinkbad", ErrSink); len(diags) == 0 {
		t.Fatal("errsink reported nothing on the bad fixture")
	}
}

func TestErrSinkNegative(t *testing.T) {
	if diags := checkFixture(t, "errsinkgood", ErrSink); len(diags) != 0 {
		t.Fatalf("errsink flagged the clean fixture: %v", diags)
	}
}

func TestFloatExactPositive(t *testing.T) {
	if diags := checkFixture(t, "floatexactbad", FloatExact); len(diags) == 0 {
		t.Fatal("floatexact reported nothing on the bad fixture")
	}
}

func TestFloatExactNegative(t *testing.T) {
	if diags := checkFixture(t, "floatexactgood", FloatExact); len(diags) != 0 {
		t.Fatalf("floatexact flagged the clean fixture: %v", diags)
	}
}

func TestHotAllocPositive(t *testing.T) {
	diags := checkFixture(t, "hotallocbad", HotAlloc)
	if len(diags) == 0 {
		t.Fatal("hotalloc reported nothing on the bad fixture")
	}
	for _, d := range diags {
		if d.Severity != SeverityWarning {
			t.Errorf("hotalloc diagnostic has severity %q, want warning: %s", d.Severity, d)
		}
	}
}

func TestHotAllocNegative(t *testing.T) {
	if diags := checkFixture(t, "hotallocgood", HotAlloc); len(diags) != 0 {
		t.Fatalf("hotalloc flagged the clean fixture: %v", diags)
	}
}

func TestLeakCheckPositive(t *testing.T) {
	if diags := checkFixture(t, "leakbad/internal/engine", LeakCheck); len(diags) == 0 {
		t.Fatal("leakcheck reported nothing on the bad fixture")
	}
}

func TestLeakCheckNegative(t *testing.T) {
	if diags := checkFixture(t, "leakgood/internal/engine", LeakCheck); len(diags) != 0 {
		t.Fatalf("leakcheck flagged the clean fixture: %v", diags)
	}
}

// TestLeakCheckScoped: the same leaky code outside internal/engine and
// internal/sim is not leakcheck's business.
func TestLeakCheckScoped(t *testing.T) {
	dir := filepath.Join("testdata", "src", "leakbad", "internal", "engine")
	pkg, err := fixtureLoader(t).LoadDir(dir, "fixture/leakbad/unscoped")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{LeakCheck}); len(diags) != 0 {
		t.Fatalf("leakcheck fired outside its package scope: %v", diags)
	}
}

// TestSelfTest runs the same mutation check as dtbvet -selftest: every
// analyzer must be able to fire.
func TestSelfTest(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks every fixture; skipped in -short mode")
	}
	if err := SelfTest(filepath.Join("..", "..")); err != nil {
		t.Fatal(err)
	}
}

// TestParseIgnore pins the directive grammar: scoped names plus a
// mandatory reason, with every malformed shape reported.
func TestParseIgnore(t *testing.T) {
	known := map[string]bool{"errsink": true, "floatexact": true, metaAnalyzer: true}
	for _, tc := range []struct {
		text      string
		analyzers []string
		malformed string
	}{
		{"errsink -- read-only handle", []string{"errsink"}, ""},
		{"errsink,floatexact -- both intentional", []string{"errsink", "floatexact"}, ""},
		{"", nil, "needs an analyzer scope and a reason"},
		{"some free-text reason", nil, "needs an analyzer scope and a reason"},
		{"errsink --", nil, "needs a reason"},
		{"nonsense -- reason", nil, "unknown analyzer"},
		{"dtbvet -- reason", nil, "unknown analyzer"}, // the meta name is not suppressible
		{"-- reason", nil, "at least one analyzer name"},
	} {
		d := parseIgnore(tc.text, known)
		if tc.malformed != "" {
			if !strings.Contains(d.malformed, tc.malformed) {
				t.Errorf("parseIgnore(%q).malformed = %q, want containing %q", tc.text, d.malformed, tc.malformed)
			}
			continue
		}
		if d.malformed != "" {
			t.Errorf("parseIgnore(%q) unexpectedly malformed: %s", tc.text, d.malformed)
			continue
		}
		if len(d.analyzers) != len(tc.analyzers) {
			t.Errorf("parseIgnore(%q).analyzers = %v, want %v", tc.text, d.analyzers, tc.analyzers)
			continue
		}
		for i := range d.analyzers {
			if d.analyzers[i] != tc.analyzers[i] {
				t.Errorf("parseIgnore(%q).analyzers = %v, want %v", tc.text, d.analyzers, tc.analyzers)
			}
		}
	}
}

// TestBaselineRoundTrip pins the ledger semantics: covered findings
// are filtered, new findings pass through, and stale entries surface
// as drift.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	mk := func(file, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: filepath.Join(root, file), Line: 7},
			Analyzer: analyzer, Severity: SeverityError, Message: msg,
		}
	}
	recorded := []Diagnostic{
		mk("a/a.go", "errsink", "close discarded"),
		mk("b/b.go", "floatexact", "== on float64"),
	}
	path := filepath.Join(root, "baseline.json")
	if err := WriteBaseline(path, root, recorded); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}

	// Same findings: fully covered, nothing reported.
	if out := b.Apply(root, recorded); len(out) != 0 {
		t.Fatalf("recorded findings not covered by their own baseline: %v", out)
	}

	// One covered, one new, one baseline entry gone stale.
	now := []Diagnostic{
		mk("a/a.go", "errsink", "close discarded"),
		mk("c/c.go", "leakcheck", "orphan goroutine"),
	}
	out := b.Apply(root, now)
	if len(out) != 2 {
		t.Fatalf("want the new finding plus one drift diagnostic, got %v", out)
	}
	var sawNew, sawDrift bool
	for _, d := range out {
		if d.Analyzer == "leakcheck" {
			sawNew = true
		}
		if d.Analyzer == metaAnalyzer && strings.Contains(d.Message, "baseline drift") &&
			strings.Contains(d.Message, "b/b.go") {
			sawDrift = true
		}
	}
	if !sawNew || !sawDrift {
		t.Fatalf("missing expected outputs: %v", out)
	}

	// A missing baseline file is an empty baseline.
	empty, err := LoadBaseline(filepath.Join(root, "nope.json"))
	if err != nil {
		t.Fatalf("LoadBaseline(missing): %v", err)
	}
	if out := empty.Apply(root, now); len(out) != len(now) {
		t.Fatalf("empty baseline should pass findings through, got %v", out)
	}
}

// TestWriteJSONGolden pins the -json contract byte for byte.
func TestWriteJSONGolden(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("mod")
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "gc", "gc.go"), Line: 358, Column: 11},
			Analyzer: "hotalloc", Severity: SeverityWarning,
			Message: "hotpath CollectAt appends to dead, which never has capacity",
		},
		{
			Pos:      token.Position{Filename: filepath.Join(root, "sim.go"), Line: 136, Column: 15},
			Analyzer: "floatexact", Severity: SeverityError,
			Message: "== on Machine compares floating-point data (via MIPS)",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := `{
  "diagnostics": [
    {
      "file": "internal/gc/gc.go",
      "line": 358,
      "column": 11,
      "analyzer": "hotalloc",
      "severity": "warning",
      "message": "hotpath CollectAt appends to dead, which never has capacity"
    },
    {
      "file": "sim.go",
      "line": 136,
      "column": 15,
      "analyzer": "floatexact",
      "severity": "error",
      "message": "== on Machine compares floating-point data (via MIPS)"
    }
  ],
  "count": 2
}
`
	if got := buf.String(); got != want {
		t.Errorf("WriteJSON output drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestModuleClean is the self-test dtbvet runs in CI: the repository
// itself must be clean under the full suite.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := fixtureLoader(t).LoadModuleWithTests()
	if err != nil {
		t.Fatalf("LoadModuleWithTests: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadModuleWithTests found only %d packages; the walk is broken", len(pkgs))
	}
	var tests int
	for _, pkg := range pkgs {
		if pkg.IsTest {
			tests++
		}
	}
	if tests == 0 {
		t.Fatal("LoadModuleWithTests loaded no test packages; the test walk is broken")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := LoadBaseline(filepath.Join(root, "dtbvet_baseline.json"))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	diags := baseline.Apply(root, RunAnalyzers(pkgs, All()))
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestKBNamed(t *testing.T) {
	for _, tc := range []struct {
		name string
		want bool
	}{
		{"budgetKB", true},
		{"mbFree", true},
		{"kb_per_op", true},
		{"heapMB2", true},
		{"Kilobytes", true},
		{"megabytes", true},
		{"memBytes", false}, // "mb" inside a word names no unit
		{"numBytes", false},
		{"climb", false},
		{"rawBytes", false},
	} {
		if got := kbNamed(tc.name); got != tc.want {
			t.Errorf("kbNamed(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestParseVerbs(t *testing.T) {
	verbs := parseVerbs("at %d: %6.2f KB (%s)")
	if len(verbs) != 3 {
		t.Fatalf("want 3 verbs, got %+v", verbs)
	}
	if verbs[0].argIndex != 0 || verbs[1].argIndex != 1 || verbs[2].argIndex != 2 {
		t.Fatalf("bad operand indexes: %+v", verbs)
	}
	if !labelledKBMB(verbs[1].trailing) {
		t.Errorf("verb %+v should read as KB-labelled", verbs[1])
	}
	if labelledKBMB(verbs[0].trailing) || labelledKBMB(verbs[2].trailing) {
		t.Errorf("unlabelled verbs misread: %+v", verbs)
	}

	// %% does not consume an operand; * consumes one.
	verbs = parseVerbs("100%% done, %*d MB")
	if len(verbs) != 1 || verbs[0].argIndex != 1 {
		t.Fatalf("star-width handling broken: %+v", verbs)
	}
	if !labelledKBMB(verbs[0].trailing) {
		t.Errorf("MB label missed in %+v", verbs[0])
	}
}

func TestLabelledKBMB(t *testing.T) {
	for _, tc := range []struct {
		trailing string
		want     bool
	}{
		{" KB", true},
		{"MB", true},
		{" KB/s", true},
		{" KB remaining", true},
		{" KByteshire", false}, // longer word, not a unit
		{" bytes", false},
		{"", false},
	} {
		if got := labelledKBMB(tc.trailing); got != tc.want {
			t.Errorf("labelledKBMB(%q) = %v, want %v", tc.trailing, got, tc.want)
		}
	}
}
