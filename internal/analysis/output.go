package analysis

import (
	"encoding/json"
	"io"
)

// JSONDiagnostic is the machine-readable rendering of one finding —
// the -json contract CI artifacts are built from. Paths are
// module-relative so the artifact diffs cleanly across checkouts.
type JSONDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
}

// JSONReport is the top-level -json document.
type JSONReport struct {
	Diagnostics []JSONDiagnostic `json:"diagnostics"`
	Count       int              `json:"count"`
}

// WriteJSON renders diags (already sorted) as an indented JSON report.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	report := JSONReport{Diagnostics: make([]JSONDiagnostic, 0, len(diags)), Count: len(diags)}
	for _, d := range diags {
		report.Diagnostics = append(report.Diagnostics, JSONDiagnostic{
			File:     RelPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Severity: severityOrDefault(d.Severity),
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func severityOrDefault(s Severity) Severity {
	if s == "" {
		return SeverityError
	}
	return s
}
