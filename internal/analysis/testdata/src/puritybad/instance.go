package puritybad

import (
	"math/rand"
	"os"
	"time"

	"github.com/dtbgc/dtbgc/internal/core"
)

// LeakyInstance carries the full PolicyInstance method set, so its
// receiver writes are sanctioned — but the rest of the contract still
// applies: no package-level state, no ambient randomness, no history
// mutation or retention.
type LeakyInstance struct {
	plays int
	saved *core.History
}

// instanceCalls is hidden cross-run state even for instances.
var instanceCalls int

// Boundary holds sanctioned receiver state but breaks every remaining
// rule.
func (l *LeakyInstance) Boundary(now core.Time, hist *core.History, heap core.Heap) core.Time {
	l.plays++              // sanctioned: instance state lives on the receiver
	instanceCalls++        // want: writes package variable
	l.saved = hist         // want: must not retain the history
	if rand.Intn(2) == 0 { // want: math/rand.Intn
		return 0
	}
	if time.Now().UnixNano()%2 == 0 { // want: time.Now
		return 0
	}
	if os.Getenv("DTB_BOUNDARY") != "" { // want: os.Getenv
		return 0
	}
	return hist.TimeOfPrevious(1)
}

// Observe is also policy code: ambient draws are flagged here too.
func (l *LeakyInstance) Observe(core.ScavengeFacts) {
	l.plays++
	_ = rand.Float64() // want: math/rand.Float64
}

// Snapshot implements the instance contract.
func (l *LeakyInstance) Snapshot() []byte { return nil }

// Restore implements the instance contract.
func (l *LeakyInstance) Restore([]byte) error { return nil }
