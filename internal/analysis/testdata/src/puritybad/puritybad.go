// Package puritybad defines a boundary policy that breaks purity every
// way the analyzer knows: it mutates the history, retains it, scribbles
// on its receiver and keeps package-level state.
package puritybad

import "github.com/dtbgc/dtbgc/internal/core"

// Sticky is a policy-shaped type with mutable state.
type Sticky struct {
	K     int
	last  core.Time
	saved *core.History
}

// Calls counts invocations across runs — hidden global state.
var Calls int

// Name implements core.Policy.
func (p *Sticky) Name() string { return "sticky" }

// Boundary is impure in five distinct ways.
func (p *Sticky) Boundary(now core.Time, hist *core.History, heap core.Heap) core.Time {
	hist.Record(core.Scavenge{}) // want: must not mutate the scavenge history
	hist.Scavenges[0].Traced = 0 // want: writes through its History parameter
	p.last = now                 // want: mutates receiver state
	p.saved = hist               // want: mutates receiver state
	Calls++                      // want: writes package variable
	return hist.TimeOfPrevious(p.K)
}
