// Package errsinkgood is the errsink clean corpus: every sanctioned
// way of handling a sink error.
package errsinkgood

import (
	"bytes"
	"os"
)

func checked(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

func namedResult(f *os.File) (err error) {
	err = f.Close() // a bare return reads the named result
	return
}

func foldInto(f *os.File) (err error) {
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = f.Write([]byte("payload"))
	return
}

func bestEffort(f *os.File) {
	_ = f.Close() //dtbvet:ignore errsink -- read-only handle: close failure cannot lose data
}

func neverFailing() string {
	var b bytes.Buffer
	b.WriteString("bytes.Buffer writes are documented to never fail")
	return b.String()
}
