// Package eventswitchgood handles trace.Kind switches the two approved
// ways — full enumeration or a default clause — and shows that
// switches over unrelated types are left alone.
package eventswitchgood

import "github.com/dtbgc/dtbgc/internal/trace"

// Exhaustive enumerates every declared kind.
func Exhaustive(k trace.Kind) int {
	switch k {
	case trace.KindAlloc:
		return 1
	case trace.KindFree:
		return 2
	case trace.KindPtrWrite:
		return 3
	case trace.KindMark:
		return 4
	}
	return 0
}

// Defaulted routes unknown kinds explicitly.
func Defaulted(k trace.Kind) bool {
	switch k {
	case trace.KindAlloc:
		return true
	default:
		return false
	}
}

// OtherType switches over a plain string; not the analyzer's business.
func OtherType(s string) int {
	switch s {
	case "alloc":
		return 1
	}
	return 0
}
