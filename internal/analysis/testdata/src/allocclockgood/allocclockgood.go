// Package allocclockgood handles the allocation clock the approved
// ways: named helpers, untyped constants, float math, and visibly
// scaled KB operands.
package allocclockgood

import (
	"fmt"

	"github.com/dtbgc/dtbgc/internal/core"
)

// Helpers uses the unit-carrying conversion helpers.
func Helpers(totalBytes uint64, now core.Time) uint64 {
	start := core.TimeAt(totalBytes)
	later := start.Add(4096)
	return now.Sub(later)
}

// Constant names its unit at the conversion itself.
func Constant() core.Time {
	return core.Time(1 << 20)
}

// Float conversions are where unit-checked arithmetic ends anyway.
func Float(now core.Time) float64 {
	return float64(now)
}

// PrintScaled feeds KB verbs visibly scaled operands.
func PrintScaled(rawBytes uint64, budgetKB uint64) string {
	s := fmt.Sprintf("mem %.1f KB", float64(rawBytes)/1024)
	s += fmt.Sprintf(" budget %d KB", budgetKB)
	s += fmt.Sprintf(" raw %d bytes", rawBytes)
	return s
}
