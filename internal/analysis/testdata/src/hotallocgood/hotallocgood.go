// Package hotallocgood is the hotalloc clean corpus: the sanctioned
// hot-path shapes — preallocated append, amortized field
// accumulators, comparator closures, and cold-path error
// construction.
package hotallocgood

import (
	"fmt"
	"sort"
)

//dtbvet:hotpath fixture preallocated fill
func fill(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

type acc struct {
	buf []int
}

//dtbvet:hotpath fixture amortized accumulator
func (a *acc) push(v int) {
	a.buf = append(a.buf, v)
}

//dtbvet:hotpath fixture comparator closure stays on the stack
func find(xs []int, v int) int {
	return sort.Search(len(xs), func(i int) bool { return xs[i] >= v })
}

//dtbvet:hotpath fixture cold-path error construction
func checkRange(v, n int) error {
	if v >= n {
		return fmt.Errorf("value %d out of range [0,%d)", v, n)
	}
	return nil
}

// unmarkedAllocates is NOT a hotpath: the same shapes are fine here.
func unmarkedAllocates(n int) []int {
	var out []int
	out = append(out, n)
	fmt.Sprintln(n)
	return out
}
