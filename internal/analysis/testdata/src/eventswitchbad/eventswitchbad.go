// Package eventswitchbad switches over trace.Kind without covering
// every declared kind and without a default clause, so a new event
// kind would fall through silently.
package eventswitchbad

import "github.com/dtbgc/dtbgc/internal/trace"

// Describe drops KindMark (and any future kind) on the floor.
func Describe(e trace.Event) string {
	switch e.Kind { // want: misses KindMark
	case trace.KindAlloc:
		return "alloc"
	case trace.KindFree, trace.KindPtrWrite:
		return "free-or-write"
	}
	return ""
}
