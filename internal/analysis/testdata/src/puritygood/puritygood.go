// Package puritygood defines a boundary policy that is a pure function
// of (now, history, heap): it reads the history, binds it to locals,
// and derives its answer from configuration fields it never writes.
package puritygood

import "github.com/dtbgc/dtbgc/internal/core"

// Clean is a pure, configuration-only policy.
type Clean struct {
	K int
}

// Name implements core.Policy.
func (c Clean) Name() string { return "clean" }

// Boundary reads the history without mutating or retaining it.
func (c Clean) Boundary(now core.Time, hist *core.History, heap core.Heap) core.Time {
	last, ok := hist.Last()
	if !ok {
		return 0
	}
	h := hist // binding the parameter to a local is not retention
	window := now.Sub(last.T)
	if window == 0 {
		return h.TimeOfPrevious(1)
	}
	return h.TimeOfPrevious(c.K)
}
