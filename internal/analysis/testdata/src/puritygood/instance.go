package puritygood

import (
	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// Learner is a sanctioned PolicyInstance: it declares the full
// Boundary/Observe/Snapshot/Restore method set, so holding and
// mutating per-run state on the receiver is exactly what it is for —
// as long as the randomness is the seeded xrand stream and the history
// stays read-only and unretained.
type Learner struct {
	rng    *xrand.Rand
	plays  int
	reward float64
}

// Boundary updates receiver state and draws seeded randomness: both
// are clean for an instance.
func (l *Learner) Boundary(now core.Time, hist *core.History, heap core.Heap) core.Time {
	l.plays++
	if l.rng.Float64() < 0.1 {
		return 0
	}
	return hist.TimeOfPrevious(1)
}

// Observe accumulates the outcome on the receiver.
func (l *Learner) Observe(f core.ScavengeFacts) {
	l.reward -= float64(f.Scavenge.Traced)
}

// Snapshot implements the instance contract.
func (l *Learner) Snapshot() []byte { return nil }

// Restore implements the instance contract.
func (l *Learner) Restore([]byte) error { return nil }
