// Package hotallocbad is the hotalloc mutant: every per-call
// allocation shape inside //dtbvet:hotpath functions.
package hotallocbad

import "fmt"

type table struct {
	rows []int
}

//dtbvet:hotpath fixture inner loop
func (t *table) step(n int) {
	var local []int
	local = append(local, n) // want: appends to local, which never has capacity
	t.rows = append(t.rows, local...)

	scratch := []int{n} // want: allocates a fresh []int per call
	t.rows = append(t.rows, scratch...)

	p := &table{} // want: heap-allocates a table per call
	t.rows = append(t.rows, len(p.rows))

	fmt.Sprintln(n) // want: calls fmt.Sprintln, which allocates on every call
}

func probe(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

//dtbvet:hotpath fixture probe fan-out
func emit(x int) int {
	hits := probe(x) // want: boxes int into any
	return hits + 1
}

//dtbvet:hotpath fixture goroutine launch
func launch(n int) {
	go func() { // want: launches a goroutine closure capturing n
		_ = n
	}()
}

//dtbvet:hotpath stray marker below is attached to a variable, not a function // want: not attached to a function declaration
var strayTarget = 0
