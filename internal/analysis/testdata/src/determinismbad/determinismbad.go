// Package determinismbad reads the wall clock, imports math/rand and
// folds a map in iteration order — three ways to make a run
// unrepeatable.
package determinismbad

import (
	"math/rand" // want: use internal/xrand
	"time"
)

// Stamp tags output with host time.
func Stamp() string {
	return time.Now().String() // want: reads the wall clock
}

// Pick chooses a victim with unseeded global randomness.
func Pick(n int) int {
	return rand.Intn(n)
}

// Keys collects map keys in nondeterministic order.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want: nondeterministic order
		out = append(out, k)
	}
	return out
}
