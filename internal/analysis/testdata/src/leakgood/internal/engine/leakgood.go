// Package enginefix is the leakcheck clean corpus: joined workers,
// cancellation receives, select-guarded sends, and the unresolvable
// function-value launch the pass deliberately skips.
package enginefix

import "sync"

func fanOut(work []int, results chan int, done chan struct{}) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case results <- 1:
			case <-done:
			}
		}()
	}
	wg.Wait()
}

func watcher(stop chan struct{}, tick chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-tick:
			}
		}
	}()
}

func launchValue(f func()) {
	go f() // a function value: unresolvable, skipped rather than flagged
}
