// Package errsinkbad is the errsink mutant: every shape of discarded
// sink error the analyzer exists to catch.
package errsinkbad

import "os"

func bareStatement(f *os.File) {
	f.Close() // want: result of (*os.File).Close is discarded
}

func deferred(f *os.File) error {
	defer f.Close() // want: deferred (*os.File).Close discards its error
	_, err := f.Write([]byte("payload"))
	return err
}

func inGoroutine(f *os.File) {
	go f.Close() // want: go (*os.File).Close discards its error
}

func blanked(f *os.File) {
	_ = f.Close() // want: explicitly discarded
}

// shutdown wraps Close, so the call-graph fixpoint classifies it as a
// sink too: discarding ITS error at any depth loses the same failure.
type store struct{ f *os.File }

func (s store) shutdown() error { return s.f.Close() }

func dropWrapper(s store) {
	s.shutdown() // want: result of (fixture/errsinkbad.store).shutdown is discarded
}
