// Package baredirective suppresses a map-range diagnostic with an
// ignore directive that is missing its reason; the directive itself
// must be reported.
package baredirective

// Sum folds a map order-insensitively but does not say so.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { //dtbvet:ignore
		total += v
	}
	return total
}
