// Package determinismgood does the same jobs deterministically: seeded
// xrand, duration arithmetic without wall-clock reads, sorted map keys,
// and an order-insensitive fold annotated with a reasoned ignore.
package determinismgood

import (
	"sort"
	"time"

	"github.com/dtbgc/dtbgc/internal/xrand"
)

// Pick chooses a victim replayably from an explicit seed.
func Pick(seed uint64, n int) int {
	return xrand.New(seed).Intn(n)
}

// Budget does duration arithmetic without reading the host clock.
func Budget(d time.Duration) float64 {
	return d.Seconds()
}

// Keys returns map keys in sorted order.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { //dtbvet:ignore determinism -- keys are sorted before the slice is returned
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum ranges over a slice, which iterates in index order.
func Sum(weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	return total
}
