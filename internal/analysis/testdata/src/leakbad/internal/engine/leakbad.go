// Package enginefix is the leakcheck mutant, loaded under an
// internal/engine import path so the pass applies: goroutines with no
// join or cancellation path and unguarded channel sends.
package enginefix

func fanOut(work []int, results chan int) {
	for range work {
		go func() { // want: no join or cancellation path
			results <- 1 // want: without a select-on-done escape
		}()
	}
}

func runNamed() {
	go orphan() // want: goroutine orphan has no join or cancellation path
}

func orphan() {
	sum := 0
	for i := 0; i < 1<<20; i++ {
		sum += i
	}
	_ = sum
}
