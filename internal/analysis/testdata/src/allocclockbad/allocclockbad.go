// Package allocclockbad violates the allocation-clock unit
// discipline: raw Time<->integer conversions outside internal/core and
// a KB-labelled verb fed raw bytes.
package allocclockbad

import (
	"fmt"

	"github.com/dtbgc/dtbgc/internal/core"
)

// Raw converts a byte count straight into a clock reading.
func Raw(totalBytes uint64) core.Time {
	return core.Time(totalBytes) // want: raw conversion of uint64 to the allocation clock
}

// RawBack strips the unit off a clock reading.
func RawBack(now core.Time) uint64 {
	return uint64(now) // want: raw conversion of core.Time to uint64
}

// PrintUnscaled prints raw bytes under a KB label.
func PrintUnscaled(rawBytes uint64) string {
	return fmt.Sprintf("mem %d KB", rawBytes) // want: not visibly scaled
}
