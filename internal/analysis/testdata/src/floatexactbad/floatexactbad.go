// Package floatexactbad is the floatexact mutant: exact comparison,
// switching and map-keying on floating-point data.
package floatexactbad

type sample struct {
	Label string
	V     float64
}

func directEq(a, b float64) bool {
	return a == b // want: == on float64 compares floating-point data directly
}

func structNeq(a, b sample) bool {
	return a != b // want: (via V)
}

func switched(x float64) int {
	switch x { // want: switch over float64 matches floating-point data
	case 0:
		return 0
	}
	return 1
}

var byValue map[float64]int // want: map keyed by float64
