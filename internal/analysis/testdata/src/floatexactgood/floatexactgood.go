// Package floatexactgood is the floatexact clean corpus: the
// sanctioned bit-exact forms and a reasoned IEEE exception.
package floatexactgood

import "math"

func bitEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func keyedByBits(samples []float64) map[uint64]int {
	counts := make(map[uint64]int)
	for _, s := range samples {
		counts[math.Float64bits(s)]++
	}
	return counts
}

func intEqual(a, b int) bool { return a == b }

func isNaN(x float64) bool {
	return x != x //dtbvet:ignore floatexact -- deliberate NaN self-test: the IEEE inequality IS the check
}
