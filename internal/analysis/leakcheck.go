package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LeakCheck guards the concurrency discipline of the fan-out engine
// and the simulator (internal/engine, internal/sim): every goroutine
// those packages launch must have a join or a cancellation path, and
// every channel send inside a launched goroutine must be able to give
// up. A worker that can neither finish nor be told to stop outlives
// its replay — the leak shows up as monotonically growing goroutine
// counts under the fault-injection harness, long after the run that
// spawned it returned.
//
// A goroutine body passes when it contains a call to a method named
// Done — (*sync.WaitGroup).Done marks a join, <-ctx.Done() marks a
// cancellation receive — or a receive from a done/stop/quit-named
// channel. A send inside a goroutine passes when it sits in a select
// with a default clause or a cancellation case. Bodies the call graph
// cannot resolve (function values) are skipped, not flagged.
var LeakCheck = &Analyzer{
	Name:     "leakcheck",
	Doc:      "goroutines in internal/engine and internal/sim need a join or cancellation path; their sends need a select-on-done escape",
	Severity: SeverityError,
	Run:      runLeakCheck,
}

// leakScopes are the package-path suffixes the pass applies to: the
// pool/fan-out code where an orphaned worker outlives the replay, and
// the daemon, where an orphaned goroutine outlives a request — or the
// process's graceful drain.
var leakScopes = []string{"internal/engine", "internal/sim", "internal/daemon"}

func runLeakCheck(pass *Pass) {
	inScope := false
	for _, suffix := range leakScopes {
		if hasPathSuffix(pass.Pkg.PkgPath, suffix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	info := pass.TypesInfo()
	for _, f := range pass.Pkg.Files {
		parents := BuildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, launched := goroutineBody(pass, info, g)
			if body == nil {
				return true // function value: unresolvable, not provably a leak
			}
			if !hasJoinOrCancel(info, body) {
				pass.Reportf(g.Pos(), "goroutine %s has no join or cancellation path (no WaitGroup.Done, no ctx.Done receive): it can outlive the replay that launched it", launched)
			}
			if lit, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
				checkGoroutineSends(pass, info, parents, lit)
			}
			return true
		})
	}
}

// goroutineBody resolves the body the go statement runs: the function
// literal itself, or the declaration of a directly-named callee found
// through the unit's call graph. A nil body means unresolvable.
func goroutineBody(pass *Pass, info *types.Info, g *ast.GoStmt) (*ast.BlockStmt, string) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, "closure"
	}
	fn := calleeFunc(info, g.Call)
	if fn == nil {
		return nil, ""
	}
	if decl := pass.Unit.CallGraph().Decl(fn); decl != nil {
		return decl.Body, fn.Name()
	}
	return nil, ""
}

// hasJoinOrCancel reports whether body contains a join or cancellation
// marker: a call to a method named Done (WaitGroup.Done joins,
// ctx.Done() is the cancellation channel), or a receive from a
// done/stop/quit-named channel.
func hasJoinOrCancel(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
			}
		case *ast.UnaryExpr:
			if isCancelReceive(info, v) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCancelReceive reports whether e is a receive from a channel whose
// name marks it as a stop signal.
func isCancelReceive(info *types.Info, e *ast.UnaryExpr) bool {
	if e.Op.String() != "<-" {
		return false
	}
	name := ""
	switch v := ast.Unparen(e.X).(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			name = sel.Sel.Name
		}
	}
	name = strings.ToLower(name)
	for _, marker := range []string{"done", "stop", "quit", "cancel"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}

// checkGoroutineSends flags channel sends inside a launched closure
// that are not wrapped in a select able to give up: a worker blocked
// forever on a full results channel is the pool-shutdown deadlock.
func checkGoroutineSends(pass *Pass, info *types.Info, parents Parents, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if !sendGuarded(info, parents, lit, send) {
			pass.Reportf(send.Pos(), "goroutine sends on %s without a select-on-done escape: if the receiver is gone, this send blocks forever — wrap it in select { case ch <- v: case <-done: }",
				typeLabel(info.TypeOf(send.Chan)))
		}
		return true
	})
}

// sendGuarded reports whether the send sits in a select statement that
// can abandon it: one with a default clause or a cancellation-receive
// case. The climb stops at the goroutine's own function literal.
func sendGuarded(info *types.Info, parents Parents, lit *ast.FuncLit, send *ast.SendStmt) bool {
	for cur := parents[ast.Node(send)]; cur != nil; cur = parents[cur] {
		if cur == ast.Node(lit) {
			return false
		}
		sel, ok := cur.(*ast.SelectStmt)
		if !ok {
			continue
		}
		for _, clause := range sel.Body.List {
			comm, isComm := clause.(*ast.CommClause)
			if !isComm {
				continue
			}
			if comm.Comm == nil {
				return true // default clause: the send cannot block
			}
			if commIsCancelReceive(info, comm.Comm) {
				return true
			}
		}
	}
	return false
}

// commIsCancelReceive reports whether a select comm clause receives
// from a cancellation channel.
func commIsCancelReceive(info *types.Info, comm ast.Stmt) bool {
	var recv ast.Expr
	switch v := comm.(type) {
	case *ast.ExprStmt:
		recv = v.X
	case *ast.AssignStmt:
		if len(v.Rhs) == 1 {
			recv = v.Rhs[0]
		}
	}
	if recv == nil {
		return false
	}
	u, ok := ast.Unparen(recv).(*ast.UnaryExpr)
	if !ok {
		return false
	}
	// A receive from a method named Done is ctx.Done()-shaped even when
	// the channel itself is unnamed.
	if call, isCall := ast.Unparen(u.X).(*ast.CallExpr); isCall {
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Done" {
			return true
		}
	}
	return isCancelReceive(info, u)
}
