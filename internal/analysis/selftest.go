package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
)

// SelfTest is the mutation check behind dtbvet -selftest: every
// analyzer must fire on its bad fixture (the committed mutant) and the
// whole suite must stay silent on the clean fixtures. An analyzer that
// cannot fire on its own mutant is dead weight — the gate would pass
// no matter what the tree does — so CI runs this before trusting a
// clean dtbvet exit.
func SelfTest(moduleDir string) error {
	loader, err := NewLoader(moduleDir)
	if err != nil {
		return err
	}
	src := filepath.Join(moduleDir, "internal", "analysis", "testdata", "src")
	var failures []string
	for _, fx := range selfTestFixtures() {
		pkg, err := loader.LoadDir(filepath.Join(src, filepath.FromSlash(fx.dir)), "fixture/"+fx.dir)
		if err != nil {
			return fmt.Errorf("selftest: loading fixture %s: %w", fx.dir, err)
		}
		diags := RunAnalyzers([]*Package{pkg}, All())
		if fx.trigger == "" {
			for _, d := range diags {
				failures = append(failures, fmt.Sprintf(
					"clean fixture %s produced %s: %s", fx.dir, d.Analyzer, d.Message))
			}
			continue
		}
		fired := false
		for _, d := range diags {
			if d.Analyzer == fx.trigger {
				fired = true
				break
			}
		}
		if !fired {
			failures = append(failures, fmt.Sprintf(
				"analyzer %s did not fire on its mutant fixture %s: the check is dead", fx.trigger, fx.dir))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("selftest failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// selfTestFixture pairs a fixture package with the analyzer it exists
// to trigger ("" for the clean corpus).
type selfTestFixture struct {
	dir     string // under internal/analysis/testdata/src, slash-separated
	trigger string
}

func selfTestFixtures() []selfTestFixture {
	return []selfTestFixture{
		{"allocclockbad", "allocclock"},
		{"allocclockgood", ""},
		{"puritybad", "policypurity"},
		{"puritygood", ""},
		{"determinismbad", "determinism"},
		{"determinismgood", ""},
		{"eventswitchbad", "eventswitch"},
		{"eventswitchgood", ""},
		{"errsinkbad", "errsink"},
		{"errsinkgood", ""},
		{"floatexactbad", "floatexact"},
		{"floatexactgood", ""},
		{"hotallocbad", "hotalloc"},
		{"hotallocgood", ""},
		{"leakbad/internal/engine", "leakcheck"},
		{"leakgood/internal/engine", ""},
		{"baredirective", metaAnalyzer},
	}
}
