package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// AllocClock guards the allocation-clock unit discipline (paper §2:
// time is cumulative bytes allocated). Two checks:
//
//  1. Raw integer conversions between core.Time and plain integer
//     types outside internal/core erase the clock/bytes distinction;
//     callers must go through the named helpers (core.TimeAt,
//     Time.Bytes, Time.Add, Time.Sub) whose names carry the unit.
//     Conversions to/from float64 for rendering and statistics are
//     allowed: floating math is where unit-checked arithmetic ends
//     anyway.
//  2. A fmt verb whose trailing format text labels the value KB or MB
//     must be fed an operand that is visibly scaled (a /1024-style
//     division, a *KB*-named identifier, or a helper call); printing
//     raw bytes under a KB label is the classic table-rendering
//     mix-up.
var AllocClock = &Analyzer{
	Name: "allocclock",
	Doc:  "core.Time readings must not silently mix with plain byte counts, and KB/MB format verbs need scaled operands",
	Run:  runAllocClock,
}

func runAllocClock(pass *Pass) {
	info := pass.TypesInfo()
	inCore := hasPathSuffix(pass.Pkg.PkgPath, corePkgSuffix)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !inCore {
				checkClockConversion(pass, info, call)
			}
			checkUnitVerbs(pass, info, call)
			return true
		})
	}
}

// checkClockConversion flags core.Time <-> integer conversions outside
// the clock's defining package.
func checkClockConversion(pass *Pass, info *types.Info, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := tv.Type
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isCoreTime(dst) && isPlainInteger(src):
		pass.Reportf(call.Pos(),
			"raw conversion of %s to the allocation clock: use core.TimeAt (or Time.Add for a delta) so the unit is explicit", src)
	case isCoreTime(src) && isPlainInteger(dst):
		pass.Reportf(call.Pos(),
			"raw conversion of core.Time to %s: use Time.Bytes (or Time.Sub for a window) so the unit is explicit", dst)
	}
}

// isPlainInteger reports a non-Time integer type (defined or not).
// Untyped constants are excluded: `Time(1<<20)` names its unit at the
// conversion itself.
func isPlainInteger(t types.Type) bool {
	if isCoreTime(t) {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 && b.Info()&types.IsUntyped == 0
}

// printfFuncs maps fmt formatting functions to the index of their
// format-string argument.
var printfFuncs = map[string]int{
	"Printf":  0,
	"Sprintf": 0,
	"Errorf":  0,
	"Fprintf": 1,
	"Appendf": 1,
}

func checkUnitVerbs(pass *Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	fmtIdx, ok := printfFuncs[obj.Name()]
	if !ok || len(call.Args) <= fmtIdx {
		return
	}
	format, ok := stringLiteral(info, call.Args[fmtIdx])
	if !ok {
		return
	}
	operands := call.Args[fmtIdx+1:]
	for _, v := range parseVerbs(format) {
		if v.argIndex >= len(operands) {
			continue // vet's job, not ours
		}
		if !labelledKBMB(v.trailing) {
			continue
		}
		arg := operands[v.argIndex]
		if !looksScaled(arg) {
			pass.Reportf(arg.Pos(),
				"operand printed under a %q label is not visibly scaled (no /1024-style division or *KB*-named value): raw bytes under a KB/MB label is a unit mix-up", strings.Fields(v.trailing)[0])
		}
	}
}

func stringLiteral(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verb is one %-directive of a format string: which operand it
// consumes and the literal text following it up to the next directive.
type verb struct {
	argIndex int
	trailing string
}

// parseVerbs extracts the operand-consuming verbs of a printf format
// string, accounting for %% and *-widths.
func parseVerbs(format string) []verb {
	var verbs []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Skip flags, widths and precisions; '*' consumes an operand.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				arg++
			}
			if strings.ContainsRune("+-# 0123456789.*", rune(c)) {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		end := strings.IndexByte(format[i+1:], '%')
		trailing := format[i+1:]
		if end >= 0 {
			trailing = format[i+1 : i+1+end]
		}
		verbs = append(verbs, verb{argIndex: arg, trailing: trailing})
		arg++
	}
	return verbs
}

// labelledKBMB reports whether the text directly after a verb labels
// it in kilo/megabytes ("%d KB", "%.0fMB", "%d KB/s").
func labelledKBMB(trailing string) bool {
	t := strings.TrimLeft(trailing, " \t")
	for _, unit := range []string{"KB", "MB"} {
		rest, ok := strings.CutPrefix(t, unit)
		if !ok {
			continue
		}
		// Reject a longer word ("KByteshire"); allow punctuation,
		// space, end, or a rate suffix.
		if rest == "" || !isWordByte(rest[0]) {
			return true
		}
	}
	return false
}

func isWordByte(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

// looksScaled reports whether the operand expression visibly accounts
// for the 1024 scaling: a division by a power-of-1024 constant
// anywhere in its subtree, a KB/MB-named identifier or selector, or a
// function call (a named helper is trusted to do its own scaling).
func looksScaled(e ast.Expr) bool {
	scaled := false
	ast.Inspect(e, func(n ast.Node) bool {
		if scaled {
			return false
		}
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if v.Op == token.QUO && isScaleConst(v.Y) {
				scaled = true
				return false
			}
			if v.Op == token.SHR { // x >> 10, x >> 20
				scaled = true
				return false
			}
		case *ast.CallExpr:
			if _, isConv := v.Fun.(*ast.Ident); !isConv || len(v.Args) != 1 {
				scaled = true // helper call; conversions like float64(x) keep scanning
				return false
			}
		case *ast.Ident:
			if kbNamed(v.Name) {
				scaled = true
				return false
			}
		case *ast.SelectorExpr:
			if kbNamed(v.Sel.Name) {
				scaled = true
				return false
			}
		case *ast.BasicLit:
			scaled = true // a literal is whatever the author says it is
			return false
		}
		return true
	})
	return scaled
}

// kbNamed reports whether a camelCase or snake_case name carries a
// KB/MB unit token ("budgetKB", "mbFree", "kb_per_op", "Kilobytes").
// The token must sit on a word boundary: "numBytes" and "climb"
// contain the letters "mb" but name no unit.
func kbNamed(name string) bool {
	lower := strings.ToLower(name)
	if strings.Contains(lower, "kilo") || strings.Contains(lower, "mega") {
		return true
	}
	for i := 0; i+2 <= len(name); i++ {
		if lower[i] != 'k' && lower[i] != 'm' {
			continue
		}
		if lower[i+1] != 'b' {
			continue
		}
		startOK := i == 0 || name[i-1] == '_' || isUpperByte(name[i])
		j := i + 2
		endOK := j == len(name) || name[j] == '_' || isUpperByte(name[j]) || isDigitByte(name[j])
		if startOK && endOK {
			return true
		}
	}
	return false
}

func isUpperByte(b byte) bool { return 'A' <= b && b <= 'Z' }
func isDigitByte(b byte) bool { return '0' <= b && b <= '9' }

func isScaleConst(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Value == "1024" || v.Value == "1048576"
	case *ast.ParenExpr:
		return isScaleConst(v.X)
	case *ast.BinaryExpr:
		// 1024*1024, 1<<10, 1<<20
		if v.Op == token.MUL || v.Op == token.SHL {
			return true
		}
	}
	return false
}
