package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatExact guards the audit oracle's bit-identity contract: the
// differential oracle (internal/audit) compares results with
// math.Float64bits because == on float64 is NOT bit-exact — NaN
// compares unequal to itself and -0 compares equal to +0, so a
// checker built on == can silently bless a divergent replay. Every
// ==/!= whose operands carry floating-point data (directly, or inside
// a comparable struct or array), every switch over a floating tag,
// and every map keyed by a floating type is flagged. The sanctioned
// form is comparing math.Float64bits values (uint64s — invisible to
// this pass by construction); sites where IEEE semantics are the
// point carry a //dtbvet:ignore floatexact -- <reason>.
var FloatExact = &Analyzer{
	Name:     "floatexact",
	Doc:      "no ==/!=/switch/map-keying on floating types outside sanctioned math.Float64bits sites",
	Severity: SeverityError,
	Run:      runFloatExact,
}

func runFloatExact(pass *Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{v.X, v.Y} {
					t := info.TypeOf(side)
					if path := floatPath(t, ""); path != "" {
						pass.Reportf(v.OpPos, "%s on %s compares floating-point data%s, which is not bit-exact (NaN != NaN, -0 == +0): compare math.Float64bits values instead",
							v.Op, typeLabel(t), path)
						break // one report per comparison
					}
				}
			case *ast.SwitchStmt:
				if v.Tag == nil {
					return true
				}
				t := info.TypeOf(v.Tag)
				if path := floatPath(t, ""); path != "" {
					pass.Reportf(v.Switch, "switch over %s matches floating-point data%s by ==, which is not bit-exact: switch over math.Float64bits values or use if/else with explicit tolerances",
						typeLabel(t), path)
				}
			case *ast.MapType:
				tv, ok := info.Types[v]
				if !ok {
					return true
				}
				m, ok := tv.Type.Underlying().(*types.Map)
				if !ok {
					return true
				}
				if path := floatPath(m.Key(), ""); path != "" {
					pass.Reportf(v.Pos(), "map keyed by %s hashes floating-point data%s: NaN keys are unretrievable and -0/+0 collide — key by math.Float64bits instead",
						typeLabel(m.Key()), path)
				}
			}
			return true
		})
	}
}

// floatPath reports where inside t floating-point data hides: "" for
// none, " directly" for a float type itself, or " (via field X)" for
// a struct/array member. Named types are followed through their
// underlying type; interfaces and pointers stop the walk (pointer
// identity is exact).
func floatPath(t types.Type, via string) string {
	if t == nil {
		return ""
	}
	return floatPathSeen(t, via, make(map[types.Type]bool))
}

func floatPathSeen(t types.Type, via string, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsFloat != 0 || u.Info()&types.IsComplex != 0 {
			if via == "" {
				return " directly"
			}
			return " (via " + via + ")"
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			field := u.Field(i)
			inner := field.Name()
			if via != "" {
				inner = via + "." + inner
			}
			if path := floatPathSeen(field.Type(), inner, seen); path != "" {
				return path
			}
		}
	case *types.Array:
		inner := "element"
		if via != "" {
			inner = via + " element"
		}
		return floatPathSeen(u.Elem(), inner, seen)
	}
	return ""
}
