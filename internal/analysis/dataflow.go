package analysis

// The dataflow layer: the shared machinery the v2 analyzers (errsink,
// floatexact, hotalloc, leakcheck) are built on. Two pieces, both
// deliberately approximate and deliberately stdlib-only:
//
//   - FuncFlow: per-function use-def chains over go/types objects. For
//     each local object (parameters included) it records the
//     definition sites (declarations and assignments, with the bound
//     expression) and the read sites. Flow-insensitive by design: "is
//     this variable ever read" and "what expressions were ever bound
//     to it" are the queries the analyzers need, and both are sound
//     without a CFG — a variable with zero reads anywhere is
//     definitely unchecked, and a capacity visible in any binding is
//     accepted.
//
//   - Unit: the whole-load view. It builds a package-level call-graph
//     approximation (static call edges only: direct calls and method
//     calls resolved by go/types; calls through interface values or
//     function-typed variables stay unresolved) and derives the error
//     sink set from it — see unit.go for the fixpoint.

import (
	"go/ast"
	"go/types"
)

// FuncFlow is the use-def summary of one function body.
type FuncFlow struct {
	// defs maps a local object to every expression bound to it: the
	// initializer of its declaration and the RHS of every assignment.
	// A nil entry records a binding with no usable expression (var
	// without initializer, range variable, multi-value unpacking).
	defs map[types.Object][]ast.Expr
	// reads maps a local object to its read occurrences — every use
	// that is not the plain LHS of an assignment.
	reads map[types.Object][]*ast.Ident
	// params marks parameters and receivers: objects the caller
	// controls, whose values the function cannot reason about.
	params map[types.Object]bool
}

// IsRead reports whether obj is read anywhere in the function. A
// false answer is definitive (flow-insensitivity only ever ADDS
// reads), which is what makes it safe to flag never-read error
// results.
func (f *FuncFlow) IsRead(obj types.Object) bool { return len(f.reads[obj]) > 0 }

// Defs returns every expression ever bound to obj in the function
// (nil entries mark bindings with no single expression, such as
// multi-value unpacking or bare declarations).
func (f *FuncFlow) Defs(obj types.Object) []ast.Expr { return f.defs[obj] }

// IsLocalDef reports whether obj is a local the function itself binds
// (not a parameter or receiver) — the "can this function know the
// value's provenance" test behind the hotalloc append rule.
func (f *FuncFlow) IsLocalDef(obj types.Object) bool {
	_, ok := f.defs[obj]
	return ok && !f.params[obj]
}

// BuildFlow computes the use-def chains of one function body (FuncDecl
// or FuncLit body — any statement tree).
func BuildFlow(info *types.Info, body ast.Node) *FuncFlow {
	f := &FuncFlow{
		defs:   make(map[types.Object][]ast.Expr),
		reads:  make(map[types.Object][]*ast.Ident),
		params: make(map[types.Object]bool),
	}
	if body == nil {
		return f
	}
	// written collects idents in a write position so the read pass can
	// skip them; an ident can legitimately appear twice (x = x + 1
	// parses the RHS x as a distinct node), so position identity is
	// exact.
	written := make(map[*ast.Ident]bool)

	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return // writes through selectors/indexes define nothing new
		}
		written[id] = true
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		f.defs[obj] = append(f.defs[obj], rhs)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) == len(v.Rhs) {
				for i := range v.Lhs {
					record(v.Lhs[i], v.Rhs[i])
				}
			} else {
				for _, lhs := range v.Lhs {
					record(lhs, nil) // multi-value unpacking
				}
			}
		case *ast.ValueSpec:
			if len(v.Names) == len(v.Values) {
				for i := range v.Names {
					record(v.Names[i], v.Values[i])
				}
			} else {
				for _, name := range v.Names {
					record(name, nil)
				}
			}
		case *ast.RangeStmt:
			if v.Key != nil {
				record(v.Key, nil)
			}
			if v.Value != nil {
				record(v.Value, nil)
			}
		case *ast.IncDecStmt:
			// x++ both reads and writes; leave the ident as a read.
		case *ast.Field:
			for _, name := range v.Names {
				if obj := info.Defs[name]; obj != nil {
					f.defs[obj] = append(f.defs[obj], nil) // parameters and receivers
					f.params[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || written[id] {
			return true
		}
		if obj := info.Uses[id]; obj != nil {
			f.reads[obj] = append(f.reads[obj], id)
		}
		return true
	})
	return f
}

// Parents maps every node of a file to its syntactic parent, so
// analyzers can ask "what consumes this expression" — the escape and
// direct-return questions AST walking alone cannot answer.
type Parents map[ast.Node]ast.Node

// BuildParents indexes the parent of every node under root.
func BuildParents(root ast.Node) Parents {
	parents := make(Parents)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// EnclosingStmt walks up the parent chain to the innermost statement
// containing n, or nil.
func (p Parents) EnclosingStmt(n ast.Node) ast.Stmt {
	for cur := n; cur != nil; cur = p[cur] {
		if s, ok := cur.(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

// onColdPath reports whether n sits on a cold abort path: its
// innermost statement is a return, or it feeds a panic argument.
// Hot-path functions construct their error returns and panic messages
// exactly once per failure, not once per call, so hotalloc leaves
// those sites alone. The climb stops at the first enclosing statement
// and never crosses into an enclosing function literal.
func (p Parents) onColdPath(info *types.Info, n ast.Node) bool {
	for cur := p[n]; cur != nil; cur = p[cur] {
		switch v := cur.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
					return true
				}
			}
		case *ast.FuncLit:
			return false
		case ast.Stmt:
			return false
		}
	}
	return false
}

// funcScope returns the scope of a declared function, for locality
// tests.
func funcScope(info *types.Info, fn *ast.FuncDecl) *types.Scope {
	return info.Scopes[fn.Type]
}

// declaredIn reports whether obj's declaration scope is scope or any
// scope nested inside it.
func declaredIn(obj types.Object, scope *types.Scope) bool {
	if obj == nil || scope == nil {
		return false
	}
	for s := obj.Parent(); s != nil; s = s.Parent() {
		if s == scope {
			return true
		}
	}
	return false
}
