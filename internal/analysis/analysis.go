// Package analysis is the project's static-analysis suite: a small,
// stdlib-only framework (go/ast + go/types; no external modules) and
// four project-specific analyzers enforcing invariants the Go type
// system cannot express but the reproduction depends on:
//
//   - allocclock: core.Time is an allocation-clock reading, not a byte
//     count; raw integer conversions between the two outside
//     internal/core lose the unit, and KB/MB format verbs must be fed
//     scaled operands.
//   - policypurity: boundary policies must be pure functions of the
//     scavenge history; a policy that mutates or retains the history
//     breaks the FULL/FIXED/FEEDMED/DTBFM/DTBMEM comparability the
//     paper's tables rest on.
//   - determinism: simulations must be bit-for-bit repeatable, so
//     time.Now, math/rand and map-iteration order are banned from
//     simulation and rendering code paths.
//   - eventswitch: every switch over trace.Kind must be exhaustive or
//     carry a default, so a new event kind cannot be silently dropped
//     by a codec, simulator or analysis.
//
// Intentional exceptions are annotated in the source with
//
//	//dtbvet:ignore <reason>
//
// on, or on the line above, the reported line. The reason is
// mandatory; a bare directive is itself reported. cmd/dtbvet is the
// command-line driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "allocclock"
	Doc  string // one-line description of the invariant it guards
	Run  func(*Pass)
}

// All returns the full suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{AllocClock, PolicyPurity, Determinism, EventSwitch}
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags   *[]Diagnostic
	ignores map[string]map[int]*ignoreDirective
}

// Fset returns the position set shared by every package of the load.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypesInfo returns the package's type-checker results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a diagnostic at pos unless an ignore directive
// covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if d := p.ignoreFor(position); d != nil {
		d.used = true
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) ignoreFor(pos token.Position) *ignoreDirective {
	lines := p.ignores[pos.Filename]
	if d := lines[pos.Line]; d != nil {
		return d
	}
	return lines[pos.Line-1]
}

// ignoreDirective is one //dtbvet:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	reason string
	used   bool
}

const ignorePrefix = "dtbvet:ignore"

// collectIgnores indexes every //dtbvet:ignore directive by file and
// line so Reportf can consult them in O(1).
func collectIgnores(pkg *Package) map[string]map[int]*ignoreDirective {
	out := make(map[string]map[int]*ignoreDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*ignoreDirective)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = &ignoreDirective{
					pos:    pos,
					reason: strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix)),
				}
			}
		}
	}
	return out
}

// RunAnalyzers applies each analyzer to each package and returns every
// diagnostic, sorted by position. Directives without a reason are
// reported too: an exception nobody can explain is not an exception.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags, ignores: ignores})
		}
		for _, byLine := range ignores { //dtbvet:ignore diagnostics are sorted below before emission
			for _, d := range byLine { //dtbvet:ignore diagnostics are sorted below before emission
				if d.reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      d.pos,
						Analyzer: "dtbvet",
						Message:  "//dtbvet:ignore directive needs a reason",
					})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// --- shared type-matching helpers ---

// corePkgSuffix identifies the package defining the allocation clock
// and the policy framework, wherever the module root happens to live.
const corePkgSuffix = "internal/core"

// tracePkgSuffix identifies the package defining the event model.
const tracePkgSuffix = "internal/trace"

// namedFrom reports whether t is the named type pkgSuffix.name
// (following aliases but not the underlying type).
func namedFrom(t types.Type, pkgSuffix, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && hasPathSuffix(obj.Pkg().Path(), pkgSuffix)
}

// hasPathSuffix matches whole path segments, so "internal/core" does
// not match "internal/encore".
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func isCoreTime(t types.Type) bool { return t != nil && namedFrom(t, corePkgSuffix, "Time") }

func isCoreHistoryPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && namedFrom(ptr.Elem(), corePkgSuffix, "History")
}

func isTraceKind(t types.Type) bool { return t != nil && namedFrom(t, tracePkgSuffix, "Kind") }

// rootIdent walks selector/index/star/paren chains to the identifier
// the expression is rooted at ("x" in x.f[i].g), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}
