// Package analysis is the project's static-analysis suite: a small,
// stdlib-only framework (go/ast + go/types; no external modules), a
// dataflow layer (per-function use-def chains and a package-level
// call-graph approximation — see dataflow.go), and eight
// project-specific analyzers enforcing invariants the Go type system
// cannot express but the reproduction depends on:
//
//   - allocclock: core.Time is an allocation-clock reading, not a byte
//     count; raw integer conversions between the two outside
//     internal/core lose the unit, and KB/MB format verbs must be fed
//     scaled operands.
//   - policypurity: boundary policies must be pure functions of the
//     scavenge history; a policy that mutates or retains the history
//     breaks the FULL/FIXED/FEEDMED/DTBFM/DTBMEM comparability the
//     paper's tables rest on.
//   - determinism: simulations must be bit-for-bit repeatable, so
//     time.Now, math/rand and map-iteration order are banned from
//     simulation and rendering code paths.
//   - eventswitch: every switch over trace.Kind must be exhaustive or
//     carry a default, so a new event kind cannot be silently dropped
//     by a codec, simulator or analysis.
//   - errsink: a discarded error from Close/Flush/Write-shaped sinks
//     (including their module-local wrappers, found through the call
//     graph) silently converts I/O failure into truncated output —
//     the exact bug class internal/cliio exists to kill. Runs on test
//     files and examples too.
//   - floatexact: the differential oracle's bit-identity contract
//     (math.Float64bits) makes ==/!=/switch/map-keying on floating
//     types a trap; every such site must be rewritten or carry a
//     reasoned ignore.
//   - hotalloc: functions marked //dtbvet:hotpath must not allocate
//     per call — escaping composite literals, capacity-less append
//     growth, escaping closures, interface boxing and fmt calls are
//     flagged.
//   - leakcheck: goroutines in internal/engine and internal/sim must
//     carry a join (WaitGroup.Done) or cancellation (ctx.Done) path,
//     and channel sends there must be select-guarded.
//
// Intentional exceptions are annotated in the source with a scoped,
// reasoned directive naming the analyzer(s) being silenced:
//
//	//dtbvet:ignore <analyzer>[,analyzer...] -- <reason>
//
// on, or on the line above, the reported line. The analyzer name and
// the reason are both mandatory; a bare or unscoped directive, an
// unknown analyzer name, and a directive that no longer suppresses
// anything (a stale suppression outliving its pass) are themselves
// reported. cmd/dtbvet is the command-line driver; it adds JSON
// output, a committed findings baseline with drift detection, and a
// mutation-style self-test.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity ranks a diagnostic. Every severity gates the build (dtbvet
// exits non-zero); the level exists so machine consumers (-json) can
// rank work, not so warnings can be ignored.
type Severity string

const (
	// SeverityError marks a correctness contract violation.
	SeverityError Severity = "error"
	// SeverityWarning marks a performance-discipline violation
	// (hotalloc): wrong for the hot path, not wrong in general.
	SeverityWarning Severity = "warning"
)

// Analyzer is one named check.
type Analyzer struct {
	Name     string   // short lower-case identifier, e.g. "allocclock"
	Doc      string   // one-line description of the invariant it guards
	Severity Severity // default severity for its diagnostics
	Tests    bool     // whether the analyzer also runs on test-file packages
	Run      func(*Pass)
}

// All returns the full suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		AllocClock, PolicyPurity, Determinism, EventSwitch,
		ErrSink, FloatExact, HotAlloc, LeakCheck,
	}
}

// metaAnalyzer names the framework's own diagnostics (directive
// misuse, baseline drift). They cannot be suppressed.
const metaAnalyzer = "dtbvet"

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Severity Severity
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Unit     *Unit // shared across the whole load (call graph, sinks)

	diags   *[]Diagnostic
	ignores map[string]map[int]*ignoreDirective
}

// Fset returns the position set shared by every package of the load.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypesInfo returns the package's type-checker results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a diagnostic at pos (at the analyzer's default
// severity) unless an ignore directive scoped to this analyzer covers
// that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if d := p.ignoreFor(position); d != nil {
		d.used = true
		return
	}
	sev := p.Analyzer.Severity
	if sev == "" {
		sev = SeverityError
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreFor returns the directive covering pos and scoped to this
// pass's analyzer, or nil. A directive only suppresses the analyzers
// it names.
func (p *Pass) ignoreFor(pos token.Position) *ignoreDirective {
	lines := p.ignores[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d := lines[line]; d != nil && d.covers(p.Analyzer.Name) {
			return d
		}
	}
	return nil
}

// ignoreDirective is one //dtbvet:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string // the passes it silences
	reason    string
	malformed string // non-empty: the parse/validation problem to report
	used      bool
}

func (d *ignoreDirective) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

const (
	ignorePrefix  = "dtbvet:ignore"
	hotpathPrefix = "dtbvet:hotpath"
	reasonSep     = "--"
)

// parseIgnore parses the text after "dtbvet:ignore". The format is
//
//	<analyzer>[,analyzer...] -- <reason>
//
// and both halves are mandatory: an unscoped suppression cannot be
// retired when its pass changes, and an unexplained one cannot be
// audited. known maps valid analyzer names.
func parseIgnore(text string, known map[string]bool) ignoreDirective {
	names, reason, found := strings.Cut(text, reasonSep)
	if !found {
		return ignoreDirective{malformed: fmt.Sprintf(
			"//dtbvet:ignore needs an analyzer scope and a reason: //dtbvet:ignore <analyzer> %s <reason>", reasonSep)}
	}
	reason = strings.TrimSpace(reason)
	if reason == "" {
		return ignoreDirective{malformed: "//dtbvet:ignore directive needs a reason"}
	}
	var d ignoreDirective
	d.reason = reason
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] || name == metaAnalyzer {
			return ignoreDirective{malformed: fmt.Sprintf(
				"//dtbvet:ignore names unknown analyzer %q (run dtbvet -list)", name)}
		}
		d.analyzers = append(d.analyzers, name)
	}
	if len(d.analyzers) == 0 {
		return ignoreDirective{malformed: fmt.Sprintf(
			"//dtbvet:ignore needs at least one analyzer name before %q", reasonSep)}
	}
	return d
}

// collectIgnores indexes every //dtbvet:ignore directive by file and
// line so Reportf can consult them in O(1).
func collectIgnores(pkg *Package, known map[string]bool) map[string]map[int]*ignoreDirective {
	out := make(map[string]map[int]*ignoreDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				d := parseIgnore(strings.TrimSpace(rest), known)
				d.pos = pkg.Fset.Position(c.Pos())
				byLine := out[d.pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*ignoreDirective)
					out[d.pos.Filename] = byLine
				}
				byLine[d.pos.Line] = &d
			}
		}
	}
	return out
}

// RunAnalyzers applies each analyzer to each package and returns every
// diagnostic, sorted by position. Directive misuse is reported too: a
// malformed or unscoped directive, and a directive whose named
// analyzers all ran without it suppressing anything — an exception
// that outlived its pass is not an exception, it is drift.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(All())+1)
	for _, a := range All() {
		known[a.Name] = true
	}
	known[metaAnalyzer] = true

	unit := NewUnit(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg, known)
		ran := make(map[string]bool)
		for _, a := range analyzers {
			if pkg.IsTest && !a.Tests {
				continue
			}
			ran[a.Name] = true
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Unit: unit, diags: &diags, ignores: ignores})
		}
		for _, byLine := range ignores { //dtbvet:ignore determinism -- diagnostics are sorted below before emission
			for _, d := range byLine { //dtbvet:ignore determinism -- diagnostics are sorted below before emission
				switch {
				case d.malformed != "":
					diags = append(diags, Diagnostic{
						Pos: d.pos, Analyzer: metaAnalyzer, Severity: SeverityError,
						Message: d.malformed,
					})
				case !d.used && allRan(d.analyzers, ran):
					diags = append(diags, Diagnostic{
						Pos: d.pos, Analyzer: metaAnalyzer, Severity: SeverityError,
						Message: fmt.Sprintf("stale //dtbvet:ignore: %s reported nothing here — the suppression outlived its pass, remove it",
							strings.Join(d.analyzers, ",")),
					})
				}
			}
		}
	}
	SortDiagnostics(diags)
	return diags
}

// allRan reports whether every named analyzer was actually run on the
// package — a suppression is only provably stale when its pass had
// the chance to fire (think dtbvet -only subsets, or test-only
// analyzers on shipped code).
func allRan(names []string, ran map[string]bool) bool {
	for _, n := range names {
		if !ran[n] {
			return false
		}
	}
	return true
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer —
// the stable order every output mode and the baseline rely on.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// --- shared type-matching helpers ---

// corePkgSuffix identifies the package defining the allocation clock
// and the policy framework, wherever the module root happens to live.
const corePkgSuffix = "internal/core"

// tracePkgSuffix identifies the package defining the event model.
const tracePkgSuffix = "internal/trace"

// namedFrom reports whether t is the named type pkgSuffix.name
// (following aliases but not the underlying type).
func namedFrom(t types.Type, pkgSuffix, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && hasPathSuffix(obj.Pkg().Path(), pkgSuffix)
}

// hasPathSuffix matches whole path segments, so "internal/core" does
// not match "internal/encore".
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func isCoreTime(t types.Type) bool { return t != nil && namedFrom(t, corePkgSuffix, "Time") }

func isCoreHistoryPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && namedFrom(ptr.Elem(), corePkgSuffix, "History")
}

func isTraceKind(t types.Type) bool { return t != nil && namedFrom(t, tracePkgSuffix, "Kind") }

// rootIdent walks selector/index/star/paren chains to the identifier
// the expression is rooted at ("x" in x.f[i].g), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}
