package analysis

import (
	"go/ast"
	"go/types"
)

// ErrSink guards the internal/cliio exit discipline everywhere,
// including tests and examples: the error result of a Close/Flush/
// Write-shaped sink — or of any module function that (transitively)
// wraps one, found through the unit's call graph — must not be
// discarded. Close is where buffered-write failures surface (ENOSPC
// at the final flush), so a discarded sink error converts an I/O
// failure into a plausible-looking truncated file with exit status 0;
// this is the exact bug class PR 5 fixed in all four CLIs, now
// enforced at vet time. Flagged shapes:
//
//   - a sink call as a bare statement:           f.Close()
//   - a deferred sink call:                      defer f.Close()
//   - a sink call in a goroutine statement:      go f.Close()
//   - explicit discard of the error:             _ = f.Close()
//   - the error bound to a variable that the use-def chains prove is
//     never read:                                err := f.Close(); return nil
//
// Fix with the cliio helpers (CloseChecked folds a deferred close
// into the return error; Output owns the flush-and-verify shape) or,
// for genuinely best-effort sites (read-only files, cleanup after an
// earlier failure), a scoped //dtbvet:ignore errsink -- <reason>.
var ErrSink = &Analyzer{
	Name:     "errsink",
	Doc:      "errors from Close/Flush/Write sinks and their wrappers must be checked (the silent-truncation bug class)",
	Severity: SeverityError,
	Tests:    true,
	Run:      runErrSink,
}

func runErrSink(pass *Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var flow *FuncFlow // lazily built; most functions call no sinks
			results := namedResultObjs(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.ExprStmt:
					if call, why := sinkCall(pass, info, v.X); call != nil {
						pass.Reportf(call.Pos(), "result of %s is discarded (%s): a failed close/flush loses buffered output — check it or fold it into the return error (cliio.CloseChecked)",
							calleeLabel(info, call), why)
					}
				case *ast.DeferStmt:
					if call, why := sinkCall(pass, info, v.Call); call != nil {
						pass.Reportf(call.Pos(), "deferred %s discards its error (%s): this is the exit-0-on-ENOSPC shape — use defer cliio.CloseChecked(name, c, &err) instead",
							calleeLabel(info, call), why)
					}
				case *ast.GoStmt:
					if call, why := sinkCall(pass, info, v.Call); call != nil {
						pass.Reportf(call.Pos(), "go %s discards its error (%s): nothing can observe the failure", calleeLabel(info, call), why)
					}
				case *ast.AssignStmt:
					if flow == nil {
						flow = BuildFlow(info, fd.Body)
					}
					checkSinkAssign(pass, info, flow, results, v)
				}
				return true
			})
		}
	}
}

// sinkCall reports e as a call to a sink (per the unit's
// classification), returning the call and the reason, or nil.
func sinkCall(pass *Pass, info *types.Info, e ast.Expr) (*ast.CallExpr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, ""
	}
	if why := pass.Unit.SinkReason(fn); why != "" {
		return call, why
	}
	return nil, ""
}

// checkSinkAssign flags assignments where a sink call's error result
// lands in the blank identifier or in a variable the function never
// reads.
func checkSinkAssign(pass *Pass, info *types.Info, flow *FuncFlow, results map[types.Object]bool, as *ast.AssignStmt) {
	// Only the single-call RHS shapes bind a sink's results to
	// identifiable places: err := c.Close() and n, err := w.Write(p).
	if len(as.Rhs) != 1 {
		return
	}
	call, why := sinkCall(pass, info, as.Rhs[0])
	if call == nil {
		return
	}
	// The error is the last result, so it binds to the last LHS.
	errLHS := as.Lhs[len(as.Lhs)-1]
	id, ok := errLHS.(*ast.Ident)
	if !ok {
		return // stored through a selector/index: visible to the caller's own logic
	}
	if id.Name == "_" {
		pass.Reportf(as.Pos(), "error of %s is explicitly discarded (%s): if this site is genuinely best-effort, say why with //dtbvet:ignore errsink -- <reason>",
			calleeLabel(info, call), why)
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil || !isErrorType(obj.Type()) {
		return
	}
	if results[obj] {
		return // a named result is read by every return, bare ones included
	}
	if !flow.IsRead(obj) {
		pass.Reportf(as.Pos(), "error of %s is bound to %s but never read (%s): the check was lost, not written", calleeLabel(info, call), id.Name, why)
	}
}

// namedResultObjs collects the objects of fd's named results, which a
// bare return reads without any identifier the use-def chains could
// see.
func namedResultObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Results == nil {
		return out
	}
	for _, field := range fd.Type.Results.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// calleeLabel renders the called function for a diagnostic:
// "(*os.File).Close" or "cliio.WriteTo".
func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	return "sink"
}
