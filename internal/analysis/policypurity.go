package analysis

import (
	"go/ast"
	"go/types"
)

// PolicyPurity guards the comparability premise of the paper's Table
// 1: a boundary policy must be a pure function of (now, history,
// heap). It inspects every function with a *core.History parameter —
// the Policy.Boundary implementations and their helpers — and flags:
//
//   - writes through the history parameter (field stores, element
//     stores, History.Record calls): the simulator owns the history;
//   - stores of the history or heap parameter into anything that
//     outlives the call (receiver fields, package variables, other
//     non-local locations): a retained history aliases the
//     simulator's and turns a policy stateful;
//   - writes to receiver state or package variables from inside the
//     policy: receiver fields are configuration (TraceMax, MemMax, K),
//     not scratch space, and hidden state desynchronizes replays.
//
// There is exactly one sanctioned escape from statelessness: a
// core.PolicyInstance — a receiver type carrying the full instance
// method set (Boundary, Observe, Snapshot, Restore). Instances exist
// to hold per-run learned state, so their receiver writes are exempt;
// everything else still applies — the history stays read-only and
// unretained, package variables stay off limits — and, because
// instance state must replay bit-identically, instance methods (and
// all policy code) may draw randomness and environment only from
// seeded, snapshot-able sources: math/rand, time.Now, os.Getenv and
// friends are flagged wherever a policy-shaped function uses them.
var PolicyPurity = &Analyzer{
	Name: "policypurity",
	Doc:  "boundary policies must be pure functions of (now, history, heap); instance state only via the sanctioned PolicyInstance contract",
	Run:  runPolicyPurity,
}

func runPolicyPurity(pass *Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			histParams := historyParams(info, fn)
			sanctioned := sanctionedInstanceMethod(info, fn)
			if len(histParams) == 0 && !sanctioned {
				continue
			}
			checkPolicyBody(pass, info, fn, histParams, sanctioned)
		}
	}
}

// instanceMethods is the method set that marks a receiver type as a
// sanctioned core.PolicyInstance: per-run state carriers declare all
// of Boundary/Observe/Snapshot/Restore, and only they may write
// receiver fields from policy code.
var instanceMethods = []string{"Boundary", "Observe", "Snapshot", "Restore"}

// sanctionedInstanceMethod reports whether fn is a method of a type
// implementing the full PolicyInstance method set.
func sanctionedInstanceMethod(info *types.Info, fn *ast.FuncDecl) bool {
	recv := receiverObj(info, fn)
	if recv == nil {
		return false
	}
	for _, name := range instanceMethods {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, nil, name)
		if _, ok := obj.(*types.Func); !ok {
			return false
		}
	}
	return true
}

// historyParams returns the objects of every *core.History parameter
// of fn (empty if fn is not policy-shaped).
func historyParams(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isCoreHistoryPtr(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

func checkPolicyBody(pass *Pass, info *types.Info, fn *ast.FuncDecl, hist map[types.Object]bool, sanctioned bool) {
	recv := receiverObj(info, fn)
	scope := info.Scopes[fn.Type]

	// isLocal reports whether obj is declared inside fn (including
	// parameters), i.e. writing it cannot outlive the call.
	isLocal := func(obj types.Object) bool {
		if obj == nil || scope == nil {
			return false
		}
		for s := obj.Parent(); s != nil; s = s.Parent() {
			if s == scope {
				return true
			}
		}
		return false
	}

	rootObj := func(e ast.Expr) types.Object {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		return info.Uses[id]
	}

	checkWrite := func(lhs ast.Expr) {
		obj := rootObj(lhs)
		if obj == nil {
			return
		}
		switch {
		case hist[obj]:
			// A plain rebind of the parameter itself (hist = ...) is
			// local; only writes *through* it mutate shared state.
			if _, plain := lhs.(*ast.Ident); !plain {
				pass.Reportf(lhs.Pos(), "%s writes through its History parameter: policies must treat the scavenge history as read-only", fn.Name.Name)
			}
		case recv != nil && obj == recv:
			// Sanctioned PolicyInstance methods hold per-run state on
			// the receiver by design.
			if sanctioned {
				return
			}
			if _, plain := lhs.(*ast.Ident); !plain {
				pass.Reportf(lhs.Pos(), "%s mutates receiver state: policy fields are configuration, not scratch space", fn.Name.Name)
			}
		case obj.Parent() == pass.Pkg.Types.Scope():
			pass.Reportf(lhs.Pos(), "%s writes package variable %s: policies must not keep hidden state", fn.Name.Name, obj.Name())
		}
	}

	mentionsTracked := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && hist[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				checkWrite(lhs)
			}
			// Retention: the history parameter may only be bound to
			// locals (helper calls receive it by value anyway); storing
			// it anywhere non-local aliases the simulator's history.
			for i, rhs := range v.Rhs {
				if !mentionsTracked(rhs) {
					continue
				}
				if len(v.Lhs) != len(v.Rhs) {
					continue // multi-value call; conversions below still apply
				}
				lhs := v.Lhs[i]
				id, plain := lhs.(*ast.Ident)
				if plain && (info.Defs[id] != nil || isLocal(info.Uses[id])) {
					continue
				}
				pass.Reportf(rhs.Pos(), "%s stores its History parameter into a location that outlives the call: policies must not retain the history", fn.Name.Name)
			}
		case *ast.IncDecStmt:
			checkWrite(v.X)
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if obj := rootObj(sel.X); obj != nil && hist[obj] && mutatesHistory(sel.Sel.Name) {
					pass.Reportf(v.Pos(), "%s calls History.%s: policies must not mutate the scavenge history", fn.Name.Name, sel.Sel.Name)
				}
				if src := ambientSource(info, sel); src != "" {
					pass.Reportf(v.Pos(), "%s calls %s: policy code must use only seeded, snapshot-able randomness (the run's xrand instance), never ambient state", fn.Name.Name, src)
				}
			}
		}
		return true
	})
}

// ambientSource classifies a selector call as ambient nondeterminism —
// unseeded randomness, wall-clock time, the process environment — and
// returns a human-readable name for it, or "". Any use of math/rand is
// banned outright: even a locally seeded rand.Rand cannot be
// snapshotted for checkpoint/resume, which is why internal/xrand
// exists.
func ambientSource(info *types.Info, sel *ast.SelectorExpr) string {
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		return obj.Pkg().Path() + "." + obj.Name()
	case "time":
		if obj.Name() == "Now" || obj.Name() == "Since" || obj.Name() == "Until" {
			return "time." + obj.Name()
		}
	case "os":
		if obj.Name() == "Getenv" || obj.Name() == "LookupEnv" || obj.Name() == "Environ" {
			return "os." + obj.Name()
		}
	}
	return ""
}

// mutatesHistory lists the History methods that write.
func mutatesHistory(method string) bool { return method == "Record" }

// receiverObj returns the object of fn's receiver, or nil.
func receiverObj(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fn.Recv.List[0].Names[0]]
}
