package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The baseline is the committed ledger of accepted findings: dtbvet
// fails on anything NOT in it, and — the half most tools skip — on
// anything in it that no longer fires. A stale baseline entry is
// drift: either the finding was fixed (delete the entry so it cannot
// regress silently) or the pass changed shape (re-record deliberately
// with -writebaseline). Matching is a multiset over (analyzer,
// module-relative file, message): line numbers churn with every edit
// above a finding, so they identify entries poorly and are kept only
// as a comment-grade hint.

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative, forward slashes
	Line     int    `json:"line"` // hint only; not used for matching
	Message  string `json:"message"`
}

// Baseline is the decoded baseline file.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error: the zero state is "nothing is accepted".
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline records diags as the new accepted set, module-relative
// to root, sorted for a stable diff.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	b := &Baseline{Entries: make([]BaselineEntry, 0, len(diags))}
	for _, d := range diags {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: d.Analyzer,
			File:     RelPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Message:  d.Message,
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Line != c.Line {
			return a.Line < c.Line
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply splits diags against the baseline: the returned slice holds
// the findings NOT covered by a baseline entry, plus one dtbvet-level
// drift diagnostic per baseline entry that matched nothing. Matching
// is a multiset: two identical findings need two entries.
func (b *Baseline) Apply(root string, diags []Diagnostic) []Diagnostic {
	type key struct{ analyzer, file, message string }
	budget := make(map[key]int)
	hint := make(map[key]BaselineEntry)
	for _, e := range b.Entries {
		k := key{e.Analyzer, e.File, e.Message}
		budget[k]++
		hint[k] = e
	}
	var out []Diagnostic
	for _, d := range diags {
		k := key{d.Analyzer, RelPath(root, d.Pos.Filename), d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, d)
	}
	for k, n := range budget { //dtbvet:ignore determinism -- drift diagnostics are sorted before emission
		for ; n > 0; n-- {
			e := hint[k]
			out = append(out, Diagnostic{
				Analyzer: metaAnalyzer,
				Severity: SeverityError,
				Message: fmt.Sprintf("baseline drift: %s no longer reports %q at %s — the finding was fixed or the pass changed; remove the entry (or re-run -writebaseline deliberately)",
					e.Analyzer, e.Message, e.File),
			})
		}
	}
	SortDiagnostics(out)
	return out
}

// RelPath renders path module-relative with forward slashes, or
// returns it unchanged when it lies outside root.
func RelPath(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
