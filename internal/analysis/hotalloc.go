package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces the allocation discipline on functions marked with
// a //dtbvet:hotpath directive: the engine fan-out inner loop, the gc
// mark/scavenge paths, and the mheap object table are called once per
// event or once per object, so a single per-call allocation there
// multiplies into the allocs/op column of BENCH_replay.json. Inside a
// marked function the pass flags the shapes that the Go compiler
// reliably heap-allocates or that grow amortized garbage:
//
//   - &T{...} composite-literal addresses, and slice/map literals
//     (fresh backing store per call)
//   - append to a local slice whose every binding the use-def chains
//     can see lacks capacity (var s []T / s := []T{} /
//     s := make([]T, 0)) — appends to fields and parameters are the
//     amortized-accumulator pattern and are exempt
//   - closures that capture enclosing locals and escape (launched by
//     go/defer or stored outside the function); plain call arguments
//     such as sort.Search comparators stay on the stack and are exempt
//   - concrete values boxed into interface parameters (the probe/any
//     argument shape)
//   - fmt calls (Sprintf and friends allocate regardless of arguments)
//
// Sites on cold abort paths (feeding a return or a panic) are exempt:
// errors are constructed once per failure, not once per call. The
// directive itself is checked — one not attached to a function
// declaration is reported, so annotations cannot silently detach.
var HotAlloc = &Analyzer{
	Name:     "hotalloc",
	Doc:      "no per-call heap allocation in //dtbvet:hotpath functions (composite literals, capacity-less append, escaping closures, interface boxing, fmt)",
	Severity: SeverityWarning,
	Run:      runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Pkg.Files {
		hot, strays := hotpathDecls(pass, f)
		for _, pos := range strays {
			pass.Reportf(pos, "//%s directive is not attached to a function declaration: move it into the function's doc comment", hotpathPrefix)
		}
		if len(hot) == 0 {
			continue
		}
		parents := BuildParents(f)
		for _, fd := range hot {
			checkHotFunc(pass, info, parents, fd)
		}
	}
}

// hotpathDecls returns the functions of f marked //dtbvet:hotpath and
// the positions of hotpath directives attached to nothing.
func hotpathDecls(pass *Pass, f *ast.File) ([]*ast.FuncDecl, []token.Pos) {
	marked := make(map[*ast.CommentGroup]bool)
	var hot []*ast.FuncDecl
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		if hasHotpathDirective(fd.Doc) {
			marked[fd.Doc] = true
			hot = append(hot, fd)
		}
	}
	var strays []token.Pos
	for _, cg := range f.Comments {
		if marked[cg] || !hasHotpathDirective(cg) {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), hotpathPrefix) {
				strays = append(strays, c.Pos())
			}
		}
	}
	return hot, strays
}

func hasHotpathDirective(cg *ast.CommentGroup) bool {
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), hotpathPrefix) {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, info *types.Info, parents Parents, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	name := fd.Name.Name
	flow := BuildFlow(info, fd.Body)
	scope := funcScope(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return true
			}
			if _, isLit := ast.Unparen(v.X).(*ast.CompositeLit); !isLit {
				return true
			}
			if parents.onColdPath(info, v) {
				return true
			}
			pass.Reportf(v.Pos(), "hotpath %s heap-allocates a %s per call: hoist it to a reusable field or pass by value", name, typeLabel(info.TypeOf(v.X)))
		case *ast.CompositeLit:
			// A slice or map literal allocates its backing store even
			// when used by value. Struct/array values may stay on the
			// stack, so only reference-backed literals are flagged.
			t := info.TypeOf(v)
			if t == nil || parents.onColdPath(info, v) {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				if u, isAddr := parents[v].(*ast.UnaryExpr); isAddr && u.Op == token.AND {
					return true // the &T{...} case above already reports it
				}
				pass.Reportf(v.Pos(), "hotpath %s allocates a fresh %s per call: hoist the backing store to a reusable field", name, typeLabel(t))
			}
		case *ast.CallExpr:
			checkHotCall(pass, info, parents, flow, name, v)
		case *ast.FuncLit:
			checkHotClosure(pass, info, parents, scope, name, v)
			return false // the closure body runs elsewhere; do not scan it as hot
		}
		return true
	})
}

// checkHotCall handles the call-shaped allocation sources: fmt calls,
// capacity-less append growth, and interface boxing of arguments.
func checkHotCall(pass *Pass, info *types.Info, parents Parents, flow *FuncFlow, name string, call *ast.CallExpr) {
	if parents.onColdPath(info, call) {
		return
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hotpath %s calls fmt.%s, which allocates on every call: format off the hot path or use strconv", name, fn.Name())
		return // the boxing of its ...any arguments is implied by the fmt report
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if b.Name() == "append" {
				checkHotAppend(pass, info, flow, name, call)
			}
			return
		}
	}
	checkHotBoxing(pass, info, name, call)
}

// checkHotAppend flags append to a local slice none of whose visible
// bindings carry capacity: every such append risks a grow-and-copy
// cycle per call. Fields and parameters are exempt (the accumulator
// may be preallocated by the owner), as is any local with at least one
// binding this pass cannot prove capacity-less (a call result, a slice
// expression, a 3-arg make).
func checkHotAppend(pass *Pass, info *types.Info, flow *FuncFlow, name string, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Uses[base]
	if obj == nil {
		obj = info.Defs[base]
	}
	if obj == nil || !flow.IsLocalDef(obj) {
		return
	}
	for _, def := range flow.Defs(obj) {
		if !capacityLessDef(info, def) {
			return
		}
	}
	pass.Reportf(call.Pos(), "hotpath %s appends to %s, which never has capacity: preallocate with make(%s, 0, n) or reuse a field", name, base.Name, typeLabel(obj.Type()))
}

// capacityLessDef reports whether def is a binding the pass can prove
// starts with zero capacity: no binding at all (var s []T, or the
// append's own result), nil, an empty composite literal, or a make
// with a constant-zero length and no capacity argument.
func capacityLessDef(info *types.Info, def ast.Expr) bool {
	if def == nil {
		return true
	}
	def = ast.Unparen(def)
	switch v := def.(type) {
	case *ast.Ident:
		return v.Name == "nil"
	case *ast.CompositeLit:
		return len(v.Elts) == 0
	case *ast.CallExpr:
		id, ok := v.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, isBuiltin := info.Uses[id].(*types.Builtin)
		if !isBuiltin {
			return false
		}
		switch b.Name() {
		case "append":
			// s = append(s, x): growth of the same accumulator, not a
			// fresh capacity source.
			return true
		case "make":
			if len(v.Args) >= 3 {
				return false // explicit capacity
			}
			if len(v.Args) == 2 {
				tv, ok := info.Types[v.Args[1]]
				return ok && tv.Value != nil && tv.Value.String() == "0"
			}
			return true // make(map[...]...) etc.
		}
		return false
	}
	return false
}

// checkHotBoxing flags concrete non-pointer arguments passed to
// interface parameters: each boxing allocates (or at best copies into
// an escape-prone eface). Nil, interfaces, pointers, and conversions
// written explicitly by the caller are exempt.
func checkHotBoxing(pass *Pass, info *types.Info, name string, call *ast.CallExpr) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < sig.Params().Len()-1 || (i == sig.Params().Len()-1 && !sig.Variadic()):
			param = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no boxing
			}
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			slice, isSlice := last.Underlying().(*types.Slice)
			if !isSlice {
				continue
			}
			param = slice.Elem()
		default:
			continue
		}
		if !types.IsInterface(param.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if basic, isBasic := at.(*types.Basic); isBasic && basic.Info()&types.IsUntyped != 0 {
			if basic.Kind() == types.UntypedNil {
				continue
			}
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in the eface word, no allocation
		}
		pass.Reportf(arg.Pos(), "hotpath %s boxes %s into %s per call: accept a concrete type or pass a pointer", name, typeLabel(at), typeLabel(param))
	}
}

// checkHotClosure flags closures that capture enclosing locals and
// escape the statement they appear in: go/defer launches and stores
// outside the function force the captured frame to the heap. A closure
// passed as a plain call argument (the sort.Search comparator shape)
// does not escape and is exempt, as is one capturing nothing.
func checkHotClosure(pass *Pass, info *types.Info, parents Parents, scope *types.Scope, name string, lit *ast.FuncLit) {
	captured := capturedLocal(info, scope, lit)
	if captured == "" {
		return
	}
	switch parent := parents[lit].(type) {
	case *ast.CallExpr:
		// A call argument (or an immediately-invoked closure) stays on
		// the stack unless the callee leaks it — beyond this pass.
		grand := parents[parent]
		if _, isGo := grand.(*ast.GoStmt); isGo {
			pass.Reportf(lit.Pos(), "hotpath %s launches a goroutine closure capturing %s per call: the captured frame escapes — hoist the launch out of the hot path", name, captured)
		}
		if _, isDefer := grand.(*ast.DeferStmt); isDefer {
			pass.Reportf(lit.Pos(), "hotpath %s defers a closure capturing %s per call: the captured frame escapes — use a method value or hoist the defer", name, captured)
		}
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if ast.Unparen(rhs) != lit || i >= len(parent.Lhs) {
				continue
			}
			if dest, isIdent := parent.Lhs[i].(*ast.Ident); isIdent {
				obj := info.Defs[dest]
				if obj == nil {
					obj = info.Uses[dest]
				}
				if declaredIn(obj, scope) {
					return // stored in a local: stays in the frame
				}
			}
			pass.Reportf(lit.Pos(), "hotpath %s stores a closure capturing %s outside the function: the captured frame escapes per call", name, captured)
		}
	}
}

// capturedLocal names one local of the enclosing function that lit
// captures, or "" if it captures none.
func capturedLocal(info *types.Info, scope *types.Scope, lit *ast.FuncLit) string {
	litScope := info.Scopes[lit.Type]
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !declaredIn(obj, scope) {
			return true
		}
		if declaredIn(obj, litScope) {
			return true // the closure's own local
		}
		captured = obj.Name()
		return false
	})
	return captured
}
