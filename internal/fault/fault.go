// Package fault is the deterministic fault-injection harness: it
// wraps the seams the simulator's data flows through — trace readers,
// telemetry and output writers, event sources, context cancellation —
// with faults scheduled at exact byte or event offsets, so every
// adverse-I/O code path can be exercised on purpose instead of waiting
// for a full disk to find it in production.
//
// The paper's pitch is a collector that honors a user constraint under
// adverse, shifting conditions; this package is the reproduction's
// answer for the harness itself. Every fault is scheduled, not random:
// a Plan parsed from "trunc@4096,close-err" injects exactly those
// faults at exactly those offsets, every run, so a failing scenario is
// a reproducible test case by construction. Seeded *schedules* come
// from deriving offsets deterministically (see RandomPlan) — the
// randomness lives in the schedule derivation, never in the injection.
//
// Faults are one-shot: each fires exactly once and is then spent.
// That models the transient failure the checkpoint/resume layer
// (internal/engine) exists for — re-wrapping a reopened file with the
// same Plan yields a clean second pass, so "retry after a read error"
// is testable end to end. The one exception is ShortWrite, which caps
// every Write it sees (a persistently misbehaving writer, not a
// transient event).
//
// SelfTest is the harness's own mutation-style proof: for every fault
// class it asserts the production paths either recover with an exact,
// accounted drop or fail loudly with an error — a fault class that can
// pass silently fails the self-test, so a green run is trustworthy.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// ErrInjected is the sentinel wrapped by every injected failure, so
// tests and callers can tell a scheduled fault from a real one with
// errors.Is.
var ErrInjected = errors.New("fault: injected")

// Kind enumerates the fault classes the harness injects.
type Kind uint8

const (
	// ReadErr fails the wrapped reader with an injected error once its
	// byte offset is reached — a dying disk or dropped connection
	// mid-stream.
	ReadErr Kind = iota
	// Truncate ends the wrapped reader with a clean EOF at the byte
	// offset — a torn file tail: the bytes past the offset never made
	// it to storage, and nothing in the stream says so.
	Truncate
	// WriteErr accepts bytes up to the offset and then fails the write
	// that crosses it (short write + error) — ENOSPC mid-stream.
	WriteErr
	// CloseErr lets every write succeed but fails Close — ENOSPC
	// surfacing only at the final flush, the classic cause of a
	// zero-exit tool leaving a silently truncated output file.
	CloseErr
	// ShortWrite caps every Write at Offset bytes while returning a nil
	// error — a contract-violating writer; correct consumers (bufio)
	// must surface io.ErrShortWrite rather than lose the tail.
	ShortWrite
	// SourceErr fails an event source after Offset events — a
	// generator or decoder dying mid-replay.
	SourceErr
	// Cancel invokes the run's cancel function after Offset events —
	// the Ctrl-C / deadline storm; the replay must abort with the
	// context's error, never a partial result.
	Cancel
)

// kindNames maps the spec-grammar names to kinds, in spec order.
var kindNames = []struct {
	name string
	kind Kind
}{
	{"read-err", ReadErr},
	{"trunc", Truncate},
	{"write-err", WriteErr},
	{"close-err", CloseErr},
	{"short-write", ShortWrite},
	{"source-err", SourceErr},
	{"cancel", Cancel},
}

// String returns the spec-grammar name of the kind.
func (k Kind) String() string {
	for _, kn := range kindNames {
		if kn.kind == k {
			return kn.name
		}
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Kinds returns every fault class, in spec-grammar order.
func Kinds() []Kind {
	out := make([]Kind, len(kindNames))
	for i, kn := range kindNames {
		out[i] = kn.kind
	}
	return out
}

// Fault is one scheduled fault: a class and the offset at which it
// fires. The offset counts bytes for the reader/writer classes and
// events for SourceErr and Cancel; for ShortWrite it is the per-call
// byte cap, and for CloseErr it is ignored.
type Fault struct {
	Kind   Kind
	Offset uint64
}

// String renders the fault in spec-grammar form.
func (f Fault) String() string {
	if f.Kind == CloseErr {
		return f.Kind.String()
	}
	return fmt.Sprintf("%s@%d", f.Kind, f.Offset)
}

// fault is the Plan's internal, fire-once state for one Fault.
type fault struct {
	Fault
	fired bool
}

// Plan is a schedule of faults shared by every wrapper derived from
// it. Wrappers consult the plan on each operation; a fault fires at
// most once (except ShortWrite, which persists). A nil *Plan is valid
// everywhere and injects nothing, so call sites can thread an optional
// -inject flag without branching.
//
// The plan is safe for concurrent use: concurrent runs can share one
// plan, and each scheduled fault still fires exactly once.
type Plan struct {
	mu     sync.Mutex
	faults []*fault
}

// NewPlan returns a plan scheduling the given faults.
func NewPlan(faults ...Fault) *Plan {
	p := &Plan{}
	for _, f := range faults {
		p.faults = append(p.faults, &fault{Fault: f})
	}
	return p
}

// ParseSpec parses the -inject grammar: comma-separated kind@offset
// entries ("read-err@4096,close-err"). Offsets take an optional k or m
// suffix (binary: 4k = 4096). CloseErr needs no offset; ShortWrite's
// offset is the per-call cap and must be positive.
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, offStr, hasOff := strings.Cut(entry, "@")
		var kind Kind
		found := false
		for _, kn := range kindNames {
			if kn.name == name {
				kind, found = kn.kind, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fault: unknown fault %q in %q (have %s)", name, spec, specKinds())
		}
		var off uint64
		if hasOff {
			var err error
			off, err = parseOffset(offStr)
			if err != nil {
				return nil, fmt.Errorf("fault: bad offset in %q: %v", entry, err)
			}
		} else if kind != CloseErr {
			return nil, fmt.Errorf("fault: %q needs an @offset", entry)
		}
		if kind == ShortWrite && off == 0 {
			return nil, fmt.Errorf("fault: short-write cap must be positive in %q", entry)
		}
		p.faults = append(p.faults, &fault{Fault: Fault{Kind: kind, Offset: off}})
	}
	if len(p.faults) == 0 {
		return nil, fmt.Errorf("fault: empty spec %q", spec)
	}
	return p, nil
}

// parseOffset parses a decimal offset with an optional k/m binary
// suffix.
func parseOffset(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1024, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1024*1024, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// specKinds lists the grammar's kind names for error messages.
func specKinds() string {
	names := make([]string, len(kindNames))
	for i, kn := range kindNames {
		names[i] = kn.name
	}
	return strings.Join(names, ", ")
}

// String renders the plan back into spec-grammar form.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	parts := make([]string, len(p.faults))
	for i, f := range p.faults {
		parts[i] = f.Fault.String()
	}
	return strings.Join(parts, ",")
}

// Unfired returns the scheduled faults that have not fired yet, in
// schedule order. A fault self-test uses it to prove every scheduled
// fault was actually exercised.
func (p *Plan) Unfired() []Fault {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Fault
	for _, f := range p.faults {
		if !f.fired {
			out = append(out, f.Fault)
		}
	}
	return out
}

// next returns the unfired fault of one of the given kinds with the
// smallest offset, or nil. The caller fires it via fire.
func (p *Plan) next(kinds ...Kind) *fault {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *fault
	for _, f := range p.faults {
		if f.fired {
			continue
		}
		for _, k := range kinds {
			if f.Kind == k && (best == nil || f.Offset < best.Offset) {
				best = f
			}
		}
	}
	return best
}

// fire marks the fault spent. ShortWrite is never spent: a
// misbehaving writer misbehaves on every call.
func (p *Plan) fire(f *fault) {
	if f.Kind == ShortWrite {
		return
	}
	p.mu.Lock()
	f.fired = true
	p.mu.Unlock()
}

// injected builds the error an injected fault surfaces as.
func injected(f Fault) error {
	return fmt.Errorf("%w: %s", ErrInjected, f)
}

// RandomPlan derives a deterministic schedule of one fault of the
// given kind from a seed and a size hint (the stream's byte or event
// length): same seed, same schedule. It is how sweep harnesses explore
// offsets without hand-picking them; the offset lands in [1, sizeHint)
// so the fault always fires mid-stream.
func RandomPlan(seed uint64, kind Kind, sizeHint uint64) *Plan {
	if sizeHint < 2 {
		sizeHint = 2
	}
	// SplitMix64: a full-period mixer, so consecutive seeds give
	// well-spread offsets without any shared state.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	off := 1 + z%(sizeHint-1)
	if kind == CloseErr {
		off = 0
	}
	return NewPlan(Fault{Kind: kind, Offset: off})
}
