package fault

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"

	"github.com/dtbgc/dtbgc/internal/core"
	"github.com/dtbgc/dtbgc/internal/engine"
	"github.com/dtbgc/dtbgc/internal/sim"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// SelfTest is the harness's mutation-style proof of coverage: for every
// fault class it runs the production path that class threatens and
// asserts the outcome is either a recovery with exact, accounted drops
// or a loud error — never a silent success. It returns the first
// violated expectation (with every scheduled fault double-checked as
// fired), so a nil return means every fault class demonstrably bites.
//
// logf, if non-nil, receives one progress line per class (pass
// testing.T.Logf from tests, or a no-op from CLIs).
func SelfTest(logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	events := selfTestEvents()
	data, offs, err := encodeWithOffsets(events)
	if err != nil {
		return fmt.Errorf("selftest: encoding fixture: %v", err)
	}

	for _, step := range []struct {
		name string
		run  func() (*Plan, error)
	}{
		{"spec grammar round-trip", checkSpecRoundTrip},
		{"read-err fails the strict reader loudly", func() (*Plan, error) { return checkReadErr(data) }},
		{"trunc mid-record fails the strict reader loudly", func() (*Plan, error) { return checkTruncStrict(data, offs) }},
		{"trunc mid-record recovers with an exact accounted drop", func() (*Plan, error) { return checkTruncRecovered(events, data, offs) }},
		{"write-err fails the writer loudly", func() (*Plan, error) { return checkWriteErr(data) }},
		{"close-err fails only at Close", func() (*Plan, error) { return checkCloseErr(data) }},
		{"short-write surfaces io.ErrShortWrite through bufio", func() (*Plan, error) { return checkShortWrite(data) }},
		{"source-err checkpoints and resumes bit-identically", func() (*Plan, error) { return checkSourceErr(events) }},
		{"cancel aborts with the context error and resumes", func() (*Plan, error) { return checkCancel(events) }},
	} {
		plan, err := step.run()
		if err != nil {
			return fmt.Errorf("selftest: %s: %w", step.name, err)
		}
		// ShortWrite is exempt from the fired check: it persists by
		// design (never spent), and its step already proved it bit by
		// asserting io.ErrShortWrite surfaced.
		var unfired []Fault
		for _, f := range plan.Unfired() {
			if f.Kind != ShortWrite {
				unfired = append(unfired, f)
			}
		}
		if len(unfired) > 0 {
			return fmt.Errorf("selftest: %s: scheduled fault(s) never fired: %v", step.name, unfired)
		}
		logf("fault selftest: %s", step.name)
	}
	return nil
}

// selfTestEvents builds the fixture trace: enough events that the
// engine's periodic context check (every few thousand events) lands
// between a Cancel fault and the end of the stream, with every event
// kind represented and a valid alloc/free discipline throughout.
func selfTestEvents() []trace.Event {
	var events []trace.Event
	var live []trace.ObjectID
	instr := uint64(1)
	id := trace.ObjectID(1)
	for len(events) < 12000 {
		instr += 7 + uint64(len(events)%13)
		switch {
		case len(events)%997 == 500:
			events = append(events, trace.Mark(fmt.Sprintf("phase-%d", len(events)/997), instr))
		case len(live) >= 64:
			events = append(events, trace.Free(live[0], instr))
			live = live[1:]
		case len(live) >= 2 && len(events)%5 == 3:
			events = append(events, trace.PtrWrite(live[len(live)-1], uint32(len(events)%8), live[0], instr))
		default:
			size := uint64(16 + (len(events)%64)*24)
			events = append(events, trace.Alloc(id, size, instr))
			live = append(live, id)
			id++
		}
	}
	return events
}

// encodeWithOffsets encodes events and returns the stream plus the
// byte offsets where the two records around the middle start, derived
// by encoding prefixes — with the delta clock, a record's length
// depends only on its prefix.
func encodeWithOffsets(events []trace.Event) ([]byte, []int, error) {
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, events); err != nil {
		return nil, nil, err
	}
	mid := len(events) / 2
	offs := make([]int, 0, 2)
	for i := mid; i <= mid+1; i++ {
		var b bytes.Buffer
		if err := trace.WriteAll(&b, events[:i]); err != nil {
			return nil, nil, err
		}
		offs = append(offs, b.Len())
	}
	return buf.Bytes(), offs, nil
}

func checkSpecRoundTrip() (*Plan, error) {
	const spec = "read-err@4096,trunc@8k,write-err@1m,close-err,short-write@512,source-err@100,cancel@7"
	p, err := ParseSpec(spec)
	if err != nil {
		return NewPlan(), err
	}
	if got := p.String(); got != "read-err@4096,trunc@8192,write-err@1048576,close-err,short-write@512,source-err@100,cancel@7" {
		return NewPlan(), fmt.Errorf("round-trip gave %q", got)
	}
	for _, bad := range []string{"", "bogus@1", "read-err", "short-write@0", "trunc@x"} {
		if _, err := ParseSpec(bad); err == nil {
			return NewPlan(), fmt.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	return NewPlan(), nil // nothing to fire in a grammar check
}

func checkReadErr(data []byte) (*Plan, error) {
	plan := NewPlan(Fault{Kind: ReadErr, Offset: uint64(len(data) / 2)})
	_, err := trace.NewReader(plan.Reader(bytes.NewReader(data))).ReadAll()
	if !errors.Is(err, ErrInjected) {
		return plan, fmt.Errorf("strict decode returned %v, want the injected read error", err)
	}
	return plan, nil
}

func checkTruncStrict(data []byte, offs []int) (*Plan, error) {
	cut := offs[0] + 1 // one byte into a mid-stream record: a torn tail
	plan := NewPlan(Fault{Kind: Truncate, Offset: uint64(cut)})
	_, err := trace.NewReader(plan.Reader(bytes.NewReader(data))).ReadAll()
	if err == nil || errors.Is(err, io.EOF) {
		return plan, fmt.Errorf("strict decode of a torn stream returned %v, want a decode error", err)
	}
	return plan, nil
}

func checkTruncRecovered(events []trace.Event, data []byte, offs []int) (*Plan, error) {
	cut := offs[0] + 1
	plan := NewPlan(Fault{Kind: Truncate, Offset: uint64(cut)})
	rr := trace.NewRecoveringReader(plan.Reader(bytes.NewReader(data)))
	got, err := rr.ReadAll()
	if err != nil {
		return plan, fmt.Errorf("recovery failed: %v", err)
	}
	want := len(events) / 2 // the record the cut lands in, and after, are gone
	if len(got) != want {
		return plan, fmt.Errorf("recovered %d events, want the %d before the tear", len(got), want)
	}
	drops := rr.Drops()
	if exact := (trace.DropStats{TornTail: 1, BytesDropped: 1}); drops != exact {
		return plan, fmt.Errorf("drops = %+v, want exactly %+v", drops, exact)
	}
	for i := range got {
		if got[i] != events[i] {
			return plan, fmt.Errorf("recovered event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
	return plan, nil
}

func checkWriteErr(data []byte) (*Plan, error) {
	plan := NewPlan(Fault{Kind: WriteErr, Offset: uint64(len(data) / 3)})
	var sink bytes.Buffer
	_, err := plan.Writer(&sink).Write(data)
	if !errors.Is(err, ErrInjected) {
		return plan, fmt.Errorf("write returned %v, want the injected write error", err)
	}
	if sink.Len() != len(data)/3 {
		return plan, fmt.Errorf("%d bytes landed before the fault, want %d", sink.Len(), len(data)/3)
	}
	return plan, nil
}

func checkCloseErr(data []byte) (*Plan, error) {
	plan := NewPlan(Fault{Kind: CloseErr})
	var sink bytes.Buffer
	w := plan.Writer(&sink)
	if _, err := w.Write(data); err != nil {
		return plan, fmt.Errorf("write before close failed: %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrInjected) {
		return plan, fmt.Errorf("Close returned %v, want the injected close error", err)
	}
	return plan, nil
}

func checkShortWrite(data []byte) (*Plan, error) {
	plan := NewPlan(Fault{Kind: ShortWrite, Offset: 100})
	var sink bytes.Buffer
	bw := bufio.NewWriterSize(plan.Writer(&sink), 4096)
	_, werr := bw.Write(data)
	ferr := bw.Flush()
	if !errors.Is(werr, io.ErrShortWrite) && !errors.Is(ferr, io.ErrShortWrite) {
		return plan, fmt.Errorf("bufio over a short writer gave write=%v flush=%v, want io.ErrShortWrite", werr, ferr)
	}
	return plan, nil
}

// replayConfigs is the matrix SelfTest replays under: the paper's DTB
// collector plus a baseline, so resume consistency is checked on both
// stateful-policy and policy-free paths.
func replayConfigs(probe sim.Probe) []sim.Config {
	return []sim.Config{
		{Policy: core.DtbFM{TraceMax: 8 * 1024}, TriggerBytes: 32 * 1024, Probe: probe, Label: "selftest-dtbfm"},
		{Policy: core.Full{}, TriggerBytes: 32 * 1024, Probe: probe, Label: "selftest-full"},
	}
}

// baselineReplay runs the uninterrupted replay and returns its results
// and telemetry stream for comparison.
func baselineReplay(events []trace.Event) ([]*sim.Result, []byte, error) {
	var tel bytes.Buffer
	res, err := engine.Replay(context.Background(), engine.SliceSource(events), replayConfigs(sim.NewTelemetryWriter(&tel)))
	return res, tel.Bytes(), err
}

func checkSourceErr(events []trace.Event) (*Plan, error) {
	want, wantTel, err := baselineReplay(events)
	if err != nil {
		return NewPlan(), fmt.Errorf("baseline replay: %v", err)
	}
	plan := NewPlan(Fault{Kind: SourceErr, Offset: uint64(len(events) / 2)})
	var tel bytes.Buffer
	cfgs := replayConfigs(sim.NewTelemetryWriter(&tel))
	src := engine.Source(plan.Source(engine.SliceSource(events), nil))
	_, cp, err := engine.ReplayResumable(context.Background(), src, cfgs)
	if !errors.Is(err, ErrInjected) {
		return plan, fmt.Errorf("interrupted replay returned %v, want the injected source error", err)
	}
	if cp == nil || cp.Events() != len(events)/2 {
		return plan, fmt.Errorf("checkpoint %v, want one at event %d", cp, len(events)/2)
	}
	// The fault is spent, so re-wrapping models reopening the source
	// after a transient failure: the second pass is clean.
	got, cp, err := cp.Resume(context.Background(), engine.Source(plan.Source(engine.SliceSource(events), nil)))
	if err != nil || cp != nil {
		return plan, fmt.Errorf("resume: %v (checkpoint %v)", err, cp)
	}
	if !reflect.DeepEqual(got, want) {
		return plan, fmt.Errorf("resumed results differ from the uninterrupted run's")
	}
	if !bytes.Equal(tel.Bytes(), wantTel) {
		return plan, fmt.Errorf("resumed telemetry stream differs from the uninterrupted run's")
	}
	return plan, nil
}

func checkCancel(events []trace.Event) (*Plan, error) {
	want, _, err := baselineReplay(events)
	if err != nil {
		return NewPlan(), fmt.Errorf("baseline replay: %v", err)
	}
	plan := NewPlan(Fault{Kind: Cancel, Offset: 100})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := engine.Source(plan.Source(engine.SliceSource(events), cancel))
	_, cp, err := engine.ReplayResumable(ctx, src, replayConfigs(nil))
	if !errors.Is(err, context.Canceled) {
		return plan, fmt.Errorf("cancelled replay returned %v, want context.Canceled", err)
	}
	if cp == nil {
		return plan, errors.New("cancellation between events offered no checkpoint")
	}
	got, cp, err := cp.Resume(context.Background(), engine.Source(plan.Source(engine.SliceSource(events), func() {})))
	if err != nil || cp != nil {
		return plan, fmt.Errorf("resume under a fresh context: %v (checkpoint %v)", err, cp)
	}
	if !reflect.DeepEqual(got, want) {
		return plan, fmt.Errorf("resumed-after-cancel results differ from the uninterrupted run's")
	}
	return plan, nil
}
