package fault

import "io"

// Reader injects the plan's read-side faults (ReadErr, Truncate) into
// an io.Reader at exact byte offsets. Reads short of the next
// scheduled offset pass through; the read that would cross it is
// capped so the fault fires at precisely its offset.
type Reader struct {
	r    io.Reader
	plan *Plan
	off  uint64 // bytes delivered so far
}

// Reader wraps r with the plan's read-side faults. A nil plan (or a
// plan with no read-side faults left) passes r through unchanged.
func (p *Plan) Reader(r io.Reader) io.Reader {
	if p == nil {
		return r
	}
	return &Reader{r: r, plan: p}
}

// Read implements io.Reader.
func (f *Reader) Read(b []byte) (int, error) {
	next := f.plan.next(ReadErr, Truncate)
	if next != nil {
		if f.off >= next.Offset {
			f.plan.fire(next)
			if next.Kind == Truncate {
				// The torn tail: the stream just ends, with nothing to
				// distinguish it from a clean EOF at this layer.
				return 0, io.EOF
			}
			return 0, injected(next.Fault)
		}
		if max := next.Offset - f.off; uint64(len(b)) > max {
			b = b[:max]
		}
	}
	n, err := f.r.Read(b)
	f.off += uint64(n)
	return n, err
}
