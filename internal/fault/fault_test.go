package fault

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/trace"
)

func TestParseSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"read-err@4096",
		"trunc@8192,close-err",
		"write-err@1048576,short-write@512",
		"source-err@100,cancel@7",
	} {
		p, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("ParseSpec(%q).String() = %q", spec, got)
		}
	}
}

func TestParseSpecSuffixes(t *testing.T) {
	p, err := ParseSpec(" trunc@4k , read-err@2M ")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "trunc@4096,read-err@2097152" {
		t.Errorf("suffix expansion: %q", got)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, bad := range []string{
		"",              // empty spec
		",,",            // only separators
		"bogus@1",       // unknown kind
		"read-err",      // missing required offset
		"trunc@",        // empty offset
		"trunc@-1",      // negative
		"trunc@4q",      // bad suffix
		"short-write@0", // zero cap
	} {
		if p, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted: %v", bad, p)
		}
	}
}

func TestReaderInjectsAtExactOffset(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 1000)
	plan := NewPlan(Fault{Kind: ReadErr, Offset: 300})
	got, err := io.ReadAll(plan.Reader(bytes.NewReader(data)))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if len(got) != 300 {
		t.Fatalf("delivered %d bytes before the fault, want 300", len(got))
	}
	if !strings.Contains(err.Error(), "read-err@300") {
		t.Errorf("error %q does not name the fault", err)
	}
}

func TestReaderTruncatesAsCleanEOF(t *testing.T) {
	data := bytes.Repeat([]byte{0xCD}, 1000)
	plan := NewPlan(Fault{Kind: Truncate, Offset: 515})
	got, err := io.ReadAll(plan.Reader(bytes.NewReader(data)))
	if err != nil {
		t.Fatalf("truncation must look like clean EOF, got %v", err)
	}
	if len(got) != 515 {
		t.Fatalf("delivered %d bytes, want 515", len(got))
	}
}

func TestOneShotFaultsAllowCleanSecondPass(t *testing.T) {
	data := bytes.Repeat([]byte{1}, 100)
	plan := NewPlan(Fault{Kind: ReadErr, Offset: 10})
	if _, err := io.ReadAll(plan.Reader(bytes.NewReader(data))); !errors.Is(err, ErrInjected) {
		t.Fatalf("first pass: %v", err)
	}
	// Re-wrapping models reopening after a transient failure: the fault
	// is spent, so the retry reads everything.
	got, err := io.ReadAll(plan.Reader(bytes.NewReader(data)))
	if err != nil || len(got) != len(data) {
		t.Fatalf("second pass: %d bytes, %v", len(got), err)
	}
	if unfired := plan.Unfired(); len(unfired) != 0 {
		t.Fatalf("Unfired() = %v after the fault fired", unfired)
	}
}

func TestWriterInjectsAcrossOffset(t *testing.T) {
	plan := NewPlan(Fault{Kind: WriteErr, Offset: 50})
	var sink bytes.Buffer
	w := plan.Writer(&sink)
	if n, err := w.Write(make([]byte, 40)); n != 40 || err != nil {
		t.Fatalf("write below the offset: %d, %v", n, err)
	}
	n, err := w.Write(make([]byte, 40))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: %v, want ErrInjected", err)
	}
	if n != 10 || sink.Len() != 50 {
		t.Fatalf("short write landed %d bytes (sink %d), want exactly up to offset 50", n, sink.Len())
	}
}

func TestShortWritePersists(t *testing.T) {
	plan := NewPlan(Fault{Kind: ShortWrite, Offset: 8})
	var sink bytes.Buffer
	w := plan.Writer(&sink)
	for i := 0; i < 3; i++ {
		n, err := w.Write(make([]byte, 32))
		if n != 8 || err != nil {
			t.Fatalf("call %d: n=%d err=%v, want the persistent 8-byte cap with no error", i, n, err)
		}
	}
	if unfired := plan.Unfired(); len(unfired) != 1 {
		t.Fatalf("short-write must stay scheduled (a persistent misbehavior), Unfired() = %v", unfired)
	}
}

func TestCloseErrFiresOnlyAtClose(t *testing.T) {
	plan := NewPlan(Fault{Kind: CloseErr})
	var sink bytes.Buffer
	w := plan.Writer(&sink)
	if _, err := w.Write([]byte("all writes succeed")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close: %v, want ErrInjected", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close after the fault fired: %v", err)
	}
}

func TestNilPlanPassesThrough(t *testing.T) {
	var p *Plan
	data := []byte("payload")
	if r := p.Reader(bytes.NewReader(data)); r == nil {
		t.Fatal("nil plan Reader")
	} else if got, err := io.ReadAll(r); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("nil-plan read: %q, %v", got, err)
	}
	var sink bytes.Buffer
	w := p.Writer(&sink)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("nil-plan write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("nil-plan close: %v", err)
	}
	if p.String() != "" || p.Unfired() != nil {
		t.Fatal("nil plan must render empty and report nothing unfired")
	}
	src := p.Source(func(emit func(trace.Event) error) error {
		return emit(trace.Alloc(1, 8, 1))
	}, nil)
	count := 0
	if err := src(func(trace.Event) error { count++; return nil }); err != nil || count != 1 {
		t.Fatalf("nil-plan source: %d events, %v", count, err)
	}
}

func TestSourceErrAtExactEvent(t *testing.T) {
	events := make([]trace.Event, 10)
	for i := range events {
		events[i] = trace.Alloc(trace.ObjectID(i+1), 8, uint64(i+1))
	}
	emitAll := func(emit func(trace.Event) error) error {
		for _, e := range events {
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	}
	plan := NewPlan(Fault{Kind: SourceErr, Offset: 4})
	seen := 0
	err := plan.Source(emitAll, nil)(func(trace.Event) error { seen++; return nil })
	if !errors.Is(err, ErrInjected) || seen != 4 {
		t.Fatalf("saw %d events, err %v; want 4 events then the injected error", seen, err)
	}
}

func TestCancelInvokesCancelAndContinues(t *testing.T) {
	events := make([]trace.Event, 10)
	for i := range events {
		events[i] = trace.Alloc(trace.ObjectID(i+1), 8, uint64(i+1))
	}
	emitAll := func(emit func(trace.Event) error) error {
		for _, e := range events {
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	}
	plan := NewPlan(Fault{Kind: Cancel, Offset: 6})
	cancelled := false
	seen := 0
	err := plan.Source(emitAll, func() { cancelled = true })(func(trace.Event) error { seen++; return nil })
	if err != nil {
		t.Fatalf("a cancel storm is not a stream error: %v", err)
	}
	if !cancelled || seen != len(events) {
		t.Fatalf("cancelled=%v seen=%d; cancel must fire at event 6 and the stream must keep flowing", cancelled, seen)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a := RandomPlan(seed, Truncate, 10000)
		b := RandomPlan(seed, Truncate, 10000)
		if a.String() != b.String() {
			t.Fatalf("seed %d: %q vs %q", seed, a, b)
		}
		f := a.Unfired()[0]
		if f.Offset < 1 || f.Offset >= 10000 {
			t.Fatalf("seed %d: offset %d outside [1, 10000)", seed, f.Offset)
		}
	}
	if a, b := RandomPlan(1, ReadErr, 10000), RandomPlan(2, ReadErr, 10000); a.String() == b.String() {
		t.Fatal("adjacent seeds produced the same schedule")
	}
}

func TestSelfTest(t *testing.T) {
	if err := SelfTest(t.Logf); err != nil {
		t.Fatal(err)
	}
}
