package fault

import "github.com/dtbgc/dtbgc/internal/trace"

// EventStream is the event-source signature shared with
// engine.Source: emit every event in order, stop at the first emit
// error. It is redeclared here (identical underlying type, so values
// convert freely) to keep this package free of an engine dependency.
type EventStream = func(emit func(trace.Event) error) error

// Source wraps an event source with the plan's event-indexed faults:
// SourceErr fails the stream after its event offset, and Cancel
// invokes cancel there instead — modelling an interrupt storm, with
// the stream itself continuing until the consumer's next context
// check aborts it. A nil cancel is allowed when no Cancel fault is
// scheduled.
func (p *Plan) Source(src EventStream, cancel func()) EventStream {
	if p == nil {
		return src
	}
	return func(emit func(trace.Event) error) error {
		n := uint64(0)
		return src(func(e trace.Event) error {
			if f := p.next(SourceErr, Cancel); f != nil && n >= f.Offset {
				p.fire(f)
				if f.Kind == Cancel {
					cancel()
				} else {
					return injected(f.Fault)
				}
			}
			n++
			return emit(e)
		})
	}
}
