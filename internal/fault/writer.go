package fault

import "io"

// Writer injects the plan's write-side faults (WriteErr, CloseErr,
// ShortWrite) into an io.Writer. Close applies only the injected
// close fault — it never closes the underlying writer, whose ownership
// stays with the caller — so checked-close call sites can wrap any
// writer without double-close concerns.
type Writer struct {
	w    io.Writer
	plan *Plan
	off  uint64 // bytes accepted so far
}

// Writer wraps w with the plan's write-side faults. A nil plan yields
// a pass-through wrapper whose Close is a no-op, so call sites can
// thread an optional plan unconditionally.
func (p *Plan) Writer(w io.Writer) *Writer {
	return &Writer{w: w, plan: p}
}

// Write implements io.Writer.
func (f *Writer) Write(b []byte) (int, error) {
	if f.plan == nil {
		return f.w.Write(b)
	}
	if sw := f.plan.next(ShortWrite); sw != nil && uint64(len(b)) > sw.Offset {
		// A contract-violating writer: accept a prefix, report no
		// error. bufio must turn this into io.ErrShortWrite.
		n, err := f.w.Write(b[:sw.Offset])
		f.off += uint64(n)
		return n, err
	}
	if we := f.plan.next(WriteErr); we != nil && f.off+uint64(len(b)) > we.Offset {
		f.plan.fire(we)
		// ENOSPC mid-buffer: the prefix up to the offset lands, the
		// rest does not, and the error says so.
		n := 0
		if we.Offset > f.off {
			var err error
			n, err = f.w.Write(b[:we.Offset-f.off])
			f.off += uint64(n)
			if err != nil {
				return n, err
			}
		}
		return n, injected(we.Fault)
	}
	n, err := f.w.Write(b)
	f.off += uint64(n)
	return n, err
}

// Close implements io.Closer: it fires a scheduled CloseErr and
// otherwise does nothing (the underlying writer is not closed).
func (f *Writer) Close() error {
	if ce := f.plan.next(CloseErr); ce != nil {
		f.plan.fire(ce)
		return injected(ce.Fault)
	}
	return nil
}
