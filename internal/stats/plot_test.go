package stats

import (
	"strings"
	"testing"
)

func plotSeries() []*Series {
	a := &Series{Name: "mem"}
	b := &Series{Name: "live"}
	for i := 0; i <= 100; i++ {
		a.Append(float64(i), float64(50+i%20))
		b.Append(float64(i), float64(20+i/10))
	}
	return []*Series{a, b}
}

func TestAsciiPlotBasics(t *testing.T) {
	out := AsciiPlot(plotSeries(), 40, 10, 1)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// height rows + axis + legend.
	if len(lines) != 12 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "* mem") || !strings.Contains(out, "o live") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(lines[0], "70") { // vMax = 69 -> labelled 69? rounded: 69
		// Top label is the max value; accept any digits.
		if !strings.ContainsAny(lines[0], "0123456789") {
			t.Fatalf("no top axis label:\n%s", out)
		}
	}
	if !strings.Contains(lines[9], "0") {
		t.Fatalf("no zero label:\n%s", out)
	}
	// Both glyphs appear in the body.
	body := strings.Join(lines[:10], "\n")
	if !strings.Contains(body, "*") || !strings.Contains(body, "o") {
		t.Fatalf("series glyphs missing:\n%s", out)
	}
}

func TestAsciiPlotEmpty(t *testing.T) {
	if out := AsciiPlot([]*Series{{Name: "x"}}, 40, 10, 1); out != "(no data)\n" {
		t.Fatalf("empty plot = %q", out)
	}
}

func TestAsciiPlotSinglePointSeries(t *testing.T) {
	s := &Series{Name: "p"}
	s.Append(5, 1)
	if out := AsciiPlot([]*Series{s}, 40, 10, 1); out != "(no data)\n" {
		t.Fatalf("degenerate time range should render no data, got %q", out)
	}
}

func TestAsciiPlotPanicsOnTinyCanvas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny canvas accepted")
		}
	}()
	AsciiPlot(plotSeries(), 4, 2, 1)
}

func TestAsciiPlotYDiv(t *testing.T) {
	s := &Series{Name: "kb"}
	s.Append(0, 0)
	s.Append(10, 10240)
	out := AsciiPlot([]*Series{s}, 20, 5, 1024)
	if !strings.Contains(out, "10") {
		t.Fatalf("kilobyte label missing:\n%s", out)
	}
}
