// Package stats provides the summary statistics used throughout the
// dynamic-threatening-boundary evaluation: means, maxima, percentiles,
// time-weighted averages over step functions, and simple histograms.
//
// The paper reports mean and maximum memory use (Table 2), median and
// 90th-percentile pause times (Table 3), and total traced bytes with
// CPU overhead percentages (Table 4); every one of those aggregations
// lives here so the simulator and the benchmark harness share a single
// definition.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count, sum, min and max of a stream of values.
// The zero value is an empty summary ready for use.
type Summary struct {
	n        int
	sum      float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += v
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	return s.min
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	return s.max
}

// String renders the summary for debugging output.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f max=%.2f", s.n, s.Mean(), s.min, s.max)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of values
// using linear interpolation between closest ranks, the method most
// statistics packages default to. It returns 0 for an empty slice and
// panics if p is outside [0, 100]. The input is not modified.
func Percentile(values []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside [0,100]", p))
	}
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is like Percentile but requires values to be sorted
// ascending and does not copy.
func PercentileSorted(sorted []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside [0,100]", p))
	}
	if len(sorted) == 0 {
		return 0
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(values []float64) float64 { return Percentile(values, 50) }

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Max returns the largest value, or 0 for an empty slice.
func Max(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Weighted accumulates the time-weighted mean and the maximum of a
// right-continuous step function: the function holds value v from the
// time of Observe(t, v) until the next Observe. It is how "mean memory
// in use" is defined for Table 2 — memory between events is constant,
// so the mean must weight each level by how long it was held.
//
// The zero value is ready for use; the first Observe establishes the
// origin.
type Weighted struct {
	started   bool
	lastT     float64
	lastV     float64
	weightSum float64
	valueSum  float64
	max       float64
}

// Observe records that the function takes value v at time t. Times must
// be non-decreasing; Observe panics on regression.
func (w *Weighted) Observe(t, v float64) {
	if w.started {
		if t < w.lastT {
			panic(fmt.Sprintf("stats: Weighted.Observe time regressed %v -> %v", w.lastT, t))
		}
		dt := t - w.lastT
		w.weightSum += dt
		w.valueSum += dt * w.lastV
	} else {
		w.started = true
		w.max = v
	}
	if v > w.max {
		w.max = v
	}
	w.lastT, w.lastV = t, v
}

// Finish extends the last observed value to time t (the end of the
// program) so that it contributes its holding interval to the mean.
func (w *Weighted) Finish(t float64) {
	if w.started {
		w.Observe(t, w.lastV)
	}
}

// Mean returns the time-weighted mean, or 0 if no interval has elapsed.
func (w *Weighted) Mean() float64 {
	if w.weightSum == 0 { //dtbvet:ignore floatexact -- exact-zero guard before dividing by the weight sum
		return 0
	}
	return w.valueSum / w.weightSum
}

// Max returns the largest observed value.
func (w *Weighted) Max() float64 { return w.max }

// Histogram counts values into fixed-width buckets starting at zero,
// with an overflow bucket for values at or beyond the top.
type Histogram struct {
	Width   float64 // bucket width; must be > 0
	buckets []int
	over    int
	n       int
}

// NewHistogram returns a histogram with nbuckets buckets of the given
// width. It panics if width <= 0 or nbuckets <= 0.
func NewHistogram(width float64, nbuckets int) *Histogram {
	if width <= 0 || nbuckets <= 0 {
		panic("stats: NewHistogram requires positive width and bucket count")
	}
	return &Histogram{Width: width, buckets: make([]int, nbuckets)}
}

// Add counts one value. Negative values go into bucket 0.
func (h *Histogram) Add(v float64) {
	h.n++
	if v < 0 {
		h.buckets[0]++
		return
	}
	// Compare in float space first: converting a huge quotient to int
	// is undefined-ish (wraps negative on amd64).
	q := v / h.Width
	if q >= float64(len(h.buckets)) {
		h.over++
		return
	}
	h.buckets[int(q)]++
}

// N returns the total number of values added.
func (h *Histogram) N() int { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// Overflow returns the count of values beyond the last bucket.
func (h *Histogram) Overflow() int { return h.over }

// NumBuckets returns the number of regular buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Point is one sample of a time series.
type Point struct {
	T float64 // time coordinate (e.g. bytes allocated or seconds)
	V float64 // value (e.g. bytes in use)
}

// Series is an append-only time series, used for the Figure 2 memory
// curves. Points must be appended in non-decreasing time order.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point, enforcing the time ordering invariant.
func (s *Series) Append(t, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("stats: Series %q time regressed %v -> %v", s.Name, s.Points[n-1].T, t))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// At returns the series value at time t under step-function semantics
// (the most recent point at or before t). It returns 0 before the
// first point.
func (s *Series) At(t float64) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// MaxV returns the maximum value in the series, or 0 if empty.
func (s *Series) MaxV() float64 {
	m := 0.0
	for i, p := range s.Points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// Downsample returns a copy of the series keeping at most n points,
// chosen uniformly by index, always retaining the first and last. It
// returns the series unchanged when it already fits.
func (s *Series) Downsample(n int) *Series {
	if n <= 0 {
		panic("stats: Downsample requires n > 0")
	}
	if len(s.Points) <= n {
		return s
	}
	out := &Series{Name: s.Name, Points: make([]Point, 0, n)}
	if n == 1 {
		out.Points = append(out.Points, s.Points[len(s.Points)-1])
		return out
	}
	step := float64(len(s.Points)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out.Points = append(out.Points, s.Points[int(float64(i)*step+0.5)])
	}
	return out
}
