package stats

import (
	"math"
	"testing"
)

func TestPairedPermutationPValueExhaustive(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
		want float64
	}{
		{
			// All eight diffs share a sign: only the identity and the
			// full flip reach |obs|, p = 2/256.
			name: "eight-consistent-pairs",
			x:    []float64{2, 2, 2, 2, 2, 2, 2, 2},
			y:    []float64{1, 1, 1, 1, 1, 1, 1, 1},
			want: 2.0 / 256,
		},
		{
			// Five pairs is the resolution floor: p can be no smaller
			// than 2/32 even on perfectly consistent data.
			name: "five-consistent-pairs",
			x:    []float64{4, 2, 3, 5, 6},
			y:    []float64{1, 1, 1, 1, 1},
			want: 2.0 / 32,
		},
		{
			// Perfectly balanced diffs: the observed mean is zero,
			// every assignment is at least as extreme.
			name: "balanced",
			x:    []float64{1, 0, 1, 0},
			y:    []float64{0, 1, 0, 1},
			want: 1,
		},
		{
			// Identical samples: all diffs zero, nothing to detect.
			name: "identical",
			x:    []float64{3, 1, 4},
			y:    []float64{3, 1, 4},
			want: 1,
		},
	}
	for _, c := range cases {
		got := PairedPermutationPValue(c.x, c.y, 0, 0)
		if math.Float64bits(got) != math.Float64bits(c.want) {
			t.Errorf("%s: p = %v, want %v", c.name, got, c.want)
		}
		// Two-sided symmetry: swapping the samples flips every sign and
		// must not change the p-value.
		if sym := PairedPermutationPValue(c.y, c.x, 0, 0); math.Float64bits(sym) != math.Float64bits(got) {
			t.Errorf("%s: p(y,x) = %v differs from p(x,y) = %v", c.name, sym, got)
		}
	}
}

func TestPairedPermutationPValueMonteCarlo(t *testing.T) {
	// 25 pairs forces the sampled path. Consistent-sign diffs should
	// be detected as overwhelmingly significant; the add-one estimate
	// keeps the p-value positive.
	x := make([]float64, 25)
	y := make([]float64, 25)
	for i := range x {
		x[i] = 2 + float64(i%3)
		y[i] = 1
	}
	p := PairedPermutationPValue(x, y, 4000, 7)
	if p <= 0 {
		t.Fatalf("Monte Carlo p-value must stay positive, got %v", p)
	}
	if p > 0.01 {
		t.Fatalf("consistent 25-pair sample should be significant, got p = %v", p)
	}
	// Determinism: same seed, same p — bit for bit.
	again := PairedPermutationPValue(x, y, 4000, 7)
	if math.Float64bits(p) != math.Float64bits(again) {
		t.Fatalf("same seed produced different p-values: %v vs %v", p, again)
	}
}

func TestPairedPermutationPValuePanics(t *testing.T) {
	for _, c := range []struct {
		name string
		x, y []float64
	}{
		{"mismatched", []float64{1, 2}, []float64{1}},
		{"empty", nil, nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			PairedPermutationPValue(c.x, c.y, 0, 0)
		}()
	}
}

func TestPairedBootstrapCI(t *testing.T) {
	// Constant differences: the interval collapses onto the constant.
	x := []float64{3, 5, 4, 6, 8, 2, 9, 7}
	y := []float64{1, 3, 2, 4, 6, 0, 7, 5}
	lo, hi := PairedBootstrapCI(x, y, 0.95, 500, 1)
	if math.Float64bits(lo) != math.Float64bits(2) || math.Float64bits(hi) != math.Float64bits(2) {
		t.Fatalf("constant-diff CI = [%v, %v], want [2, 2]", lo, hi)
	}

	// A spread sample: the interval must bracket the sample mean and
	// be deterministic per seed.
	x2 := []float64{10, 2, 7, 4, 9, 1, 8, 3, 6, 5}
	y2 := []float64{4, 4, 4, 4, 4, 4, 4, 4, 4, 4}
	lo2, hi2 := PairedBootstrapCI(x2, y2, 0.9, 1000, 9)
	mean := 0.0
	for i := range x2 {
		mean += (x2[i] - y2[i]) / float64(len(x2))
	}
	if !(lo2 <= mean && mean <= hi2) {
		t.Fatalf("CI [%v, %v] does not bracket the sample mean %v", lo2, hi2, mean)
	}
	if lo2 >= hi2 {
		t.Fatalf("degenerate CI [%v, %v] on a spread sample", lo2, hi2)
	}
	lo3, hi3 := PairedBootstrapCI(x2, y2, 0.9, 1000, 9)
	if math.Float64bits(lo2) != math.Float64bits(lo3) || math.Float64bits(hi2) != math.Float64bits(hi3) {
		t.Fatal("same seed produced a different bootstrap interval")
	}
}

func TestPairedBootstrapCIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("conf outside (0,1) did not panic")
		}
	}()
	PairedBootstrapCI([]float64{1}, []float64{2}, 1.5, 10, 0)
}

func TestBenjaminiHochberg(t *testing.T) {
	cases := []struct {
		name string
		ps   []float64
		want []float64
	}{
		{
			name: "textbook",
			ps:   []float64{0.01, 0.04, 0.03, 0.005},
			want: []float64{0.02, 0.04, 0.04, 0.02},
		},
		{
			name: "single",
			ps:   []float64{0.2},
			want: []float64{0.2},
		},
		{
			name: "all-ones",
			ps:   []float64{1, 1, 1},
			want: []float64{1, 1, 1},
		},
		{
			name: "empty",
			ps:   nil,
			want: []float64{},
		},
		{
			name: "capped-at-one",
			ps:   []float64{0.9, 0.95},
			want: []float64{0.95, 0.95},
		},
	}
	for _, c := range cases {
		got := BenjaminiHochberg(c.ps)
		if len(got) != len(c.want) {
			t.Errorf("%s: %d outputs, want %d", c.name, len(got), len(c.want))
			continue
		}
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-12 {
				t.Errorf("%s: q[%d] = %v, want %v", c.name, i, got[i], c.want[i])
			}
		}
	}
	// Monotonicity: a smaller p never gets a larger q.
	ps := []float64{0.02, 0.5, 0.001, 0.3, 0.04, 0.9}
	qs := BenjaminiHochberg(ps)
	for i := range ps {
		for j := range ps {
			if ps[i] < ps[j] && qs[i] > qs[j] {
				t.Fatalf("monotonicity violated: p=%v got q=%v while p=%v got q=%v", ps[i], qs[i], ps[j], qs[j])
			}
		}
	}
}

func TestBenjaminiHochbergPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range p-value did not panic")
		}
	}()
	BenjaminiHochberg([]float64{0.5, 1.5})
}
