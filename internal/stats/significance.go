package stats

import (
	"fmt"
	"math"
	"sort"

	"github.com/dtbgc/dtbgc/internal/xrand"
)

// Paired significance testing for the policy tournament: every
// comparison the leaderboard reports is between two policies run over
// the SAME workload trace and seed, so the natural unit is the paired
// difference per (workload, seed) cell. The helpers here are
// deterministic — Monte Carlo draws come from internal/xrand with a
// caller-supplied seed — so a tournament report is reproducible
// bit-for-bit.

// permutationExhaustiveMax is the largest sample size for which the
// sign-flip permutation test enumerates all 2^n assignments (2^20 ≈
// one million sums) instead of sampling.
const permutationExhaustiveMax = 20

// PairedPermutationPValue returns the two-sided p-value of a paired
// sign-flip permutation test on the mean of the differences x[i] -
// y[i]: the probability, under the null hypothesis that the pairing is
// exchangeable, of a mean difference at least as extreme as the one
// observed.
//
// For n <= 20 pairs the test is exhaustive over all 2^n sign
// assignments and rounds/seed are ignored. For larger n it samples
// `rounds` random assignments (default 10000 when rounds <= 0) from a
// generator seeded with seed, using the add-one estimate so the
// p-value is never exactly zero. It panics on mismatched or empty
// inputs. With n pairs the smallest achievable exhaustive p-value is
// 2/2^n — five seeds cannot reach p < 0.05, eight can — so sweep
// enough seeds for the resolution the claim needs.
func PairedPermutationPValue(x, y []float64, rounds int, seed uint64) float64 {
	d := pairedDiffs(x, y)
	n := len(d)
	var obs float64
	for _, v := range d {
		obs += v
	}
	absObs := math.Abs(obs)
	if n <= permutationExhaustiveMax {
		total := 1 << n
		hits := 0
		for mask := 0; mask < total; mask++ {
			var sum float64
			for i, v := range d {
				if mask&(1<<i) != 0 {
					sum -= v
				} else {
					sum += v
				}
			}
			if math.Abs(sum) >= absObs {
				hits++
			}
		}
		return float64(hits) / float64(total)
	}
	if rounds <= 0 {
		rounds = 10000
	}
	rng := xrand.New(seed)
	hits := 0
	for r := 0; r < rounds; r++ {
		var sum float64
		for _, v := range d {
			if rng.Uint64()&1 != 0 {
				sum -= v
			} else {
				sum += v
			}
		}
		if math.Abs(sum) >= absObs {
			hits++
		}
	}
	return float64(hits+1) / float64(rounds+1)
}

// PairedBootstrapCI returns a percentile bootstrap confidence interval
// for the mean of the paired differences x[i] - y[i]. conf is the
// two-sided confidence level in (0, 1), e.g. 0.95; rounds defaults to
// 2000 when <= 0. Resampling is seeded and deterministic. It panics on
// mismatched or empty inputs or a conf outside (0, 1).
func PairedBootstrapCI(x, y []float64, conf float64, rounds int, seed uint64) (lo, hi float64) {
	if !(conf > 0 && conf < 1) {
		panic(fmt.Sprintf("stats: bootstrap confidence %v outside (0,1)", conf))
	}
	d := pairedDiffs(x, y)
	if rounds <= 0 {
		rounds = 2000
	}
	rng := xrand.New(seed)
	means := make([]float64, rounds)
	n := len(d)
	for r := range means {
		var sum float64
		for i := 0; i < n; i++ {
			sum += d[rng.Intn(n)]
		}
		means[r] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	return PercentileSorted(means, 100*alpha), PercentileSorted(means, 100*(1-alpha))
}

// BenjaminiHochberg returns the Benjamini–Hochberg adjusted p-values
// (q-values) for a family of hypotheses tested together, in the input
// order: rejecting every hypothesis with q <= alpha controls the false
// discovery rate at alpha. Adjusted values are min(p_(i) * m / i, ...)
// with the step-up monotonicity enforced, capped at 1. The input is
// not modified; it panics on a p-value outside [0, 1].
func BenjaminiHochberg(ps []float64) []float64 {
	m := len(ps)
	out := make([]float64, m)
	if m == 0 {
		return out
	}
	order := make([]int, m)
	for i := range order {
		if !(ps[i] >= 0 && ps[i] <= 1) {
			panic(fmt.Sprintf("stats: p-value %v outside [0,1]", ps[i]))
		}
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ps[order[a]] < ps[order[b]] })
	running := 1.0
	for rank := m; rank >= 1; rank-- {
		idx := order[rank-1]
		q := ps[idx] * float64(m) / float64(rank)
		if q < running {
			running = q
		}
		out[idx] = running
	}
	return out
}

// pairedDiffs validates a paired sample and returns x - y elementwise.
func pairedDiffs(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: paired samples of different lengths (%d vs %d)", len(x), len(y)))
	}
	if len(x) == 0 {
		panic("stats: paired test on empty samples")
	}
	d := make([]float64, len(x))
	for i := range x {
		d[i] = x[i] - y[i]
	}
	return d
}
