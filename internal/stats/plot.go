package stats

import (
	"fmt"
	"math"
	"strings"
)

// AsciiPlot renders one or more step-function series as a text chart,
// the terminal rendition of the paper's Figure 2. Each series is drawn
// with its own glyph (assigned in order: '*', 'o', '.', '+', 'x'); the
// Y axis is labelled in the series' value units divided by yDiv (pass
// 1024 to label kilobytes).
func AsciiPlot(series []*Series, width, height int, yDiv float64) string {
	if width < 16 || height < 4 {
		panic("stats: AsciiPlot needs width >= 16 and height >= 4")
	}
	if yDiv <= 0 {
		yDiv = 1
	}
	glyphs := []byte{'*', 'o', '.', '+', 'x'}

	// Bounds across all series.
	var tMin, tMax, vMax float64
	first := true
	for _, s := range series {
		for _, p := range s.Points {
			if first {
				tMin, tMax = p.T, p.T
				first = false
			}
			tMin = math.Min(tMin, p.T)
			tMax = math.Max(tMax, p.T)
			vMax = math.Max(vMax, p.V)
		}
	}
	if first || tMax == tMin { //dtbvet:ignore floatexact -- zero-width axis check: only exact coincidence makes the plot undrawable
		return "(no data)\n"
	}
	if vMax == 0 { //dtbvet:ignore floatexact -- exact-zero scale guard before dividing by vMax
		vMax = 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Sample each column from each series under step semantics.
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for col := 0; col < width; col++ {
			t := tMin + (tMax-tMin)*float64(col)/float64(width-1)
			v := s.At(t)
			row := height - 1 - int(v/vMax*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = g
		}
	}

	var b strings.Builder
	for i, line := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%8.0f", vMax/yDiv)
		case height - 1:
			label = fmt.Sprintf("%8.0f", 0.0)
		default:
			label = strings.Repeat(" ", 8)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 9))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	// Legend.
	b.WriteString(strings.Repeat(" ", 10))
	for si, s := range series {
		if si > 0 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%c %s", glyphs[si%len(glyphs)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}
