package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Sum() != 0 {
		t.Fatalf("empty summary not all-zero: %v", s.String())
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Errorf("N = %d, want 5", s.N())
	}
	if !almostEq(s.Sum(), 14) {
		t.Errorf("Sum = %v, want 14", s.Sum())
	}
	if !almostEq(s.Mean(), 2.8) {
		t.Errorf("Mean = %v, want 2.8", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
}

func TestSummaryNegative(t *testing.T) {
	var s Summary
	s.Add(-7)
	s.Add(2)
	if s.Min() != -7 || s.Max() != 2 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryMinMaxInvariant(t *testing.T) {
	check := func(vals []float64) bool {
		var s Summary
		for _, v := range vals {
			// Skip values whose sum could overflow float64; the
			// invariant is about ordering, not extreme-range
			// arithmetic.
			if math.IsNaN(v) || math.Abs(v) > 1e300 {
				return true
			}
			s.Add(v)
		}
		if len(vals) == 0 {
			return true
		}
		return s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileKnownValues(t *testing.T) {
	vals := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
		{40, 20 + 0.6*15}, // rank 1.6 between 20 and 35
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); !almostEq(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{5, 1, 3}
	Percentile(vals, 50)
	if vals[0] != 5 || vals[1] != 1 || vals[2] != 3 {
		t.Fatalf("Percentile mutated input: %v", vals)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileSingle(t *testing.T) {
	for _, p := range []float64{0, 50, 90, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("Percentile([7], %v) = %v", p, got)
		}
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(p=%v) did not panic", p)
				}
			}()
			Percentile([]float64{1}, p)
		}()
	}
}

func TestPercentileSortedAgrees(t *testing.T) {
	check := func(vals []float64, praw uint8) bool {
		clean := vals[:0:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		p := float64(praw) / 255 * 100
		want := Percentile(clean, p)
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		got := PercentileSorted(sorted, p)
		return almostEq(got, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianMonotoneInvariant(t *testing.T) {
	// The median lies between min and max for any input.
	check := func(vals []float64) bool {
		clean := vals[:0:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Median(clean)
		lo, hi := clean[0], clean[0]
		for _, v := range clean {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMaxHelpers(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Fatal("Mean/Max of empty slice should be 0")
	}
	vals := []float64{2, 8, 5}
	if !almostEq(Mean(vals), 5) {
		t.Errorf("Mean = %v", Mean(vals))
	}
	if Max(vals) != 8 {
		t.Errorf("Max = %v", Max(vals))
	}
}

func TestWeightedConstant(t *testing.T) {
	var w Weighted
	w.Observe(0, 10)
	w.Observe(5, 10)
	w.Finish(10)
	if !almostEq(w.Mean(), 10) {
		t.Fatalf("constant function mean = %v, want 10", w.Mean())
	}
	if w.Max() != 10 {
		t.Fatalf("Max = %v", w.Max())
	}
}

func TestWeightedStep(t *testing.T) {
	// Value 0 on [0,10), value 100 on [10,20): mean = 50.
	var w Weighted
	w.Observe(0, 0)
	w.Observe(10, 100)
	w.Finish(20)
	if !almostEq(w.Mean(), 50) {
		t.Fatalf("step function mean = %v, want 50", w.Mean())
	}
	if w.Max() != 100 {
		t.Fatalf("Max = %v, want 100", w.Max())
	}
}

func TestWeightedUnevenIntervals(t *testing.T) {
	// 1 for 9 time units, then 11 for 1: mean = (9*1 + 1*11)/10 = 2.
	var w Weighted
	w.Observe(0, 1)
	w.Observe(9, 11)
	w.Finish(10)
	if !almostEq(w.Mean(), 2) {
		t.Fatalf("mean = %v, want 2", w.Mean())
	}
}

func TestWeightedEmpty(t *testing.T) {
	var w Weighted
	if w.Mean() != 0 || w.Max() != 0 {
		t.Fatal("empty Weighted should report zeros")
	}
	w.Finish(100) // no-op when never observed
	if w.Mean() != 0 {
		t.Fatal("Finish on empty Weighted should not create mass")
	}
}

func TestWeightedTimeRegressionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("time regression did not panic")
		}
	}()
	var w Weighted
	w.Observe(5, 1)
	w.Observe(4, 1)
}

func TestWeightedZeroDurationSpikeIgnoredInMeanButNotMax(t *testing.T) {
	var w Weighted
	w.Observe(0, 1)
	w.Observe(5, 1000) // spike held for zero time
	w.Observe(5, 1)
	w.Finish(10)
	if !almostEq(w.Mean(), 1) {
		t.Fatalf("mean = %v, want 1 (spike has zero duration)", w.Mean())
	}
	if w.Max() != 1000 {
		t.Fatalf("max = %v, want 1000", w.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []float64{0, 5, 9.99, 10, 49.9, 50, 1000, -3} {
		h.Add(v)
	}
	if h.N() != 8 {
		t.Errorf("N = %d", h.N())
	}
	if h.Bucket(0) != 4 { // 0, 5, 9.99, -3
		t.Errorf("bucket 0 = %d, want 4", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // 10
		t.Errorf("bucket 1 = %d, want 1", h.Bucket(1))
	}
	if h.Bucket(4) != 1 { // 49.9
		t.Errorf("bucket 4 = %d, want 1", h.Bucket(4))
	}
	if h.Overflow() != 2 { // 50, 1000
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.NumBuckets() != 5 {
		t.Errorf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramCountConservation(t *testing.T) {
	check := func(raw []float64) bool {
		h := NewHistogram(7, 4)
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		total := h.Overflow()
		for i := 0; i < h.NumBuckets(); i++ {
			total += h.Bucket(i)
		}
		return total == n && h.N() == n
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0, 1) did not panic")
		}
	}()
	NewHistogram(0, 1)
}

func TestSeriesAppendAndAt(t *testing.T) {
	var s Series
	s.Append(0, 5)
	s.Append(10, 7)
	s.Append(10, 3) // same-time update allowed
	s.Append(20, 9)
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 5}, {5, 5}, {10, 3}, {15, 3}, {20, 9}, {99, 9},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if s.MaxV() != 9 {
		t.Errorf("MaxV = %v", s.MaxV())
	}
}

func TestSeriesRegressionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("series time regression did not panic")
		}
	}()
	var s Series
	s.Append(5, 1)
	s.Append(4, 1)
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Append(float64(i), float64(i*i))
	}
	d := s.Downsample(10)
	if len(d.Points) != 10 {
		t.Fatalf("downsampled to %d points, want 10", len(d.Points))
	}
	if d.Points[0] != s.Points[0] {
		t.Error("downsample dropped first point")
	}
	if d.Points[len(d.Points)-1] != s.Points[len(s.Points)-1] {
		t.Error("downsample dropped last point")
	}
	for i := 1; i < len(d.Points); i++ {
		if d.Points[i].T < d.Points[i-1].T {
			t.Fatal("downsample broke time ordering")
		}
	}
}

func TestSeriesDownsampleNoOp(t *testing.T) {
	var s Series
	s.Append(1, 1)
	s.Append(2, 2)
	if d := s.Downsample(5); len(d.Points) != 2 {
		t.Fatalf("small series should pass through, got %d points", len(d.Points))
	}
}

func TestSeriesEmptyMax(t *testing.T) {
	var s Series
	if s.MaxV() != 0 {
		t.Fatal("empty series MaxV should be 0")
	}
}
