// Package cliio is the shared command-line I/O discipline for the cmd/
// tools: checked output streams and uniform exit codes.
//
// The bug class this package exists to kill: a tool that writes its
// output through `defer f.Close()` exits 0 on a full disk, leaving a
// silently truncated file. Close is where buffered-write failures
// (ENOSPC at the final flush) surface, so an unchecked Close converts
// an I/O failure into a plausible-looking partial output. Every output
// stream here is an Output: writes are buffered, Close flushes and
// verifies every layer, and the error lands in the tool's exit code.
//
// The exit discipline, shared by every tool:
//
//	0  success — including a recovered run whose drops are accounted
//	1  operational failure (I/O error, failed run, audit violation)
//	2  usage error (bad flags or arguments)
//
// Outputs compose with internal/fault: passing a non-nil plan wraps
// the stream with the plan's write-side faults, which is how the CLI
// tests prove the Close checks actually fire.
package cliio

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/dtbgc/dtbgc/internal/fault"
)

// UsageError marks a command-line mistake, exiting 2 where an
// operational failure exits 1 — so scripts can tell "you invoked me
// wrong" from "I tried and failed".
type UsageError struct{ Err error }

func (e *UsageError) Error() string { return e.Err.Error() }
func (e *UsageError) Unwrap() error { return e.Err }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{Err: fmt.Errorf(format, args...)}
}

// ExitCode maps a run's error to the shared exit discipline: nil is 0,
// a UsageError is 2, flag.ErrHelp (the user asked for -h) is 0, and
// anything else is 1.
func ExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	default:
		var ue *UsageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
}

// Conflict declares two flags that cannot be combined, and the reason
// a user sees when they are.
type Conflict struct {
	A, B   string
	Reason string
}

// Conflicts rejects any declared pair whose flags were BOTH set on the
// command line. The check is set-ness, not value: an explicit
// `-flag ""` still counts as asking for it, and boolean flags work
// without a sentinel value. The CLIs used to hand-roll these checks
// and drift let real pairs slip through silently — a dropped flag
// yields a plausible-looking result for a run the user did not ask
// for. A conflict naming a flag that does not exist in fs panics:
// that is table drift after a rename, a programmer error no user
// input should be able to hide.
//
// Call after fs.Parse:
//
//	if err := cliio.Conflicts(fs,
//		cliio.Conflict{A: "policy", B: "baseline", Reason: "a run is driven by one or the other"},
//	); err != nil {
//		return err
//	}
func Conflicts(fs *flag.FlagSet, conflicts ...Conflict) error {
	for _, c := range conflicts {
		fa, fb := fs.Lookup(c.A), fs.Lookup(c.B)
		if fa == nil || fb == nil {
			missing := c.A
			if fa != nil {
				missing = c.B
			}
			panic(fmt.Sprintf("cliio: conflict table names unknown flag -%s", missing))
		}
		if FlagWasSet(fs, c.A) && FlagWasSet(fs, c.B) {
			return Usagef("-%s %q conflicts with -%s %q: %s",
				c.A, fa.Value.String(), c.B, fb.Value.String(), c.Reason)
		}
	}
	return nil
}

// FlagWasSet reports whether the named flag appeared on the command
// line (as opposed to holding its default).
func FlagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// CloseChecked closes c and folds a close failure into *errp unless an
// earlier error is already there — the deferred-close shape that does
// not eat ENOSPC:
//
//	defer cliio.CloseChecked(path, f, &err)
func CloseChecked(name string, c io.Closer, errp *error) {
	if err := c.Close(); err != nil && *errp == nil {
		*errp = fmt.Errorf("close %s: %w", name, err)
	}
}

// Output is one checked output stream. Writes are buffered (and
// fault-wrapped when a plan is given); Close flushes and verifies
// every layer, so no byte is silently lost between the tool and the
// file system. A write error is sticky in the buffer and resurfaces at
// Close even if intermediate Fprintf results were ignored.
type Output struct {
	name string
	bw   *bufio.Writer
	fw   *fault.Writer
	f    *os.File // nil when writing to a caller-owned stream
}

// Create opens a checked output: a file at path, or the fallback
// stream (typically os.Stdout) when path is "" or "-". A nil plan
// injects nothing.
func Create(path string, fallback io.Writer, plan *fault.Plan) (*Output, error) {
	o := &Output{name: path}
	if path == "" || path == "-" {
		if fallback == nil {
			return nil, fmt.Errorf("cliio: no output path and no fallback stream")
		}
		o.name = "stdout"
		o.fw = plan.Writer(fallback)
	} else {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		o.f = f
		o.fw = plan.Writer(f)
	}
	o.bw = bufio.NewWriter(o.fw)
	return o, nil
}

// Name returns the stream's display name ("stdout" or the path).
func (o *Output) Name() string { return o.name }

// Write implements io.Writer.
func (o *Output) Write(p []byte) (int, error) { return o.bw.Write(p) }

// Close flushes the buffer and closes every layer, returning the first
// failure: a sticky buffered-write error, an injected close fault, or
// the file's own Close (where ENOSPC surfaces for deferred writeback).
func (o *Output) Close() (err error) {
	if o.f != nil {
		defer CloseChecked(o.name, o.f, &err)
	}
	if ferr := o.bw.Flush(); ferr != nil {
		return fmt.Errorf("write %s: %w", o.name, ferr)
	}
	if cerr := o.fw.Close(); cerr != nil {
		return fmt.Errorf("close %s: %w", o.name, cerr)
	}
	return nil
}

// WriteTo runs fn against a checked output at path (or fallback for ""
// and "-") and returns the first error from fn, the flush, or the
// closes. It is the one-shot shape for "produce this file" commands.
func WriteTo(path string, fallback io.Writer, plan *fault.Plan, fn func(io.Writer) error) (err error) {
	o, err := Create(path, fallback, plan)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := o.Close(); err == nil {
			err = cerr
		}
	}()
	if err := fn(o); err != nil {
		return fmt.Errorf("%s: %w", o.Name(), err)
	}
	return nil
}
