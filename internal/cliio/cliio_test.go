package cliio

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"
)

func conflictFS(t *testing.T) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.String("policy", "", "")
	fs.String("baseline", "", "")
	fs.Float64("scale", 1.0, "")
	fs.Bool("apps", false, "")
	return fs
}

func TestConflictsRejectsSetPairs(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want bool // conflict expected
	}{
		{[]string{"-policy", "full", "-baseline", "live"}, true},
		{[]string{"-policy", "full"}, false},
		{[]string{"-baseline", "live"}, false},
		{[]string{}, false},
		// Set-ness, not value: an explicit empty value still counts as
		// the user asking for the flag.
		{[]string{"-policy", "", "-baseline", "live"}, true},
		// Booleans and non-string defaults need no sentinel value.
		{[]string{"-apps", "-scale", "0.5"}, true},
		// A flag at its default but never mentioned does not conflict.
		{[]string{"-apps"}, false},
	} {
		fs := conflictFS(t)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatalf("parse %v: %v", tc.args, err)
		}
		err := Conflicts(fs,
			Conflict{A: "policy", B: "baseline", Reason: "one or the other"},
			Conflict{A: "apps", B: "scale", Reason: "fixed-size"},
		)
		if got := err != nil; got != tc.want {
			t.Errorf("args %v: conflict = %v (err %v), want %v", tc.args, got, err, tc.want)
		}
		if err != nil {
			var ue *UsageError
			if !errors.As(err, &ue) {
				t.Errorf("args %v: conflict error %v is not a UsageError", tc.args, err)
			}
			if ExitCode(err) != 2 {
				t.Errorf("args %v: exit %d, want 2", tc.args, ExitCode(err))
			}
		}
	}
}

func TestConflictsMessageNamesBothFlags(t *testing.T) {
	fs := conflictFS(t)
	if err := fs.Parse([]string{"-policy", "full", "-baseline", "live"}); err != nil {
		t.Fatal(err)
	}
	err := Conflicts(fs, Conflict{A: "policy", B: "baseline", Reason: "one or the other"})
	if err == nil {
		t.Fatal("no conflict reported")
	}
	for _, want := range []string{"-policy", `"full"`, "-baseline", `"live"`, "one or the other"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("conflict message %q missing %q", err, want)
		}
	}
}

// TestConflictsUnknownFlagPanics: a conflict table naming a flag that
// no longer exists is drift after a rename — it must fail loudly at
// the first invocation, not silently stop guarding the pair.
func TestConflictsUnknownFlagPanics(t *testing.T) {
	fs := conflictFS(t)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Conflicts accepted a pair naming an unknown flag")
		}
		if !strings.Contains(r.(string), "renamed-away") {
			t.Errorf("panic %v does not name the missing flag", r)
		}
	}()
	_ = Conflicts(fs, Conflict{A: "policy", B: "renamed-away", Reason: "x"})
}

func TestFlagWasSet(t *testing.T) {
	fs := conflictFS(t)
	if err := fs.Parse([]string{"-scale", "1.0"}); err != nil {
		t.Fatal(err)
	}
	// Explicitly passing the default value still counts as set.
	if !FlagWasSet(fs, "scale") {
		t.Error("scale passed explicitly at its default not reported as set")
	}
	if FlagWasSet(fs, "policy") {
		t.Error("policy reported set without appearing on the command line")
	}
}
