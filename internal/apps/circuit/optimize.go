package circuit

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// isBuffer reports whether node r is a single-input identity
// (cover {"1"}), and isInverter a single-input complement ({"0"}).
func (n *Network) isBuffer(r mheap.Ref) bool {
	d := n.heap().Data(r)
	return n.kind(r) == nodeLogic && n.faninLen(r) == 1 &&
		d[offNRows] == 1 && d[coverBase] == 1
}

func (n *Network) isInverter(r mheap.Ref) bool {
	d := n.heap().Data(r)
	return n.kind(r) == nodeLogic && n.faninLen(r) == 1 &&
		d[offNRows] == 1 && d[coverBase] == 0
}

// OptimizeBLIF rewrites a BLIF source applying the sweep
// optimizations a synthesis tool performs before verification:
// buffers are bypassed and double inverters collapsed. The output is a
// new BLIF text whose network is functionally identical (which Verify
// then confirms with random vectors). The rewrite happens on a
// scratch network so the transformation itself allocates and frees
// heap storage like the real tool's sweep pass.
func OptimizeBLIF(a mlib.Allocator, src string) (string, int, error) {
	n, err := ParseBLIF(a, src)
	if err != nil {
		return "", 0, err
	}
	defer n.Free()
	h := n.heap()

	// forward maps a signal to the signal that can replace it.
	forward := make(map[string]string)
	resolve := func(name string) string {
		for {
			next, ok := forward[name]
			if !ok {
				return name
			}
			name = next
		}
	}
	removed := 0
	outputs := make(map[string]bool, len(n.Outputs))
	for _, o := range n.Outputs {
		outputs[o] = true
	}
	// Deterministic iteration: traces must be reproducible.
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes { //dtbvet:ignore determinism -- keys are sorted on the next line
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := n.nodes[name]
		if outputs[name] {
			continue // keep output drivers in place
		}
		switch {
		case n.isBuffer(r):
			forward[name] = n.nodeName(n.fanin(r, 0))
			removed++
		case n.isInverter(r):
			src := n.fanin(r, 0)
			if n.isInverter(src) && !outputs[n.nodeName(src)] {
				forward[name] = n.nodeName(n.fanin(src, 0))
				removed++
			}
		}
	}

	// Re-emit BLIF with forwarding applied and dropped nodes omitted.
	var b strings.Builder
	fmt.Fprintf(&b, ".model %s_opt\n.inputs %s\n.outputs %s\n",
		n.Name, strings.Join(n.Inputs, " "), strings.Join(n.Outputs, " "))
	for _, name := range n.Latches {
		r := n.nodes[name]
		in := resolve(n.nodeName(n.fanin(r, 0)))
		fmt.Fprintf(&b, ".latch %s %s 0\n", in, name)
	}
	for _, name := range names {
		r := n.nodes[name]
		if _, dropped := forward[name]; dropped {
			continue
		}
		switch n.kind(r) {
		case nodeInput, nodeLatch:
			continue
		case nodeConst0:
			fmt.Fprintf(&b, ".names %s\n0\n", name)
			continue
		case nodeConst1:
			fmt.Fprintf(&b, ".names %s\n1\n", name)
			continue
		}
		nf := n.faninLen(r)
		names := make([]string, nf)
		for i := 0; i < nf; i++ {
			names[i] = resolve(n.nodeName(n.fanin(r, i)))
		}
		fmt.Fprintf(&b, ".names %s %s\n", strings.Join(names, " "), name)
		d := h.Data(r)
		rows := int(d[offNRows])
		for ri := 0; ri < rows; ri++ {
			for ci := 0; ci < nf; ci++ {
				switch d[coverBase+ri*nf+ci] {
				case 0:
					b.WriteByte('0')
				case 1:
					b.WriteByte('1')
				default:
					b.WriteByte('-')
				}
			}
			b.WriteString(" 1\n")
		}
	}
	b.WriteString(".end\n")
	return b.String(), removed, nil
}

// GenerateBLIF builds a random sequential circuit in BLIF: layered
// AND/OR/inverter logic with buffer and double-inverter chains (for
// the optimizer to find) and a few latches. Deterministic in seed.
func GenerateBLIF(inputs, gates, latches int, seed uint64) string {
	r := xrand.New(seed)
	var b strings.Builder
	b.WriteString(".model synth\n.inputs")
	signals := make([]string, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		name := fmt.Sprintf("in%d", i)
		fmt.Fprintf(&b, " %s", name)
		signals = append(signals, name)
	}
	b.WriteString("\n")
	var gateLines strings.Builder
	var outputs []string
	for g := 0; g < gates; g++ {
		name := fmt.Sprintf("g%d", g)
		pick := func() string { return signals[r.Intn(len(signals))] }
		switch r.Intn(6) {
		case 0: // buffer
			fmt.Fprintf(&gateLines, ".names %s %s\n1 1\n", pick(), name)
		case 1: // inverter (chains form naturally)
			fmt.Fprintf(&gateLines, ".names %s %s\n0 1\n", pick(), name)
		case 2: // AND2
			fmt.Fprintf(&gateLines, ".names %s %s %s\n11 1\n", pick(), pick(), name)
		case 3: // OR2
			fmt.Fprintf(&gateLines, ".names %s %s %s\n1- 1\n-1 1\n", pick(), pick(), name)
		case 4: // XOR2
			fmt.Fprintf(&gateLines, ".names %s %s %s\n10 1\n01 1\n", pick(), pick(), name)
		default: // AND2 with complemented input
			fmt.Fprintf(&gateLines, ".names %s %s %s\n01 1\n", pick(), pick(), name)
		}
		signals = append(signals, name)
	}
	for l := 0; l < latches; l++ {
		name := fmt.Sprintf("q%d", l)
		src := signals[r.Intn(len(signals))]
		fmt.Fprintf(&gateLines, ".latch %s %s 0\n", src, name)
		signals = append(signals, name)
	}
	// A few extra gates consuming latch outputs.
	for g := 0; g < latches; g++ {
		name := fmt.Sprintf("gl%d", g)
		a := signals[r.Intn(len(signals))]
		c := signals[r.Intn(len(signals))]
		fmt.Fprintf(&gateLines, ".names %s %s %s\n11 1\n", a, c, name)
		signals = append(signals, name)
	}
	// Outputs: the last few signals.
	nOut := 4
	if nOut > len(signals) {
		nOut = len(signals)
	}
	outputs = signals[len(signals)-nOut:]
	fmt.Fprintf(&b, ".outputs %s\n", strings.Join(outputs, " "))
	b.WriteString(gateLines.String())
	b.WriteString(".end\n")
	return b.String()
}

// Result reports a synthesis-and-verify run.
type Result struct {
	Gates     int
	Removed   int
	Signature uint64
	Events    []trace.Event
}

// Run generates (or accepts) a BLIF circuit, optimizes it, verifies
// equivalence with random vectors on a fresh recording heap, and
// returns the trace.
func Run(blif string, vectors int) (*Result, error) {
	h := mheap.New()
	var events []trace.Event
	h.SetRecorder(func(e trace.Event) { events = append(events, e) })
	a := mlib.Raw{H: h}

	optimized, removed, err := OptimizeBLIF(a, blif)
	if err != nil {
		return nil, err
	}
	orig, err := ParseBLIF(a, blif)
	if err != nil {
		return nil, err
	}
	opt, err := ParseBLIF(a, optimized)
	if err != nil {
		return nil, fmt.Errorf("circuit: optimized netlist unparsable: %w", err)
	}
	sig, err := Verify(orig, opt, vectors, 0x515515)
	res := &Result{Gates: orig.NumNodes(), Removed: removed, Signature: sig}
	orig.Free()
	opt.Free()
	res.Events = events
	if err != nil {
		return res, err
	}
	return res, nil
}
