package circuit

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

// FuzzParseBLIF: arbitrary netlist text must parse or error cleanly.
func FuzzParseBLIF(f *testing.F) {
	f.Add(andOrBLIF)
	f.Add(".model m\n.inputs a\n.outputs x\n.latch a x 1\n.end")
	f.Add(".model m\n.inputs a\n.outputs x\n.names a x\n1 1\n.end")
	f.Add(".names x x\n1 1")
	f.Add(".model \\\n continued")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			return
		}
		h := mheap.New()
		a := mlib.Raw{H: h}
		n, err := ParseBLIF(a, src)
		if err == nil && n != nil {
			// A parsed network must simulate without panicking.
			n.Step(0)
			n.Free()
		}
		if err := h.CheckIntegrity(); err != nil {
			t.Fatalf("heap corrupted by %q: %v", src, err)
		}
	})
}
