package circuit

import (
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
)

func newAlloc() (mlib.Raw, *mheap.Heap) {
	h := mheap.New()
	return mlib.Raw{H: h}, h
}

const andOrBLIF = `
.model tiny
.inputs a b c
.outputs x y
.names a b t1
11 1
.names t1 c x
1- 1
-1 1
.names a y
0 1
.end
`

func TestParseBLIF(t *testing.T) {
	a, _ := newAlloc()
	n, err := ParseBLIF(a, andOrBLIF)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "tiny" {
		t.Errorf("model name %q", n.Name)
	}
	if len(n.Inputs) != 3 || len(n.Outputs) != 2 {
		t.Fatalf("io: %v %v", n.Inputs, n.Outputs)
	}
	if n.NumNodes() != 6 { // a b c t1 x y
		t.Fatalf("nodes = %d", n.NumNodes())
	}
	n.Free()
}

func TestParseBLIFErrors(t *testing.T) {
	a, _ := newAlloc()
	cases := []string{
		".model m\n.inputs a\n.outputs x\n.names a x\n2 1\n.end",                               // bad cover char... '2' invalid in row
		".model m\n.inputs a\n.outputs x\n.names a x\n11 1\n.end",                              // row width
		".model m\n.inputs a\n.outputs x\n.end",                                                // undefined output
		".model m\n.inputs a\n.outputs x\n11 1\n.end",                                          // row outside .names
		".model m\n.inputs a\n.outputs x\n.frob\n.end",                                         // unknown directive
		".model m\n.inputs a\n.outputs x\n.names a x\n1 1\n.names x x2\n.names b x\n1 1\n.end", // dup driver... b undefined first
	}
	for i, src := range cases {
		if _, err := ParseBLIF(a, src); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseBLIFRejectsCycle(t *testing.T) {
	a, _ := newAlloc()
	src := `
.model loop
.inputs a
.outputs x
.names a x y
11 1
.names a y x
11 1
.end`
	if _, err := ParseBLIF(a, src); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestCombinationalTruthTable(t *testing.T) {
	a, _ := newAlloc()
	n, err := ParseBLIF(a, andOrBLIF)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Free()
	// x = (a AND b) OR c, y = NOT a; inputs packed a=bit0 b=bit1 c=bit2.
	for x := uint64(0); x < 8; x++ {
		av, bv, cv := x&1, (x>>1)&1, (x>>2)&1
		out := n.Step(x)
		wantX := byte(0)
		if (av == 1 && bv == 1) || cv == 1 {
			wantX = 1
		}
		wantY := byte(1 - av)
		if out[0] != wantX || out[1] != wantY {
			t.Errorf("inputs %03b: got x=%d y=%d, want %d %d", x, out[0], out[1], wantX, wantY)
		}
	}
}

func TestConstantNodes(t *testing.T) {
	a, _ := newAlloc()
	src := `
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
0
.end`
	n, err := ParseBLIF(a, src)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Free()
	out := n.Step(0)
	if out[0] != 1 || out[1] != 0 {
		t.Fatalf("constants = %v", out)
	}
}

func TestLatchSequence(t *testing.T) {
	// q delays a by one cycle.
	a, _ := newAlloc()
	src := `
.model dff
.inputs a
.outputs q
.latch a q 0
.end`
	n, err := ParseBLIF(a, src)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Free()
	inputs := []uint64{1, 0, 1, 1, 0}
	want := []byte{0, 1, 0, 1, 1}
	for i, x := range inputs {
		out := n.Step(x)
		if out[0] != want[i] {
			t.Fatalf("cycle %d: q = %d, want %d", i, out[0], want[i])
		}
	}
	n.Reset()
	if out := n.Step(0); out[0] != 0 {
		t.Fatal("Reset did not clear latch state")
	}
}

func TestOptimizePreservesBehaviour(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		blif := GenerateBLIF(8, 60, 3, seed)
		res, err := Run(blif, 256)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Removed == 0 {
			t.Logf("seed %d removed no gates (allowed but unusual)", seed)
		}
		if err := trace.Validate(res.Events); err != nil {
			t.Fatalf("seed %d: invalid trace: %v", seed, err)
		}
	}
}

func TestOptimizeRemovesBuffers(t *testing.T) {
	a, _ := newAlloc()
	src := `
.model bufchain
.inputs a
.outputs x
.names a b1
1 1
.names b1 b2
1 1
.names b2 x
0 1
.end`
	opt, removed, err := OptimizeBLIF(a, src)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d buffers, want 2\n%s", removed, opt)
	}
	if strings.Contains(opt, "b1") {
		t.Fatalf("buffer b1 still referenced:\n%s", opt)
	}
}

func TestOptimizeCollapsesDoubleInverters(t *testing.T) {
	a, _ := newAlloc()
	src := `
.model invinv
.inputs a
.outputs x
.names a n1
0 1
.names n1 n2
0 1
.names n2 x
1 1
.end`
	opt, removed, err := OptimizeBLIF(a, src)
	if err != nil {
		t.Fatal(err)
	}
	if removed < 1 {
		t.Fatalf("no inverter pair removed:\n%s", opt)
	}
	// Functional check.
	orig, err := ParseBLIF(a, src)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Free()
	optN, err := ParseBLIF(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer optN.Free()
	if _, err := Verify(orig, optN, 16, 1); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsDifference(t *testing.T) {
	a, _ := newAlloc()
	n1, err := ParseBLIF(a, ".model a\n.inputs i\n.outputs o\n.names i o\n1 1\n.end")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Free()
	n2, err := ParseBLIF(a, ".model b\n.inputs i\n.outputs o\n.names i o\n0 1\n.end")
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Free()
	if _, err := Verify(n1, n2, 64, 1); err == nil {
		t.Fatal("buffer vs inverter verified as equal")
	}
}

func TestVerifyInterfaceMismatch(t *testing.T) {
	a, _ := newAlloc()
	n1, _ := ParseBLIF(a, ".model a\n.inputs i\n.outputs o\n.names i o\n1 1\n.end")
	n2, _ := ParseBLIF(a, ".model b\n.inputs i j\n.outputs o\n.names i j o\n11 1\n.end")
	defer n1.Free()
	defer n2.Free()
	if _, err := Verify(n1, n2, 4, 1); err == nil {
		t.Fatal("interface mismatch accepted")
	}
}

func TestGenerateBLIFDeterministicAndParses(t *testing.T) {
	if GenerateBLIF(6, 40, 2, 5) != GenerateBLIF(6, 40, 2, 5) {
		t.Fatal("generator not deterministic")
	}
	a, _ := newAlloc()
	n, err := ParseBLIF(a, GenerateBLIF(6, 40, 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNodes() < 40 {
		t.Fatalf("only %d nodes", n.NumNodes())
	}
	n.Free()
}

func TestRunTraceShape(t *testing.T) {
	blif := GenerateBLIF(10, 120, 4, 99)
	res, err := Run(blif, 512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := trace.Measure(res.Events)
	if err != nil {
		t.Fatal(err)
	}
	// SIS-like: a large fraction of peak storage is still live at the
	// end while verification ran (network is long-lived), yet there
	// was real churn (scratch records freed).
	if s.Frees == 0 {
		t.Fatal("no churn recorded")
	}
	if s.Allocs < 700 {
		t.Fatalf("only %d allocs", s.Allocs)
	}
}

func TestNetworkFreeReturnsAllStorage(t *testing.T) {
	a, h := newAlloc()
	n, err := ParseBLIF(a, GenerateBLIF(6, 50, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	n.Step(0b101010)
	n.Free()
	if h.NumObjects() != 0 {
		t.Fatalf("%d objects leaked after Free", h.NumObjects())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterministicSignature(t *testing.T) {
	blif := GenerateBLIF(8, 80, 3, 7)
	r1, err := Run(blif, 128)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(blif, 128)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Signature != r2.Signature || r1.Signature == 0 {
		t.Fatalf("signatures: %d vs %d", r1.Signature, r2.Signature)
	}
	if len(r1.Events) != len(r2.Events) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Events), len(r2.Events))
	}
}

func BenchmarkStep(b *testing.B) {
	a, _ := newAlloc()
	n, err := ParseBLIF(a, GenerateBLIF(16, 300, 8, 11))
	if err != nil {
		b.Fatal(err)
	}
	defer n.Free()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(uint64(i))
	}
}
