// Package circuit is the SIS stand-in: it parses a BLIF-subset
// netlist into a boolean network allocated on the simulated heap,
// applies local optimizations (constant propagation, buffer and
// double-inverter collapsing), and verifies the optimized network
// against the original with random input vectors — the workload of the
// paper's SIS run ("verification with 1024 random input vectors").
//
// The network itself (nodes, fanin vectors, covers, name strings) is
// long-lived storage held for the whole run, while simulation churns
// small per-vector records — the mixture that gives SIS its
// characteristically high live-byte fraction.
package circuit

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// Node kinds, stored in the node's data[0].
const (
	nodeInput = iota
	nodeLogic
	nodeLatch
	nodeConst0
	nodeConst1
)

// Node heap layout: slots [name string, fanin vector]; data
// [kind u8 | value u8 | state u8 | nrows u8] followed by the cover:
// nrows rows of nfanin bytes each ({0,1,2}), output implicitly 1.
const (
	slotName  = 0
	slotFanin = 1

	offNKind  = 0
	offValue  = 1
	offState  = 2
	offNRows  = 3
	coverBase = 4
)

// Network is a parsed boolean network. The Go-side struct holds only
// names and heap references (the program's statics); all node storage
// is on the managed heap.
type Network struct {
	Name    string
	alloc   mlib.Allocator
	nodes   map[string]mheap.Ref
	order   []string // topological order of logic nodes
	Inputs  []string
	Outputs []string
	Latches []string
}

func (n *Network) heap() *mheap.Heap { return n.alloc.Heap() }

// Node returns the heap node for a signal name.
func (n *Network) Node(name string) (mheap.Ref, bool) {
	r, ok := n.nodes[name]
	return r, ok
}

// NumNodes returns the number of signals in the network.
func (n *Network) NumNodes() int { return len(n.nodes) }

func (n *Network) newNode(name string, kind byte, nfanin, nrows int) mheap.Ref {
	r := n.alloc.Alloc(2, coverBase+nrows*nfanin)
	h := n.heap()
	h.Data(r)[offNKind] = kind
	h.Data(r)[offNRows] = byte(nrows)
	h.SetPtr(r, slotName, mlib.NewString(n.alloc, name))
	n.nodes[name] = r
	return r
}

func (n *Network) kind(r mheap.Ref) byte { return n.heap().Data(r)[offNKind] }

func (n *Network) faninLen(r mheap.Ref) int {
	v := n.heap().Ptr(r, slotFanin)
	if v == mheap.Nil {
		return 0
	}
	return mlib.VLen(n.heap(), v)
}

func (n *Network) fanin(r mheap.Ref, i int) mheap.Ref {
	return mlib.VAt(n.heap(), n.heap().Ptr(r, slotFanin), i)
}

func (n *Network) nodeName(r mheap.Ref) string {
	return mlib.StringVal(n.heap(), n.heap().Ptr(r, slotName))
}

// Free releases all network storage. Nodes are released in name
// order: each Free lands in the recorded trace, so the release order
// must not depend on map iteration.
func (n *Network) Free() {
	h := n.heap()
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes { //dtbvet:ignore determinism -- keys are sorted before any heap event is emitted
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := n.nodes[name]
		if s := h.Ptr(r, slotName); s != mheap.Nil {
			h.SetPtr(r, slotName, mheap.Nil)
			h.Free(s)
		}
		if v := h.Ptr(r, slotFanin); v != mheap.Nil {
			h.SetPtr(r, slotFanin, mheap.Nil)
			for i := 0; i < mlib.VLen(h, v); i++ {
				mlib.VSet(h, v, i, mheap.Nil)
			}
			h.Free(v)
		}
	}
	for _, name := range names {
		h.Free(n.nodes[name])
	}
	n.nodes = nil
	n.order = nil
}

// ParseBLIF reads the BLIF subset: .model, .inputs, .outputs, .names
// with single-output covers, .latch, .end.
func ParseBLIF(a mlib.Allocator, src string) (*Network, error) {
	n := &Network{alloc: a, nodes: make(map[string]mheap.Ref)}
	type pending struct {
		out    string
		fanins []string
		rows   []string
	}
	type pendingLatch struct {
		in, out string
		init    byte
	}
	var logics []pending
	var latches []pendingLatch
	var cur *pending

	flushCur := func() {
		if cur != nil {
			logics = append(logics, *cur)
			cur = nil
		}
	}

	// Join continuation lines (trailing backslash).
	src = strings.ReplaceAll(src, "\\\n", " ")
	for lineno, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case ".model":
			if len(f) > 1 {
				n.Name = f[1]
			}
		case ".inputs":
			flushCur()
			n.Inputs = append(n.Inputs, f[1:]...)
		case ".outputs":
			flushCur()
			n.Outputs = append(n.Outputs, f[1:]...)
		case ".names":
			flushCur()
			if len(f) < 2 {
				return nil, fmt.Errorf("circuit: line %d: bad .names", lineno+1)
			}
			cur = &pending{out: f[len(f)-1], fanins: f[1 : len(f)-1]}
		case ".latch":
			flushCur()
			if len(f) < 3 {
				return nil, fmt.Errorf("circuit: line %d: bad .latch", lineno+1)
			}
			var init byte
			if len(f) >= 4 && f[3] == "1" {
				init = 1
			}
			latches = append(latches, pendingLatch{in: f[1], out: f[2], init: init})
		case ".end":
			flushCur()
		default:
			if strings.HasPrefix(f[0], ".") {
				return nil, fmt.Errorf("circuit: line %d: unsupported directive %s", lineno+1, f[0])
			}
			if cur == nil {
				return nil, fmt.Errorf("circuit: line %d: cover row outside .names", lineno+1)
			}
			// Cover row: "<pattern> 1" or bare "1" for constants.
			switch {
			case len(f) == 2 && f[1] == "1":
				if len(f[0]) != len(cur.fanins) {
					return nil, fmt.Errorf("circuit: line %d: row width %d, want %d", lineno+1, len(f[0]), len(cur.fanins))
				}
				cur.rows = append(cur.rows, f[0])
			case len(f) == 1 && f[0] == "1" && len(cur.fanins) == 0:
				cur.rows = append(cur.rows, "")
			case len(f) == 1 && f[0] == "0" && len(cur.fanins) == 0:
				// constant 0: no rows
			default:
				return nil, fmt.Errorf("circuit: line %d: unsupported cover row %q", lineno+1, line)
			}
		}
	}
	flushCur()

	// Materialize nodes: inputs, latch outputs, then logic.
	for _, in := range n.Inputs {
		n.newNode(in, nodeInput, 0, 0)
	}
	for _, l := range latches {
		r := n.newNode(l.out, nodeLatch, 0, 0)
		n.heap().Data(r)[offState] = l.init
		n.Latches = append(n.Latches, l.out)
	}
	for _, p := range logics {
		if _, dup := n.nodes[p.out]; dup {
			return nil, fmt.Errorf("circuit: duplicate driver for %s", p.out)
		}
		kind := byte(nodeLogic)
		if len(p.fanins) == 0 {
			if len(p.rows) > 0 {
				kind = nodeConst1
			} else {
				kind = nodeConst0
			}
		}
		r := n.newNode(p.out, kind, len(p.fanins), len(p.rows))
		d := n.heap().Data(r)
		for ri, row := range p.rows {
			for ci := 0; ci < len(p.fanins); ci++ {
				var v byte
				switch row[ci] {
				case '0':
					v = 0
				case '1':
					v = 1
				case '-':
					v = 2
				default:
					return nil, fmt.Errorf("circuit: bad cover char %q", row[ci])
				}
				d[coverBase+ri*len(p.fanins)+ci] = v
			}
		}
	}
	// Wire fanins (all nodes now exist) and latch inputs.
	for _, p := range logics {
		r := n.nodes[p.out]
		if len(p.fanins) == 0 {
			continue
		}
		vec := mlib.NewVector(n.alloc, len(p.fanins))
		n.heap().SetPtr(r, slotFanin, vec)
		for i, fn := range p.fanins {
			src, ok := n.nodes[fn]
			if !ok {
				return nil, fmt.Errorf("circuit: %s references undefined signal %s", p.out, fn)
			}
			mlib.VSet(n.heap(), vec, i, src)
		}
	}
	for _, l := range latches {
		r := n.nodes[l.out]
		src, ok := n.nodes[l.in]
		if !ok {
			return nil, fmt.Errorf("circuit: latch input %s undefined", l.in)
		}
		vec := mlib.NewVector(n.alloc, 1)
		n.heap().SetPtr(r, slotFanin, vec)
		mlib.VSet(n.heap(), vec, 0, src)
	}
	for _, out := range n.Outputs {
		if _, ok := n.nodes[out]; !ok {
			return nil, fmt.Errorf("circuit: output %s undefined", out)
		}
	}
	if err := n.computeOrder(); err != nil {
		return nil, err
	}
	return n, nil
}

// computeOrder topologically sorts the combinational logic (latch
// outputs and inputs are sources; latch next-state is read after
// evaluation).
func (n *Network) computeOrder() error {
	state := make(map[string]int, len(n.nodes)) // 0 new, 1 visiting, 2 done
	var order []string
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("circuit: combinational cycle through %s", name)
		case 2:
			return nil
		}
		r := n.nodes[name]
		if k := n.kind(r); k == nodeInput || k == nodeLatch || k == nodeConst0 || k == nodeConst1 {
			state[name] = 2
			if k != nodeInput && k != nodeLatch {
				order = append(order, name)
			}
			return nil
		}
		state[name] = 1
		for i := 0; i < n.faninLen(r); i++ {
			if err := visit(n.nodeName(n.fanin(r, i))); err != nil {
				return err
			}
		}
		state[name] = 2
		order = append(order, name)
		return nil
	}
	for _, name := range n.Latches {
		// Latch next-state functions must be orderable too.
		r := n.nodes[name]
		if n.faninLen(r) > 0 {
			if err := visit(n.nodeName(n.fanin(r, 0))); err != nil {
				return err
			}
		}
	}
	for _, out := range n.Outputs {
		if err := visit(out); err != nil {
			return err
		}
	}
	n.order = order
	return nil
}

// evalNode computes a logic node's value from its fanins' values.
func (n *Network) evalNode(r mheap.Ref) byte {
	h := n.heap()
	d := h.Data(r)
	nf := n.faninLen(r)
	rows := int(d[offNRows])
	for ri := 0; ri < rows; ri++ {
		match := true
		for ci := 0; ci < nf; ci++ {
			want := d[coverBase+ri*nf+ci]
			if want == 2 {
				continue
			}
			fv := h.Data(n.fanin(r, ci))[offValue]
			if fv != want {
				match = false
				break
			}
		}
		if match {
			return 1
		}
	}
	return 0
}

// Step applies one input vector (bit i of x drives Inputs[i]) and
// returns the output values; latches advance afterwards. A transient
// per-vector record is allocated and freed, modelling the simulator's
// event storage.
func (n *Network) Step(x uint64) []byte {
	h := n.heap()
	// Per-vector scratch record (simulation event storage).
	scratch := n.alloc.Alloc(0, len(n.order)+8)
	for i, in := range n.Inputs {
		h.Data(n.nodes[in])[offValue] = byte(x>>uint(i)) & 1
	}
	for _, name := range n.Latches {
		r := n.nodes[name]
		h.Data(r)[offValue] = h.Data(r)[offState]
	}
	for _, name := range n.order {
		r := n.nodes[name]
		switch n.kind(r) {
		case nodeConst0:
			h.Data(r)[offValue] = 0
		case nodeConst1:
			h.Data(r)[offValue] = 1
		default:
			h.Data(r)[offValue] = n.evalNode(r)
		}
	}
	out := make([]byte, len(n.Outputs))
	for i, name := range n.Outputs {
		out[i] = h.Data(n.nodes[name])[offValue]
	}
	// Latch next state = value of the latch's input signal.
	for _, name := range n.Latches {
		r := n.nodes[name]
		if n.faninLen(r) > 0 {
			h.Data(r)[offState] = h.Data(n.fanin(r, 0))[offValue]
		}
	}
	h.Free(scratch)
	h.Tick(uint64(20 * len(n.order)))
	return out
}

// Reset restores all latches to state 0 (the generator's initial
// values are 0; parsed init values are not preserved across Reset).
func (n *Network) Reset() {
	for _, name := range n.Latches {
		n.heap().Data(n.nodes[name])[offState] = 0
	}
}

// Verify runs both networks on `vectors` random input vectors and
// compares outputs, returning a signature checksum. The networks must
// have identical input/output name lists.
func Verify(a, b *Network, vectors int, seed uint64) (signature uint64, err error) {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return 0, fmt.Errorf("circuit: interface mismatch: %d/%d inputs, %d/%d outputs",
			len(a.Inputs), len(b.Inputs), len(a.Outputs), len(b.Outputs))
	}
	a.Reset()
	b.Reset()
	r := xrand.New(seed)
	for v := 0; v < vectors; v++ {
		x := r.Uint64()
		oa := a.Step(x)
		ob := b.Step(x)
		for i := range oa {
			if oa[i] != ob[i] {
				return signature, fmt.Errorf("circuit: vector %d: output %s differs (%d vs %d)",
					v, a.Outputs[i], oa[i], ob[i])
			}
			signature = signature*31 + uint64(oa[i]) + 7
		}
	}
	return signature, nil
}
