package psint

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/dtbgc/dtbgc/internal/mheap"
)

// Path segments are raw heap records: [op u8 | pad | 6 float64 coords].
const (
	segMove  = 1
	segLine  = 2
	segCurve = 3
	segClose = 4
)

func (ip *Interp) newSegment(op byte, coords ...float64) mheap.Ref {
	r := ip.alloc.Alloc(0, 8+6*8)
	d := ip.heap.Data(r)
	d[0] = op
	for i, c := range coords {
		binary.LittleEndian.PutUint64(d[8+i*8:], math.Float64bits(c))
	}
	return r
}

func (ip *Interp) segOp(r mheap.Ref) byte { return ip.heap.Data(r)[0] }

func (ip *Interp) segCoord(r mheap.Ref, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(ip.heap.Data(r)[8+i*8:]))
}

// transform applies the CTM.
func (ip *Interp) transform(x, y float64) (float64, float64) {
	m := ip.gs.ctm
	return m[0]*x + m[2]*y + m[4], m[1]*x + m[3]*y + m[5]
}

func builtinOps() map[string]func(*Interp) error {
	ops := map[string]func(*Interp) error{}

	// --- arithmetic ---
	binNum := func(f func(a, b float64) (float64, error)) func(*Interp) error {
		return func(ip *Interp) error {
			b, err := ip.pop()
			if err != nil {
				return err
			}
			a, err := ip.pop()
			if err != nil {
				ip.release(b)
				return err
			}
			av, err1 := ip.numVal(a)
			bv, err2 := ip.numVal(b)
			bothInt := ip.kind(a) == KInt && ip.kind(b) == KInt
			ip.release(a)
			ip.release(b)
			if err1 != nil {
				return err1
			}
			if err2 != nil {
				return err2
			}
			v, err := f(av, bv)
			if err != nil {
				return err
			}
			if bothInt && v == math.Trunc(v) { //dtbvet:ignore floatexact -- PostScript int/real coercion: the exact integral test IS the language rule
				ip.push(ip.newInt(int64(v)))
			} else {
				ip.push(ip.newReal(v))
			}
			return nil
		}
	}
	ops["add"] = binNum(func(a, b float64) (float64, error) { return a + b, nil })
	ops["sub"] = binNum(func(a, b float64) (float64, error) { return a - b, nil })
	ops["mul"] = binNum(func(a, b float64) (float64, error) { return a * b, nil })
	ops["div"] = func(ip *Interp) error {
		b, err := ip.popNum()
		if err != nil {
			return err
		}
		a, err := ip.popNum()
		if err != nil {
			return err
		}
		if b == 0 { //dtbvet:ignore floatexact -- PostScript undefinedresult fires on exact zero divisors only
			return fmt.Errorf("psint: undefinedresult: div by 0")
		}
		ip.push(ip.newReal(a / b))
		return nil
	}
	ops["idiv"] = func(ip *Interp) error {
		b, err := ip.popInt()
		if err != nil {
			return err
		}
		a, err := ip.popInt()
		if err != nil {
			return err
		}
		if b == 0 {
			return fmt.Errorf("psint: undefinedresult: idiv by 0")
		}
		ip.push(ip.newInt(a / b))
		return nil
	}
	ops["mod"] = func(ip *Interp) error {
		b, err := ip.popInt()
		if err != nil {
			return err
		}
		a, err := ip.popInt()
		if err != nil {
			return err
		}
		if b == 0 {
			return fmt.Errorf("psint: undefinedresult: mod by 0")
		}
		ip.push(ip.newInt(a % b))
		return nil
	}
	ops["neg"] = func(ip *Interp) error {
		r, err := ip.pop()
		if err != nil {
			return err
		}
		k := ip.kind(r)
		v, err := ip.numVal(r)
		ip.release(r)
		if err != nil {
			return err
		}
		if k == KInt {
			ip.push(ip.newInt(-int64(v)))
		} else {
			ip.push(ip.newReal(-v))
		}
		return nil
	}
	ops["abs"] = func(ip *Interp) error {
		v, err := ip.popNum()
		if err != nil {
			return err
		}
		ip.push(ip.newReal(math.Abs(v)))
		return nil
	}
	ops["sqrt"] = func(ip *Interp) error {
		v, err := ip.popNum()
		if err != nil {
			return err
		}
		if v < 0 {
			return fmt.Errorf("psint: rangecheck: sqrt of negative")
		}
		ip.push(ip.newReal(math.Sqrt(v)))
		return nil
	}
	ops["round"] = func(ip *Interp) error {
		v, err := ip.popNum()
		if err != nil {
			return err
		}
		ip.push(ip.newInt(int64(math.Round(v))))
		return nil
	}
	ops["truncate"] = func(ip *Interp) error {
		v, err := ip.popNum()
		if err != nil {
			return err
		}
		ip.push(ip.newInt(int64(math.Trunc(v))))
		return nil
	}
	ops["cvi"] = ops["truncate"]
	ops["cvr"] = func(ip *Interp) error {
		v, err := ip.popNum()
		if err != nil {
			return err
		}
		ip.push(ip.newReal(v))
		return nil
	}

	// --- stack manipulation ---
	ops["dup"] = func(ip *Interp) error {
		if len(ip.stack) == 0 {
			return fmt.Errorf("psint: stackunderflow")
		}
		ip.push(ip.retain(ip.stack[len(ip.stack)-1]))
		return nil
	}
	ops["pop"] = func(ip *Interp) error {
		r, err := ip.pop()
		if err != nil {
			return err
		}
		ip.release(r)
		return nil
	}
	ops["exch"] = func(ip *Interp) error {
		n := len(ip.stack)
		if n < 2 {
			return fmt.Errorf("psint: stackunderflow")
		}
		ip.stack[n-1], ip.stack[n-2] = ip.stack[n-2], ip.stack[n-1]
		return nil
	}
	ops["clear"] = func(ip *Interp) error { ip.clearStack(); return nil }
	ops["count"] = func(ip *Interp) error {
		ip.push(ip.newInt(int64(len(ip.stack))))
		return nil
	}
	ops["index"] = func(ip *Interp) error {
		n, err := ip.popInt()
		if err != nil {
			return err
		}
		if n < 0 || int(n) >= len(ip.stack) {
			return fmt.Errorf("psint: rangecheck: index %d", n)
		}
		ip.push(ip.retain(ip.stack[len(ip.stack)-1-int(n)]))
		return nil
	}
	ops["copy"] = func(ip *Interp) error {
		n, err := ip.popInt()
		if err != nil {
			return err
		}
		if n < 0 || int(n) > len(ip.stack) {
			return fmt.Errorf("psint: rangecheck: copy %d", n)
		}
		base := len(ip.stack) - int(n)
		for i := 0; i < int(n); i++ {
			ip.push(ip.retain(ip.stack[base+i]))
		}
		return nil
	}
	ops["roll"] = func(ip *Interp) error {
		j, err := ip.popInt()
		if err != nil {
			return err
		}
		n, err := ip.popInt()
		if err != nil {
			return err
		}
		if n < 0 || int(n) > len(ip.stack) {
			return fmt.Errorf("psint: rangecheck: roll %d", n)
		}
		if n == 0 {
			return nil
		}
		base := len(ip.stack) - int(n)
		seg := ip.stack[base:]
		j = ((j % n) + n) % n
		rotated := append(append([]mheap.Ref{}, seg[int(n)-int(j):]...), seg[:int(n)-int(j)]...)
		copy(seg, rotated)
		return nil
	}
	ops["mark"] = func(ip *Interp) error { ip.push(ip.newMark()); return nil }
	ops["cleartomark"] = func(ip *Interp) error {
		for {
			r, err := ip.pop()
			if err != nil {
				return fmt.Errorf("psint: unmatchedmark")
			}
			isMark := ip.kind(r) == KMark
			ip.release(r)
			if isMark {
				return nil
			}
		}
	}
	ops["counttomark"] = func(ip *Interp) error {
		for i := len(ip.stack) - 1; i >= 0; i-- {
			if ip.kind(ip.stack[i]) == KMark {
				ip.push(ip.newInt(int64(len(ip.stack) - 1 - i)))
				return nil
			}
		}
		return fmt.Errorf("psint: unmatchedmark")
	}

	// --- relational / boolean ---
	cmpOp := func(f func(c int) bool) func(*Interp) error {
		return func(ip *Interp) error {
			b, err := ip.pop()
			if err != nil {
				return err
			}
			a, err := ip.pop()
			if err != nil {
				ip.release(b)
				return err
			}
			defer ip.release(a)
			defer ip.release(b)
			c, err := ip.compare(a, b)
			if err != nil {
				return err
			}
			ip.push(ip.newBool(f(c)))
			return nil
		}
	}
	ops["eq"] = cmpOp(func(c int) bool { return c == 0 })
	ops["ne"] = cmpOp(func(c int) bool { return c != 0 })
	ops["gt"] = cmpOp(func(c int) bool { return c > 0 })
	ops["ge"] = cmpOp(func(c int) bool { return c >= 0 })
	ops["lt"] = cmpOp(func(c int) bool { return c < 0 })
	ops["le"] = cmpOp(func(c int) bool { return c <= 0 })
	boolOp := func(f func(a, b bool) bool) func(*Interp) error {
		return func(ip *Interp) error {
			b, err := ip.popBool()
			if err != nil {
				return err
			}
			a, err := ip.popBool()
			if err != nil {
				return err
			}
			ip.push(ip.newBool(f(a, b)))
			return nil
		}
	}
	ops["and"] = boolOp(func(a, b bool) bool { return a && b })
	ops["or"] = boolOp(func(a, b bool) bool { return a || b })
	ops["xor"] = boolOp(func(a, b bool) bool { return a != b })
	ops["not"] = func(ip *Interp) error {
		v, err := ip.popBool()
		if err != nil {
			return err
		}
		ip.push(ip.newBool(!v))
		return nil
	}
	ops["true"] = func(ip *Interp) error { ip.push(ip.newBool(true)); return nil }
	ops["false"] = func(ip *Interp) error { ip.push(ip.newBool(false)); return nil }

	// --- control ---
	ops["if"] = func(ip *Interp) error {
		proc, err := ip.popKind(KArray)
		if err != nil {
			return err
		}
		cond, err := ip.popBool()
		if err != nil {
			ip.release(proc)
			return err
		}
		if cond {
			return ip.execValue(proc)
		}
		ip.release(proc)
		return nil
	}
	ops["ifelse"] = func(ip *Interp) error {
		pElse, err := ip.popKind(KArray)
		if err != nil {
			return err
		}
		pThen, err := ip.popKind(KArray)
		if err != nil {
			ip.release(pElse)
			return err
		}
		cond, err := ip.popBool()
		if err != nil {
			ip.release(pElse)
			ip.release(pThen)
			return err
		}
		if cond {
			ip.release(pElse)
			return ip.execValue(pThen)
		}
		ip.release(pThen)
		return ip.execValue(pElse)
	}
	ops["repeat"] = func(ip *Interp) error {
		proc, err := ip.popKind(KArray)
		if err != nil {
			return err
		}
		defer ip.release(proc)
		n, err := ip.popInt()
		if err != nil {
			return err
		}
		for i := int64(0); i < n; i++ {
			if err := ip.execProcArray(proc); err != nil {
				return err
			}
			if ip.exitFlag {
				ip.exitFlag = false
				break
			}
		}
		return nil
	}
	ops["for"] = func(ip *Interp) error {
		proc, err := ip.popKind(KArray)
		if err != nil {
			return err
		}
		defer ip.release(proc)
		limit, err := ip.popNum()
		if err != nil {
			return err
		}
		inc, err := ip.popNum()
		if err != nil {
			return err
		}
		init, err := ip.popNum()
		if err != nil {
			return err
		}
		if inc == 0 { //dtbvet:ignore floatexact -- PostScript rangecheck fires on an exactly-zero increment only
			return fmt.Errorf("psint: rangecheck: for with zero increment")
		}
		for v := init; (inc > 0 && v <= limit) || (inc < 0 && v >= limit); v += inc {
			if v == math.Trunc(v) { //dtbvet:ignore floatexact -- PostScript int/real coercion: the exact integral test IS the language rule
				ip.push(ip.newInt(int64(v)))
			} else {
				ip.push(ip.newReal(v))
			}
			if err := ip.execProcArray(proc); err != nil {
				return err
			}
			if ip.exitFlag {
				ip.exitFlag = false
				break
			}
		}
		return nil
	}
	ops["loop"] = func(ip *Interp) error {
		proc, err := ip.popKind(KArray)
		if err != nil {
			return err
		}
		defer ip.release(proc)
		for i := 0; ; i++ {
			if i > 1_000_000 {
				return fmt.Errorf("psint: loop ran 1e6 iterations without exit")
			}
			if err := ip.execProcArray(proc); err != nil {
				return err
			}
			if ip.exitFlag {
				ip.exitFlag = false
				return nil
			}
		}
	}
	ops["exit"] = func(ip *Interp) error { ip.exitFlag = true; return nil }
	ops["exec"] = func(ip *Interp) error {
		v, err := ip.pop()
		if err != nil {
			return err
		}
		return ip.execValue(v)
	}
	ops["forall"] = func(ip *Interp) error {
		proc, err := ip.popKind(KArray)
		if err != nil {
			return err
		}
		defer ip.release(proc)
		arr, err := ip.popKind(KArray)
		if err != nil {
			return err
		}
		defer ip.release(arr)
		for i, n := 0, ip.arrayLen(arr); i < n; i++ {
			el := ip.arrayAt(arr, i)
			if el == mheap.Nil {
				ip.push(ip.newObject(KNull, mheap.Nil, 0, 0))
			} else {
				ip.push(ip.retain(el))
			}
			if err := ip.execProcArray(proc); err != nil {
				return err
			}
			if ip.exitFlag {
				ip.exitFlag = false
				break
			}
		}
		return nil
	}

	// --- dictionaries ---
	ops["def"] = func(ip *Interp) error {
		val, err := ip.pop()
		if err != nil {
			return err
		}
		key, err := ip.pop()
		if err != nil {
			ip.release(val)
			return err
		}
		if ip.kind(key) != KLitName {
			k := ip.kind(key)
			ip.release(val)
			ip.release(key)
			return fmt.Errorf("psint: typecheck: def key must be /name, got %s", k)
		}
		name := ip.nameVal(key)
		ip.release(key)
		d := ip.dictOf(ip.dictStack[len(ip.dictStack)-1])
		if old, ok := d.Get(name); ok {
			d.Set(name, val) // val's reference moves into the dict
			ip.release(old)
		} else {
			d.Set(name, val)
		}
		return nil
	}
	ops["load"] = func(ip *Interp) error {
		key, err := ip.popKind(KLitName)
		if err != nil {
			return err
		}
		name := ip.nameVal(key)
		ip.release(key)
		v, ok := ip.lookup(name)
		if !ok {
			return fmt.Errorf("psint: undefined: %s", name)
		}
		ip.push(ip.retain(v))
		return nil
	}
	ops["dict"] = func(ip *Interp) error {
		n, err := ip.popInt()
		if err != nil {
			return err
		}
		if n < 1 {
			n = 1
		}
		ip.push(ip.newDict(int(n)))
		return nil
	}
	ops["begin"] = func(ip *Interp) error {
		d, err := ip.popKind(KDict)
		if err != nil {
			return err
		}
		ip.dictStack = append(ip.dictStack, d) // ownership moves to dict stack
		return nil
	}
	ops["end"] = func(ip *Interp) error {
		if len(ip.dictStack) <= 1 {
			return fmt.Errorf("psint: dictstackunderflow")
		}
		d := ip.dictStack[len(ip.dictStack)-1]
		ip.dictStack = ip.dictStack[:len(ip.dictStack)-1]
		ip.release(d)
		return nil
	}
	ops["known"] = func(ip *Interp) error {
		key, err := ip.popKind(KLitName)
		if err != nil {
			return err
		}
		name := ip.nameVal(key)
		ip.release(key)
		d, err := ip.popKind(KDict)
		if err != nil {
			return err
		}
		_, ok := ip.dictOf(d).Get(name)
		ip.release(d)
		ip.push(ip.newBool(ok))
		return nil
	}

	// --- arrays & strings ---
	ops["array"] = func(ip *Interp) error {
		n, err := ip.popInt()
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("psint: rangecheck: array %d", n)
		}
		ip.push(ip.newArray(int(n), false))
		return nil
	}
	ops["length"] = func(ip *Interp) error {
		r, err := ip.pop()
		if err != nil {
			return err
		}
		defer ip.release(r)
		switch ip.kind(r) {
		case KArray:
			ip.push(ip.newInt(int64(ip.arrayLen(r))))
		case KString:
			ip.push(ip.newInt(int64(len(ip.stringVal(r)))))
		case KDict:
			ip.push(ip.newInt(int64(ip.dictOf(r).Len())))
		default:
			return fmt.Errorf("psint: typecheck: length of %s", ip.kind(r))
		}
		return nil
	}
	ops["get"] = func(ip *Interp) error {
		idx, err := ip.pop()
		if err != nil {
			return err
		}
		r, err := ip.pop()
		if err != nil {
			ip.release(idx)
			return err
		}
		defer ip.release(r)
		defer ip.release(idx)
		switch ip.kind(r) {
		case KArray:
			if ip.kind(idx) != KInt {
				return fmt.Errorf("psint: typecheck: array index")
			}
			i := int(ip.intVal(idx))
			if i < 0 || i >= ip.arrayLen(r) {
				return fmt.Errorf("psint: rangecheck: get %d", i)
			}
			el := ip.arrayAt(r, i)
			if el == mheap.Nil {
				ip.push(ip.newObject(KNull, mheap.Nil, 0, 0))
			} else {
				ip.push(ip.retain(el))
			}
		case KString:
			if ip.kind(idx) != KInt {
				return fmt.Errorf("psint: typecheck: string index")
			}
			s := ip.stringVal(r)
			i := int(ip.intVal(idx))
			if i < 0 || i >= len(s) {
				return fmt.Errorf("psint: rangecheck: get %d", i)
			}
			ip.push(ip.newInt(int64(s[i])))
		case KDict:
			if ip.kind(idx) != KLitName {
				return fmt.Errorf("psint: typecheck: dict key")
			}
			v, ok := ip.dictOf(r).Get(ip.nameVal(idx))
			if !ok {
				return fmt.Errorf("psint: undefined: %s", ip.nameVal(idx))
			}
			ip.push(ip.retain(v))
		default:
			return fmt.Errorf("psint: typecheck: get from %s", ip.kind(r))
		}
		return nil
	}
	ops["put"] = func(ip *Interp) error {
		val, err := ip.pop()
		if err != nil {
			return err
		}
		idx, err := ip.pop()
		if err != nil {
			ip.release(val)
			return err
		}
		r, err := ip.pop()
		if err != nil {
			ip.release(val)
			ip.release(idx)
			return err
		}
		defer ip.release(r)
		switch ip.kind(r) {
		case KArray:
			if ip.kind(idx) != KInt {
				ip.release(val)
				ip.release(idx)
				return fmt.Errorf("psint: typecheck: array index")
			}
			i := int(ip.intVal(idx))
			ip.release(idx)
			if i < 0 || i >= ip.arrayLen(r) {
				ip.release(val)
				return fmt.Errorf("psint: rangecheck: put %d", i)
			}
			ip.arraySet(r, i, val)
		case KDict:
			if ip.kind(idx) != KLitName {
				ip.release(val)
				ip.release(idx)
				return fmt.Errorf("psint: typecheck: dict key")
			}
			name := ip.nameVal(idx)
			ip.release(idx)
			d := ip.dictOf(r)
			if old, ok := d.Get(name); ok {
				d.Set(name, val)
				ip.release(old)
			} else {
				d.Set(name, val)
			}
		default:
			ip.release(val)
			ip.release(idx)
			return fmt.Errorf("psint: typecheck: put into %s", ip.kind(r))
		}
		return nil
	}
	ops["astore"] = func(ip *Interp) error {
		arr, err := ip.popKind(KArray)
		if err != nil {
			return err
		}
		n := ip.arrayLen(arr)
		if len(ip.stack) < n {
			ip.release(arr)
			return fmt.Errorf("psint: stackunderflow: astore")
		}
		base := len(ip.stack) - n
		for i := 0; i < n; i++ {
			ip.arraySet(arr, i, ip.stack[base+i])
		}
		ip.stack = ip.stack[:base]
		ip.push(arr)
		return nil
	}
	ops["aload"] = func(ip *Interp) error {
		arr, err := ip.popKind(KArray)
		if err != nil {
			return err
		}
		for i, n := 0, ip.arrayLen(arr); i < n; i++ {
			el := ip.arrayAt(arr, i)
			if el == mheap.Nil {
				ip.push(ip.newObject(KNull, mheap.Nil, 0, 0))
			} else {
				ip.push(ip.retain(el))
			}
		}
		ip.push(arr)
		return nil
	}
	ops["string"] = func(ip *Interp) error {
		n, err := ip.popInt()
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("psint: rangecheck: string %d", n)
		}
		ip.push(ip.newStringObj(string(make([]byte, n))))
		return nil
	}
	ops["bind"] = func(ip *Interp) error { return nil } // we always late-bind

	// --- graphics ---
	ops["newpath"] = func(ip *Interp) error { ip.freePath(); return nil }
	ops["moveto"] = func(ip *Interp) error { return ip.pathOp(segMove, false) }
	ops["lineto"] = func(ip *Interp) error { return ip.pathOp(segLine, false) }
	ops["rmoveto"] = func(ip *Interp) error { return ip.pathOp(segMove, true) }
	ops["rlineto"] = func(ip *Interp) error { return ip.pathOp(segLine, true) }
	ops["curveto"] = func(ip *Interp) error {
		var c [6]float64
		for i := 5; i >= 0; i-- {
			v, err := ip.popNum()
			if err != nil {
				return err
			}
			c[i] = v
		}
		x1, y1 := ip.transform(c[0], c[1])
		x2, y2 := ip.transform(c[2], c[3])
		x3, y3 := ip.transform(c[4], c[5])
		ip.path = append(ip.path, ip.newSegment(segCurve, x1, y1, x2, y2, x3, y3))
		ip.curX, ip.curY, ip.hasPoint = x3, y3, true
		return nil
	}
	ops["closepath"] = func(ip *Interp) error {
		if ip.hasPoint {
			ip.path = append(ip.path, ip.newSegment(segClose))
		}
		return nil
	}
	ops["currentpoint"] = func(ip *Interp) error {
		if !ip.hasPoint {
			return fmt.Errorf("psint: nocurrentpoint")
		}
		ip.push(ip.newReal(ip.curX))
		ip.push(ip.newReal(ip.curY))
		return nil
	}
	ops["stroke"] = func(ip *Interp) error { return ip.paint(1) }
	ops["fill"] = func(ip *Interp) error { return ip.paint(2) }
	ops["showpage"] = func(ip *Interp) error {
		ip.Pages++
		ip.freePath()
		ip.freeDisplay()
		return nil
	}
	ops["gsave"] = func(ip *Interp) error {
		gs := ip.gs
		gs.obj = ip.alloc.Alloc(0, 96) // saved-state record
		ip.gsStack = append(ip.gsStack, gs)
		return nil
	}
	ops["grestore"] = func(ip *Interp) error {
		if len(ip.gsStack) == 0 {
			return nil // PostScript tolerates extra grestores at outermost level
		}
		gs := ip.gsStack[len(ip.gsStack)-1]
		ip.gsStack = ip.gsStack[:len(ip.gsStack)-1]
		ip.heap.Free(gs.obj)
		gs.obj = mheap.Nil
		ip.gs = gs
		return nil
	}
	ops["translate"] = func(ip *Interp) error {
		ty, err := ip.popNum()
		if err != nil {
			return err
		}
		tx, err := ip.popNum()
		if err != nil {
			return err
		}
		m := &ip.gs.ctm
		m[4] += m[0]*tx + m[2]*ty
		m[5] += m[1]*tx + m[3]*ty
		return nil
	}
	ops["scale"] = func(ip *Interp) error {
		sy, err := ip.popNum()
		if err != nil {
			return err
		}
		sx, err := ip.popNum()
		if err != nil {
			return err
		}
		m := &ip.gs.ctm
		m[0] *= sx
		m[1] *= sx
		m[2] *= sy
		m[3] *= sy
		return nil
	}
	ops["rotate"] = func(ip *Interp) error {
		deg, err := ip.popNum()
		if err != nil {
			return err
		}
		s, c := math.Sincos(deg * math.Pi / 180)
		m := ip.gs.ctm
		ip.gs.ctm[0] = m[0]*c + m[2]*s
		ip.gs.ctm[1] = m[1]*c + m[3]*s
		ip.gs.ctm[2] = -m[0]*s + m[2]*c
		ip.gs.ctm[3] = -m[1]*s + m[3]*c
		return nil
	}
	ops["setlinewidth"] = func(ip *Interp) error {
		v, err := ip.popNum()
		if err != nil {
			return err
		}
		ip.gs.lineWidth = v
		return nil
	}
	ops["setgray"] = func(ip *Interp) error {
		v, err := ip.popNum()
		if err != nil {
			return err
		}
		ip.gs.gray = v
		return nil
	}

	// --- text ---
	ops["findfont"] = func(ip *Interp) error {
		name, err := ip.popKind(KLitName)
		if err != nil {
			return err
		}
		fontName := ip.nameVal(name)
		ip.release(name)
		// Build a small font dictionary like a real interpreter.
		font := ip.newDict(8)
		d := ip.dictOf(font)
		d.Set("FontName", ip.newStringObj(fontName))
		d.Set("FontSize", ip.newReal(1))
		ip.push(font)
		return nil
	}
	ops["scalefont"] = func(ip *Interp) error {
		size, err := ip.popNum()
		if err != nil {
			return err
		}
		font, err := ip.popKind(KDict)
		if err != nil {
			return err
		}
		d := ip.dictOf(font)
		if old, ok := d.Get("FontSize"); ok {
			d.Set("FontSize", ip.newReal(size))
			ip.release(old)
		}
		ip.push(font)
		return nil
	}
	ops["setfont"] = func(ip *Interp) error {
		font, err := ip.popKind(KDict)
		if err != nil {
			return err
		}
		d := ip.dictOf(font)
		if v, ok := d.Get("FontSize"); ok {
			ip.fontSize, _ = ip.numVal(v)
		}
		if v, ok := d.Get("FontName"); ok {
			ip.fontName = ip.stringVal(v)
		}
		ip.release(font)
		return nil
	}
	ops["show"] = func(ip *Interp) error {
		s, err := ip.popKind(KString)
		if err != nil {
			return err
		}
		text := ip.stringVal(s)
		ip.release(s)
		if !ip.hasPoint {
			return fmt.Errorf("psint: nocurrentpoint: show")
		}
		// Rasterize each glyph: allocate a transient glyph record (the
		// NODISPLAY path still shapes text), advance, and free it.
		for i := 0; i < len(text); i++ {
			glyph := ip.alloc.Alloc(0, 40)
			w := ip.fontSize * glyphWidth(text[i])
			ip.Checksum += w + float64(text[i])
			ip.curX += w
			ip.heap.Free(glyph)
		}
		return nil
	}
	ops["stringwidth"] = func(ip *Interp) error {
		s, err := ip.popKind(KString)
		if err != nil {
			return err
		}
		text := ip.stringVal(s)
		ip.release(s)
		var w float64
		for i := 0; i < len(text); i++ {
			w += ip.fontSize * glyphWidth(text[i])
		}
		ip.push(ip.newReal(w))
		ip.push(ip.newReal(0))
		return nil
	}
	builtinOps2(ops)
	return ops
}

func glyphWidth(c byte) float64 {
	if c == ' ' {
		return 0.30
	}
	return 0.45 + float64(c%16)*0.02
}

// pathOp handles moveto/lineto and their relative forms.
func (ip *Interp) pathOp(op byte, relative bool) error {
	y, err := ip.popNum()
	if err != nil {
		return err
	}
	x, err := ip.popNum()
	if err != nil {
		return err
	}
	var tx, ty float64
	if relative {
		if !ip.hasPoint {
			return fmt.Errorf("psint: nocurrentpoint")
		}
		tx, ty = ip.curX+x, ip.curY+y
	} else {
		tx, ty = ip.transform(x, y)
	}
	ip.path = append(ip.path, ip.newSegment(op, tx, ty))
	ip.curX, ip.curY, ip.hasPoint = tx, ty, true
	return nil
}

// paint "renders" the current path: the segments move to the page
// display list (kept until showpage) and transient edge records model
// rasterization work.
func (ip *Interp) paint(mode int) error {
	for _, seg := range ip.path {
		// Rasterization scratch, freed immediately (fast churn).
		edge := ip.alloc.Alloc(0, 24)
		ip.Checksum += float64(mode) + ip.segCoord(seg, 0) + ip.segCoord(seg, 1) + ip.gs.lineWidth*0.01
		_ = ip.segOp(seg)
		ip.heap.Free(edge)
	}
	// The painted path joins the display list until showpage.
	ip.display = append(ip.display, ip.path...)
	ip.path = ip.path[:0]
	ip.hasPoint = false
	return nil
}

// compare orders two objects: numbers numerically, strings and names
// lexically, bools by value; mixed or other types compare equal only
// to themselves by identity.
func (ip *Interp) compare(a, b mheap.Ref) (int, error) {
	ka, kb := ip.kind(a), ip.kind(b)
	numeric := func(k Kind) bool { return k == KInt || k == KReal }
	switch {
	case numeric(ka) && numeric(kb):
		av, _ := ip.numVal(a)
		bv, _ := ip.numVal(b)
		switch {
		case av < bv:
			return -1, nil
		case av > bv:
			return 1, nil
		default:
			return 0, nil
		}
	case ka == KString && kb == KString:
		return cmpStrings(ip.stringVal(a), ip.stringVal(b)), nil
	case (ka == KLitName || ka == KName) && (kb == KLitName || kb == KName):
		return cmpStrings(ip.nameVal(a), ip.nameVal(b)), nil
	case ka == KBool && kb == KBool:
		av, bv := ip.boolVal(a), ip.boolVal(b)
		switch {
		case av == bv:
			return 0, nil
		case !av:
			return -1, nil
		default:
			return 1, nil
		}
	default:
		if a == b {
			return 0, nil
		}
		return 1, nil // unequal, ordering unspecified
	}
}

func cmpStrings(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
