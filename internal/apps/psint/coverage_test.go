package psint

// Tests for the less-travelled interpreter paths: exec, deferred
// procedures, cross-type comparison, kind rendering and operator
// error branches.

import (
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/mheap"
)

func TestExecOperator(t *testing.T) {
	// exec on a procedure runs it.
	ip, _ := runProgram(t, "{ 1 2 add } exec")
	if got := topInt(t, ip); got != 3 {
		t.Fatalf("exec proc = %d", got)
	}
	ip.Close()
	// exec on a plain value pushes it back.
	ip2, _ := runProgram(t, "42 exec")
	if got := topInt(t, ip2); got != 42 {
		t.Fatalf("exec int = %d", got)
	}
	ip2.Close()
	// exec on an executable name resolves and runs it.
	ip3, _ := runProgram(t, "/f { 7 } def /f load exec")
	if got := topInt(t, ip3); got != 7 {
		t.Fatalf("exec name = %d", got)
	}
	ip3.Close()
}

func TestNestedProcPushesItself(t *testing.T) {
	// A procedure inside a procedure is deferred: running the outer
	// pushes the inner as an operand.
	ip, _ := runProgram(t, "/f { { 9 } } def f exec")
	if got := topInt(t, ip); got != 9 {
		t.Fatalf("nested proc = %d", got)
	}
	ip.Close()
}

func TestProcBoundValuesExecute(t *testing.T) {
	// A name defined to a non-procedure pushes its value when executed.
	ip, _ := runProgram(t, "/x [1 2] def x length")
	if got := topInt(t, ip); got != 2 {
		t.Fatalf("bound array length = %d", got)
	}
	ip.Close()
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KNull: "null", KInt: "integer", KReal: "real", KBool: "boolean",
		KName: "name", KLitName: "literalname", KString: "string",
		KArray: "array", KDict: "dict", KMark: "mark",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind should include its number")
	}
}

func TestCompareCrossTypes(t *testing.T) {
	// Mixed types compare equal only by identity.
	ip, _ := runProgram(t, "1 (1) eq")
	r, _ := ip.pop()
	if ip.boolVal(r) {
		t.Fatal("int compared equal to string")
	}
	ip.release(r)
	ip.Close()
	// Identity comparison: dup makes the same object equal to itself.
	ip2, _ := runProgram(t, "[1] dup eq")
	r2, _ := ip2.pop()
	if !ip2.boolVal(r2) {
		t.Fatal("array not identical to itself")
	}
	ip2.release(r2)
	ip2.Close()
	// Distinct arrays are not eq (PostScript composite identity).
	ip3, _ := runProgram(t, "[1] [1] eq")
	r3, _ := ip3.pop()
	if ip3.boolVal(r3) {
		t.Fatal("distinct arrays compared equal")
	}
	ip3.release(r3)
	ip3.Close()
}

func TestCompareBooleansAndNames(t *testing.T) {
	cases := map[string]bool{
		"false true lt": true,
		"true true eq":  true,
		"true false eq": false,
		"/abc /abd lt":  true,
		// Name vs string mixes kinds: compared by identity, so ne.
		"/x (x) eq": false,
	}
	for src, want := range cases {
		ip, _ := runProgram(t, src)
		r, err := ip.pop()
		if err != nil {
			t.Fatal(err)
		}
		if got := ip.boolVal(r); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
		ip.release(r)
		ip.Close()
	}
}

func TestGsaveRestoresState(t *testing.T) {
	ip, _ := runProgram(t, "3 setlinewidth gsave 9 setlinewidth grestore")
	if ip.gs.lineWidth != 3 {
		t.Fatalf("grestore left line width %v", ip.gs.lineWidth)
	}
	ip.Close()
	// Extra grestore at the outermost level is tolerated.
	ip2, _ := runProgram(t, "grestore grestore")
	ip2.Close()
}

func TestStringWidthAndShowAdvance(t *testing.T) {
	ip, _ := runProgram(t, "/F findfont 10 scalefont setfont (ab) stringwidth")
	y := topNum(t, ip)
	w := topNum(t, ip)
	if y != 0 || w <= 0 {
		t.Fatalf("stringwidth = (%v, %v)", w, y)
	}
	ip.Close()
	// show advances the current point by the same width.
	ip2, _ := runProgram(t, `/F findfont 10 scalefont setfont
		newpath 0 0 moveto (ab) show currentpoint`)
	topNum(t, ip2) // y
	x := topNum(t, ip2)
	if x <= 0 {
		t.Fatalf("show did not advance: x = %v", x)
	}
	ip2.Close()
}

func TestShowWithoutPointErrors(t *testing.T) {
	h := mheap.New()
	ip := New(h)
	if err := ip.Run("(text) show"); err == nil {
		t.Fatal("show without current point accepted")
	}
	ip.Close()
}

func TestMoreOperatorErrorBranches(t *testing.T) {
	cases := []string{
		"5 index",                   // rangecheck
		"-1 copy",                   // rangecheck
		"99 roll",                   // stackunderflow-ish rangecheck
		"counttomark",               // unmatchedmark
		"cleartomark",               // unmatchedmark
		"-3 array",                  // rangecheck
		"-2 string",                 // rangecheck
		"[1 2] (k) get",             // typecheck index
		"1 dict 5 get",              // typecheck key
		"[1] 0 9 9 put 9",           // put arity: consumes val,idx,target... malformed on purpose
		"1 0 0 0 for",               // zero increment
		"1 2 known",                 // typecheck
		"(s) 9 9 put",               // put into string unsupported
		"/x load",                   // undefined via load
		"aload",                     // stackunderflow
		"1 astore",                  // typecheck
		"1 2 curveto",               // stackunderflow
		"1 neg neg neg neg neg mul", // stackunderflow via mul
		"-1 sqrt",                   // rangecheck
	}
	for _, src := range cases {
		h := mheap.New()
		ip := New(h)
		if err := ip.Run(src); err == nil {
			t.Errorf("%q did not error", src)
		}
		ip.Close()
		if err := h.CheckIntegrity(); err != nil {
			t.Errorf("%q corrupted heap: %v", src, err)
		}
	}
}

func TestForallOnNestedProcsAndExit(t *testing.T) {
	ip, _ := runProgram(t, "/n 0 def [1 2 3 4 5] { /n exch n add def n 5 gt { exit } if } forall n")
	if got := topInt(t, ip); got != 6 { // 1+2+3 = 6 > 5 -> exit
		t.Fatalf("forall/exit = %d", got)
	}
	ip.Close()
}

func TestRepeatZeroAndForDownward(t *testing.T) {
	ip, _ := runProgram(t, "7 0 { pop } repeat")
	if got := topInt(t, ip); got != 7 {
		t.Fatalf("repeat 0 consumed the stack: %d", got)
	}
	ip.Close()
	ip2, _ := runProgram(t, "/s 0 def 10 -2 0 { /s exch s add def } for s")
	if got := topInt(t, ip2); got != 30 { // 10+8+6+4+2+0
		t.Fatalf("downward for = %d", got)
	}
	ip2.Close()
}

func TestDeepDictStack(t *testing.T) {
	ip, _ := runProgram(t, `
		/x 1 def
		4 dict begin /x 2 def
		4 dict begin /x 3 def
		x end x end x
	`)
	if got := topInt(t, ip); got != 1 {
		t.Fatalf("outer x = %d", got)
	}
	if got := topInt(t, ip); got != 2 {
		t.Fatalf("middle x = %d", got)
	}
	if got := topInt(t, ip); got != 3 {
		t.Fatalf("inner x = %d", got)
	}
	ip.Close()
}

func TestCloseIsIdempotentEnough(t *testing.T) {
	h := mheap.New()
	ip := New(h)
	if err := ip.Run("1 2 3"); err != nil {
		t.Fatal(err)
	}
	ip.Close()
	if h.NumObjects() != 0 {
		t.Fatalf("%d leaked", h.NumObjects())
	}
}

func TestScannerRejectsBareDelimiters(t *testing.T) {
	// Regression: a bare ')' once looped the scanner forever (found by
	// FuzzRun; the crasher lives in testdata/fuzz/FuzzRun).
	for _, src := range []string{")", "1 2 )", ")dup mul} 5 exch exec"} {
		if _, err := scan(src); err == nil {
			t.Errorf("scan(%q) accepted unmatched )", src)
		}
	}
}
