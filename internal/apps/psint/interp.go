package psint

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

// token is one scanned input token. Tokens live outside the heap (the
// program text is static data, as in a real interpreter); objects are
// allocated on the heap when tokens are executed.
type token struct {
	kind tokenKind
	num  float64
	isIn bool // numeric token is integral
	str  string
	proc []token // body of a {...} procedure
	arr  []token // body of a [...] literal (executed to build the array)
}

type tokenKind uint8

const (
	tNumber tokenKind = iota
	tName
	tLitName
	tString
	tProc
	tArrayOpen
	tArrayClose
)

// scan tokenizes PostScript-subset source.
func scan(src string) ([]token, error) {
	var out []token
	var stack [][]token // open procedure bodies
	emit := func(t token) {
		if len(stack) > 0 {
			stack[len(stack)-1] = append(stack[len(stack)-1], t)
		} else {
			out = append(out, t)
		}
	}
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '%': // comment to end of line
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '{':
			stack = append(stack, nil)
			i++
		case c == '}':
			if len(stack) == 0 {
				return nil, fmt.Errorf("psint: unbalanced }")
			}
			body := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			emit(token{kind: tProc, proc: body})
			i++
		case c == '[':
			emit(token{kind: tArrayOpen})
			i++
		case c == ']':
			emit(token{kind: tArrayClose})
			i++
		case c == '(':
			depth, j := 1, i+1
			var b strings.Builder
			for j < n && depth > 0 {
				switch src[j] {
				case '(':
					depth++
					b.WriteByte(src[j])
				case ')':
					depth--
					if depth > 0 {
						b.WriteByte(src[j])
					}
				case '\\':
					j++
					if j < n {
						b.WriteByte(src[j])
					}
				default:
					b.WriteByte(src[j])
				}
				j++
			}
			if depth != 0 {
				return nil, fmt.Errorf("psint: unterminated string")
			}
			emit(token{kind: tString, str: b.String()})
			i = j
		case c == '/':
			j := i + 1
			for j < n && !isDelim(src[j]) {
				j++
			}
			emit(token{kind: tLitName, str: src[i+1 : j]})
			i = j
		case c == ')':
			return nil, fmt.Errorf("psint: unmatched )")
		default:
			j := i
			for j < n && !isDelim(src[j]) {
				j++
			}
			if j == i {
				// A delimiter with no handler above (defensive: all
				// are covered, but a zero-width token must never slip
				// through or the scanner would not advance).
				return nil, fmt.Errorf("psint: unexpected character %q", c)
			}
			word := src[i:j]
			i = j
			if v, err := strconv.ParseInt(word, 10, 64); err == nil {
				emit(token{kind: tNumber, num: float64(v), isIn: true})
			} else if f, err := strconv.ParseFloat(word, 64); err == nil {
				emit(token{kind: tNumber, num: f})
			} else {
				emit(token{kind: tName, str: word})
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("psint: unbalanced {")
	}
	return out, nil
}

func isDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '{', '}', '[', ']', '(', ')', '/', '%':
		return true
	}
	return false
}

// gstate is one graphics-state snapshot (heap object referenced for
// realism; the numeric state lives Go-side for simplicity).
type gstate struct {
	ctm       [6]float64 // a b c d tx ty
	lineWidth float64
	gray      float64
	obj       mheap.Ref // heap shadow object, freed at grestore
}

// Interp is one interpreter instance over a managed heap.
type Interp struct {
	heap  *mheap.Heap
	alloc mlib.Allocator

	ops   map[string]func(*Interp) error
	dicts []*mlib.Dict // backing tables for KDict objects

	stack     []mheap.Ref // operand stack; each entry owns a reference
	dictStack []mheap.Ref // dict objects; each owns a reference
	userdict  mheap.Ref

	// Graphics state.
	gs        gstate
	gsStack   []gstate
	path      []mheap.Ref // current path segments (owned)
	display   []mheap.Ref // page display list (owned), freed at showpage
	curX      float64
	curY      float64
	hasPoint  bool
	fontSize  float64
	fontName  string
	exitFlag  bool
	procDepth int

	// Observable results.
	Pages    int
	OpCount  int
	Checksum float64
}

// New creates an interpreter on the given heap.
func New(h *mheap.Heap) *Interp {
	ip := &Interp{
		heap:  h,
		alloc: mlib.Raw{H: h},
		gs:    gstate{ctm: [6]float64{1, 0, 0, 1, 0, 0}, lineWidth: 1, gray: 0},
	}
	ip.ops = builtinOps()
	ip.userdict = ip.newDict(64)
	ip.dictStack = []mheap.Ref{ip.retain(ip.userdict)}
	return ip
}

// Close releases the interpreter's remaining storage (stacks, dicts,
// page state), letting tests assert the heap drains to empty.
func (ip *Interp) Close() {
	ip.clearStack()
	for _, d := range ip.dictStack {
		ip.release(d)
	}
	ip.dictStack = nil
	ip.release(ip.userdict)
	ip.userdict = mheap.Nil
	ip.freePath()
	ip.freeDisplay()
	for len(ip.gsStack) > 0 {
		gs := ip.gsStack[len(ip.gsStack)-1]
		ip.gsStack = ip.gsStack[:len(ip.gsStack)-1]
		ip.heap.Free(gs.obj)
	}
}

// Stack helpers. push takes ownership of one reference.

func (ip *Interp) push(r mheap.Ref) { ip.stack = append(ip.stack, r) }

func (ip *Interp) pop() (mheap.Ref, error) {
	if len(ip.stack) == 0 {
		return mheap.Nil, fmt.Errorf("psint: stackunderflow")
	}
	r := ip.stack[len(ip.stack)-1]
	ip.stack = ip.stack[:len(ip.stack)-1]
	return r, nil
}

func (ip *Interp) popNum() (float64, error) {
	r, err := ip.pop()
	if err != nil {
		return 0, err
	}
	defer ip.release(r)
	return ip.numVal(r)
}

func (ip *Interp) popInt() (int64, error) {
	r, err := ip.pop()
	if err != nil {
		return 0, err
	}
	defer ip.release(r)
	if ip.kind(r) != KInt {
		return 0, fmt.Errorf("psint: typecheck: expected integer, got %s", ip.kind(r))
	}
	return ip.intVal(r), nil
}

func (ip *Interp) popBool() (bool, error) {
	r, err := ip.pop()
	if err != nil {
		return false, err
	}
	defer ip.release(r)
	if ip.kind(r) != KBool {
		return false, fmt.Errorf("psint: typecheck: expected boolean, got %s", ip.kind(r))
	}
	return ip.boolVal(r), nil
}

func (ip *Interp) popKind(k Kind) (mheap.Ref, error) {
	r, err := ip.pop()
	if err != nil {
		return mheap.Nil, err
	}
	if got := ip.kind(r); got != k {
		ip.release(r)
		return mheap.Nil, fmt.Errorf("psint: typecheck: expected %s, got %s", k, got)
	}
	return r, nil
}

func (ip *Interp) clearStack() {
	for _, r := range ip.stack {
		ip.release(r)
	}
	ip.stack = ip.stack[:0]
}

// Depth returns the operand-stack depth.
func (ip *Interp) Depth() int { return len(ip.stack) }

// lookup resolves a name through the dict stack (top first), then the
// builtin table. The returned ref is borrowed (not retained).
func (ip *Interp) lookup(name string) (mheap.Ref, bool) {
	for i := len(ip.dictStack) - 1; i >= 0; i-- {
		if v, ok := ip.dictOf(ip.dictStack[i]).Get(name); ok {
			return v, true
		}
	}
	return mheap.Nil, false
}

// Run executes a program.
func (ip *Interp) Run(src string) error {
	toks, err := scan(src)
	if err != nil {
		return err
	}
	return ip.execTokens(toks)
}

func (ip *Interp) execTokens(toks []token) error {
	for i := 0; i < len(toks); i++ {
		if ip.exitFlag {
			return nil
		}
		if err := ip.execToken(toks[i]); err != nil {
			return err
		}
	}
	return nil
}

// buildProc materializes a procedure body as an executable array whose
// elements are fresh objects; nested procedures recurse.
func (ip *Interp) buildProc(body []token) (mheap.Ref, error) {
	arr := ip.newArray(len(body), true)
	for i, t := range body {
		el, err := ip.tokenObject(t)
		if err != nil {
			ip.release(arr)
			return mheap.Nil, err
		}
		ip.arraySet(arr, i, el)
	}
	return arr, nil
}

// tokenObject allocates the object a token denotes (procedures
// included); array-syntax tokens are invalid here.
func (ip *Interp) tokenObject(t token) (mheap.Ref, error) {
	switch t.kind {
	case tNumber:
		if t.isIn {
			return ip.newInt(int64(t.num)), nil
		}
		return ip.newReal(t.num), nil
	case tString:
		return ip.newStringObj(t.str), nil
	case tLitName:
		return ip.newName(t.str, true), nil
	case tName:
		return ip.newName(t.str, false), nil
	case tProc:
		return ip.buildProc(t.proc)
	default:
		return mheap.Nil, fmt.Errorf("psint: cannot build object from array syntax")
	}
}

func (ip *Interp) execToken(t token) error {
	ip.OpCount++
	ip.heap.Tick(8) // nominal instruction cost per token
	switch t.kind {
	case tNumber, tString, tLitName:
		obj, err := ip.tokenObject(t)
		if err != nil {
			return err
		}
		ip.push(obj)
		return nil
	case tProc:
		obj, err := ip.buildProc(t.proc)
		if err != nil {
			return err
		}
		ip.push(obj)
		return nil
	case tArrayOpen:
		ip.push(ip.newMark())
		return nil
	case tArrayClose:
		return ip.buildArrayFromMark()
	case tName:
		return ip.execName(t.str)
	default:
		return fmt.Errorf("psint: unknown token kind %d", t.kind)
	}
}

func (ip *Interp) buildArrayFromMark() error {
	// Find the mark.
	m := -1
	for i := len(ip.stack) - 1; i >= 0; i-- {
		if ip.kind(ip.stack[i]) == KMark {
			m = i
			break
		}
	}
	if m < 0 {
		return fmt.Errorf("psint: unmatchedmark")
	}
	n := len(ip.stack) - m - 1
	arr := ip.newArray(n, false)
	for i := 0; i < n; i++ {
		ip.arraySet(arr, i, ip.stack[m+1+i]) // ownership moves into the array
	}
	ip.release(ip.stack[m]) // the mark
	ip.stack = ip.stack[:m]
	ip.push(arr)
	return nil
}

func (ip *Interp) execName(name string) error {
	if v, ok := ip.lookup(name); ok {
		if ip.kind(v) == KArray && ip.flags(v)&flagExec != 0 {
			return ip.execProcArray(v)
		}
		ip.push(ip.retain(v))
		return nil
	}
	if op, ok := ip.ops[name]; ok {
		return op(ip)
	}
	return fmt.Errorf("psint: undefined: %s", name)
}

// execProcArray runs an executable array element by element.
func (ip *Interp) execProcArray(proc mheap.Ref) error {
	ip.procDepth++
	if ip.procDepth > 500 {
		ip.procDepth--
		return fmt.Errorf("psint: execstackoverflow")
	}
	defer func() { ip.procDepth-- }()
	// Hold the procedure alive across its own execution (it may
	// redefine itself).
	ip.retain(proc)
	defer ip.release(proc)
	for i, n := 0, ip.arrayLen(proc); i < n; i++ {
		if ip.exitFlag {
			break
		}
		ip.OpCount++
		ip.heap.Tick(8)
		el := ip.arrayAt(proc, i)
		switch ip.kind(el) {
		case KName:
			if err := ip.execName(ip.nameVal(el)); err != nil {
				return err
			}
		case KArray:
			// A nested procedure pushes itself (deferred execution).
			ip.push(ip.retain(el))
		default:
			ip.push(ip.retain(el))
		}
	}
	return nil
}

// execValue executes an arbitrary object: procedures run, everything
// else pushes. Consumes the caller's reference.
func (ip *Interp) execValue(v mheap.Ref) error {
	if ip.kind(v) == KArray && ip.flags(v)&flagExec != 0 {
		err := ip.execProcArray(v)
		ip.release(v)
		return err
	}
	if ip.kind(v) == KName {
		name := ip.nameVal(v)
		ip.release(v)
		return ip.execName(name)
	}
	ip.push(v)
	return nil
}

func (ip *Interp) freePath() {
	for _, s := range ip.path {
		ip.heap.Free(s)
	}
	ip.path = ip.path[:0]
	ip.hasPoint = false
}

func (ip *Interp) freeDisplay() {
	for _, s := range ip.display {
		ip.heap.Free(s)
	}
	ip.display = ip.display[:0]
}
