package psint

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/mheap"
)

// FuzzRun: arbitrary program text must never panic the interpreter or
// corrupt the heap — errors are the only acceptable failure mode.
// OpCount bounds keep pathological loops from hanging the fuzzer.
func FuzzRun(f *testing.F) {
	f.Add("1 2 add")
	f.Add("{ dup mul } 5 exch exec")
	f.Add("[1 2 3] { 1 add } forall")
	f.Add("/f { f } def f") // recursion -> execstackoverflow
	f.Add("((nested) strings) length")
	f.Add("} { [ ] ) (")
	f.Add("newpath 0 0 moveto 10 10 lineto stroke showpage")
	f.Add("%!PS\n/x 1 def x x add =")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		h := mheap.New()
		ip := New(h)
		_ = ip.Run(src) // errors are fine; panics are not
		ip.Close()
		if err := h.CheckIntegrity(); err != nil {
			t.Fatalf("heap corrupted by %q: %v", src, err)
		}
		if h.NumObjects() != 0 {
			t.Fatalf("program %q leaked %d objects", src, h.NumObjects())
		}
	})
}
