package psint

import (
	"math"
	"testing"

	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
)

func TestArcBuildsPath(t *testing.T) {
	ip, h := runProgram(t, "newpath 100 100 50 0 360 arc closepath")
	if len(ip.path) < 5 { // move + 4 quarter curves + close
		t.Fatalf("arc produced only %d segments", len(ip.path))
	}
	// The current point returns to the start of a full circle: (150, 100).
	if math.Abs(ip.curX-150) > 1e-6 || math.Abs(ip.curY-100) > 1e-6 {
		t.Fatalf("arc endpoint (%v, %v), want (150, 100)", ip.curX, ip.curY)
	}
	_ = h
	ip.Close()
}

func TestArcPartialAndClockwise(t *testing.T) {
	ip, _ := runProgram(t, "newpath 0 0 10 0 90 arc currentpoint")
	y := topNum(t, ip)
	x := topNum(t, ip)
	if math.Abs(x-0) > 1e-6 || math.Abs(y-10) > 1e-6 {
		t.Fatalf("90-degree arc ends at (%v, %v), want (0, 10)", x, y)
	}
	ip.Close()
	ip2, _ := runProgram(t, "newpath 0 0 10 90 0 arcn currentpoint")
	y2 := topNum(t, ip2)
	x2 := topNum(t, ip2)
	if math.Abs(x2-10) > 1e-6 || math.Abs(y2) > 1e-6 {
		t.Fatalf("arcn ends at (%v, %v), want (10, 0)", x2, y2)
	}
	ip2.Close()
}

func TestArcNegativeRadiusErrors(t *testing.T) {
	h := mheap.New()
	ip := New(h)
	if err := ip.Run("newpath 0 0 -5 0 90 arc"); err == nil {
		t.Fatal("negative radius accepted")
	}
	ip.Close()
}

func TestArcContinuesFromCurrentPoint(t *testing.T) {
	// With a current point, arc first draws a line to the arc start.
	ip, _ := runProgram(t, "newpath 0 0 moveto 100 0 10 0 90 arc")
	if ip.segOp(ip.path[1]) != segLine {
		t.Fatalf("expected line-to before arc, got op %d", ip.segOp(ip.path[1]))
	}
	ip.Close()
}

func TestSaveRestore(t *testing.T) {
	ip2, _ := runProgram(t, "save restore")
	if ip2.Depth() != 0 {
		t.Fatalf("save/restore left %d items", ip2.Depth())
	}
	ip2.Close()
	// restore of a non-token errors.
	h3 := mheap.New()
	ip3 := New(h3)
	if err := ip3.Run("42 restore"); err == nil {
		t.Fatal("restore of integer accepted")
	}
	ip3.Close()
}

func TestTypeOperator(t *testing.T) {
	cases := map[string]string{
		"42 type":     "integertype",
		"4.5 type":    "realtype",
		"true type":   "booleantype",
		"(s) type":    "stringtype",
		"[1] type":    "arraytype",
		"1 dict type": "dicttype",
		"/n type":     "nametype",
		"mark type":   "marktype",
		"save type":   "nulltype",
	}
	for src, want := range cases {
		ip, _ := runProgram(t, src)
		r, err := ip.pop()
		if err != nil {
			t.Fatal(err)
		}
		if got := ip.nameVal(r); got != want {
			t.Errorf("%q = %s, want %s", src, got, want)
		}
		ip.release(r)
		ip.Close()
	}
}

func TestCvsAndCvn(t *testing.T) {
	ip, _ := runProgram(t, "42 5 string cvs")
	r, _ := ip.pop()
	if ip.stringVal(r) != "42" {
		t.Fatalf("cvs = %q", ip.stringVal(r))
	}
	ip.release(r)
	ip.Close()

	ip2, _ := runProgram(t, "(myname) cvn type")
	r2, _ := ip2.pop()
	if ip2.nameVal(r2) != "nametype" {
		t.Fatal("cvn did not produce a name")
	}
	ip2.release(r2)
	ip2.Close()

	ip3, _ := runProgram(t, "true 8 string cvs length")
	if got := topInt(t, ip3); got != 4 {
		t.Fatalf("cvs(true) length = %d", got)
	}
	ip3.Close()
}

func TestWhereOperator(t *testing.T) {
	ip, _ := runProgram(t, "/x 1 def /x where")
	found, _ := ip.pop()
	if !ip.boolVal(found) {
		t.Fatal("where missed a defined name")
	}
	ip.release(found)
	d, _ := ip.pop()
	if ip.kind(d) != KDict {
		t.Fatal("where did not push the dict")
	}
	ip.release(d)
	ip.Close()

	ip2, _ := runProgram(t, "/nosuch where")
	found2, _ := ip2.pop()
	if ip2.boolVal(found2) {
		t.Fatal("where found an undefined name")
	}
	ip2.release(found2)
	if ip2.Depth() != 0 {
		t.Fatal("where false left extra operands")
	}
	ip2.Close()
}

func TestTrigOperators(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"90 sin", 1},
		{"0 cos", 1},
		{"180 cos", -1},
		{"1 1 atan", 45},
		{"2 8 exp", 256}, // base 2, exponent 8
	}
	for _, c := range cases {
		ip, _ := runProgram(t, c.src)
		if got := topNum(t, ip); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
		ip.Close()
	}
}

func TestLnErrors(t *testing.T) {
	h := mheap.New()
	ip := New(h)
	if err := ip.Run("0 ln"); err == nil {
		t.Fatal("ln(0) accepted")
	}
	ip.Close()
}

func TestEqualsFoldsIntoChecksum(t *testing.T) {
	ip, _ := runProgram(t, "42 = (str) ==")
	if ip.Depth() != 0 {
		t.Fatalf("= left %d operands", ip.Depth())
	}
	if ip.Checksum != 43 { // 42 + 1 for the non-numeric
		t.Fatalf("checksum = %v", ip.Checksum)
	}
	ip.Close()
}

func TestGenerateDrawingRuns(t *testing.T) {
	res, err := RunDocument(GenerateDrawing(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 3 {
		t.Fatalf("pages = %d", res.Pages)
	}
	if err := trace.Validate(res.Events); err != nil {
		t.Fatal(err)
	}
	s, _ := trace.Measure(res.Events)
	if s.Allocs != s.Frees {
		t.Fatalf("drawing leaked: %d allocs, %d frees", s.Allocs, s.Frees)
	}
	if s.Allocs < 2000 {
		t.Fatalf("only %d allocs", s.Allocs)
	}
}

func TestGenerateDrawingDeterministic(t *testing.T) {
	if GenerateDrawing(2, 5) != GenerateDrawing(2, 5) {
		t.Fatal("drawing generator not deterministic")
	}
	a, err := RunDocument(GenerateDrawing(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDocument(GenerateDrawing(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatal("drawing interpretation not deterministic")
	}
}
