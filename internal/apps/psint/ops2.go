package psint

// Additional operators: arcs, VM save/restore, type inspection and
// conversions — the parts of the PostScript machine a drawing-heavy
// document exercises.

import (
	"fmt"
	"math"
	"strconv"

	"github.com/dtbgc/dtbgc/internal/mheap"
)

// builtinOps2 adds the extended operator set to a table.
func builtinOps2(ops map[string]func(*Interp) error) {
	// --- arcs ---
	// x y r a1 a2 arc: append a counterclockwise arc as cubic curves.
	ops["arc"] = func(ip *Interp) error { return ip.arcOp(false) }
	ops["arcn"] = func(ip *Interp) error { return ip.arcOp(true) }

	// --- VM save/restore (simplified: a checkpoint token whose
	// restore frees it; the real rollback semantics are out of scope
	// but the allocation pattern — GhostScript's per-page save — is
	// what the traces need) ---
	ops["save"] = func(ip *Interp) error {
		tok := ip.newObject(KNull, mheap.Nil, 0, 0)
		ip.push(tok)
		return nil
	}
	ops["restore"] = func(ip *Interp) error {
		tok, err := ip.pop()
		if err != nil {
			return err
		}
		if ip.kind(tok) != KNull {
			ip.release(tok)
			return fmt.Errorf("psint: typecheck: restore needs a save token")
		}
		ip.release(tok)
		return nil
	}

	// --- type inspection & conversion ---
	ops["type"] = func(ip *Interp) error {
		r, err := ip.pop()
		if err != nil {
			return err
		}
		var name string
		switch ip.kind(r) {
		case KInt:
			name = "integertype"
		case KReal:
			name = "realtype"
		case KBool:
			name = "booleantype"
		case KString:
			name = "stringtype"
		case KArray:
			name = "arraytype"
		case KDict:
			name = "dicttype"
		case KName, KLitName:
			name = "nametype"
		case KMark:
			name = "marktype"
		default:
			name = "nulltype"
		}
		ip.release(r)
		ip.push(ip.newName(name, true))
		return nil
	}
	ops["cvn"] = func(ip *Interp) error {
		s, err := ip.popKind(KString)
		if err != nil {
			return err
		}
		name := ip.stringVal(s)
		ip.release(s)
		ip.push(ip.newName(name, true))
		return nil
	}
	ops["cvs"] = func(ip *Interp) error {
		// any string cvs -> string form of any (the buffer string is
		// consumed and a fresh result pushed; real PostScript writes
		// in place, but the allocation behaviour is equivalent).
		buf, err := ip.popKind(KString)
		if err != nil {
			return err
		}
		ip.release(buf)
		v, err := ip.pop()
		if err != nil {
			return err
		}
		var s string
		switch ip.kind(v) {
		case KInt:
			s = strconv.FormatInt(ip.intVal(v), 10)
		case KReal:
			s = strconv.FormatFloat(ip.realVal(v), 'g', 6, 64)
		case KBool:
			s = strconv.FormatBool(ip.boolVal(v))
		case KString:
			s = ip.stringVal(v)
		case KName, KLitName:
			s = ip.nameVal(v)
		default:
			s = "--nostringval--"
		}
		ip.release(v)
		ip.push(ip.newStringObj(s))
		return nil
	}

	// --- dictionary lookup predicates ---
	ops["where"] = func(ip *Interp) error {
		key, err := ip.popKind(KLitName)
		if err != nil {
			return err
		}
		name := ip.nameVal(key)
		ip.release(key)
		for i := len(ip.dictStack) - 1; i >= 0; i-- {
			d := ip.dictStack[i]
			if _, ok := ip.dictOf(d).Get(name); ok {
				ip.push(ip.retain(d))
				ip.push(ip.newBool(true))
				return nil
			}
		}
		ip.push(ip.newBool(false))
		return nil
	}

	// --- output (NODISPLAY: folded into the checksum) ---
	discard := func(ip *Interp) error {
		r, err := ip.pop()
		if err != nil {
			return err
		}
		if v, err := ip.numVal(r); err == nil {
			ip.Checksum += v
		} else {
			ip.Checksum++
		}
		ip.release(r)
		return nil
	}
	ops["="] = discard
	ops["=="] = discard

	// --- misc numerics the documents use ---
	ops["sin"] = func(ip *Interp) error { return ip.trigOp(math.Sin) }
	ops["cos"] = func(ip *Interp) error { return ip.trigOp(math.Cos) }
	ops["atan"] = func(ip *Interp) error {
		den, err := ip.popNum()
		if err != nil {
			return err
		}
		num, err := ip.popNum()
		if err != nil {
			return err
		}
		deg := math.Atan2(num, den) * 180 / math.Pi
		if deg < 0 {
			deg += 360
		}
		ip.push(ip.newReal(deg))
		return nil
	}
	ops["exp"] = func(ip *Interp) error {
		e, err := ip.popNum()
		if err != nil {
			return err
		}
		b, err := ip.popNum()
		if err != nil {
			return err
		}
		ip.push(ip.newReal(math.Pow(b, e)))
		return nil
	}
	ops["ln"] = func(ip *Interp) error {
		v, err := ip.popNum()
		if err != nil {
			return err
		}
		if v <= 0 {
			return fmt.Errorf("psint: rangecheck: ln of non-positive")
		}
		ip.push(ip.newReal(math.Log(v)))
		return nil
	}
}

func (ip *Interp) trigOp(f func(float64) float64) error {
	deg, err := ip.popNum()
	if err != nil {
		return err
	}
	ip.push(ip.newReal(f(deg * math.Pi / 180)))
	return nil
}

// arcOp implements arc/arcn: the arc is approximated by cubic Bézier
// segments of at most 90 degrees, the standard interpreter technique.
func (ip *Interp) arcOp(clockwise bool) error {
	a2, err := ip.popNum()
	if err != nil {
		return err
	}
	a1, err := ip.popNum()
	if err != nil {
		return err
	}
	radius, err := ip.popNum()
	if err != nil {
		return err
	}
	cy, err := ip.popNum()
	if err != nil {
		return err
	}
	cx, err := ip.popNum()
	if err != nil {
		return err
	}
	if radius < 0 {
		return fmt.Errorf("psint: rangecheck: negative arc radius")
	}
	if clockwise {
		for a2 > a1 {
			a2 -= 360
		}
	} else {
		for a2 < a1 {
			a2 += 360
		}
	}
	point := func(deg float64) (float64, float64) {
		rad := deg * math.Pi / 180
		return ip.transform(cx+radius*math.Cos(rad), cy+radius*math.Sin(rad))
	}
	sx, sy := point(a1)
	if ip.hasPoint {
		ip.path = append(ip.path, ip.newSegment(segLine, sx, sy))
	} else {
		ip.path = append(ip.path, ip.newSegment(segMove, sx, sy))
	}
	ip.curX, ip.curY, ip.hasPoint = sx, sy, true

	remaining := a2 - a1
	step := 90.0
	if clockwise {
		step = -90.0
	}
	for math.Abs(remaining) > 1e-9 {
		seg := step
		if math.Abs(remaining) < math.Abs(step) {
			seg = remaining
		}
		b1 := a1 + seg
		// Bézier control-point distance for a circular arc segment.
		theta := seg * math.Pi / 180
		k := 4.0 / 3.0 * math.Tan(theta/4) * radius
		r1 := a1 * math.Pi / 180
		r2 := b1 * math.Pi / 180
		c1x, c1y := ip.transform(cx+radius*math.Cos(r1)-k*math.Sin(r1), cy+radius*math.Sin(r1)+k*math.Cos(r1))
		c2x, c2y := ip.transform(cx+radius*math.Cos(r2)+k*math.Sin(r2), cy+radius*math.Sin(r2)-k*math.Cos(r2))
		ex, ey := point(b1)
		ip.path = append(ip.path, ip.newSegment(segCurve, c1x, c1y, c2x, c2y, ex, ey))
		ip.curX, ip.curY = ex, ey
		a1 = b1
		remaining = a2 - a1
	}
	return nil
}
