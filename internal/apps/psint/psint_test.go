package psint

import (
	"math"
	"strings"
	"testing"

	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
)

// runProgram executes src on a fresh interpreter and returns it plus
// its heap; callers inspect the stack before Close.
func runProgram(t *testing.T, src string) (*Interp, *mheap.Heap) {
	t.Helper()
	h := mheap.New()
	ip := New(h)
	if err := ip.Run(src); err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return ip, h
}

// topInt pops and checks the top-of-stack integer.
func topInt(t *testing.T, ip *Interp) int64 {
	t.Helper()
	r, err := ip.pop()
	if err != nil {
		t.Fatal(err)
	}
	defer ip.release(r)
	if ip.kind(r) != KInt {
		t.Fatalf("top of stack is %s, want integer", ip.kind(r))
	}
	return ip.intVal(r)
}

func topNum(t *testing.T, ip *Interp) float64 {
	t.Helper()
	r, err := ip.pop()
	if err != nil {
		t.Fatal(err)
	}
	defer ip.release(r)
	v, err := ip.numVal(r)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"3 4 add", 7},
		{"10 4 sub", 6},
		{"6 7 mul", 42},
		{"17 5 idiv", 3},
		{"17 5 mod", 2},
		{"5 neg", -5},
		{"9 sqrt round", 3},
		{"3.7 truncate", 3},
		{"2 3 add 4 mul", 20},
	}
	for _, c := range cases {
		ip, _ := runProgram(t, c.src)
		if got := topInt(t, ip); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
		if ip.Depth() != 0 {
			t.Errorf("%q left %d extra items", c.src, ip.Depth())
		}
		ip.Close()
	}
}

func TestRealArithmetic(t *testing.T) {
	ip, _ := runProgram(t, "1 3 div")
	if got := topNum(t, ip); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("1 3 div = %v", got)
	}
	ip.Close()
}

func TestDivisionByZeroErrors(t *testing.T) {
	for _, src := range []string{"1 0 div", "1 0 idiv", "1 0 mod"} {
		h := mheap.New()
		ip := New(h)
		if err := ip.Run(src); err == nil {
			t.Errorf("%q did not error", src)
		}
		ip.Close()
	}
}

func TestStackOps(t *testing.T) {
	cases := []struct {
		src  string
		want []int64 // expected stack bottom-to-top
	}{
		{"1 2 3 pop", []int64{1, 2}},
		{"1 2 exch", []int64{2, 1}},
		{"5 dup", []int64{5, 5}},
		{"1 2 3 2 index", []int64{1, 2, 3, 1}},
		{"1 2 3 3 1 roll", []int64{3, 1, 2}},
		{"1 2 3 3 -1 roll", []int64{2, 3, 1}},
		{"1 2 2 copy", []int64{1, 2, 1, 2}},
		{"1 2 3 clear count", []int64{0}},
		{"mark 7 8 9 counttomark exch pop exch pop exch pop exch pop", []int64{3}},
	}
	for _, c := range cases {
		ip, _ := runProgram(t, c.src)
		if ip.Depth() != len(c.want) {
			t.Fatalf("%q: depth %d, want %d", c.src, ip.Depth(), len(c.want))
		}
		for i := len(c.want) - 1; i >= 0; i-- {
			if got := topInt(t, ip); got != c.want[i] {
				t.Fatalf("%q: stack[%d] = %d, want %d", c.src, i, got, c.want[i])
			}
		}
		ip.Close()
	}
}

func TestComparisonsAndBooleans(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"1 2 lt", true}, {"2 1 lt", false}, {"2 2 le", true},
		{"3 3 eq", true}, {"3 4 ne", true},
		{"(abc) (abd) lt", true}, {"(b) (a) gt", true},
		{"true false and", false}, {"true false or", true},
		{"true false xor", true}, {"true not", false},
		{"1 1.0 eq", true},
	}
	for _, c := range cases {
		ip, _ := runProgram(t, c.src)
		r, err := ip.pop()
		if err != nil {
			t.Fatal(err)
		}
		if ip.kind(r) != KBool || ip.boolVal(r) != c.want {
			t.Errorf("%q = %v (%s), want %v", c.src, ip.boolVal(r), ip.kind(r), c.want)
		}
		ip.release(r)
		ip.Close()
	}
}

func TestDefAndLookup(t *testing.T) {
	ip, _ := runProgram(t, "/x 42 def /y x 8 add def y")
	if got := topInt(t, ip); got != 50 {
		t.Fatalf("y = %d", got)
	}
	ip.Close()
}

func TestProcedures(t *testing.T) {
	ip, _ := runProgram(t, "/double { 2 mul } def /quad { double double } def 5 quad")
	if got := topInt(t, ip); got != 20 {
		t.Fatalf("quad = %d", got)
	}
	ip.Close()
}

func TestIfIfelse(t *testing.T) {
	ip, _ := runProgram(t, "3 4 lt { 100 } { 200 } ifelse")
	if got := topInt(t, ip); got != 100 {
		t.Fatalf("ifelse = %d", got)
	}
	ip.Close()
	ip2, _ := runProgram(t, "1 5 4 lt { pop 99 } if")
	if got := topInt(t, ip2); got != 1 {
		t.Fatalf("if = %d", got)
	}
	ip2.Close()
}

func TestLoops(t *testing.T) {
	// Sum 1..100 with for.
	ip, _ := runProgram(t, "/s 0 def 1 1 100 { /s exch s add def } for s")
	if got := topInt(t, ip); got != 5050 {
		t.Fatalf("for sum = %d", got)
	}
	ip.Close()
	// repeat.
	ip2, _ := runProgram(t, "0 10 { 1 add } repeat")
	if got := topInt(t, ip2); got != 10 {
		t.Fatalf("repeat = %d", got)
	}
	ip2.Close()
	// loop with exit.
	ip3, _ := runProgram(t, "/n 0 def { /n n 1 add def n 7 ge { exit } if } loop n")
	if got := topInt(t, ip3); got != 7 {
		t.Fatalf("loop/exit = %d", got)
	}
	ip3.Close()
}

func TestNestedLoopExitOnlyBreaksInner(t *testing.T) {
	src := `/total 0 def
	1 1 3 { pop
	  /i 0 def
	  { /i i 1 add def /total total 1 add def i 2 ge { exit } if } loop
	} for total`
	ip, _ := runProgram(t, src)
	if got := topInt(t, ip); got != 6 {
		t.Fatalf("nested exit total = %d, want 6", got)
	}
	ip.Close()
}

func TestArrays(t *testing.T) {
	ip, _ := runProgram(t, "[1 2 3 4] length")
	if got := topInt(t, ip); got != 4 {
		t.Fatalf("length = %d", got)
	}
	ip.Close()
	ip2, _ := runProgram(t, "[10 20 30] 1 get")
	if got := topInt(t, ip2); got != 20 {
		t.Fatalf("get = %d", got)
	}
	ip2.Close()
	ip3, _ := runProgram(t, "/a 3 array def a 2 99 put a 2 get")
	if got := topInt(t, ip3); got != 99 {
		t.Fatalf("put/get = %d", got)
	}
	ip3.Close()
	// aload / astore round trip.
	ip4, _ := runProgram(t, "[1 2 3] aload pop add add")
	if got := topInt(t, ip4); got != 6 {
		t.Fatalf("aload sum = %d", got)
	}
	ip4.Close()
	// forall.
	ip5, _ := runProgram(t, "/s 0 def [5 6 7] { /s exch s add def } forall s")
	if got := topInt(t, ip5); got != 18 {
		t.Fatalf("forall sum = %d", got)
	}
	ip5.Close()
}

func TestDictionaries(t *testing.T) {
	src := `5 dict begin /k 11 def /m 31 def k m add end`
	ip, _ := runProgram(t, src)
	if got := topInt(t, ip); got != 42 {
		t.Fatalf("dict = %d", got)
	}
	ip.Close()
	ip2, _ := runProgram(t, "/d 4 dict def d /key 7 put d /key get")
	if got := topInt(t, ip2); got != 7 {
		t.Fatalf("dict put/get = %d", got)
	}
	ip2.Close()
	ip3, _ := runProgram(t, "/d 4 dict def d /a 1 put d /a known d /b known")
	r2, _ := ip3.pop()
	r1, _ := ip3.pop()
	if !ip3.boolVal(r1) || ip3.boolVal(r2) {
		t.Fatal("known wrong")
	}
	ip3.release(r1)
	ip3.release(r2)
	ip3.Close()
}

func TestGraphicsAndText(t *testing.T) {
	src := `
	/Times-Roman findfont 12 scalefont setfont
	newpath 72 700 moveto 200 700 lineto stroke
	72 650 moveto (hello world) show
	gsave 2 2 scale 10 10 moveto 20 20 lineto stroke grestore
	showpage`
	ip, _ := runProgram(t, src)
	if ip.Pages != 1 {
		t.Fatalf("pages = %d", ip.Pages)
	}
	if ip.Checksum == 0 {
		t.Fatal("no rendering work recorded")
	}
	ip.Close()
}

func TestCurrentPointAndRelative(t *testing.T) {
	ip, _ := runProgram(t, "newpath 10 20 moveto 5 7 rlineto currentpoint")
	y := topNum(t, ip)
	x := topNum(t, ip)
	if x != 15 || y != 27 {
		t.Fatalf("currentpoint = (%v, %v)", x, y)
	}
	ip.Close()
}

func TestTransformsApplyToPath(t *testing.T) {
	ip, _ := runProgram(t, "2 3 scale newpath 10 10 moveto currentpoint")
	y := topNum(t, ip)
	x := topNum(t, ip)
	if x != 20 || y != 30 {
		t.Fatalf("scaled point = (%v, %v)", x, y)
	}
	ip.Close()
	ip2, _ := runProgram(t, "5 7 translate newpath 1 1 moveto currentpoint")
	y2 := topNum(t, ip2)
	x2 := topNum(t, ip2)
	if x2 != 6 || y2 != 8 {
		t.Fatalf("translated point = (%v, %v)", x2, y2)
	}
	ip2.Close()
}

func TestErrors(t *testing.T) {
	cases := []string{
		"pop",            // stackunderflow
		"frobnicate",     // undefined
		"1 2 if",         // typecheck
		"[1 2 3] 9 get",  // rangecheck
		"(abc) 2 moveto", // typecheck via popNum
		"end",            // dictstackunderflow
		"show",           // stackunderflow
		"{ 1 } {",        // scanner unbalanced — Run error
	}
	for _, src := range cases {
		h := mheap.New()
		ip := New(h)
		if err := ip.Run(src); err == nil {
			t.Errorf("%q did not error", src)
		}
		ip.Close()
	}
}

func TestStringEscapes(t *testing.T) {
	ip, _ := runProgram(t, `(a\(b\)c) length`)
	if got := topInt(t, ip); got != 5 {
		t.Fatalf("escaped string length = %d", got)
	}
	ip.Close()
}

func TestCommentsIgnored(t *testing.T) {
	ip, _ := runProgram(t, "1 % this is a comment 2 3\n4 add")
	if got := topInt(t, ip); got != 5 {
		t.Fatalf("= %d", got)
	}
	ip.Close()
}

func TestNoLeaksAfterClose(t *testing.T) {
	// The reference-counted interpreter must return the heap to empty:
	// every temporary, dict, path segment and font freed.
	srcs := []string{
		"1 2 add pop",
		"/f { dup mul } def 5 f pop",
		"[1 [2 3] (s)] pop",
		"/d 8 dict def d /x [1 2 3] put",
		"newpath 0 0 moveto 10 10 lineto stroke showpage",
		"/Times-Roman findfont 10 scalefont setfont 0 0 moveto (txt) show showpage",
		GenerateDocument(2, 7),
	}
	for i, src := range srcs {
		h := mheap.New()
		ip := New(h)
		if err := ip.Run(src); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		ip.Close()
		if h.NumObjects() != 0 {
			t.Errorf("case %d: %d objects leaked", i, h.NumObjects())
		}
		if err := h.CheckIntegrity(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestGenerateDocumentDeterministic(t *testing.T) {
	a := GenerateDocument(3, 42)
	b := GenerateDocument(3, 42)
	if a != b {
		t.Fatal("document generation not deterministic")
	}
	c := GenerateDocument(3, 43)
	if a == c {
		t.Fatal("different seeds gave identical documents")
	}
}

func TestRunDocumentProducesValidTrace(t *testing.T) {
	res, err := RunDocument(GenerateDocument(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 3 {
		t.Fatalf("pages = %d", res.Pages)
	}
	if err := trace.Validate(res.Events); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	s, err := trace.Measure(res.Events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Allocs < 1000 {
		t.Fatalf("only %d allocations; interpreter should churn", s.Allocs)
	}
	if s.Frees != s.Allocs {
		t.Fatalf("allocs %d != frees %d: refcounting leaked", s.Allocs, s.Frees)
	}
	if s.MaxLive == 0 {
		t.Fatal("no live bytes recorded")
	}
}

func TestRunDocumentDeterministicChecksum(t *testing.T) {
	a, err := RunDocument(GenerateDocument(2, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDocument(GenerateDocument(2, 9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum || a.OpCount != b.OpCount {
		t.Fatal("interpretation not deterministic")
	}
	if a.Checksum == 0 || a.OpCount == 0 {
		t.Fatal("empty interpretation")
	}
}

func TestDocumentPhasesVisibleInTrace(t *testing.T) {
	// Page data dies at showpage: the live-byte curve must sawtooth.
	res, err := RunDocument(GenerateDocument(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	var live, maxLive, minAfterPeak uint64
	sizes := map[trace.ObjectID]uint64{}
	minAfterPeak = ^uint64(0)
	for _, e := range res.Events {
		switch e.Kind {
		case trace.KindAlloc:
			sizes[e.ID] = e.Size
			live += e.Size
			if live > maxLive {
				maxLive = live
			}
		case trace.KindFree:
			live -= sizes[e.ID]
			if maxLive > 0 && live < minAfterPeak {
				minAfterPeak = live
			}
		}
	}
	if maxLive < 4*minAfterPeak {
		t.Fatalf("no page sawtooth: max live %d vs trough %d", maxLive, minAfterPeak)
	}
}

func TestScannerNestedProcs(t *testing.T) {
	toks, err := scan("{ 1 { 2 } 3 }")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].kind != tProc {
		t.Fatalf("tokens: %+v", toks)
	}
	body := toks[0].proc
	if len(body) != 3 || body[1].kind != tProc {
		t.Fatalf("body: %+v", body)
	}
}

func TestExecStackOverflowCaught(t *testing.T) {
	h := mheap.New()
	ip := New(h)
	err := ip.Run("/f { f } def f")
	if err == nil || !strings.Contains(err.Error(), "execstackoverflow") {
		t.Fatalf("infinite recursion: %v", err)
	}
	ip.Close()
}

func BenchmarkInterpretPage(b *testing.B) {
	doc := GenerateDocument(1, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := mheap.New()
		ip := New(h)
		if err := ip.Run(doc); err != nil {
			b.Fatal(err)
		}
		ip.Close()
	}
}
