package psint

import (
	"fmt"
	"strings"

	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/trace"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

// GenerateDocument produces a PostScript-subset document resembling
// the paper's GhostScript inputs (a reference manual / thesis run with
// NODISPLAY): pages of text lines with rules, boxes and the occasional
// figure, driven by loops and procedures so the interpreter's control
// operators get real exercise. Deterministic in (pages, seed).
func GenerateDocument(pages int, seed uint64) string {
	r := xrand.New(seed)
	var b strings.Builder
	b.WriteString("% synthetic manual, NODISPLAY interpretation\n")
	b.WriteString("/pt { 1 mul } def\n")
	b.WriteString("/line { moveto lineto stroke } def\n")
	b.WriteString("/rule { newpath 72 exch moveto 468 0 rlineto stroke } def\n")
	b.WriteString("/box { newpath moveto dup 0 rlineto 0 36 rlineto neg 0 rlineto closepath stroke } def\n")
	b.WriteString("/para { /y exch def 0 1 3 { /i exch def 72 y i 12 mul sub moveto body show } for } def\n")
	words := []string{"storage", "reclamation", "boundary", "threatened", "immune",
		"scavenge", "generation", "pointer", "barrier", "pause", "tenured", "garbage"}
	for p := 0; p < pages; p++ {
		b.WriteString("% page\n/Times-Roman findfont 10 scalefont setfont\n")
		fmt.Fprintf(&b, "720 rule\n")
		lines := 18 + r.Intn(10)
		for l := 0; l < lines; l++ {
			y := 700 - l*14
			var text strings.Builder
			for w := 0; w < 6+r.Intn(6); w++ {
				text.WriteString(words[r.Intn(len(words))])
				text.WriteByte(' ')
			}
			fmt.Fprintf(&b, "72 %d moveto (%s) show\n", y, strings.TrimSpace(text.String()))
		}
		// A boxed figure on some pages.
		if r.Bool(0.4) {
			fmt.Fprintf(&b, "%d %d %d box\n", 100+r.Intn(200), 100+r.Intn(100), 150+r.Intn(80))
		}
		// A computational flourish: build and sum a table with loops.
		fmt.Fprintf(&b, "/acc 0 def 1 1 %d { /acc exch acc add def } for\n", 20+r.Intn(20))
		b.WriteString("72 72 moveto gsave 0.5 setgray 36 rule grestore\nshowpage\n")
	}
	return b.String()
}

// GenerateDrawing produces a graphics-heavy document (the paper's
// GHOST(2) was a thesis full of figures): pie charts from arcs,
// function plots from trigonometry, and labelled axes, wrapped in the
// per-page save/restore discipline real drivers use.
func GenerateDrawing(pages int, seed uint64) string {
	r := xrand.New(seed)
	var b strings.Builder
	b.WriteString("% synthetic thesis figures\n")
	b.WriteString("/circle { /r exch def /cy exch def /cx exch def newpath cx cy r 0 360 arc closepath stroke } def\n")
	b.WriteString("/slice { /a2 exch def /a1 exch def newpath 306 400 moveto 306 400 120 a1 a2 arc closepath fill } def\n")
	for p := 0; p < pages; p++ {
		b.WriteString("save\n/Helvetica findfont 9 scalefont setfont\n")
		// A pie chart with a random number of slices.
		n := 3 + r.Intn(5)
		angle := 0
		for s := 0; s < n && angle < 360; s++ {
			next := angle + 20 + r.Intn((360-angle)/(n-s)+1)
			if next > 360 || s == n-1 {
				next = 360
			}
			fmt.Fprintf(&b, "%f setgray %d %d slice\n", float64(s)/float64(n), angle, next)
			angle = next
		}
		// Concentric circles.
		for c := 0; c < 2+r.Intn(4); c++ {
			fmt.Fprintf(&b, "%d %d %d circle\n", 150+r.Intn(50), 150+r.Intn(40), 20+c*12)
		}
		// A sine plot built with for + sin and curve labels via cvs.
		fmt.Fprintf(&b, "newpath 72 120 moveto 0 4 %d { /x exch def 72 x add 120 x %d add sin 40 mul add lineto } for stroke\n",
			200+r.Intn(160), r.Intn(90))
		b.WriteString("/lbl 12 string def 72 100 moveto 42 lbl cvs show\n")
		b.WriteString("restore showpage\n")
	}
	return b.String()
}

// Result reports an interpretation run.
type Result struct {
	Pages    int
	OpCount  int
	Checksum float64
	Events   []trace.Event
}

// RunDocument interprets a document on a fresh managed heap, recording
// the allocation trace. leakCheck (used by tests) additionally
// verifies the interpreter freed everything on Close.
func RunDocument(src string) (*Result, error) {
	h := mheap.New()
	var events []trace.Event
	h.SetRecorder(func(e trace.Event) { events = append(events, e) })
	ip := New(h)
	err := ip.Run(src)
	res := &Result{Pages: ip.Pages, OpCount: ip.OpCount, Checksum: ip.Checksum}
	ip.Close()
	res.Events = events
	if err != nil {
		return res, err
	}
	return res, nil
}
