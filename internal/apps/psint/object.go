// Package psint is the GhostScript stand-in: a PostScript-subset
// interpreter whose every object — numbers, names, strings, arrays,
// procedures, dictionaries, path segments — is allocated on the
// simulated byte-array heap. Storage is reclaimed with reference
// counts (malloc/free style, like the C interpreters the paper
// traced), so running a document produces a realistic allocation
// trace: fast churn from arithmetic temporaries, page-lifetime path
// data freed at showpage, and long-lived dictionaries and fonts.
package psint

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/dtbgc/dtbgc/internal/apps/mlib"
	"github.com/dtbgc/dtbgc/internal/mheap"
)

// Kind tags a PostScript object.
type Kind uint8

const (
	KNull Kind = iota
	KInt
	KReal
	KBool
	KName    // executable name
	KLitName // literal /name
	KString
	KArray // also procedures, with the executable flag set
	KDict
	KMark
)

func (k Kind) String() string {
	switch k {
	case KNull:
		return "null"
	case KInt:
		return "integer"
	case KReal:
		return "real"
	case KBool:
		return "boolean"
	case KName:
		return "name"
	case KLitName:
		return "literalname"
	case KString:
		return "string"
	case KArray:
		return "array"
	case KDict:
		return "dict"
	case KMark:
		return "mark"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Object layout on the heap:
//
//	slot 0: payload (string bytes object, array vector, dict table) or Nil
//	data:   [kind u8 | flags u8 | rc u16 | pad u32 | value u64]
//
// value holds the int64, float bits, bool, or array length.
const (
	objData  = 16
	offKind  = 0
	offFlags = 1
	offRC    = 2
	offValue = 8

	flagExec = 1 << 0 // array is a procedure
)

// Interp owns the heap and stacks; defined in interp.go.

func (ip *Interp) newObject(k Kind, payload mheap.Ref, value uint64, flags uint8) mheap.Ref {
	r := ip.alloc.Alloc(1, objData)
	h := ip.heap
	d := h.Data(r)
	d[offKind] = byte(k)
	d[offFlags] = flags
	binary.LittleEndian.PutUint16(d[offRC:], 1)
	binary.LittleEndian.PutUint64(d[offValue:], value)
	if payload != mheap.Nil {
		h.SetPtr(r, 0, payload)
	}
	return r
}

func (ip *Interp) kind(r mheap.Ref) Kind { return Kind(ip.heap.Data(r)[offKind]) }

func (ip *Interp) flags(r mheap.Ref) uint8 { return ip.heap.Data(r)[offFlags] }

func (ip *Interp) value(r mheap.Ref) uint64 {
	return binary.LittleEndian.Uint64(ip.heap.Data(r)[offValue:])
}

func (ip *Interp) rc(r mheap.Ref) int {
	return int(binary.LittleEndian.Uint16(ip.heap.Data(r)[offRC:]))
}

func (ip *Interp) setRC(r mheap.Ref, n int) {
	binary.LittleEndian.PutUint16(ip.heap.Data(r)[offRC:], uint16(n))
}

// retain bumps an object's reference count.
func (ip *Interp) retain(r mheap.Ref) mheap.Ref {
	if r != mheap.Nil {
		ip.setRC(r, ip.rc(r)+1)
	}
	return r
}

// release drops a reference, freeing the object (and, recursively, its
// payload) at zero.
func (ip *Interp) release(r mheap.Ref) {
	if r == mheap.Nil {
		return
	}
	n := ip.rc(r) - 1
	if n > 0 {
		ip.setRC(r, n)
		return
	}
	h := ip.heap
	payload := h.Ptr(r, 0)
	switch ip.kind(r) {
	case KString, KName, KLitName:
		if payload != mheap.Nil {
			h.SetPtr(r, 0, mheap.Nil)
			h.Free(payload)
		}
	case KArray:
		if payload != mheap.Nil {
			h.SetPtr(r, 0, mheap.Nil)
			for i, n := 0, mlib.VLen(h, payload); i < n; i++ {
				el := mlib.VAt(h, payload, i)
				if el != mheap.Nil {
					mlib.VSet(h, payload, i, mheap.Nil)
					ip.release(el)
				}
			}
			h.Free(payload)
		}
	case KDict:
		if payload != mheap.Nil {
			// Clear the slot before FreeAll tears the table down so
			// the object never holds a dangling reference.
			h.SetPtr(r, 0, mheap.Nil)
			idx := int(ip.value(r))
			if d := ip.dicts[idx]; d != nil {
				for _, v := range ip.dictValues(d) {
					ip.release(v)
				}
				d.FreeAll() // frees nodes, key strings and the table
				ip.dicts[idx] = nil
			}
		}
	}
	h.Free(r)
}

func (ip *Interp) dictValues(d *mlib.Dict) []mheap.Ref {
	var vals []mheap.Ref
	for _, k := range d.Keys() {
		if v, ok := d.Get(k); ok && v != mheap.Nil {
			vals = append(vals, v)
		}
	}
	return vals
}

// Constructors.

func (ip *Interp) newInt(v int64) mheap.Ref { return ip.newObject(KInt, mheap.Nil, uint64(v), 0) }

func (ip *Interp) newReal(v float64) mheap.Ref {
	return ip.newObject(KReal, mheap.Nil, math.Float64bits(v), 0)
}

func (ip *Interp) newBool(v bool) mheap.Ref {
	var b uint64
	if v {
		b = 1
	}
	return ip.newObject(KBool, mheap.Nil, b, 0)
}

func (ip *Interp) newName(s string, literal bool) mheap.Ref {
	k := KName
	if literal {
		k = KLitName
	}
	return ip.newObject(k, mlib.NewString(ip.alloc, s), 0, 0)
}

func (ip *Interp) newStringObj(s string) mheap.Ref {
	return ip.newObject(KString, mlib.NewString(ip.alloc, s), 0, 0)
}

func (ip *Interp) newArray(n int, exec bool) mheap.Ref {
	var fl uint8
	if exec {
		fl = flagExec
	}
	return ip.newObject(KArray, mlib.NewVector(ip.alloc, n), uint64(n), fl)
}

func (ip *Interp) newMark() mheap.Ref { return ip.newObject(KMark, mheap.Nil, 0, 0) }

func (ip *Interp) newDict(buckets int) mheap.Ref {
	d := mlib.NewDict(ip.alloc, buckets)
	ip.dicts = append(ip.dicts, d)
	idx := len(ip.dicts) - 1
	return ip.newObject(KDict, d.Table(), uint64(idx), 0)
}

// Accessors.

func (ip *Interp) intVal(r mheap.Ref) int64 { return int64(ip.value(r)) }

func (ip *Interp) realVal(r mheap.Ref) float64 { return math.Float64frombits(ip.value(r)) }

// numVal coerces int or real to float64.
func (ip *Interp) numVal(r mheap.Ref) (float64, error) {
	switch ip.kind(r) {
	case KInt:
		return float64(ip.intVal(r)), nil
	case KReal:
		return ip.realVal(r), nil
	default:
		return 0, fmt.Errorf("psint: typecheck: expected number, got %s", ip.kind(r))
	}
}

func (ip *Interp) boolVal(r mheap.Ref) bool { return ip.value(r) != 0 }

func (ip *Interp) nameVal(r mheap.Ref) string {
	return mlib.StringVal(ip.heap, ip.heap.Ptr(r, 0))
}

func (ip *Interp) stringVal(r mheap.Ref) string {
	return mlib.StringVal(ip.heap, ip.heap.Ptr(r, 0))
}

func (ip *Interp) arrayLen(r mheap.Ref) int { return int(ip.value(r)) }

func (ip *Interp) arrayAt(r mheap.Ref, i int) mheap.Ref {
	return mlib.VAt(ip.heap, ip.heap.Ptr(r, 0), i)
}

// arraySet stores el (transferring one reference) into slot i,
// releasing any previous occupant.
func (ip *Interp) arraySet(r mheap.Ref, i int, el mheap.Ref) {
	vec := ip.heap.Ptr(r, 0)
	if old := mlib.VAt(ip.heap, vec, i); old != mheap.Nil {
		mlib.VSet(ip.heap, vec, i, mheap.Nil)
		ip.release(old)
	}
	if el != mheap.Nil {
		mlib.VSet(ip.heap, vec, i, el)
	}
}

func (ip *Interp) dictOf(r mheap.Ref) *mlib.Dict { return ip.dicts[int(ip.value(r))] }
