package mlib

import (
	"testing"

	"github.com/dtbgc/dtbgc/internal/mheap"
	"github.com/dtbgc/dtbgc/internal/xrand"
)

func newRaw() (Raw, *mheap.Heap) {
	h := mheap.New()
	return Raw{H: h}, h
}

func TestStrings(t *testing.T) {
	a, h := newRaw()
	s := NewString(a, "hello, heap")
	if StringVal(h, s) != "hello, heap" {
		t.Fatalf("got %q", StringVal(h, s))
	}
	empty := NewString(a, "")
	if StringVal(h, empty) != "" {
		t.Fatal("empty string mangled")
	}
}

func TestBoxes(t *testing.T) {
	a, h := newRaw()
	b := NewBox(a, -42)
	if BoxVal(h, b) != -42 {
		t.Fatalf("BoxVal = %d", BoxVal(h, b))
	}
	SetBox(h, b, 1<<40)
	if BoxVal(h, b) != 1<<40 {
		t.Fatalf("BoxVal = %d", BoxVal(h, b))
	}
}

func TestConsLists(t *testing.T) {
	a, h := newRaw()
	x, y, z := NewBox(a, 1), NewBox(a, 2), NewBox(a, 3)
	l := Cons(a, x, Cons(a, y, Cons(a, z, mheap.Nil)))
	if ListLen(h, l) != 3 {
		t.Fatalf("len = %d", ListLen(h, l))
	}
	got := ListToSlice(h, l)
	if len(got) != 3 || BoxVal(h, got[0]) != 1 || BoxVal(h, got[2]) != 3 {
		t.Fatalf("slice wrong: %v", got)
	}
	if Car(h, l) != x || Cdr(h, Cdr(h, Cdr(h, l))) != mheap.Nil {
		t.Fatal("car/cdr wrong")
	}
	SetCar(h, l, z)
	if Car(h, l) != z {
		t.Fatal("SetCar failed")
	}
	SetCdr(h, l, mheap.Nil)
	if ListLen(h, l) != 1 {
		t.Fatal("SetCdr failed")
	}
}

func TestFreeList(t *testing.T) {
	a, h := newRaw()
	l := Cons(a, mheap.Nil, Cons(a, mheap.Nil, mheap.Nil))
	objs := h.NumObjects()
	if n := FreeList(h, l); n != 2 {
		t.Fatalf("freed %d cells", n)
	}
	if h.NumObjects() != objs-2 {
		t.Fatal("cells not freed")
	}
}

func TestVectors(t *testing.T) {
	a, h := newRaw()
	v := NewVector(a, 5)
	if VLen(h, v) != 5 {
		t.Fatalf("VLen = %d", VLen(h, v))
	}
	b := NewBox(a, 9)
	VSet(h, v, 3, b)
	if VAt(h, v, 3) != b || VAt(h, v, 0) != mheap.Nil {
		t.Fatal("vector get/set wrong")
	}
}

func TestDictBasics(t *testing.T) {
	a, h := newRaw()
	d := NewDict(a, 8)
	v1, v2 := NewBox(a, 1), NewBox(a, 2)
	d.Set("alpha", v1)
	d.Set("beta", v2)
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got, ok := d.Get("alpha"); !ok || got != v1 {
		t.Fatal("Get alpha failed")
	}
	if _, ok := d.Get("gamma"); ok {
		t.Fatal("phantom key")
	}
	// Replacement does not grow the table.
	d.Set("alpha", v2)
	if got, _ := d.Get("alpha"); got != v2 || d.Len() != 2 {
		t.Fatal("replace failed")
	}
	_ = h
}

func TestDictManyKeysAndCollisions(t *testing.T) {
	a, h := newRaw()
	d := NewDict(a, 4) // tiny table forces collisions
	r := xrand.New(5)
	want := map[string]int64{}
	for i := 0; i < 200; i++ {
		key := string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26))) + string(rune('0'+r.Intn(10)))
		v := r.Int63()
		want[key] = v
		d.Set(key, NewBox(a, v))
	}
	if d.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(want))
	}
	for k, v := range want {
		got, ok := d.Get(k)
		if !ok || BoxVal(h, got) != v {
			t.Fatalf("key %q: got %v ok=%v", k, got, ok)
		}
	}
	if len(d.Keys()) != len(want) {
		t.Fatalf("Keys() returned %d", len(d.Keys()))
	}
}

func TestDictDelete(t *testing.T) {
	a, h := newRaw()
	d := NewDict(a, 2)
	d.Set("x", NewBox(a, 1))
	d.Set("y", NewBox(a, 2))
	d.Set("z", NewBox(a, 3))
	if !d.Delete("y") {
		t.Fatal("Delete y failed")
	}
	if d.Delete("y") {
		t.Fatal("double delete succeeded")
	}
	if _, ok := d.Get("y"); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok := d.Get("x"); !ok {
		t.Fatal("sibling key lost")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDictFreeAll(t *testing.T) {
	a, h := newRaw()
	d := NewDict(a, 8)
	vals := make([]mheap.Ref, 0, 20)
	for i := 0; i < 20; i++ {
		v := NewBox(a, int64(i))
		vals = append(vals, v)
		d.Set(string(rune('a'+i)), v)
	}
	d.FreeAll()
	// Only the 20 value boxes remain.
	if h.NumObjects() != 20 {
		t.Fatalf("%d objects remain, want 20", h.NumObjects())
	}
	for _, v := range vals {
		if !h.Contains(v) {
			t.Fatal("value freed by FreeAll")
		}
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestNatDecimalRoundTrip(t *testing.T) {
	a, h := newRaw()
	cases := []string{"0", "1", "42", "4294967295", "4294967296",
		"18446744073709551615", "18446744073709551616",
		"1522605027922533360535618378132637429718068114961380688657908494580122963258952897654000350692006139"}
	for _, s := range cases {
		n, err := NatFromDecimal(a, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got := NatToDecimal(h, n); got != s {
			t.Errorf("round trip %s -> %s", s, got)
		}
	}
}

func TestNatFromDecimalRejects(t *testing.T) {
	a, _ := newRaw()
	for _, s := range []string{"", "12a3", "-5", " 1"} {
		if _, err := NatFromDecimal(a, s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestNatUint64RoundTrip(t *testing.T) {
	a, h := newRaw()
	for _, v := range []uint64{0, 1, 1 << 31, 1<<32 - 1, 1 << 32, 1<<64 - 1} {
		n := NatFromUint64(a, v)
		got, ok := NatToUint64(h, n)
		if !ok || got != v {
			t.Errorf("round trip %d -> %d ok=%v", v, got, ok)
		}
	}
	big, _ := NatFromDecimal(a, "340282366920938463463374607431768211456") // 2^128
	if _, ok := NatToUint64(h, big); ok {
		t.Error("2^128 fit in uint64")
	}
}

func TestNatCmp(t *testing.T) {
	a, h := newRaw()
	x := NatFromUint64(a, 100)
	y := NatFromUint64(a, 200)
	z := NatFromUint64(a, 100)
	if NatCmp(h, x, y) != -1 || NatCmp(h, y, x) != 1 || NatCmp(h, x, z) != 0 {
		t.Fatal("NatCmp wrong")
	}
	big, _ := NatFromDecimal(a, "99999999999999999999")
	if NatCmp(h, x, big) != -1 {
		t.Fatal("length comparison wrong")
	}
}

func TestNatArithmeticSmall(t *testing.T) {
	a, h := newRaw()
	r := xrand.New(11)
	for i := 0; i < 300; i++ {
		xv := r.Uint64() >> 33
		yv := r.Uint64() >> 33
		x, y := NatFromUint64(a, xv), NatFromUint64(a, yv)
		sum, _ := NatToUint64(h, NatAdd(a, x, y))
		if sum != xv+yv {
			t.Fatalf("add %d+%d = %d", xv, yv, sum)
		}
		prod, _ := NatToUint64(h, NatMul(a, x, y))
		if prod != xv*yv {
			t.Fatalf("mul %d*%d = %d", xv, yv, prod)
		}
		if xv >= yv {
			diff, _ := NatToUint64(h, NatSub(a, x, y))
			if diff != xv-yv {
				t.Fatalf("sub %d-%d = %d", xv, yv, diff)
			}
		}
		if yv != 0 {
			mod, _ := NatToUint64(h, NatMod(a, x, y))
			if mod != xv%yv {
				t.Fatalf("mod %d%%%d = %d, want %d", xv, yv, mod, xv%yv)
			}
		}
	}
}

func TestNatSubUnderflowPanics(t *testing.T) {
	a, _ := newRaw()
	x, y := NatFromUint64(a, 1), NatFromUint64(a, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	NatSub(a, x, y)
}

func TestNatModByZeroPanics(t *testing.T) {
	a, _ := newRaw()
	x, z := NatFromUint64(a, 5), NatFromUint64(a, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("mod by zero did not panic")
		}
	}()
	NatMod(a, x, z)
}

func TestNatBigMultiplication(t *testing.T) {
	a, h := newRaw()
	// (2^64+1)^2 = 2^128 + 2^65 + 1
	x, _ := NatFromDecimal(a, "18446744073709551617")
	sq := NatMul(a, x, x)
	want := "340282366920938463500268095579187314689"
	if got := NatToDecimal(h, sq); got != want {
		t.Fatalf("square = %s, want %s", got, want)
	}
}

func TestNatMulMod(t *testing.T) {
	a, h := newRaw()
	x, _ := NatFromDecimal(a, "123456789012345678901234567890")
	y, _ := NatFromDecimal(a, "987654321098765432109876543210")
	m, _ := NatFromDecimal(a, "1000000007")
	got := NatToDecimal(h, NatMulMod(a, x, y, m))
	// (x*y) mod 1000000007 computed independently: x mod m = ?
	// Verify via small-mod arithmetic below instead of a literal.
	xm, _ := NatToUint64(h, NatMod(a, x, m))
	ym, _ := NatToUint64(h, NatMod(a, y, m))
	want := (xm * ym) % 1000000007
	gotN, _ := NatFromDecimal(a, got)
	gotV, _ := NatToUint64(h, gotN)
	if gotV != want {
		t.Fatalf("mulmod = %d, want %d", gotV, want)
	}
}

func TestNatGCD(t *testing.T) {
	a, h := newRaw()
	cases := []struct{ x, y, want uint64 }{
		{12, 18, 6}, {17, 5, 1}, {0, 7, 7}, {7, 0, 7}, {48, 36, 12},
		{1 << 40, 1 << 20, 1 << 20},
	}
	for _, c := range cases {
		g, _ := NatToUint64(h, NatGCD(a, NatFromUint64(a, c.x), NatFromUint64(a, c.y)))
		if g != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.x, c.y, g, c.want)
		}
	}
}

func TestNatSqrt(t *testing.T) {
	a, h := newRaw()
	cases := []struct{ x, want uint64 }{
		{0, 0}, {1, 1}, {2, 1}, {3, 1}, {4, 2}, {15, 3}, {16, 4},
		{99, 9}, {100, 10}, {1 << 50, 1 << 25}, {(1 << 25) * (1 << 25), 1 << 25},
	}
	for _, c := range cases {
		got, _ := NatToUint64(h, NatSqrt(a, NatFromUint64(a, c.x)))
		if got != c.want {
			t.Errorf("sqrt(%d) = %d, want %d", c.x, got, c.want)
		}
	}
	// A big perfect square: (10^20)^2.
	sq, _ := NatFromDecimal(a, "10000000000000000000000000000000000000000")
	root := NatSqrt(a, sq)
	if got := NatToDecimal(h, root); got != "100000000000000000000" {
		t.Fatalf("big sqrt = %s", got)
	}
}

func TestNatSqrtProperty(t *testing.T) {
	a, h := newRaw()
	r := xrand.New(17)
	for i := 0; i < 50; i++ {
		v := r.Uint64() >> uint(r.Intn(40))
		n := NatFromUint64(a, v)
		s := NatSqrt(a, n)
		sv, _ := NatToUint64(h, s)
		// sv^2 <= v < (sv+1)^2
		if sv*sv > v {
			t.Fatalf("sqrt(%d) = %d too big", v, sv)
		}
		if (sv+1)*(sv+1) <= v && sv < 1<<31 {
			t.Fatalf("sqrt(%d) = %d too small", v, sv)
		}
	}
}

func TestNatOperationsAllocateOnHeap(t *testing.T) {
	// The point of mlib: arithmetic shows up as heap traffic.
	a, h := newRaw()
	before := h.NumObjects()
	x := NatFromUint64(a, 123456789)
	y := NatFromUint64(a, 987654321)
	NatMul(a, x, y)
	if h.NumObjects() != before+3 {
		t.Fatalf("expected 3 new heap objects, got %d", h.NumObjects()-before)
	}
}
