package mlib

// Arbitrary-precision unsigned integers whose limbs live in heap
// objects — the substrate the CFRAC mini-application factors with,
// mirroring the original cfrac's multiple-precision package whose
// constant limb allocation made it a classic GC benchmark.
//
// Representation: a heap object with no pointer slots whose data is a
// little-endian array of 32-bit limbs, most significant limb last,
// with no trailing zero limbs (so the zero value has no limbs at all).
// All operations allocate fresh result objects; the caller frees
// intermediates, exactly like the C original.

import (
	"encoding/binary"
	"fmt"

	"github.com/dtbgc/dtbgc/internal/mheap"
)

const limbBytes = 4

// natLimbs decodes a bignat's limbs (least significant first).
func natLimbs(h *mheap.Heap, r mheap.Ref) []uint32 {
	d := h.Data(r)
	limbs := make([]uint32, len(d)/limbBytes)
	for i := range limbs {
		limbs[i] = binary.LittleEndian.Uint32(d[i*limbBytes:])
	}
	return limbs
}

// natFromLimbs allocates a bignat from limbs, trimming high zeros.
func natFromLimbs(a Allocator, limbs []uint32) mheap.Ref {
	n := len(limbs)
	for n > 0 && limbs[n-1] == 0 {
		n--
	}
	r := a.Alloc(0, n*limbBytes)
	d := a.Heap().Data(r)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(d[i*limbBytes:], limbs[i])
	}
	return r
}

// NatFromUint64 allocates a bignat holding v.
func NatFromUint64(a Allocator, v uint64) mheap.Ref {
	return natFromLimbs(a, []uint32{uint32(v), uint32(v >> 32)})
}

// NatFromDecimal allocates a bignat from a decimal string.
func NatFromDecimal(a Allocator, s string) (mheap.Ref, error) {
	if s == "" {
		return mheap.Nil, fmt.Errorf("mlib: empty decimal string")
	}
	limbs := []uint32{}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return mheap.Nil, fmt.Errorf("mlib: bad decimal digit %q", c)
		}
		// limbs = limbs*10 + digit
		carry := uint64(c - '0')
		for j := range limbs {
			cur := uint64(limbs[j])*10 + carry
			limbs[j] = uint32(cur)
			carry = cur >> 32
		}
		for carry > 0 {
			limbs = append(limbs, uint32(carry))
			carry >>= 32
		}
	}
	return natFromLimbs(a, limbs), nil
}

// NatToDecimal renders a bignat in decimal (no heap allocation).
func NatToDecimal(h *mheap.Heap, r mheap.Ref) string {
	limbs := natLimbs(h, r)
	if len(limbs) == 0 {
		return "0"
	}
	var digits []byte
	for len(limbs) > 0 {
		// Divide by 10 in place, collecting the remainder.
		var rem uint64
		for i := len(limbs) - 1; i >= 0; i-- {
			cur := rem<<32 | uint64(limbs[i])
			limbs[i] = uint32(cur / 10)
			rem = cur % 10
		}
		digits = append(digits, byte('0'+rem))
		for len(limbs) > 0 && limbs[len(limbs)-1] == 0 {
			limbs = limbs[:len(limbs)-1]
		}
	}
	for i, j := 0, len(digits)-1; i < j; i, j = i+1, j-1 {
		digits[i], digits[j] = digits[j], digits[i]
	}
	return string(digits)
}

// NatIsZero reports whether the bignat is zero.
func NatIsZero(h *mheap.Heap, r mheap.Ref) bool { return len(h.Data(r)) == 0 }

// NatToUint64 converts a small bignat; ok is false when it overflows.
func NatToUint64(h *mheap.Heap, r mheap.Ref) (v uint64, ok bool) {
	limbs := natLimbs(h, r)
	if len(limbs) > 2 {
		return 0, false
	}
	for i, l := range limbs {
		v |= uint64(l) << (32 * i)
	}
	return v, true
}

// NatCmp compares two bignats: -1, 0 or +1.
func NatCmp(h *mheap.Heap, x, y mheap.Ref) int {
	a, b := natLimbs(h, x), natLimbs(h, y)
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// NatAdd allocates x + y.
func NatAdd(a Allocator, x, y mheap.Ref) mheap.Ref {
	h := a.Heap()
	al, bl := natLimbs(h, x), natLimbs(h, y)
	if len(al) < len(bl) {
		al, bl = bl, al
	}
	out := make([]uint32, len(al)+1)
	var carry uint64
	for i := range al {
		sum := uint64(al[i]) + carry
		if i < len(bl) {
			sum += uint64(bl[i])
		}
		out[i] = uint32(sum)
		carry = sum >> 32
	}
	out[len(al)] = uint32(carry)
	return natFromLimbs(a, out)
}

// NatSub allocates x - y; it panics if y > x (callers compare first,
// as the C original did).
func NatSub(a Allocator, x, y mheap.Ref) mheap.Ref {
	h := a.Heap()
	al, bl := natLimbs(h, x), natLimbs(h, y)
	if NatCmp(h, x, y) < 0 {
		panic("mlib: NatSub underflow")
	}
	out := make([]uint32, len(al))
	var borrow int64
	for i := range al {
		diff := int64(al[i]) - borrow
		if i < len(bl) {
			diff -= int64(bl[i])
		}
		if diff < 0 {
			diff += 1 << 32
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = uint32(diff)
	}
	return natFromLimbs(a, out)
}

// NatMul allocates x * y (schoolbook).
func NatMul(a Allocator, x, y mheap.Ref) mheap.Ref {
	h := a.Heap()
	al, bl := natLimbs(h, x), natLimbs(h, y)
	out := make([]uint32, len(al)+len(bl))
	for i, av := range al {
		var carry uint64
		for j, bv := range bl {
			cur := uint64(out[i+j]) + uint64(av)*uint64(bv) + carry
			out[i+j] = uint32(cur)
			carry = cur >> 32
		}
		k := i + len(bl)
		for carry > 0 {
			cur := uint64(out[k]) + carry
			out[k] = uint32(cur)
			carry = cur >> 32
			k++
		}
	}
	return natFromLimbs(a, out)
}

// NatMod allocates x mod m via binary long division. m must be
// non-zero.
func NatMod(a Allocator, x, m mheap.Ref) mheap.Ref {
	h := a.Heap()
	if NatIsZero(h, m) {
		panic("mlib: NatMod by zero")
	}
	ml := natLimbs(h, m)
	rem := make([]uint32, 0, len(ml)+1)
	xl := natLimbs(h, x)
	// Process bits most-significant first.
	for i := len(xl) - 1; i >= 0; i-- {
		for bit := 31; bit >= 0; bit-- {
			// rem = rem<<1 | bit
			var carry uint32 = (xl[i] >> uint(bit)) & 1
			for j := 0; j < len(rem); j++ {
				nc := rem[j] >> 31
				rem[j] = rem[j]<<1 | carry
				carry = nc
			}
			if carry > 0 {
				rem = append(rem, carry)
			}
			if cmpLimbs(rem, ml) >= 0 {
				subLimbs(rem, ml)
				for len(rem) > 0 && rem[len(rem)-1] == 0 {
					rem = rem[:len(rem)-1]
				}
			}
		}
	}
	return natFromLimbs(a, rem)
}

func cmpLimbs(a, b []uint32) int {
	an, bn := len(a), len(b)
	for an > 0 && a[an-1] == 0 {
		an--
	}
	for bn > 0 && b[bn-1] == 0 {
		bn--
	}
	if an != bn {
		if an < bn {
			return -1
		}
		return 1
	}
	for i := an - 1; i >= 0; i-- {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// subLimbs computes a -= b in place; a must be >= b.
func subLimbs(a, b []uint32) {
	var borrow int64
	for i := range a {
		diff := int64(a[i]) - borrow
		if i < len(b) {
			diff -= int64(b[i])
		}
		if diff < 0 {
			diff += 1 << 32
			borrow = 1
		} else {
			borrow = 0
		}
		a[i] = uint32(diff)
	}
}

// NatMulMod allocates (x*y) mod m, freeing the intermediate product.
func NatMulMod(a Allocator, x, y, m mheap.Ref) mheap.Ref {
	h := a.Heap()
	prod := NatMul(a, x, y)
	out := NatMod(a, prod, m)
	h.Free(prod)
	return out
}

// NatGCD allocates gcd(x, y) by the Euclidean algorithm, freeing all
// intermediates.
func NatGCD(a Allocator, x, y mheap.Ref) mheap.Ref {
	h := a.Heap()
	// Work on copies so the inputs stay owned by the caller.
	u := natFromLimbs(a, natLimbs(h, x))
	v := natFromLimbs(a, natLimbs(h, y))
	for !NatIsZero(h, v) {
		r := NatMod(a, u, v)
		h.Free(u)
		u, v = v, r
	}
	h.Free(v)
	return u
}

// NatSqrt allocates the integer square root (floor) of x using
// Newton's method on uint64 halves... no: x may exceed uint64, so use
// a digit-by-digit binary method over the limbs.
func NatSqrt(a Allocator, x mheap.Ref) mheap.Ref {
	h := a.Heap()
	xl := natLimbs(h, x)
	bits := len(xl) * 32
	root := make([]uint32, (len(xl)+2)/2+1)
	// Binary search on the root, testing candidate bits high to low.
	tmp := make([]uint32, len(root)*2+2)
	for bit := (bits + 1) / 2; bit >= 0; bit-- {
		setBit(root, bit)
		// tmp = root*root
		mulLimbs(tmp, root, root)
		if cmpLimbs(tmp, xl) > 0 {
			clearBit(root, bit)
		}
	}
	return natFromLimbs(a, root)
}

func setBit(a []uint32, i int)   { a[i/32] |= 1 << uint(i%32) }
func clearBit(a []uint32, i int) { a[i/32] &^= 1 << uint(i%32) }

// mulLimbs computes out = a*b, where out is pre-sized and zeroed here.
func mulLimbs(out, a, b []uint32) {
	for i := range out {
		out[i] = 0
	}
	for i, av := range a {
		if av == 0 {
			continue
		}
		var carry uint64
		for j, bv := range b {
			cur := uint64(out[i+j]) + uint64(av)*uint64(bv) + carry
			out[i+j] = uint32(cur)
			carry = cur >> 32
		}
		k := i + len(b)
		for carry > 0 {
			cur := uint64(out[k]) + carry
			out[k] = uint32(cur)
			carry = cur >> 32
			k++
		}
	}
}
