// Package mlib provides the managed data structures the mini-
// applications build on: strings, boxes, pairs, vectors, hash tables
// and arbitrary-precision naturals, all allocated as objects on the
// simulated byte-array heap (internal/mheap) so that every cons cell,
// string and bignum limb the applications touch shows up in the
// allocation trace — the same property QPT instrumentation gave the
// paper's C programs.
package mlib

import (
	"encoding/binary"

	"github.com/dtbgc/dtbgc/internal/mheap"
)

// Allocator is the allocation interface the structures use. Both the
// raw heap (malloc/free style, via Raw) and the collector in
// internal/gc satisfy it.
type Allocator interface {
	Alloc(nptrs, dataBytes int) mheap.Ref
	Heap() *mheap.Heap
}

// Raw adapts a bare heap to Allocator for malloc/free-style programs.
type Raw struct{ H *mheap.Heap }

// Alloc implements Allocator.
func (r Raw) Alloc(nptrs, dataBytes int) mheap.Ref { return r.H.Alloc(nptrs, dataBytes) }

// Heap implements Allocator.
func (r Raw) Heap() *mheap.Heap { return r.H }

// NewString allocates a heap string.
func NewString(a Allocator, s string) mheap.Ref {
	r := a.Alloc(0, len(s))
	copy(a.Heap().Data(r), s)
	return r
}

// StringVal reads a heap string.
func StringVal(h *mheap.Heap, r mheap.Ref) string { return string(h.Data(r)) }

// NewBox allocates a one-int64 cell.
func NewBox(a Allocator, v int64) mheap.Ref {
	r := a.Alloc(0, 8)
	SetBox(a.Heap(), r, v)
	return r
}

// SetBox stores into an int cell.
func SetBox(h *mheap.Heap, r mheap.Ref, v int64) {
	binary.LittleEndian.PutUint64(h.Data(r), uint64(v))
}

// BoxVal reads an int cell.
func BoxVal(h *mheap.Heap, r mheap.Ref) int64 {
	return int64(binary.LittleEndian.Uint64(h.Data(r)))
}

// Pair layout: slot 0 = car, slot 1 = cdr.

// Cons allocates a pair.
func Cons(a Allocator, car, cdr mheap.Ref) mheap.Ref {
	r := a.Alloc(2, 0)
	if car != mheap.Nil {
		a.Heap().SetPtr(r, 0, car)
	}
	if cdr != mheap.Nil {
		a.Heap().SetPtr(r, 1, cdr)
	}
	return r
}

// Car returns the pair's first field.
func Car(h *mheap.Heap, p mheap.Ref) mheap.Ref { return h.Ptr(p, 0) }

// Cdr returns the pair's second field.
func Cdr(h *mheap.Heap, p mheap.Ref) mheap.Ref { return h.Ptr(p, 1) }

// SetCar updates the pair's first field.
func SetCar(h *mheap.Heap, p, v mheap.Ref) { h.SetPtr(p, 0, v) }

// SetCdr updates the pair's second field.
func SetCdr(h *mheap.Heap, p, v mheap.Ref) { h.SetPtr(p, 1, v) }

// ListLen walks a cons list.
func ListLen(h *mheap.Heap, l mheap.Ref) int {
	n := 0
	for l != mheap.Nil {
		n++
		l = Cdr(h, l)
	}
	return n
}

// ListToSlice collects a cons list's cars.
func ListToSlice(h *mheap.Heap, l mheap.Ref) []mheap.Ref {
	var out []mheap.Ref
	for l != mheap.Nil {
		out = append(out, Car(h, l))
		l = Cdr(h, l)
	}
	return out
}

// FreeList frees every spine cell of a cons list (not the cars),
// returning the number of cells freed. For malloc/free-style apps.
func FreeList(h *mheap.Heap, l mheap.Ref) int {
	n := 0
	for l != mheap.Nil {
		next := Cdr(h, l)
		h.Free(l)
		n++
		l = next
	}
	return n
}

// NewVector allocates an n-slot pointer vector.
func NewVector(a Allocator, n int) mheap.Ref { return a.Alloc(n, 0) }

// VLen returns a vector's slot count.
func VLen(h *mheap.Heap, v mheap.Ref) int { return h.NumPtrs(v) }

// VAt reads vector slot i.
func VAt(h *mheap.Heap, v mheap.Ref, i int) mheap.Ref { return h.Ptr(v, i) }

// VSet writes vector slot i.
func VSet(h *mheap.Heap, v mheap.Ref, i int, x mheap.Ref) { h.SetPtr(v, i, x) }

// Hash table: a vector of bucket lists; each bucket entry is a pair
// (key-string . (value . next)) flattened as [key value next] using a
// 3-slot node.

const (
	htKey = iota
	htVal
	htNext
)

// Dict is a chained hash table with heap-string keys.
type Dict struct {
	a       Allocator
	table   mheap.Ref // vector of bucket heads
	entries int
}

// NewDict allocates a dictionary with the given bucket count.
func NewDict(a Allocator, buckets int) *Dict {
	if buckets < 1 {
		buckets = 16
	}
	return &Dict{a: a, table: NewVector(a, buckets)}
}

// Table returns the underlying heap object (for rooting under GC).
func (d *Dict) Table() mheap.Ref { return d.table }

// Len returns the number of entries.
func (d *Dict) Len() int { return d.entries }

func hashString(s string) uint32 {
	// FNV-1a.
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (d *Dict) bucket(key string) int {
	return int(hashString(key)) % VLen(d.a.Heap(), d.table)
}

// Set binds key to value, replacing any existing binding.
func (d *Dict) Set(key string, value mheap.Ref) {
	h := d.a.Heap()
	b := d.bucket(key)
	for node := VAt(h, d.table, b); node != mheap.Nil; node = h.Ptr(node, htNext) {
		if StringVal(h, h.Ptr(node, htKey)) == key {
			h.SetPtr(node, htVal, value)
			return
		}
	}
	node := d.a.Alloc(3, 0)
	h.SetPtr(node, htKey, NewString(d.a, key))
	if value != mheap.Nil {
		h.SetPtr(node, htVal, value)
	}
	if head := VAt(h, d.table, b); head != mheap.Nil {
		h.SetPtr(node, htNext, head)
	}
	VSet(h, d.table, b, node)
	d.entries++
}

// Get returns the binding and whether it exists.
func (d *Dict) Get(key string) (mheap.Ref, bool) {
	h := d.a.Heap()
	for node := VAt(h, d.table, d.bucket(key)); node != mheap.Nil; node = h.Ptr(node, htNext) {
		if StringVal(h, h.Ptr(node, htKey)) == key {
			return h.Ptr(node, htVal), true
		}
	}
	return mheap.Nil, false
}

// Delete removes a binding, freeing its node and key string. It
// returns whether the key was present.
func (d *Dict) Delete(key string) bool {
	h := d.a.Heap()
	b := d.bucket(key)
	var prev mheap.Ref
	for node := VAt(h, d.table, b); node != mheap.Nil; node = h.Ptr(node, htNext) {
		if StringVal(h, h.Ptr(node, htKey)) == key {
			next := h.Ptr(node, htNext)
			if prev == mheap.Nil {
				VSet(h, d.table, b, next)
			} else {
				h.SetPtr(prev, htNext, next)
			}
			h.SetPtr(node, htNext, mheap.Nil)
			keyStr := h.Ptr(node, htKey)
			h.SetPtr(node, htKey, mheap.Nil)
			h.SetPtr(node, htVal, mheap.Nil)
			h.Free(keyStr)
			h.Free(node)
			d.entries--
			return true
		}
		prev = node
	}
	return false
}

// Keys returns all keys (Go strings; no heap allocation).
func (d *Dict) Keys() []string {
	h := d.a.Heap()
	var keys []string
	for b := 0; b < VLen(h, d.table); b++ {
		for node := VAt(h, d.table, b); node != mheap.Nil; node = h.Ptr(node, htNext) {
			keys = append(keys, StringVal(h, h.Ptr(node, htKey)))
		}
	}
	return keys
}

// FreeAll releases every node, key string and the table itself (values
// are not freed — the caller owns them).
func (d *Dict) FreeAll() {
	h := d.a.Heap()
	for b := 0; b < VLen(h, d.table); b++ {
		node := VAt(h, d.table, b)
		VSet(h, d.table, b, mheap.Nil)
		for node != mheap.Nil {
			next := h.Ptr(node, htNext)
			keyStr := h.Ptr(node, htKey)
			h.SetPtr(node, htKey, mheap.Nil)
			h.SetPtr(node, htVal, mheap.Nil)
			h.SetPtr(node, htNext, mheap.Nil)
			h.Free(keyStr)
			h.Free(node)
			node = next
		}
	}
	h.Free(d.table)
	d.table = mheap.Nil
	d.entries = 0
}
